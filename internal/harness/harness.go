// Package harness defines the paper's experiments: one runnable definition
// per table and figure of the evaluation (DESIGN.md §4 maps them). The
// cmd/graphbench binary and the repository's benchmarks both drive this
// package.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"graphmaze/internal/cluster"
	"graphmaze/internal/combblas"
	"graphmaze/internal/core"
	"graphmaze/internal/galois"
	"graphmaze/internal/gen"
	"graphmaze/internal/giraph"
	"graphmaze/internal/graph"
	"graphmaze/internal/graphlab"
	"graphmaze/internal/metrics"
	"graphmaze/internal/native"
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
	"graphmaze/internal/socialite"
	"graphmaze/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Out receives the experiment's report (required).
	Out io.Writer
	// Scale is the base RMAT scale for synthetic inputs; 0 picks the
	// experiment default.
	Scale int
	// Nodes overrides the node counts of scaling experiments.
	Nodes []int
	// Iterations for the iterative algorithms; 0 picks the default (5).
	Iterations int
	// Quick shrinks inputs for smoke-testing.
	Quick bool
	// Trace, when non-nil, receives spans and counters from every run: the
	// harness attaches it to each engine execution (and its simulated
	// cluster) and points the par scheduler's counters at it for the
	// duration of Run.
	Trace *trace.Tracer
	// JSON, when non-nil, receives a machine-readable report of every
	// measurement (and the trace summary, if tracing) after the experiment
	// completes.
	JSON io.Writer
	// Faults is a fault-plan spec (fault.ParsePlan grammar) for the
	// fault-tolerance experiment; empty runs its default crash sweep.
	// Plans are single-use, so the spec is re-parsed for every run.
	Faults string
	// CkptInterval overrides the checkpoint interval (in phases) for the
	// fault-tolerance experiment's recovery runs; 0 picks the default.
	CkptInterval int
	// Deltas is the number of delta batches the stream experiment ingests;
	// 0 picks the default.
	Deltas int

	// rec collects RunRecords when Run wants a machine-readable report.
	rec *[]RunRecord
}

// RunRecord is one measurement in the machine-readable report.
type RunRecord struct {
	Engine  string          `json:"engine"`
	Algo    string          `json:"algo"`
	Nodes   int             `json:"nodes"`
	Seconds float64         `json:"seconds"`
	Error   string          `json:"error,omitempty"`
	Report  *metrics.Report `json:"report,omitempty"`
	// Hists holds the quantile summary of every registry histogram that
	// recorded during this run and no other (the harness diffs histogram
	// snapshots around each engine execution): per-phase latency tails,
	// pool dispatch/park times, chunk-claim latency. Only present when
	// tracing is on.
	Hists map[string]obs.Quantiles `json:"hists,omitempty"`
}

// jsonReport is the top-level machine-readable experiment report.
type jsonReport struct {
	Experiment string         `json:"experiment"`
	Runs       []RunRecord    `json:"runs"`
	Trace      *trace.Summary `json:"trace,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 5
	}
	return o
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt Options) error
}

// Experiments lists every table and figure reproduction.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table4", Title: "Table 4: native implementation efficiency vs hardware limits", Run: Table4},
		{ID: "table5", Title: "Table 5: single-node slowdowns vs native (geomean)", Run: Table5},
		{ID: "table6", Title: "Table 6: multi-node slowdowns vs native (geomean)", Run: Table6},
		{ID: "table7", Title: "Table 7: SociaLite network-optimization speedups", Run: Table7},
		{ID: "fig3", Title: "Figure 3: single-node runtimes per dataset", Run: Figure3},
		{ID: "fig4", Title: "Figure 4: weak scaling on synthetic graphs", Run: Figure4},
		{ID: "fig5", Title: "Figure 5: large real-world graphs on multiple nodes", Run: Figure5},
		{ID: "fig6", Title: "Figure 6: system metrics on 4-node runs", Run: Figure6},
		{ID: "fig7", Title: "Figure 7: native optimization ablation (PageRank, BFS)", Run: Figure7},
		{ID: "tcablation", Title: "§6.1.2: triangle-counting bit-vector ablation", Run: TriangleBitvectorAblation},
		{ID: "giraphsplit", Title: "§6.1.3: Giraph phased-superstep memory", Run: GiraphPhasedSupersteps},
		{ID: "giraphfix", Title: "§6.2: Giraph roadmap (combiners + more workers)", Run: GiraphRoadmap},
		{ID: "sgdgd", Title: "§3.2: SGD vs GD convergence", Run: SGDvsGD},
		{ID: "faulttol", Title: "DESIGN.md §10: checkpoint overhead & recovery cost", Run: FaultTolerance},
		{ID: "stream", Title: "DESIGN.md §14: epoch deltas — update latency vs staleness", Run: Stream},
	}
}

// Run executes the experiment with the given id ("all" runs everything).
// With a tracer in the options, the par scheduler's counters point at it
// for the duration, and every engine execution records spans into it; with
// a JSON writer, a machine-readable report follows the tables.
func Run(id string, opt Options) error {
	var records []RunRecord
	if opt.JSON != nil {
		opt.rec = &records
	}
	if opt.Trace != nil {
		par.SetSchedCounters(opt.Trace.Sched())
		defer par.SetSchedCounters(nil)
	}
	if err := runExperiments(id, opt); err != nil {
		return err
	}
	if opt.JSON != nil {
		rep := jsonReport{Experiment: id, Runs: records, Trace: trace.Summarize(opt.Trace)}
		if rep.Runs == nil {
			rep.Runs = []RunRecord{}
		}
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	return nil
}

func runExperiments(id string, opt Options) error {
	if id == "all" {
		for _, exp := range Experiments() {
			fmt.Fprintf(opt.Out, "==== %s — %s ====\n", exp.ID, exp.Title)
			if err := exp.Run(opt); err != nil {
				return fmt.Errorf("%s: %w", exp.ID, err)
			}
			fmt.Fprintln(opt.Out)
		}
		return nil
	}
	for _, exp := range Experiments() {
		if exp.ID == id {
			return exp.Run(opt)
		}
	}
	ids := make([]string, 0)
	for _, exp := range Experiments() {
		ids = append(ids, exp.ID)
	}
	return fmt.Errorf("harness: unknown experiment %q (have %s, all)", id, strings.Join(ids, ", "))
}

// Algo identifies one of the paper's four algorithms.
type Algo int

const (
	PR Algo = iota
	BFS
	TC
	CF
)

func (a Algo) String() string {
	switch a {
	case PR:
		return "PageRank"
	case BFS:
		return "BFS"
	case TC:
		return "TriangleCount"
	case CF:
		return "CollabFilter"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Algos lists all four in the paper's order.
func Algos() []Algo { return []Algo{PR, BFS, CF, TC} }

// engines returns the comparison set in the paper's column order.
func engines() []core.Engine {
	return []core.Engine{native.New(), combblas.New(), graphlab.New(), socialite.New(), giraph.New(), galois.New()}
}

// inputs bundles prepared graphs for all four algorithms.
type inputs struct {
	pr, bfs, tc *graph.CSR
	cf          *graph.Bipartite
}

// buildInputs generates a synthetic input set at the given scale.
func buildInputs(scale int, seed int64) (inputs, error) {
	var in inputs
	mk := func(cfg gen.RMATConfig, opt graph.BuildOptions) (*graph.CSR, error) {
		edges, err := gen.RMAT(cfg)
		if err != nil {
			return nil, err
		}
		b := graph.NewBuilder(cfg.NumVertices())
		b.AddEdges(edges)
		return b.Build(opt)
	}
	var err error
	if in.pr, err = mk(gen.Graph500Config(scale, 16, seed), graph.BuildOptions{Dedup: true, DropSelfLoops: true, SortAdjacency: true}); err != nil {
		return in, err
	}
	if in.bfs, err = mk(gen.Graph500Config(scale, 16, seed+1), graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true, SortAdjacency: true}); err != nil {
		return in, err
	}
	if in.tc, err = mk(gen.TriangleConfig(scale, 8, seed+2), graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true}); err != nil {
		return in, err
	}
	if in.cf, err = gen.Ratings(gen.DefaultRatingsConfig(scale, 16, seed+3)); err != nil {
		return in, err
	}
	return in, nil
}

// measurement is one (engine, algorithm, input) observation.
type measurement struct {
	seconds float64 // the paper's metric: per-iteration for PR/CF, total for BFS/TC
	report  metrics.Report
	err     error
}

// runOne executes algo on engine e over the input, single-node when
// nodes ≤ 1. The modeled node memory mirrors the paper's setup, where
// datasets were sized so the hungriest framework used >50% of a node
// (§5.4): capacity scales with the input rather than staying at the
// paper's literal 64 GB.
func runOne(opt Options, e core.Engine, algo Algo, in inputs, nodes, iterations int) measurement {
	// Snapshot the histogram registry before the run so the record can
	// carry exactly this run's observations (bucket counters are monotone,
	// so the snapshot difference is exact even on a shared tracer).
	var before map[string]obs.HistSnapshot
	if opt.rec != nil {
		before = opt.Trace.Registry().HistSnapshots()
	}
	sp := opt.Trace.Begin("harness.run", fmt.Sprintf("%s %s", e.Name(), algo)).
		Arg("nodes", float64(nodes))
	m := runMeasured(opt, e, algo, in, nodes, iterations)
	sp.End()
	if opt.rec != nil {
		rec := RunRecord{Engine: e.Name(), Algo: algo.String(), Nodes: nodes, Seconds: m.seconds}
		if m.err != nil {
			rec.Error = m.err.Error()
		}
		if m.report.SimulatedSeconds > 0 {
			r := m.report
			rec.Report = &r
		}
		rec.Hists = obs.DeltaQuantiles(before, opt.Trace.Registry().HistSnapshots())
		*opt.rec = append(*opt.rec, rec)
	}
	return m
}

func runMeasured(opt Options, e core.Engine, algo Algo, in inputs, nodes, iterations int) measurement {
	exec := core.Exec{Trace: opt.Trace}
	if nodes > 1 {
		var inputBytes int64
		switch algo {
		case PR:
			inputBytes = in.pr.MemoryBytes()
		case BFS:
			inputBytes = in.bfs.MemoryBytes()
		case TC:
			inputBytes = in.tc.MemoryBytes()
		case CF:
			inputBytes = in.cf.MemoryBytes()
		}
		// Capacity relative to input mirrors the paper's provisioning: the
		// synthetic runs fit (TC inputs get 4× more headroom, as the
		// paper's 32M-edges/node TC sizing did vs PageRank's 128M), while
		// CombBLAS's A² product on the Twitter-scale input — a ≈70×
		// blowup with block skew — exhausts memory, reproducing Figure
		// 5's missing data point.
		multiplier := int64(64)
		if algo == TC {
			multiplier = 128
		}
		memPerNode := multiplier * inputBytes / int64(nodes)
		exec.Cluster = &cluster.Config{Nodes: nodes, MemoryPerNode: memPerNode, Trace: opt.Trace}
	}
	switch algo {
	case PR:
		res, err := e.PageRank(in.pr, core.PageRankOptions{Iterations: iterations, Exec: exec})
		if err != nil {
			return measurement{err: err}
		}
		return measurement{seconds: res.Stats.WallSeconds / float64(iterations), report: res.Stats.Report}
	case BFS:
		res, err := e.BFS(in.bfs, core.BFSOptions{Source: bfsSource(in.bfs), Exec: exec})
		if err != nil {
			return measurement{err: err}
		}
		return measurement{seconds: res.Stats.WallSeconds, report: res.Stats.Report}
	case TC:
		res, err := e.TriangleCount(in.tc, core.TriangleOptions{Exec: exec})
		if err != nil {
			return measurement{err: err}
		}
		return measurement{seconds: res.Stats.WallSeconds, report: res.Stats.Report}
	case CF:
		method := core.GradientDescent
		if e.Capabilities().SGD {
			method = core.SGD // the paper compares time/iteration, native & Galois run SGD
		}
		res, err := e.CollabFilter(in.cf, core.CFOptions{Method: method, K: 8, Iterations: iterations, Seed: 7,
			SkipRMSETrajectory: true, Exec: exec})
		if err != nil {
			return measurement{err: err}
		}
		return measurement{seconds: res.Stats.WallSeconds / float64(iterations), report: res.Stats.Report}
	default:
		return measurement{err: fmt.Errorf("harness: unknown algorithm %v", algo)}
	}
}

// bfsSource picks a well-connected start vertex (the paper's BFS runs
// traverse most of the graph; a degree-0 start would trivialize the run).
func bfsSource(g *graph.CSR) uint32 {
	best := uint32(0)
	for v := uint32(0); v < g.NumVertices; v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	return best
}

// geomean of positive values; zero if none.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// formatSeconds renders a runtime compactly.
func formatSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3gs", s)
	}
}

// tableWriter accumulates aligned rows.
type tableWriter struct {
	header []string
	rows   [][]string
}

func (t *tableWriter) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	for _, row := range t.rows {
		line(row)
	}
}

// hostPeakBandwidth measures an approximate memory-bandwidth ceiling for
// the host with a parallel triad pass, standing in for the paper's STREAM
// numbers when normalizing Table 4.
func hostPeakBandwidth() float64 {
	const n = 1 << 22
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		par.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = a[i] + 2.5*b[i]
			}
		})
		elapsed := time.Since(start).Seconds()
		if bw := float64(3*8*n) / elapsed; bw > best {
			best = bw
		}
	}
	return best
}

// sortedKeys returns a map's keys in order (for deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
