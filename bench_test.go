package graphmaze

// One benchmark per table and figure of the paper (DESIGN.md §4), each
// regenerating its artifact through the experiment harness, plus kernel
// benchmarks for every engine × algorithm pair. Run everything with
//
//	go test -bench=. -benchmem
//
// The benchmarks use the harness's quick mode so the whole suite completes
// on a laptop; `cmd/graphbench` runs the same experiments at full size.

import (
	"io"
	"testing"

	"graphmaze/internal/harness"
	"graphmaze/internal/obs"
	"graphmaze/internal/trace"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := harness.Options{Out: io.Discard, Quick: true, Iterations: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := harness.Run(id, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4NativeEfficiency regenerates Table 4: native efficiency
// against memory/network limits, single-node and 4-node.
func BenchmarkTable4NativeEfficiency(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5SingleNodeSlowdown regenerates Table 5: single-node
// slowdowns of each framework vs native (geomean).
func BenchmarkTable5SingleNodeSlowdown(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6MultiNodeSlowdown regenerates Table 6: 4-node slowdowns
// of each framework vs native (geomean).
func BenchmarkTable6MultiNodeSlowdown(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7SocialiteNetOpt regenerates Table 7: SociaLite
// before/after the multi-socket + batching network optimization.
func BenchmarkTable7SocialiteNetOpt(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkFigure3SingleNode regenerates Figure 3's per-dataset
// single-node runtime panels.
func BenchmarkFigure3SingleNode(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4WeakScaling regenerates Figure 4's weak-scaling panels.
func BenchmarkFigure4WeakScaling(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5LargeGraphs regenerates Figure 5: the large real-world
// stand-ins on 4 and 16 nodes.
func BenchmarkFigure5LargeGraphs(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6SystemMetrics regenerates Figure 6: CPU utilization,
// peak network bandwidth, memory footprint and bytes sent on 4-node runs.
func BenchmarkFigure6SystemMetrics(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7Ablation regenerates Figure 7: the native optimization
// stage stack for PageRank and BFS.
func BenchmarkFigure7Ablation(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTriangleBitvectorAblation regenerates the §6.1.2 bit-vector
// claim (≈2.2× for triangle counting).
func BenchmarkTriangleBitvectorAblation(b *testing.B) { benchExperiment(b, "tcablation") }

// BenchmarkGiraphPhasedSupersteps regenerates the §6.1.3 phased-superstep
// memory comparison.
func BenchmarkGiraphPhasedSupersteps(b *testing.B) { benchExperiment(b, "giraphsplit") }

// BenchmarkSGDvsGD regenerates the §3.2 SGD-vs-GD convergence comparison.
func BenchmarkSGDvsGD(b *testing.B) { benchExperiment(b, "sgdgd") }

// ---- Kernel benchmarks: engine × algorithm on shared inputs ----

func benchInputs(b *testing.B) (pr, bfs, tc *Graph, cf *Ratings) {
	b.Helper()
	var err error
	if pr, err = Generate(Graph500{Scale: 12, EdgeFactor: 16, Seed: 9}, ForPageRank); err != nil {
		b.Fatal(err)
	}
	if bfs, err = Generate(Graph500{Scale: 12, EdgeFactor: 16, Seed: 9}, ForBFS); err != nil {
		b.Fatal(err)
	}
	if tc, err = Generate(Graph500{Scale: 12, EdgeFactor: 8, Seed: 9}, ForTriangles); err != nil {
		b.Fatal(err)
	}
	if cf, err = GenerateRatings(11, 16, 9); err != nil {
		b.Fatal(err)
	}
	return pr, bfs, tc, cf
}

// reportPhaseQuantiles emits p50-ns/op and p99-ns/op from the tracer's
// busiest per-phase duration histogram (native.pr.iter, giraph.superstep,
// ... — whichever the engine recorded most), so `benchjson -diff` can gate
// tail latency alongside the mean.
func reportPhaseQuantiles(b *testing.B, tr *trace.Tracer) {
	b.Helper()
	var best obs.HistSnapshot
	found := false
	for name, hs := range tr.Registry().HistSnapshots() {
		if len(name) > 7 && name[len(name)-7:] == ".dur_ns" && hs.Count > best.Count {
			best, found = hs, true
		}
	}
	if !found {
		return
	}
	q := best.Summary()
	b.ReportMetric(float64(q.P50), "p50-ns/op")
	b.ReportMetric(float64(q.P99), "p99-ns/op")
}

// BenchmarkPageRank measures one engine iteration of PageRank per engine,
// with per-iteration latency quantiles from the obs histograms.
func BenchmarkPageRank(b *testing.B) {
	g, _, _, _ := benchInputs(b)
	for _, eng := range Engines() {
		b.Run(eng.Name(), func(b *testing.B) {
			tr := trace.New()
			b.SetBytes(g.NumEdges() * 12)
			for i := 0; i < b.N; i++ {
				if _, err := eng.PageRank(g, PageRankOptions{Iterations: 1, Exec: Exec{Trace: tr}}); err != nil {
					b.Fatal(err)
				}
			}
			reportPhaseQuantiles(b, tr)
		})
	}
}

// BenchmarkBFS measures a full traversal per engine.
func BenchmarkBFS(b *testing.B) {
	_, g, _, _ := benchInputs(b)
	for _, eng := range Engines() {
		b.Run(eng.Name(), func(b *testing.B) {
			b.SetBytes(g.NumEdges() * 8)
			for i := 0; i < b.N; i++ {
				if _, err := eng.BFS(g, BFSOptions{Source: 0}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTriangleCount measures the full count per engine.
func BenchmarkTriangleCount(b *testing.B) {
	_, _, g, _ := benchInputs(b)
	for _, eng := range Engines() {
		b.Run(eng.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.TriangleCount(g, TriangleOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollabFilter measures one optimizer iteration per engine
// (SGD where expressible, GD elsewhere — the paper's comparison).
func BenchmarkCollabFilter(b *testing.B) {
	_, _, _, cf := benchInputs(b)
	for _, eng := range Engines() {
		b.Run(eng.Name(), func(b *testing.B) {
			method := GradientDescent
			if eng.Capabilities().SGD {
				method = SGD
			}
			opt := CFOptions{Method: method, K: 8, Iterations: 1, Seed: 9, SkipRMSETrajectory: true}
			for i := 0; i < b.N; i++ {
				if _, err := eng.CollabFilter(cf, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPageRankCluster measures the simulated 4-node PageRank for the
// multi-node engines (modeled network time excluded from host wall time —
// this benchmark reports the host cost of the simulation itself).
func BenchmarkPageRankCluster(b *testing.B) {
	g, _, _, _ := benchInputs(b)
	for _, eng := range Engines() {
		if !eng.Capabilities().MultiNode {
			continue
		}
		b.Run(eng.Name(), func(b *testing.B) {
			opt := PageRankOptions{Iterations: 2, Exec: Exec{Cluster: &ClusterConfig{Nodes: 4}}}
			for i := 0; i < b.N; i++ {
				if _, err := eng.PageRank(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGiraphRoadmap regenerates the §6.2 Giraph-roadmap comparison
// (message combiners + more workers vs the stock configuration).
func BenchmarkGiraphRoadmap(b *testing.B) { benchExperiment(b, "giraphfix") }
