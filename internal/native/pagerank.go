package native

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"time"

	"graphmaze/internal/backend"
	"graphmaze/internal/cluster"
	"graphmaze/internal/codec"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
	"graphmaze/internal/trace"
)

// PageRank implements core.Engine. g holds out-edges; the kernel builds the
// in-CSR once (the paper stores in-edges in CSR form so the gather streams,
// §3.1) and then runs the per-edge multiply-add loop.
func (e *Engine) PageRank(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return e.pageRankCluster(g, opt)
	}
	start := time.Now()
	ranks, iters := e.pageRankLocal(g, opt)
	return &core.PageRankResult{
		Ranks: ranks,
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: iters},
	}, nil
}

// pageRankLocal is the single-node kernel. It returns the ranks and the
// number of iterations actually run (fewer than requested when early
// convergence detection is enabled and triggers).
func (e *Engine) pageRankLocal(g *graph.CSR, opt core.PageRankOptions) ([]float64, int) {
	in := g.Transpose()
	outDeg := g.OutDegrees()
	n := int(g.NumVertices)
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	tr := opt.Exec.Tracer()
	if e.tuning.ContribCaching {
		// Tuned path: the iteration is exactly the backend's lowered
		// PageRank shape, so the native engine is a thin wrapper — the
		// engine-vs-native deltas in the harness tables measure pure
		// framework abstraction cost over the same kernels.
		return e.pageRankBackend(in, outDeg, opt, tr, pr, next)
	}
	iters := 0
	for it := 0; it < opt.Iterations; it++ {
		iters++
		sp := tr.Begin("native.pr.iter", "pagerank iteration").Arg("iter", float64(it))
		// Ablation baseline (no contribution caching): the gather reads raw
		// ranks and divides per edge — two dependent loads and a divide per
		// in-edge instead of one streaming load.
		parallelForOffsets(in.Offsets, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				for _, j := range in.Neighbors(uint32(v)) {
					sum += (1 - opt.RandomJump) * pr[j] / float64(outDeg[j])
				}
				next[v] = opt.RandomJump + sum
			}
		})
		pr, next = next, pr
		converged := opt.Tolerance > 0 && maxAbsDiff(pr, next) <= opt.Tolerance
		sp.End()
		if converged {
			break
		}
	}
	return pr, iters
}

// pageRankBackend runs the contribution-caching PageRank on the shared
// SpMV backend: a dense pass producing the contribution array (one
// streaming store per vertex, so the gather does a single random load per
// edge instead of two dependent ones plus a divide) and a mapped
// plus-times pattern SpMV over the in-CSR with edge-balanced row splits.
// Arithmetic is unchanged from the pre-backend kernel: same per-vertex
// expressions, same ascending in-neighbor fold order, so ranks stay
// bit-identical at any worker count.
func (e *Engine) pageRankBackend(in *graph.CSR, outDeg []int64, opt core.PageRankOptions, tr *trace.Tracer, pr, next []float64) ([]float64, int) {
	n := len(pr)
	pool := backend.NewPool(0)
	defer pool.Close()
	pool.SetTracer(tr)
	mul := backend.NewSumVecMul(pool, backend.FromCSR(in)).WithTracer(tr)
	contrib := make([]float64, n)
	contribPass := backend.NewDense(pool, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if outDeg[v] > 0 {
				contrib[v] = (1 - opt.RandomJump) * pr[v] / float64(outDeg[v])
			} else {
				contrib[v] = 0
			}
		}
	})
	post := func(v uint32, sum float64) float64 { return opt.RandomJump + sum }
	iters := 0
	for it := 0; it < opt.Iterations; it++ {
		iters++
		sp := tr.Begin("native.pr.iter", "pagerank iteration").Arg("iter", float64(it))
		contribPass.Run()
		mul.MapInto(next, contrib, post)
		pr, next = next, pr
		converged := opt.Tolerance > 0 && maxAbsDiff(pr, next) <= opt.Tolerance
		sp.End()
		if converged {
			break
		}
	}
	return pr, iters
}

// maxAbsDiff returns the largest element-wise |a-b|, reduced through
// per-worker lanes (max is order-independent, so the parallel result is
// bit-identical to a serial scan).
func maxAbsDiff(a, b []float64) float64 {
	return par.ReduceFloat64Max(len(a), func(lo, hi int) float64 {
		worst := 0.0
		for i := lo; i < hi; i++ {
			d := a[i] - b[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	})
}

// prExchange is the precomputed boundary-communication plan for
// distributed PageRank: sendIDs[s][d] lists (sorted) the vertices owned by
// node s whose contributions node d needs.
type prExchange struct {
	part    *graph.Partition1D
	sendIDs [][][]uint32
	// idPayloads caches the compressed encoding of each (static) id list:
	// the structure never changes across iterations, so real native code
	// encodes it once and ships only fresh values each round.
	idPayloads [][][]byte
}

func buildPRExchange(g *graph.CSR, part *graph.Partition1D) *prExchange {
	nodes := part.NumParts
	need := make([]map[uint32]struct{}, nodes*nodes)
	for v := uint32(0); v < g.NumVertices; v++ {
		s := part.Owner(v)
		for _, t := range g.Neighbors(v) {
			d := part.Owner(t)
			if d == s {
				continue
			}
			idx := s*nodes + d
			if need[idx] == nil {
				need[idx] = make(map[uint32]struct{})
			}
			need[idx][v] = struct{}{}
		}
	}
	ex := &prExchange{part: part, sendIDs: make([][][]uint32, nodes), idPayloads: make([][][]byte, nodes)}
	for s := 0; s < nodes; s++ {
		ex.sendIDs[s] = make([][]uint32, nodes)
		ex.idPayloads[s] = make([][]byte, nodes)
		for d := 0; d < nodes; d++ {
			m := need[s*nodes+d]
			if len(m) == 0 {
				continue
			}
			ids := make([]uint32, 0, len(m))
			for v := range m {
				ids = append(ids, v)
			}
			slices.Sort(ids)
			ex.sendIDs[s][d] = ids
		}
	}
	return ex
}

// pageRankCluster runs the paper's distributed native PageRank: 1-D
// vertex partitioning balanced by edges, boundary contribution exchange
// each iteration, optional message compression and overlap.
func (e *Engine) pageRankCluster(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	cfg := *opt.Exec.Cluster
	cfg.Overlap = e.tuning.Overlap
	if cfg.Trace == nil {
		cfg.Trace = opt.Exec.Trace
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	in := g.Transpose()
	outDeg := g.OutDegrees()
	ex := buildPRExchange(g, part)
	n := int(g.NumVertices)

	pr := make([]float64, n)
	contrib := make([]float64, n) // ghost entries filled from messages
	for i := range pr {
		pr[i] = 1
	}
	for v := 0; v < n; v++ {
		if outDeg[v] > 0 {
			contrib[v] = (1 - opt.RandomJump) * pr[v] / float64(outDeg[v])
		}
	}
	// Without the layout optimization the gather reads raw ranks and
	// divides per edge, against a snapshot of the previous iteration (the
	// naive implementation's extra loads, divides, and full-array copy).
	var prPrev []float64
	if !e.tuning.ContribCaching {
		prPrev = make([]float64, n)
		copy(prPrev, pr)
	}
	// Per-node resident data: its partition's in-edges, rank/contrib state,
	// and ghost slots.
	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := in.Offsets[hi] - in.Offsets[lo]
		state := int64(hi-lo) * 24 // pr + next + contrib
		var ghost int64
		for s := 0; s < c.Nodes(); s++ {
			ghost += int64(len(ex.sendIDs[s][node])) * 12
		}
		c.SetBaselineMemory(node, edges*4+int64(hi-lo+1)*8+state+ghost)
	}

	tr := cfg.Trace
	// Fault tolerance (DESIGN.md §10): an iteration's inter-phase state is
	// the rank, contribution, and (naive mode) previous-rank arrays; the
	// in-flight boundary messages live in the cluster inbox, which the
	// recovery driver checkpoints alongside. Restores copy into the
	// existing arrays so the closures' aliases stay valid.
	rec := c.Recovery(
		func() ([]byte, error) {
			out := codec.AppendFloat64s(nil, pr)
			out = codec.AppendFloat64s(out, contrib)
			out = codec.AppendFloat64s(out, prPrev) // empty when caching contributions
			return out, nil
		},
		func(data []byte) error {
			for _, dst := range [][]float64{pr, contrib, prPrev} {
				var err error
				if data, err = restoreFloat64s(data, dst); err != nil {
					return err
				}
			}
			return nil
		})
	runIter := func(it int) (bool, error) {
		if it >= opt.Iterations {
			return true, nil
		}
		iterStart := c.VirtualSeconds()
		err := c.RunPhase(func(node int) error {
			// Apply contributions received from the previous iteration.
			for _, payload := range c.Recv(node) {
				if err := e.applyPRMessage(payload, contrib); err != nil {
					return err
				}
			}
			lo, hi := part.Range(node)
			if e.tuning.ContribCaching {
				for v := lo; v < hi; v++ {
					sum := 0.0
					for _, j := range in.Neighbors(v) {
						sum += contrib[j]
					}
					pr[v] = opt.RandomJump + sum
				}
			} else {
				scale := 1 - opt.RandomJump
				for v := lo; v < hi; v++ {
					sum := 0.0
					for _, j := range in.Neighbors(v) {
						if d := outDeg[j]; d > 0 {
							sum += scale * prPrev[j] / float64(d)
						}
					}
					pr[v] = opt.RandomJump + sum
				}
			}
			return nil
		})
		if err != nil {
			return false, err
		}
		// Refresh local contributions and ship boundary values. Done as a
		// separate loop so every node's reads of contrib (above) complete
		// before writes — the phase model runs nodes sequentially, so
		// without this split later nodes would see this iteration's
		// contributions.
		if err := c.RunPhase(func(node int) error {
			lo, hi := part.Range(node)
			for v := lo; v < hi; v++ {
				if outDeg[v] > 0 {
					contrib[v] = (1 - opt.RandomJump) * pr[v] / float64(outDeg[v])
				}
			}
			if prPrev != nil {
				copy(prPrev[lo:hi], pr[lo:hi])
			}
			if it == opt.Iterations-1 {
				return nil // final iteration: nothing left to exchange
			}
			for d := 0; d < c.Nodes(); d++ {
				ids := ex.sendIDs[node][d]
				if len(ids) == 0 {
					continue
				}
				if e.tuning.Compression && ex.idPayloads[node][d] == nil {
					idBytes, err := codec.EncodeIDsAuto(ids, g.NumVertices)
					if err != nil {
						return err
					}
					ex.idPayloads[node][d] = idBytes
				}
				payload, err := e.encodePRMessage(ids, ex.idPayloads[node][d], contrib)
				if err != nil {
					return err
				}
				c.Send(node, d, payload)
			}
			return nil
		}); err != nil {
			return false, err
		}
		tr.RecordVirtual(trace.PidEngine, "native.pr.iter", fmt.Sprintf("iteration %d", it),
			iterStart, c.VirtualSeconds()-iterStart, nil)
		return false, nil
	}
	if err := rec.Run(runIter); err != nil {
		return nil, err
	}

	return &core.PageRankResult{
		Ranks: pr,
		Stats: core.RunStats{
			WallSeconds: c.Report().SimulatedSeconds,
			Simulated:   true,
			Iterations:  opt.Iterations,
			Report:      c.Report(),
		},
	}, nil
}

// restoreFloat64s decodes the next checkpointed array into dst — which
// must have the length the snapshot recorded — and returns the remaining
// bytes. Copying in place keeps every alias of dst valid across a restore.
func restoreFloat64s(data []byte, dst []float64) ([]byte, error) {
	vals, rest, err := codec.Float64s(data)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(dst) {
		return nil, fmt.Errorf("native: checkpoint array has %d values, want %d", len(vals), len(dst))
	}
	copy(dst, vals)
	return rest, nil
}

// encodePRMessage packs (id, contribution) pairs. Uncompressed: 4-byte id +
// 8-byte double per vertex (the paper's 12 B/edge-message behaviour).
// Compressed: the (cached) delta+varint id block plus float32 values — the
// paper's 2.2× PageRank traffic reduction (§6.1.1); the id structure is
// static across iterations, so only the values are re-encoded.
func (e *Engine) encodePRMessage(ids []uint32, idBytes []byte, contrib []float64) ([]byte, error) {
	if !e.tuning.Compression {
		out := make([]byte, 4+12*len(ids))
		binary.LittleEndian.PutUint32(out, graph.MustU32(int64(len(ids))))
		pos := 4
		for _, id := range ids {
			binary.LittleEndian.PutUint32(out[pos:], id)
			binary.LittleEndian.PutUint64(out[pos+4:], math.Float64bits(contrib[id]))
			pos += 12
		}
		return out, nil
	}
	out := make([]byte, 8+len(idBytes)+4*len(ids))
	binary.LittleEndian.PutUint32(out, graph.MustU32(int64(len(ids)))|0x80000000)
	binary.LittleEndian.PutUint32(out[4:], graph.MustU32(int64(len(idBytes))))
	copy(out[8:], idBytes)
	pos := 8 + len(idBytes)
	for _, id := range ids {
		binary.LittleEndian.PutUint32(out[pos:], math.Float32bits(float32(contrib[id])))
		pos += 4
	}
	return out, nil
}

// applyPRMessage unpacks a message into the contribution array.
func (e *Engine) applyPRMessage(payload []byte, contrib []float64) error {
	if len(payload) < 4 {
		return fmt.Errorf("native: short pagerank message (%d bytes)", len(payload))
	}
	header := binary.LittleEndian.Uint32(payload)
	if header&0x80000000 == 0 {
		count := int(header)
		if len(payload) != 4+12*count {
			return fmt.Errorf("native: pagerank message %d bytes, want %d", len(payload), 4+12*count)
		}
		pos := 4
		for i := 0; i < count; i++ {
			id := binary.LittleEndian.Uint32(payload[pos:])
			contrib[id] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos+4:]))
			pos += 12
		}
		return nil
	}
	count := int(header &^ 0x80000000)
	if len(payload) < 8 {
		return fmt.Errorf("native: short compressed pagerank message")
	}
	idLen := int(binary.LittleEndian.Uint32(payload[4:]))
	if len(payload) != 8+idLen+4*count {
		return fmt.Errorf("native: compressed pagerank message %d bytes, want %d", len(payload), 8+idLen+4*count)
	}
	ids, err := codec.DecodeIDs(payload[8 : 8+idLen])
	if err != nil {
		return err
	}
	if len(ids) != count {
		return fmt.Errorf("native: compressed pagerank message decoded %d ids, want %d", len(ids), count)
	}
	pos := 8 + idLen
	for _, id := range ids {
		contrib[id] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[pos:])))
		pos += 4
	}
	return nil
}
