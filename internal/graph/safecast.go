package graph

import "fmt"

// MustU32 converts x to uint32, panicking if the value does not fit. It is
// the checked form of the uint32(...) narrowing that graphlint's truncate
// rule forbids: at Twitter/Graph500 scale an unchecked narrowing corrupts
// vertex and edge indices silently, while MustU32 turns the impossible
// configuration into an immediate, attributable failure at build/load time.
func MustU32(x int64) uint32 {
	if x < 0 || x > 0xFFFFFFFF {
		panic(fmt.Sprintf("graph: value %d does not fit in uint32", x))
	}
	//lint:ignore truncate the range check above proves the value fits
	return uint32(x)
}

// MustI32 converts x to int32, panicking if the value does not fit. See
// MustU32 for why engines use this instead of a raw int32(...) conversion.
func MustI32(x int64) int32 {
	if x < -1<<31 || x > 1<<31-1 {
		panic(fmt.Sprintf("graph: value %d does not fit in int32", x))
	}
	//lint:ignore truncate the range check above proves the value fits
	return int32(x)
}
