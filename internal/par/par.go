// Package par provides the tiny data-parallel loop primitives the engines
// share. Kernels split work into contiguous chunks so CSR scans stay
// streaming.
package par

import (
	"runtime"
	"sync"
)

// For splits [0,n) into contiguous chunks across up to GOMAXPROCS
// goroutines and runs body(lo,hi) on each.
func For(n int, body func(lo, hi int)) {
	ForWorkers(runtime.GOMAXPROCS(0), n, body)
}

// ForWorkersIndexed is ForWorkers with the executing worker's index passed
// to the body — for callers that keep per-worker staging areas.
func ForWorkersIndexed(workers, n int, body func(worker, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForWorkers is For with an explicit worker cap — engines that model a
// constrained runtime (Giraph's 4 workers per node) pass their limit.
func ForWorkers(workers, n int, body func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
