package native

import (
	"fmt"
	"sync/atomic"

	"graphmaze/internal/backend"
	"graphmaze/internal/graph"
)

// Connected components for epoch-versioned graphs. Labels are canonical —
// every vertex ends up labeled with the minimum vertex id of its
// component — which is what makes the incremental kernel's conformance
// pin bit-identical: any algorithm computing min-id labels on the same
// graph produces the same array.

// ConnectedComponents computes min-id component labels of an undirected
// (symmetrized) graph with synchronous min-label sweeps on the backend
// pool: next[v] = min(cur[v], min over neighbors cur[w]), iterated to a
// fixpoint. Jacobi-style double buffering makes every sweep deterministic
// at any worker count.
func ConnectedComponents(pool *backend.Pool, m *backend.Matrix) []uint32 {
	n := int(m.NumRows)
	cur := make([]uint32, n)
	next := make([]uint32, n)
	for i := range cur {
		cur[i] = uint32(i)
	}
	var changed atomic.Bool
	sweep := backend.NewDense(pool, n, func(lo, hi int) {
		dirty := false
		for v := lo; v < hi; v++ {
			best := cur[v]
			for _, w := range m.Cols[m.Offsets[v]:m.Offsets[v+1]] {
				if cur[w] < best {
					best = cur[w]
				}
			}
			next[v] = best
			if best != cur[v] {
				dirty = true
			}
		}
		if dirty {
			changed.Store(true)
		}
	})
	for {
		changed.Store(false)
		sweep.Run()
		cur, next = next, cur
		if !changed.Load() {
			return cur
		}
	}
}

// IncrementalCC maintains min-id component labels across the epochs of a
// versioned (symmetrized, insert-only) graph. Insertions only merge
// components, so the refresh seeds a worklist from delta edges whose
// endpoints carry different labels and floods the smaller label through
// the losing component — work proportional to the merged region. The
// first Update runs the full sweep kernel on the backend pool.
type IncrementalCC struct {
	pool *backend.Pool

	epoch  graph.Epoch
	primed bool
	labels []uint32
	work   []uint32
}

// NewIncrementalCC builds the kernel; Close releases its pool.
func NewIncrementalCC() *IncrementalCC {
	return &IncrementalCC{pool: backend.NewPool(0)}
}

// Close releases the kernel's worker pool.
func (c *IncrementalCC) Close() { c.pool.Close() }

// Epoch reports the last epoch Update refreshed against.
func (c *IncrementalCC) Epoch() graph.Epoch { return c.epoch }

// Update refreshes the labels for the given epoch; added is the epoch's
// cleaned delta (ApplyDelta's output). The returned slice is kernel
// state, valid until the next Update.
func (c *IncrementalCC) Update(s *graph.Snapshot, added []graph.Edge) ([]uint32, error) {
	g := s.CSR()
	n := int(g.NumVertices)
	if n == 0 {
		return nil, fmt.Errorf("native: incremental cc on an empty graph")
	}
	if !c.primed {
		c.labels = ConnectedComponents(c.pool, matrixOf(s))
		c.epoch = s.Epoch()
		c.primed = true
		return c.labels, nil
	}

	// New vertices start as their own singleton components.
	for len(c.labels) < n {
		c.labels = append(c.labels, graph.MustU32(int64(len(c.labels))))
	}
	labels := c.labels[:n]

	// Seed: every delta edge bridging two labels lowers the greater side.
	work := c.work[:0]
	for _, e := range added {
		lu, lv := labels[e.Src], labels[e.Dst]
		switch {
		case lu < lv:
			labels[e.Dst] = lu
			work = append(work, e.Dst)
		case lv < lu:
			labels[e.Src] = lv
			work = append(work, e.Src)
		}
	}
	// Flood: min labels propagate monotonically, so each pop either
	// improves neighbors or terminates; the graph's symmetry carries the
	// label through the whole losing component.
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		lv := labels[v]
		for _, w := range g.Neighbors(v) {
			if labels[w] > lv {
				labels[w] = lv
				work = append(work, w)
			}
		}
	}
	c.labels = labels
	c.work = work[:0]
	c.epoch = s.Epoch()
	return labels, nil
}
