package backend

import (
	"testing"
)

// The backend micro-benchmarks feed BENCH_backend.json (make
// bench-backend). allocs/op must read 0 for the steady-state kernels —
// that is the zero-alloc acceptance criterion in machine-readable form —
// and the engine-level PageRank/BFS benchmarks at the repo root measure
// each framework's overhead over these numbers.

func benchGraph(b *testing.B, symmetric bool) *Matrix {
	b.Helper()
	return FromCSR(testGraph(b, 14, 9, symmetric))
}

// BenchmarkBackendSumVecMul is the specialized plus-times pattern product:
// the per-iteration core of every lowered PageRank.
func BenchmarkBackendSumVecMul(b *testing.B) {
	m := benchGraph(b, false)
	pool := NewPool(0)
	defer pool.Close()
	k := NewSumVecMul(pool, m)
	x := randVec(m.NumRows, 1)
	y := make([]float64, m.NumRows)
	k.Into(y, x)
	b.SetBytes(m.NNZ() * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Into(y, x)
	}
}

// BenchmarkBackendVecMulGeneric is the same product through the generic
// semiring interface: the gap to BenchmarkBackendSumVecMul is the price
// of the CombBLAS-style indirection.
func BenchmarkBackendVecMulGeneric(b *testing.B) {
	m := benchGraph(b, false)
	pool := NewPool(0)
	defer pool.Close()
	k := NewVecMul[struct{}, float64, float64](pool, m, nil, Semiring[struct{}, float64, float64]{
		Mul:  func(_ struct{}, v float64) float64 { return v },
		Add:  func(a, b float64) float64 { return a + b },
		Zero: func() float64 { return 0 },
	})
	x := randVec(m.NumRows, 1)
	y := make([]float64, m.NumRows)
	k.Into(y, x)
	b.SetBytes(m.NNZ() * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Into(y, x)
	}
}

// BenchmarkBackendPageRankIteration is one full lowered PageRank
// iteration — contribution pass plus mapped SpMV — the unit the 1.5×
// engine-overhead budget is measured against.
func BenchmarkBackendPageRankIteration(b *testing.B) {
	m := benchGraph(b, false)
	pool := NewPool(0)
	defer pool.Close()
	n := int(m.NumRows)
	k := NewSumVecMul(pool, m)
	pr := randVec(m.NumRows, 2)
	next := make([]float64, n)
	contrib := make([]float64, n)
	deg := make([]int64, n)
	for r := 0; r < n; r++ {
		deg[r] = m.Offsets[r+1] - m.Offsets[r]
	}
	contribPass := NewDense(pool, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if deg[v] > 0 {
				contrib[v] = 0.7 * pr[v] / float64(deg[v])
			} else {
				contrib[v] = 0
			}
		}
	})
	post := func(r uint32, sum float64) float64 { return 0.3 + sum }
	iter := func() {
		contribPass.Run()
		k.MapInto(next, contrib, post)
		pr, next = next, pr
	}
	iter()
	b.SetBytes(m.NNZ() * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
}

// BenchmarkBackendTraversal is the full direction-switching BFS.
func BenchmarkBackendTraversal(b *testing.B) {
	m := benchGraph(b, true)
	pool := NewPool(0)
	defer pool.Close()
	tv := NewTraversal(pool, m, "backend.bfs.level", nil)
	tv.serialEdges = 0 // force the parallel kernels at bench scale
	dist := make([]int32, m.NumRows)
	reset := func() {
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
	}
	reset()
	tv.Run(dist, 0)
	b.SetBytes(m.NNZ() * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reset()
		tv.Run(dist, 0)
	}
}

// BenchmarkBackendExpander is the persistent-claims sparse expansion
// (lowered CombBLAS SpMSpV / Giraph BFS unit).
func BenchmarkBackendExpander(b *testing.B) {
	m := benchGraph(b, true)
	pool := NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		exp := NewExpander(pool, m)
		exp.Claim(0)
		b.StartTimer()
		frontier := []uint32{0}
		for len(frontier) > 0 {
			frontier = exp.Expand(frontier, nil)
		}
	}
}
