package galois

import (
	"math/rand"
	"sync/atomic"
	"time"

	"graphmaze/internal/core"
	"graphmaze/internal/graph"
)

// Engine is the Galois-model engine.
type Engine struct{}

var _ core.Engine = (*Engine)(nil)

// New returns the Galois-model engine.
func New() *Engine { return &Engine{} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "Galois" }

// Capabilities implements core.Engine.
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{MultiNode: false, SGD: true, ProgrammingModel: "task"}
}

// PageRank implements core.Engine: each work item is a vertex program
// updating its own rank (paper §3.1: "Each work item in Galois is a vertex
// program for updating its pagerank"). Tasks read all program data through
// shared memory.
func (e *Engine) PageRank(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return nil, core.ErrSingleNodeOnly
	}
	start := time.Now()
	in := g.Transpose()
	outDeg := g.OutDegrees()
	n := g.NumVertices
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	vertices := make([]uint32, n)
	for i := range vertices {
		vertices[i] = uint32(i)
	}
	tr := opt.Exec.Tracer()
	for it := 0; it < opt.Iterations; it++ {
		sp := tr.Begin("galois.round", "pagerank round").Arg("iter", float64(it))
		ForEach(vertices, func(v uint32, _ *Ctx[uint32]) {
			sum := 0.0
			for _, j := range in.Neighbors(v) {
				if outDeg[j] > 0 {
					sum += pr[j] / float64(outDeg[j])
				}
			}
			next[v] = opt.RandomJump + (1-opt.RandomJump)*sum
		})
		pr, next = next, pr
		sp.End()
	}
	return &core.PageRankResult{Ranks: pr,
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}}, nil
}

// BFS implements core.Engine with the paper's Algorithm 3: the
// bulk-synchronous executor maintains per-level worklists behind the
// scenes and processes each level in parallel.
func (e *Engine) BFS(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	opt, err := core.CheckBFSInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return nil, core.ErrSingleNodeOnly
	}
	start := time.Now()
	n := g.NumVertices
	dist := make([]int32, n)
	for i := range dist {
		//lint:ignore atomic initialization happens-before ForEachBulk spawns workers
		dist[i] = -1
	}
	//lint:ignore atomic initialization happens-before ForEachBulk spawns workers
	dist[opt.Source] = 0
	rounds := ForEachBulk([]uint32{opt.Source}, func(v uint32, push func(uint32)) {
		level := atomic.LoadInt32(&dist[v])
		for _, t := range g.Neighbors(v) {
			if atomic.CompareAndSwapInt32(&dist[t], -1, level+1) {
				push(t)
			}
		}
	})
	return &core.BFSResult{Distances: dist,
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: rounds}}, nil
}

// TriangleCount implements core.Engine with the paper's Algorithm 4:
// parallel foreach over vertices, sorted-adjacency set intersections.
// With the acyclic orientation the adjacency lists already hold only
// larger-id neighbours, so S1 and S2 are the lists themselves.
func (e *Engine) TriangleCount(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	opt, err := core.CheckTriangleInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return nil, core.ErrSingleNodeOnly
	}
	start := time.Now()
	vertices := make([]uint32, g.NumVertices)
	for i := range vertices {
		vertices[i] = uint32(i)
	}
	var count int64
	ForEach(vertices, func(v uint32, _ *Ctx[uint32]) {
		s1 := g.Neighbors(v)
		var local int64
		for _, m := range s1 {
			local += int64(intersectSorted(s1, g.Neighbors(m)))
		}
		if local > 0 {
			atomic.AddInt64(&count, local)
		}
	})
	return &core.TriangleResult{Count: atomic.LoadInt64(&count),
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: 1}}, nil
}

func intersectSorted(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// sgdTask is one work item: process the ratings of block (stripe, sub).
type sgdTask struct {
	stripe int
	block  []cfEdge
}

type cfEdge struct {
	u, v   uint32
	rating float32
}

// CollabFilter implements core.Engine. Galois is the only non-native
// engine that expresses true SGD (paper §3.2): flexible partitioning
// allows the n² diagonal chunk scheme, and single-node shared memory keeps
// every update globally visible. Each work item performs SGD updates on
// one block's edges.
func (e *Engine) CollabFilter(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	opt, err := core.CheckCFInput(r, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return nil, core.ErrSingleNodeOnly
	}
	start := time.Now()
	k := opt.K
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)

	// Gemulla's n² uniform 2-D chunking (paper §3.2, point (1)).
	w := 8
	for uint32(w) > r.NumUsers || uint32(w) > r.NumItems {
		w /= 2
	}
	if w < 1 {
		w = 1
	}
	userStripe := stripeBounds(r.NumUsers, w)
	itemStripe := stripeBounds(r.NumItems, w)
	blocks := make([][]cfEdge, w*w)
	for u := uint32(0); u < r.NumUsers; u++ {
		su := stripeOf(userStripe, u)
		adj, wts := r.ByUser.Neighbors(u), r.ByUser.EdgeWeights(u)
		for i, v := range adj {
			sv := stripeOf(itemStripe, v)
			blocks[su*w+sv] = append(blocks[su*w+sv], cfEdge{u: u, v: v, rating: wts[i]})
		}
	}
	for i := range blocks {
		rng := rand.New(rand.NewSource(opt.Seed + int64(i)*104729))
		rng.Shuffle(len(blocks[i]), func(a, b int) { blocks[i][a], blocks[i][b] = blocks[i][b], blocks[i][a] })
	}

	gd := opt.Method == core.GradientDescent
	gamma := opt.LearningRate
	rmse := make([]float64, 0, opt.Iterations)
	if gd {
		// GD also runs fine as tasks, one aggregate pass per iteration.
		gradP := make([]float64, len(userF))
		gradQ := make([]float64, len(itemF))
		stripes := make([]int, w)
		for i := range stripes {
			stripes[i] = i
		}
		for it := 0; it < opt.Iterations; it++ {
			for i := range gradP {
				gradP[i] = 0
			}
			for i := range gradQ {
				gradQ[i] = 0
			}
			// Diagonal scheduling keeps tasks write-disjoint for gradQ too.
			for sub := 0; sub < w; sub++ {
				ForEach(stripes, func(stripe int, _ *Ctx[int]) {
					for _, edge := range blocks[stripe*w+(stripe+sub)%w] {
						pu := userF[int(edge.u)*k : int(edge.u+1)*k]
						qv := itemF[int(edge.v)*k : int(edge.v+1)*k]
						ev := float64(edge.rating) - core.Dot(pu, qv)
						gp := gradP[int(edge.u)*k : int(edge.u+1)*k]
						gq := gradQ[int(edge.v)*k : int(edge.v+1)*k]
						for d := 0; d < k; d++ {
							gp[d] += ev*float64(qv[d]) - opt.LambdaP*float64(pu[d])
							gq[d] += ev*float64(pu[d]) - opt.LambdaQ*float64(qv[d])
						}
					}
				})
			}
			for i := range userF {
				userF[i] += float32(gamma * gradP[i])
			}
			for i := range itemF {
				itemF[i] += float32(gamma * gradQ[i])
			}
			gamma *= opt.StepDecay
			if !opt.SkipRMSETrajectory {
				rmse = append(rmse, core.RMSE(r, k, userF, itemF))
			}
		}
	} else {
		for it := 0; it < opt.Iterations; it++ {
			for sub := 0; sub < w; sub++ {
				tasks := make([]sgdTask, 0, w)
				for stripe := 0; stripe < w; stripe++ {
					tasks = append(tasks, sgdTask{stripe: stripe, block: blocks[stripe*w+(stripe+sub)%w]})
				}
				ForEach(tasks, func(task sgdTask, _ *Ctx[sgdTask]) {
					for _, edge := range task.block {
						pu := userF[int(edge.u)*k : int(edge.u+1)*k]
						qv := itemF[int(edge.v)*k : int(edge.v+1)*k]
						ev := float64(edge.rating) - core.Dot(pu, qv)
						for d := 0; d < k; d++ {
							pud, qvd := float64(pu[d]), float64(qv[d])
							pu[d] = float32(pud + gamma*(ev*qvd-opt.LambdaP*pud))
							qv[d] = float32(qvd + gamma*(ev*pud-opt.LambdaQ*qvd))
						}
					}
				})
			}
			gamma *= opt.StepDecay
			if !opt.SkipRMSETrajectory {
				rmse = append(rmse, core.RMSE(r, k, userF, itemF))
			}
		}
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, core.RMSE(r, k, userF, itemF))
	}
	return &core.CFResult{K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse,
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}}, nil
}

func stripeBounds(n uint32, w int) []uint32 {
	b := make([]uint32, w+1)
	for i := 0; i <= w; i++ {
		b[i] = graph.MustU32(int64(uint64(n) * uint64(i) / uint64(w)))
	}
	return b
}

func stripeOf(bounds []uint32, v uint32) int {
	lo, hi := 0, len(bounds)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
