package cluster

import (
	"errors"
	"fmt"

	"graphmaze/internal/ckpt"
	"graphmaze/internal/codec"
	"graphmaze/internal/trace"
)

// Recovery drives an engine's step loop with checkpointing and
// rollback-and-replay (DESIGN.md §10), the availability scheme Pregel
// describes and Giraph inherits: every Interval steps the engine's state —
// plus the cluster's in-flight inbox, which belongs to the superstep
// boundary — is snapshotted to the checkpoint store; when a step fails
// (injected crash, transport-detected message fault, or an ordinary
// compute error) the latest checkpoint is restored and the loop re-runs
// from the checkpointed step. Checkpoint writes, restore reads, and
// failure detection all charge the cluster's virtual clock, so the
// overhead and recovery cost show up in the metrics Report and as spans on
// the trace exactly like compute and network time.
type Recovery struct {
	c        *Cluster
	store    *ckpt.Store
	snapshot func() ([]byte, error)
	restore  func([]byte) error
}

// Recovery returns a driver that wraps an engine's step loop. snapshot
// must serialize the engine's complete inter-step state (vertex values,
// active set, any pending work the inbox does not carry); restore must
// rebuild exactly that state from a snapshot's bytes. The cluster's inbox
// is checkpointed and restored automatically alongside. With checkpointing
// disabled (Ckpt.Interval 0) the driver runs steps plainly and step errors
// propagate unchanged.
func (c *Cluster) Recovery(snapshot func() ([]byte, error), restore func([]byte) error) *Recovery {
	return &Recovery{
		c:        c,
		store:    ckpt.NewStore(c.cfg.Ckpt),
		snapshot: snapshot,
		restore:  restore,
	}
}

// Run executes step(0), step(1), ... until a step reports done or fails
// beyond recovery. Each step typically wraps one or more RunPhase calls (a
// Giraph superstep, a PageRank iteration). On a step error with
// checkpointing enabled, Run rolls back to the latest checkpoint and
// replays; after MaxRecoveries rollbacks it gives up and returns the step
// error wrapped in a bounds message. Without checkpointing, the first step
// error is returned as-is.
//
// Determinism: the restored state is byte-for-byte what was snapshotted,
// phases replay with fresh executed-phase indices (so consumed one-shot
// faults do not re-fire), and the transport aborts faulty exchanges
// all-or-nothing — a recovered run therefore converges to output
// bit-identical to a fault-free run's.
func (r *Recovery) Run(step func(step int) (done bool, err error)) error {
	recoveries := 0
	for i := 0; ; {
		if r.store.Due(i) {
			// Skip the re-save after a rollback landed us back on a
			// checkpointed step: the stored snapshot is still exact.
			if ck, ok := r.store.Latest(); !ok || ck.Step != i {
				if err := r.checkpoint(i); err != nil {
					return fmt.Errorf("cluster: checkpoint at step %d: %w", i, err)
				}
			}
		}
		done, err := step(i)
		if err != nil {
			if r.store == nil {
				return err
			}
			recoveries++
			if recoveries > r.c.cfg.MaxRecoveries {
				return fmt.Errorf("cluster: giving up after %d recoveries: %w", r.c.cfg.MaxRecoveries, err)
			}
			ck, ok := r.store.Latest()
			if !ok {
				return fmt.Errorf("cluster: step %d failed with no checkpoint to recover from: %w", i, err)
			}
			if rerr := r.recover(ck); rerr != nil {
				return errors.Join(err, rerr)
			}
			i = ck.Step
			continue
		}
		if done {
			return nil
		}
		i++
	}
}

// Store exposes the underlying checkpoint store (nil when checkpointing is
// disabled), for stats.
func (r *Recovery) Store() *ckpt.Store { return r.store }

// checkpoint snapshots engine state and the cluster inbox into one blob,
// saves it, and charges the write to the virtual clock.
func (r *Recovery) checkpoint(step int) error {
	c := r.c
	engine, err := r.snapshot()
	if err != nil {
		return err
	}
	blob := codec.AppendSection(nil, engine)
	blob = codec.AppendSection(blob, c.snapshotInbox())
	cost := r.store.Save(step, c.phases, blob, c.cfg.Nodes)
	c.collector.AddCheckpoint(cost, int64(len(blob)))
	if c.cfg.Trace.Enabled() {
		for n := 0; n < c.cfg.Nodes; n++ {
			c.cfg.Trace.RecordVirtual(trace.PidNode(n), "cluster.checkpoint",
				fmt.Sprintf("checkpoint step %d", step), c.virtualSec, cost,
				map[string]float64{"bytes": float64(len(blob))})
		}
	}
	c.virtualSec += cost
	return nil
}

// recover restores engine state and inbox from a checkpoint and charges
// the restore read plus the rolled-back phases to the recovery tally.
func (r *Recovery) recover(ck ckpt.Checkpoint) error {
	c := r.c
	phasesAtFailure := c.phases // failPhase already counted the failed phase
	engine, rest, err := codec.Section(ck.Data)
	if err != nil {
		return fmt.Errorf("cluster: corrupt checkpoint at step %d: %w", ck.Step, err)
	}
	inbox, _, err := codec.Section(rest)
	if err != nil {
		return fmt.Errorf("cluster: corrupt checkpoint at step %d: %w", ck.Step, err)
	}
	if err := r.restore(engine); err != nil {
		return fmt.Errorf("cluster: restore engine state from step %d: %w", ck.Step, err)
	}
	if err := c.restoreInbox(inbox); err != nil {
		return fmt.Errorf("cluster: restore inbox from step %d: %w", ck.Step, err)
	}
	cost := r.store.Config().ReadSeconds(int64(len(ck.Data)), c.cfg.Nodes)
	replayed := phasesAtFailure - ck.Phases
	c.collector.AddRecovery(cost, replayed)
	if c.cfg.Trace.Enabled() {
		for n := 0; n < c.cfg.Nodes; n++ {
			c.cfg.Trace.RecordVirtual(trace.PidNode(n), "cluster.recovery",
				fmt.Sprintf("rollback to step %d", ck.Step), c.virtualSec, cost,
				map[string]float64{
					"replayed_phases": float64(replayed),
					"bytes":           float64(len(ck.Data)),
				})
		}
	}
	c.virtualSec += cost
	return nil
}

// snapshotInbox serializes the delivered-but-unconsumed inbox: the
// messages in flight at a superstep boundary are part of the checkpoint in
// Pregel's scheme, and native engines (PageRank's contribution exchange)
// likewise carry inter-phase state there.
func (c *Cluster) snapshotInbox() []byte {
	out := codec.AppendUvarint(nil, uint64(c.cfg.Nodes))
	for _, payloads := range c.inbox {
		out = codec.AppendUvarint(out, uint64(len(payloads)))
		for _, p := range payloads {
			out = codec.AppendSection(out, p)
		}
	}
	return out
}

// restoreInbox rebuilds the inbox from snapshotInbox's encoding. Payloads
// are deep-copied out of the blob: the store retains the blob, and engines
// may mutate delivered payloads in place.
func (c *Cluster) restoreInbox(data []byte) error {
	nodes, data, err := codec.Uvarint(data)
	if err != nil {
		return err
	}
	if nodes != uint64(c.cfg.Nodes) {
		return fmt.Errorf("cluster: inbox snapshot for %d nodes, cluster has %d", nodes, c.cfg.Nodes)
	}
	inbox := make([][][]byte, c.cfg.Nodes)
	for n := range inbox {
		count, rest, err := codec.Uvarint(data)
		if err != nil {
			return err
		}
		if count > uint64(len(rest)) {
			return fmt.Errorf("cluster: inbox snapshot claims %d payloads, %d bytes remain: %w",
				count, len(rest), codec.ErrTruncated)
		}
		data = rest
		if count > 0 {
			inbox[n] = make([][]byte, count)
			for j := range inbox[n] {
				sec, rest, err := codec.Section(data)
				if err != nil {
					return err
				}
				inbox[n][j] = append([]byte(nil), sec...)
				data = rest
			}
		}
	}
	c.inbox = inbox
	return nil
}
