// Command graphbench reproduces the tables and figures of "Navigating the
// Maze of Graph Analytics Frameworks using Massive Graph Datasets"
// (SIGMOD 2014).
//
// Usage:
//
//	graphbench -list
//	graphbench -exp table5
//	graphbench -exp fig4 -nodes 1,4,16,64 -scale 12
//	graphbench -exp all -quick
//	graphbench -exp table5 -trace t.json -json
//	graphbench -exp table5 -obs :8080          # curl http://localhost:8080/metrics
//	graphbench -exp table5 -cpuprofile cpu.pprof -memprofile heap.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"graphmaze/internal/harness"
	"graphmaze/internal/obs"
	"graphmaze/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Int("scale", 0, "override the base RMAT scale (0 = experiment default)")
		nodes    = flag.String("nodes", "", "comma-separated node counts for scaling experiments")
		iters    = flag.Int("iters", 0, "iterations for iterative algorithms (0 = default)")
		quick    = flag.Bool("quick", false, "shrink inputs for a fast smoke run")
		traceOut = flag.String("trace", "", "write a Chrome trace-event file (load in Perfetto) to this path")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report on stdout (tables move to stderr)")
		faults   = flag.String("faults", "", "fault plan for the faulttol experiment, e.g. 'crash@6:n1,degrade@0-3x4' or 'seed@42:c2'")
		ckptIv   = flag.Int("ckpt-interval", 0, "checkpoint interval in phases for faulttol recovery runs (0 = default)")
		deltas   = flag.Int("deltas", 0, "delta batches for the stream experiment (0 = default)")
		obsAddr  = flag.String("obs", "", "serve live metrics (Prometheus text, JSON, pprof) on this address, e.g. :8080")
		obsWait  = flag.Duration("obs-linger", 0, "keep the -obs listener alive this long after the run (for scraping a finished run)")
		obsIv    = flag.Duration("obs-sample", obs.DefaultSampleInterval, "runtime-stats sampling interval for the -obs registry")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all          run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := harness.Options{Out: os.Stdout, Scale: *scale, Iterations: *iters, Quick: *quick,
		Faults: *faults, CkptInterval: *ckptIv, Deltas: *deltas}
	if *jsonOut {
		// JSON owns stdout so pipelines stay parseable; tables go to stderr.
		opt.Out = os.Stderr
		opt.JSON = os.Stdout
	}
	// Observability and profiling all hang off the tracer's metrics
	// registry, so any of those flags implies tracing.
	if *traceOut != "" || *jsonOut || *obsAddr != "" || *cpuProf != "" || *memProf != "" {
		opt.Trace = trace.New()
	}
	var sampler *obs.Sampler
	var server *obs.Server
	if *obsAddr != "" {
		reg := opt.Trace.Registry()
		var err error
		server, err = obs.Serve(*obsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: obs listener:", err)
			os.Exit(1)
		}
		defer server.Close()
		sampler = obs.StartSampler(reg, *obsIv)
		fmt.Fprintf(os.Stderr, "graphbench: serving metrics on http://%s/metrics (pprof at /debug/pprof/)\n", server.Addr())
	}
	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "graphbench: cpuprofile:", err)
			}
		}()
	}
	if *nodes != "" {
		for _, part := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "graphbench: bad -nodes entry %q\n", part)
				os.Exit(2)
			}
			opt.Nodes = append(opt.Nodes, n)
		}
	}
	if err := harness.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := opt.Trace.WriteChromeTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: writing trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphbench: wrote trace to %s (load at https://ui.perfetto.dev)\n", *traceOut)
	}
	if *memProf != "" {
		if err := obs.WriteHeapProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: memprofile:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphbench: wrote heap profile to %s\n", *memProf)
	}
	if server != nil && *obsWait > 0 {
		// Final runtime sample, then hold the listener open so the finished
		// run's histograms can still be scraped.
		sampler.Stop()
		fmt.Fprintf(os.Stderr, "graphbench: obs listener lingering %s on http://%s/\n", *obsWait, server.Addr())
		time.Sleep(*obsWait)
	} else {
		sampler.Stop()
	}
}
