// Package combblas reimplements the Combinatorial BLAS programming model
// (paper §3): graphs are sparse matrices, algorithms are compositions of
// SpMV / SpGEMM / element-wise operations over user-defined semirings, and
// the distribution is a 2-D block decomposition over a perfect-square
// process grid driven by MPI.
package combblas

import (
	"fmt"

	"graphmaze/internal/backend"
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
)

// SpMat is a sparse matrix in CSR layout with generic nonzero values.
// Rows index the first matrix dimension; Cols holds the column of each
// nonzero.
type SpMat[T any] struct {
	NumRows, NumCols uint32
	Offsets          []int64
	Cols             []uint32
	Vals             []T
}

// NNZ reports the number of stored nonzeros.
func (m *SpMat[T]) NNZ() int64 { return int64(len(m.Cols)) }

// Row returns row r's column indices and values (aliases the matrix).
func (m *SpMat[T]) Row(r uint32) ([]uint32, []T) {
	lo, hi := m.Offsets[r], m.Offsets[r+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// MemoryBytes estimates the resident size given bytesPerVal for T.
func (m *SpMat[T]) MemoryBytes(bytesPerVal int64) int64 {
	return int64(len(m.Offsets))*8 + int64(len(m.Cols))*4 + m.NNZ()*bytesPerVal
}

// FromGraph builds a pattern matrix (struct{} values) from a CSR graph:
// A[src,dst] = 1 for every edge.
func FromGraph(g *graph.CSR) *SpMat[struct{}] {
	return &SpMat[struct{}]{
		NumRows: g.NumVertices,
		NumCols: g.TargetSpace(),
		Offsets: g.Offsets,
		Cols:    g.Targets,
		Vals:    make([]struct{}, len(g.Targets)),
	}
}

// FromWeightedGraph builds a float32-valued matrix from a weighted CSR.
func FromWeightedGraph(g *graph.CSR) (*SpMat[float32], error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("combblas: graph has no weights")
	}
	return &SpMat[float32]{
		NumRows: g.NumVertices,
		NumCols: g.TargetSpace(),
		Offsets: g.Offsets,
		Cols:    g.Targets,
		Vals:    g.Weights,
	}, nil
}

// Transpose returns the matrix with rows and columns exchanged.
func (m *SpMat[T]) Transpose() *SpMat[T] {
	offsets := make([]int64, m.NumCols+1)
	for _, c := range m.Cols {
		offsets[c+1]++
	}
	for i := 1; i < len(offsets); i++ {
		offsets[i] += offsets[i-1]
	}
	cols := make([]uint32, len(m.Cols))
	vals := make([]T, len(m.Vals))
	cursor := make([]int64, m.NumCols)
	for r := uint32(0); r < m.NumRows; r++ {
		lo, hi := m.Offsets[r], m.Offsets[r+1]
		for i := lo; i < hi; i++ {
			c := m.Cols[i]
			pos := offsets[c] + cursor[c]
			cols[pos] = r
			vals[pos] = m.Vals[i]
			cursor[c]++
		}
	}
	return &SpMat[T]{NumRows: m.NumCols, NumCols: m.NumRows, Offsets: offsets, Cols: cols, Vals: vals}
}

// Semiring defines the ⊗/⊕ pair for SpMV-style operations: Mul combines a
// nonzero with a vector element, Add accumulates, Zero is the additive
// identity.
type Semiring[A, X, Y any] struct {
	Mul  func(a A, x X) Y
	Add  func(p, q Y) Y
	Zero func() Y
}

// PlusTimesF64 is the arithmetic semiring over float64 with pattern
// nonzeros.
func PlusTimesF64() Semiring[struct{}, float64, float64] {
	return Semiring[struct{}, float64, float64]{
		Mul:  func(_ struct{}, x float64) float64 { return x },
		Add:  func(p, q float64) float64 { return p + q },
		Zero: func() float64 { return 0 },
	}
}

// MinPlusI32 is the tropical semiring used for BFS/shortest hops; the
// "infinity" is 1<<30.
func MinPlusI32() Semiring[struct{}, int32, int32] {
	const inf = int32(1) << 30
	return Semiring[struct{}, int32, int32]{
		Mul: func(_ struct{}, x int32) int32 {
			if x >= inf {
				return inf
			}
			return x + 1
		},
		Add: func(p, q int32) int32 {
			if p < q {
				return p
			}
			return q
		},
		Zero: func() int32 { return inf },
	}
}

// OrAndBool is the boolean semiring for reachability frontiers.
func OrAndBool() Semiring[struct{}, bool, bool] {
	return Semiring[struct{}, bool, bool]{
		Mul:  func(_ struct{}, x bool) bool { return x },
		Add:  func(p, q bool) bool { return p || q },
		Zero: func() bool { return false },
	}
}

// PlusTimesWeighted multiplies float32 nonzeros with float64 vector
// entries.
func PlusTimesWeighted() Semiring[float32, float64, float64] {
	return Semiring[float32, float64, float64]{
		Mul:  func(a float32, x float64) float64 { return float64(a) * x },
		Add:  func(p, q float64) float64 { return p + q },
		Zero: func() float64 { return 0 },
	}
}

// backendView wraps the matrix's CSR arrays as a backend pattern matrix
// (no copy) so the SpMV primitives delegate to the shared kernels.
func backendView[A any](m *SpMat[A]) *backend.Matrix {
	return &backend.Matrix{NumRows: m.NumRows, Offsets: m.Offsets, Cols: m.Cols}
}

// SpMVInto computes y[r] = ⊕_c A[r,c] ⊗ x[c] into the caller-provided y,
// delegating the row-wise gather to the shared backend (edge-balanced row
// splits: equal row counts would serialize the hub rows of a power-law
// matrix onto one worker, paper §3.1). Iterative algorithms reuse y
// across calls, so the per-iteration allocation the old SpMV paid is
// gone.
func SpMVInto[A, X, Y any](m *SpMat[A], x []X, y []Y, sr Semiring[A, X, Y]) error {
	if len(x) != int(m.NumCols) {
		return fmt.Errorf("combblas: SpMV vector length %d, matrix has %d columns", len(x), m.NumCols)
	}
	if len(y) != int(m.NumRows) {
		return fmt.Errorf("combblas: SpMV output length %d, matrix has %d rows", len(y), m.NumRows)
	}
	backend.SpMVInto(backendView(m), m.Vals, x, y, backend.Semiring[A, X, Y](sr))
	return nil
}

// SpMV is the allocating convenience wrapper over SpMVInto.
func SpMV[A, X, Y any](m *SpMat[A], x []X, sr Semiring[A, X, Y]) ([]Y, error) {
	if len(x) != int(m.NumCols) {
		return nil, fmt.Errorf("combblas: SpMV vector length %d, matrix has %d columns", len(x), m.NumCols)
	}
	y := make([]Y, m.NumRows)
	if err := SpMVInto(m, x, y, sr); err != nil {
		return nil, err
	}
	return y, nil
}

// SpMSpV computes the boolean product y = xᵀA for a sparse input vector
// (an index list over rows of A), returning the deduplicated index list of
// nonzero outputs — the frontier expansion CombBLAS BFS uses instead of a
// dense SpMV when the frontier is small. The or-and semiring fold reduces
// to exactly the backend's claim-based expansion, so the call delegates
// there (first-encounter order, marks left clean).
func SpMSpV(a *SpMat[struct{}], x []uint32, marks []bool) []uint32 {
	return backend.ExpandInto(backendView(a), x, marks, nil)
}

// spgemmGrain is the dynamic chunk size for SpGEMM's row loop.
const spgemmGrain = 128

// SpGEMM computes C = A·B over the counting semiring (values are the
// number of combined paths, the quantity triangle counting needs from A²)
// using Gustavson's row-by-row algorithm with a dense accumulator — the
// memory-hungry intermediate the paper calls out (§5.2: CombBLAS "ran out
// of memory ... while computing the A² matrix product").
func SpGEMM(a *SpMat[struct{}], b *SpMat[struct{}]) (*SpMat[int64], error) {
	if a.NumCols != b.NumRows {
		return nil, fmt.Errorf("combblas: SpGEMM shape mismatch %d×%d · %d×%d", a.NumRows, a.NumCols, b.NumRows, b.NumCols)
	}
	offsets := make([]int64, a.NumRows+1)
	rowsCols := make([][]uint32, a.NumRows)
	rowsVals := make([][]int64, a.NumRows)
	// Per-row cost is the sum of B-row lengths over the row's nonzeros —
	// unpredictable from A's structure alone — so rows are claimed
	// dynamically, with the accumulator map reused per worker.
	accs := make([]map[uint32]int64, par.NumWorkers())
	par.ForDynamicIndexed(int(a.NumRows), spgemmGrain, func(worker, lo, hi int) {
		acc := accs[worker]
		if acc == nil {
			acc = make(map[uint32]int64)
			accs[worker] = acc
		}
		for r := lo; r < hi; r++ {
			clear(acc)
			aCols, _ := a.Row(uint32(r))
			for _, j := range aCols {
				bCols, _ := b.Row(j)
				for _, k := range bCols {
					acc[k]++
				}
			}
			if len(acc) == 0 {
				continue
			}
			cols := make([]uint32, 0, len(acc))
			for k := range acc {
				cols = append(cols, k)
			}
			sortU32(cols)
			vals := make([]int64, len(cols))
			for i, k := range cols {
				vals[i] = acc[k]
			}
			rowsCols[r] = cols
			rowsVals[r] = vals
		}
	})
	for r := uint32(0); r < a.NumRows; r++ {
		offsets[r+1] = offsets[r] + int64(len(rowsCols[r]))
	}
	cols := make([]uint32, offsets[a.NumRows])
	vals := make([]int64, offsets[a.NumRows])
	for r := uint32(0); r < a.NumRows; r++ {
		copy(cols[offsets[r]:], rowsCols[r])
		copy(vals[offsets[r]:], rowsVals[r])
	}
	return &SpMat[int64]{NumRows: a.NumRows, NumCols: b.NumCols, Offsets: offsets, Cols: cols, Vals: vals}, nil
}

// EWiseMultSum returns Σ over positions present in both pattern matrix a
// and value matrix b of b's value — nnz(A ∩ A²) weighted, the triangle
// count reduction. Both matrices must share shape and have sorted columns.
func EWiseMultSum(a *SpMat[struct{}], b *SpMat[int64]) (int64, error) {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		return 0, fmt.Errorf("combblas: EWiseMult shape mismatch")
	}
	var total int64
	results := make([]int64, a.NumRows)
	par.ForOffsets(a.Offsets, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			aCols, _ := a.Row(uint32(r))
			bCols, bVals := b.Row(uint32(r))
			var sum int64
			i, j := 0, 0
			for i < len(aCols) && j < len(bCols) {
				switch {
				case aCols[i] < bCols[j]:
					i++
				case aCols[i] > bCols[j]:
					j++
				default:
					sum += bVals[j]
					i++
					j++
				}
			}
			results[r] = sum
		}
	})
	for _, s := range results {
		total += s
	}
	return total, nil
}

func sortU32(ids []uint32) {
	if len(ids) < 2 {
		return
	}
	// Insertion sort for short rows, else a simple quicksort.
	if len(ids) <= 24 {
		for i := 1; i < len(ids); i++ {
			v := ids[i]
			j := i - 1
			for j >= 0 && ids[j] > v {
				ids[j+1] = ids[j]
				j--
			}
			ids[j+1] = v
		}
		return
	}
	pivot := ids[len(ids)/2]
	i, j := 0, len(ids)-1
	for i <= j {
		for ids[i] < pivot {
			i++
		}
		for ids[j] > pivot {
			j--
		}
		if i <= j {
			ids[i], ids[j] = ids[j], ids[i]
			i++
			j--
		}
	}
	sortU32(ids[:j+1])
	sortU32(ids[i:])
}

// ReduceInto folds every row of the matrix to a scalar with the
// semiring's ⊕ over ⊗-mapped nonzeros — CombBLAS's row-wise Reduce
// primitive — into the caller-provided out slice (len NumRows).
func ReduceInto[A, X, Y any](m *SpMat[A], x X, out []Y, sr Semiring[A, X, Y]) error {
	if len(out) != int(m.NumRows) {
		return fmt.Errorf("combblas: Reduce output length %d, matrix has %d rows", len(out), m.NumRows)
	}
	par.ForOffsets(m.Offsets, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			acc := sr.Zero()
			_, vals := m.Row(uint32(r))
			for i := range vals {
				acc = sr.Add(acc, sr.Mul(vals[i], x))
			}
			out[r] = acc
		}
	})
	return nil
}

// Reduce is the allocating convenience wrapper over ReduceInto. The
// engine's PageRank uses it to derive the degree vector.
func Reduce[A, X, Y any](m *SpMat[A], x X, sr Semiring[A, X, Y]) []Y {
	out := make([]Y, m.NumRows)
	_ = ReduceInto(m, x, out, sr) // out is sized to NumRows: cannot fail
	return out
}

// Apply maps fn over a dense vector in place — CombBLAS's element-wise
// Apply primitive for the "data parallel operations on dense vectors" the
// paper's CF and PageRank formulations need.
func Apply[T any](v []T, fn func(i int, x T) T) {
	par.For(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] = fn(i, v[i])
		}
	})
}
