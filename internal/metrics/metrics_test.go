package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(4, 8, 1<<30)
	c.AddPhase(2.0, 1.5, 0.5, 16.0)
	c.AddPhase(1.0, 0.5, 0.5, 8.0)
	c.AddTraffic(1000, 2, 2000)
	c.AddTraffic(3000, 1, 1500)
	c.RecordMemory(0, 100)
	c.RecordMemory(1, 500)
	c.RecordMemory(1, 300) // lower: ignored

	r := c.Report()
	if r.SimulatedSeconds != 3.0 {
		t.Errorf("SimulatedSeconds = %v", r.SimulatedSeconds)
	}
	if r.ComputeSeconds != 2.0 || r.NetworkSeconds != 1.0 {
		t.Errorf("compute/network = %v/%v", r.ComputeSeconds, r.NetworkSeconds)
	}
	if r.BytesSent != 4000 || r.MessagesSent != 3 {
		t.Errorf("traffic = %d/%d", r.BytesSent, r.MessagesSent)
	}
	if r.PeakNetworkBandwidth != 2000 {
		t.Errorf("PeakNetworkBandwidth = %v", r.PeakNetworkBandwidth)
	}
	if r.MemoryFootprintBytes != 500 {
		t.Errorf("MemoryFootprintBytes = %d", r.MemoryFootprintBytes)
	}
	// util = 24 busy / (3s × 8 threads × 4 nodes) = 0.25
	if r.CPUUtilization != 0.25 {
		t.Errorf("CPUUtilization = %v, want 0.25", r.CPUUtilization)
	}
}

func TestCPUUtilizationCapped(t *testing.T) {
	c := NewCollector(1, 1, 0)
	c.AddPhase(1.0, 1.0, 0, 100)
	if r := c.Report(); r.CPUUtilization != 1 {
		t.Errorf("CPUUtilization = %v, want capped at 1", r.CPUUtilization)
	}
}

func TestEmptyReport(t *testing.T) {
	r := NewCollector(2, 4, 0).Report()
	if r.CPUUtilization != 0 || r.SimulatedSeconds != 0 {
		t.Errorf("empty report not zeroed: %+v", r)
	}
	if r.MemoryFraction() != 0 {
		t.Errorf("MemoryFraction with no capacity = %v", r.MemoryFraction())
	}
}

func TestMemoryFraction(t *testing.T) {
	c := NewCollector(1, 1, 1000)
	c.RecordMemory(0, 250)
	if f := c.Report().MemoryFraction(); f != 0.25 {
		t.Errorf("MemoryFraction = %v, want 0.25", f)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector(8, 4, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddTraffic(1, 1, 100)
				c.RecordMemory(n, int64(j))
			}
		}(i)
	}
	wg.Wait()
	r := c.Report()
	if r.BytesSent != 800 || r.MessagesSent != 800 {
		t.Errorf("concurrent traffic lost: %d/%d", r.BytesSent, r.MessagesSent)
	}
	if r.MemoryFootprintBytes != 99 {
		t.Errorf("MemoryFootprintBytes = %d, want 99", r.MemoryFootprintBytes)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{Nodes: 4, SimulatedSeconds: 1.5, CPUUtilization: 0.5, BytesSent: 2048}
	s := r.String()
	for _, frag := range []string{"nodes=4", "cpu=50%", "2.0KB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestFormatTable(t *testing.T) {
	reports := []Report{
		{CPUUtilization: 0.9, PeakNetworkBandwidth: 5e9, BytesSent: 100, MemoryFootprintBytes: 10, MemoryPerNode: 100},
		{CPUUtilization: 0.1, PeakNetworkBandwidth: 0.5e9, BytesSent: 400, MemoryFootprintBytes: 50, MemoryPerNode: 100},
	}
	out := FormatTable([]string{"native", "giraph"}, reports, 5.5e9)
	if !strings.Contains(out, "native") || !strings.Contains(out, "giraph") {
		t.Fatalf("table missing rows: %q", out)
	}
	if !strings.Contains(out, "100.0") { // giraph sends the max bytes
		t.Errorf("table missing normalized 100%% row: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines, want header + 2 rows", len(lines))
	}
}
