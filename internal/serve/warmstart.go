package serve

import (
	"fmt"
	"os"

	"graphmaze/internal/graph"
)

// SaveSnapshotFile persists one epoch snapshot to path using the graph
// codec. The file round-trips the epoch number, so a warm-started service
// resumes delta numbering where the previous process stopped.
func SaveSnapshotFile(path string, snap *graph.Snapshot) error {
	blob, err := graph.EncodeSnapshot(nil, snap)
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshotFile decodes a snapshot persisted by SaveSnapshotFile.
func LoadSnapshotFile(path string) (*graph.Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, rest, err := graph.DecodeSnapshot(blob)
	if err != nil {
		return nil, fmt.Errorf("serve: decoding %s: %w", path, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("serve: %s has %d trailing bytes after the snapshot", path, len(rest))
	}
	return snap, nil
}

// WarmStart resumes a versioned graph from a persisted snapshot file:
// the startup path that skips rebuilding from edge lists entirely.
func WarmStart(path string, opts graph.DeltaOptions) (*graph.Versioned, error) {
	snap, err := LoadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return graph.ResumeVersioned(snap, opts)
}
