// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array on stdout, so benchmark runs can be committed
// and diffed as data:
//
//	go test -bench 'Skewed' -run '^$' ./internal/par | go run ./cmd/benchjson > BENCH_par.json
//
// Each benchmark result line becomes one object holding the benchmark
// name (sub-benchmark path and GOMAXPROCS suffix intact), iteration
// count, ns/op, and any extra metrics the benchmark reported (B/op,
// allocs/op, custom ReportMetric units). Context lines (goos, goarch,
// pkg, cpu) are captured once into every object emitted under that
// header.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]result, error) {
	results := []result{}
	var pkg, cpu string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name iterations value unit [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Package: pkg, CPU: cpu, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = val
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
