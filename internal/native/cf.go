package native

import (
	"encoding/binary"
	"math"
	"math/rand"
	"time"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
)

// CollabFilter implements core.Engine. The native code implements true
// Stochastic Gradient Descent with Gemulla et al.'s diagonal block
// parallelization (paper §3.2 and §6.1.2) as well as full-batch Gradient
// Descent for apples-to-apples per-iteration comparisons with the
// frameworks that cannot express SGD.
func (e *Engine) CollabFilter(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	opt, err := core.CheckCFInput(r, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return e.cfCluster(r, opt)
	}
	start := time.Now()
	var res *core.CFResult
	if opt.Method == core.SGD {
		res = e.sgdLocal(r, opt)
	} else {
		res = e.gdLocal(r, opt)
	}
	res.Stats.WallSeconds = time.Since(start).Seconds()
	res.Stats.Iterations = opt.Iterations
	return res, nil
}

// blockEdge is one rating inside a (user-stripe, item-stripe) block.
type blockEdge struct {
	u, v   uint32
	rating float32
}

// buildBlocks groups ratings into a W×W grid of blocks over contiguous
// user and item stripes — Gemulla's partitioning: blocks on the same
// diagonal touch disjoint users and items, so they update without locks.
func buildBlocks(r *graph.Bipartite, w int) (blocks [][]blockEdge, userStripe, itemStripe []uint32) {
	userStripe = stripeBounds(r.NumUsers, w)
	itemStripe = stripeBounds(r.NumItems, w)
	blocks = make([][]blockEdge, w*w)
	for u := uint32(0); u < r.NumUsers; u++ {
		su := stripeOf(userStripe, u)
		adj, wts := r.ByUser.Neighbors(u), r.ByUser.EdgeWeights(u)
		for i, v := range adj {
			sv := stripeOf(itemStripe, v)
			idx := su*w + sv
			blocks[idx] = append(blocks[idx], blockEdge{u: u, v: v, rating: wts[i]})
		}
	}
	return blocks, userStripe, itemStripe
}

func stripeBounds(n uint32, w int) []uint32 {
	b := make([]uint32, w+1)
	for i := 0; i <= w; i++ {
		b[i] = graph.MustU32(int64(uint64(n) * uint64(i) / uint64(w)))
	}
	return b
}

func stripeOf(bounds []uint32, v uint32) int {
	lo, hi := 0, len(bounds)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// sgdLocal runs diagonal-parallel SGD: W sub-steps per iteration, each
// processing the W blocks of one diagonal concurrently.
func (e *Engine) sgdLocal(r *graph.Bipartite, opt core.CFOptions) *core.CFResult {
	k := opt.K
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)
	w := numStripes(r)
	blocks, _, _ := buildBlocks(r, w)

	// Pre-shuffle each block once with a deterministic seed; SGD requires
	// random visit order within blocks.
	for i := range blocks {
		rng := rand.New(rand.NewSource(opt.Seed + int64(i)*7919))
		rng.Shuffle(len(blocks[i]), func(a, b int) {
			blocks[i][a], blocks[i][b] = blocks[i][b], blocks[i][a]
		})
	}

	rmse := make([]float64, 0, opt.Iterations)
	gamma := opt.LearningRate
	for it := 0; it < opt.Iterations; it++ {
		for sub := 0; sub < w; sub++ {
			parallelFor(w, func(lo, hi int) {
				for stripe := lo; stripe < hi; stripe++ {
					block := blocks[stripe*w+(stripe+sub)%w]
					sgdBlock(block, userF, itemF, k, gamma, opt)
				}
			})
		}
		gamma *= opt.StepDecay
		if !opt.SkipRMSETrajectory {
			rmse = append(rmse, core.RMSE(r, k, userF, itemF))
		}
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, core.RMSE(r, k, userF, itemF))
	}
	return &core.CFResult{K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse}
}

// numStripes picks the SGD grid width: enough for parallelism without
// making blocks degenerate on small inputs.
func numStripes(r *graph.Bipartite) int {
	w := 8
	for uint32(w) > r.NumUsers || uint32(w) > r.NumItems {
		w /= 2
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sgdBlock applies the paper's update equations (5)–(8) to every rating in
// the block.
func sgdBlock(block []blockEdge, userF, itemF []float32, k int, gamma float64, opt core.CFOptions) {
	for _, edge := range block {
		pu := userF[int(edge.u)*k : int(edge.u+1)*k]
		qv := itemF[int(edge.v)*k : int(edge.v+1)*k]
		euv := float64(edge.rating) - core.Dot(pu, qv)
		for d := 0; d < k; d++ {
			pud, qvd := float64(pu[d]), float64(qv[d])
			pu[d] = float32(pud + gamma*(euv*qvd-opt.LambdaP*pud))
			qv[d] = float32(qvd + gamma*(euv*pud-opt.LambdaQ*qvd))
		}
	}
}

// gdLocal runs full-batch gradient descent (paper eqs. 11–12), parallel
// over users for P-gradients and over items for Q-gradients.
func (e *Engine) gdLocal(r *graph.Bipartite, opt core.CFOptions) *core.CFResult {
	k := opt.K
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)
	gradP := make([]float32, len(userF))
	gradQ := make([]float32, len(itemF))
	rmse := make([]float64, 0, opt.Iterations)
	gamma := opt.LearningRate

	for it := 0; it < opt.Iterations; it++ {
		parallelFor(int(r.NumUsers), func(lo, hi int) {
			for u := lo; u < hi; u++ {
				adj, wts := r.ByUser.Neighbors(uint32(u)), r.ByUser.EdgeWeights(uint32(u))
				pu := userF[u*k : (u+1)*k]
				gp := gradP[u*k : (u+1)*k]
				for d := range gp {
					gp[d] = 0
				}
				for i, v := range adj {
					qv := itemF[int(v)*k : int(v+1)*k]
					err := float64(wts[i]) - core.Dot(pu, qv)
					for d := 0; d < k; d++ {
						gp[d] += float32(err*float64(qv[d]) - opt.LambdaP*float64(pu[d]))
					}
				}
			}
		})
		parallelFor(int(r.NumItems), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				adj, wts := r.ByItem.Neighbors(uint32(v)), r.ByItem.EdgeWeights(uint32(v))
				qv := itemF[v*k : (v+1)*k]
				gq := gradQ[v*k : (v+1)*k]
				for d := range gq {
					gq[d] = 0
				}
				for i, u := range adj {
					pu := userF[int(u)*k : int(u+1)*k]
					err := float64(wts[i]) - core.Dot(pu, qv)
					for d := 0; d < k; d++ {
						gq[d] += float32(err*float64(pu[d]) - opt.LambdaQ*float64(qv[d]))
					}
				}
			}
		})
		applyGradient(userF, gradP, gamma)
		applyGradient(itemF, gradQ, gamma)
		gamma *= opt.StepDecay
		if !opt.SkipRMSETrajectory {
			rmse = append(rmse, core.RMSE(r, k, userF, itemF))
		}
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, core.RMSE(r, k, userF, itemF))
	}
	return &core.CFResult{K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse}
}

func applyGradient(f, grad []float32, gamma float64) {
	parallelFor(len(f), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f[i] += float32(gamma) * grad[i]
		}
	})
}

// cfCluster runs distributed CF. SGD uses Gemulla's rotation: node i holds
// user stripe i permanently; item stripes rotate around the ring once per
// iteration, so each iteration is N sub-steps and each node ships one item
// stripe per sub-step (K·4 bytes per item, the paper's network-heavy CF
// pattern). GD aggregates partial item gradients at item owners.
func (e *Engine) cfCluster(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	cfg := *opt.Exec.Cluster
	cfg.Overlap = e.tuning.Overlap
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	k := opt.K
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)
	n := c.Nodes()
	blocks, userStripe, itemStripe := buildBlocks(r, n)

	for node := 0; node < n; node++ {
		users := int64(userStripe[node+1] - userStripe[node])
		items := int64(itemStripe[node+1] - itemStripe[node])
		var ratings int64
		for sv := 0; sv < n; sv++ {
			ratings += int64(len(blocks[node*n+sv]))
		}
		c.SetBaselineMemory(node, users*int64(k)*4+items*int64(k)*4+ratings*12)
	}

	if opt.Method == core.SGD {
		for i := range blocks {
			rng := rand.New(rand.NewSource(opt.Seed + int64(i)*7919))
			rng.Shuffle(len(blocks[i]), func(a, b int) {
				blocks[i][a], blocks[i][b] = blocks[i][b], blocks[i][a]
			})
		}
	}

	rmse := make([]float64, 0, opt.Iterations)
	gamma := opt.LearningRate
	for it := 0; it < opt.Iterations; it++ {
		if opt.Method == core.SGD {
			for sub := 0; sub < n; sub++ {
				err := c.RunPhase(func(node int) error {
					// Install the item stripe received from the right
					// neighbour (identical values already live in shared
					// memory; decoding keeps the protocol honest).
					for _, payload := range c.Recv(node) {
						if err := decodeStripe(payload, itemF, k); err != nil {
							return err
						}
					}
					stripe := (node + sub) % n
					sgdBlock(blocks[node*n+stripe], userF, itemF, k, gamma, opt)
					if n > 1 {
						lo, hi := itemStripe[stripe], itemStripe[stripe+1]
						c.Send(node, (node+n-1)%n, encodeStripe(lo, hi, itemF, k))
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
		} else {
			// GD: one gradient phase (partial item gradients travel to
			// item owners) + one apply phase.
			gradP := make([]float32, len(userF))
			gradQ := make([]float32, len(itemF))
			err := c.RunPhase(func(node int) error {
				var remoteItems int64
				touched := make(map[uint32]bool)
				for sv := 0; sv < n; sv++ {
					for _, edge := range blocks[node*n+sv] {
						pu := userF[int(edge.u)*k : int(edge.u+1)*k]
						qv := itemF[int(edge.v)*k : int(edge.v+1)*k]
						errv := float64(edge.rating) - core.Dot(pu, qv)
						gp := gradP[int(edge.u)*k : int(edge.u+1)*k]
						gq := gradQ[int(edge.v)*k : int(edge.v+1)*k]
						for d := 0; d < k; d++ {
							gp[d] += float32(errv*float64(qv[d]) - opt.LambdaP*float64(pu[d]))
							gq[d] += float32(errv*float64(pu[d]) - opt.LambdaQ*float64(qv[d]))
						}
						if sv != node && !touched[edge.v] {
							touched[edge.v] = true
							remoteItems++
						}
					}
				}
				// Partial gradients for remote items: K floats + id each.
				if remoteItems > 0 {
					c.Account(node, remoteItems*(int64(k)*4+4), int64(n-1))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			err = c.RunPhase(func(node int) error {
				ulo, uhi := userStripe[node], userStripe[node+1]
				for i := int(ulo) * k; i < int(uhi)*k; i++ {
					userF[i] += float32(gamma) * gradP[i]
				}
				ilo, ihi := itemStripe[node], itemStripe[node+1]
				for i := int(ilo) * k; i < int(ihi)*k; i++ {
					itemF[i] += float32(gamma) * gradQ[i]
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		gamma *= opt.StepDecay
		if !opt.SkipRMSETrajectory {
			rmse = append(rmse, core.RMSE(r, k, userF, itemF))
		}
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, core.RMSE(r, k, userF, itemF))
	}

	return &core.CFResult{
		K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse,
		Stats: core.RunStats{
			WallSeconds: c.Report().SimulatedSeconds,
			Simulated:   true,
			Iterations:  opt.Iterations,
			Report:      c.Report(),
		},
	}, nil
}

// encodeStripe frames item factors [lo,hi) as lo, count, then K·count
// float32 values.
func encodeStripe(lo, hi uint32, itemF []float32, k int) []byte {
	count := int(hi - lo)
	out := make([]byte, 8+4*count*k)
	binary.LittleEndian.PutUint32(out, lo)
	binary.LittleEndian.PutUint32(out[4:], uint32(count))
	pos := 8
	for i := int(lo) * k; i < int(hi)*k; i++ {
		binary.LittleEndian.PutUint32(out[pos:], math.Float32bits(itemF[i]))
		pos += 4
	}
	return out
}

// decodeStripe writes a stripe frame back into the factor array. The
// payload may hold several concatenated frames.
func decodeStripe(payload []byte, itemF []float32, k int) error {
	for len(payload) > 0 {
		if len(payload) < 8 {
			return errShortFrame
		}
		lo := binary.LittleEndian.Uint32(payload)
		count := int(binary.LittleEndian.Uint32(payload[4:]))
		need := 8 + 4*count*k
		if len(payload) < need {
			return errShortFrame
		}
		pos := 8
		for i := int(lo) * k; i < (int(lo)+count)*k; i++ {
			itemF[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[pos:]))
			pos += 4
		}
		payload = payload[need:]
	}
	return nil
}
