package par

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// OffsetSplits returns k+1 vertex boundaries over a CSR prefix-sum array
// (offsets has one entry per vertex plus a final total), chosen so each
// range [b[i], b[i+1]) holds roughly total/k edges. Boundaries come from
// a binary search on the offsets the CSR already stores, so the split
// costs O(k log n) time and no extra memory. Bounds are non-decreasing;
// a hub vertex that exceeds the per-part budget leaves later parts empty
// rather than splitting the vertex.
func OffsetSplits(offsets []int64, k int) []int {
	n := len(offsets) - 1
	if n < 0 {
		n = 0
	}
	if k < 1 {
		k = 1
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	if n == 0 {
		return bounds
	}
	base := offsets[0]
	total := offsets[n] - base
	for p := 1; p < k; p++ {
		target := base + total*int64(p)/int64(k)
		v := sort.Search(n, func(v int) bool { return offsets[v] >= target })
		if v < bounds[p-1] {
			v = bounds[p-1]
		}
		bounds[p] = v
	}
	return bounds
}

// ForOffsets runs body over the vertex range [0, len(offsets)-1) in
// contiguous chunks holding roughly equal numbers of *edges*, using the
// CSR prefix-sum array to place the cuts. This is the paper's §3.1
// native partitioning choice: on power-law graphs an equal-vertex split
// hands one worker all the hubs, while the edge-balanced split equalizes
// the actual per-edge work. A graph with no edges falls back to the
// equal-vertex split.
func ForOffsets(offsets []int64, body func(lo, hi int)) {
	ForOffsetsWorkers(runtime.GOMAXPROCS(0), offsets, body)
}

// ForOffsetsWorkers is ForOffsets with an explicit worker cap.
func ForOffsetsWorkers(workers int, offsets []int64, body func(lo, hi int)) {
	n := len(offsets) - 1
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if sc := sched.Load(); sc != nil {
			start := time.Now()
			body(0, n)
			observeChunk(sc, 0, 0, n, start)
			return
		}
		body(0, n)
		return
	}
	if offsets[n] == offsets[0] {
		ForWorkers(workers, n, body)
		return
	}
	sc := sched.Load()
	bounds := OffsetSplits(offsets, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			start := time.Time{}
			if sc != nil {
				start = time.Now()
			}
			body(lo, hi)
			if sc != nil {
				observeChunk(sc, w, lo, hi, start)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}
