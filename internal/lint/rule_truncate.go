package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TruncateRule flags integer conversions that can silently corrupt vertex
// and edge indices at Twitter/Graph500 scale: narrowing a 64-bit value (or
// a len/cap result) into int32/uint32 drops the high bits without a trace,
// and on a graph with more than 2^32 edges the corruption is data-dependent
// and invisible in small tests. Conversions must either go through the
// checked graph.MustU32/MustI32 helpers or carry a //lint:ignore with the
// bound that makes them safe.
//
// The rule deliberately does not flag uint32(i) over an int loop variable:
// vertex ids are uint32 by design throughout the module, loops over
// [0, NumVertices) are bounded by a uint32, and flagging the idiom would
// drown the real findings. Signed int32 targets, 64-bit sources, and direct
// len()/cap() narrowing are where truncation bugs actually live.
//
// It applies to the graph and generator layers plus every engine package —
// the code that manipulates indices at full dataset scale.
type TruncateRule struct{}

// Name implements Rule.
func (*TruncateRule) Name() string { return "truncate" }

// Doc implements Rule.
func (*TruncateRule) Doc() string {
	return "no unchecked 64-bit (or len/cap) narrowing to int32/uint32 in graph/gen/engine code"
}

// Check implements Rule.
func (r *TruncateRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Rel != "internal/graph" && p.Rel != "internal/gen" && !isEngine(p.Rel) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target, ok := tv.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			if target.Kind() != types.Int32 && target.Kind() != types.Uint32 {
				return true
			}
			arg := call.Args[0]
			argTV, ok := p.Info.Types[arg]
			if !ok || argTV.Value != nil {
				// Constants are checked by the compiler: uint32(1) is fine.
				return true
			}
			src, ok := argTV.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			switch {
			case src.Kind() == types.Int64 || src.Kind() == types.Uint64:
				report(call.Pos(), "unchecked conversion of %s to %s truncates above 2^32: use graph.MustU32/MustI32 or prove the bound", src.Name(), target.Name())
			case isLenOrCap(p, arg):
				report(call.Pos(), "unchecked conversion of len/cap to %s truncates above 2^32: use graph.MustU32/MustI32 or prove the bound", target.Name())
			case target.Kind() == types.Int32 && (src.Kind() == types.Int || src.Kind() == types.Uint || src.Kind() == types.Uintptr):
				report(call.Pos(), "unchecked conversion of %s to int32 truncates above 2^31: use graph.MustI32 or prove the bound", src.Name())
			}
			return true
		})
	}
}

// isLenOrCap reports whether expr is a direct len(...) or cap(...) call.
func isLenOrCap(p *Package, expr ast.Expr) bool {
	if paren, ok := expr.(*ast.ParenExpr); ok {
		return isLenOrCap(p, paren.X)
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[ident].(*types.Builtin)
	return ok && (obj.Name() == "len" || obj.Name() == "cap")
}
