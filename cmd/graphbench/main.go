// Command graphbench reproduces the tables and figures of "Navigating the
// Maze of Graph Analytics Frameworks using Massive Graph Datasets"
// (SIGMOD 2014).
//
// Usage:
//
//	graphbench -list
//	graphbench -exp table5
//	graphbench -exp fig4 -nodes 1,4,16,64 -scale 12
//	graphbench -exp all -quick
//	graphbench -exp table5 -trace t.json -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphmaze/internal/harness"
	"graphmaze/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Int("scale", 0, "override the base RMAT scale (0 = experiment default)")
		nodes    = flag.String("nodes", "", "comma-separated node counts for scaling experiments")
		iters    = flag.Int("iters", 0, "iterations for iterative algorithms (0 = default)")
		quick    = flag.Bool("quick", false, "shrink inputs for a fast smoke run")
		traceOut = flag.String("trace", "", "write a Chrome trace-event file (load in Perfetto) to this path")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report on stdout (tables move to stderr)")
		faults   = flag.String("faults", "", "fault plan for the faulttol experiment, e.g. 'crash@6:n1,degrade@0-3x4' or 'seed@42:c2'")
		ckptIv   = flag.Int("ckpt-interval", 0, "checkpoint interval in phases for faulttol recovery runs (0 = default)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all          run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := harness.Options{Out: os.Stdout, Scale: *scale, Iterations: *iters, Quick: *quick,
		Faults: *faults, CkptInterval: *ckptIv}
	if *jsonOut {
		// JSON owns stdout so pipelines stay parseable; tables go to stderr.
		opt.Out = os.Stderr
		opt.JSON = os.Stdout
	}
	if *traceOut != "" || *jsonOut {
		opt.Trace = trace.New()
	}
	if *nodes != "" {
		for _, part := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "graphbench: bad -nodes entry %q\n", part)
				os.Exit(2)
			}
			opt.Nodes = append(opt.Nodes, n)
		}
	}
	if err := harness.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := opt.Trace.WriteChromeTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: writing trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphbench: wrote trace to %s (load at https://ui.perfetto.dev)\n", *traceOut)
	}
}
