// Package serve is the always-on graph query service: a long-lived HTTP
// server that loads graphs once into epoch-versioned snapshots and
// answers many concurrent PageRank / BFS / connected-components /
// triangle-count / Datalog queries against them, while delta batches
// keep ingesting.
//
// The request pipeline (DESIGN.md §15) is
//
//	admission → fair queue → epoch pin → result cache → backend pool
//
// Admission is a bounded queue plus a max-in-flight cap: when both are
// full the request is shed with 429 immediately, so overload degrades
// into fast rejections instead of collapse. Queued requests are released
// by per-tenant weighted fair scheduling (start-time fair queuing), so
// one heavy tenant cannot starve the rest. An admitted query pins the
// graph's current epoch with a single atomic load — ingestion via
// ApplyDelta never blocks readers, and a query keeps computing on its
// pinned snapshot however many epochs advance meanwhile. Results are
// cached keyed on (graph, epoch, canonical query fingerprint): the epoch
// in the key means a delta invalidates naturally by changing the key,
// never by flushing, and because every kernel is pinned bit-identical
// across worker counts, a cache hit serves the exact bytes a recompute
// would produce. Misses execute on one shared persistent backend.Pool.
package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"graphmaze/internal/backend"
	"graphmaze/internal/ckpt"
	"graphmaze/internal/graph"
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
)

// Config sizes the service.
type Config struct {
	// Workers is the shared backend pool size; 0 means GOMAXPROCS.
	Workers int
	// MaxInFlight caps concurrently executing queries (default 2×workers).
	MaxInFlight int
	// QueueDepth bounds the admission queue across all tenants; a request
	// arriving with the queue full is shed with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 512 entries).
	CacheEntries int
	// TenantWeights maps tenant names to fair-share weights; unlisted
	// tenants get weight 1.
	TenantWeights map[string]float64
	// Registry receives the service metrics (latency histograms, queue
	// gauges, shed/cache counters); nil creates a private one.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 0 // pool resolves to GOMAXPROCS
	}
	if c.MaxInFlight <= 0 {
		w := c.Workers
		if w <= 0 {
			w = par.NumWorkers()
		}
		c.MaxInFlight = 2 * w
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// servedGraph is one registered versioned graph plus its per-epoch bound
// state and persistence accounting.
type servedGraph struct {
	name  string
	v     *graph.Versioned
	store *ckpt.EpochStore

	// mu guards bound, the lazily built per-epoch derived state (the
	// PageRank in-CSR and out-degrees). Queries pinned to an older epoch
	// that lost the race simply rebuild; all epoch state is immutable once
	// published.
	mu    sync.Mutex
	bound *epochState
}

// epochState is the derived per-epoch state PageRank-shaped queries need.
// It is immutable once built: a query that grabbed it keeps a consistent
// view even after the graph advances and the cache slot moves on.
type epochState struct {
	epoch  graph.Epoch
	snap   *graph.Snapshot
	in     *graph.CSR
	outDeg []int64
}

// bind returns the derived state for snap, building (and caching) it if
// the slot holds a different epoch.
func (g *servedGraph) bind(snap *graph.Snapshot) *epochState {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.bound != nil && g.bound.epoch == snap.Epoch() {
		return g.bound
	}
	st := &epochState{
		epoch:  snap.Epoch(),
		snap:   snap,
		in:     snap.CSR().Transpose(),
		outDeg: snap.CSR().OutDegrees(),
	}
	g.bound = st
	return st
}

// Server is the always-on query service. Create with New, register graphs
// with AddGraph, mount Handler on a listener, Close when done.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	pool  *backend.Pool
	adm   *Admission
	cache *resultCache

	mu     sync.Mutex
	graphs map[string]*servedGraph

	muxOnce sync.Once
	mux     *http.ServeMux

	// lane spreads histogram records across the registry's worker lanes;
	// request goroutines have no natural worker index.
	lane     atomic.Int64
	requests atomic.Int64
	deltas   atomic.Int64
}

// New builds a server with the given configuration. The caller owns it
// and must Close it (releasing the worker pool).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		pool:   backend.NewPool(cfg.Workers),
		cache:  newResultCache(cfg.CacheEntries),
		graphs: make(map[string]*servedGraph),
	}
	s.adm = NewAdmission(AdmissionConfig{
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		Weights:     cfg.TenantWeights,
		Registry:    cfg.Registry,
	})
	s.reg.CounterFunc("serve.requests", s.requests.Load)
	s.reg.CounterFunc("serve.deltas", s.deltas.Load)
	s.reg.CounterFunc("serve.cache_hits", s.cache.hits.Load)
	s.reg.CounterFunc("serve.cache_misses", s.cache.misses.Load)
	s.reg.Gauge("serve.pool.workers").Set(float64(s.pool.Workers()))
	return s
}

// Registry exposes the server's metrics registry (for mounting /metrics
// or attaching a runtime sampler).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Pool exposes the shared kernel pool (tests and benchmarks).
func (s *Server) Pool() *backend.Pool { return s.pool }

// Close releases the worker pool. The server must be idle.
func (s *Server) Close() { s.pool.Close() }

// AddGraph registers a versioned graph under name. Every published epoch
// (the current one now, each delta's result later) is persisted into the
// graph's epoch store, whose accounting /graphs reports.
func (s *Server) AddGraph(name string, v *graph.Versioned) error {
	if name == "" || v == nil {
		return fmt.Errorf("serve: AddGraph needs a name and a graph")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[name]; ok {
		return fmt.Errorf("serve: graph %q already registered", name)
	}
	g := &servedGraph{name: name, v: v, store: ckpt.NewEpochStore(ckpt.Config{})}
	if _, _, err := g.store.Save(v.Current(), 1); err != nil {
		return fmt.Errorf("serve: persisting %q epoch %d: %w", name, v.Epoch(), err)
	}
	s.graphs[name] = g
	s.reg.Gauge("serve.graph." + name + ".epoch").Set(float64(v.Epoch()))
	return nil
}

// Graph returns the registered versioned graph by name (snapshot saving,
// tests).
func (s *Server) Graph(name string) (*graph.Versioned, bool) {
	g, ok := s.graphByName(name)
	if !ok {
		return nil, false
	}
	return g.v, true
}

// graphByName looks up a registered graph.
func (s *Server) graphByName(name string) (*servedGraph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.graphs[name]
	return g, ok
}

// graphNames returns the registered names sorted (deterministic listings).
func (s *Server) graphNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler returns the service mux: query and ingestion endpoints plus the
// obs diagnostics (/metrics, /metrics.json, /debug/pprof/) mounted on the
// same mux — one listener, one port.
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("/query/", s.handleQuery)
		mux.HandleFunc("/delta", s.handleDelta)
		mux.HandleFunc("/graphs", s.handleGraphs)
		mux.HandleFunc("/healthz", s.handleHealthz)
		obs.MuxOn(mux, s.reg)
		mux.HandleFunc("/", s.handleIndex)
		s.mux = mux
	})
	return s.mux
}

// nextLane picks a histogram lane for the calling request goroutine.
func (s *Server) nextLane() int { return int(s.lane.Add(1)) }
