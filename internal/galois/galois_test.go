package galois

import (
	"errors"
	"sync/atomic"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func fixtureDirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 61))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureUndirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 62))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureAcyclic(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.TriangleConfig(8, 8, 63))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureRatings(t testing.TB) *graph.Bipartite {
	t.Helper()
	bp, err := gen.Ratings(gen.DefaultRatingsConfig(8, 16, 64))
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestWorklistBasics(t *testing.T) {
	w := &Worklist[int]{}
	if !w.Empty() {
		t.Error("fresh worklist not empty")
	}
	w.Push(1)
	w.Push(2)
	w.PushChunk([]int{3, 4, 5})
	if w.Len() != 5 {
		t.Errorf("Len = %d", w.Len())
	}
	seen := 0
	for {
		chunk, ok := w.pop()
		if !ok {
			break
		}
		seen += len(chunk)
	}
	if seen != 5 {
		t.Errorf("popped %d items", seen)
	}
}

func TestForEachProcessesAllAndPushed(t *testing.T) {
	// Each of 1000 initial items pushes one follow-up; all 2000 must run.
	initial := make([]int, 1000)
	for i := range initial {
		initial[i] = i
	}
	var count int64
	ForEach(initial, func(item int, ctx *Ctx[int]) {
		atomic.AddInt64(&count, 1)
		if item < 1000 {
			ctx.Push(item + 1000)
		}
	})
	if count != 2000 {
		t.Errorf("processed %d items, want 2000", count)
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(nil, func(int, *Ctx[int]) { t.Error("body called on empty input") })
}

func TestForEachBulkRounds(t *testing.T) {
	// Chain of pushes: item k pushes k+1 until 5 → 6 rounds.
	rounds := ForEachBulk([]int{0}, func(item int, push func(int)) {
		if item < 5 {
			push(item + 1)
		}
	})
	if rounds != 6 {
		t.Errorf("rounds = %d, want 6", rounds)
	}
}

func TestIdentity(t *testing.T) {
	e := New()
	if e.Name() != "Galois" {
		t.Errorf("Name = %q", e.Name())
	}
	caps := e.Capabilities()
	if caps.MultiNode {
		t.Error("Galois must be single-node (paper Table 2)")
	}
	if !caps.SGD {
		t.Error("Galois must support SGD (paper §3.2)")
	}
}

func TestSingleNodeOnly(t *testing.T) {
	g := fixtureDirected(t)
	exec := core.Exec{Cluster: &cluster.Config{Nodes: 2}}
	if _, err := New().PageRank(g, core.PageRankOptions{Exec: exec}); !errors.Is(err, core.ErrSingleNodeOnly) {
		t.Errorf("PageRank err = %v", err)
	}
	if _, err := New().BFS(fixtureUndirected(t), core.BFSOptions{Exec: exec}); !errors.Is(err, core.ErrSingleNodeOnly) {
		t.Errorf("BFS err = %v", err)
	}
	if _, err := New().TriangleCount(fixtureAcyclic(t), core.TriangleOptions{Exec: exec}); !errors.Is(err, core.ErrSingleNodeOnly) {
		t.Errorf("TriangleCount err = %v", err)
	}
	if _, err := New().CollabFilter(fixtureRatings(t), core.CFOptions{Exec: exec}); !errors.Is(err, core.ErrSingleNodeOnly) {
		t.Errorf("CollabFilter err = %v", err)
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 7}
	want := core.RefPageRank(g, opt)
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 13)
	res, err := New().BFS(g, core.BFSOptions{Source: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("distances differ from reference")
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

func TestCollabFilterSGDConverges(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD, K: 8, Iterations: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("SGD RMSE not decreasing: %v", res.RMSE)
	}
	if res.RMSE[5] >= res.RMSE[0] {
		t.Errorf("SGD failed to improve: %v", res.RMSE)
	}
}

func TestCollabFilterGDConverges(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{Method: core.GradientDescent, K: 8, Iterations: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("GD RMSE not decreasing: %v", res.RMSE)
	}
}

func TestCollabFilterSGDBeatsGD(t *testing.T) {
	bp := fixtureRatings(t)
	iters := 8
	sgd, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD, K: 8, Iterations: iters, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := New().CollabFilter(bp, core.CFOptions{Method: core.GradientDescent, K: 8, Iterations: iters, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sgd.RMSE[iters-1] >= gd.RMSE[iters-1] {
		t.Errorf("SGD final RMSE %v not below GD %v", sgd.RMSE[iters-1], gd.RMSE[iters-1])
	}
}

func TestOrderedWorklistPriorityOrder(t *testing.T) {
	// Serial execution (GOMAXPROCS may be 1 here, but the test tolerates
	// best-effort order): priorities must come out non-decreasing when no
	// new work is pushed and a single worker drains the list.
	w := NewOrderedWorklist[int]()
	w.Push(3, 30)
	w.Push(1, 10)
	w.Push(2, 20)
	w.Push(1, 11)
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	var prios []int
	for {
		chunk, ok := w.pop()
		if !ok {
			break
		}
		for _, item := range chunk {
			prios = append(prios, item/10)
		}
	}
	for i := 1; i < len(prios); i++ {
		if prios[i] < prios[i-1] {
			t.Fatalf("priorities out of order: %v", prios)
		}
	}
	if len(prios) != 4 {
		t.Fatalf("drained %d items", len(prios))
	}
}

func TestForEachOrderedBFSMatchesReference(t *testing.T) {
	// Priority BFS: process vertices by current distance; out-of-order
	// arrivals are fixed up with CAS-min, as a Galois ordered algorithm
	// would.
	g := fixtureUndirected(t)
	const inf = int32(1) << 30
	dist := make([]int32, g.NumVertices)
	for i := range dist {
		dist[i] = inf
	}
	src := uint32(9)
	dist[src] = 0
	ForEachOrdered([]uint32{src}, func(v uint32) int { return int(atomic.LoadInt32(&dist[v])) },
		func(v uint32, push func(int, uint32)) {
			d := atomic.LoadInt32(&dist[v])
			for _, u := range g.Neighbors(v) {
				for {
					old := atomic.LoadInt32(&dist[u])
					if old <= d+1 {
						break
					}
					if atomic.CompareAndSwapInt32(&dist[u], old, d+1) {
						push(int(d+1), u)
						break
					}
				}
			}
		})
	want := core.RefBFS(g, src)
	for v := range want {
		got := dist[v]
		if got == inf {
			got = -1
		}
		if got != want[v] {
			t.Fatalf("vertex %d: distance %d, want %d", v, got, want[v])
		}
	}
}

func TestForEachOrderedProcessesPushedWork(t *testing.T) {
	var count int64
	ForEachOrdered([]int{0}, func(int) int { return 0 }, func(item int, push func(int, int)) {
		atomic.AddInt64(&count, 1)
		if item < 100 {
			push(item+1, item+1)
		}
	})
	if count != 101 {
		t.Errorf("processed %d items, want 101", count)
	}
}
