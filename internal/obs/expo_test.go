package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

// goldenSnapshot builds a fully deterministic registry: fixed counter
// values, gauges, and histogram contents.
func goldenSnapshot() *Snapshot {
	r := NewRegistry()
	r.CounterFunc("par.items", func() int64 { return 4096 })
	r.CounterFunc("giraph.messages", func() int64 { return 123 })
	r.Gauge("backend.pool.busy_frac").Set(0.75)
	r.Gauge("runtime.goroutines").Set(9)
	h := r.HistLanes("native.pr.iter.dur_ns", 2)
	for _, v := range []int64{0, 1, 3, 4, 7, 100, 1000, 1000, 65536, 1 << 20} {
		h.Record(0, v)
	}
	return r.Snapshot()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenSnapshot(), "graphmaze"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural checks that hold even when the golden is regenerated.
	for _, want := range []string{
		"# TYPE graphmaze_par_items_total counter",
		"graphmaze_par_items_total 4096",
		"# TYPE graphmaze_backend_pool_busy_frac gauge",
		"graphmaze_backend_pool_busy_frac 0.75",
		"# TYPE graphmaze_native_pr_iter_dur_ns histogram",
		`graphmaze_native_pr_iter_dur_ns_bucket{le="+Inf"} 10`,
		"graphmaze_native_pr_iter_dur_ns_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "graphmaze_native_pr_iter_dur_ns_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("cumulative counts decreased at %q", line)
		}
		last = v
	}
	checkGolden(t, "exposition.golden.prom", buf.Bytes())
}

func TestJSONExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON with the three sections and a sane p50.
	var dec struct {
		Counters   map[string]int64     `json:"counters"`
		Gauges     map[string]float64   `json:"gauges"`
		Histograms map[string]Quantiles `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if dec.Counters["par.items"] != 4096 {
		t.Fatalf("counters: %+v", dec.Counters)
	}
	q := dec.Histograms["native.pr.iter.dur_ns"]
	if q.Count != 10 || q.Max != 1<<20 {
		t.Fatalf("hist summary: %+v", q)
	}
	checkGolden(t, "exposition.golden.json", buf.Bytes())
}

func TestWriteJSONNilSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil snapshot JSON = %q", buf.String())
	}
	if err := WritePrometheus(&buf, nil, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestHistStats(t *testing.T) {
	s := goldenSnapshot()
	stats := HistStats(s)
	if len(stats) != 1 || stats[0].Name != "native.pr.iter.dur_ns" || stats[0].Count != 10 {
		t.Fatalf("HistStats = %+v", stats)
	}
	if HistStats(nil) != nil {
		t.Fatal("HistStats(nil) not nil")
	}
}
