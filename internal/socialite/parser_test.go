package socialite

import (
	"strings"
	"testing"

	"graphmaze/internal/core"
	"graphmaze/internal/graph"
)

func parserFixture(t *testing.T) (*Registry, *graph.CSR) {
	t.Helper()
	g := fixtureDirected(t)
	reg := NewRegistry()
	reg.Register(NewEdgeTable("OUTEDGE", g))
	reg.Register(NewEdgeTable("EDGE", g))
	outDeg := NewVecTable("OUTDEG", g.NumVertices)
	for v := uint32(0); v < g.NumVertices; v++ {
		outDeg.Put(v, Scalar(float64(g.Degree(v))))
	}
	reg.Register(outDeg)
	rank := NewVecTable("RANK", g.NumVertices)
	for v := uint32(0); v < g.NumVertices; v++ {
		rank.Put(v, Scalar(1))
	}
	reg.Register(rank)
	reg.Register(NewVecTable("RANK2", g.NumVertices))
	reg.Register(NewVecTable("BFS", g.NumVertices))
	reg.Register(NewVecTable("TRIANGLE", 1))
	return reg, g
}

// TestParsePageRankRuleMatchesReference runs one parsed PageRank iteration
// against the serial reference.
func TestParsePageRankRuleMatchesReference(t *testing.T) {
	reg, g := parserFixture(t)
	rule, err := Parse(
		"RANK2[n]($SUM(v)) :- RANK[s](v0), OUTDEG[s](d), v = (1-0.3)*v0/d, OUTEDGE[s](n).",
		reg)
	if err != nil {
		t.Fatal(err)
	}
	rank2, _ := reg.Lookup("RANK2")
	head := rank2.(*VecTable)
	// Seed rule RANK2[n](0.3).
	for v := uint32(0); v < g.NumVertices; v++ {
		head.Put(v, Scalar(0.3))
	}
	if _, err := EvalParallel(rule, 0, g.NumVertices, nil, nil, 0, false); err != nil {
		t.Fatal(err)
	}
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 1})
	for v := uint32(0); v < g.NumVertices; v++ {
		got, _ := head.Get(v)
		d := got.S() - want[v]
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Fatalf("vertex %d: parsed rule gives %v, reference %v", v, got.S(), want[v])
		}
	}
}

// TestParseBFSRuleFixpoint runs the parsed recursive BFS rule to fixpoint.
func TestParseBFSRuleFixpoint(t *testing.T) {
	g := fixtureUndirected(t)
	reg := NewRegistry()
	reg.Register(NewEdgeTable("EDGE", g))
	dist := NewVecTable("BFS", g.NumVertices)
	reg.Register(dist)
	rule, err := Parse("BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0+1.", reg)
	if err != nil {
		t.Fatal(err)
	}
	dist.Put(7, Scalar(0))
	delta := []uint32{7}
	for len(delta) > 0 {
		stats, err := EvalParallel(rule, 0, g.NumVertices, delta, nil, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		delta = stats.Changed
	}
	want := core.RefBFS(g, 7)
	for v := uint32(0); v < g.NumVertices; v++ {
		got, ok := dist.Get(v)
		if want[v] == -1 {
			if ok {
				t.Fatalf("vertex %d reachable in rule result but not reference", v)
			}
			continue
		}
		if !ok || int32(got.S()) != want[v] {
			t.Fatalf("vertex %d: distance %v, want %d", v, got, want[v])
		}
	}
}

// TestParseTriangleRule runs the parsed three-way join.
func TestParseTriangleRule(t *testing.T) {
	g := fixtureAcyclic(t)
	reg := NewRegistry()
	reg.Register(NewEdgeTable("EDGE", g))
	tri := NewVecTable("TRIANGLE", 1)
	reg.Register(tri)
	rule, err := Parse("TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z).", reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalParallel(rule, 0, g.NumVertices, nil, nil, 0, false); err != nil {
		t.Fatal(err)
	}
	want := core.RefTriangleCount(g)
	got, _ := tri.Get(0)
	if int64(got.S()) != want {
		t.Fatalf("parsed rule counts %v triangles, want %d", got.S(), want)
	}
}

func TestParseBracketAndFlatFormsEquivalent(t *testing.T) {
	reg, g := parserFixture(t)
	a, err := Parse("RANK2[n]($SUM(v)) :- RANK[s](v0), OUTDEG[s](d), v = v0/d, OUTEDGE[s](n).", reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("RANK2(n, $SUM(v)) :- RANK(s, v0), OUTDEG(s, d), v = v0/d, OUTEDGE(s, n).", reg)
	if err != nil {
		t.Fatal(err)
	}
	if a.KeySlots != b.KeySlots || a.ValSlots != b.ValSlots || len(a.Atoms) != len(b.Atoms) {
		t.Errorf("forms compile differently: %+v vs %+v", a, b)
	}
	_ = g
}

func TestParseExpressionPrecedence(t *testing.T) {
	reg, _ := parserFixture(t)
	rule, err := Parse("RANK2[s]($SUM(v)) :- RANK[s](v0), v = 1+2*3-4/2, OUTEDGE[s](n).", reg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the Let atom and evaluate it: 1+6-2 = 5.
	for _, a := range rule.Atoms {
		if a.Let != nil {
			env := &Env{Keys: make([]uint32, rule.KeySlots), Vals: make([]Value, rule.ValSlots)}
			if got := a.Let.FScalar(env); got != 5 {
				t.Errorf("1+2*3-4/2 = %v, want 5", got)
			}
			return
		}
	}
	t.Fatal("no Let atom compiled")
}

func TestParseUnaryMinusAndParens(t *testing.T) {
	reg, _ := parserFixture(t)
	rule, err := Parse("RANK2[s]($SUM(v)) :- RANK[s](v0), v = -(2+1)*v0, OUTEDGE[s](n).", reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rule.Atoms {
		if a.Let != nil {
			env := &Env{Keys: make([]uint32, rule.KeySlots), Vals: make([]Value, rule.ValSlots)}
			env.Vals[0] = Scalar(2) // v0
			if got := a.Let.FScalar(env); got != -6 {
				t.Errorf("-(2+1)*2 = %v, want -6", got)
			}
			return
		}
	}
	t.Fatal("no Let atom compiled")
}

func TestParseErrors(t *testing.T) {
	reg, _ := parserFixture(t)
	cases := []struct {
		src, wantFrag string
	}{
		{"RANK2[n]($SUM(v))", "':-'"},
		{"NOPE[n]($SUM(v)) :- RANK[s](v0), OUTEDGE[s](n), v = v0.", "unknown head table"},
		{"RANK2[n]($SUM(v)) :- NOPE[s](v0), v = v0, OUTEDGE[s](n).", "unknown table"},
		{"RANK2[n]($SUM(v)) :- RANK[s](v0), v = q, OUTEDGE[s](n).", "unbound variable"},
		{"RANK2[n]($SUM(v)) :- RANK[s](v0), OUTEDGE[z](n), v = v0.", "unbound"},
		{"RANK2[n]($MAX(v)) :- RANK[s](v0), v = v0, OUTEDGE[s](n).", "unknown aggregation"},
		{"RANK2[n]($SUM(q)) :- RANK[s](v0), OUTEDGE[s](n).", "never bound"},
		{"RANK2[w]($SUM(v)) :- RANK[s](v0), v = v0, OUTEDGE[s](n).", "never bound"},
		{"RANK2[n]($INC(7)) :- OUTEDGE[s](n), RANK[s](v0).", "only $INC(1)"},
		{"v = 3 :- RANK[s](v0).", ""},
		{"RANK2[n]($SUM(v)) :- RANK[s](v0), v = v0 @, OUTEDGE[s](n).", "unexpected character"},
		{"OUTEDGE[n]($SUM(v)) :- RANK[s](v0), v = v0, OUTEDGE[s](n).", "must be a keyed table"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, reg)
		if err == nil {
			t.Errorf("accepted %q", c.src)
			continue
		}
		if c.wantFrag != "" && !strings.Contains(err.Error(), c.wantFrag) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.wantFrag)
		}
	}
}

func TestParseDriverEdgeContainmentCheck(t *testing.T) {
	// The third EDGE atom has both variables bound → must compile to a
	// containment check, not an enumeration.
	g := fixtureAcyclic(t)
	reg := NewRegistry()
	reg.Register(NewEdgeTable("EDGE", g))
	reg.Register(NewVecTable("TRIANGLE", 1))
	rule, err := Parse("TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z).", reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rule.Atoms) != 2 {
		t.Fatalf("atoms = %d, want 2", len(rule.Atoms))
	}
	if rule.Atoms[1].Edge == nil || !rule.Atoms[1].Edge.DstBound {
		t.Error("third EDGE atom not compiled as a containment check")
	}
	if rule.Head.KeySlot != -1 || rule.Head.ValSlot != -1 {
		t.Errorf("head slots = %d/%d, want -1/-1 (global $INC(1))", rule.Head.KeySlot, rule.Head.ValSlot)
	}
}

// TestParseBothPaperPageRankVariants: §3.1 prints two PageRank rule
// versions — one joining incoming edges from the destination's side
// (single-machine-optimized) and one distributing from the source's side
// (distributed-optimized). Both must compile and agree.
func TestParseBothPaperPageRankVariants(t *testing.T) {
	g := fixtureDirected(t)
	in := g.Transpose()
	reg := NewRegistry()
	reg.Register(NewEdgeTable("OUTEDGE", g))
	reg.Register(NewEdgeTable("INEDGE", in))
	outDeg := NewVecTable("OUTDEG", g.NumVertices)
	for v := uint32(0); v < g.NumVertices; v++ {
		outDeg.Put(v, Scalar(float64(g.Degree(v))))
	}
	reg.Register(outDeg)
	rank := NewVecTable("RANK", g.NumVertices)
	for v := uint32(0); v < g.NumVertices; v++ {
		rank.Put(v, Scalar(1))
	}
	reg.Register(rank)
	v1out := NewVecTable("RANKV1", g.NumVertices)
	v2out := NewVecTable("RANKV2", g.NumVertices)
	reg.Register(v1out)
	reg.Register(v2out)

	// Variant 1 (single-machine): gather over incoming edges; the joins on
	// RANK[s] and OUTDEG[s] key on the edge-bound source.
	v1, err := Parse("RANKV1(n, $SUM(v)) :- INEDGE(n, s), RANK(s, v0), OUTDEG(s, d), v = (1-0.3)*v0/d.", reg)
	if err != nil {
		t.Fatal(err)
	}
	// Variant 2 (distributed): distribute along outgoing edges.
	v2, err := Parse("RANKV2(n, $SUM(v)) :- RANK(s, v0), OUTDEG(s, d), v = (1-0.3)*v0/d, OUTEDGE(s, n).", reg)
	if err != nil {
		t.Fatal(err)
	}

	seed := func(tab *VecTable) {
		for v := uint32(0); v < g.NumVertices; v++ {
			tab.Put(v, Scalar(0.3))
		}
	}
	seed(v1out)
	seed(v2out)
	if _, err := EvalParallel(v1, 0, g.NumVertices, nil, nil, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := EvalParallel(v2, 0, g.NumVertices, nil, nil, 0, false); err != nil {
		t.Fatal(err)
	}
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 1})
	for v := uint32(0); v < g.NumVertices; v++ {
		a, _ := v1out.Get(v)
		b, _ := v2out.Get(v)
		if d := a.S() - b.S(); d > 1e-9 || d < -1e-9 {
			t.Fatalf("vertex %d: variants disagree: %v vs %v", v, a.S(), b.S())
		}
		if d := a.S() - want[v]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("vertex %d: variant 1 gives %v, reference %v", v, a.S(), want[v])
		}
	}
}
