package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Orientation controls how a Builder directs the edges it was given,
// mirroring the paper's data preparation (§4.1.2): PageRank keeps the
// generated direction, BFS symmetrizes, and triangle counting orients every
// edge from the smaller to the larger vertex id so the directed graph is
// acyclic.
type Orientation int

const (
	// KeepDirection stores edges exactly as given.
	KeepDirection Orientation = iota
	// Symmetrize stores both (u,v) and (v,u) for every input edge.
	Symmetrize
	// OrientAcyclic stores each edge as (min(u,v), max(u,v)), dropping
	// self-loops, which yields a DAG on distinct vertex ids.
	OrientAcyclic
)

// BuildOptions configures Builder.Build.
type BuildOptions struct {
	Orientation Orientation
	// Dedup removes duplicate edges (after orientation is applied). RMAT
	// generators emit duplicates, so the paper's pipelines always dedup.
	Dedup bool
	// DropSelfLoops removes (v,v) edges regardless of orientation.
	DropSelfLoops bool
	// SortAdjacency leaves every adjacency list sorted by target id.
	SortAdjacency bool
}

// Builder accumulates raw edges and produces a cleaned CSR. A builder is
// reusable: Build consumes the accumulated edges and resets the internal
// buffer (on success and on error alike), so a subsequent AddEdge/Build
// cycle starts from a clean slate.
type Builder struct {
	numVertices uint32
	edges       []Edge
}

// NewBuilder returns a builder for graphs over vertex ids [0, numVertices).
func NewBuilder(numVertices uint32) *Builder {
	return &Builder{numVertices: numVertices}
}

// AddEdge appends a raw directed edge.
func (b *Builder) AddEdge(src, dst uint32) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst})
}

// AddEdges appends a batch of raw directed edges.
func (b *Builder) AddEdges(edges []Edge) {
	b.edges = append(b.edges, edges...)
}

// NumRawEdges reports how many edges have been added so far.
func (b *Builder) NumRawEdges() int { return len(b.edges) }

// Reset discards any accumulated edges, returning the builder to its
// freshly-constructed state without waiting for a Build.
func (b *Builder) Reset() { b.edges = nil }

// Build applies the requested transforms and constructs the CSR. The
// accumulated edges are consumed: whether Build succeeds or fails, the
// builder's buffer is reset, so the builder itself is safe to reuse for
// another AddEdge/Build cycle (the transforms reorder the old buffer in
// place, so it is never handed back).
func (b *Builder) Build(opt BuildOptions) (*CSR, error) {
	edges := b.edges
	b.edges = nil // consume: the transforms below mutate the buffer
	for i := range edges {
		if edges[i].Src >= b.numVertices || edges[i].Dst >= b.numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", edges[i].Src, edges[i].Dst, b.numVertices)
		}
	}

	switch opt.Orientation {
	case KeepDirection:
		// Nothing to do.
	case OrientAcyclic:
		w := 0
		for _, e := range edges {
			if e.Src == e.Dst {
				continue
			}
			if e.Src > e.Dst {
				e.Src, e.Dst = e.Dst, e.Src
			}
			edges[w] = e
			w++
		}
		edges = edges[:w]
	case Symmetrize:
		n := len(edges)
		for i := 0; i < n; i++ {
			e := edges[i]
			if e.Src == e.Dst {
				continue
			}
			edges = append(edges, Edge{Src: e.Dst, Dst: e.Src})
		}
	default:
		return nil, fmt.Errorf("graph: unknown orientation %d", opt.Orientation)
	}

	if opt.DropSelfLoops || opt.Orientation == OrientAcyclic {
		w := 0
		for _, e := range edges {
			if e.Src == e.Dst {
				continue
			}
			edges[w] = e
			w++
		}
		edges = edges[:w]
	}

	if opt.Dedup {
		sortEdgesByKey(edges)
		w := 0
		for i, e := range edges {
			if i > 0 && e == edges[i-1] {
				continue
			}
			edges[w] = e
			w++
		}
		edges = edges[:w]
	}

	g := buildCSR(b.numVertices, b.numVertices, len(edges), func(i int) (uint32, uint32) {
		return edges[i].Src, edges[i].Dst
	}, nil)
	if opt.SortAdjacency {
		g.SortAdjacency()
	} else if opt.Dedup {
		// The dedup sort already ordered each adjacency list.
		g.sortedAdj = true
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Bipartite is a user×item rating graph in both orientations, the shape
// collaborative filtering consumes (paper Figure 1): ByUser holds each
// user's rated items, ByItem the transpose.
type Bipartite struct {
	NumUsers, NumItems uint32
	ByUser             *CSR // NumUsers vertices; targets are item ids
	ByItem             *CSR // NumItems vertices; targets are user ids
}

// NumRatings reports the number of (user,item) ratings.
func (b *Bipartite) NumRatings() int64 { return b.ByUser.NumEdges() }

// MemoryBytes estimates the resident size of both orientations.
func (b *Bipartite) MemoryBytes() int64 {
	return b.ByUser.MemoryBytes() + b.ByItem.MemoryBytes()
}

// NewBipartite builds both orientations from raw ratings. Duplicate
// (user,item) pairs keep the last rating seen.
func NewBipartite(numUsers, numItems uint32, ratings []WeightedEdge) (*Bipartite, error) {
	if numUsers == 0 || numItems == 0 {
		return nil, errors.New("graph: bipartite graph needs at least one user and one item")
	}
	for _, r := range ratings {
		if r.Src >= numUsers {
			return nil, fmt.Errorf("graph: user %d out of range [0,%d)", r.Src, numUsers)
		}
		if r.Dst >= numItems {
			return nil, fmt.Errorf("graph: item %d out of range [0,%d)", r.Dst, numItems)
		}
	}
	sorted := make([]WeightedEdge, len(ratings))
	copy(sorted, ratings)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Src != sorted[j].Src {
			return sorted[i].Src < sorted[j].Src
		}
		return sorted[i].Dst < sorted[j].Dst
	})
	w := 0
	for i, r := range sorted {
		if i > 0 && r.Src == sorted[i-1].Src && r.Dst == sorted[i-1].Dst {
			sorted[w-1].Weight = r.Weight // keep last rating
			continue
		}
		sorted[w] = r
		w++
	}
	sorted = sorted[:w]

	byUser, err := FromWeightedEdgesRect(numUsers, numItems, sorted)
	if err != nil {
		return nil, err
	}
	byUser.sortedAdj = true
	reversed := make([]WeightedEdge, len(sorted))
	for i, r := range sorted {
		reversed[i] = WeightedEdge{Src: r.Dst, Dst: r.Src, Weight: r.Weight}
	}
	byItem, err := FromWeightedEdgesRect(numItems, numUsers, reversed)
	if err != nil {
		return nil, err
	}
	byItem.SortAdjacency()
	return &Bipartite{NumUsers: numUsers, NumItems: numItems, ByUser: byUser, ByItem: byItem}, nil
}
