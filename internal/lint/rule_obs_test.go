package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fixtureObsSrc is a stand-in for graphmaze/internal/obs: the obs rule
// matches on the receiver type name and package path suffix, so fixtures
// only need the Histogram/Record shape, not the real lane machinery.
const fixtureObsSrc = `// Package obs is the fixture metrics layer.
package obs

// Histogram is the fixture latency histogram.
type Histogram struct{}

// Record records v into worker's lane.
func (h *Histogram) Record(worker int, v int64) {}
`

// loadFixtureWithParObs type-checks an in-memory package with both the
// fixture par scheduler and the fixture obs package importable under
// their graphmaze paths.
func loadFixtureWithParObs(t *testing.T, rel string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	base := importer.ForCompiler(fset, "source", nil)

	prebuilt := map[string]*types.Package{}
	for path, src := range map[string]string{
		"graphmaze/internal/par": fixtureParSrc,
		"graphmaze/internal/obs": fixtureObsSrc,
	} {
		f, err := parser.ParseFile(fset, path+"/fixture.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		conf := types.Config{Importer: base}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
		if err != nil {
			t.Fatalf("type-check fixture %s: %v", path, err)
		}
		prebuilt[path] = pkg
	}

	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, rel+"/"+name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &prebuiltImporter{base: base, pkgs: prebuilt}}
	path := "graphmaze/" + rel
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Rel: rel, Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}
}

func TestObsFlagsRecordInBodyWithoutWorkerIndex(t *testing.T) {
	p := loadFixtureWithParObs(t, "internal/native", map[string]string{"a.go": `package native

import (
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
)

func Sweep(h *obs.Histogram, n int) {
	par.ForDynamic(n, 64, func(lo, hi int) {
		h.Record(0, int64(hi-lo))
	})
}
`})
	wantFinding(t, runRule(t, p, &ObsRule{}), "internal/native/a.go", 10, "obs")
}

func TestObsFlagsConstantLaneInIndexedBody(t *testing.T) {
	p := loadFixtureWithParObs(t, "internal/native", map[string]string{"a.go": `package native

import (
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
)

func Sweep(h *obs.Histogram, n int) {
	par.ForWorkersIndexed(4, n, func(w, lo, hi int) {
		h.Record(0, int64(hi-lo))
	})
}
`})
	wantFinding(t, runRule(t, p, &ObsRule{}), "internal/native/a.go", 10, "obs")
}

func TestObsFlagsShadowedLaneVariable(t *testing.T) {
	// Passing some other int — here lo — instead of the worker parameter
	// collapses the lanes just as badly as a constant.
	p := loadFixtureWithParObs(t, "internal/native", map[string]string{"a.go": `package native

import (
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
)

func Sweep(h *obs.Histogram, n int) {
	par.ForWorkersIndexed(4, n, func(w, lo, hi int) {
		h.Record(lo, int64(hi-lo))
	})
}
`})
	wantFinding(t, runRule(t, p, &ObsRule{}), "internal/native/a.go", 10, "obs")
}

func TestObsAllowsWorkerLane(t *testing.T) {
	p := loadFixtureWithParObs(t, "internal/native", map[string]string{"a.go": `package native

import (
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
)

func Sweep(h *obs.Histogram, n int) {
	par.ForWorkersIndexed(4, n, func(w, lo, hi int) {
		h.Record(w, int64(hi-lo))
	})
}
`})
	if got := runRule(t, p, &ObsRule{}); len(got) != 0 {
		t.Fatalf("worker-lane Record flagged: %v", got)
	}
}

func TestObsAllowsRecordOutsideParBody(t *testing.T) {
	p := loadFixtureWithParObs(t, "internal/native", map[string]string{"a.go": `package native

import (
	"graphmaze/internal/obs"
	"graphmaze/internal/par"
)

func Sweep(h *obs.Histogram, n int) {
	par.ForDynamic(n, 64, func(lo, hi int) {
		_ = hi - lo
	})
	h.Record(0, int64(n))
}
`})
	if got := runRule(t, p, &ObsRule{}); len(got) != 0 {
		t.Fatalf("serial Record flagged: %v", got)
	}
}

func TestObsIgnoresUnrelatedRecordMethods(t *testing.T) {
	// A Record method on some other type inside a par body is not lane
	// misuse — the rule keys on obs.Histogram's receiver specifically.
	p := loadFixtureWithParObs(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

type logger struct{}

func (l *logger) Record(k int, v int64) {}

func Sweep(l *logger, n int) {
	par.ForDynamic(n, 64, func(lo, hi int) {
		l.Record(0, int64(hi-lo))
	})
}
`})
	if got := runRule(t, p, &ObsRule{}); len(got) != 0 {
		t.Fatalf("unrelated Record method flagged: %v", got)
	}
}
