package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fixtureGraphSrc is a stand-in for graphmaze/internal/graph with the
// types the snapshot rule matches on: the rule keys off the import path
// and the Snapshot type name, so fixtures do not need the real package.
const fixtureGraphSrc = `// Package graph is the fixture graph layer.
package graph

// Snapshot is one immutable epoch.
type Snapshot struct{ epoch uint64 }

// Epoch reports the snapshot's version.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Versioned publishes snapshots.
type Versioned struct{ cur *Snapshot }

// Current returns the latest snapshot.
func (v *Versioned) Current() *Snapshot { return v.cur }
`

// loadFixtureWithGraph type-checks an in-memory package like loadFixture,
// additionally making the fixture graph package importable as
// "graphmaze/internal/graph".
func loadFixtureWithGraph(t *testing.T, rel string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	base := importer.ForCompiler(fset, "source", nil)

	graphFile, err := parser.ParseFile(fset, "internal/graph/graph.go", fixtureGraphSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	graphConf := types.Config{Importer: base}
	graphPkg, err := graphConf.Check(snapshotTypePath, fset, []*ast.File{graphFile}, nil)
	if err != nil {
		t.Fatalf("type-check fixture graph: %v", err)
	}

	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, rel+"/"+name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &prebuiltImporter{base: base, pkgs: map[string]*types.Package{
		snapshotTypePath: graphPkg,
	}}}
	path := "graphmaze/" + rel
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Rel: rel, Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}
}

func TestSnapshotRuleFlagsStructField(t *testing.T) {
	p := loadFixtureWithGraph(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/graph"

type kernel struct {
	snap *graph.Snapshot
}
`})
	wantFinding(t, runRule(t, p, &SnapshotRule{}), "internal/native/a.go", 6, "snapshot")
}

func TestSnapshotRuleFlagsContainerField(t *testing.T) {
	p := loadFixtureWithGraph(t, "internal/backend", map[string]string{"a.go": `package backend

import "graphmaze/internal/graph"

type cache struct {
	byEpoch map[uint64]*graph.Snapshot
}
`})
	wantFinding(t, runRule(t, p, &SnapshotRule{}), "internal/backend/a.go", 6, "snapshot")
}

func TestSnapshotRuleFlagsPackageVar(t *testing.T) {
	p := loadFixtureWithGraph(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/graph"

var latest *graph.Snapshot
`})
	wantFinding(t, runRule(t, p, &SnapshotRule{}), "internal/native/a.go", 5, "snapshot")
}

func TestSnapshotRuleFlagsStoreIntoAnyField(t *testing.T) {
	p := loadFixtureWithGraph(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/graph"

type kernel struct {
	state any
}

func (k *kernel) Prime(v *graph.Versioned) {
	k.state = v.Current()
}
`})
	wantFinding(t, runRule(t, p, &SnapshotRule{}), "internal/native/a.go", 10, "snapshot")
}

func TestSnapshotRuleAcceptsPerOperationUse(t *testing.T) {
	p := loadFixtureWithGraph(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/graph"

type kernel struct {
	epoch uint64
	ranks []float64
}

// Refresh holds the snapshot only for the duration of the call.
func (k *kernel) Refresh(v *graph.Versioned) []float64 {
	s := v.Current()
	k.epoch = s.Epoch()
	return k.ranks
}

func spawn(s *graph.Snapshot) (*graph.Snapshot, error) {
	local := s
	return local, nil
}
`})
	if got := runRule(t, p, &SnapshotRule{}); len(got) != 0 {
		t.Fatalf("per-operation snapshot use must not be flagged: %v", got)
	}
}

func TestSnapshotRuleIgnoresNonEnginePackages(t *testing.T) {
	p := loadFixtureWithGraph(t, "internal/harness", map[string]string{"a.go": `package harness

import "graphmaze/internal/graph"

type replay struct {
	snaps []*graph.Snapshot
}
`})
	if got := runRule(t, p, &SnapshotRule{}); len(got) != 0 {
		t.Fatalf("non-engine packages are out of scope: %v", got)
	}
}
