package graph_test

// Streaming-layer benchmarks (the `make bench-stream` set): delta batch
// ingestion into a new epoch and snapshot persistence. External test
// package so the RMAT generator is usable without an import cycle.

import (
	"testing"

	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func benchBase(b *testing.B, scale int) (*graph.CSR, []graph.Edge) {
	b.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(scale, 16, 97))
	if err != nil {
		b.Fatal(err)
	}
	bld := graph.NewBuilder(uint32(1) << scale)
	bld.AddEdges(edges)
	base, err := bld.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true,
		DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		b.Fatal(err)
	}
	deltas, err := gen.RMAT(gen.Graph500Config(scale, 2, 98))
	if err != nil {
		b.Fatal(err)
	}
	return base, deltas
}

// BenchmarkStreamApplyDelta measures batched delta ingestion: dedup-sort
// of the batch, duplicate rejection against the base adjacency, and the
// parallel merge-build of the next epoch's CSR.
func BenchmarkStreamApplyDelta(b *testing.B) {
	base, deltas := benchBase(b, 13)
	const batch = 2048
	batches := len(deltas) / batch
	if batches == 0 {
		b.Fatal("delta stream too small")
	}
	var v *graph.Versioned
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % batches
		if k == 0 {
			// New pass over the stream: restart from the base epoch so
			// every iteration ingests a batch with fresh edges.
			b.StopTimer()
			var err error
			if v, err = graph.NewVersioned(base, graph.DeltaOptions{Symmetrize: true, DropSelfLoops: true}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, _, _, err := v.ApplyDelta(deltas[k*batch : (k+1)*batch]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSnapshotEncode measures epoch persistence framing.
func BenchmarkStreamSnapshotEncode(b *testing.B) {
	base, _ := benchBase(b, 13)
	v, err := graph.NewVersioned(base, graph.DeltaOptions{})
	if err != nil {
		b.Fatal(err)
	}
	snap := v.Current()
	buf, err := graph.EncodeSnapshot(nil, snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.EncodeSnapshot(buf[:0], snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSnapshotDecode measures epoch restore (decode + full
// CSR validation).
func BenchmarkStreamSnapshotDecode(b *testing.B) {
	base, _ := benchBase(b, 13)
	v, err := graph.NewVersioned(base, graph.DeltaOptions{})
	if err != nil {
		b.Fatal(err)
	}
	blob, err := graph.EncodeSnapshot(nil, v.Current())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.DecodeSnapshot(blob); err != nil {
			b.Fatal(err)
		}
	}
}
