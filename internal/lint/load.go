package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks every package of the module rooted at modDir
// (the directory containing go.mod), excluding _test.go files and the
// testdata, vendor, and hidden directories. File positions are reported
// relative to modDir.
func Load(modDir string) ([]*Package, error) {
	modPath, err := modulePath(modDir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(modDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modDir:  modDir,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, rel := range dirs {
		p, err := ld.load(rel)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out, nil
}

// modulePath reads the module path from go.mod.
func modulePath(modDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", modDir)
}

// packageDirs lists every directory under modDir (as module-relative paths,
// "" for the root) that contains at least one non-test .go file.
func packageDirs(modDir string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if isSourceFile(e.Name()) {
				rel, err := filepath.Rel(modDir, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loader type-checks module packages on demand, resolving module-internal
// imports recursively and everything else through the stdlib source
// importer.
type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	pkgs    map[string]*Package // keyed by Rel; nil while in progress
	std     types.Importer
	stack   []string
}

var _ types.ImporterFrom = (*loader)(nil)

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked from source in-process, all others delegate to the stdlib
// source importer.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if rel, ok := ld.relOf(path); ok {
		p, err := ld.load(rel)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return p.Types, nil
	}
	if from, ok := ld.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return ld.std.Import(path)
}

// relOf maps a module-internal import path to its module-relative directory.
func (ld *loader) relOf(path string) (string, bool) {
	if path == ld.modPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// load parses and type-checks the package in the module-relative directory
// rel, memoizing the result.
func (ld *loader) load(rel string) (*Package, error) {
	if p, ok := ld.pkgs[rel]; ok {
		if p == nil && ld.inProgress(rel) {
			return nil, fmt.Errorf("lint: import cycle through %q", rel)
		}
		return p, nil
	}
	ld.pkgs[rel] = nil
	ld.stack = append(ld.stack, rel)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	dir := filepath.Join(ld.modDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e.Name()) {
			continue
		}
		name := e.Name()
		if rel != "" {
			name = rel + "/" + name
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(ld.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	path := ld.modPath
	if rel != "" {
		path = ld.modPath + "/" + rel
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Rel: rel, Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[rel] = p
	return p, nil
}

func (ld *loader) inProgress(rel string) bool {
	for _, r := range ld.stack {
		if r == rel {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
