package giraph

import (
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
)

// The §6.2 roadmap recommendations (combiners + more workers) must keep
// results identical while cutting traffic, buffers, and raising CPU
// utilization.

func TestImprovedPageRankMatchesStock(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 5}
	want, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewImproved().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want.Ranks, got.Ranks); d > 1e-12 {
		t.Errorf("combiner changed PageRank results by %v", d)
	}
}

func TestImprovedBFSMatchesStock(t *testing.T) {
	g := fixtureUndirected(t)
	want, err := New().BFS(g, core.BFSOptions{Source: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewImproved().BFS(g, core.BFSOptions{Source: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want.Distances, got.Distances) {
		t.Error("combiner changed BFS results")
	}
}

func TestImprovedReducesTrafficAndRaisesUtilization(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 4,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}}
	stock, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := NewImproved().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	sr, ir := stock.Stats.Report, improved.Stats.Report
	if ir.BytesSent >= sr.BytesSent {
		t.Errorf("combiners did not reduce traffic: %d vs %d", ir.BytesSent, sr.BytesSent)
	}
	// Paper §6.2: more workers → better utilization. The improved engine
	// provisions 24 of 48 threads instead of 4.
	if ir.CPUUtilization <= sr.CPUUtilization {
		t.Errorf("utilization did not rise: %v vs %v", ir.CPUUtilization, sr.CPUUtilization)
	}
	// Wall time at this scale is dominated by the modeled coordination
	// constant; the modeled network time is where the win must show.
	if ir.NetworkSeconds >= sr.NetworkSeconds {
		t.Errorf("improved Giraph network time not lower: %v vs %v", ir.NetworkSeconds, sr.NetworkSeconds)
	}
}

func TestCombinerReducesPeakBuffer(t *testing.T) {
	g := fixtureDirected(t)
	job := func(comb bool) *Job {
		j := &Job{
			Graph:         g,
			Init:          func(uint32) any { return float64(1) },
			MaxSupersteps: 2,
			MessageBytes:  func(any) int { return 8 },
		}
		if comb {
			j.Combiner = func(a, b any) any { return a.(float64) + b.(float64) }
		}
		j.Compute = prCompute(j, 0.3)
		return j
	}
	plain, err := Run(job(false))
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(job(true))
	if err != nil {
		t.Fatal(err)
	}
	if combined.PeakBufferedBytes >= plain.PeakBufferedBytes {
		t.Errorf("combiner did not shrink buffers: %d vs %d",
			combined.PeakBufferedBytes, plain.PeakBufferedBytes)
	}
	// Results identical up to float summation order.
	for i := range plain.Values {
		a, b := plain.Values[i].(float64), combined.Values[i].(float64)
		d := a - b
		if d < 0 {
			d = -d
		}
		if d > 1e-9*(1+a) {
			t.Fatalf("value %d differs: %v vs %v", i, a, b)
		}
	}
}
