package obs

import (
	"math"
	"sync/atomic"
)

// Gauge is a float64 value that can move both ways (heap bytes, busy
// fraction, goroutine count). Set and Value are single atomic operations;
// Add is a CAS loop. A nil *Gauge is a valid disabled gauge.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the registry name ("" on a nil gauge).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
