package harness

import (
	"fmt"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/datasets"
	"graphmaze/internal/gen"
	"graphmaze/internal/giraph"
	"graphmaze/internal/graph"
	"graphmaze/internal/metrics"
	"graphmaze/internal/native"
)

// datasetInputs builds the input bundle from a named dataset preset (graph
// presets pair with the synthetic CF set of matching scale).
func datasetInputs(name string, quick bool) (inputs, error) {
	var in inputs
	p, err := datasets.ByName(name)
	if err != nil {
		return in, err
	}
	if quick {
		p = p.WithScale(9)
	}
	if p.Ratings {
		if in.cf, err = p.BuildRatings(); err != nil {
			return in, err
		}
		return in, nil
	}
	if in.pr, err = p.Build(datasets.PrepPageRank); err != nil {
		return in, err
	}
	if in.bfs, err = p.Build(datasets.PrepBFS); err != nil {
		return in, err
	}
	if in.tc, err = p.Build(datasets.PrepTriangle); err != nil {
		return in, err
	}
	return in, nil
}

// Figure3 reproduces the single-node per-dataset runtime panels: PageRank
// and CF report time per iteration, BFS and TC overall time (log-scale in
// the paper; absolute numbers here).
func Figure3(opt Options) error {
	opt = opt.withDefaults()
	graphSets := []string{"livejournal", "facebook", "wikipedia", "graph500"}
	ratingSets := []string{"netflix"}
	if opt.Quick {
		graphSets = graphSets[:2]
	}
	engs := engines()

	for _, algo := range []Algo{PR, BFS, TC} {
		fmt.Fprintf(opt.Out, "-- %s (single node) --\n", algo)
		tw := &tableWriter{header: append([]string{"dataset"}, engineNames(engs)...)}
		for _, ds := range graphSets {
			in, err := datasetInputs(ds, opt.Quick)
			if err != nil {
				return err
			}
			row := []string{ds}
			for _, e := range engs {
				m := runOne(opt, e, algo, in, 1, opt.Iterations)
				if m.err != nil {
					row = append(row, "err")
					continue
				}
				row = append(row, formatSeconds(m.seconds))
			}
			tw.addRow(row...)
		}
		tw.write(opt.Out)
	}

	fmt.Fprintln(opt.Out, "-- CollabFilter (single node, time/iteration) --")
	tw := &tableWriter{header: append([]string{"dataset"}, engineNames(engs)...)}
	for _, ds := range append(ratingSets, "synthetic") {
		var in inputs
		var err error
		if ds == "synthetic" {
			scale := 12
			if opt.Quick {
				scale = 9
			}
			in.cf, err = gen.Ratings(gen.DefaultRatingsConfig(scale, 16, 99))
		} else {
			in, err = datasetInputs(ds, opt.Quick)
		}
		if err != nil {
			return err
		}
		row := []string{ds}
		for _, e := range engs {
			m := runOne(opt, e, CF, in, 1, opt.Iterations)
			if m.err != nil {
				row = append(row, "err")
				continue
			}
			row = append(row, formatSeconds(m.seconds))
		}
		tw.addRow(row...)
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "paper shape: Native fastest; Galois ≈1.1–2.5×; CombBLAS/GraphLab/SociaLite 2–9×; Giraph 2–3 orders")
	return nil
}

func engineNames(engs []core.Engine) []string {
	out := make([]string, len(engs))
	for i, e := range engs {
		out[i] = e.Name()
	}
	return out
}

// Figure4 reproduces the weak-scaling panels: edges per node held
// constant, node counts swept; flat lines mean perfect scaling.
func Figure4(opt Options) error {
	opt = opt.withDefaults()
	nodes := opt.Nodes
	if nodes == nil {
		nodes = []int{1, 4, 16}
		if opt.Quick {
			nodes = []int{1, 4}
		}
	}
	baseScale := opt.Scale
	if baseScale == 0 {
		baseScale = 9
		if opt.Quick {
			baseScale = 8
		}
	}
	engs := engines()

	for _, algo := range Algos() {
		fmt.Fprintf(opt.Out, "-- %s (weak scaling, constant edges/node) --\n", algo)
		tw := &tableWriter{header: append([]string{"nodes"}, engineNames(engs)...)}
		for _, n := range nodes {
			// Weak scaling: total edges grow with the node count so edges
			// per node stay constant (scale + log2(n) for powers of two).
			scale := baseScale
			for p := n; p > 1; p >>= 1 {
				scale++
			}
			in, err := buildInputs(scale, int64(40+n))
			if err != nil {
				return err
			}
			row := []string{fmt.Sprintf("%d", n)}
			for _, e := range engs {
				if n > 1 && !e.Capabilities().MultiNode {
					row = append(row, "n/a")
					continue
				}
				if e.Name() == "CombBLAS" && !isSquare(n) {
					row = append(row, "non-sq")
					continue
				}
				m := runOne(opt, e, algo, in, n, opt.Iterations)
				if m.err != nil {
					row = append(row, "err")
					continue
				}
				row = append(row, formatSeconds(m.seconds))
			}
			tw.addRow(row...)
		}
		tw.write(opt.Out)
	}
	fmt.Fprintln(opt.Out, "paper shape: native nearly flat; framework gaps widen with node count (network-bound)")
	return nil
}

func isSquare(n int) bool {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return true
		}
	}
	return false
}

// Figure5 reproduces the large real-world multi-node runs: Twitter
// (PageRank, BFS on 4 nodes; TC on 16 nodes) and Yahoo Music (CF on 4
// nodes).
func Figure5(opt Options) error {
	opt = opt.withDefaults()
	engs := engines()

	rows := []struct {
		label string
		ds    string
		algo  Algo
		nodes int
	}{
		{"Pagerank (Twitter, 4 nodes)", "twitter", PR, 4},
		{"BFS (Twitter, 4 nodes)", "twitter", BFS, 4},
		{"Collaborative Filt. (Yahoo Music, 4 nodes)", "yahoomusic", CF, 4},
		{"Triangle Count. (Twitter, 16 nodes)", "twitter", TC, 16},
	}
	tw := &tableWriter{header: append([]string{"run"}, engineNames(engs)...)}
	for _, r := range rows {
		in, err := datasetInputs(r.ds, opt.Quick)
		if err != nil {
			return err
		}
		row := []string{r.label}
		for _, e := range engs {
			if !e.Capabilities().MultiNode {
				row = append(row, "n/a")
				continue
			}
			m := runOne(opt, e, r.algo, in, r.nodes, opt.Iterations)
			if m.err != nil {
				row = append(row, "OOM/err")
				continue
			}
			row = append(row, formatSeconds(m.seconds))
		}
		tw.addRow(row...)
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "paper shape: CombBLAS OOMs on Twitter TC; Giraph 2–3 orders off; SociaLite best framework for TC")
	return nil
}

// Figure6 reproduces the system-metric panels for 4-node runs: CPU
// utilization, peak network bandwidth, memory footprint and bytes sent,
// normalized as in the paper.
func Figure6(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 12
		if opt.Quick {
			scale = 9
		}
	}
	in, err := buildInputs(scale, 55)
	if err != nil {
		return err
	}
	engs := engines()[:5] // Galois has no multi-node runs
	for _, algo := range Algos() {
		fmt.Fprintf(opt.Out, "-- %s (4 nodes) --\n", algo)
		var labels []string
		var reports []metrics.Report
		for _, e := range engs {
			rep, err := reportFor(opt, e, algo, in, 4, opt.Iterations)
			if err != nil {
				continue
			}
			labels = append(labels, e.Name())
			reports = append(reports, rep)
		}
		fmt.Fprint(opt.Out, metrics.FormatTable(labels, reports, cluster.MPI().Bandwidth))
	}
	fmt.Fprintln(opt.Out, "paper shape: Giraph lowest CPU util (~16%) and lowest peak BW, highest bytes sent; native/CombBLAS highest peak BW")
	return nil
}

// Figure7 reproduces the native optimization ablation for PageRank and
// BFS. The stage stack mirrors the paper's bars; the data-layout stage
// stands in for software prefetch (Go exposes no prefetch intrinsics —
// DESIGN.md §3). The interconnect is charged at the 2.3 GB/s the paper
// itself measured for these exchanges (Table 4's 42% of peak), not the
// 5.5 GB/s hardware ceiling. Each stage is timed as the minimum of
// several runs.
func Figure7(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 15
		if opt.Quick {
			scale = 11
		}
	}
	in, err := buildInputs(scale, 66)
	if err != nil {
		return err
	}
	// 16 nodes: the paper's message optimizations matter where the
	// boundary exchange, not local compute, dominates.
	const ablationNodes = 16
	achievedMPI := cluster.CommLayer{Name: "mpi-achieved", Bandwidth: 2.3e9, Latency: 2e-6}
	repeats := 5
	if opt.Quick {
		repeats = 2
	}
	type stage struct {
		label  string
		tuning native.Tuning
	}
	stagesFor := map[Algo][]stage{
		PR: {
			{"baseline", native.Tuning{}},
			{"+layout (s/w prefetch stand-in)", native.Tuning{ContribCaching: true}},
			{"+compression", native.Tuning{ContribCaching: true, Compression: true}},
			{"+overlap comp/comm", native.Tuning{ContribCaching: true, Compression: true, Overlap: true}},
		},
		BFS: {
			{"baseline", native.Tuning{}},
			{"+bit-vector visited", native.Tuning{Bitvector: true}},
			{"+compression", native.Tuning{Bitvector: true, Compression: true}},
			{"+overlap comp/comm", native.DefaultTuning()},
		},
	}
	for _, algo := range []Algo{PR, BFS} {
		fmt.Fprintf(opt.Out, "-- %s (native, %d nodes) --\n", algo, ablationNodes)
		tw := &tableWriter{header: []string{"stage", "time", "speedup", "net bytes", "traffic vs baseline"}}
		var base float64
		var baseBytes int64
		for _, st := range stagesFor[algo] {
			e := native.NewTuned(st.tuning)
			best := 0.0
			var bytes int64
			for rep := 0; rep < repeats; rep++ {
				exec := core.Exec{Cluster: &cluster.Config{Nodes: ablationNodes, Comm: achievedMPI}}
				var secs float64
				switch algo {
				case PR:
					res, err := e.PageRank(in.pr, core.PageRankOptions{Iterations: opt.Iterations, Exec: exec})
					if err != nil {
						return err
					}
					secs = res.Stats.WallSeconds / float64(opt.Iterations)
					bytes = res.Stats.Report.BytesSent
				case BFS:
					res, err := e.BFS(in.bfs, core.BFSOptions{Source: bfsSource(in.bfs), Exec: exec})
					if err != nil {
						return err
					}
					secs = res.Stats.WallSeconds
					bytes = res.Stats.Report.BytesSent
				}
				if best == 0 || secs < best {
					best = secs
				}
			}
			if base == 0 {
				base = best
				baseBytes = bytes
			}
			tw.addRow(st.label, formatSeconds(best), fmt.Sprintf("%.2fX", base/best),
				metrics.FormatBytes(bytes), fmt.Sprintf("%.1fX less", float64(baseBytes)/float64(bytes)))
		}
		tw.write(opt.Out)
	}
	fmt.Fprintln(opt.Out, "paper (Fig 7): PR total ~8x, BFS total ~18x from prefetch + compression + overlap (+ bit-vector for BFS)")
	return nil
}

// TriangleBitvectorAblation reproduces the §6.1.2 claim that the
// bit-vector data structure gives triangle counting ≈2.2×.
func TriangleBitvectorAblation(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 13
		if opt.Quick {
			scale = 10
		}
	}
	in, err := buildInputs(scale, 77)
	if err != nil {
		return err
	}
	with := runOne(opt, native.New(), TC, in, 1, 1)
	without := runOne(opt, native.NewTuned(native.Tuning{ContribCaching: true, Compression: true, Overlap: true}), TC, in, 1, 1)
	if with.err != nil {
		return with.err
	}
	if without.err != nil {
		return without.err
	}
	fmt.Fprintf(opt.Out, "merge-intersect: %s   bit-vector: %s   speedup: %.2f× (paper: ≈2.2×)\n",
		formatSeconds(without.seconds), formatSeconds(with.seconds), without.seconds/with.seconds)
	return nil
}

// GiraphPhasedSupersteps reproduces the §6.1.3 memory mitigation: phased
// supersteps bound Giraph's buffered-message footprint.
func GiraphPhasedSupersteps(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 11
		if opt.Quick {
			scale = 9
		}
	}
	in, err := buildInputs(scale, 88)
	if err != nil {
		return err
	}
	tw := &tableWriter{header: []string{"configuration", "TC peak memory", "CF peak memory"}}
	for _, cfg := range []struct {
		label string
		e     core.Engine
	}{
		{"monolithic supersteps", giraph.NewUnsplit()},
		{"100 phased supersteps", giraph.New()},
	} {
		tcRep, err := reportFor(opt, cfg.e, TC, in, 4, opt.Iterations)
		if err != nil {
			return err
		}
		cfRep, err := reportFor(opt, cfg.e, CF, in, 4, opt.Iterations)
		if err != nil {
			return err
		}
		tw.addRow(cfg.label, metrics.FormatBytes(tcRep.MemoryFootprintBytes), metrics.FormatBytes(cfRep.MemoryFootprintBytes))
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "paper: splitting supersteps was the only way Giraph TC completed at all (§6.1.3)")
	return nil
}

// SGDvsGD reproduces the §3.2 observation that SGD converges in far fewer
// iterations than GD for a fixed RMSE target.
func SGDvsGD(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 11
		if opt.Quick {
			scale = 9
		}
	}
	cf, err := gen.Ratings(gen.DefaultRatingsConfig(scale, 16, 123))
	if err != nil {
		return err
	}
	eng := native.New()
	const maxIters = 60
	run := func(method core.CFMethod) []float64 {
		res, err := eng.CollabFilter(cf, core.CFOptions{Method: method, K: 8, Iterations: maxIters, Seed: 5})
		if err != nil {
			return nil
		}
		return res.RMSE
	}
	sgd := run(core.SGD)
	gd := run(core.GradientDescent)
	if sgd == nil || gd == nil {
		return fmt.Errorf("harness: CF run failed")
	}
	// Target: the RMSE SGD reaches early in its budget.
	target := sgd[max(1, maxIters/20)]
	itersTo := func(tr []float64) int {
		for i, v := range tr {
			if v <= target {
				return i + 1
			}
		}
		return -1
	}
	si, gi := itersTo(sgd), itersTo(gd)
	gdStr := fmt.Sprintf("%d", gi)
	if gi < 0 {
		gdStr = fmt.Sprintf(">%d", maxIters)
		gi = maxIters
	}
	fmt.Fprintf(opt.Out, "RMSE target %.4f: SGD reaches it in %d iterations, GD in %s (ratio ≥%.0f×; paper reports ≈40× on Netflix)\n",
		target, si, gdStr, float64(gi)/float64(si))
	return nil
}

var _ = graph.Edge{} // keep the graph import for the inputs type

// GiraphRoadmap applies the paper's §6.2 recommendations for Giraph —
// message combiners and more workers per node — and measures how far they
// close the gap ("Boosting network bandwidth ... should make Giraph very
// competitive"; "Performance will also improve if we can run more workers
// per node").
func GiraphRoadmap(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 12
		if opt.Quick {
			scale = 9
		}
	}
	in, err := buildInputs(scale, 91)
	if err != nil {
		return err
	}
	configs := []struct {
		label string
		e     core.Engine
	}{
		{"stock Giraph (4 workers, no combiners)", giraph.New()},
		{"§6.2 roadmap (24 workers + combiners)", giraph.NewImproved()},
		{"native reference", native.New()},
	}
	tw := &tableWriter{header: []string{"configuration", "PR time/iter", "PR bytes", "CPU util %", "BFS time"}}
	for _, cfg := range configs {
		pr := runOne(opt, cfg.e, PR, in, 4, opt.Iterations)
		if pr.err != nil {
			return pr.err
		}
		bfs := runOne(opt, cfg.e, BFS, in, 4, opt.Iterations)
		if bfs.err != nil {
			return bfs.err
		}
		tw.addRow(cfg.label, formatSeconds(pr.seconds),
			metrics.FormatBytes(pr.report.BytesSent),
			fmt.Sprintf("%.0f", 100*pr.report.CPUUtilization),
			formatSeconds(bfs.seconds))
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "paper §6.2: combiners shrink buffers/duplicated traffic; more workers lift the ~16% CPU ceiling")
	return nil
}
