package harness

import (
	"fmt"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/metrics"
	"graphmaze/internal/native"
	"graphmaze/internal/socialite"
)

// Table4 reproduces the native-efficiency table: for each algorithm, the
// single-node bottleneck (memory bandwidth) with achieved efficiency
// against the host's measured ceiling, and the 4-node bottleneck
// (memory vs network) with achieved efficiency against the respective
// limit.
func Table4(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 14
		if opt.Quick {
			scale = 10
		}
	}
	in, err := buildInputs(scale, 11)
	if err != nil {
		return err
	}
	peak := hostPeakBandwidth()
	eng := native.New()

	// Analytic bytes-touched models for the single-node kernels.
	bytesMoved := func(algo Algo, iterations int) float64 {
		switch algo {
		case PR:
			// Per iteration: edge scan (4B id + 8B contribution read) plus
			// vertex state traffic.
			return float64(iterations) * (float64(in.pr.NumEdges())*12 + float64(in.pr.NumVertices)*24)
		case BFS:
			// Each edge inspected about twice (top-down + bottom-up mix).
			return float64(in.bfs.NumEdges())*8 + float64(in.bfs.NumVertices)*8
		case TC:
			var sum float64
			for v := uint32(0); v < in.tc.NumVertices; v++ {
				dv := float64(in.tc.Degree(v))
				sum += dv * dv * 4
				for _, u := range in.tc.Neighbors(v) {
					sum += float64(in.tc.Degree(u)) * 4
				}
			}
			return sum
		case CF:
			return float64(opt.Iterations) * float64(in.cf.NumRatings()) * 8 * 16
		}
		return 0
	}

	tw := &tableWriter{header: []string{"Algorithm", "1-node limit", "achieved", "eff%", "4-node limit", "eff%"}}
	for _, algo := range Algos() {
		single := runOne(opt, eng, algo, in, 1, opt.Iterations)
		if single.err != nil {
			return single.err
		}
		total := single.seconds
		if algo == PR || algo == CF {
			total *= float64(opt.Iterations)
		}
		achieved := bytesMoved(algo, opt.Iterations) / total
		if achieved > peak {
			// Cache-resident inputs can exceed the DRAM triad ceiling;
			// clamp so the efficiency column stays interpretable.
			achieved = peak
		}
		eff := 100 * achieved / peak

		multi := runOne(opt, eng, algo, in, 4, opt.Iterations)
		if multi.err != nil {
			return multi.err
		}
		rep := multi.report
		bottleneck := "Memory BW"
		var multiEff float64
		if rep.NetworkSeconds > rep.ComputeSeconds {
			bottleneck = "Network BW"
			multiEff = 100 * rep.PeakNetworkBandwidth / cluster.MPI().Bandwidth
		} else if rep.ComputeSeconds > 0 {
			multiEff = 100 * (bytesMoved(algo, opt.Iterations) / 4 / rep.ComputeSeconds) / peak
		}
		if multiEff > 100 {
			multiEff = 100
		}
		tw.addRow(algo.String(), "Memory BW",
			fmt.Sprintf("%.1f GB/s", achieved/1e9),
			fmt.Sprintf("%.0f", min(eff, 100)),
			bottleneck, fmt.Sprintf("%.0f", multiEff))
	}
	fmt.Fprintf(opt.Out, "host memory-bandwidth ceiling (triad): %.1f GB/s; modeled network peak: %.1f GB/s\n",
		peak/1e9, cluster.MPI().Bandwidth/1e9)
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "paper: single-node 52–92% of memory BW; 4-node PR/TC network-bound ~40%, BFS/CF memory-bound 41–63%")
	return nil
}

// slowdownTable runs every engine × algorithm at the given node count and
// prints slowdown factors relative to native, as Tables 5 and 6 do.
func slowdownTable(opt Options, nodes int, seeds []int64, scale int) error {
	type cell struct{ ratios []float64 }
	cells := map[string]map[Algo]*cell{}
	engs := engines()
	for _, e := range engs {
		cells[e.Name()] = map[Algo]*cell{}
		for _, a := range Algos() {
			cells[e.Name()][a] = &cell{}
		}
	}

	for _, seed := range seeds {
		in, err := buildInputs(scale, seed)
		if err != nil {
			return err
		}
		for _, algo := range Algos() {
			base := runOne(opt, engs[0], algo, in, nodes, opt.Iterations)
			if base.err != nil {
				return fmt.Errorf("native %v: %w", algo, base.err)
			}
			for _, e := range engs {
				if nodes > 1 && !e.Capabilities().MultiNode {
					continue
				}
				m := runOne(opt, e, algo, in, nodes, opt.Iterations)
				if m.err != nil {
					continue // recorded as a gap (e.g. CombBLAS OOM)
				}
				if base.seconds > 0 {
					cells[e.Name()][algo].ratios = append(cells[e.Name()][algo].ratios, m.seconds/base.seconds)
				}
			}
		}
	}

	tw := &tableWriter{header: []string{"Algorithm", "CombBLAS", "GraphLab", "SociaLite", "Giraph", "Galois"}}
	for _, algo := range Algos() {
		row := []string{algo.String()}
		for _, name := range []string{"CombBLAS", "GraphLab", "SociaLite", "Giraph", "Galois"} {
			c := cells[name][algo]
			if len(c.ratios) == 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", geomean(c.ratios)))
		}
		tw.addRow(row...)
	}
	tw.write(opt.Out)
	return nil
}

// Table5 reproduces the single-node slowdown summary.
func Table5(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 12
		if opt.Quick {
			scale = 9
		}
	}
	seeds := []int64{21, 22, 23}
	if opt.Quick {
		seeds = seeds[:1]
	}
	if err := slowdownTable(opt, 1, seeds, scale); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "paper (Table 5): PR 1.9/3.6/2.0/39/1.2 · BFS 2.5/9.3/7.3/568/1.1 · CF 3.5/5.1/5.8/54/1.1 · TC 34/3.2/4.7/484/2.5")
	return nil
}

// Table6 reproduces the multi-node slowdown summary (4 nodes: the largest
// square count shared by every framework's constraints at default scale).
func Table6(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 12
		if opt.Quick {
			scale = 9
		}
	}
	seeds := []int64{31, 32}
	if opt.Quick {
		seeds = seeds[:1]
	}
	if err := slowdownTable(opt, 4, seeds, scale); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "paper (Table 6): PR 2.5/12.1/7.9/74 · BFS 7.1/29.5/18.9/494 · CF 3.5/7.1/7.0/88 · TC 13.1/3.6/1.5/54")
	return nil
}

// Table7 reproduces the SociaLite before/after network optimization
// comparison on the network-bound algorithms (PageRank and triangle
// counting, 4 nodes).
func Table7(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 12
		if opt.Quick {
			scale = 9
		}
	}
	in, err := buildInputs(scale, 17)
	if err != nil {
		return err
	}
	before := socialite.NewUnoptimized()
	after := socialite.New()

	tw := &tableWriter{header: []string{"Algorithm", "Before", "After", "Speedup"}}
	for _, algo := range []Algo{PR, TC} {
		b := runOne(opt, before, algo, in, 4, opt.Iterations)
		if b.err != nil {
			return b.err
		}
		a := runOne(opt, after, algo, in, 4, opt.Iterations)
		if a.err != nil {
			return a.err
		}
		tw.addRow(algo.String(), formatSeconds(b.seconds), formatSeconds(a.seconds),
			fmt.Sprintf("%.1f×", b.seconds/a.seconds))
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "paper (Table 7): PageRank 4.6s→1.9s (2.4×), Triangle Counting 7.6s→4.9s (1.6×)")
	return nil
}

// reportFor is a convenience for experiments needing a raw cluster run.
func reportFor(opt Options, e core.Engine, algo Algo, in inputs, nodes, iterations int) (metrics.Report, error) {
	m := runOne(opt, e, algo, in, nodes, iterations)
	return m.report, m.err
}
