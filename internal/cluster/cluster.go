// Package cluster simulates the multi-node testbed of the paper (§4.3): a
// set of compute nodes connected by an interconnect driven through one of
// several communication layers (MPI, sockets, netty).
//
// Substitution note (DESIGN.md §3): we have no 64-node InfiniBand cluster,
// so algorithm compute runs as real Go code on real data — one logical node
// at a time, so per-node times are cleanly measured — while the network is
// a model: each phase charges latency·messages + bytes/bandwidth of virtual
// time per node. Run time, bytes sent, peak bandwidth, CPU utilization, and
// memory footprint are all derived from this ground truth, which is exactly
// the set of quantities the paper's multi-node analysis rests on.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"graphmaze/internal/ckpt"
	"graphmaze/internal/fault"
	"graphmaze/internal/metrics"
	"graphmaze/internal/obs"
	"graphmaze/internal/trace"
)

// CommLayer models a communication substrate: the peak bandwidth a node
// can drive and the per-message software latency. The presets are
// calibrated to the paper's measurements (Figure 6 and §6.1.3).
type CommLayer struct {
	Name      string
	Bandwidth float64 // bytes/second per node
	Latency   float64 // seconds per message
}

// MPI is the native/CombBLAS layer: FDR InfiniBand driven by MPI, the
// paper's 5.5 GB/s/node peak.
func MPI() CommLayer { return CommLayer{Name: "mpi", Bandwidth: 5.5e9, Latency: 2e-6} }

// SingleSocket is one TCP socket pair per node pair over IPoIB — what
// unoptimized SociaLite used (the paper measured "poor peak network
// performance of about 0.5 GBps", §6.1.3).
func SingleSocket() CommLayer {
	return CommLayer{Name: "socket", Bandwidth: 0.5e9, Latency: 3e-5}
}

// IPoIBSockets is GraphLab's socket stack: the paper measures it at 20–25%
// of the 5.5 GB/s hardware peak (§6.2).
func IPoIBSockets() CommLayer {
	return CommLayer{Name: "ipoib", Bandwidth: 1.2e9, Latency: 3e-5}
}

// MultiSocket is several parallel sockets per node pair, the paper's
// SociaLite optimization (§6.1.3, "close to 2 GBps").
func MultiSocket() CommLayer {
	return CommLayer{Name: "multisocket", Bandwidth: 2.0e9, Latency: 3e-5}
}

// Netty is Giraph's network I/O library: under 0.5 GB/s with high
// per-message cost (the paper measures <10% network utilization).
func Netty() CommLayer { return CommLayer{Name: "netty", Bandwidth: 0.35e9, Latency: 6e-5} }

// Config sizes a simulated cluster.
type Config struct {
	// Nodes is the number of logical machines.
	Nodes int
	// ThreadsPerNode is the provisioned hardware thread count (the paper's
	// nodes expose 48); utilization is normalized against it.
	ThreadsPerNode int
	// WorkersPerNode is how many threads the engine actually keeps busy
	// (Giraph: 4). Defaults to ThreadsPerNode.
	WorkersPerNode int
	// Comm is the communication layer model.
	Comm CommLayer
	// Overlap enables compute/communication overlap: a phase costs
	// max(compute, net) instead of compute+net (paper §6.1.1).
	Overlap bool
	// MemoryPerNode is the modeled node memory capacity (the paper's 64
	// GB), used only for normalizing the footprint metric. 0 disables
	// normalization.
	MemoryPerNode int64
	// Trace, when non-nil, receives one virtual-time span per node per
	// phase with compute/network/wait attribution (DESIGN.md §9). The nil
	// tracer disables tracing at the cost of a pointer check.
	Trace *trace.Tracer
	// Fault, when non-nil, injects the planned failures (node crashes,
	// message loss, stragglers, comm degradation) at the cluster's fault
	// points (DESIGN.md §10). Nil means a healthy cluster.
	Fault fault.Injector
	// Ckpt configures superstep checkpointing for engines that opt in via
	// Recovery; Interval 0 disables it.
	Ckpt ckpt.Config
	// MaxRecoveries bounds rollback-and-replay attempts per run before a
	// Recovery gives up (default 3).
	MaxRecoveries int
}

func (c Config) withDefaults() Config {
	if c.ThreadsPerNode == 0 {
		c.ThreadsPerNode = 48
	}
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = c.ThreadsPerNode
	}
	if c.Comm.Bandwidth == 0 {
		c.Comm = MPI()
	}
	if c.Ckpt.Enabled() {
		c.Ckpt = c.Ckpt.WithDefaults()
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = 3
	}
	return c
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	}
	if c.ThreadsPerNode < 0 || c.WorkersPerNode < 0 {
		return fmt.Errorf("cluster: negative thread counts")
	}
	if c.WorkersPerNode > c.ThreadsPerNode && c.ThreadsPerNode != 0 {
		return fmt.Errorf("cluster: %d workers exceed %d provisioned threads", c.WorkersPerNode, c.ThreadsPerNode)
	}
	if c.Comm.Bandwidth < 0 || c.Comm.Latency < 0 {
		return fmt.Errorf("cluster: negative comm parameters")
	}
	if err := c.Ckpt.Validate(); err != nil {
		return err
	}
	if c.MaxRecoveries < 0 {
		return fmt.Errorf("cluster: negative recovery bound %d", c.MaxRecoveries)
	}
	return nil
}

// Cluster is a simulated machine group. Engines structure distributed
// algorithms as a sequence of phases: within RunPhase each node's compute
// function runs and may Send messages; messages are delivered at the start
// of the next phase via Recv.
//
// A Cluster is not safe for concurrent RunPhase calls, but Send and
// Account may be called concurrently within a phase: a node's compute
// function is free to fan out across goroutines (as the Giraph runtime
// does) and let each worker queue messages directly.
type Cluster struct {
	cfg       Config
	collector *metrics.Collector

	mu          sync.Mutex // guards outbox, extraBytes, extraMsgs during a phase
	outbox      [][][]byte // [from][to] payloads queued this phase
	outboxOwned [][]bool   // [from][to] buffer is cluster-private (safe to append to)
	inbox       [][][]byte // [node] payloads delivered from last phase
	extraBytes  []int64    // accounted-only traffic per node this phase
	extraMsgs   []int64
	baselineMem []int64 // engine-declared resident bytes per node
	phases      int
	virtualSec  float64 // accumulated modeled wall clock

	// Per-phase attribution histograms (virtual nanoseconds, one lane per
	// node), resolved once at New from the tracer's registry; all nil — and
	// therefore free — when tracing is disabled.
	computeHist *obs.Histogram
	netHist     *obs.Histogram
	waitHist    *obs.Histogram
	phaseHist   *obs.Histogram
}

// New returns a cluster for the given configuration.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:         cfg,
		collector:   metrics.NewCollector(cfg.Nodes, cfg.ThreadsPerNode, cfg.MemoryPerNode),
		inbox:       make([][][]byte, cfg.Nodes),
		extraBytes:  make([]int64, cfg.Nodes),
		extraMsgs:   make([]int64, cfg.Nodes),
		baselineMem: make([]int64, cfg.Nodes),
	}
	c.resetOutbox()
	for n := 0; n < cfg.Nodes; n++ {
		cfg.Trace.SetProcessName(trace.PidNode(n), fmt.Sprintf("node %d (%s, virtual time)", n, cfg.Comm.Name))
	}
	if reg := cfg.Trace.Registry(); reg != nil {
		c.computeHist = reg.HistLanes("cluster.compute_ns", cfg.Nodes)
		c.netHist = reg.HistLanes("cluster.network_ns", cfg.Nodes)
		c.waitHist = reg.HistLanes("cluster.wait_ns", cfg.Nodes)
		c.phaseHist = reg.HistLanes("cluster.phase_wall_ns", cfg.Nodes)
	}
	return c, nil
}

func (c *Cluster) resetOutbox() {
	c.outbox = make([][][]byte, c.cfg.Nodes)
	c.outboxOwned = make([][]bool, c.cfg.Nodes)
	for i := range c.outbox {
		c.outbox[i] = make([][]byte, c.cfg.Nodes)
		c.outboxOwned[i] = make([]bool, c.cfg.Nodes)
	}
	for i := range c.extraBytes {
		c.extraBytes[i], c.extraMsgs[i] = 0, 0
	}
}

// Nodes reports the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Config returns the cluster's (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Send queues payload from node `from` to node `to`; it is delivered at
// the next phase boundary. Self-sends are delivered but charged no network
// time. Send is safe for concurrent use within a phase.
//
// Retention contract: the first payload for a (from, to) pair is retained
// as-is, not copied — the caller must not mutate it until the phase
// boundary. The cluster never writes into a caller's slice: if a second
// Send targets the same pair, the buffered bytes are first moved to a
// cluster-private buffer, so spare capacity in the first caller's backing
// array is never overwritten.
func (c *Cluster) Send(from, to int, payload []byte) {
	c.mu.Lock()
	existing := c.outbox[from][to]
	switch {
	case existing == nil:
		c.outbox[from][to] = payload
	case !c.outboxOwned[from][to]:
		// Appending to the first sender's slice could write into its spare
		// capacity, corrupting sibling slices that share the backing array.
		// Copy to a private buffer before the append.
		owned := make([]byte, len(existing), len(existing)+len(payload))
		copy(owned, existing)
		c.outbox[from][to] = append(owned, payload...)
		c.outboxOwned[from][to] = true
	default:
		c.outbox[from][to] = append(existing, payload...)
	}
	c.mu.Unlock()
}

// Account charges traffic from node `from` without materializing a
// payload — for engines that compute transfer volumes analytically.
// Account is safe for concurrent use within a phase.
func (c *Cluster) Account(from int, bytes, messages int64) {
	c.mu.Lock()
	c.extraBytes[from] += bytes
	c.extraMsgs[from] += messages
	c.mu.Unlock()
}

// Recv returns the payloads delivered to node at the last phase boundary,
// in sender order (one entry per sender that sent, including itself).
func (c *Cluster) Recv(node int) [][]byte { return c.inbox[node] }

// SetBaselineMemory declares node's resident data size (graph partition,
// vertex state). Message buffers are added on top automatically each
// phase.
func (c *Cluster) SetBaselineMemory(node int, bytes int64) {
	c.baselineMem[node] = bytes
	c.collector.RecordMemory(node, bytes)
}

// RecordMemory raises node's footprint high-water mark (for engine-private
// scratch structures).
func (c *Cluster) RecordMemory(node int, bytes int64) {
	c.collector.RecordMemory(node, bytes)
}

// RunPhase executes compute(node) for every node, measures each node's
// compute time, then models the message exchange and advances the virtual
// clock. It returns the first compute error, which aborts the exchange.
//
// Error contract (DESIGN.md §10): when RunPhase returns a non-nil error —
// a compute error, an injected crash, or a transport-detected message
// fault — the cluster is left in a defined state: the outbox and
// accounted-traffic counters are cleared, the inbox still holds the last
// successful phase's deliveries, the executed-phase counter has advanced
// past the failed phase (the counter is monotonic and never rolled back,
// which is what fault plans key on), and the failure-detection latency has
// been charged to the virtual clock. A Recovery rolls engine state back;
// the cluster itself needs no further cleanup before the next RunPhase.
func (c *Cluster) RunPhase(compute func(node int) error) error {
	comm := c.cfg.Comm
	if c.cfg.Fault != nil {
		if f := c.cfg.Fault.DegradeFactor(c.phases); f > 1 {
			// A degraded interconnect: divided bandwidth, multiplied
			// per-message latency, for this phase only.
			comm.Bandwidth /= f
			comm.Latency *= f
		}
	}

	computeSec := make([]float64, c.cfg.Nodes)
	netSec := make([]float64, c.cfg.Nodes)
	nodeBytes := make([]int64, c.cfg.Nodes)
	nodeMsgs := make([]int64, c.cfg.Nodes)
	for n := 0; n < c.cfg.Nodes; n++ {
		if c.cfg.Fault != nil && c.cfg.Fault.CrashPoint(c.phases, n) {
			return c.failPhase(computeSec,
				&fault.Error{Kind: fault.Crash, Phase: c.phases, Node: n})
		}
		start := time.Now()
		if err := compute(n); err != nil {
			computeSec[n] = time.Since(start).Seconds()
			return c.failPhase(computeSec,
				fmt.Errorf("cluster: node %d phase %d: %w", n, c.phases, err))
		}
		computeSec[n] = time.Since(start).Seconds()
		if c.cfg.Fault != nil {
			if f := c.cfg.Fault.SlowFactor(c.phases, n); f > 1 {
				computeSec[n] *= f
			}
		}
	}

	// Transport check: drops and truncations are detected at exchange time
	// (checksum/ack failure), and the phase's delivery is all-or-nothing —
	// a detected message fault aborts the whole exchange, so no engine ever
	// observes a corrupt or partial inbox and checkpoints never capture
	// corruption. That is what keeps recovered runs bit-identical.
	if c.cfg.Fault != nil {
		for from := 0; from < c.cfg.Nodes; from++ {
			for to, payload := range c.outbox[from] {
				if to == from || payload == nil {
					continue
				}
				switch c.cfg.Fault.MessageFault(c.phases, from, to) {
				case fault.Dropped:
					return c.failPhase(computeSec,
						&fault.Error{Kind: fault.Drop, Phase: c.phases, Node: from, To: to})
				case fault.Truncated:
					return c.failPhase(computeSec,
						&fault.Error{Kind: fault.Truncate, Phase: c.phases, Node: from, To: to})
				}
			}
		}
	}

	// Tally per-node traffic and charge network time.
	var maxCompute, maxNet float64
	var busy float64
	for n := 0; n < c.cfg.Nodes; n++ {
		var bytes, msgs int64
		for to, payload := range c.outbox[n] {
			if to == n || payload == nil {
				continue
			}
			bytes += int64(len(payload))
			msgs++
		}
		bytes += c.extraBytes[n]
		msgs += c.extraMsgs[n]
		net := comm.Latency*float64(msgs) + float64(bytes)/comm.Bandwidth
		netSec[n], nodeBytes[n], nodeMsgs[n] = net, bytes, msgs
		achieved := 0.0
		if net > 0 {
			achieved = float64(bytes) / net
		}
		c.collector.AddTraffic(bytes, msgs, achieved)
		if net > maxNet {
			maxNet = net
		}
		if computeSec[n] > maxCompute {
			maxCompute = computeSec[n]
		}
		busy += computeSec[n] * float64(min(c.cfg.WorkersPerNode, c.cfg.ThreadsPerNode))

		// Message buffers live alongside the baseline data.
		var bufBytes int64
		for _, payload := range c.outbox[n] {
			bufBytes += int64(len(payload))
		}
		c.collector.RecordMemory(n, c.baselineMem[n]+bufBytes)
	}

	wall := maxCompute + maxNet
	if c.cfg.Overlap {
		wall = max(maxCompute, maxNet)
	}
	c.collector.AddPhase(wall, maxCompute, maxNet, busy)

	if c.cfg.Trace.Enabled() {
		// One span per node per phase: the node's own compute and network
		// time, with the barrier slack (time spent waiting on the slowest
		// node) attributed as wait — the per-phase imbalance the paper's
		// §6 roadmap arguments rest on.
		for n := 0; n < c.cfg.Nodes; n++ {
			active := computeSec[n] + netSec[n]
			if c.cfg.Overlap {
				active = max(computeSec[n], netSec[n])
			}
			wait := wall - active
			if wait < 0 {
				wait = 0
			}
			c.cfg.Trace.RecordVirtual(trace.PidNode(n), "cluster.phase",
				fmt.Sprintf("phase %d", c.phases), c.virtualSec, wall,
				map[string]float64{
					"compute_sec": computeSec[n],
					"network_sec": netSec[n],
					"wait_sec":    wait,
					"bytes":       float64(nodeBytes[n]),
					"messages":    float64(nodeMsgs[n]),
				})
			// The same attribution, distribution-shaped: per-node virtual
			// nanoseconds so the trace report can quote p50/p99 compute vs
			// network vs barrier wait instead of only per-phase totals.
			c.computeHist.Record(n, int64(computeSec[n]*1e9))
			c.netHist.Record(n, int64(netSec[n]*1e9))
			c.waitHist.Record(n, int64(wait*1e9))
			c.phaseHist.Record(n, int64(wall*1e9))
		}
	}
	c.virtualSec += wall

	// Deliver: inbox[to] gets every non-nil payload addressed to it.
	for to := 0; to < c.cfg.Nodes; to++ {
		var delivered [][]byte
		for from := 0; from < c.cfg.Nodes; from++ {
			if p := c.outbox[from][to]; p != nil {
				delivered = append(delivered, p)
				// Receive buffers also occupy memory at the receiver.
				c.collector.RecordMemory(to, c.baselineMem[to]+int64(len(p)))
			}
		}
		c.inbox[to] = delivered
	}
	c.resetOutbox()
	c.phases++
	return nil
}

// failPhase implements RunPhase's clean-on-error contract: it charges the
// compute time already spent plus the failure-detection latency to the
// virtual clock (surfaced as recovery_sec in the metrics Report), records
// a per-node fault span on the trace, clears the outbox and accounted
// counters, advances the executed-phase counter past the failed phase, and
// returns err. The inbox is left holding the last successful phase's
// deliveries so a Recovery can re-run the step from its checkpoint.
func (c *Cluster) failPhase(computeSec []float64, err error) error {
	detect := 0.0
	if c.cfg.Fault != nil {
		detect = c.cfg.Fault.DetectSeconds()
	}
	var partial float64
	for _, s := range computeSec {
		if s > partial {
			partial = s
		}
	}
	wall := partial + detect
	c.collector.AddFailedPhase(wall)
	if c.cfg.Trace.Enabled() {
		for n := 0; n < c.cfg.Nodes; n++ {
			c.cfg.Trace.RecordVirtual(trace.PidNode(n), "cluster.fault",
				fmt.Sprintf("phase %d failed", c.phases), c.virtualSec, wall,
				map[string]float64{
					"compute_sec": computeSec[n],
					"detect_sec":  detect,
				})
		}
	}
	c.virtualSec += wall
	c.resetOutbox()
	c.phases++
	return err
}

// Collector exposes the metrics collector for the recovery driver, which
// charges checkpoint and restore costs onto the same report.
func (c *Cluster) Collector() *metrics.Collector { return c.collector }

// Phases reports how many phases have executed, failed ones included. The
// counter is monotonic and never rolled back — fault plans key their
// events on it, so a replayed phase runs under a fresh index and a
// consumed one-shot fault cannot re-fire.
func (c *Cluster) Phases() int { return c.phases }

// VirtualSeconds reports the modeled wall clock accumulated so far.
// Engines bracket RunPhase calls with it to place their own phase spans
// (supersteps, sweeps) on the virtual timeline.
func (c *Cluster) VirtualSeconds() float64 { return c.virtualSec }

// Tracer returns the tracer the cluster was configured with (nil when
// tracing is disabled).
func (c *Cluster) Tracer() *trace.Tracer { return c.cfg.Trace }

// Report finalizes and returns the run's metrics.
func (c *Cluster) Report() metrics.Report { return c.collector.Report() }
