// Package bitvec implements the bit-vector data structure the paper's
// native BFS and triangle-counting kernels rely on for constant-time
// membership tests with minimal cache footprint (§6.1.1: "algorithms like
// BFS and Triangle Counting can take advantage of bit-vectors ... for
// constant time lookups while minimizing cache misses").
package bitvec

import (
	"math/bits"
	"sync/atomic"
)

// The vector deliberately exposes both plain (Set/Get/Clear/...) and atomic
// (SetAtomic/GetAtomic) accessors over the same word array: the native BFS
// kernels use the plain forms in serial phases and the atomic forms inside
// parallel expansion, with the phase barrier providing the happens-before
// edge. Callers own that discipline, so the whole file opts out of the
// mixed-access check.
//
//lint:file-ignore atomic plain and atomic accessors are phase-separated by the caller's barrier

// Vector is a fixed-capacity bitset over [0, Len()).
type Vector struct {
	words []uint64
	n     uint32
}

// New returns a zeroed bit vector holding n bits.
func New(n uint32) *Vector {
	return &Vector{words: make([]uint64, (uint64(n)+63)/64), n: n}
}

// Len reports the capacity in bits.
func (v *Vector) Len() uint32 { return v.n }

// Set sets bit i.
func (v *Vector) Set(i uint32) {
	v.words[i>>6] |= 1 << (i & 63)
}

// Clear clears bit i.
func (v *Vector) Clear(i uint32) {
	v.words[i>>6] &^= 1 << (i & 63)
}

// Get reports bit i.
func (v *Vector) Get(i uint32) bool {
	return v.words[i>>6]&(1<<(i&63)) != 0
}

// SetAtomic sets bit i with a CAS loop, safe for concurrent setters. It
// reports whether this call changed the bit (false if it was already set),
// which lets parallel BFS claim vertices exactly once.
func (v *Vector) SetAtomic(i uint32) bool {
	addr := &v.words[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// GetAtomic reports bit i using an atomic load.
func (v *Vector) GetAtomic(i uint32) bool {
	return atomic.LoadUint64(&v.words[i>>6])&(1<<(i&63)) != 0
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Or merges other into v (v |= other). Both vectors must have equal
// capacity; Or panics otherwise, as mixing sizes is a programming error.
func (v *Vector) Or(other *Vector) {
	if v.n != other.n {
		//lint:ignore panic mixing vector sizes is a programmer error, documented in the method contract
		panic("bitvec: Or on vectors of different capacity")
	}
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
}

// AndCount returns the number of bits set in both vectors without
// materializing the intersection — the triangle-counting inner loop.
func (v *Vector) AndCount(other *Vector) int {
	if v.n != other.n {
		//lint:ignore panic mixing vector sizes is a programmer error, documented in the method contract
		panic("bitvec: AndCount on vectors of different capacity")
	}
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] & other.words[i])
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (v *Vector) ForEach(fn func(uint32)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(uint32(wi*64 + b))
			w &= w - 1
		}
	}
}

// Words exposes the raw word array for codecs. The slice aliases the
// vector's storage.
func (v *Vector) Words() []uint64 { return v.words }

// MemoryBytes reports the resident size of the vector.
func (v *Vector) MemoryBytes() int64 { return int64(len(v.words)) * 8 }
