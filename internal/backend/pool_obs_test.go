package backend

import (
	"sync/atomic"
	"testing"

	"graphmaze/internal/trace"
)

// obsTestRunner is a trivial kernel that counts the indices it was given.
type obsTestRunner struct{ n atomic.Int64 }

func (r *obsTestRunner) runChunk(_, lo, hi int) { r.n.Add(int64(hi - lo)) }

// TestPoolObservability checks an attached tracer sees dispatch latency,
// park latency, and the busy-fraction gauge — and that detaching stops
// the flow without disturbing the pool.
func TestPoolObservability(t *testing.T) {
	tr := trace.New()
	p := NewPool(4)
	defer p.Close()
	p.SetTracer(tr)

	r := &obsTestRunner{}
	const dispatches = 8
	for i := 0; i < dispatches; i++ {
		p.RunDynamic(r, 4096, 64)
	}
	if r.n.Load() != dispatches*4096 {
		t.Fatalf("kernel saw %d items", r.n.Load())
	}
	hs := tr.Registry().HistSnapshots()
	if got := hs["backend.pool.dispatch_ns"]; got.Count != dispatches {
		t.Fatalf("dispatch hist count = %d, want %d", got.Count, dispatches)
	}
	// Workers park between dispatches; with 8 dispatches and 3 parked
	// workers there must be at least one park observation per worker slot
	// after the first wake.
	if got := hs["backend.pool.park_ns"]; got.Count == 0 {
		t.Fatalf("park hist empty: %+v", got)
	}
	var busy float64
	for _, g := range tr.Registry().Snapshot().Gauges {
		switch g.Name {
		case "backend.pool.busy_frac":
			busy = g.Value
			if g.Value < 0 || g.Value > 1 {
				t.Fatalf("busy_frac out of range: %v", g.Value)
			}
		case "backend.pool.workers":
			if g.Value != 4 {
				t.Fatalf("workers gauge = %v", g.Value)
			}
		}
	}
	if busy <= 0 {
		t.Fatal("busy_frac never set")
	}

	p.SetTracer(nil)
	before := tr.Registry().HistSnapshots()["backend.pool.dispatch_ns"].Count
	p.RunDynamic(r, 4096, 64)
	after := tr.Registry().HistSnapshots()["backend.pool.dispatch_ns"].Count
	if before != after {
		t.Fatalf("detached pool still recorded: %d -> %d", before, after)
	}
}
