package graphmaze_test

import (
	"fmt"

	"graphmaze"
)

// Generate a synthetic graph and rank it with the native engine.
func Example() {
	g, err := graphmaze.Generate(graphmaze.Graph500{Scale: 10, EdgeFactor: 8, Seed: 1}, graphmaze.ForPageRank)
	if err != nil {
		panic(err)
	}
	res, err := graphmaze.Native().PageRank(g, graphmaze.PageRankOptions{Iterations: 10})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Ranks) == int(g.NumVertices))
	// Output: true
}

// Every framework engine answers the same question; only the programming
// model (and its cost) differs.
func ExampleEngines() {
	g, err := graphmaze.Generate(graphmaze.Graph500{Scale: 8, EdgeFactor: 8, Seed: 2}, graphmaze.ForTriangles)
	if err != nil {
		panic(err)
	}
	counts := map[int64]bool{}
	for _, eng := range graphmaze.Engines() {
		res, err := eng.TriangleCount(g, graphmaze.TriangleOptions{})
		if err != nil {
			panic(err)
		}
		counts[res.Count] = true
	}
	fmt.Println("engines:", len(graphmaze.Engines()), "distinct answers:", len(counts))
	// Output: engines: 6 distinct answers: 1
}

// Run on a simulated 4-node cluster and inspect the system metrics the
// paper's Figure 6 reports.
func ExampleClusterConfig() {
	g, err := graphmaze.Generate(graphmaze.Graph500{Scale: 9, EdgeFactor: 8, Seed: 3}, graphmaze.ForPageRank)
	if err != nil {
		panic(err)
	}
	res, err := graphmaze.Native().PageRank(g, graphmaze.PageRankOptions{
		Iterations: 5,
		Exec:       graphmaze.Exec{Cluster: &graphmaze.ClusterConfig{Nodes: 4}},
	})
	if err != nil {
		panic(err)
	}
	rep := res.Stats.Report
	fmt.Println(rep.Nodes, rep.BytesSent > 0, rep.SimulatedSeconds > 0)
	// Output: 4 true true
}

// Only Native and Galois can express stochastic gradient descent — the
// paper's Table 2 expressibility finding.
func ExampleCFOptions() {
	ratings, err := graphmaze.GenerateRatings(9, 16, 4)
	if err != nil {
		panic(err)
	}
	for _, eng := range []graphmaze.Engine{graphmaze.Native(), graphmaze.GraphLab(), graphmaze.Galois()} {
		_, err := eng.CollabFilter(ratings, graphmaze.CFOptions{Method: graphmaze.SGD, K: 4, Iterations: 1})
		fmt.Printf("%s: %v\n", eng.Name(), err == nil)
	}
	// Output:
	// Native: true
	// GraphLab: false
	// Galois: true
}

// Query a graph declaratively through the SociaLite Datalog engine.
func ExampleDatalog() {
	g, err := graphmaze.Generate(graphmaze.Graph500{Scale: 8, EdgeFactor: 8, Seed: 5}, graphmaze.ForTriangles)
	if err != nil {
		panic(err)
	}
	db := graphmaze.NewDatalog()
	db.AddEdgeTable("EDGE", g)
	tri := db.AddTable("TRIANGLE", 1)
	if err := db.Eval("TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z)."); err != nil {
		panic(err)
	}
	count, ok := tri.Get(0)
	fmt.Println(ok, count > 0)
	// Output: true true
}
