// Package graph provides the in-memory graph representations used by every
// engine in graphmaze: Compressed Sparse Row (CSR) adjacency, edge lists,
// bipartite rating graphs, and the partitioners that split a graph across
// the nodes of a (simulated) cluster.
//
// The CSR layout follows the paper's native implementation: all edges live
// in one contiguous array so traversal is a streaming scan, which is what
// makes the memory-bandwidth-bound behaviour of PageRank and friends
// observable.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"graphmaze/internal/par"
)

// Edge is a directed edge between two vertices.
type Edge struct {
	Src, Dst uint32
}

// WeightedEdge is a directed edge carrying a weight (a rating in the
// collaborative-filtering workloads).
type WeightedEdge struct {
	Src, Dst uint32
	Weight   float32
}

// CSR is a directed graph in Compressed Sparse Row form. For vertex v the
// adjacency list is Targets[Offsets[v]:Offsets[v+1]]. Whether that list
// holds out-neighbours or in-neighbours is up to the constructor;
// algorithms document which orientation they expect.
//
// Weights is nil for unweighted graphs; when non-nil it is parallel to
// Targets.
type CSR struct {
	NumVertices uint32
	Offsets     []int64
	Targets     []uint32
	Weights     []float32

	// targetSpace is the number of valid target ids. It equals NumVertices
	// for square (ordinary) graphs and the opposite side's cardinality for
	// the rectangular CSRs inside a Bipartite.
	targetSpace uint32
	sortedAdj   bool
}

// TargetSpace reports the number of valid target ids (NumVertices for
// square graphs, the other side's size for bipartite orientations).
func (g *CSR) TargetSpace() uint32 { return g.targetSpace }

// NumEdges reports the number of directed edges stored.
func (g *CSR) NumEdges() int64 {
	if len(g.Offsets) == 0 {
		return 0
	}
	return g.Offsets[len(g.Offsets)-1]
}

// Degree reports the length of vertex v's adjacency list.
func (g *CSR) Degree(v uint32) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Neighbors returns vertex v's adjacency list. The returned slice aliases
// the graph's storage and must not be modified.
func (g *CSR) Neighbors(v uint32) []uint32 {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(v), or nil for an
// unweighted graph.
func (g *CSR) EdgeWeights(v uint32) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// SortedAdjacency reports whether every adjacency list is sorted by vertex
// id (required by the merge-based triangle-counting kernels).
func (g *CSR) SortedAdjacency() bool { return g.sortedAdj }

// HasEdge reports whether the edge (u,v) is present. It is O(log d(u)) on
// sorted adjacency and O(d(u)) otherwise; intended for tests and small
// inputs, not inner loops.
func (g *CSR) HasEdge(u, v uint32) bool {
	adj := g.Neighbors(u)
	if g.sortedAdj {
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		return i < len(adj) && adj[i] == v
	}
	for _, w := range adj {
		if w == v {
			return true
		}
	}
	return false
}

// Edges materializes the edge list. Intended for tests and tooling.
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); v < g.NumVertices; v++ {
		for _, w := range g.Neighbors(v) {
			out = append(out, Edge{Src: v, Dst: w})
		}
	}
	return out
}

// MemoryBytes estimates the resident size of the CSR arrays. The paper's
// memory-footprint analysis (Figure 6) is driven by this kind of
// accounting.
func (g *CSR) MemoryBytes() int64 {
	b := int64(len(g.Offsets))*8 + int64(len(g.Targets))*4
	if g.Weights != nil {
		b += int64(len(g.Weights)) * 4
	}
	return b
}

// Validate checks structural invariants: monotone offsets, targets in
// range, and weight-array shape. It returns the first violation found.
func (g *CSR) Validate() error {
	if int(g.NumVertices)+1 != len(g.Offsets) {
		return fmt.Errorf("graph: %d vertices but %d offsets", g.NumVertices, len(g.Offsets))
	}
	if len(g.Offsets) == 0 || g.Offsets[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	for i := 1; i < len(g.Offsets); i++ {
		if g.Offsets[i] < g.Offsets[i-1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", i-1)
		}
	}
	if g.Offsets[len(g.Offsets)-1] != int64(len(g.Targets)) {
		return fmt.Errorf("graph: final offset %d != %d targets", g.Offsets[len(g.Offsets)-1], len(g.Targets))
	}
	for i, t := range g.Targets {
		if t >= g.targetSpace {
			return fmt.Errorf("graph: target %d at position %d out of range [0,%d)", t, i, g.targetSpace)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("graph: %d weights for %d targets", len(g.Weights), len(g.Targets))
	}
	if g.sortedAdj {
		for v := uint32(0); v < g.NumVertices; v++ {
			adj := g.Neighbors(v)
			for i := 1; i < len(adj); i++ {
				if adj[i-1] > adj[i] {
					return fmt.Errorf("graph: adjacency of vertex %d not sorted", v)
				}
			}
		}
	}
	return nil
}

// FromEdges builds a CSR whose adjacency lists hold the Dst endpoints of
// the given edges, without deduplication. Use a Builder for the transforms
// (dedup, symmetrize, orientation) the paper's data preparation applies.
func FromEdges(numVertices uint32, edges []Edge) (*CSR, error) {
	g := buildCSR(numVertices, numVertices, len(edges), func(i int) (uint32, uint32) {
		e := edges[i]
		return e.Src, e.Dst
	}, nil)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromWeightedEdges builds a weighted CSR, keyed by Src, without
// deduplication.
func FromWeightedEdges(numVertices uint32, edges []WeightedEdge) (*CSR, error) {
	return FromWeightedEdgesRect(numVertices, numVertices, edges)
}

// FromWeightedEdgesRect builds a rectangular weighted CSR: sources live in
// [0,numSources), targets in [0,numTargets). Bipartite rating graphs are
// rectangular.
func FromWeightedEdgesRect(numSources, numTargets uint32, edges []WeightedEdge) (*CSR, error) {
	g := buildCSR(numSources, numTargets, len(edges), func(i int) (uint32, uint32) {
		e := edges[i]
		return e.Src, e.Dst
	}, func(i int) float32 { return edges[i].Weight })
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildCSR does a two-pass counting-sort construction: one pass to count
// degrees, one to scatter targets. edgeAt must be safe for repeated calls.
func buildCSR(numVertices, numTargets uint32, numEdges int, edgeAt func(int) (uint32, uint32), weightAt func(int) float32) *CSR {
	offsets := make([]int64, numVertices+1)
	for i := 0; i < numEdges; i++ {
		src, _ := edgeAt(i)
		offsets[src+1]++
	}
	for i := 1; i < len(offsets); i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]uint32, numEdges)
	var weights []float32
	if weightAt != nil {
		weights = make([]float32, numEdges)
	}
	cursor := make([]int64, numVertices)
	for i := 0; i < numEdges; i++ {
		src, dst := edgeAt(i)
		pos := offsets[src] + cursor[src]
		targets[pos] = dst
		if weights != nil {
			weights[pos] = weightAt(i)
		}
		cursor[src]++
	}
	return &CSR{NumVertices: numVertices, Offsets: offsets, Targets: targets, Weights: weights, targetSpace: numTargets}
}

// Transpose returns the graph with every edge reversed. An out-CSR becomes
// an in-CSR and vice versa; PageRank's native kernel wants in-edges in CSR
// form (paper §3.1). Weights follow their edges; a rectangular CSR swaps
// its source and target spaces. Adjacency sortedness is guaranteed because
// the counting-sort scatter visits sources in order.
func (g *CSR) Transpose() *CSR {
	n := g.targetSpace
	offsets := make([]int64, n+1)
	for _, t := range g.Targets {
		offsets[t+1]++
	}
	for i := 1; i < len(offsets); i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]uint32, len(g.Targets))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, len(g.Weights))
	}
	cursor := make([]int64, n)
	for v := uint32(0); v < g.NumVertices; v++ {
		start, end := g.Offsets[v], g.Offsets[v+1]
		for i := start; i < end; i++ {
			t := g.Targets[i]
			pos := offsets[t] + cursor[t]
			targets[pos] = v
			if weights != nil {
				weights[pos] = g.Weights[i]
			}
			cursor[t]++
		}
	}
	return &CSR{NumVertices: n, Offsets: offsets, Targets: targets, Weights: weights, targetSpace: g.NumVertices, sortedAdj: true}
}

// SortAdjacency sorts every adjacency list in place by target id (weights,
// if present, move with their targets) and marks the graph sorted.
func (g *CSR) SortAdjacency() {
	for v := uint32(0); v < g.NumVertices; v++ {
		start, end := g.Offsets[v], g.Offsets[v+1]
		adj := g.Targets[start:end]
		if g.Weights == nil {
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
			continue
		}
		w := g.Weights[start:end]
		sort.Sort(&adjWeightSorter{adj: adj, w: w})
	}
	g.sortedAdj = true
}

type adjWeightSorter struct {
	adj []uint32
	w   []float32
}

func (s *adjWeightSorter) Len() int           { return len(s.adj) }
func (s *adjWeightSorter) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s *adjWeightSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// EdgeBalancedRanges returns k+1 vertex boundaries b (b[0]=0,
// b[k]=NumVertices) such that each range [b[i], b[i+1]) holds roughly
// NumEdges/k edges — the paper's §3.1 native partitioning: on power-law
// graphs an equal-vertex split is wildly imbalanced, so workers and nodes
// are handed equal *edge* shares instead. The cut points come from a
// binary search on the Offsets array the CSR already stores, so the split
// is O(k log V) with zero extra memory. A hub vertex larger than the
// per-part budget leaves later parts empty rather than being split.
func (g *CSR) EdgeBalancedRanges(k int) []uint32 {
	bounds := par.OffsetSplits(g.Offsets, k)
	out := make([]uint32, len(bounds))
	for i, b := range bounds {
		out[i] = uint32(b)
	}
	return out
}

// OutDegrees returns the degree array of the stored orientation.
func (g *CSR) OutDegrees() []int64 {
	d := make([]int64, g.NumVertices)
	for v := uint32(0); v < g.NumVertices; v++ {
		d[v] = g.Degree(v)
	}
	return d
}

// InDegrees counts how many stored edges point at each target id.
func (g *CSR) InDegrees() []int64 {
	d := make([]int64, g.targetSpace)
	for _, t := range g.Targets {
		d[t]++
	}
	return d
}
