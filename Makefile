GO ?= go

.PHONY: build test race lint lint-baseline lint-selfcheck fmt all bench-par bench-backend bench-diff bench-stream bench-stream-diff bench-serve bench-serve-diff trace-demo fault-demo obs-demo serve-demo

all: fmt lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the stress tests (and everything else) under the race detector;
# -short scales the stress workloads down so the pass stays quick.
race:
	$(GO) test -race -short ./...

# lint runs graphlint (the project-specific analyzer) against the checked-in
# baseline — only findings not recorded in lint.baseline.json fail — writes
# the full findings to lint-findings.json for the CI artifact, then runs
# go vet. Regenerate the baseline with `make lint-baseline` after triaging.
lint:
	$(GO) run ./cmd/graphlint -json ./... > lint-findings.json || true
	$(GO) run ./cmd/graphlint -baseline lint.baseline.json ./...
	$(GO) vet ./...

# lint-baseline re-records the current findings as the accepted baseline.
lint-baseline:
	$(GO) run ./cmd/graphlint -write-baseline -baseline lint.baseline.json ./...

# lint-selfcheck runs graphlint over its own implementation: the analyzer
# must hold itself to the rules it enforces.
lint-selfcheck:
	$(GO) run ./cmd/graphlint -baseline lint.baseline.json ./internal/lint ./cmd/graphlint

# fmt fails if any file needs gofmt, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench-par runs the scheduling-layer microbenchmarks, the skewed native
# kernels (static vs dynamic/edge-balanced), the per-engine PageRank/BFS
# kernels at the repo root, and the obs histogram hot paths, and writes
# the results as JSON. Override the skew graph size with
# GRAPHMAZE_SKEW_SCALE (default 16).
bench-par:
	$(GO) test -run '^$$' -bench 'BenchmarkPar|BenchmarkNative.*Skewed|BenchmarkPageRank$$|BenchmarkBFS$$|BenchmarkObs' -benchmem \
		. ./internal/par ./internal/native ./internal/obs | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_par.json

# bench-backend runs the shared SpMV backend kernels (semiring products,
# frontier expansion, a full lowered PageRank iteration). allocs/op must
# read 0 for the steady-state kernels, and the per-engine numbers in
# BENCH_par.json are measured against these.
bench-backend:
	$(GO) test -run '^$$' -bench 'BenchmarkBackend' -benchmem \
		./internal/backend | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_backend.json

# bench-stream runs the epoch-stream benchmarks: delta batch ingestion
# (dedup-sort + merge-build of the next epoch's CSR), snapshot
# encode/decode framing, and the incremental kernel refreshes (warm
# PageRank, BFS repair, CC repair) with each iteration ingesting one
# delta batch — the steady state of serving queries on a growing graph.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkStream' -benchmem \
		./internal/graph ./internal/native | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_stream.json

# bench-stream-diff compares a fresh bench-stream run against the
# checked-in BENCH_stream.json, same thresholds as bench-diff.
bench-stream-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkStream' -benchmem \
		./internal/graph ./internal/native | $(GO) run ./cmd/benchjson > BENCH_stream.new.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.25 -quantile-threshold 2.0 BENCH_stream.json BENCH_stream.new.json

# bench-serve runs the serving-layer benchmarks: the full service path on
# a cache hit, a cache-bypass miss, a PageRank recompute miss, the
# admission fast path alone and under tenant contention, and the raw
# result cache, writing BENCH_serve.json.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkAdmission|BenchmarkResultCache' -benchmem \
		./internal/serve | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_serve.json

# bench-serve-diff compares a fresh bench-serve run against the
# checked-in BENCH_serve.json, same thresholds as bench-diff.
bench-serve-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkAdmission|BenchmarkResultCache' -benchmem \
		./internal/serve | $(GO) run ./cmd/benchjson > BENCH_serve.new.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.25 -quantile-threshold 2.0 BENCH_serve.json BENCH_serve.new.json

# bench-diff compares a fresh bench-par run against the checked-in
# BENCH_par.json and fails on a >1.25x ns/op or allocs/op regression
# (>2x for the pN-ns/op latency quantiles, which are noisier).
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkPar|BenchmarkNative.*Skewed|BenchmarkPageRank$$|BenchmarkBFS$$|BenchmarkObs' -benchmem \
		. ./internal/par ./internal/native ./internal/obs | $(GO) run ./cmd/benchjson > BENCH_par.new.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.25 -quantile-threshold 2.0 BENCH_par.json BENCH_par.new.json

# trace-demo runs a small traced experiment end to end: the Chrome trace
# lands in trace-demo.json (load it at https://ui.perfetto.dev) and the
# machine-readable report in trace-demo-report.json.
trace-demo:
	$(GO) run ./cmd/graphbench -exp table5 -quick -iters 2 \
		-trace trace-demo.json -json > trace-demo-report.json
	@echo "wrote trace-demo.json and trace-demo-report.json"

# obs-demo smoke-tests the live observability listener end to end: it runs
# a quick experiment with -obs, scrapes /metrics until the finished run's
# harness histogram shows up (the -obs-linger window keeps the listener
# alive after the run), checks the Prometheus text and JSON expositions
# are well-formed, and pulls a non-empty heap profile from pprof.
OBS_DEMO_ADDR ?= 127.0.0.1:8321
obs-demo:
	@set -e; \
	$(GO) run ./cmd/graphbench -exp table5 -quick -iters 2 \
		-obs $(OBS_DEMO_ADDR) -obs-linger 60s >/dev/null 2>obs-demo.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=""; for i in $$(seq 1 300); do \
		if curl -sf http://$(OBS_DEMO_ADDR)/metrics -o obs-demo.metrics 2>/dev/null \
			&& grep -q '^graphmaze_harness_run_dur_ns' obs-demo.metrics; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	if [ -z "$$ok" ]; then echo "obs-demo: no harness histogram scraped"; cat obs-demo.log; exit 1; fi; \
	grep -q '^# TYPE graphmaze_' obs-demo.metrics || { echo "obs-demo: /metrics lacks TYPE lines"; exit 1; }; \
	grep -q '^graphmaze_runtime_goroutines ' obs-demo.metrics || { echo "obs-demo: /metrics lacks runtime gauges"; exit 1; }; \
	curl -sf http://$(OBS_DEMO_ADDR)/metrics.json -o obs-demo.metrics.json; \
	grep -q '"histograms"' obs-demo.metrics.json || { echo "obs-demo: /metrics.json lacks histograms"; exit 1; }; \
	curl -sf http://$(OBS_DEMO_ADDR)/debug/pprof/heap -o obs-demo.heap; \
	[ -s obs-demo.heap ] || { echo "obs-demo: empty heap profile"; exit 1; }; \
	echo "obs-demo: scraped $$(grep -c '^graphmaze_' obs-demo.metrics) series + heap profile from http://$(OBS_DEMO_ADDR)/"

# serve-demo smoke-tests the always-on query service end to end: start
# graphserve on small built-in graphs, wait for /healthz, drive it for
# 2 seconds with the Zipf-skewed multi-tenant loadgen (including
# mutation batches so epochs advance under load), require non-zero
# throughput, then SIGINT the server and require a clean shutdown.
SERVE_DEMO_ADDR ?= 127.0.0.1:8322
serve-demo:
	@set -e; \
	$(GO) build -o graphserve.demo ./cmd/graphserve; \
	./graphserve.demo -addr $(SERVE_DEMO_ADDR) -scale 10 > serve-demo.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -f graphserve.demo' EXIT; \
	ok=""; for i in $$(seq 1 300); do \
		if curl -sf http://$(SERVE_DEMO_ADDR)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	[ -n "$$ok" ] || { echo "serve-demo: server never became healthy"; cat serve-demo.log; exit 1; }; \
	./graphserve.demo -loadgen -url http://$(SERVE_DEMO_ADDR) -duration 2s \
		-delta-every 250ms -min-qps 1 | tee serve-demo.loadgen; \
	kill -INT $$pid; wait $$pid || true; \
	grep -q 'clean shutdown' serve-demo.log || { echo "serve-demo: no clean shutdown"; cat serve-demo.log; exit 1; }; \
	echo "serve-demo: ok"

# fault-demo runs the fault-tolerance experiment with an injected crash
# and checkpointing: the tables show checkpoint overhead vs interval and
# the cost of rolling back and replaying; the Chrome trace in
# fault-demo.json carries cluster.checkpoint / cluster.fault /
# cluster.recovery spans on the per-node tracks.
fault-demo:
	$(GO) run ./cmd/graphbench -exp faulttol -quick \
		-faults 'crash@3:n1' -ckpt-interval 2 \
		-trace fault-demo.json -json > fault-demo-report.json
	@echo "wrote fault-demo.json and fault-demo-report.json"
