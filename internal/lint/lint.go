// Package lint implements graphlint, the project-specific static analyzer
// that guards the invariants our concurrent engine runtimes rely on but the
// generic Go toolchain cannot check: no mixed atomic/plain access, no
// fire-and-forget goroutines in engine code, no panics in library paths,
// no silent 64-bit → 32-bit index truncation, no trace spans dropped by a
// missed End(), no discarded checkpoint/restore errors, no epoch snapshots
// retained in long-lived engine state, and doc comments on every exported
// engine API. On top of the per-node checks, a small
// dataflow layer (cfg.go, dataflow.go, callgraph.go) powers three deeper
// rule families: det (nondeterminism: map-order leaks, wall clock and
// global rand in kernels and codecs, float accumulation order), lock
// (mutex discipline across CFG paths and guarded fields across functions),
// and hotalloc (allocation patterns inside par.For* kernel bodies).
//
// The analyzer is built only on the standard library (go/parser, go/ast,
// go/types): Load parses and type-checks the module from source, Run applies
// every Rule to every package, and findings are reported as
// "file:line: [rule] message". Intentional violations are silenced in place
// with a "//lint:ignore <rule> <reason>" comment on (or directly above) the
// offending line, or for whole files with "//lint:file-ignore <rule>
// <reason>".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	File string `json:"file"` // path relative to the module root
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"message"`
}

// String renders the finding in the canonical "file:line: [rule] message"
// form the CI gate greps for.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Package is one type-checked package of the module under analysis. Test
// files are excluded: the rules guard shipped runtime code, and stress tests
// intentionally hammer internals in ways the rules forbid.
type Package struct {
	// Rel is the package directory relative to the module root ("" for the
	// root package). Rules use it to decide whether they apply.
	Rel string
	// Path is the full import path.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Rule is one self-contained invariant check.
type Rule interface {
	// Name is the short identifier used in findings and ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check inspects one package and reports violations.
	Check(p *Package, report func(pos token.Pos, format string, args ...any))
}

// DefaultRules returns every graphlint rule in reporting order.
func DefaultRules() []Rule {
	return []Rule{
		&AtomicRule{},
		&CkptRule{},
		&DetRule{},
		&GoroutineRule{},
		&HandlerRule{},
		&HotAllocRule{},
		&LockRule{},
		&ObsRule{},
		&PanicRule{},
		&ScratchRule{},
		&SnapshotRule{},
		&SpanRule{},
		&TruncateRule{},
		&DocRule{},
	}
}

// enginePackages are the relative paths of the hand-rolled runtime packages:
// the concurrency-sensitive layer every rule set cares most about.
var enginePackages = map[string]bool{
	"internal/backend":   true,
	"internal/par":       true,
	"internal/galois":    true,
	"internal/giraph":    true,
	"internal/graphlab":  true,
	"internal/combblas":  true,
	"internal/cluster":   true,
	"internal/native":    true,
	"internal/socialite": true,
}

// isEngine reports whether rel names one of the engine runtime packages.
func isEngine(rel string) bool { return enginePackages[rel] }

// Run applies rules to pkgs and returns the surviving findings sorted by
// file and line, with ignore directives already applied.
func Run(pkgs []*Package, rules []Rule) []Finding {
	var findings []Finding
	for _, p := range pkgs {
		ignores := collectIgnores(p)
		for _, r := range rules {
			rule := r
			report := func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				f := Finding{
					File: position.Filename,
					Line: position.Line,
					Col:  position.Column,
					Rule: rule.Name(),
					Msg:  fmt.Sprintf(format, args...),
				}
				if ignores.suppressed(f) {
					return
				}
				findings = append(findings, f)
			}
			rule.Check(p, report)
		}
		// Directives that name an unknown rule are themselves findings:
		// a typo in an ignore comment must not silently disable nothing.
		findings = append(findings, ignores.bad...)
		// Directives whose rule ran but suppressed nothing are stale: the
		// code they excused has moved or been fixed, so they must go before
		// they hide a future real finding on the same line.
		findings = append(findings, ignores.unused(rules)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		return findings[i].Rule < findings[j].Rule
	})
	return findings
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore comment.
type ignoreDirective struct {
	rule   string
	reason string
	line   int
	file   string
	whole  bool // file-ignore: applies to the entire file
}

type ignoreSet struct {
	directives []ignoreDirective
	// used marks directives that suppressed at least one finding this run.
	used []bool
	bad  []Finding
}

// collectIgnores parses the lint directives of every file in p.
func collectIgnores(p *Package) *ignoreSet {
	known := make(map[string]bool)
	for _, r := range DefaultRules() {
		known[r.Name()] = true
	}
	set := &ignoreSet{}
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var whole bool
				switch {
				case isDirective(text, "lint:file-ignore"):
					text = strings.TrimPrefix(text, "lint:file-ignore")
					whole = true
				case isDirective(text, "lint:ignore"):
					text = strings.TrimPrefix(text, "lint:ignore")
				default:
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					set.bad = append(set.bad, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Rule: "directive",
						Msg:  "lint:ignore needs a rule name and a reason",
					})
					continue
				}
				if !known[fields[0]] {
					set.bad = append(set.bad, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Rule: "directive",
						Msg:  fmt.Sprintf("lint:ignore names unknown rule %q", fields[0]),
					})
					continue
				}
				set.directives = append(set.directives, ignoreDirective{
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
					file:   pos.Filename,
					whole:  whole,
				})
			}
		}
	}
	return set
}

// isDirective reports whether text is the directive word followed by a
// space: prose that merely mentions a directive name mid-sentence (or runs
// it into punctuation) is not a directive.
func isDirective(text, word string) bool {
	rest, ok := strings.CutPrefix(text, word)
	return ok && strings.HasPrefix(rest, " ")
}

// suppressed reports whether f is covered by a directive: a file-ignore for
// the same rule anywhere in the file, or a line ignore for the same rule on
// the finding's line or the line directly above it. Matching directives are
// marked used so stale ones can be reported afterwards.
func (s *ignoreSet) suppressed(f Finding) bool {
	if s.used == nil {
		s.used = make([]bool, len(s.directives))
	}
	hit := false
	for i, d := range s.directives {
		if d.file != f.File || d.rule != f.Rule {
			continue
		}
		if d.whole || d.line == f.Line || d.line == f.Line-1 {
			s.used[i] = true
			hit = true
		}
	}
	return hit
}

// unused returns an "ignore" hygiene finding for every directive whose rule
// was part of this run but which suppressed nothing: the violation it once
// excused is gone, and a stale directive would silently swallow the next
// real finding on its line.
func (s *ignoreSet) unused(rules []Rule) []Finding {
	ran := make(map[string]bool, len(rules))
	for _, r := range rules {
		ran[r.Name()] = true
	}
	var out []Finding
	for i, d := range s.directives {
		if (s.used != nil && s.used[i]) || !ran[d.rule] {
			continue
		}
		kind := "lint:ignore"
		if d.whole {
			kind = "lint:file-ignore"
		}
		out = append(out, Finding{
			File: d.file, Line: d.line, Col: 1,
			Rule: "ignore",
			Msg:  fmt.Sprintf("%s %s suppresses nothing; delete the stale directive", kind, d.rule),
		})
	}
	return out
}
