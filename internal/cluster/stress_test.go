package cluster

import (
	"sync"
	"testing"
)

// TestConcurrentSendAccountStress exists to run under `go test -race`: it
// exercises the documented contract that Send and Account are safe for
// concurrent use within a phase. Every node's compute function fans out
// across goroutines that all queue messages and analytic traffic at once;
// the phase boundary then delivers, and the byte totals check that no
// concurrent append was lost. testing.Short() scales the volume down
// without skipping the scenario.
func TestConcurrentSendAccountStress(t *testing.T) {
	const nodes = 4
	goroutines := 8
	sendsPerGoroutine := 2_000
	if testing.Short() {
		sendsPerGoroutine = 250
	}

	c, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}

	payload := []byte{0xab, 0xcd, 0xef, 0x01}
	err = c.RunPhase(func(node int) error {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < sendsPerGoroutine; i++ {
					for to := 0; to < nodes; to++ {
						if to == node {
							continue
						}
						// Send must copy-append under the hood: the same
						// payload slice is shared by every goroutine.
						c.Send(node, to, payload)
						c.Account(node, 16, 1)
					}
				}
			}()
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every node heard from nodes-1 senders, each contributing
	// goroutines × sendsPerGoroutine × len(payload) bytes.
	wantPerSender := goroutines * sendsPerGoroutine * len(payload)
	for node := 0; node < nodes; node++ {
		delivered := c.Recv(node)
		if len(delivered) != nodes-1 {
			t.Fatalf("node %d: got %d sender buffers, want %d", node, len(delivered), nodes-1)
		}
		for i, buf := range delivered {
			if len(buf) != wantPerSender {
				t.Fatalf("node %d buffer %d: %d bytes delivered, want %d (concurrent Send lost data)",
					node, i, len(buf), wantPerSender)
			}
		}
	}

	// The analytic traffic must also have been tallied without loss: the
	// phase report's bytes include both payloads and Account charges.
	rep := c.Report()
	wantBytes := int64(nodes * (nodes - 1) * goroutines * sendsPerGoroutine * (len(payload) + 16))
	if rep.BytesSent != wantBytes {
		t.Fatalf("report counts %d bytes sent, want %d (concurrent Account lost updates)", rep.BytesSent, wantBytes)
	}
}
