package combblas

import (
	"fmt"
	"sort"
	"time"

	"graphmaze/internal/backend"
	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
	"graphmaze/internal/trace"
)

// Engine is the CombBLAS-model engine: every algorithm is a composition of
// sparse matrix primitives over semirings.
type Engine struct {
	// guardMemory enables the modeled out-of-memory failure for the A²
	// product (on by default, as in the real system).
	guardMemory bool
}

var _ core.Engine = (*Engine)(nil)

// New returns the CombBLAS-model engine.
func New() *Engine { return &Engine{guardMemory: true} }

// NewUnguarded returns an engine that ignores the modeled memory capacity
// (for experiments that want the count despite the blowup).
func NewUnguarded() *Engine { return &Engine{guardMemory: false} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "CombBLAS" }

// Capabilities implements core.Engine.
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{MultiNode: true, SGD: false, ProgrammingModel: "sparse matrix"}
}

// execConfig mirrors the run-wide tracer into a copy of the cluster config
// so grid phases emit per-node spans.
func execConfig(exec core.Exec) cluster.Config {
	cfg := *exec.Cluster
	if cfg.Trace == nil {
		cfg.Trace = exec.Trace
	}
	return cfg
}

// newGrid builds the MPI-driven process grid; node counts must be perfect
// squares (paper §4.3).
func (e *Engine) newGrid(cfg cluster.Config, n uint32) (*Grid, error) {
	if cfg.Comm.Bandwidth == 0 {
		cfg.Comm = cluster.MPI()
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	g, err := NewGrid(c, n)
	if err != nil {
		return nil, err
	}
	for node := 0; node < c.Nodes(); node++ {
		c.SetBaselineMemory(node, 0) // raised per algorithm below
	}
	return g, nil
}

// PageRank implements core.Engine as the paper's equation (9):
// p ← r·1 + (1−r)·Aᵀ p̂ with p̂ = p/outdeg, one SpMV per iteration.
func (e *Engine) PageRank(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, err
	}
	a := FromGraph(g)
	at := FromGraph(g.Transpose()) // rows = destinations, sorted columns
	sr := PlusTimesF64()
	// The degree vector is a row-wise Reduce over A (CombBLAS derives d
	// with its Reduce primitive, eq. 9's d vector).
	outDeg := Reduce(a, 1.0, sr)
	n := int(g.NumVertices)
	p := make([]float64, n)
	phat := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	normalize := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if outDeg[i] > 0 {
				phat[i] = p[i] / outDeg[i]
			} else {
				phat[i] = 0
			}
		}
	}
	finish := func(y []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = opt.RandomJump + (1-opt.RandomJump)*y[i]
		}
	}

	if opt.Exec.Cluster == nil {
		tr := opt.Exec.Tracer()
		start := time.Now()
		// Lowered onto the shared backend: the pattern SpMV is a
		// persistent plus-times kernel and the finish pass fuses into its
		// per-row map — same ascending in-row fold, same finishing
		// expression, but the semiring indirection and the per-iteration
		// output allocation are gone.
		pool := backend.NewPool(0)
		defer pool.Close()
		pool.SetTracer(tr)
		mul := backend.NewSumVecMul(pool, backendView(at)).WithTracer(tr)
		post := func(r uint32, y float64) float64 {
			return opt.RandomJump + (1-opt.RandomJump)*y
		}
		for it := 0; it < opt.Iterations; it++ {
			sp := tr.Begin("combblas.spmv", "spmv iteration").Arg("iter", float64(it))
			par.For(n, normalize)
			mul.MapInto(p, phat, post)
			sp.End()
		}
		return &core.PageRankResult{Ranks: p,
			Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}}, nil
	}

	grid, err := e.newGrid(execConfig(opt.Exec), g.NumVertices)
	if err != nil {
		return nil, err
	}
	for node := 0; node < grid.C.Nodes(); node++ {
		grid.C.SetBaselineMemory(node, at.MemoryBytes(0)/int64(grid.C.Nodes())+int64(n)*24/int64(grid.C.Nodes()))
	}
	tr := grid.C.Tracer()
	for it := 0; it < opt.Iterations; it++ {
		iterStart := grid.C.VirtualSeconds()
		// Dense vector ops run on the block-diagonal owners' stripes.
		if err := grid.C.RunPhase(func(node int) error {
			rlo, rhi, _, _ := grid.blockBounds(node)
			ri, ci := grid.P2D.Block(node)
			if ri == ci {
				normalize(int(rlo), int(rhi))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		y, err := DistSpMV(grid, at, phat, sr, 8, 1.0)
		if err != nil {
			return nil, err
		}
		if err := grid.C.RunPhase(func(node int) error {
			rlo, rhi, _, _ := grid.blockBounds(node)
			ri, ci := grid.P2D.Block(node)
			if ri == ci {
				finish(y, int(rlo), int(rhi))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		tr.RecordVirtual(trace.PidEngine, "combblas.spmv",
			fmt.Sprintf("spmv iteration %d", it), iterStart, grid.C.VirtualSeconds()-iterStart, nil)
	}
	return &core.PageRankResult{Ranks: p, Stats: statsFrom(grid.C, opt.Iterations)}, nil
}

// BFS implements core.Engine as repeated frontier SpMVs over the boolean
// semiring (paper's equation 10).
func (e *Engine) BFS(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	opt, err := core.CheckBFSInput(g, opt)
	if err != nil {
		return nil, err
	}
	a := FromGraph(g) // symmetric input: rows double as the transpose
	n := g.NumVertices
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[opt.Source] = 0
	frontier := []uint32{opt.Source}

	var grid *Grid
	var marks []bool
	var exp *backend.Expander
	if opt.Exec.Cluster != nil {
		grid, err = e.newGrid(execConfig(opt.Exec), n)
		if err != nil {
			return nil, err
		}
		for node := 0; node < grid.C.Nodes(); node++ {
			grid.C.SetBaselineMemory(node, a.MemoryBytes(0)/int64(grid.C.Nodes())+int64(n)*5/int64(grid.C.Nodes()))
		}
		marks = make([]bool, n)
	} else {
		// Local frontier expansion lowers onto the backend's
		// persistent-claims expander: the claimed bitset replaces the
		// per-level marks scan, and its scratch survives across levels.
		pool := backend.NewPool(0)
		defer pool.Close()
		pool.SetTracer(opt.Exec.Tracer())
		exp = backend.NewExpander(pool, backendView(a))
		exp.Claim(opt.Source)
	}

	start := time.Now()
	level := int32(0)
	var buf []uint32
	for len(frontier) > 0 {
		level++
		var next []uint32
		if grid == nil {
			next = exp.Expand(frontier, buf[:0])
			buf = next
		} else {
			next, err = DistSpMSpV(grid, a, frontier, marks)
			if err != nil {
				return nil, err
			}
		}
		frontier = frontier[:0]
		for _, v := range next {
			if dist[v] == -1 {
				dist[v] = level
				frontier = append(frontier, v)
			}
		}
	}
	stats := core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: int(level)}
	if grid != nil {
		stats = statsFrom(grid.C, int(level))
	}
	return &core.BFSResult{Distances: dist, Stats: stats}, nil
}

// TriangleCount implements core.Engine as nnz(A ∩ A²) (paper §3.2). The
// A² product is materialized — the expressibility problem that makes
// CombBLAS TC both slow and memory-hungry.
func (e *Engine) TriangleCount(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	opt, err := core.CheckTriangleInput(g, opt)
	if err != nil {
		return nil, err
	}
	a := FromGraph(g)
	if opt.Exec.Cluster == nil {
		start := time.Now()
		a2, err := SpGEMM(a, a)
		if err != nil {
			return nil, err
		}
		count, err := EWiseMultSum(a, a2)
		if err != nil {
			return nil, err
		}
		return &core.TriangleResult{Count: count,
			Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: 1}}, nil
	}
	grid, err := e.newGrid(execConfig(opt.Exec), g.NumVertices)
	if err != nil {
		return nil, err
	}
	count, err := DistTriangleCount(grid, a, e.guardMemory)
	if err != nil {
		return nil, err
	}
	return &core.TriangleResult{Count: count, Stats: statsFrom(grid.C, 1)}, nil
}

// CollabFilter implements core.Engine: gradient descent where each
// iteration is 3K sparse matrix-vector-style passes (the paper: "a single
// GD iteration consists of K matrix-vector multiplications"; CombBLAS
// cannot hold K-wide dense matrices across a grid, so every latent
// dimension is a separate pass — the expressibility overhead behind its
// 3.5× CF gap). SGD is inexpressible.
func (e *Engine) CollabFilter(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	opt, err := core.CheckCFInput(r, opt)
	if err != nil {
		return nil, err
	}
	if opt.Method == core.SGD {
		return nil, core.ErrUnsupported
	}
	k := opt.K
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)
	rm, err := FromWeightedGraph(r.ByUser)
	if err != nil {
		return nil, err
	}
	errVals := make([]float64, rm.NNZ())

	var grid *Grid
	var userRange, itemRange func(node int) (uint32, uint32)
	if opt.Exec.Cluster != nil {
		// CF's matrix is rectangular; the grid decomposes users into block
		// rows and items into block columns.
		cfg := *opt.Exec.Cluster
		if cfg.Comm.Bandwidth == 0 {
			cfg.Comm = cluster.MPI()
		}
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		p2dU, err := graph.NewPartition2D(r.NumUsers, c.Nodes())
		if err != nil {
			return nil, err
		}
		p2dI, err := graph.NewPartition2D(r.NumItems, c.Nodes())
		if err != nil {
			return nil, err
		}
		grid = &Grid{C: c, P2D: p2dU, Dim: p2dU.GridDim}
		userRange = func(node int) (uint32, uint32) {
			ri, _ := p2dU.Block(node)
			return p2dU.RowStarts[ri], p2dU.RowStarts[ri+1]
		}
		itemRange = func(node int) (uint32, uint32) {
			_, ci := p2dI.Block(node)
			return p2dI.ColStarts[ci], p2dI.ColStarts[ci+1]
		}
		for node := 0; node < c.Nodes(); node++ {
			c.SetBaselineMemory(node, rm.MemoryBytes(4)/int64(c.Nodes())+
				(int64(r.NumUsers)+int64(r.NumItems))*int64(k)*4/int64(c.Nodes()))
		}
	}

	gamma := opt.LearningRate
	rmse := make([]float64, 0, opt.Iterations)
	start := time.Now()

	// CombBLAS cannot hold a K-wide dense factor matrix across the grid
	// (paper §3.2: "multiplication with the p matrix has to be performed
	// in K steps"), so every latent dimension is a separate full pass over
	// the rating matrix: K passes to build the error values, then K passes
	// each for E·Q and Eᵀ·P. This 3K-pass structure — not the arithmetic —
	// is the framework's CF overhead.
	rowWindow := func(u, ilo, ihi uint32) (int, int) {
		cols, _ := rm.Row(u)
		lo := sort.Search(len(cols), func(i int) bool { return cols[i] >= ilo })
		hi := sort.Search(len(cols), func(i int) bool { return cols[i] >= ihi })
		return lo, hi
	}
	errPass := func(ulo, uhi, ilo, ihi uint32) {
		for u := ulo; u < uhi; u++ {
			lo, hi := rowWindow(u, ilo, ihi)
			base := rm.Offsets[u]
			for i := lo; i < hi; i++ {
				errVals[base+int64(i)] = 0
			}
		}
		for d := 0; d < k; d++ {
			for u := ulo; u < uhi; u++ {
				cols, _ := rm.Row(u)
				lo, hi := rowWindow(u, ilo, ihi)
				base := rm.Offsets[u]
				pud := float64(userF[int(u)*k+d])
				for i := lo; i < hi; i++ {
					errVals[base+int64(i)] += pud * float64(itemF[int(cols[i])*k+d])
				}
			}
		}
		for u := ulo; u < uhi; u++ {
			_, vals := rm.Row(u)
			lo, hi := rowWindow(u, ilo, ihi)
			base := rm.Offsets[u]
			for i := lo; i < hi; i++ {
				errVals[base+int64(i)] = float64(vals[i]) - errVals[base+int64(i)]
			}
		}
	}
	gradP := make([]float64, len(userF))
	gradQ := make([]float64, len(itemF))
	gradPass := func(ulo, uhi, ilo, ihi uint32) {
		// K SpMV passes for gradP = E·Q − λP (λ inside the per-rating sum,
		// paper eqs. 11–12) …
		for d := 0; d < k; d++ {
			for u := ulo; u < uhi; u++ {
				cols, _ := rm.Row(u)
				lo, hi := rowWindow(u, ilo, ihi)
				base := rm.Offsets[u]
				pud := float64(userF[int(u)*k+d])
				acc := 0.0
				for i := lo; i < hi; i++ {
					acc += errVals[base+int64(i)]*float64(itemF[int(cols[i])*k+d]) - opt.LambdaP*pud
				}
				gradP[int(u)*k+d] += acc
			}
		}
		// … and K passes for gradQ = Eᵀ·P − λQ.
		for d := 0; d < k; d++ {
			for u := ulo; u < uhi; u++ {
				cols, _ := rm.Row(u)
				lo, hi := rowWindow(u, ilo, ihi)
				base := rm.Offsets[u]
				pud := float64(userF[int(u)*k+d])
				for i := lo; i < hi; i++ {
					v := cols[i]
					gradQ[int(v)*k+d] += errVals[base+int64(i)]*pud - opt.LambdaQ*float64(itemF[int(v)*k+d])
				}
			}
		}
	}
	applyStripes := func(ulo, uhi, ilo, ihi uint32) {
		for i := int(ulo) * k; i < int(uhi)*k; i++ {
			userF[i] += float32(gamma * gradP[i])
			gradP[i] = 0
		}
		for i := int(ilo) * k; i < int(ihi)*k; i++ {
			itemF[i] += float32(gamma * gradQ[i])
			gradQ[i] = 0
		}
	}

	for it := 0; it < opt.Iterations; it++ {
		if grid == nil {
			errPass(0, r.NumUsers, 0, r.NumItems)
			gradPass(0, r.NumUsers, 0, r.NumItems)
			applyStripes(0, r.NumUsers, 0, r.NumItems)
		} else {
			if err := grid.C.RunPhase(func(node int) error {
				ulo, uhi := userRange(node)
				ilo, ihi := itemRange(node)
				errPass(ulo, uhi, ilo, ihi)
				gradPass(ulo, uhi, ilo, ihi)
				// 3K vector exchanges per iteration: the K error passes
				// and 2K gradient SpMVs each allgather/reduce a dense
				// column of P or Q.
				grid.accountSpMVTraffic(node, int(r.NumUsers+r.NumItems)/2, 8, float64(3*k))
				return nil
			}); err != nil {
				return nil, err
			}
			if err := grid.C.RunPhase(func(node int) error {
				ulo, uhi := userRange(node)
				ilo, ihi := itemRange(node)
				ri, ci := grid.P2D.Block(node)
				if ri == ci {
					applyStripes(ulo, uhi, ilo, ihi)
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		gamma *= opt.StepDecay
		if !opt.SkipRMSETrajectory {
			rmse = append(rmse, core.RMSE(r, k, userF, itemF))
		}
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, core.RMSE(r, k, userF, itemF))
	}

	stats := core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}
	if grid != nil {
		stats = statsFrom(grid.C, opt.Iterations)
	}
	return &core.CFResult{K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse, Stats: stats}, nil
}

func statsFrom(c *cluster.Cluster, iterations int) core.RunStats {
	rep := c.Report()
	return core.RunStats{
		WallSeconds: rep.SimulatedSeconds,
		Simulated:   true,
		Iterations:  iterations,
		Report:      rep,
	}
}
