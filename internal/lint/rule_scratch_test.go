package lint

import "testing"

func TestScratchRuleFlagsPerRoundMake(t *testing.T) {
	p := loadFixture(t, "internal/giraph", map[string]string{"a.go": `package giraph

type g struct{ NumVertices uint32 }

func Run(gr *g, rounds int) {
	for i := 0; i < rounds; i++ {
		buf := make([]float64, gr.NumVertices)
		_ = buf
	}
}
`})
	wantFinding(t, runRule(t, p, &ScratchRule{}), "internal/giraph/a.go", 7, "scratch")
}

func TestScratchRuleTracksLocalSizeAlias(t *testing.T) {
	p := loadFixture(t, "internal/graphlab", map[string]string{"a.go": `package graphlab

type g struct{ NumVertices uint32 }

func Run(gr *g, rounds int) {
	n := gr.NumVertices
	m := n + 1
	for i := 0; i < rounds; i++ {
		buf := make([]int32, 0, m)
		_ = buf
	}
}
`})
	wantFinding(t, runRule(t, p, &ScratchRule{}), "internal/graphlab/a.go", 9, "scratch")
}

func TestScratchRuleAcceptsHoistedBuffer(t *testing.T) {
	p := loadFixture(t, "internal/giraph", map[string]string{"a.go": `package giraph

type g struct{ NumVertices uint32 }

func Run(gr *g, rounds int) {
	buf := make([]float64, gr.NumVertices)
	for i := 0; i < rounds; i++ {
		small := make([]float64, 4)
		_ = small
	}
	_ = buf
}
`})
	if findings := runRule(t, p, &ScratchRule{}); len(findings) != 0 {
		t.Fatalf("hoisted buffer and constant-size make must pass, got %v", findings)
	}
}

func TestScratchRuleIgnoresNonEnginePackages(t *testing.T) {
	p := loadFixture(t, "internal/harness", map[string]string{"a.go": `package harness

type g struct{ NumVertices uint32 }

func Run(gr *g, rounds int) {
	for i := 0; i < rounds; i++ {
		buf := make([]float64, gr.NumVertices)
		_ = buf
	}
}
`})
	if findings := runRule(t, p, &ScratchRule{}); len(findings) != 0 {
		t.Fatalf("non-engine packages are out of scope, got %v", findings)
	}
}
