package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"graphmaze/internal/trace"
)

// TestSchedCountersObserveLoops checks the scheduling counters see every
// chunk and item a loop processes, across all three loop families.
func TestSchedCountersObserveLoops(t *testing.T) {
	tr := trace.New()
	SetSchedCounters(tr.Sched())
	defer SetSchedCounters(nil)

	const n = 1000
	var touched atomic.Int64

	before := tr.Sched().Items.Value()
	ForWorkersIndexed(4, n, func(w, lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	if got := tr.Sched().Items.Value() - before; got != n {
		t.Errorf("ForWorkersIndexed counted %d items, want %d", got, n)
	}

	before = tr.Sched().Items.Value()
	ForDynamicIndexed(n, 64, func(w, lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	if got := tr.Sched().Items.Value() - before; got != n {
		t.Errorf("ForDynamicIndexed counted %d items, want %d", got, n)
	}

	offsets := make([]int64, n+1)
	for i := range offsets {
		offsets[i] = int64(i) * 3
	}
	before = tr.Sched().Items.Value()
	ForOffsetsWorkers(4, offsets, func(lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	if got := tr.Sched().Items.Value() - before; got != n {
		t.Errorf("ForOffsetsWorkers counted %d items, want %d", got, n)
	}

	if touched.Load() != 3*n {
		t.Errorf("loops touched %d items, want %d", touched.Load(), 3*n)
	}
	if tr.Sched().Chunks.Value() == 0 {
		t.Error("no chunks recorded")
	}
	if tr.Sched().BusyNS.Value() < 0 {
		t.Error("negative busy time")
	}
}

// TestDynamicClaimLatencyHistogram checks the dynamic loops feed the
// chunk-claim latency histogram: one observation per claimed chunk when
// the parallel path runs.
func TestDynamicClaimLatencyHistogram(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("claim latency only recorded on the parallel path")
	}
	tr := trace.New()
	SetSchedCounters(tr.Sched())
	defer SetSchedCounters(nil)

	before := tr.Sched().Chunks.Value()
	var touched atomic.Int64
	ForDynamicIndexed(1<<14, 256, func(w, lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	chunks := tr.Sched().Chunks.Value() - before
	hs := tr.Registry().HistSnapshots()["par.claim_ns"]
	if hs.Count != chunks {
		t.Fatalf("claim hist has %d observations, want %d (one per chunk)", hs.Count, chunks)
	}
	if touched.Load() != 1<<14 {
		t.Fatalf("loop touched %d items", touched.Load())
	}
}

// TestSchedCountersDetached: with no counters attached the loops run
// uninstrumented and nothing accumulates.
func TestSchedCountersDetached(t *testing.T) {
	tr := trace.New()
	SetSchedCounters(nil)
	ForDynamicIndexed(100, 10, func(w, lo, hi int) {})
	if got := tr.Sched().Items.Value(); got != 0 {
		t.Errorf("detached counters saw %d items", got)
	}
}
