package ckpt

import (
	"math"
	"testing"
)

func TestDisabledStoreIsNil(t *testing.T) {
	s := NewStore(Config{})
	if s != nil {
		t.Fatal("disabled config produced a store")
	}
	// Nil-safe accessors gate the recovery loop.
	if s.Due(0) {
		t.Error("nil store reported a checkpoint due")
	}
	if _, ok := s.Latest(); ok {
		t.Error("nil store produced a checkpoint")
	}
	if b, w := s.Stats(); b != 0 || w != 0 {
		t.Errorf("nil store stats = %d/%d", b, w)
	}
}

func TestDue(t *testing.T) {
	s := NewStore(Config{Interval: 3})
	for step, want := range map[int]bool{0: true, 1: false, 2: false, 3: true, 6: true, 7: false} {
		if got := s.Due(step); got != want {
			t.Errorf("Due(%d) = %v, want %v", step, got, want)
		}
	}
}

func TestSaveLatestStats(t *testing.T) {
	s := NewStore(Config{Interval: 2})
	if _, ok := s.Latest(); ok {
		t.Error("empty store produced a checkpoint")
	}
	s.Save(0, 0, []byte("aaaa"), 2)
	s.Save(2, 5, []byte("bbbbbbbb"), 2)
	ck, ok := s.Latest()
	if !ok || ck.Step != 2 || ck.Phases != 5 || string(ck.Data) != "bbbbbbbb" {
		t.Errorf("Latest = %+v, %v", ck, ok)
	}
	bytes, writes := s.Stats()
	if bytes != 12 || writes != 2 {
		t.Errorf("Stats = %d bytes / %d writes, want 12/2", bytes, writes)
	}
}

func TestWriteSecondsModel(t *testing.T) {
	cfg := Config{Interval: 1, Bandwidth: 1e6, Latency: 0.5}
	// 2 MB over 2 nodes at 1 MB/s/node: 1s transfer + 0.5s latency.
	got := cfg.WriteSeconds(2e6, 2)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("WriteSeconds = %v, want 1.5", got)
	}
	if r := cfg.ReadSeconds(2e6, 2); r != got {
		t.Errorf("ReadSeconds %v != WriteSeconds %v", r, got)
	}
	// Zero nodes must not divide by zero.
	if v := cfg.WriteSeconds(1e6, 0); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("WriteSeconds with 0 nodes = %v", v)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{Interval: 1}.WithDefaults()
	if cfg.Bandwidth != 1e9 || cfg.Latency != 0.05 {
		t.Errorf("defaults = %+v", cfg)
	}
	// WriteSeconds applies defaults itself so an un-defaulted config still
	// charges sanely.
	if v := (Config{Interval: 1}).WriteSeconds(1e9, 1); math.IsInf(v, 0) {
		t.Errorf("un-defaulted WriteSeconds = %v", v)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Interval: -1}).Validate(); err == nil {
		t.Error("accepted negative interval")
	}
	if err := (Config{Interval: 1, Bandwidth: -5}).Validate(); err == nil {
		t.Error("accepted negative bandwidth")
	}
	if err := (Config{Interval: 2, Latency: 0.1}).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestSaveReturnsWriteCost(t *testing.T) {
	// NewStore defaults the zero Latency to 50 ms, so the expected cost is
	// transfer time plus the defaulted latency.
	s := NewStore(Config{Interval: 1, Bandwidth: 1e6})
	cost := s.Save(0, 0, make([]byte, 1e6), 1)
	want := 1.0 + s.Config().Latency
	if math.Abs(cost-want) > 1e-9 {
		t.Errorf("Save cost = %v, want %v", cost, want)
	}
}
