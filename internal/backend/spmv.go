package backend

import (
	"graphmaze/internal/par"
	"graphmaze/internal/trace"
)

// Semiring is the generalized (⊕, ⊗) pair the SpMV kernels fold with,
// matching the CombBLAS formulation: y[r] = ⊕_{c ∈ row r} vals[rc] ⊗ x[c],
// starting from Zero (called once per row). The fold is strictly
// left-to-right in stored-column order, so results are deterministic even
// for non-associative ⊕ (floating-point addition).
type Semiring[A, X, Y any] struct {
	Mul  func(A, X) Y
	Add  func(Y, Y) Y
	Zero func() Y
}

// VecMul is a reusable dense semiring SpMV kernel: y = A ⊕.⊗ x. Rows are
// statically split at construction so every worker owns an equal share of
// nonzeros (par.OffsetSplits on the CSR prefix sums); each output element
// is written by exactly one worker, which is the "padded accumulation
// lane" scheme degenerated to its cheapest form — the output vector
// itself is the lane, and the deterministic merge is the fixed row
// ownership plus the serial in-row fold.
//
// Steady-state calls perform no allocation: construct once per algorithm
// run, call Into/MapInto once per iteration.
type VecMul[A, X, Y any] struct {
	pool   *Pool
	m      *Matrix
	vals   []A // nil for pattern matrices (A's zero value is passed to Mul)
	sr     Semiring[A, X, Y]
	splits splitCache
	bounds []int
	nnz    *trace.Counter

	// per-dispatch operands, published to workers by the pool's channel
	// handshake
	x    []X
	y    []Y
	post func(uint32, Y) Y
}

// NewVecMul builds a reusable kernel for y = m ⊕.⊗ x on the given pool.
// vals may be nil for pattern matrices.
func NewVecMul[A, X, Y any](pool *Pool, m *Matrix, vals []A, sr Semiring[A, X, Y]) *VecMul[A, X, Y] {
	k := &VecMul[A, X, Y]{pool: pool, m: m, vals: vals, sr: sr}
	k.bounds = k.splits.get(m, pool.Workers())
	return k
}

// Rebind points the kernel at a new epoch's matrix (vals may be nil for
// pattern matrices). The cached edge-balanced row splits are reused when
// the matrix carries the same nonzero epoch and recomputed otherwise, so
// steady-state rebinding across epoch advances costs one O(k log V)
// split per epoch, not per call.
func (k *VecMul[A, X, Y]) Rebind(m *Matrix, vals []A) {
	k.m, k.vals = m, vals
	k.bounds = k.splits.get(m, k.pool.Workers())
}

// WithTracer attaches a backend.spmv.nnz counter recording nonzeros
// processed per call (a nil tracer detaches it).
func (k *VecMul[A, X, Y]) WithTracer(tr *trace.Tracer) *VecMul[A, X, Y] {
	k.nnz = tr.Counter("backend.spmv.nnz")
	return k
}

// Into computes y = m ⊕.⊗ x. len(y) must be m.NumRows; y is fully
// overwritten (empty rows get Zero()).
func (k *VecMul[A, X, Y]) Into(y []Y, x []X) { k.MapInto(y, x, nil) }

// MapInto computes y[r] = post(r, (m ⊕.⊗ x)[r]); a nil post stores the
// row fold unmapped. post must be a prebuilt func value if the call sits
// in a zero-alloc hot loop.
func (k *VecMul[A, X, Y]) MapInto(y []Y, x []X, post func(uint32, Y) Y) {
	k.x, k.y, k.post = x, y, post
	k.pool.RunStatic(k, k.bounds)
	k.x, k.y, k.post = nil, nil, nil
	k.nnz.Add(0, k.m.NNZ())
}

func (k *VecMul[A, X, Y]) runChunk(worker, lo, hi int) {
	m, x, y := k.m, k.x, k.y
	for r := lo; r < hi; r++ {
		acc := k.sr.Zero()
		start, end := m.Offsets[r], m.Offsets[r+1]
		if k.vals != nil {
			for i := start; i < end; i++ {
				acc = k.sr.Add(acc, k.sr.Mul(k.vals[i], x[m.Cols[i]]))
			}
		} else {
			var a A
			for i := start; i < end; i++ {
				acc = k.sr.Add(acc, k.sr.Mul(a, x[m.Cols[i]]))
			}
		}
		if k.post != nil {
			acc = k.post(uint32(r), acc)
		}
		y[r] = acc
	}
}

// SumVecMul is the specialized plus-times pattern kernel — y[r] =
// Σ_{c ∈ row r} x[c] — that PageRank-shaped computations lower onto. It
// is VecMul with the semiring indirection compiled away: the inner loop
// is a plain running sum, which is what keeps lowered engines within the
// native performance envelope.
type SumVecMul struct {
	pool   *Pool
	m      *Matrix
	splits splitCache
	bounds []int
	nnz    *trace.Counter

	x    []float64
	y    []float64
	post func(uint32, float64) float64
}

// NewSumVecMul builds the specialized kernel for the pattern matrix m.
func NewSumVecMul(pool *Pool, m *Matrix) *SumVecMul {
	k := &SumVecMul{pool: pool, m: m}
	k.bounds = k.splits.get(m, pool.Workers())
	return k
}

// Rebind points the kernel at a new epoch's matrix, reusing the cached
// row splits when the epoch is unchanged (see VecMul.Rebind).
func (k *SumVecMul) Rebind(m *Matrix) {
	k.m = m
	k.bounds = k.splits.get(m, k.pool.Workers())
}

// WithTracer attaches a backend.spmv.nnz counter (nil tracer detaches).
func (k *SumVecMul) WithTracer(tr *trace.Tracer) *SumVecMul {
	k.nnz = tr.Counter("backend.spmv.nnz")
	return k
}

// Into computes y[r] = Σ x[c] over row r's stored columns.
func (k *SumVecMul) Into(y, x []float64) { k.MapInto(y, x, nil) }

// MapInto computes y[r] = post(r, Σ x[c]); nil post stores the raw sum.
func (k *SumVecMul) MapInto(y, x []float64, post func(uint32, float64) float64) {
	k.x, k.y, k.post = x, y, post
	k.pool.RunStatic(k, k.bounds)
	k.x, k.y, k.post = nil, nil, nil
	k.nnz.Add(0, k.m.NNZ())
}

func (k *SumVecMul) runChunk(worker, lo, hi int) {
	m, x, y := k.m, k.x, k.y
	if k.post == nil {
		for r := lo; r < hi; r++ {
			sum := 0.0
			for i := m.Offsets[r]; i < m.Offsets[r+1]; i++ {
				sum += x[m.Cols[i]]
			}
			y[r] = sum
		}
		return
	}
	for r := lo; r < hi; r++ {
		sum := 0.0
		for i := m.Offsets[r]; i < m.Offsets[r+1]; i++ {
			sum += x[m.Cols[i]]
		}
		y[r] = k.post(uint32(r), sum)
	}
}

// SpMVInto is the one-shot generic path: y = m ⊕.⊗ x into the
// caller-provided y, with edge-balanced row splits via par.ForOffsets.
// Engines that run the product every iteration should hold a VecMul on a
// Pool instead; this entry point exists for callers (combblas's free
// functions) whose API is a single call.
func SpMVInto[A, X, Y any](m *Matrix, vals []A, x []X, y []Y, sr Semiring[A, X, Y]) {
	par.ForOffsets(m.Offsets, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			acc := sr.Zero()
			for i := m.Offsets[r]; i < m.Offsets[r+1]; i++ {
				acc = sr.Add(acc, sr.Mul(vals[i], x[m.Cols[i]]))
			}
			y[r] = acc
		}
	})
}

// Dense is a reusable element-wise pass over [0, n): the vector-transform
// half of a lowered iteration (contribution scaling, normalization).
// The body closure is built once and reads its operands through captured
// variables, so per-iteration calls do not allocate. Ranges are an even
// static split; the body must write only indexes in [lo, hi).
type Dense struct {
	pool   *Pool
	bounds []int
	body   func(lo, hi int)
}

// NewDense builds a reusable element-wise kernel over [0, n).
func NewDense(pool *Pool, n int, body func(lo, hi int)) *Dense {
	return &Dense{pool: pool, bounds: evenSplits(n, pool.Workers()), body: body}
}

// Run executes one pass.
func (d *Dense) Run() { d.pool.RunStatic(d, d.bounds) }

func (d *Dense) runChunk(worker, lo, hi int) { d.body(lo, hi) }

// Sweep is Dense's dynamically-scheduled sibling: chunks of [0, n) are
// claimed from an atomic cursor, for passes whose per-element cost is
// skewed (active-set filtered gathers over power-law degree tails). The
// grain is rounded up to a multiple of 64 by the pool, so a body that
// writes vertex-indexed bitsets owns whole words per chunk.
type Sweep struct {
	pool  *Pool
	n     int
	grain int
	body  func(lo, hi int)
}

// NewSweep builds a reusable dynamic kernel over [0, n); grain <= 0 uses
// the pool's default.
func NewSweep(pool *Pool, n, grain int, body func(lo, hi int)) *Sweep {
	return &Sweep{pool: pool, n: n, grain: grain, body: body}
}

// Run executes one pass; allocation-free after construction.
func (s *Sweep) Run() { s.pool.RunDynamic(s, s.n, s.grain) }

func (s *Sweep) runChunk(worker, lo, hi int) { s.body(lo, hi) }
