package backend

import (
	"runtime"
	"testing"
)

// TestPushPullEquivalence is the kernel-selection property test: on
// random graphs, a traversal forced all-push, one forced all-pull, and
// the heuristic mix must produce identical distance arrays, at
// GOMAXPROCS 1 and 4. Distances (not frontier orders) are the engine
// contract.
func TestPushPullEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for seed := int64(0); seed < 5; seed++ {
			g := testGraph(t, 10, 100+seed, true)
			m := FromCSR(g)
			pool := NewPool(0)

			run := func(dir int) []int32 {
				tv := NewTraversal(pool, m, "backend.bfs.level", nil)
				tv.serialEdges = 0
				tv.serialFrontier = 0
				tv.forceDir = dir
				dist := make([]int32, g.NumVertices)
				for i := range dist {
					dist[i] = -1
				}
				dist[2] = 0
				tv.Run(dist, 2)
				return dist
			}

			push, pull, auto := run(0), run(1), run(-1)
			for i := range push {
				if push[i] != pull[i] {
					t.Fatalf("procs=%d seed=%d: push dist[%d]=%d, pull dist[%d]=%d",
						procs, seed, i, push[i], i, pull[i])
				}
				if push[i] != auto[i] {
					t.Fatalf("procs=%d seed=%d: push dist[%d]=%d, auto dist[%d]=%d",
						procs, seed, i, push[i], i, auto[i])
				}
			}
			pool.Close()
		}
	}
}

// TestSpMVWorkerCountInvariance pins the determinism claim for the dense
// kernels: bit-identical output at every worker count, because each row's
// fold is serial and rows are partitioned, never split.
func TestSpMVWorkerCountInvariance(t *testing.T) {
	g := testGraph(t, 11, 77, false)
	m := FromCSR(g)
	x := randVec(g.NumVertices, 8)

	var want []float64
	for _, workers := range []int{1, 2, 4, 7} {
		pool := NewPool(workers)
		k := NewSumVecMul(pool, m)
		y := make([]float64, g.NumVertices)
		k.MapInto(y, x, func(r uint32, acc float64) float64 { return 0.3 + 0.7*acc })
		pool.Close()
		if want == nil {
			want = y
			continue
		}
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] differs from 1-worker result", workers, i)
			}
		}
	}
}
