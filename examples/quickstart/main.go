// Quickstart: generate a synthetic scale-free graph, run all four of the
// paper's algorithms on the native engine, and print the headline numbers.
package main

import (
	"fmt"
	"log"

	"graphmaze"
)

func main() {
	// A Graph500-style RMAT graph: 2^14 vertices, ~16 edges per vertex.
	g, err := graphmaze.Generate(graphmaze.Graph500{Scale: 14, EdgeFactor: 16, Seed: 1}, graphmaze.ForPageRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	eng := graphmaze.Native()

	// PageRank (paper eq. 1, r = 0.3).
	pr, err := eng.PageRank(g, graphmaze.PageRankOptions{Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	best, bestRank := uint32(0), 0.0
	for v, r := range pr.Ranks {
		if r > bestRank {
			best, bestRank = uint32(v), r
		}
	}
	fmt.Printf("pagerank: top vertex %d with rank %.2f (%.2fms/iteration)\n",
		best, bestRank, 1e3*pr.Stats.WallSeconds/float64(pr.Stats.Iterations))

	// BFS needs the symmetrized orientation.
	ug, err := graphmaze.Generate(graphmaze.Graph500{Scale: 14, EdgeFactor: 16, Seed: 1}, graphmaze.ForBFS)
	if err != nil {
		log.Fatal(err)
	}
	bfs, err := eng.BFS(ug, graphmaze.BFSOptions{Source: best})
	if err != nil {
		log.Fatal(err)
	}
	reached, maxDist := 0, int32(0)
	for _, d := range bfs.Distances {
		if d >= 0 {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("bfs: reached %d/%d vertices, eccentricity %d, %d levels\n",
		reached, len(bfs.Distances), maxDist, bfs.Stats.Iterations)

	// Triangle counting needs the acyclic orientation.
	tg, err := graphmaze.Generate(graphmaze.Graph500{Scale: 14, EdgeFactor: 16, Seed: 1}, graphmaze.ForTriangles)
	if err != nil {
		log.Fatal(err)
	}
	tc, err := eng.TriangleCount(tg, graphmaze.TriangleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", tc.Count)

	// Collaborative filtering on a synthetic power-law rating set.
	ratings, err := graphmaze.GenerateRatings(12, 24, 2)
	if err != nil {
		log.Fatal(err)
	}
	cf, err := eng.CollabFilter(ratings, graphmaze.CFOptions{Method: graphmaze.SGD, K: 16, Iterations: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collabfilter: %d ratings, RMSE %.4f → %.4f over %d SGD iterations\n",
		ratings.NumRatings(), cf.RMSE[0], cf.RMSE[len(cf.RMSE)-1], cf.Stats.Iterations)
}
