// Package par provides the data-parallel loop primitives the engines
// share. Three scheduling strategies are available (DESIGN.md §8):
//
//   - For / ForWorkers: static contiguous chunks with equal vertex
//     counts. Right for loops whose per-index cost is uniform.
//   - ForOffsets: static contiguous chunks with equal *edge* counts,
//     split on a CSR prefix-sum array. Right for per-vertex loops whose
//     cost is proportional to degree on power-law graphs, where equal
//     vertex counts are wildly imbalanced (paper §3.1).
//   - ForDynamic: fixed-grain chunks claimed off an atomic counter.
//     Right for loops with unpredictable per-index cost (triangle
//     counting's ~deg² per vertex, frontier expansion).
//
// All loops tile [0,n) exactly once, join before returning, and fall
// back to a serial call when fan-out would cost more than it saves.
package par

import (
	"runtime"
	"sync"
	"time"
)

// For splits [0,n) into contiguous chunks across up to GOMAXPROCS
// goroutines and runs body(lo,hi) on each.
func For(n int, body func(lo, hi int)) {
	ForWorkers(runtime.GOMAXPROCS(0), n, body)
}

// ForWorkersIndexed is ForWorkers with the executing worker's index passed
// to the body — for callers that keep per-worker staging areas.
func ForWorkersIndexed(workers, n int, body func(worker, lo, hi int)) {
	sc := sched.Load()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			start := time.Time{}
			if sc != nil {
				start = time.Now()
			}
			body(0, 0, n)
			if sc != nil {
				observeChunk(sc, 0, 0, n, start)
			}
		}
		return
	}
	var wg sync.WaitGroup
	base, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			start := time.Time{}
			if sc != nil {
				start = time.Now()
			}
			body(w, lo, hi)
			if sc != nil {
				observeChunk(sc, w, lo, hi, start)
			}
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForWorkers is For with an explicit worker cap — engines that model a
// constrained runtime (Giraph's 4 workers per node) pass their limit.
// The remainder of n/workers is spread over the first n%workers chunks,
// so chunk sizes never differ by more than one.
func ForWorkers(workers, n int, body func(lo, hi int)) {
	sc := sched.Load()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			start := time.Time{}
			if sc != nil {
				start = time.Now()
			}
			body(0, n)
			if sc != nil {
				observeChunk(sc, 0, 0, n, start)
			}
		}
		return
	}
	var wg sync.WaitGroup
	base, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			start := time.Time{}
			if sc != nil {
				start = time.Now()
			}
			body(lo, hi)
			if sc != nil {
				observeChunk(sc, w, lo, hi, start)
			}
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// NumWorkers reports the worker-index upper bound of the GOMAXPROCS-wide
// loops: indices passed to ForDynamicIndexed bodies are always below this
// value. Callers allocating per-worker scratch size their arrays with it
// (ForWorkersIndexed is instead bounded by its explicit workers argument).
func NumWorkers() int { return runtime.GOMAXPROCS(0) }
