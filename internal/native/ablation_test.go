package native

import (
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
)

// These tests pin the behaviours behind the paper's §6.1 optimization
// claims, beyond the correctness checks in native_test.go.

func TestBFSCompressionReducesTraffic(t *testing.T) {
	g := testGraphUndirected(t)
	run := func(compress bool) int64 {
		tn := DefaultTuning()
		tn.Compression = compress
		res, err := NewTuned(tn).BFS(g, core.BFSOptions{Source: 3,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Report.BytesSent
	}
	raw, compressed := run(false), run(true)
	if compressed >= raw {
		t.Errorf("BFS compression did not reduce traffic: %d vs %d", compressed, raw)
	}
	// Paper §6.1.1: BFS benefits ≈3.2× net from compression.
	if ratio := float64(raw) / float64(compressed); ratio < 1.5 {
		t.Errorf("BFS compression ratio %.2f below expected ≥1.5", ratio)
	}
}

func TestTriangleCompressionReducesTraffic(t *testing.T) {
	g := testGraphAcyclic(t)
	run := func(compress bool) int64 {
		tn := DefaultTuning()
		tn.Compression = compress
		res, err := NewTuned(tn).TriangleCount(g, core.TriangleOptions{
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Report.BytesSent
	}
	raw, compressed := run(false), run(true)
	if compressed >= raw {
		t.Errorf("TC compression did not reduce traffic: %d vs %d", compressed, raw)
	}
}

func TestOverlapReducesSimulatedTime(t *testing.T) {
	g := testGraphDirected(t)
	run := func(overlap bool) float64 {
		tn := DefaultTuning()
		tn.Overlap = overlap
		res, err := NewTuned(tn).PageRank(g, core.PageRankOptions{Iterations: 6,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4,
				// A slow link makes the network term visible.
				Comm: cluster.CommLayer{Name: "slow", Bandwidth: 1e6, Latency: 1e-5}}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.WallSeconds
	}
	seq, ovl := run(false), run(true)
	if ovl >= seq {
		t.Errorf("overlap %vs not below sequential %vs", ovl, seq)
	}
}

func TestPRIdPayloadCachedAcrossIterations(t *testing.T) {
	// The compressed id block is encoded once; traffic for N iterations
	// must be ≈ N × (ids + values), not N × (re-encoded everything). We
	// check linearity: doubling iterations ≈ doubles bytes (within the
	// final-iteration skip).
	g := testGraphDirected(t)
	run := func(iters int) int64 {
		res, err := New().PageRank(g, core.PageRankOptions{Iterations: iters,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Report.BytesSent
	}
	b4, b7 := run(4), run(7)
	// 4 iterations send 3 rounds of messages; 7 send 6.
	perRound4 := float64(b4) / 3
	perRound7 := float64(b7) / 6
	if perRound7 > perRound4*1.01 || perRound7 < perRound4*0.99 {
		t.Errorf("per-round traffic not stable: %.1f vs %.1f", perRound4, perRound7)
	}
}

func TestTuningStagesAllCorrect(t *testing.T) {
	// Every point in the 4-knob tuning lattice must stay correct — the
	// ablation sweeps through these configurations.
	g := testGraphDirected(t)
	ug := testGraphUndirected(t)
	wantPR := core.RefPageRank(g, core.PageRankOptions{Iterations: 4})
	wantBFS := core.RefBFS(ug, 3)
	for mask := 0; mask < 16; mask++ {
		tn := Tuning{
			ContribCaching: mask&1 != 0,
			Compression:    mask&2 != 0,
			Overlap:        mask&4 != 0,
			Bitvector:      mask&8 != 0,
		}
		e := NewTuned(tn)
		pr, err := e.PageRank(g, core.PageRankOptions{Iterations: 4,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
		if err != nil {
			t.Fatalf("tuning %+v: %v", tn, err)
		}
		tol := 1e-9
		if tn.Compression {
			tol = 1e-4
		}
		if d := core.ComparePageRank(wantPR, pr.Ranks); d > tol {
			t.Errorf("tuning %+v: PR diff %v", tn, d)
		}
		bfs, err := e.BFS(ug, core.BFSOptions{Source: 3,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
		if err != nil {
			t.Fatalf("tuning %+v: %v", tn, err)
		}
		if !core.EqualDistances(wantBFS, bfs.Distances) {
			t.Errorf("tuning %+v: BFS differs", tn)
		}
	}
}

func TestPageRankEarlyConvergence(t *testing.T) {
	g := testGraphDirected(t)
	// With a loose tolerance the run must stop early…
	res, err := New().PageRank(g, core.PageRankOptions{Iterations: 200, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations >= 200 {
		t.Errorf("no early convergence: ran %d iterations", res.Stats.Iterations)
	}
	// …and the result must still be close to the fully converged ranks.
	full, err := New().PageRank(g, core.PageRankOptions{Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(full.Ranks, res.Ranks); d > 1e-2 {
		t.Errorf("early-converged ranks off by %v", d)
	}
	// Negative tolerance is rejected.
	if _, err := New().PageRank(g, core.PageRankOptions{Tolerance: -1}); err == nil {
		t.Error("accepted negative tolerance")
	}
}
