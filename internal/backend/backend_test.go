package backend

import (
	"math/rand"
	"testing"

	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

// testGraph builds a small RMAT graph; symmetric graphs are what the
// traversal kernels see in production.
func testGraph(tb testing.TB, scale int, seed int64, symmetric bool) *graph.CSR {
	tb.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(scale, 8, seed))
	if err != nil {
		tb.Fatal(err)
	}
	b := graph.NewBuilder(uint32(1) << uint(scale))
	b.AddEdges(edges)
	opt := graph.BuildOptions{Dedup: true, DropSelfLoops: true, SortAdjacency: true}
	if symmetric {
		opt.Orientation = graph.Symmetrize
	}
	g, err := b.Build(opt)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// refSpMVSum is the serial reference for the plus-times pattern product.
func refSpMVSum(m *Matrix, x []float64) []float64 {
	y := make([]float64, m.NumRows)
	for r := 0; r < int(m.NumRows); r++ {
		sum := 0.0
		for i := m.Offsets[r]; i < m.Offsets[r+1]; i++ {
			sum += x[m.Cols[i]]
		}
		y[r] = sum
	}
	return y
}

// refBFS is the serial reference traversal.
func refBFS(m *Matrix, source uint32) []int32 {
	dist := make([]int32, m.NumRows)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	frontier := []uint32{source}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []uint32
		for _, v := range frontier {
			for i := m.Offsets[v]; i < m.Offsets[v+1]; i++ {
				if t := m.Cols[i]; dist[t] == -1 {
					dist[t] = level
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return dist
}

func randVec(n uint32, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
	}
	return x
}

func TestSumVecMulMatchesReference(t *testing.T) {
	g := testGraph(t, 10, 7, false)
	m := FromCSR(g)
	x := randVec(g.NumVertices, 1)
	want := refSpMVSum(m, x)

	for _, workers := range []int{1, 3, 8} {
		pool := NewPool(workers)
		k := NewSumVecMul(pool, m)
		y := make([]float64, g.NumVertices)
		k.Into(y, x)
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %v, want %v (bit-exact)", workers, i, y[i], want[i])
			}
		}
		pool.Close()
	}
}

func TestVecMulGenericMatchesSpecialized(t *testing.T) {
	g := testGraph(t, 10, 11, false)
	m := FromCSR(g)
	x := randVec(g.NumVertices, 2)
	sr := Semiring[struct{}, float64, float64]{
		Mul:  func(_ struct{}, v float64) float64 { return v },
		Add:  func(a, b float64) float64 { return a + b },
		Zero: func() float64 { return 0 },
	}

	pool := NewPool(4)
	defer pool.Close()
	spec := NewSumVecMul(pool, m)
	gen := NewVecMul[struct{}, float64, float64](pool, m, nil, sr)

	ys := make([]float64, g.NumVertices)
	yg := make([]float64, g.NumVertices)
	spec.Into(ys, x)
	gen.Into(yg, x)
	for i := range ys {
		if ys[i] != yg[i] {
			t.Fatalf("generic and specialized kernels disagree at %d: %v vs %v", i, yg[i], ys[i])
		}
	}

	// MapInto must apply the post transform to the same row fold.
	post := func(r uint32, acc float64) float64 { return 0.15 + 0.85*acc }
	spec.MapInto(ys, x, post)
	gen.MapInto(yg, x, post)
	for i := range ys {
		if ys[i] != yg[i] {
			t.Fatalf("MapInto disagree at %d: %v vs %v", i, yg[i], ys[i])
		}
	}
}

func TestSpMVIntoOneShot(t *testing.T) {
	g := testGraph(t, 9, 3, false)
	m := FromCSR(g)
	x := randVec(g.NumVertices, 5)
	want := refSpMVSum(m, x)
	y := make([]float64, g.NumVertices)
	SpMVInto(m, make([]struct{}, len(m.Cols)), x, y, Semiring[struct{}, float64, float64]{
		Mul:  func(_ struct{}, v float64) float64 { return v },
		Add:  func(a, b float64) float64 { return a + b },
		Zero: func() float64 { return 0 },
	})
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestTraversalMatchesReference(t *testing.T) {
	g := testGraph(t, 10, 21, true)
	m := FromCSR(g)
	want := refBFS(m, 1)

	for _, workers := range []int{1, 4} {
		pool := NewPool(workers)
		tv := NewTraversal(pool, m, "backend.bfs.level", nil)
		// Force the parallel kernels even on this small graph.
		tv.serialEdges = 0
		tv.serialFrontier = 0
		dist := make([]int32, g.NumVertices)
		for i := range dist {
			dist[i] = -1
		}
		dist[1] = 0
		tv.Run(dist, 1)
		for i := range want {
			if dist[i] != want[i] {
				t.Fatalf("workers=%d: dist[%d] = %d, want %d", workers, i, dist[i], want[i])
			}
		}
		pool.Close()
	}
}

func TestExpanderMatchesExpandInto(t *testing.T) {
	g := testGraph(t, 10, 33, true)
	m := FromCSR(g)
	pool := NewPool(4)
	defer pool.Close()

	exp := NewExpander(pool, m)
	exp.Claim(0)
	marks := make([]bool, m.NumRows)
	claimed := map[uint32]bool{0: true}

	frontier := []uint32{0}
	for len(frontier) > 0 {
		// Reference: one-shot distinct targets, then filter by claimed set.
		raw := ExpandInto(m, frontier, marks, nil)
		want := map[uint32]bool{}
		for _, v := range raw {
			if !claimed[v] {
				want[v] = true
			}
		}
		got := exp.Expand(frontier, nil)
		if len(got) != len(want) {
			t.Fatalf("expand size %d, want %d", len(got), len(want))
		}
		seen := map[uint32]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("duplicate %d in expansion", v)
			}
			seen[v] = true
			if !want[v] {
				t.Fatalf("unexpected vertex %d in expansion", v)
			}
			claimed[v] = true
		}
		frontier = got
	}
}

func TestDensePass(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	n := 1000
	src := randVec(uint32(n), 9)
	dst := make([]float64, n)
	d := NewDense(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = 2 * src[i]
		}
	})
	d.Run()
	for i := range dst {
		if dst[i] != 2*src[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], 2*src[i])
		}
	}
}

// TestZeroSteadyStateAllocs is the acceptance criterion: after warmup,
// per-iteration kernel calls allocate nothing.
func TestZeroSteadyStateAllocs(t *testing.T) {
	g := testGraph(t, 10, 13, true)
	m := FromCSR(g)
	pool := NewPool(4)
	defer pool.Close()

	x := randVec(g.NumVertices, 3)
	y := make([]float64, g.NumVertices)
	k := NewSumVecMul(pool, m)
	post := func(r uint32, acc float64) float64 { return 0.3 + 0.7*acc }
	k.MapInto(y, x, post) // warmup
	if a := testing.AllocsPerRun(10, func() { k.MapInto(y, x, post) }); a != 0 {
		t.Errorf("SumVecMul.MapInto allocates %v per call in steady state", a)
	}

	d := NewDense(pool, int(g.NumVertices), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = x[i] * 0.5
		}
	})
	d.Run()
	if a := testing.AllocsPerRun(10, func() { d.Run() }); a != 0 {
		t.Errorf("Dense.Run allocates %v per call in steady state", a)
	}

	tv := NewTraversal(pool, m, "backend.bfs.level", nil)
	tv.serialEdges = 0
	tv.serialFrontier = 0
	dist := make([]int32, g.NumVertices)
	reset := func() {
		for i := range dist {
			dist[i] = -1
		}
		dist[1] = 0
	}
	reset()
	tv.Run(dist, 1) // warmup sizes the frontier buffers
	if a := testing.AllocsPerRun(5, func() { reset(); tv.Run(dist, 1) }); a != 0 {
		t.Errorf("Traversal.Run allocates %v per call in steady state", a)
	}
}
