package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fixtureHTTPSrc is a stand-in for net/http: the handler rule matches on
// the ResponseWriter/Request type names and the "net/http" path suffix,
// so the fixture only needs the handler-signature shape.
const fixtureHTTPSrc = `// Package http is the fixture HTTP layer.
package http

// A ResponseWriter writes a response.
type ResponseWriter interface {
	Write([]byte) (int, error)
}

// A Context carries cancellation.
type Context interface {
	Err() error
}

// Request is one inbound request.
type Request struct{}

// Context returns the request's context.
func (r *Request) Context() Context { return nil }
`

// fixtureBackendSrc is a stand-in kernel package: any call into it counts
// as launching kernel work.
const fixtureBackendSrc = `// Package backend is the fixture kernel pool.
package backend

// Pool is the fixture worker pool.
type Pool struct{}

// Run dispatches one kernel.
func (p *Pool) Run() {}

// Launch runs a kernel on the pool.
func Launch(p *Pool) {}
`

// loadFixtureWithHTTP type-checks an in-memory package with fixture
// net/http and kernel packages importable.
func loadFixtureWithHTTP(t *testing.T, rel string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	base := importer.ForCompiler(fset, "source", nil)

	prebuilt := map[string]*types.Package{}
	for path, src := range map[string]string{
		"net/http":                   fixtureHTTPSrc,
		"graphmaze/internal/backend": fixtureBackendSrc,
	} {
		f, err := parser.ParseFile(fset, path+"/fixture.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		conf := types.Config{Importer: base}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
		if err != nil {
			t.Fatalf("type-check fixture %s: %v", path, err)
		}
		prebuilt[path] = pkg
	}

	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, rel+"/"+name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &prebuiltImporter{base: base, pkgs: prebuilt}}
	path := "graphmaze/" + rel
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Rel: rel, Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}
}

func TestHandlerFlagsKernelLaunchWithoutContext(t *testing.T) {
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import (
	"graphmaze/internal/backend"
	"net/http"
)

func handleBad(w http.ResponseWriter, r *http.Request) {
	backend.Launch(nil)
	w.Write(nil)
}
`})
	wantFinding(t, runRule(t, p, &HandlerRule{}), "internal/serve/a.go", 8, "handler")
}

func TestHandlerFlagsTransitiveKernelLaunch(t *testing.T) {
	// The kernel launch hides behind a same-package helper; the handler is
	// still the one that never consulted the context.
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import (
	"graphmaze/internal/backend"
	"net/http"
)

func compute(p *backend.Pool) {
	p.Run()
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	compute(nil)
	w.Write(nil)
}
`})
	wantFinding(t, runRule(t, p, &HandlerRule{}), "internal/serve/a.go", 12, "handler")
}

func TestHandlerFlagsUnnamedRequestParam(t *testing.T) {
	// Dropping the request parameter makes honoring cancellation
	// impossible; launching a kernel anyway is the bug.
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import (
	"graphmaze/internal/backend"
	"net/http"
)

func handleBad(w http.ResponseWriter, _ *http.Request) {
	backend.Launch(nil)
	w.Write(nil)
}
`})
	wantFinding(t, runRule(t, p, &HandlerRule{}), "internal/serve/a.go", 8, "handler")
}

func TestHandlerAllowsContextRead(t *testing.T) {
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import (
	"graphmaze/internal/backend"
	"net/http"
)

func handleGood(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if ctx.Err() != nil {
		return
	}
	backend.Launch(nil)
	w.Write(nil)
}
`})
	if got := runRule(t, p, &HandlerRule{}); len(got) != 0 {
		t.Fatalf("context-honoring handler flagged: %v", got)
	}
}

func TestHandlerAllowsDelegatingRequest(t *testing.T) {
	// Handing the request to a helper delegates the cancellation decision;
	// the rule only flags handlers that ignore the request entirely.
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import (
	"graphmaze/internal/backend"
	"net/http"
)

func serveWith(w http.ResponseWriter, r *http.Request) {
	_ = r.Context()
	backend.Launch(nil)
}

func handleGood(w http.ResponseWriter, r *http.Request) {
	serveWith(w, r)
}
`})
	if got := runRule(t, p, &HandlerRule{}); len(got) != 0 {
		t.Fatalf("delegating handler flagged: %v", got)
	}
}

func TestHandlerAllowsKernelFreeHandlers(t *testing.T) {
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import "net/http"

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok"))
}
`})
	if got := runRule(t, p, &HandlerRule{}); len(got) != 0 {
		t.Fatalf("kernel-free handler flagged: %v", got)
	}
}

func TestHandlerIgnoresNonHandlerShapes(t *testing.T) {
	// Kernel launches in plain functions are none of this rule's business,
	// and neither are handler-ish functions with results.
	p := loadFixtureWithHTTP(t, "internal/serve", map[string]string{"a.go": `package serve

import (
	"graphmaze/internal/backend"
	"net/http"
)

func compute(p *backend.Pool) {
	p.Run()
}

func execute(w http.ResponseWriter, r *http.Request) error {
	backend.Launch(nil)
	return nil
}
`})
	if got := runRule(t, p, &HandlerRule{}); len(got) != 0 {
		t.Fatalf("non-handler shapes flagged: %v", got)
	}
}

func TestHandlerScopedToServePackage(t *testing.T) {
	// The same offending shape outside internal/serve is out of scope.
	p := loadFixtureWithHTTP(t, "internal/obs", map[string]string{"a.go": `package obs

import (
	"graphmaze/internal/backend"
	"net/http"
)

func handleBad(w http.ResponseWriter, r *http.Request) {
	backend.Launch(nil)
	w.Write(nil)
}
`})
	if got := runRule(t, p, &HandlerRule{}); len(got) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", got)
	}
}
