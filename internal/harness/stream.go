package harness

import (
	"fmt"
	"time"

	"graphmaze/internal/backend"
	"graphmaze/internal/ckpt"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
	"graphmaze/internal/native"
)

// Stream is the DESIGN.md §14 experiment: the paper benchmarks static
// graphs, but the datasets it warns about (social networks, web crawls)
// grow continuously. This experiment measures the update-latency /
// staleness tradeoff of the epoch-versioned graph: each delta batch is
// ingested into a new immutable epoch (readers of epoch N never block),
// then the incremental kernels — PageRank warm-started from epoch N's
// ranks, BFS and connected components repairing from the delta's
// vertices — are timed against full recomputation on the same epoch.
// Staleness is the wall time from a batch's arrival until results again
// reflect the graph: ingest plus refresh. Every refresh is conformance-
// checked against the full recompute (bit-identical for BFS/CC, within
// tolerance for PageRank); each epoch is also persisted through the
// checkpoint subsystem's epoch store, charging its storage cost model.
//
// -deltas overrides the number of batches; -scale the base graph.
func Stream(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 13
		if opt.Quick {
			scale = 10
		}
	}
	batches := opt.Deltas
	if batches == 0 {
		batches = 8
		if opt.Quick {
			batches = 3
		}
	}

	// Base graph: the BFS-style symmetrized RMAT input.
	edges, err := gen.RMAT(gen.Graph500Config(scale, 16, 97))
	if err != nil {
		return err
	}
	b := graph.NewBuilder(uint32(1) << scale)
	b.AddEdges(edges)
	base, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true,
		DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		return err
	}
	v, err := graph.NewVersioned(base, graph.DeltaOptions{Symmetrize: true, DropSelfLoops: true})
	if err != nil {
		return err
	}

	// Delta stream: a second RMAT draw over the same vertex space, sliced
	// into batches — skew-matched updates, the way these graphs grow.
	deltaEdges, err := gen.RMAT(gen.Graph500Config(scale, 2, 98))
	if err != nil {
		return err
	}
	perBatch := len(deltaEdges) / batches
	if perBatch == 0 {
		return fmt.Errorf("stream: %d delta edges cannot fill %d batches", len(deltaEdges), batches)
	}

	record := func(algo string, seconds float64) {
		if opt.rec == nil {
			return
		}
		*opt.rec = append(*opt.rec, RunRecord{Engine: "Native", Algo: algo, Nodes: 1, Seconds: seconds})
	}

	pr := native.NewIncrementalPageRank(native.IncrementalPROptions{Tolerance: 1e-9})
	defer pr.Close()
	src := bfsSource(base)
	bfs := native.NewIncrementalBFS(src)
	defer bfs.Close()
	cc := native.NewIncrementalCC()
	defer cc.Close()
	pool := backend.NewPool(0)
	defer pool.Close()
	store := ckpt.NewEpochStore(ckpt.Config{})

	// Prime on epoch 0 (the cold start both modes share).
	ranks, _, err := pr.Update(v.Current())
	if err != nil {
		return err
	}
	if _, err := bfs.Update(v.Current(), nil); err != nil {
		return err
	}
	if _, err := cc.Update(v.Current(), nil); err != nil {
		return err
	}
	if _, _, err := store.Save(v.Current(), 1); err != nil {
		return err
	}

	fmt.Fprintf(opt.Out, "epoch stream (scale %d base: %d vertices / %d edges; %d batches of ~%d raw edges; BFS source %d):\n",
		scale, base.NumVertices, base.NumEdges(), batches, perBatch, src)
	tw := &tableWriter{header: []string{"Epoch", "Added", "Ingest", "PR inc", "PR full", "BFS inc", "BFS full", "CC inc", "CC full", "Stale inc", "Stale full", "Conformance"}}

	var incStale, fullStale []float64
	var prSpeed, bfsSpeed, ccSpeed []float64
	var persisted int64
	var persistCost float64
	for i := 0; i < batches; i++ {
		batch := deltaEdges[i*perBatch : (i+1)*perBatch]

		start := time.Now()
		snap, added, stats, err := v.ApplyDelta(batch)
		if err != nil {
			return err
		}
		ingest := time.Since(start).Seconds()

		start = time.Now()
		if ranks, _, err = pr.Update(snap); err != nil {
			return err
		}
		prInc := time.Since(start).Seconds()
		start = time.Now()
		dist, err := bfs.Update(snap, added)
		if err != nil {
			return err
		}
		bfsInc := time.Since(start).Seconds()
		start = time.Now()
		labels, err := cc.Update(snap, added)
		if err != nil {
			return err
		}
		ccInc := time.Since(start).Seconds()

		// Full recomputation on the same epoch, for the staleness a
		// non-incremental system would pay (and the conformance reference).
		coldPR := native.NewIncrementalPageRank(native.IncrementalPROptions{Tolerance: 1e-9})
		start = time.Now()
		refRanks, _, err := coldPR.Update(snap)
		if err != nil {
			return err
		}
		prFull := time.Since(start).Seconds()
		fullBFS := native.NewIncrementalBFS(src)
		start = time.Now()
		refDist, err := fullBFS.Update(snap, nil)
		if err != nil {
			return err
		}
		bfsFull := time.Since(start).Seconds()
		start = time.Now()
		refLabels := native.ConnectedComponents(pool, backend.FromSnapshot(snap))
		ccFull := time.Since(start).Seconds()

		verdict := streamVerdict(ranks, refRanks, dist, refDist, labels, refLabels)
		coldPR.Close()
		fullBFS.Close()

		bytes, cost, err := store.Save(snap, 1)
		if err != nil {
			return err
		}
		persisted += bytes
		persistCost += cost

		si := ingest + prInc + bfsInc + ccInc
		sf := ingest + prFull + bfsFull + ccFull
		incStale = append(incStale, si)
		fullStale = append(fullStale, sf)
		if prInc > 0 {
			prSpeed = append(prSpeed, prFull/prInc)
		}
		if bfsInc > 0 {
			bfsSpeed = append(bfsSpeed, bfsFull/bfsInc)
		}
		if ccInc > 0 {
			ccSpeed = append(ccSpeed, ccFull/ccInc)
		}
		record(fmt.Sprintf("Stream/ingest@%d", snap.Epoch()), ingest)
		record(fmt.Sprintf("Stream/pr-inc@%d", snap.Epoch()), prInc)
		record(fmt.Sprintf("Stream/pr-full@%d", snap.Epoch()), prFull)
		record(fmt.Sprintf("Stream/bfs-inc@%d", snap.Epoch()), bfsInc)
		record(fmt.Sprintf("Stream/bfs-full@%d", snap.Epoch()), bfsFull)
		record(fmt.Sprintf("Stream/cc-inc@%d", snap.Epoch()), ccInc)
		record(fmt.Sprintf("Stream/cc-full@%d", snap.Epoch()), ccFull)

		tw.addRow(fmt.Sprintf("%d", snap.Epoch()), fmt.Sprintf("%d", stats.Added),
			formatSeconds(ingest), formatSeconds(prInc), formatSeconds(prFull),
			formatSeconds(bfsInc), formatSeconds(bfsFull),
			formatSeconds(ccInc), formatSeconds(ccFull),
			formatSeconds(si), formatSeconds(sf), verdict)
	}
	tw.write(opt.Out)

	speedups := make([]float64, len(incStale))
	for i := range incStale {
		if incStale[i] > 0 {
			speedups[i] = fullStale[i] / incStale[i]
		}
	}
	fmt.Fprintf(opt.Out, "staleness = ingest + refresh; incremental refresh cuts it %.1fx (geomean) vs recompute-per-epoch\n",
		geomean(speedups))
	fmt.Fprintf(opt.Out, "per-kernel refresh speedup (geomean): PageRank %.1fx (bounded by the per-epoch transpose), BFS %.0fx, CC %.0fx\n",
		geomean(prSpeed), geomean(bfsSpeed), geomean(ccSpeed))
	fmt.Fprintf(opt.Out, "epoch persistence: %d epochs, %s total, %s modeled write cost (ckpt storage model, 1 node)\n",
		batches+1, formatBytes(persisted), formatSeconds(persistCost))
	fmt.Fprintln(opt.Out, "conformance compares every refresh against full recomputation on the same epoch:\n"+
		"BFS and CC must be bit-identical, PageRank within convergence tolerance")
	return nil
}

// streamVerdict checks a refresh against the full-recompute reference.
func streamVerdict(ranks, refRanks []float64, dist, refDist []int32, labels, refLabels []uint32) string {
	if len(dist) != len(refDist) || len(labels) != len(refLabels) || len(ranks) != len(refRanks) {
		return "LENGTH MISMATCH"
	}
	for i := range dist {
		if dist[i] != refDist[i] {
			return fmt.Sprintf("BFS DIFFERS at %d", i)
		}
	}
	for i := range labels {
		if labels[i] != refLabels[i] {
			return fmt.Sprintf("CC DIFFERS at %d", i)
		}
	}
	for i := range ranks {
		d := ranks[i] - refRanks[i]
		if d < -1e-6 || d > 1e-6 {
			return fmt.Sprintf("PR DIFFERS at %d", i)
		}
	}
	return "ok"
}
