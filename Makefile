GO ?= go

.PHONY: build test race lint lint-baseline lint-selfcheck fmt all bench-par bench-backend bench-diff trace-demo fault-demo

all: fmt lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the stress tests (and everything else) under the race detector;
# -short scales the stress workloads down so the pass stays quick.
race:
	$(GO) test -race -short ./...

# lint runs graphlint (the project-specific analyzer) against the checked-in
# baseline — only findings not recorded in lint.baseline.json fail — writes
# the full findings to lint-findings.json for the CI artifact, then runs
# go vet. Regenerate the baseline with `make lint-baseline` after triaging.
lint:
	$(GO) run ./cmd/graphlint -json ./... > lint-findings.json || true
	$(GO) run ./cmd/graphlint -baseline lint.baseline.json ./...
	$(GO) vet ./...

# lint-baseline re-records the current findings as the accepted baseline.
lint-baseline:
	$(GO) run ./cmd/graphlint -write-baseline -baseline lint.baseline.json ./...

# lint-selfcheck runs graphlint over its own implementation: the analyzer
# must hold itself to the rules it enforces.
lint-selfcheck:
	$(GO) run ./cmd/graphlint -baseline lint.baseline.json ./internal/lint ./cmd/graphlint

# fmt fails if any file needs gofmt, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench-par runs the scheduling-layer microbenchmarks, the skewed native
# kernels (static vs dynamic/edge-balanced), and the per-engine
# PageRank/BFS kernels at the repo root, and writes the results as JSON.
# Override the skew graph size with GRAPHMAZE_SKEW_SCALE (default 16).
bench-par:
	$(GO) test -run '^$$' -bench 'BenchmarkPar|BenchmarkNative.*Skewed|BenchmarkPageRank$$|BenchmarkBFS$$' -benchmem \
		. ./internal/par ./internal/native | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_par.json

# bench-backend runs the shared SpMV backend kernels (semiring products,
# frontier expansion, a full lowered PageRank iteration). allocs/op must
# read 0 for the steady-state kernels, and the per-engine numbers in
# BENCH_par.json are measured against these.
bench-backend:
	$(GO) test -run '^$$' -bench 'BenchmarkBackend' -benchmem \
		./internal/backend | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_backend.json

# bench-diff compares a fresh bench-par run against the checked-in
# BENCH_par.json and fails on a >1.25x ns/op or allocs/op regression.
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkPar|BenchmarkNative.*Skewed|BenchmarkPageRank$$|BenchmarkBFS$$' -benchmem \
		. ./internal/par ./internal/native | $(GO) run ./cmd/benchjson > BENCH_par.new.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.25 BENCH_par.json BENCH_par.new.json

# trace-demo runs a small traced experiment end to end: the Chrome trace
# lands in trace-demo.json (load it at https://ui.perfetto.dev) and the
# machine-readable report in trace-demo-report.json.
trace-demo:
	$(GO) run ./cmd/graphbench -exp table5 -quick -iters 2 \
		-trace trace-demo.json -json > trace-demo-report.json
	@echo "wrote trace-demo.json and trace-demo-report.json"

# fault-demo runs the fault-tolerance experiment with an injected crash
# and checkpointing: the tables show checkpoint overhead vs interval and
# the cost of rolling back and replaying; the Chrome trace in
# fault-demo.json carries cluster.checkpoint / cluster.fault /
# cluster.recovery spans on the per-node tracks.
fault-demo:
	$(GO) run ./cmd/graphbench -exp faulttol -quick \
		-faults 'crash@3:n1' -ckpt-interval 2 \
		-trace fault-demo.json -json > fault-demo-report.json
	@echo "wrote fault-demo.json and fault-demo-report.json"
