package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// buildSorted is a test helper producing a dedup-sorted CSR.
func buildSorted(t *testing.T, n uint32, edges []Edge, opt BuildOptions) *CSR {
	t.Helper()
	opt.Dedup = true
	b := NewBuilder(n)
	b.AddEdges(edges)
	g, err := b.Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVersionedRequiresSortedAdjacency(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVersioned(g, DeltaOptions{}); err == nil {
		t.Fatal("unsorted base must be rejected")
	}
	g.SortAdjacency()
	if _, err := NewVersioned(g, DeltaOptions{}); err != nil {
		t.Fatalf("sorted base rejected: %v", err)
	}
}

func TestApplyDeltaEmpty(t *testing.T) {
	g := buildSorted(t, 4, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	v, err := NewVersioned(g, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, added, st, err := v.ApplyDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != 1 {
		t.Fatalf("empty delta must still advance the epoch, got %d", snap.Epoch())
	}
	if len(added) != 0 || st.Added != 0 {
		t.Fatalf("empty delta added edges: %v %+v", added, st)
	}
	if snap.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d != %d", snap.NumEdges(), g.NumEdges())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaDedupAcrossBaseAndDelta(t *testing.T) {
	g := buildSorted(t, 4, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	v, err := NewVersioned(g, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// (0,1) duplicates the base; (2,3) is repeated within the delta.
	snap, added, st, err := v.ApplyDelta([]Edge{{0, 1}, {2, 3}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 2 || len(added) != 2 {
		t.Fatalf("want 2 added, got %d (%v)", st.Added, added)
	}
	if st.Duplicates != 2 {
		t.Fatalf("want 2 duplicates, got %d", st.Duplicates)
	}
	csr := snap.CSR()
	if !csr.HasEdge(2, 3) || !csr.HasEdge(0, 3) || !csr.HasEdge(0, 1) {
		t.Fatal("merged epoch missing edges")
	}
	if got := csr.Degree(2); got != 1 {
		t.Fatalf("duplicate within delta not removed: degree(2)=%d", got)
	}
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaSelfLoops(t *testing.T) {
	g := buildSorted(t, 3, []Edge{{0, 1}}, BuildOptions{})
	drop, err := NewVersioned(g, DeltaOptions{DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, st, err := drop.ApplyDelta([]Edge{{1, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if st.SelfLoops != 1 || snap.CSR().HasEdge(1, 1) {
		t.Fatalf("self-loop survived DropSelfLoops: %+v", st)
	}

	keep, err := NewVersioned(buildSorted(t, 3, []Edge{{0, 1}}, BuildOptions{}), DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, st, err = keep.ApplyDelta([]Edge{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.SelfLoops != 0 || !snap.CSR().HasEdge(1, 1) {
		t.Fatal("self-loop must be kept without DropSelfLoops")
	}
}

func TestApplyDeltaSymmetrize(t *testing.T) {
	g := buildSorted(t, 4, []Edge{{0, 1}, {1, 0}}, BuildOptions{})
	v, err := NewVersioned(g, DeltaOptions{Symmetrize: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, added, _, err := v.ApplyDelta([]Edge{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 {
		t.Fatalf("symmetrized delta must add both directions, got %v", added)
	}
	if !snap.CSR().HasEdge(2, 3) || !snap.CSR().HasEdge(3, 2) {
		t.Fatal("missing symmetrized edge")
	}
}

func TestApplyDeltaNewMaxDegreeVertices(t *testing.T) {
	// The delta touches only vertices beyond the base id space, and the new
	// hub immediately becomes the max-degree vertex.
	g := buildSorted(t, 3, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	v, err := NewVersioned(g, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hub := uint32(10)
	var delta []Edge
	for d := uint32(11); d <= 15; d++ {
		delta = append(delta, Edge{Src: hub, Dst: d})
	}
	snap, _, st, err := v.ApplyDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumVertices() != 16 {
		t.Fatalf("vertex space must grow to 16, got %d", snap.NumVertices())
	}
	if st.NewVertices != 13 {
		t.Fatalf("want 13 new vertices, got %d", st.NewVertices)
	}
	if got := snap.CSR().Degree(hub); got != 5 {
		t.Fatalf("hub degree %d, want 5", got)
	}
	// Old vertices keep their adjacency; grown vertices without delta edges
	// are isolated.
	if snap.CSR().Degree(0) != 1 || snap.CSR().Degree(3) != 0 {
		t.Fatal("grown epoch corrupted old or padding vertices")
	}
	st2 := snap.DegreeStats()
	if st2.Max != 5 {
		t.Fatalf("per-epoch stats must see the new hub: max=%d", st2.Max)
	}
	if err := snap.CSR().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaKeepsSortedAdjacencyAndIsolation(t *testing.T) {
	base := buildSorted(t, 8, []Edge{{0, 5}, {0, 2}, {3, 4}}, BuildOptions{})
	v, err := NewVersioned(base, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]uint32(nil), base.Neighbors(0)...)
	snap, _, _, err := v.ApplyDelta([]Edge{{0, 1}, {0, 7}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Prior epoch untouched.
	for i, w := range base.Neighbors(0) {
		if w != before[i] {
			t.Fatal("base epoch adjacency mutated by ApplyDelta")
		}
	}
	if !snap.CSR().SortedAdjacency() {
		t.Fatal("merged epoch lost sorted adjacency")
	}
	adj := snap.CSR().Neighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("merged adjacency not strictly sorted: %v", adj)
		}
	}
}

// TestVersionedConcurrentReaders is the -race stress pin for the epoch
// contract: readers traverse whatever snapshot they grabbed while a writer
// builds and publishes later epochs. Any write to a published epoch's
// arrays is a race the detector will catch; the per-reader edge-count
// check catches torn or partially-built snapshots.
func TestVersionedConcurrentReaders(t *testing.T) {
	const vertices = 1 << 10
	rng := rand.New(rand.NewSource(7))
	var edges []Edge
	for i := 0; i < 4*vertices; i++ {
		edges = append(edges, Edge{Src: rng.Uint32() % vertices, Dst: rng.Uint32() % vertices})
	}
	base := buildSorted(t, vertices, edges, BuildOptions{DropSelfLoops: true})
	v, err := NewVersioned(base, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}

	deltas := 20
	if testing.Short() {
		deltas = 8
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := v.Current()
				g := snap.CSR()
				// Full traversal of the snapshot: sums must equal the CSR's
				// own edge count, whatever epoch this is.
				var count int64
				for u := uint32(0); u < g.NumVertices; u++ {
					count += int64(len(g.Neighbors(u)))
				}
				if count != g.NumEdges() {
					t.Errorf("epoch %d: traversed %d edges, CSR claims %d", snap.Epoch(), count, g.NumEdges())
					return
				}
				_ = rng.Int()
			}
		}(int64(r))
	}
	for i := 0; i < deltas; i++ {
		batch := make([]Edge, 64)
		for j := range batch {
			batch[j] = Edge{Src: rng.Uint32() % (vertices + 16), Dst: rng.Uint32() % (vertices + 16)}
		}
		if _, _, _, err := v.ApplyDelta(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if v.Epoch() != Epoch(deltas) {
		t.Fatalf("epoch %d after %d deltas", v.Epoch(), deltas)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g1, err := b.Build(BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRawEdges() != 0 {
		t.Fatalf("Build must consume the buffer, %d edges remain", b.NumRawEdges())
	}
	b.AddEdge(2, 3)
	g2, err := b.Build(BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 1 || !g2.HasEdge(2, 3) || g2.HasEdge(0, 1) {
		t.Fatalf("reused builder leaked edges from the first build: %v", g2.Edges())
	}
	if g1.NumEdges() != 1 || !g1.HasEdge(0, 1) {
		t.Fatal("first build corrupted by reuse")
	}
}

func TestBuilderResetAfterError(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5) // out of range
	if _, err := b.Build(BuildOptions{}); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	if b.NumRawEdges() != 0 {
		t.Fatal("failed Build must still reset the buffer")
	}
	b.AddEdge(0, 1)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("post-error reuse built %d edges", g.NumEdges())
	}
	b.AddEdge(1, 0)
	b.Reset()
	if b.NumRawEdges() != 0 {
		t.Fatal("Reset must drop accumulated edges")
	}
}
