package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds one server + listener pair for the serving benches.
func benchServer(b *testing.B) (*Server, *httptest.Server) {
	b.Helper()
	return newTestServer(b, Config{Workers: 2, MaxInFlight: 8, QueueDepth: 64})
}

// BenchmarkServeCacheHit measures the steady-state hot path: admission,
// epoch pin, cache probe, serve bytes.
func BenchmarkServeCacheHit(b *testing.B) {
	_, ts := benchServer(b)
	url := ts.URL + "/query/cc?graph=social"
	// Warm the entry.
	code, _, _ := get(b, url, nil)
	if code != http.StatusOK {
		b.Fatalf("warmup status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, state, _ := get(b, url, nil)
		if code != http.StatusOK || state != "hit" {
			b.Fatalf("status %d X-Cache %q", code, state)
		}
	}
}

// BenchmarkServeCacheMiss measures the full recompute path by bypassing
// the cache (Cache-Control: no-cache), end to end over HTTP.
func BenchmarkServeCacheMiss(b *testing.B) {
	_, ts := benchServer(b)
	url := ts.URL + "/query/cc?graph=social"
	hdr := map[string]string{"Cache-Control": "no-cache"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, state, _ := get(b, url, hdr)
		if code != http.StatusOK || state != "bypass" {
			b.Fatalf("status %d X-Cache %q", code, state)
		}
	}
}

// BenchmarkServePageRankMiss is the heaviest kernel end to end, uncached.
func BenchmarkServePageRankMiss(b *testing.B) {
	_, ts := benchServer(b)
	hdr := map[string]string{"Cache-Control": "no-cache"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, _ := get(b, ts.URL+"/query/pagerank?graph=social&iters=5&k=3", hdr)
		if code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkAdmission measures the uncontended acquire/release cycle.
func BenchmarkAdmission(b *testing.B) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 8, QueueDepth: 64})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Acquire(ctx, "bench"); err != nil {
			b.Fatal(err)
		}
		a.Release()
	}
}

// BenchmarkAdmissionContended measures acquire/release with queueing: 4
// tenants fighting over 2 slots.
func BenchmarkAdmissionContended(b *testing.B) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, QueueDepth: 1 << 20})
	ctx := context.Background()
	tenants := []string{"t0", "t1", "t2", "t3"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := a.Acquire(ctx, tenants[i%len(tenants)]); err != nil {
				b.Fatal(err)
			}
			a.Release()
			i++
		}
	})
}

// BenchmarkResultCache measures the cache's get/put cycle.
func BenchmarkResultCache(b *testing.B) {
	c := newResultCache(512)
	body := []byte(`{"graph":"g","epoch":0,"query":"cc","components":1}`)
	for i := 0; i < 512; i++ {
		c.put(fmt.Sprintf("g@0|q%d", i), body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.get(fmt.Sprintf("g@0|q%d", i%512)); !ok {
			b.Fatal("unexpected miss")
		}
	}
}
