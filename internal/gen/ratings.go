package gen

import (
	"fmt"
	"math"
	"math/rand"

	"graphmaze/internal/graph"
)

// RatingsConfig parameterizes the paper's synthetic collaborative-filtering
// generator (§4.1.2): an RMAT graph with a Netflix-like degree tail is
// folded into an Nusers×Nitems bipartite matrix by chunking the column
// space into item-sized chunks and logically OR-ing them, then vertices
// with degree below MinDegree are removed.
type RatingsConfig struct {
	Scale      int    // RMAT scale; users come from the row space (2^Scale)
	NumItems   uint32 // column space is folded into chunks of this size
	NumRatings int64  // raw RMAT edges generated before fold/dedup/filter
	MinDegree  int64  // paper uses 5
	Seed       int64
	// MinRating/MaxRating bound the generated star ratings (inclusive).
	MinRating, MaxRating float32
}

// DefaultRatingsConfig mirrors the paper's setup at a reduced scale:
// ratings ≈ ratingsPerUser × 2^scale, items = 2^(scale-5) (Netflix has
// ~27 users per item; a power of two keeps the fold on bit boundaries so
// the RMAT column skew survives), 1–5 star ratings, min degree 5.
func DefaultRatingsConfig(scale int, ratingsPerUser int, seed int64) RatingsConfig {
	items := uint32(1)
	if scale > 5 {
		items = uint32(1) << uint(scale-5)
	}
	return RatingsConfig{
		Scale:      scale,
		NumItems:   items,
		NumRatings: int64(ratingsPerUser) << uint(scale),
		MinDegree:  5,
		Seed:       seed,
		MinRating:  1,
		MaxRating:  5,
	}
}

// Validate reports the first problem with the configuration.
func (c RatingsConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 30 {
		return fmt.Errorf("gen: ratings scale %d outside [1,30]", c.Scale)
	}
	if c.NumItems == 0 {
		return fmt.Errorf("gen: ratings need at least one item")
	}
	if c.NumRatings <= 0 {
		return fmt.Errorf("gen: non-positive rating count %d", c.NumRatings)
	}
	if c.MinDegree < 0 {
		return fmt.Errorf("gen: negative min degree %d", c.MinDegree)
	}
	if c.MaxRating < c.MinRating {
		return fmt.Errorf("gen: rating range [%v,%v] empty", c.MinRating, c.MaxRating)
	}
	return nil
}

// Ratings generates a bipartite rating graph per the configuration. User
// and item ids are compacted after the degree filter, so the result has no
// isolated vertices.
func Ratings(cfg RatingsConfig) (*graph.Bipartite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rmatCfg := RatingsRMATConfig(cfg.Scale, 1, cfg.Seed)
	rmatCfg.NumEdges = cfg.NumRatings
	// Fold raw Graph500 ids: the modulo fold below relies on RMAT's
	// bit-structured column skew, which a vertex permutation would destroy.
	// Ids are compacted (relabeled) after the degree filter anyway.
	rmatCfg.PermuteVertices = false
	edges, err := RMAT(rmatCfg)
	if err != nil {
		return nil, err
	}

	// Fold the column space into item chunks (logical OR = dedup below).
	numUsers := rmatCfg.NumVertices()
	for i := range edges {
		edges[i].Dst %= cfg.NumItems
	}

	// Dedup (user,item) pairs.
	seen := make(map[uint64]struct{}, len(edges))
	w := 0
	for _, e := range edges {
		key := uint64(e.Src)<<32 | uint64(e.Dst)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		edges[w] = e
		w++
	}
	edges = edges[:w]

	// Degree filter: drop users and items with fewer than MinDegree
	// ratings. One pass over each side, as in the paper's post-processing.
	userDeg := make([]int64, numUsers)
	itemDeg := make([]int64, cfg.NumItems)
	for _, e := range edges {
		userDeg[e.Src]++
		itemDeg[e.Dst]++
	}
	w = 0
	for _, e := range edges {
		if userDeg[e.Src] < cfg.MinDegree || itemDeg[e.Dst] < cfg.MinDegree {
			continue
		}
		edges[w] = e
		w++
	}
	edges = edges[:w]
	if len(edges) == 0 {
		return nil, fmt.Errorf("gen: degree filter %d removed every rating; lower MinDegree or raise NumRatings", cfg.MinDegree)
	}

	// Compact ids.
	userID := make(map[uint32]uint32)
	itemID := make(map[uint32]uint32)
	ratings := make([]graph.WeightedEdge, len(edges))
	r := rand.New(rand.NewSource(mix(cfg.Seed, 0x5ca1e)))
	span := cfg.MaxRating - cfg.MinRating
	for i, e := range edges {
		u, ok := userID[e.Src]
		if !ok {
			u = graph.MustU32(int64(len(userID)))
			userID[e.Src] = u
		}
		v, ok := itemID[e.Dst]
		if !ok {
			v = graph.MustU32(int64(len(itemID)))
			itemID[e.Dst] = v
		}
		// Star ratings: integer steps across the configured range.
		stars := cfg.MinRating
		if span > 0 {
			stars += float32(r.Intn(int(span) + 1))
		}
		ratings[i] = graph.WeightedEdge{Src: u, Dst: v, Weight: stars}
	}
	return graph.NewBipartite(graph.MustU32(int64(len(userID))), graph.MustU32(int64(len(itemID))), ratings)
}

// DegreeCCDF returns the complementary CDF of a degree distribution
// sampled at power-of-two thresholds: out[k] = fraction of vertices with
// degree ≥ 2^k. The paper's generator calibration (§4.1.2: "Through
// experimentation, we found that RMAT parameters of A = 0.40 and
// B = C = 0.22 generates degree distributions whose tail is reasonably
// close to that of the Netflix dataset") compares exactly these tails.
func DegreeCCDF(degrees []int64) []float64 {
	if len(degrees) == 0 {
		return nil
	}
	var maxDeg int64
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := 1
	for t := int64(1); t < maxDeg; t <<= 1 {
		buckets++
	}
	out := make([]float64, buckets)
	for _, d := range degrees {
		for k := 0; k < buckets; k++ {
			if d >= int64(1)<<uint(k) {
				out[k]++
			} else {
				break
			}
		}
	}
	n := float64(len(degrees))
	for k := range out {
		out[k] /= n
	}
	return out
}

// TailDistance compares two degree distributions' tails: the maximum
// absolute difference between their log10-CCDFs over the thresholds both
// populate. Smaller is a closer tail match.
func TailDistance(a, b []int64) float64 {
	ca, cb := DegreeCCDF(a), DegreeCCDF(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	worst := 0.0
	for k := 0; k < n; k++ {
		if ca[k] == 0 || cb[k] == 0 {
			break
		}
		d := math.Log10(ca[k]) - math.Log10(cb[k])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	// Tail-length mismatch counts against the match too.
	la, lb := len(ca), len(cb)
	if la != lb {
		diff := float64(la - lb)
		if diff < 0 {
			diff = -diff
		}
		worst += 0.25 * diff
	}
	return worst
}
