package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"graphmaze/internal/graph"
)

// tenantOf extracts the requesting tenant: the X-Tenant header, the
// tenant query parameter, or "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

// writeJSON sends a JSON body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	body, err := json.Marshal(v)
	if err != nil {
		return
	}
	body = append(body, '\n')
	_, _ = w.Write(body)
}

// writeError sends a JSON error body.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleQuery is the full request pipeline: parse and canonicalize, admit
// under the tenant's fair share, pin the graph's current epoch, probe the
// result cache, compute on the shared pool on a miss, fill the cache,
// respond. The request context is honored at every wait point: a client
// that disconnects while queued gives its queue slot back, and a
// cancelled request is never charged as computed.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "query endpoints are GET")
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g, ok := s.graphByName(q.graph)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q (have %v)", q.graph, s.graphNames())
		return
	}

	// Admission: the only place a request waits. The context carries the
	// client disconnect, so an abandoned request leaves the queue.
	start := time.Now()
	if err := s.adm.Acquire(ctx, tenantOf(r)); err != nil {
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
			return
		}
		// Client gave up while queued.
		writeError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", err)
		return
	}
	defer s.adm.Release()
	if ctx.Err() != nil {
		return
	}

	// Epoch pin: one atomic load. Everything below sees this snapshot even
	// if deltas advance the graph mid-query.
	snap := g.v.Current()
	key := cacheKey(g.name, snap.Epoch(), q.fingerprint())
	bypass := strings.Contains(r.Header.Get("Cache-Control"), "no-cache")
	if !bypass {
		if body, ok := s.cache.get(key); ok {
			s.recordQuery(q.kind, time.Since(start))
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_, _ = w.Write(body)
			return
		}
	}

	body, err := s.execute(g, snap, q)
	if err != nil {
		var bad *badRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	state := "miss"
	if bypass {
		state = "bypass"
	} else {
		s.cache.put(key, body)
	}
	s.recordQuery(q.kind, time.Since(start))
	w.Header().Set("X-Cache", state)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(body)
}

// recordQuery records one served query's latency, overall and per kind.
func (s *Server) recordQuery(kind string, d time.Duration) {
	lane := s.nextLane()
	s.reg.Hist("serve.query_ns").Record(lane, d.Nanoseconds())
	s.reg.Hist("serve.query."+kind+"_ns").Record(lane, d.Nanoseconds())
}

// deltaRequest is the /delta ingestion body.
type deltaRequest struct {
	Graph string      `json:"graph"`
	Edges [][2]uint32 `json:"edges"`
}

// deltaResponse reports the published epoch and ingestion stats.
type deltaResponse struct {
	Graph       string `json:"graph"`
	Epoch       uint64 `json:"epoch"`
	Added       int64  `json:"added"`
	Duplicates  int64  `json:"duplicates"`
	SelfLoops   int64  `json:"self_loops"`
	NewVertices uint32 `json:"new_vertices"`
}

// handleDelta ingests a batch of edge insertions: POST {"graph": ...,
// "edges": [[src,dst],...]}. Ingestion holds only the graph's writer
// mutex — queries pinned to older epochs keep running unblocked, and the
// new epoch is persisted into the graph's epoch store before the response
// confirms it.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "/delta is POST")
		return
	}
	var req deltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad delta body: %v", err)
		return
	}
	g, ok := s.graphByName(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q (have %v)", req.Graph, s.graphNames())
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "empty delta")
		return
	}
	if ctx.Err() != nil {
		return
	}
	delta := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		delta[i] = graph.Edge{Src: e[0], Dst: e[1]}
	}
	snap, _, stats, err := g.v.ApplyDelta(delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, "applying delta: %v", err)
		return
	}
	if _, _, err := g.store.Save(snap, 1); err != nil {
		writeError(w, http.StatusInternalServerError, "persisting epoch %d: %v", snap.Epoch(), err)
		return
	}
	s.deltas.Add(1)
	s.reg.Gauge("serve.graph." + g.name + ".epoch").Set(float64(snap.Epoch()))
	writeJSON(w, http.StatusOK, deltaResponse{
		Graph:       g.name,
		Epoch:       uint64(snap.Epoch()),
		Added:       stats.Added,
		Duplicates:  stats.Duplicates,
		SelfLoops:   stats.SelfLoops,
		NewVertices: stats.NewVertices,
	})
}

// graphInfo is one entry in the /graphs listing.
type graphInfo struct {
	Name            string `json:"name"`
	Epoch           uint64 `json:"epoch"`
	Vertices        uint32 `json:"vertices"`
	Edges           int64  `json:"edges"`
	Symmetrized     bool   `json:"symmetrized"`
	PersistedBytes  int64  `json:"persisted_bytes"`
	PersistedEpochs int    `json:"persisted_epochs"`
}

// handleGraphs lists the registered graphs with their live epoch and
// persistence accounting.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Context().Err() != nil {
		return
	}
	infos := make([]graphInfo, 0)
	for _, name := range s.graphNames() {
		g, ok := s.graphByName(name)
		if !ok {
			continue
		}
		snap := g.v.Current()
		bytes, writes := g.store.Stats()
		infos = append(infos, graphInfo{
			Name:            name,
			Epoch:           uint64(snap.Epoch()),
			Vertices:        snap.NumVertices(),
			Edges:           snap.CSR().NumEdges(),
			Symmetrized:     g.v.Options().Symmetrize,
			PersistedBytes:  bytes,
			PersistedEpochs: writes,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Context().Err() != nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ok\n")
}

// handleIndex is the plain-text endpoint directory at "/".
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if r.Context().Err() != nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "graphserve\n")
	for _, k := range queryKinds() {
		fmt.Fprintf(w, "/query/%s?graph=<name>\n", k)
	}
	fmt.Fprint(w, "/delta (POST)\n/graphs\n/healthz\n/metrics\n/metrics.json\n/debug/pprof/\n")
}
