package obs

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if r.Hist("h") != r.Hist("h") {
		t.Fatal("Hist not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	r.Gauge("g").Set(2.5)
	r.Gauge("g").Add(0.5)
	if v := r.Gauge("g").Value(); v != 3 {
		t.Fatalf("gauge = %v", v)
	}
	n := int64(0)
	r.CounterFunc("c", func() int64 { n++; return n })
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 1 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	// Snapshot sections are sorted by name.
	r.Hist("a").Record(0, 1)
	s = r.Snapshot()
	if len(s.Hists) != 2 || s.Hists[0].Name != "a" || s.Hists[1].Name != "h" {
		t.Fatalf("hist order: %+v", s.Hists)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Hist("x") != nil || r.Gauge("x") != nil {
		t.Fatal("nil registry returned live handles")
	}
	r.CounterFunc("x", func() int64 { return 1 })
	if r.Snapshot() != nil || r.HistSnapshots() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if StartSampler(nil, time.Millisecond) != nil {
		t.Fatal("sampler on nil registry")
	}
	var s *Sampler
	s.Stop() // must not panic
	var srv *Server
	if srv.Addr() != "" || srv.Close() != nil {
		t.Fatal("nil server misbehaved")
	}
}

func TestSamplerPublishesRuntimeStats(t *testing.T) {
	r := NewRegistry()
	s := StartSampler(r, 10*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	snap := r.Snapshot()
	got := map[string]float64{}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	if got["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatalf("heap_alloc gauge missing: %+v", got)
	}
	if got["runtime.goroutines"] < 1 {
		t.Fatalf("goroutine gauge missing: %+v", got)
	}
	if got["runtime.gomaxprocs"] < 1 {
		t.Fatalf("gomaxprocs gauge missing: %+v", got)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Hist("e2e.dur_ns").Record(0, 1234)
	r.Gauge("e2e.gauge").Set(1)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "graphmaze_e2e_dur_ns_count 1") {
		t.Fatalf("/metrics output:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"e2e.dur_ns"`) {
		t.Fatalf("/metrics.json output:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("pprof cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Fatalf("index output: %q", out)
	}
}

func TestProfileCapture(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing/empty: %v", err)
	}
	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing/empty: %v", err)
	}
}
