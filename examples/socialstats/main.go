// Socialstats computes graph statistics on a social-network stand-in:
// triangle count (clustering) and a BFS distance histogram (degrees of
// separation), across several frameworks — the paper's "graph statistics"
// workload class.
package main

import (
	"fmt"
	"log"

	"graphmaze"
)

func main() {
	// The Facebook user-interaction stand-in (paper Table 3).
	tg, err := graphmaze.Dataset("facebook", graphmaze.ForTriangles)
	if err != nil {
		log.Fatal(err)
	}
	ug, err := graphmaze.Dataset("facebook", graphmaze.ForBFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("facebook stand-in: %d users, %d friendships\n\n", ug.NumVertices, ug.NumEdges()/2)

	// Triangle counting across the engines that shine (and struggle) at it
	// in the paper: GraphLab's cuckoo hashing, CombBLAS's A² product.
	fmt.Println("triangles:")
	var triangles int64
	for _, eng := range graphmaze.Engines() {
		res, err := eng.TriangleCount(tg, graphmaze.TriangleOptions{})
		if err != nil {
			log.Fatalf("%s: %v", eng.Name(), err)
		}
		triangles = res.Count
		fmt.Printf("  %-12s %d triangles in %.2fms\n", eng.Name(), res.Count, 1e3*res.Stats.WallSeconds)
	}

	// Global clustering coefficient from the triangle count.
	var wedges int64
	for v := uint32(0); v < ug.NumVertices; v++ {
		d := ug.Degree(v)
		wedges += d * (d - 1) / 2
	}
	if wedges > 0 {
		fmt.Printf("\nglobal clustering coefficient: %.4f\n", 3*float64(triangles)/float64(wedges))
	}

	// Degrees of separation: BFS from the most-connected user.
	hub := uint32(0)
	for v := uint32(0); v < ug.NumVertices; v++ {
		if ug.Degree(v) > ug.Degree(hub) {
			hub = v
		}
	}
	bfs, err := graphmaze.Native().BFS(ug, graphmaze.BFSOptions{Source: hub})
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int32]int{}
	unreachable := 0
	for _, d := range bfs.Distances {
		if d < 0 {
			unreachable++
			continue
		}
		hist[d]++
	}
	fmt.Printf("\ndegrees of separation from user %d (degree %d):\n", hub, ug.Degree(hub))
	for d := int32(0); ; d++ {
		count, ok := hist[d]
		if !ok {
			break
		}
		bar := ""
		for i := 0; i < 40*count/len(bfs.Distances)+1; i++ {
			bar += "#"
		}
		fmt.Printf("  %2d hops: %7d users %s\n", d, count, bar)
	}
	if unreachable > 0 {
		fmt.Printf("  unreachable: %d users\n", unreachable)
	}
}
