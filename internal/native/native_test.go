package native

import (
	"math"
	"testing"

	"graphmaze/internal/codec"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

// testGraphDirected builds a small RMAT graph for PageRank (directed).
func testGraphDirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(9, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 9)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testGraphUndirected builds a symmetrized graph for BFS.
func testGraphUndirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(9, 8, 43))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 9)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testGraphAcyclic builds an acyclically oriented graph for TC.
func testGraphAcyclic(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.TriangleConfig(9, 8, 44))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 9)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testRatings(t testing.TB) *graph.Bipartite {
	t.Helper()
	bp, err := gen.Ratings(gen.DefaultRatingsConfig(9, 16, 45))
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestEngineIdentity(t *testing.T) {
	e := New()
	if e.Name() != "Native" {
		t.Errorf("Name = %q", e.Name())
	}
	caps := e.Capabilities()
	if !caps.MultiNode || !caps.SGD {
		t.Errorf("capabilities = %+v", caps)
	}
	if !e.Tuning().Compression {
		t.Error("default tuning should enable compression")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraphDirected(t)
	opt := core.PageRankOptions{Iterations: 8}
	want := core.RefPageRank(g, opt)
	for _, tuned := range []Tuning{DefaultTuning(), {}} {
		res, err := NewTuned(tuned).PageRank(g, opt)
		if err != nil {
			t.Fatalf("tuning %+v: %v", tuned, err)
		}
		if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
			t.Errorf("tuning %+v: max relative diff %v", tuned, d)
		}
		if res.Stats.Iterations != 8 {
			t.Errorf("Iterations = %d", res.Stats.Iterations)
		}
	}
}

func TestPageRankClusterMatchesReference(t *testing.T) {
	g := testGraphDirected(t)
	opt := core.PageRankOptions{Iterations: 6,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}}
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 6})
	for _, tuned := range []Tuning{DefaultTuning(), {}} {
		res, err := NewTuned(tuned).PageRank(g, opt)
		if err != nil {
			t.Fatalf("tuning %+v: %v", tuned, err)
		}
		// Compressed messages round contributions to float32.
		tol := 1e-9
		if tuned.Compression {
			tol = 1e-4
		}
		if d := core.ComparePageRank(want, res.Ranks); d > tol {
			t.Errorf("tuning %+v: max relative diff %v", tuned, d)
		}
		if !res.Stats.Simulated {
			t.Error("cluster run not marked simulated")
		}
		if res.Stats.Report.BytesSent == 0 {
			t.Error("cluster run reported no traffic")
		}
	}
}

func TestPageRankCompressionReducesTraffic(t *testing.T) {
	g := testGraphDirected(t)
	run := func(compress bool) int64 {
		tn := DefaultTuning()
		tn.Compression = compress
		res, err := NewTuned(tn).PageRank(g, core.PageRankOptions{Iterations: 4,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Report.BytesSent
	}
	raw, compressed := run(false), run(true)
	if compressed >= raw {
		t.Errorf("compression did not reduce traffic: %d vs %d", compressed, raw)
	}
	// Paper reports ≈2.2× for PageRank.
	if ratio := float64(raw) / float64(compressed); ratio < 1.5 {
		t.Errorf("compression ratio %.2f below expected ≥1.5", ratio)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := testGraphUndirected(t)
	want := core.RefBFS(g, 3)
	for _, tuned := range []Tuning{DefaultTuning(), {}} {
		res, err := NewTuned(tuned).BFS(g, core.BFSOptions{Source: 3})
		if err != nil {
			t.Fatalf("tuning %+v: %v", tuned, err)
		}
		if !core.EqualDistances(want, res.Distances) {
			t.Errorf("tuning %+v: distances differ from reference", tuned)
		}
	}
}

func TestBFSClusterMatchesReference(t *testing.T) {
	g := testGraphUndirected(t)
	want := core.RefBFS(g, 3)
	for _, nodes := range []int{1, 2, 5} {
		res, err := New().BFS(g, core.BFSOptions{Source: 3,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: nodes}}})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if !core.EqualDistances(want, res.Distances) {
			t.Errorf("nodes=%d: distances differ from reference", nodes)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two components: 0-1, 2-3.
	b := graph.NewBuilder(4)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().BFS(g, core.BFSOptions{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, -1, -1}
	if !core.EqualDistances(res.Distances, want) {
		t.Errorf("distances = %v, want %v", res.Distances, want)
	}
}

func TestBFSSourceValidation(t *testing.T) {
	g := testGraphUndirected(t)
	if _, err := New().BFS(g, core.BFSOptions{Source: 1 << 20}); err == nil {
		t.Error("accepted out-of-range source")
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := testGraphAcyclic(t)
	want := core.RefTriangleCount(g)
	if want == 0 {
		t.Fatal("fixture has no triangles; choose a different seed")
	}
	for _, tuned := range []Tuning{DefaultTuning(), {}} {
		res, err := NewTuned(tuned).TriangleCount(g, core.TriangleOptions{})
		if err != nil {
			t.Fatalf("tuning %+v: %v", tuned, err)
		}
		if res.Count != want {
			t.Errorf("tuning %+v: count = %d, want %d", tuned, res.Count, want)
		}
	}
}

func TestTriangleCountClusterMatchesReference(t *testing.T) {
	g := testGraphAcyclic(t)
	want := core.RefTriangleCount(g)
	for _, nodes := range []int{1, 3, 4} {
		res, err := New().TriangleCount(g, core.TriangleOptions{
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: nodes}}})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if res.Count != want {
			t.Errorf("nodes=%d: count = %d, want %d", nodes, res.Count, want)
		}
	}
}

func TestTriangleRequiresSortedAdjacency(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 1}})
	if _, err := New().TriangleCount(g, core.TriangleOptions{}); err == nil {
		t.Error("accepted unsorted adjacency")
	}
}

func TestCFSGDConverges(t *testing.T) {
	bp := testRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD, K: 8, Iterations: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RMSE) != 6 {
		t.Fatalf("RMSE entries = %d", len(res.RMSE))
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("SGD RMSE not decreasing: %v", res.RMSE)
	}
	if res.RMSE[5] >= res.RMSE[0] {
		t.Errorf("SGD failed to improve: %v", res.RMSE)
	}
}

func TestCFGDConverges(t *testing.T) {
	bp := testRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{Method: core.GradientDescent, K: 8, Iterations: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("GD RMSE not decreasing: %v", res.RMSE)
	}
}

func TestCFSGDBeatsGDPerIteration(t *testing.T) {
	// The paper: SGD converges in ~40× fewer iterations than GD. At our
	// scale just assert SGD reaches a lower RMSE in the same iterations.
	bp := testRatings(t)
	iters := 8
	sgd, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD, K: 8, Iterations: iters, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := New().CollabFilter(bp, core.CFOptions{Method: core.GradientDescent, K: 8, Iterations: iters, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sgd.RMSE[iters-1] >= gd.RMSE[iters-1] {
		t.Errorf("SGD RMSE %v not below GD RMSE %v", sgd.RMSE[iters-1], gd.RMSE[iters-1])
	}
}

func TestCFClusterSGD(t *testing.T) {
	bp := testRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD, K: 8, Iterations: 4, Seed: 3,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("distributed SGD RMSE not decreasing: %v", res.RMSE)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("distributed SGD reported no traffic")
	}
}

func TestCFClusterGD(t *testing.T) {
	bp := testRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{Method: core.GradientDescent, K: 8, Iterations: 4, Seed: 3,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("distributed GD RMSE not decreasing: %v", res.RMSE)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("distributed GD reported no traffic")
	}
}

func TestStripeCodecRoundTrip(t *testing.T) {
	k := 4
	itemF := make([]float32, 10*k)
	for i := range itemF {
		itemF[i] = float32(i) * 0.5
	}
	payload := encodeStripe(2, 7, itemF, k)
	decoded := make([]float32, len(itemF))
	if err := decodeStripe(payload, decoded, k); err != nil {
		t.Fatal(err)
	}
	for i := 2 * k; i < 7*k; i++ {
		if decoded[i] != itemF[i] {
			t.Fatalf("decoded[%d] = %v, want %v", i, decoded[i], itemF[i])
		}
	}
	if err := decodeStripe([]byte{1, 2, 3}, decoded, k); err == nil {
		t.Error("decoded truncated stripe")
	}
}

func TestPRMessageCodecRoundTrip(t *testing.T) {
	contrib := []float64{0.5, 1.5, 2.5, 3.5}
	ids := []uint32{1, 3}
	for _, compress := range []bool{false, true} {
		e := NewTuned(Tuning{Compression: compress})
		var idBytes []byte
		if compress {
			var err error
			idBytes, err = codec.EncodeIDsAuto(ids, 4)
			if err != nil {
				t.Fatal(err)
			}
		}
		payload, err := e.encodePRMessage(ids, idBytes, contrib)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 4)
		if err := e.applyPRMessage(payload, out); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if math.Abs(out[id]-contrib[id]) > 1e-6 {
				t.Errorf("compress=%v: out[%d] = %v, want %v", compress, id, out[id], contrib[id])
			}
		}
	}
	e := New()
	if err := e.applyPRMessage([]byte{1}, nil); err == nil {
		t.Error("applied truncated message")
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]uint32{1, 1, 2, 3, 3, 3, 7})
	want := []uint32{1, 2, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedup = %v, want %v", got, want)
		}
	}
	if out := dedupSorted(nil); len(out) != 0 {
		t.Error("dedup(nil) not empty")
	}
}
