package socialite

import (
	"errors"
	"fmt"
)

// The rule representation below is the "compiled" form SociaLite produces
// from Datalog source: variables are resolved to key/value slots, body
// atoms become indexed joins evaluated left to right, and the head fold is
// one of the aggregation functions. A rule like the paper's distributed
// PageRank (§3.1)
//
//	RANK2[n]($SUM(v)) :- RANK[s](v0), OUTEDGE[s](n), OUTDEG[s](d),
//	                     v = (1-r)*v0/d.
//
// compiles to: driver = RANK (binds s,v0), edge atom OUTEDGE joining on s
// (binds n), vec atom OUTDEG joining on s (binds d), a Let computing v,
// and head $SUM into RANK2 keyed by n.

// Env is a rule's slot frame during evaluation: key slots hold vertex ids,
// value slots hold scalars/vectors. Scalar slots reuse a per-frame scratch
// arena so rule evaluation is allocation-free on the hot path (SociaLite
// compiles rules to tight Java loops; we match that with this fast path).
type Env struct {
	Keys    []uint32
	Vals    []Value
	scratch []float64
}

// setScalar binds a value slot to a scalar without allocating.
func (e *Env) setScalar(slot int, x float64) {
	if e.scratch == nil {
		e.scratch = make([]float64, len(e.Vals))
	}
	s := e.scratch[slot : slot+1 : slot+1]
	s[0] = x
	e.Vals[slot] = s
}

// EdgeAtom joins a tail-nested edge table. Src must already be bound. If
// DstBound, the atom is a containment check on an already-bound Dst;
// otherwise it enumerates and binds Dst. WeightSlot ≥ 0 binds the weight
// column.
type EdgeAtom struct {
	Table      *EdgeTable
	SrcSlot    int
	DstSlot    int
	DstBound   bool
	WeightSlot int
}

// VecAtom joins a keyed table on an already-bound key, binding the value.
type VecAtom struct {
	Table   *VecTable
	KeySlot int
	ValSlot int
}

// Atom is one body literal after the driver: exactly one of Edge, Vec or
// Let. Interleaved Let atoms let the planner hoist loop-invariant
// expressions above edge enumeration, as SociaLite's rule compiler does
// (e.g. PageRank's (1-r)·v0/d depends only on the source bindings and is
// computed once per source, not once per edge).
type Atom struct {
	Edge *EdgeAtom
	Vec  *VecAtom
	Let  *Let
}

// Let computes a derived value from the current frame. Rules with scalar
// expressions set FScalar (preferred: allocation-free); vector expressions
// set F.
type Let struct {
	OutSlot int
	F       func(env *Env) Value
	FScalar func(env *Env) float64
}

// Head aggregates the emitted tuple. ValSlot < 0 emits the constant 1
// ($INC(1)); KeySlot < 0 folds into the constant key 0 (global
// aggregates like TRIANGLE(0, $INC(1))).
type Head struct {
	Table   *VecTable
	Agg     Agg
	KeySlot int
	ValSlot int
}

// Driver enumerates the rule's first body atom. Exactly one of Vec or
// Edge is set.
type Driver struct {
	// Vec drives from a keyed table: binds KeySlot and ValSlot per present
	// key (or per delta key during semi-naive evaluation).
	Vec *VecAtom
	// Edge drives from an edge table: binds SrcSlot, DstSlot and
	// optionally WeightSlot for every tuple.
	Edge *EdgeAtom
}

// Rule is one compiled Datalog rule.
type Rule struct {
	Name     string
	KeySlots int
	ValSlots int
	Driver   Driver
	Atoms    []Atom
	Lets     []Let
	Head     Head
}

// Validate performs the checks SociaLite's compiler would: slots in
// range, join keys bound before use.
func (r *Rule) Validate() error {
	if r.Head.Table == nil {
		return errors.New("socialite: rule has no head table")
	}
	bound := make([]bool, r.KeySlots)
	boundVal := make([]bool, r.ValSlots)
	checkKey := func(slot int, mustBeBound bool, what string) error {
		if slot < 0 || slot >= r.KeySlots {
			return fmt.Errorf("socialite: rule %s: %s key slot %d out of range", r.Name, what, slot)
		}
		if mustBeBound && !bound[slot] {
			return fmt.Errorf("socialite: rule %s: %s uses unbound key slot %d", r.Name, what, slot)
		}
		return nil
	}
	switch {
	case r.Driver.Vec != nil:
		d := r.Driver.Vec
		if err := checkKey(d.KeySlot, false, "driver"); err != nil {
			return err
		}
		bound[d.KeySlot] = true
		if d.ValSlot >= 0 {
			boundVal[d.ValSlot] = true
		}
	case r.Driver.Edge != nil:
		d := r.Driver.Edge
		if err := checkKey(d.SrcSlot, false, "driver"); err != nil {
			return err
		}
		if err := checkKey(d.DstSlot, false, "driver"); err != nil {
			return err
		}
		bound[d.SrcSlot], bound[d.DstSlot] = true, true
		if d.WeightSlot >= 0 {
			boundVal[d.WeightSlot] = true
		}
	default:
		return errors.New("socialite: rule has no driver atom")
	}
	for i, a := range r.Atoms {
		switch {
		case a.Edge != nil:
			if err := checkKey(a.Edge.SrcSlot, true, fmt.Sprintf("atom %d", i)); err != nil {
				return err
			}
			if a.Edge.DstBound {
				if err := checkKey(a.Edge.DstSlot, true, fmt.Sprintf("atom %d (check)", i)); err != nil {
					return err
				}
			} else {
				if err := checkKey(a.Edge.DstSlot, false, fmt.Sprintf("atom %d", i)); err != nil {
					return err
				}
				bound[a.Edge.DstSlot] = true
			}
			if a.Edge.WeightSlot >= 0 {
				boundVal[a.Edge.WeightSlot] = true
			}
		case a.Vec != nil:
			if err := checkKey(a.Vec.KeySlot, true, fmt.Sprintf("atom %d", i)); err != nil {
				return err
			}
			if a.Vec.ValSlot >= 0 {
				boundVal[a.Vec.ValSlot] = true
			}
		case a.Let != nil:
			if a.Let.OutSlot < 0 || a.Let.OutSlot >= r.ValSlots {
				return fmt.Errorf("socialite: rule %s: atom %d let out slot out of range", r.Name, i)
			}
			if a.Let.F == nil && a.Let.FScalar == nil {
				return fmt.Errorf("socialite: rule %s: atom %d let has no expression", r.Name, i)
			}
			boundVal[a.Let.OutSlot] = true
		default:
			return fmt.Errorf("socialite: rule %s: atom %d is empty", r.Name, i)
		}
	}
	for i, l := range r.Lets {
		if l.OutSlot < 0 || l.OutSlot >= r.ValSlots {
			return fmt.Errorf("socialite: rule %s: let %d out slot out of range", r.Name, i)
		}
		if l.F == nil && l.FScalar == nil {
			return fmt.Errorf("socialite: rule %s: let %d has no expression", r.Name, i)
		}
		boundVal[l.OutSlot] = true
	}
	if r.Head.KeySlot >= 0 {
		if err := checkKey(r.Head.KeySlot, true, "head"); err != nil {
			return err
		}
	}
	if r.Head.ValSlot >= 0 && !boundVal[r.Head.ValSlot] {
		return fmt.Errorf("socialite: rule %s: head value slot %d never bound", r.Name, r.Head.ValSlot)
	}
	return nil
}

// emit is the head sink: fold into the head table (possibly remotely — the
// engine supplies the routing).
type emit func(key uint32, val Value)

// evalFrom continues evaluation from atom index ai with the frame env.
func (r *Rule) evalFrom(ai int, env *Env, sink emit) {
	if ai == len(r.Atoms) {
		for _, l := range r.Lets {
			if l.FScalar != nil {
				env.setScalar(l.OutSlot, l.FScalar(env))
			} else {
				env.Vals[l.OutSlot] = l.F(env)
			}
		}
		val := one
		if r.Head.ValSlot >= 0 {
			val = env.Vals[r.Head.ValSlot]
		}
		if isNaN(val) {
			return
		}
		key := uint32(0)
		if r.Head.KeySlot >= 0 {
			key = env.Keys[r.Head.KeySlot]
		}
		sink(key, val)
		return
	}
	a := r.Atoms[ai]
	if a.Let != nil {
		if a.Let.FScalar != nil {
			env.setScalar(a.Let.OutSlot, a.Let.FScalar(env))
		} else {
			env.Vals[a.Let.OutSlot] = a.Let.F(env)
		}
		r.evalFrom(ai+1, env, sink)
		return
	}
	if a.Vec != nil {
		v, ok := a.Vec.Table.Get(env.Keys[a.Vec.KeySlot])
		if !ok {
			return
		}
		if a.Vec.ValSlot >= 0 {
			env.Vals[a.Vec.ValSlot] = v
		}
		r.evalFrom(ai+1, env, sink)
		return
	}
	e := a.Edge
	src := env.Keys[e.SrcSlot]
	if e.DstBound {
		if e.Table.Contains(src, env.Keys[e.DstSlot]) {
			r.evalFrom(ai+1, env, sink)
		}
		return
	}
	adj := e.Table.Neighbors(src)
	wts := e.Table.Weights(src)
	for i, dst := range adj {
		env.Keys[e.DstSlot] = dst
		if e.WeightSlot >= 0 && wts != nil {
			env.setScalar(e.WeightSlot, float64(wts[i]))
		}
		r.evalFrom(ai+1, env, sink)
	}
}

// one is the constant emitted by $INC(1) heads; sinks must not retain or
// mutate emitted values (they may alias shared or scratch storage).
var one = Value{1}

// EvalVecDriver evaluates the rule for driver keys in [lo,hi); delta, when
// non-nil, restricts evaluation to those keys (semi-naive evaluation of
// recursive rules).
func (r *Rule) EvalVecDriver(lo, hi uint32, delta []uint32, sink emit) error {
	d := r.Driver.Vec
	if d == nil {
		return fmt.Errorf("socialite: rule %s has no vec driver", r.Name)
	}
	env := &Env{Keys: make([]uint32, r.KeySlots), Vals: make([]Value, r.ValSlots)}
	visit := func(key uint32) {
		val, ok := d.Table.Get(key)
		if !ok {
			return
		}
		env.Keys[d.KeySlot] = key
		if d.ValSlot >= 0 {
			env.Vals[d.ValSlot] = val
		}
		r.evalFrom(0, env, sink)
	}
	if delta != nil {
		for _, key := range delta {
			if key >= lo && key < hi {
				visit(key)
			}
		}
		return nil
	}
	for key := lo; key < hi; key++ {
		visit(key)
	}
	return nil
}

// EvalEdgeDriver evaluates the rule for edge tuples whose src lies in
// [lo,hi).
func (r *Rule) EvalEdgeDriver(lo, hi uint32, sink emit) error {
	d := r.Driver.Edge
	if d == nil {
		return fmt.Errorf("socialite: rule %s has no edge driver", r.Name)
	}
	env := &Env{Keys: make([]uint32, r.KeySlots), Vals: make([]Value, r.ValSlots)}
	for src := lo; src < hi; src++ {
		adj := d.Table.Neighbors(src)
		wts := d.Table.Weights(src)
		env.Keys[d.SrcSlot] = src
		for i, dst := range adj {
			env.Keys[d.DstSlot] = dst
			if d.WeightSlot >= 0 && wts != nil {
				env.setScalar(d.WeightSlot, float64(wts[i]))
			}
			r.evalFrom(0, env, sink)
		}
	}
	return nil
}
