package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertContains(t *testing.T) {
	s := New(16)
	keys := []uint32{0, 1, 42, 1 << 20, 7, 9}
	for _, k := range keys {
		if !s.Insert(k) {
			t.Errorf("Insert(%d) reported duplicate on first insert", k)
		}
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Errorf("Contains(%d) = false after insert", k)
		}
	}
	for _, k := range []uint32{2, 3, 100, 1 << 21} {
		if s.Contains(k) {
			t.Errorf("Contains(%d) = true for absent key", k)
		}
	}
}

func TestInsertDuplicate(t *testing.T) {
	s := New(4)
	s.Insert(5)
	if s.Insert(5) {
		t.Error("duplicate insert reported as new")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestSentinelKey(t *testing.T) {
	s := New(4)
	max := ^uint32(0)
	if s.Contains(max) {
		t.Error("fresh set contains sentinel")
	}
	if !s.Insert(max) {
		t.Error("sentinel insert failed")
	}
	if !s.Contains(max) {
		t.Error("sentinel not found after insert")
	}
	if s.Insert(max) {
		t.Error("duplicate sentinel insert reported new")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestGrowth(t *testing.T) {
	s := New(2) // deliberately undersized
	const n = 10000
	for i := uint32(0); i < n; i++ {
		s.Insert(i * 2654435761) // well-spread keys
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := uint32(0); i < n; i++ {
		if !s.Contains(i * 2654435761) {
			t.Fatalf("key %d lost during growth", i)
		}
	}
}

func TestForEach(t *testing.T) {
	s := New(8)
	want := map[uint32]bool{3: true, 17: true, 99: true}
	for k := range want {
		s.Insert(k)
	}
	got := map[uint32]bool{}
	s.ForEach(func(k uint32) { got[k] = true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("ForEach missed %d", k)
		}
	}
}

func TestIntersectCount(t *testing.T) {
	s := New(8)
	for _, k := range []uint32{1, 2, 3, 4} {
		s.Insert(k)
	}
	if got := s.IntersectCount([]uint32{2, 4, 6, 8}); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := s.IntersectCount(nil); got != 0 {
		t.Errorf("IntersectCount(nil) = %d, want 0", got)
	}
}

func TestQuickAgainstMapSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(8)
		ref := map[uint32]bool{}
		for op := 0; op < 3000; op++ {
			k := uint32(r.Intn(5000))
			if r.Intn(2) == 0 {
				if s.Insert(k) == ref[k] {
					return false // Insert's newness must mirror the map
				}
				ref[k] = true
			} else if s.Contains(k) != ref[k] {
				return false
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAdversarialSameBucketKeys(t *testing.T) {
	// Insert far more keys than two 4-slot buckets can hold even if many
	// collide; growth must resolve it.
	s := New(2)
	for i := uint32(0); i < 64; i++ {
		s.Insert(i)
	}
	for i := uint32(0); i < 64; i++ {
		if !s.Contains(i) {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	small := New(4).MemoryBytes()
	big := New(1 << 16).MemoryBytes()
	if big <= small {
		t.Errorf("MemoryBytes: big %d <= small %d", big, small)
	}
}
