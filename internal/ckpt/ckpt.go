// Package ckpt implements the checkpoint store of the fault-tolerance
// subsystem (DESIGN.md §10): engines snapshot their state every Interval
// steps into opaque blobs (serialized through internal/codec's record
// framing), and crash recovery restores the latest one. The store models
// the cost of stable storage — per-checkpoint latency plus bytes over a
// per-node bandwidth — so checkpoint writes and recovery reads charge the
// same virtual clock as compute and network time, which is how the paper's
// methodology would account them.
package ckpt

import (
	"fmt"
	"sync"
)

// Config sizes checkpointing for a run.
type Config struct {
	// Interval is the number of engine steps (supersteps, iterations)
	// between checkpoints; 0 disables checkpointing. Interval 1 matches
	// Pregel's default of checkpointing every superstep.
	Interval int
	// Bandwidth is the per-node write/read bandwidth to stable storage in
	// bytes/second (default 1 GB/s, an HDFS-over-10GbE-era figure; nodes
	// write their shards in parallel).
	Bandwidth float64
	// Latency is the fixed virtual-time cost per checkpoint or restore
	// (metadata commit, barrier; default 50 ms).
	Latency float64
}

// Enabled reports whether the configuration checkpoints at all.
func (c Config) Enabled() bool { return c.Interval > 0 }

// WithDefaults fills unset cost parameters.
func (c Config) WithDefaults() Config {
	if c.Bandwidth == 0 {
		c.Bandwidth = 1e9
	}
	if c.Latency == 0 {
		c.Latency = 0.05
	}
	return c
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("ckpt: negative interval %d", c.Interval)
	}
	if c.Bandwidth < 0 || c.Latency < 0 {
		return fmt.Errorf("ckpt: negative cost parameters")
	}
	return nil
}

// WriteSeconds models the virtual time one checkpoint write costs: fixed
// latency plus the blob sharded across nodes at the storage bandwidth.
func (c Config) WriteSeconds(bytes int64, nodes int) float64 {
	c = c.WithDefaults()
	if nodes < 1 {
		nodes = 1
	}
	return c.Latency + float64(bytes)/float64(nodes)/c.Bandwidth
}

// ReadSeconds models a restore read; symmetric with WriteSeconds.
func (c Config) ReadSeconds(bytes int64, nodes int) float64 {
	return c.WriteSeconds(bytes, nodes)
}

// Checkpoint is one saved snapshot.
type Checkpoint struct {
	// Step is the engine step the snapshot was taken at (the state is the
	// input to that step).
	Step int
	// Phases is the cluster's executed-phase count at save time; recovery
	// uses it to count rolled-back phases.
	Phases int
	// Data is the opaque engine+cluster state blob.
	Data []byte
}

// Store holds a run's checkpoints and the write/read statistics the
// metrics layer reports. It is safe for concurrent use.
type Store struct {
	cfg Config

	mu     sync.Mutex
	ckpts  []Checkpoint
	bytes  int64
	writes int
}

// NewStore returns a store for the configuration (nil when checkpointing
// is disabled, so callers can gate on the store).
func NewStore(cfg Config) *Store {
	if !cfg.Enabled() {
		return nil
	}
	return &Store{cfg: cfg.WithDefaults()}
}

// Config returns the store's (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// Interval returns the checkpoint interval in steps.
func (s *Store) Interval() int { return s.cfg.Interval }

// Due reports whether a checkpoint should be taken before the given step.
func (s *Store) Due(step int) bool {
	if s == nil {
		return false
	}
	return step%s.cfg.Interval == 0
}

// Save records a snapshot taken at the given step. The blob is retained,
// not copied; the caller must not mutate it afterwards. Returns the write
// cost in virtual seconds for a cluster of the given node count.
func (s *Store) Save(step, phases int, data []byte, nodes int) float64 {
	s.mu.Lock()
	s.ckpts = append(s.ckpts, Checkpoint{Step: step, Phases: phases, Data: data})
	s.bytes += int64(len(data))
	s.writes++
	s.mu.Unlock()
	return s.cfg.WriteSeconds(int64(len(data)), nodes)
}

// Latest returns the most recent checkpoint.
func (s *Store) Latest() (Checkpoint, bool) {
	if s == nil {
		return Checkpoint{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ckpts) == 0 {
		return Checkpoint{}, false
	}
	return s.ckpts[len(s.ckpts)-1], true
}

// Stats reports total bytes written and the write count.
func (s *Store) Stats() (bytes int64, writes int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, s.writes
}
