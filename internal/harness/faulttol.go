package harness

import (
	"fmt"

	"graphmaze/internal/ckpt"
	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/fault"
	"graphmaze/internal/giraph"
	"graphmaze/internal/metrics"
	"graphmaze/internal/native"
)

// FaultTolerance is the DESIGN.md §10 experiment: the paper's frameworks
// all pay for fault tolerance (Giraph checkpoints supersteps, GraphLab
// snapshots), but the paper benchmarks them with it disabled. This
// experiment quantifies what the maze leaves out, on the simulated
// cluster's cost model:
//
//  1. Checkpoint overhead: PageRank runtime vs checkpoint interval,
//     fault-free, for the native and Giraph engines.
//  2. Recovery cost: a node crash injected at increasing depths, with
//     the recovery driver rolling back to the last checkpoint and
//     replaying. Output is verified bit-identical to the fault-free run.
//
// -faults overrides the injected plan (fault.ParsePlan grammar) and
// -ckpt-interval the recovery runs' checkpoint interval.
func FaultTolerance(opt Options) error {
	opt = opt.withDefaults()
	scale := opt.Scale
	if scale == 0 {
		scale = 12
		if opt.Quick {
			scale = 9
		}
	}
	nodes := 4
	if len(opt.Nodes) > 0 {
		nodes = opt.Nodes[0]
	}
	in, err := buildInputs(scale, 51)
	if err != nil {
		return err
	}

	type engineRun struct {
		name string
		run  func(cfg *cluster.Config) (ranks []float64, rep metrics.Report, err error)
	}
	engs := []engineRun{
		{"Native", func(cfg *cluster.Config) ([]float64, metrics.Report, error) {
			res, err := native.New().PageRank(in.pr, core.PageRankOptions{
				Iterations: opt.Iterations, Exec: core.Exec{Cluster: cfg, Trace: opt.Trace}})
			if err != nil {
				return nil, metrics.Report{}, err
			}
			return res.Ranks, res.Stats.Report, nil
		}},
		{"Giraph", func(cfg *cluster.Config) ([]float64, metrics.Report, error) {
			res, err := giraph.New().PageRank(in.pr, core.PageRankOptions{
				Iterations: opt.Iterations, Exec: core.Exec{Cluster: cfg, Trace: opt.Trace}})
			if err != nil {
				return nil, metrics.Report{}, err
			}
			return res.Ranks, res.Stats.Report, nil
		}},
	}
	record := func(eng, algo string, rep metrics.Report, err error) {
		if opt.rec == nil {
			return
		}
		rec := RunRecord{Engine: eng, Algo: algo, Nodes: nodes, Seconds: rep.SimulatedSeconds}
		if err != nil {
			rec.Error = err.Error()
		}
		if rep.SimulatedSeconds > 0 {
			r := rep
			rec.Report = &r
		}
		*opt.rec = append(*opt.rec, rec)
	}

	// Part 1: fault-free checkpoint-interval ablation. Interval 0 (off) is
	// the baseline each overhead percentage is relative to.
	intervals := []int{0, 1, 2, 4}
	if opt.Quick {
		intervals = []int{0, 2}
	}
	if opt.CkptInterval > 0 {
		seen := false
		for _, iv := range intervals {
			seen = seen || iv == opt.CkptInterval
		}
		if !seen {
			intervals = append(intervals, opt.CkptInterval)
		}
	}

	fmt.Fprintf(opt.Out, "checkpoint overhead (PageRank, %d iterations, %d nodes, scale %d):\n",
		opt.Iterations, nodes, scale)
	tw := &tableWriter{header: []string{"Engine", "Interval", "Runtime", "Ckpts", "Ckpt data", "Ckpt time", "Overhead"}}
	baselineRanks := map[string][]float64{}
	for _, eng := range engs {
		var base float64
		for _, interval := range intervals {
			ranks, rep, err := eng.run(&cluster.Config{Nodes: nodes, Trace: opt.Trace,
				Ckpt: ckpt.Config{Interval: interval}})
			record(eng.name, fmt.Sprintf("PageRank/ckpt=%d", interval), rep, err)
			if err != nil {
				return fmt.Errorf("%s interval %d: %w", eng.name, interval, err)
			}
			if interval == 0 {
				base = rep.SimulatedSeconds
				baselineRanks[eng.name] = ranks
			}
			overhead := "-"
			if interval > 0 && base > 0 {
				overhead = fmt.Sprintf("+%.1f%%", 100*(rep.SimulatedSeconds-base)/base)
			}
			tw.addRow(eng.name, intervalLabel(interval), formatSeconds(rep.SimulatedSeconds),
				fmt.Sprintf("%d", rep.Checkpoints), formatBytes(rep.CheckpointBytes),
				formatSeconds(rep.CheckpointSeconds), overhead)
		}
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "note: the checkpoint cost model charges a fixed per-write latency (HDFS-like), so overhead\n"+
		"percentages are steep at synthetic scales; the interval tradeoff is the meaningful shape")

	// Part 2: recovery cost. Either the user's plan or a crash-depth sweep:
	// the later the crash, the more phases replay (up to the interval).
	interval := opt.CkptInterval
	if interval == 0 {
		interval = 2
	}
	specs := []string{"crash@2:n1", "crash@5:n1", "crash@8:n1"}
	if opt.Quick {
		specs = specs[:2]
	}
	if opt.Faults != "" {
		specs = []string{opt.Faults}
	}

	fmt.Fprintf(opt.Out, "\nrecovery cost (checkpoint interval %d):\n", interval)
	tw = &tableWriter{header: []string{"Engine", "Faults", "Runtime", "Recoveries", "Replayed", "Recovery time", "Output"}}
	for _, eng := range engs {
		for _, spec := range specs {
			plan, err := fault.ParsePlan(spec)
			if err != nil {
				return fmt.Errorf("faulttol: -faults %q: %w", spec, err)
			}
			ranks, rep, err := eng.run(&cluster.Config{Nodes: nodes, Trace: opt.Trace,
				Fault: plan, Ckpt: ckpt.Config{Interval: interval}})
			record(eng.name, fmt.Sprintf("PageRank/faults=%s", spec), rep, err)
			if err != nil {
				tw.addRow(eng.name, spec, "-", "-", "-", "-", "failed: "+err.Error())
				continue
			}
			verdict := outputVerdict(baselineRanks[eng.name], ranks)
			// Range faults (slow/degrade) apply without being consumed, so
			// only unfired one-shot events mean the plan never triggered.
			oneShotLeft := 0
			for _, e := range plan.Events() {
				if e.Kind == fault.Crash || e.Kind == fault.Drop || e.Kind == fault.Truncate {
					oneShotLeft++
				}
			}
			if len(plan.Fired()) == 0 && oneShotLeft > 0 {
				verdict += " (fault not reached)"
			}
			tw.addRow(eng.name, spec, formatSeconds(rep.SimulatedSeconds),
				fmt.Sprintf("%d", rep.Recoveries), fmt.Sprintf("%d", rep.ReplayedPhases),
				formatSeconds(rep.RecoverySeconds), verdict)
		}
	}
	tw.write(opt.Out)
	fmt.Fprintln(opt.Out, "output column compares against the fault-free run bit-for-bit: recovery must not change results")
	return nil
}

func intervalLabel(interval int) string {
	if interval == 0 {
		return "off"
	}
	return fmt.Sprintf("%d", interval)
}

func formatBytes(b int64) string {
	switch {
	case b <= 0:
		return "-"
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}

// outputVerdict reports whether the recovered run's output matches the
// fault-free baseline exactly (the subsystem's determinism contract).
func outputVerdict(want, got []float64) string {
	if len(want) == 0 || len(got) != len(want) {
		return "?"
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("DIFFERS at %d", i)
		}
	}
	return "identical"
}
