package trace

import (
	"runtime"
	"sync/atomic"

	"graphmaze/internal/obs"
)

// paddedInt64 keeps each worker's lane on its own cache line so concurrent
// Adds from different workers never false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a named monotonic counter with per-worker padded lanes. Hot
// loops Add into their own lane (indexed by worker id); readers sum the
// lanes. The nil Counter is the disabled mode: Add costs one pointer
// check and Value reports zero.
type Counter struct {
	name  string
	mask  uint32
	lanes []paddedInt64
}

// laneCount rounds the host's parallelism up to a power of two so the
// worker→lane map is a mask, not a modulo.
func laneCount() int {
	n := runtime.GOMAXPROCS(0)
	k := 1
	for k < n {
		k <<= 1
	}
	return k
}

func newCounter(name string) *Counter {
	k := laneCount()
	return &Counter{name: name, mask: uint32(k - 1), lanes: make([]paddedInt64, k)}
}

// Name reports the counter's registration name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add accumulates delta into worker's lane. Worker ids beyond the lane
// count wrap by the power-of-two mask — worker w and worker w+laneCount
// share a lane and their Adds interleave atomically on the same word.
// Correctness never depends on lane placement (Value sums every lane, so
// it always equals the sum of all deltas; TestCounterAliasedWorkersExact
// pins this under -race); only the scaling benefit of private lanes
// degrades when callers alias.
func (c *Counter) Add(worker int, delta int64) {
	if c == nil {
		return
	}
	c.lanes[uint32(worker)&c.mask].v.Add(delta)
}

// Inc is Add(worker, 1).
func (c *Counter) Inc(worker int) { c.Add(worker, 1) }

// Value sums all lanes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.lanes {
		total += c.lanes[i].v.Load()
	}
	return total
}

// Lanes returns a snapshot of the per-worker lane values.
func (c *Counter) Lanes() []int64 {
	if c == nil {
		return nil
	}
	out := make([]int64, len(c.lanes))
	for i := range c.lanes {
		out[i] = c.lanes[i].v.Load()
	}
	return out
}

// Counter returns the tracer's counter with the given name, creating it on
// first use. Returns nil — the disabled counter — on the nil tracer, so
// callers cache the result and Add unconditionally.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counterLocked(name)
}

func (t *Tracer) counterLocked(name string) *Counter {
	if c, ok := t.counters[name]; ok {
		return c
	}
	c := newCounter(name)
	t.counters[name] = c
	t.order = append(t.order, name)
	// Mirror the counter into the unified registry so exposition sees it
	// alongside gauges and histograms; Value is a lock-free lane sum, safe
	// to call from any sampler.
	t.reg.CounterFunc(name, c.Value)
	return c
}

// SchedCounters bundles the scheduling-layer counters par's loops feed:
// chunks claimed, loop indices processed, and busy nanoseconds, each with
// one lane per worker so load imbalance is readable straight from the
// lanes.
type SchedCounters struct {
	// Chunks counts chunks claimed (one per body invocation).
	Chunks *Counter
	// Items counts loop indices processed (hi-lo per chunk).
	Items *Counter
	// BusyNS counts nanoseconds spent inside loop bodies.
	BusyNS *Counter
	// ClaimNS is the chunk-claim latency histogram ("par.claim_ns"): the
	// nanoseconds a dynamic-scheduling worker spends between asking the
	// shared cursor for a chunk and entering the body. Its tail is the
	// direct cost of cursor contention under skew.
	ClaimNS *obs.Histogram
}

// Sched returns the tracer's scheduling counter bundle ("par.chunks",
// "par.items", "par.busy_ns"), creating it on first use. Nil on the
// disabled tracer.
func (t *Tracer) Sched() *SchedCounters {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sched == nil {
		t.sched = &SchedCounters{
			Chunks:  t.counterLocked("par.chunks"),
			Items:   t.counterLocked("par.items"),
			BusyNS:  t.counterLocked("par.busy_ns"),
			ClaimNS: t.reg.Hist("par.claim_ns"),
		}
	}
	return t.sched
}

// Imbalance reports max/mean busy nanoseconds across the workers that did
// any work — 1.0 is a perfectly balanced schedule, 2.0 means the slowest
// worker carried twice the average. Zero when nothing was recorded.
func (s *SchedCounters) Imbalance() float64 {
	if s == nil {
		return 0
	}
	lanes := s.BusyNS.Lanes()
	var sum, max int64
	active := 0
	for _, v := range lanes {
		if v == 0 {
			continue
		}
		active++
		sum += v
		if v > max {
			max = v
		}
	}
	if active == 0 || sum == 0 {
		return 0
	}
	return float64(max) * float64(active) / float64(sum)
}
