package harness

import (
	"bytes"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, Options{Out: &buf, Quick: true, Iterations: 2}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	var buf bytes.Buffer
	if err := Run("bogus", Options{Out: &buf}); err == nil {
		t.Error("accepted unknown experiment id")
	}
}

func TestTable4Quick(t *testing.T) {
	out := runQuick(t, "table4")
	for _, frag := range []string{"PageRank", "BFS", "CollabFilter", "TriangleCount", "Memory BW"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table4 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	out := runQuick(t, "table5")
	for _, frag := range []string{"CombBLAS", "GraphLab", "SociaLite", "Giraph", "Galois"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table5 output missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "PageRank") {
		t.Errorf("table5 missing algorithm rows:\n%s", out)
	}
}

func TestTable6Quick(t *testing.T) {
	out := runQuick(t, "table6")
	// Galois has no multi-node runs.
	if !strings.Contains(out, "n/a") {
		t.Errorf("table6 should mark Galois n/a:\n%s", out)
	}
}

func TestTable7Quick(t *testing.T) {
	out := runQuick(t, "table7")
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "×") {
		t.Errorf("table7 output malformed:\n%s", out)
	}
}

func TestFigure3Quick(t *testing.T) {
	out := runQuick(t, "fig3")
	for _, frag := range []string{"livejournal", "facebook", "netflix", "PageRank", "CollabFilter"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig3 output missing %q", frag)
		}
	}
}

func TestFigure4Quick(t *testing.T) {
	out := runQuick(t, "fig4")
	if !strings.Contains(out, "weak scaling") || !strings.Contains(out, "nodes") {
		t.Errorf("fig4 output malformed:\n%s", out)
	}
}

func TestFigure5Quick(t *testing.T) {
	out := runQuick(t, "fig5")
	for _, frag := range []string{"Twitter", "Yahoo Music"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig5 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure6Quick(t *testing.T) {
	out := runQuick(t, "fig6")
	for _, frag := range []string{"CPU util", "peak net BW", "memory", "bytes sent"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig6 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure7Quick(t *testing.T) {
	out := runQuick(t, "fig7")
	for _, frag := range []string{"baseline", "+compression", "+overlap", "speedup"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig7 output missing %q:\n%s", frag, out)
		}
	}
}

func TestGiraphRoadmapQuick(t *testing.T) {
	out := runQuick(t, "giraphfix")
	for _, frag := range []string{"stock Giraph", "roadmap", "native reference"} {
		if !strings.Contains(out, frag) {
			t.Errorf("giraphfix output missing %q:\n%s", frag, out)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	if out := runQuick(t, "tcablation"); !strings.Contains(out, "speedup") {
		t.Errorf("tcablation output malformed:\n%s", out)
	}
	if out := runQuick(t, "giraphsplit"); !strings.Contains(out, "phased") {
		t.Errorf("giraphsplit output malformed:\n%s", out)
	}
	if out := runQuick(t, "sgdgd"); !strings.Contains(out, "SGD") {
		t.Errorf("sgdgd output malformed:\n%s", out)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "-",
		5e-7:   "1µs",
		0.0025: "2.50ms",
		1.5:    "1.5s",
	}
	for in, want := range cases {
		if got := formatSeconds(in); got != want && in != 5e-7 {
			t.Errorf("formatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatSeconds(5e-7); !strings.HasSuffix(got, "µs") {
		t.Errorf("formatSeconds(5e-7) = %q", got)
	}
}

func TestIsSquare(t *testing.T) {
	squares := map[int]bool{1: true, 4: true, 9: true, 16: true, 2: false, 8: false, 12: false}
	for n, want := range squares {
		if isSquare(n) != want {
			t.Errorf("isSquare(%d) = %v", n, !want)
		}
	}
}
