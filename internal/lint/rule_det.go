package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetRule is the determinism family. Bit-identical output across
// engines and across GOMAXPROCS values is the repo's core contract, so
// inside engine and checkpoint packages it flags the three ways order
// nondeterminism sneaks in:
//
//   - ranging over a map while feeding an order-sensitive sink: calls
//     like Send/Encode/Write, or appends into state declared outside the
//     loop. Collect-keys-then-sort is the blessed idiom and is not
//     flagged (the appended slice is passed to a sort in the same
//     function).
//   - wall-clock time (time.Now/Since) or the unseeded global math/rand
//     generator reachable — through the package call graph — from
//     parallel kernel bodies or codec functions (encode/decode/
//     snapshot/marshal).
//   - floating-point accumulation into a shared scalar inside a
//     par.For* body: float addition is not associative, so reduction
//     order must be fixed per worker, not raced over.
type DetRule struct{}

// Name implements Rule.
func (*DetRule) Name() string { return "det" }

// Doc implements Rule.
func (*DetRule) Doc() string {
	return "map iteration, wall clock, global rand, and float accumulation must not leak nondeterminism into engine output"
}

// Check implements Rule.
func (r *DetRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isEngine(p.Rel) && !strings.Contains(p.Rel, "ckpt") {
		return
	}
	cg := BuildCallGraph(p)
	reported := make(map[token.Pos]bool)
	flag := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			report(pos, format, args...)
		}
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			r.checkMapRanges(p, fn, flag)
			r.checkParBodies(p, cg, fn, flag)
			if isCodecName(fn.Name.Name) {
				r.checkImpureReach(p, cg, fn, flag)
			}
		}
	}
}

// isCodecName reports whether a function name marks a codec path whose
// byte stream must be reproducible.
func isCodecName(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"encode", "decode", "snapshot", "marshal", "checksum"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

// orderSinkNames are method names whose call order is observable:
// message sends, stream/encoder writes, hashing.
var orderSinkNames = map[string]bool{
	"Send": true, "Encode": true, "Write": true, "WriteString": true,
	"WriteByte": true, "Sum": true, "Emit": true,
}

// checkMapRanges flags range-over-map loops whose bodies feed
// order-sensitive sinks.
func (r *DetRule) checkMapRanges(p *Package, fn *ast.FuncDecl, flag func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.CallExpr:
				if sel, ok := s.Fun.(*ast.SelectorExpr); ok && orderSinkNames[sel.Sel.Name] {
					flag(s.Pos(), "%s called while ranging over a map: iteration order is random per run; iterate sorted keys instead", sel.Sel.Name)
				}
			case *ast.SendStmt:
				flag(s.Pos(), "channel send while ranging over a map: the receiver observes a random order per run; iterate sorted keys instead")
			case *ast.AssignStmt:
				r.checkMapRangeAssign(p, fn, rng, s, flag)
			}
			return true
		})
		return true
	})
}

// checkMapRangeAssign flags appends into outer state and float
// accumulation inside a map-range body.
func (r *DetRule) checkMapRangeAssign(p *Package, fn *ast.FuncDecl, rng *ast.RangeStmt, s *ast.AssignStmt,
	flag func(pos token.Pos, format string, args ...any)) {
	// Float accumulation: order-dependent regardless of the sink.
	if s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN || s.Tok == token.MUL_ASSIGN || s.Tok == token.QUO_ASSIGN {
		for _, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || !isFloatExpr(p, lhs) {
				continue
			}
			if obj := p.Info.Uses[id]; obj != nil && !within(obj.Pos(), rng) {
				flag(s.Pos(), "floating-point accumulation into %s while ranging over a map: float addition is not associative, so the result depends on iteration order", id.Name)
			}
		}
		return
	}
	// Appends into a destination declared outside the range: the
	// destination's element order now depends on map iteration order —
	// unless the slice is sorted afterwards (collect-then-sort idiom).
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) || i >= len(s.Lhs) {
			continue
		}
		root := exprRootOfChain(p, s.Lhs[i])
		if root == nil || within(root.Pos(), rng) {
			continue
		}
		if sortedLater(p, fn.Body, root) {
			continue
		}
		flag(s.Pos(), "append to %s while ranging over a map makes its element order random per run; iterate sorted keys, or sort the result before use", types.ExprString(s.Lhs[i]))
	}
}

// within reports whether pos falls inside node n's source span.
func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// isFloatExpr reports whether e has floating-point type.
func isFloatExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// exprRootOfChain resolves the base object of an lvalue: the identifier
// at the root of any selector/index chain.
func exprRootOfChain(p *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether the function passes obj to a sort call —
// the collect-then-sort idiom that makes map collection deterministic.
func sortedLater(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if exprRootOfChain(p, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// checkParBodies scans the function-literal bodies handed to par.For*
// for wall-clock reads, global rand, and shared float accumulation.
func (r *DetRule) checkParBodies(p *Package, cg *CallGraph, fn *ast.FuncDecl,
	flag func(pos token.Pos, format string, args ...any)) {
	forEachParBody(p, fn.Body, func(callName string, lit *ast.FuncLit) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.CallExpr:
				callee := calleeFunc(p, s)
				if callee == nil {
					return true
				}
				switch {
				case isWallClockFunc(callee):
					flag(s.Pos(), "time.%s inside a %s body: wall-clock reads in parallel kernels vary run to run; use the virtual clock or time outside the loop", callee.Name(), callName)
				case isGlobalRandFunc(callee):
					flag(s.Pos(), "global math/rand.%s inside a %s body is unseeded and nondeterministic; draw from an explicit rand.New(rand.NewSource(seed))", callee.Name(), callName)
				case callee.Pkg() == p.Types:
					if cg.ReachesWallClock(callee) {
						flag(s.Pos(), "%s reaches time.Now/Since and is called inside a %s body; kernels must not read the wall clock", callee.Name(), callName)
					}
					if cg.ReachesGlobalRand(callee) {
						flag(s.Pos(), "%s reaches the global math/rand generator and is called inside a %s body; pass a seeded *rand.Rand instead", callee.Name(), callName)
					}
				}
			case *ast.AssignStmt:
				if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN && s.Tok != token.MUL_ASSIGN {
					return true
				}
				for _, lhs := range s.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || !isFloatExpr(p, lhs) {
						continue
					}
					if obj := p.Info.Uses[id]; obj != nil && !within(obj.Pos(), lit) {
						flag(s.Pos(), "floating-point accumulation into %s, captured from outside a %s body: reduction order depends on scheduling; accumulate per worker and combine in a fixed order", id.Name, callName)
					}
				}
			}
			return true
		})
	})
}

// checkImpureReach flags codec functions that can reach wall-clock or
// global-rand calls through the package call graph.
func (r *DetRule) checkImpureReach(p *Package, cg *CallGraph, fn *ast.FuncDecl,
	flag func(pos token.Pos, format string, args ...any)) {
	obj, ok := p.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	if cg.ReachesWallClock(obj) {
		pos, via := impureWitness(cg, obj, 0)
		flag(pos, "codec function %s reaches time.Now/Since (in %s): encoded bytes must not depend on the wall clock", fn.Name.Name, via)
	}
	if cg.ReachesGlobalRand(obj) {
		pos, via := impureWitness(cg, obj, 1)
		flag(pos, "codec function %s reaches the global math/rand generator (in %s): encoded bytes must be reproducible", fn.Name.Name, via)
	}
}

// impureWitness walks the call graph to the first function with a direct
// impure call and returns its site and name.
func impureWitness(cg *CallGraph, fn *types.Func, what int) (token.Pos, string) {
	visited := make(map[*types.Func]bool)
	var walk func(f *types.Func) (token.Pos, string, bool)
	walk = func(f *types.Func) (token.Pos, string, bool) {
		if visited[f] {
			return token.NoPos, "", false
		}
		visited[f] = true
		s := cg.Summary(f)
		if s == nil {
			return token.NoPos, "", false
		}
		if what == 0 && s.WallClock {
			return s.WallClockPos, f.Name(), true
		}
		if what == 1 && s.GlobalRand {
			return s.GlobalRandPos, f.Name(), true
		}
		for _, c := range s.Callees {
			if pos, via, ok := walk(c); ok {
				return pos, via, true
			}
		}
		return token.NoPos, "", false
	}
	if pos, via, ok := walk(fn); ok {
		return pos, via
	}
	return fn.Pos(), fn.Name()
}

// forEachParBody finds every call of the form par.ForXxx(...) inside
// body and yields each function-literal argument: the hot parallel
// kernel bodies the det and hotalloc rules scope to.
func forEachParBody(p *Package, body *ast.BlockStmt, visit func(callName string, lit *ast.FuncLit)) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !strings.HasPrefix(sel.Sel.Name, "For") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok || pkgName.Imported().Name() != "par" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				visit("par."+sel.Sel.Name, lit)
			}
		}
		return true
	})
}
