package graphlab

import (
	"graphmaze/internal/bitvec"
	"graphmaze/internal/graph"
)

// runLocalAsync executes the program with GraphLab's asynchronous engine
// semantics (the paper: GraphLab "works by letting vertices in a graph
// read incoming messages, update the values and send messages
// asynchronously"): there are no rounds — a scheduler drains a queue of
// active vertices, every Apply is immediately visible to subsequent
// Gathers, and activations append to the queue. maxUpdates bounds the
// total vertex updates (a safety net for non-converging programs).
//
// Only programs whose fixpoint is order-independent (monotone updates like
// BFS's min, or contractions like PageRank) should run asynchronously —
// the same restriction the real engine places on its users.
func runLocalAsync[V, G any](g *graph.CSR, in *graph.CSR, spec Spec[V, G], maxUpdates int64) runResult[V] {
	n := g.NumVertices
	outDeg := g.OutDegrees()
	vals := make([]V, n)
	for i := range vals {
		vals[i] = spec.Init(uint32(i))
	}

	queue := make([]uint32, 0, n)
	queued := bitvec.New(n) // dedups scheduler entries
	schedule := func(v uint32) {
		if !queued.Get(v) {
			queued.Set(v)
			queue = append(queue, v)
		}
	}
	if spec.InitialActive == nil {
		for v := uint32(0); v < n; v++ {
			schedule(v)
		}
	} else {
		for _, v := range spec.InitialActive {
			schedule(v)
		}
	}

	var updates int64
	head := 0
	for head < len(queue) {
		if maxUpdates > 0 && updates >= maxUpdates {
			break
		}
		v := queue[head]
		head++
		queued.Clear(v)
		// Compact the drained prefix occasionally.
		if head > 1<<16 && head*2 > len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}

		acc := spec.GatherZero()
		row, wts := in.Neighbors(v), in.EdgeWeights(v)
		for i, src := range row {
			var w float32 = 1
			if wts != nil {
				w = wts[i]
			}
			acc = spec.Gather(acc, src, vals[src], outDeg[src], w)
		}
		nv, changed, act := spec.Apply(v, vals[v], acc, len(row) > 0)
		updates++
		if changed {
			vals[v] = nv // immediately visible: asynchronous semantics
		}
		switch act {
		case ActivateSelf:
			schedule(v)
		case ActivateNeighbors:
			for _, t := range g.Neighbors(v) {
				schedule(t)
			}
		}
	}
	return runResult[V]{vals: vals, rounds: int(updates)}
}
