package par

import (
	"sync/atomic"
	"testing"

	"graphmaze/internal/trace"
)

// TestSchedCountersObserveLoops checks the scheduling counters see every
// chunk and item a loop processes, across all three loop families.
func TestSchedCountersObserveLoops(t *testing.T) {
	tr := trace.New()
	SetSchedCounters(tr.Sched())
	defer SetSchedCounters(nil)

	const n = 1000
	var touched atomic.Int64

	before := tr.Sched().Items.Value()
	ForWorkersIndexed(4, n, func(w, lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	if got := tr.Sched().Items.Value() - before; got != n {
		t.Errorf("ForWorkersIndexed counted %d items, want %d", got, n)
	}

	before = tr.Sched().Items.Value()
	ForDynamicIndexed(n, 64, func(w, lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	if got := tr.Sched().Items.Value() - before; got != n {
		t.Errorf("ForDynamicIndexed counted %d items, want %d", got, n)
	}

	offsets := make([]int64, n+1)
	for i := range offsets {
		offsets[i] = int64(i) * 3
	}
	before = tr.Sched().Items.Value()
	ForOffsetsWorkers(4, offsets, func(lo, hi int) {
		touched.Add(int64(hi - lo))
	})
	if got := tr.Sched().Items.Value() - before; got != n {
		t.Errorf("ForOffsetsWorkers counted %d items, want %d", got, n)
	}

	if touched.Load() != 3*n {
		t.Errorf("loops touched %d items, want %d", touched.Load(), 3*n)
	}
	if tr.Sched().Chunks.Value() == 0 {
		t.Error("no chunks recorded")
	}
	if tr.Sched().BusyNS.Value() < 0 {
		t.Error("negative busy time")
	}
}

// TestSchedCountersDetached: with no counters attached the loops run
// uninstrumented and nothing accumulates.
func TestSchedCountersDetached(t *testing.T) {
	tr := trace.New()
	SetSchedCounters(nil)
	ForDynamicIndexed(100, 10, func(w, lo, hi int) {})
	if got := tr.Sched().Items.Value(); got != 0 {
		t.Errorf("detached counters saw %d items", got)
	}
}
