package cluster

import (
	"testing"
	"time"

	"graphmaze/internal/trace"
)

// TestRunPhaseEmitsSpans: every phase records one virtual span per node
// whose duration is the phase's wall clock, with compute/network/wait
// attribution summing to it — so the per-node span timeline covers
// SimulatedSeconds exactly.
func TestRunPhaseEmitsSpans(t *testing.T) {
	tr := trace.New()
	cfg := testConfig(3)
	cfg.Trace = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < 2; phase++ {
		err := c.RunPhase(func(n int) error {
			// Skewed compute so wait attribution is nonzero on fast nodes.
			time.Sleep(time.Duration(n+1) * 2 * time.Millisecond)
			if n == 0 {
				c.Send(0, 1, make([]byte, 1<<20))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	evs := tr.Events()
	if len(evs) != 2*3 {
		t.Fatalf("recorded %d spans, want 6 (2 phases × 3 nodes)", len(evs))
	}
	rep := c.Report()
	// RecordVirtual truncates to whole nanoseconds, so allow 1µs slack.
	const tol = 1e-6
	perNode := make(map[int]float64)
	for _, ev := range evs {
		if ev.Cat != "cluster.phase" {
			t.Fatalf("span cat = %q", ev.Cat)
		}
		dur := float64(ev.DurNS) / 1e9
		perNode[ev.Pid] += dur
		attributed := ev.Args["compute_sec"] + ev.Args["network_sec"] + ev.Args["wait_sec"]
		if diff := attributed - dur; diff > tol || diff < -tol {
			t.Errorf("pid %d span %q: attribution %v != duration %v", ev.Pid, ev.Name, attributed, dur)
		}
		if ev.Args["wait_sec"] < 0 {
			t.Errorf("negative wait on pid %d: %v", ev.Pid, ev.Args)
		}
	}
	if len(perNode) != 3 {
		t.Fatalf("spans cover %d node tracks, want 3", len(perNode))
	}
	for pid, sum := range perNode {
		if pid < trace.PidNodeBase {
			t.Errorf("cluster span on non-node pid %d", pid)
		}
		if diff := sum - rep.SimulatedSeconds; diff > tol || diff < -tol {
			t.Errorf("pid %d spans cover %v, SimulatedSeconds %v", pid, sum, rep.SimulatedSeconds)
		}
	}
	if c.VirtualSeconds() != rep.SimulatedSeconds {
		t.Errorf("VirtualSeconds %v != SimulatedSeconds %v", c.VirtualSeconds(), rep.SimulatedSeconds)
	}

	// The report digest agrees: full span coverage of the simulation.
	full := trace.BuildReport(rep, tr)
	if cov := full.SpanCoverage(); cov < 0.95 {
		t.Errorf("SpanCoverage = %v, want ≥ 0.95", cov)
	}
}

// TestRunPhaseUntraced: a cluster without a tracer runs phases normally —
// the virtual clock advances, the report fills in, and no tracer is exposed.
func TestRunPhaseUntraced(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Tracer() != nil {
		t.Fatal("untraced cluster exposes a tracer")
	}
	for phase := 0; phase < 2; phase++ {
		if err := c.RunPhase(func(n int) error {
			c.Account(n, 1<<16, 4)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.Report()
	if rep.SimulatedSeconds <= 0 {
		t.Errorf("SimulatedSeconds = %v, want > 0", rep.SimulatedSeconds)
	}
	if c.VirtualSeconds() != rep.SimulatedSeconds {
		t.Errorf("VirtualSeconds %v != SimulatedSeconds %v", c.VirtualSeconds(), rep.SimulatedSeconds)
	}
}
