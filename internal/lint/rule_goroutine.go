package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineRule forbids fire-and-forget goroutines in the engine runtime
// packages: every `go` statement must have a join visible in the same
// top-level function — a sync.WaitGroup (or similar) Wait call, a channel
// receive, a range over a channel, or a select statement. Benchmarks that
// leak workers skew every timing the harness collects, so engine code
// either joins its goroutines or carries a //lint:ignore explaining who
// does.
type GoroutineRule struct{}

// Name implements Rule.
func (*GoroutineRule) Name() string { return "goroutine" }

// Doc implements Rule.
func (*GoroutineRule) Doc() string {
	return "engine goroutines must be joined (WaitGroup/channel) in the spawning function"
}

// Check implements Rule.
func (r *GoroutineRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isEngine(p.Rel) && p.Rel != "internal/gen" {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var spawns []*ast.GoStmt
			joined := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.GoStmt:
					spawns = append(spawns, e)
				case *ast.SelectStmt:
					joined = true
				case *ast.UnaryExpr:
					if e.Op == token.ARROW {
						joined = true
					}
				case *ast.RangeStmt:
					if isChannel(p, e.X) {
						joined = true
					}
				case *ast.CallExpr:
					if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						joined = true
					}
				}
				return true
			})
			if joined {
				continue
			}
			for _, g := range spawns {
				report(g.Pos(), "goroutine in %s is never joined: add a WaitGroup or channel join in the same function", fn.Name.Name)
			}
		}
	}
}

func isChannel(p *Package, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
