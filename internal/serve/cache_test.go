package serve

import (
	"fmt"
	"testing"
)

func TestCacheKeyIncludesEpoch(t *testing.T) {
	k0 := cacheKey("g", 0, "cc")
	k1 := cacheKey("g", 1, "cc")
	if k0 == k1 {
		t.Errorf("epoch 0 and 1 share a key: %s", k0)
	}
	if k0 != "g@0|cc" {
		t.Errorf("key format = %q, want g@0|cc", k0)
	}
	if cacheKey("g", 0, "cc") != k0 {
		t.Error("key not deterministic")
	}
}

func TestCacheHitMissCounting(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.put("a", []byte("body-a"))
	body, ok := c.get("a")
	if !ok || string(body) != "body-a" {
		t.Fatalf("get a = %q %v", body, ok)
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 1 {
		t.Errorf("hits %d misses %d, want 1 1", h, m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 is the LRU, then insert a fourth entry.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", []byte{3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.get("k1"); ok {
		t.Error("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("one"))
	c.put("b", []byte("two"))
	c.put("a", []byte("one'")) // refresh: a becomes most recent
	c.put("c", []byte("three"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted after a's refresh")
	}
	body, ok := c.get("a")
	if !ok || string(body) != "one'" {
		t.Errorf("a = %q %v, want refreshed body", body, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}
