package cluster

import (
	"testing"
	"time"

	"graphmaze/internal/trace"
)

// TestRunPhaseEmitsSpans: every phase records one virtual span per node
// whose duration is the phase's wall clock, with compute/network/wait
// attribution summing to it — so the per-node span timeline covers
// SimulatedSeconds exactly.
func TestRunPhaseEmitsSpans(t *testing.T) {
	tr := trace.New()
	cfg := testConfig(3)
	cfg.Trace = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < 2; phase++ {
		err := c.RunPhase(func(n int) error {
			// Skewed compute so wait attribution is nonzero on fast nodes.
			time.Sleep(time.Duration(n+1) * 2 * time.Millisecond)
			if n == 0 {
				c.Send(0, 1, make([]byte, 1<<20))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	evs := tr.Events()
	if len(evs) != 2*3 {
		t.Fatalf("recorded %d spans, want 6 (2 phases × 3 nodes)", len(evs))
	}
	rep := c.Report()
	// RecordVirtual truncates to whole nanoseconds, so allow 1µs slack.
	const tol = 1e-6
	perNode := make(map[int]float64)
	for _, ev := range evs {
		if ev.Cat != "cluster.phase" {
			t.Fatalf("span cat = %q", ev.Cat)
		}
		dur := float64(ev.DurNS) / 1e9
		perNode[ev.Pid] += dur
		attributed := ev.Args["compute_sec"] + ev.Args["network_sec"] + ev.Args["wait_sec"]
		if diff := attributed - dur; diff > tol || diff < -tol {
			t.Errorf("pid %d span %q: attribution %v != duration %v", ev.Pid, ev.Name, attributed, dur)
		}
		if ev.Args["wait_sec"] < 0 {
			t.Errorf("negative wait on pid %d: %v", ev.Pid, ev.Args)
		}
	}
	if len(perNode) != 3 {
		t.Fatalf("spans cover %d node tracks, want 3", len(perNode))
	}
	for pid, sum := range perNode {
		if pid < trace.PidNodeBase {
			t.Errorf("cluster span on non-node pid %d", pid)
		}
		if diff := sum - rep.SimulatedSeconds; diff > tol || diff < -tol {
			t.Errorf("pid %d spans cover %v, SimulatedSeconds %v", pid, sum, rep.SimulatedSeconds)
		}
	}
	if c.VirtualSeconds() != rep.SimulatedSeconds {
		t.Errorf("VirtualSeconds %v != SimulatedSeconds %v", c.VirtualSeconds(), rep.SimulatedSeconds)
	}

	// The report digest agrees: full span coverage of the simulation.
	full := trace.BuildReport(rep, tr)
	if cov := full.SpanCoverage(); cov < 0.95 {
		t.Errorf("SpanCoverage = %v, want ≥ 0.95", cov)
	}
}

// TestRunPhaseFeedsAttributionHistograms: each traced phase records one
// observation per node into the compute/network/wait/wall histograms, and
// the observed totals agree with the span attribution.
func TestRunPhaseFeedsAttributionHistograms(t *testing.T) {
	tr := trace.New()
	cfg := testConfig(3)
	cfg.Trace = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const phases = 4
	for phase := 0; phase < phases; phase++ {
		err := c.RunPhase(func(n int) error {
			time.Sleep(time.Duration(n+1) * time.Millisecond)
			c.Account(n, 1<<20, 8)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	hs := tr.Registry().HistSnapshots()
	for _, name := range []string{"cluster.compute_ns", "cluster.network_ns", "cluster.wait_ns", "cluster.phase_wall_ns"} {
		if got := hs[name]; got.Count != phases*3 {
			t.Errorf("%s count = %d, want %d", name, got.Count, phases*3)
		}
	}
	// Wall per observation is the phase wall clock, identical across the
	// phase's nodes; its histogram sum must therefore be nodes × virtual
	// seconds (up to ns truncation).
	wallSec := float64(hs["cluster.phase_wall_ns"].Sum) / 1e9
	if want := 3 * c.VirtualSeconds(); wallSec < want-1e-3 || wallSec > want+1e-3 {
		t.Errorf("phase_wall hist sum %v, want %v", wallSec, want)
	}
	// The trace summary quotes the same histograms as quantiles.
	s := trace.Summarize(tr)
	found := false
	for _, h := range s.Histograms {
		if h.Name == "cluster.compute_ns" && h.P50 > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("summary missing cluster.compute_ns quantiles: %+v", s.Histograms)
	}
}

// TestRunPhaseUntraced: a cluster without a tracer runs phases normally —
// the virtual clock advances, the report fills in, and no tracer is exposed.
func TestRunPhaseUntraced(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Tracer() != nil {
		t.Fatal("untraced cluster exposes a tracer")
	}
	for phase := 0; phase < 2; phase++ {
		if err := c.RunPhase(func(n int) error {
			c.Account(n, 1<<16, 4)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.Report()
	if rep.SimulatedSeconds <= 0 {
		t.Errorf("SimulatedSeconds = %v, want > 0", rep.SimulatedSeconds)
	}
	if c.VirtualSeconds() != rep.SimulatedSeconds {
		t.Errorf("VirtualSeconds %v != SimulatedSeconds %v", c.VirtualSeconds(), rep.SimulatedSeconds)
	}
}
