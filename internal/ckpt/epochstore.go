package ckpt

import (
	"fmt"
	"sync"

	"graphmaze/internal/graph"
)

// EpochStore persists the epochs of a versioned graph to (simulated)
// stable storage: each saved snapshot is framed through the graph codec
// and charged to the same latency-plus-bandwidth cost model checkpoints
// use, so an experiment can account epoch durability in the same virtual
// clock as compute. Unlike the step-driven checkpoint Store, the epoch
// store is keyed by epoch — restores target a version, not "the latest
// before the crash". It is safe for concurrent use.
type EpochStore struct {
	cfg Config

	mu     sync.Mutex
	blobs  map[graph.Epoch][]byte
	latest graph.Epoch
	bytes  int64
	writes int
}

// NewEpochStore returns a store with the configuration's cost model
// (Interval is ignored; epoch persistence is delta-driven, not
// step-driven).
func NewEpochStore(cfg Config) *EpochStore {
	return &EpochStore{cfg: cfg.WithDefaults(), blobs: map[graph.Epoch][]byte{}}
}

// Config returns the store's (defaulted) configuration.
func (s *EpochStore) Config() Config { return s.cfg }

// Save encodes and retains the snapshot, returning the encoded size and
// the write cost in virtual seconds for a cluster of the given node
// count. Saving an epoch twice overwrites the previous blob (the encoding
// is deterministic, so the bytes are identical anyway).
func (s *EpochStore) Save(snap *graph.Snapshot, nodes int) (int64, float64, error) {
	blob, err := graph.EncodeSnapshot(nil, snap)
	if err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	if prev, ok := s.blobs[snap.Epoch()]; ok {
		s.bytes -= int64(len(prev))
	}
	s.blobs[snap.Epoch()] = blob
	if snap.Epoch() >= s.latest {
		s.latest = snap.Epoch()
	}
	s.bytes += int64(len(blob))
	s.writes++
	s.mu.Unlock()
	return int64(len(blob)), s.cfg.WriteSeconds(int64(len(blob)), nodes), nil
}

// Load decodes the stored snapshot for the epoch, returning it with the
// read cost in virtual seconds.
func (s *EpochStore) Load(e graph.Epoch, nodes int) (*graph.Snapshot, float64, error) {
	s.mu.Lock()
	blob, ok := s.blobs[e]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("ckpt: epoch %d not stored", e)
	}
	snap, _, err := graph.DecodeSnapshot(blob)
	if err != nil {
		return nil, 0, err
	}
	return snap, s.cfg.ReadSeconds(int64(len(blob)), nodes), nil
}

// Latest reports the highest stored epoch.
func (s *EpochStore) Latest() (graph.Epoch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blobs) == 0 {
		return 0, false
	}
	return s.latest, true
}

// Stats reports total bytes currently stored and the cumulative write
// count.
func (s *EpochStore) Stats() (bytes int64, writes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, s.writes
}
