// Package socialite reimplements SociaLite's programming model (paper §3):
// graph algorithms are Datalog rules over horizontally sharded tables,
// with aggregation functions ($SUM, $MIN, $INC) in rule heads, tail-nested
// edge tables (effectively CSR), and semi-naive evaluation for recursive
// rules. Distributed runs shard tables by key range; remote head updates
// are the data transfers (the paper's second PageRank variant, where body
// joins are local and only the head update crosses the network).
package socialite

import (
	"fmt"
	"math"
	"sync/atomic"

	"graphmaze/internal/graph"
)

// Value is a tuple attribute: a scalar or a K-vector (SociaLite stores
// collaborative filtering's length-K vectors in table columns, §3.2).
type Value []float64

// Scalar wraps a float64 as a Value.
func Scalar(x float64) Value { return Value{x} }

// S returns the scalar view of a value.
func (v Value) S() float64 { return v[0] }

// Table is a relation the rule engine can enumerate and index.
type Table interface {
	Name() string
}

// EdgeTable is a tail-nested two-or-three-column relation (src, dst[,
// weight]) — SociaLite's representation of adjacency, "effectively
// implementing a CSR format" (§3.1).
type EdgeTable struct {
	name string
	g    *graph.CSR
}

// NewEdgeTable wraps a CSR as an edge relation.
func NewEdgeTable(name string, g *graph.CSR) *EdgeTable {
	return &EdgeTable{name: name, g: g}
}

// Name implements Table.
func (t *EdgeTable) Name() string { return t.name }

// Neighbors enumerates dst ids for src.
func (t *EdgeTable) Neighbors(src uint32) []uint32 { return t.g.Neighbors(src) }

// Weights returns the weight column for src's rows (nil if two-column).
func (t *EdgeTable) Weights(src uint32) []float32 { return t.g.EdgeWeights(src) }

// Contains reports whether (src,dst) is present (requires sorted
// adjacency for the binary search).
func (t *EdgeTable) Contains(src, dst uint32) bool { return t.g.HasEdge(src, dst) }

// NumKeys reports the size of the src key space.
func (t *EdgeTable) NumKeys() uint32 { return t.g.NumVertices }

// NumRows reports the number of tuples.
func (t *EdgeTable) NumRows() int64 { return t.g.NumEdges() }

// VecTable is a keyed single-column relation: key → Value. It backs both
// scalar columns (RANK, DIST, DEGREE) and vector columns (the CF factor
// tables).
type VecTable struct {
	name    string
	vals    []Value
	present []bool
	count   atomic.Int64
}

// NewVecTable returns an empty table over keys [0, numKeys).
func NewVecTable(name string, numKeys uint32) *VecTable {
	return &VecTable{name: name, vals: make([]Value, numKeys), present: make([]bool, numKeys)}
}

// Name implements Table.
func (t *VecTable) Name() string { return t.name }

// NumKeys reports the key-space size.
func (t *VecTable) NumKeys() uint32 { return graph.MustU32(int64(len(t.vals))) }

// Len reports how many keys are present.
func (t *VecTable) Len() int { return int(t.count.Load()) }

// Get returns the value at key, if present.
func (t *VecTable) Get(key uint32) (Value, bool) {
	if !t.present[key] {
		return nil, false
	}
	return t.vals[key], true
}

// Put assigns key ← val unconditionally.
func (t *VecTable) Put(key uint32, val Value) {
	if !t.present[key] {
		t.present[key] = true
		t.count.Add(1)
	}
	t.vals[key] = val
}

// Delete removes key.
func (t *VecTable) Delete(key uint32) {
	if t.present[key] {
		t.present[key] = false
		t.count.Add(-1)
	}
}

// ForEach visits every present (key, value) in key order.
func (t *VecTable) ForEach(fn func(key uint32, val Value)) {
	for k, p := range t.present {
		if p {
			fn(uint32(k), t.vals[k])
		}
	}
}

// MemoryBytes estimates the table's resident size assuming width values
// per key.
func (t *VecTable) MemoryBytes() int64 {
	var b int64
	for k, p := range t.present {
		if p {
			b += 16 + int64(len(t.vals[k]))*8
		}
	}
	return b + int64(len(t.present))
}

// Agg is a head aggregation function.
type Agg int

const (
	// AggAssign overwrites (plain head, no aggregation).
	AggAssign Agg = iota
	// AggSum is $SUM — element-wise for vectors.
	AggSum
	// AggMin is $MIN (scalars). Fold reports whether the value changed,
	// which drives semi-naive deltas.
	AggMin
	// AggCount is $INC(1).
	AggCount
)

// String names the aggregation in SociaLite's $FUNC notation.
func (a Agg) String() string {
	switch a {
	case AggAssign:
		return "assign"
	case AggSum:
		return "$SUM"
	case AggMin:
		return "$MIN"
	case AggCount:
		return "$INC"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// fold merges val into the table at key per the aggregation; it reports
// whether the stored value changed.
func (t *VecTable) fold(agg Agg, key uint32, val Value) bool {
	old, ok := t.Get(key)
	switch agg {
	case AggAssign:
		t.Put(key, val)
		return true
	case AggSum:
		if !ok {
			cp := make(Value, len(val))
			copy(cp, val)
			t.Put(key, cp)
			return true
		}
		for i := range old {
			old[i] += val[i]
		}
		return true
	case AggMin:
		if !ok || val.S() < old.S() {
			t.Put(key, Scalar(val.S()))
			return true
		}
		return false
	case AggCount:
		if !ok {
			t.Put(key, Scalar(val.S()))
			return true
		}
		old[0] += val.S()
		return true
	default:
		//lint:ignore panic aggregations are validated by the parser; an unknown value here is a programmer error
		panic(fmt.Sprintf("socialite: unknown aggregation %v", agg))
	}
}

// foldScalar is fold for scalar values without allocating a Value on the
// common paths.
func (t *VecTable) foldScalar(agg Agg, key uint32, x float64) bool {
	old, ok := t.Get(key)
	switch agg {
	case AggAssign:
		if ok && len(old) == 1 {
			old[0] = x
			return true
		}
		t.Put(key, Scalar(x))
		return true
	case AggSum, AggCount:
		if !ok {
			t.Put(key, Scalar(x))
			return true
		}
		old[0] += x
		return true
	case AggMin:
		if !ok {
			t.Put(key, Scalar(x))
			return true
		}
		if x < old[0] {
			old[0] = x
			return true
		}
		return false
	default:
		//lint:ignore panic aggregations are validated by the parser; an unknown value here is a programmer error
		panic(fmt.Sprintf("socialite: unknown aggregation %v", agg))
	}
}

// isNaN guards against propagating NaNs out of user expressions.
func isNaN(v Value) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}
