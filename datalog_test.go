package graphmaze

import (
	"testing"

	"graphmaze/internal/core"
)

func TestDatalogBFSFixpoint(t *testing.T) {
	g, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 12}, ForBFS)
	if err != nil {
		t.Fatal(err)
	}
	src := uint32(0)
	for v := uint32(0); v < g.NumVertices; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	db := NewDatalog()
	db.AddEdgeTable("EDGE", g)
	dist := db.AddTable("BFS", g.NumVertices)
	dist.Set(src, 0)
	rounds, err := db.Fixpoint("BFS(t, $MIN(d)) :- BFS(s, d0), d = d0 + 1, EDGE(s, t).")
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 2 {
		t.Errorf("fixpoint converged in %d rounds", rounds)
	}
	want := core.RefBFS(g, src)
	for v := uint32(0); v < g.NumVertices; v++ {
		got, ok := dist.Get(v)
		if want[v] == -1 {
			if ok {
				t.Fatalf("vertex %d reachable via datalog but not reference", v)
			}
			continue
		}
		if !ok || int32(got) != want[v] {
			t.Fatalf("vertex %d: datalog distance %v, want %d", v, got, want[v])
		}
	}
}

func TestDatalogTriangleQuery(t *testing.T) {
	g, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 12}, ForTriangles)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatalog()
	db.AddEdgeTable("EDGE", g)
	tri := db.AddTable("TRIANGLE", 1)
	if err := db.Eval("TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z)."); err != nil {
		t.Fatal(err)
	}
	count, ok := tri.Get(0)
	if !ok {
		t.Fatal("no triangle count produced")
	}
	if int64(count) != core.RefTriangleCount(g) {
		t.Errorf("datalog counts %v, reference %d", count, core.RefTriangleCount(g))
	}
}

func TestDatalogDegreeQuery(t *testing.T) {
	g, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 12}, ForPageRank)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatalog()
	db.AddEdgeTable("EDGE", g)
	deg := db.AddTable("DEG", g.NumVertices)
	if err := db.Eval("DEG(s, $SUM(one)) :- EDGE(s, t), one = 1."); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < g.NumVertices; v++ {
		got, ok := deg.Get(v)
		want := g.Degree(v)
		if want == 0 {
			if ok {
				t.Fatalf("vertex %d has spurious degree %v", v, got)
			}
			continue
		}
		if int64(got) != want {
			t.Fatalf("vertex %d: degree %v, want %d", v, got, want)
		}
	}
}

func TestDatalogErrors(t *testing.T) {
	db := NewDatalog()
	g, _ := Generate(Graph500{Scale: 6, EdgeFactor: 4, Seed: 1}, ForPageRank)
	db.AddEdgeTable("EDGE", g)
	db.AddTable("T", g.NumVertices)
	if err := db.Eval("T(s, $SUM(v)) :- NOPE(s, t), v = 1."); err == nil {
		t.Error("accepted rule over unknown table")
	}
	// Fixpoint on a non-recursive rule is rejected with guidance.
	if _, err := db.Fixpoint("T(s, $SUM(v)) :- EDGE(s, t), v = 1."); err == nil {
		t.Error("Fixpoint accepted non-recursive rule")
	}
}

func TestDatalogTableForEach(t *testing.T) {
	db := NewDatalog()
	tab := db.AddTable("X", 5)
	tab.Set(1, 10)
	tab.Set(3, 30)
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	sum := 0.0
	tab.ForEach(func(_ uint32, v float64) { sum += v })
	if sum != 40 {
		t.Errorf("sum = %v", sum)
	}
}
