// Package native implements the paper's hand-optimized baseline (§6.1):
// tight CSR loops, bit-vector data structures, message compression, and
// compute/communication overlap. It is the reference point every framework
// engine is compared against.
//
// The optimizations are individually switchable through Tuning so the
// Figure 7 ablation can be reproduced. One substitution applies: Go has no
// software-prefetch intrinsics, so the paper's prefetch stage is stood in
// for by the contribution-caching / layout optimization (see DESIGN.md §3).
package native

import (
	"graphmaze/internal/core"
	"graphmaze/internal/par"
)

// Tuning switches the native code's optimization stages (paper Figure 7
// and §6.1.1).
type Tuning struct {
	// ContribCaching enables the gather-friendly data layout for PageRank
	// (a dense per-iteration contribution array instead of two dependent
	// random loads per edge). This is the stand-in for the paper's
	// software-prefetch stage.
	ContribCaching bool
	// Compression enables delta+varint / bitvector coding of inter-node
	// messages.
	Compression bool
	// Overlap enables compute/communication overlap on cluster runs.
	Overlap bool
	// Bitvector enables bit-vector visited sets in BFS and bit-vector
	// intersection for high-degree vertices in triangle counting.
	Bitvector bool
}

// DefaultTuning returns all optimizations enabled — the configuration the
// paper reports as "native".
func DefaultTuning() Tuning {
	return Tuning{ContribCaching: true, Compression: true, Overlap: true, Bitvector: true}
}

// Engine is the hand-optimized native implementation.
type Engine struct {
	tuning Tuning
}

var _ core.Engine = (*Engine)(nil)

// New returns the fully optimized native engine.
func New() *Engine { return &Engine{tuning: DefaultTuning()} }

// NewTuned returns a native engine with selected optimizations, for
// ablation studies.
func NewTuned(t Tuning) *Engine { return &Engine{tuning: t} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "Native" }

// Tuning reports the engine's optimization configuration.
func (e *Engine) Tuning() Tuning { return e.tuning }

// Capabilities implements core.Engine.
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{MultiNode: true, SGD: true, ProgrammingModel: "native"}
}

// parallelFor splits [0,n) into contiguous chunks across GOMAXPROCS
// goroutines. The native kernels are all data-parallel over vertex or edge
// ranges; contiguous chunks keep the CSR scans streaming. Use it for loops
// whose per-index cost is uniform; degree-proportional loops use
// parallelForOffsets, and unpredictable ones par.ForDynamic (the paper's
// §3.1 load-balancing discipline — see DESIGN.md §8).
func parallelFor(n int, body func(lo, hi int)) {
	par.For(n, body)
}

// parallelForOffsets splits a CSR vertex range so every worker owns about
// the same number of *edges*, using the prefix-sum offsets the CSR already
// stores. On power-law graphs this is what keeps one worker from owning
// all the hubs (paper §3.1: native baselines balance 1-D partitions by
// edges, not vertices).
func parallelForOffsets(offsets []int64, body func(lo, hi int)) {
	par.ForOffsets(offsets, body)
}
