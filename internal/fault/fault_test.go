package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Crash: "crash", Drop: "drop", Truncate: "trunc", Slow: "slow", Degrade: "degrade",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNilPlanIsHealthy(t *testing.T) {
	var p *Plan
	if p.CrashPoint(0, 0) {
		t.Error("nil plan crashed")
	}
	if v := p.MessageFault(0, 0, 1); v != Deliver {
		t.Errorf("nil plan verdict = %v", v)
	}
	if f := p.SlowFactor(0, 0); f != 1 {
		t.Errorf("nil plan slow factor = %v", f)
	}
	if f := p.DegradeFactor(0); f != 1 {
		t.Errorf("nil plan degrade factor = %v", f)
	}
	if d := p.DetectSeconds(); d != 0 {
		t.Errorf("nil plan detect = %v", d)
	}
}

func TestCrashOneShot(t *testing.T) {
	p := NewPlan(Event{Kind: Crash, Phase: 3, Node: 1})
	if p.CrashPoint(3, 0) {
		t.Error("crash fired for wrong node")
	}
	if p.CrashPoint(2, 1) {
		t.Error("crash fired for wrong phase")
	}
	if !p.CrashPoint(3, 1) {
		t.Fatal("crash did not fire")
	}
	if p.CrashPoint(3, 1) {
		t.Error("one-shot crash fired twice")
	}
	fired := p.Fired()
	if len(fired) != 1 || fired[0].Kind != Crash || fired[0].Phase != 3 {
		t.Errorf("Fired = %v", fired)
	}
}

func TestCrashAnyNode(t *testing.T) {
	p := NewPlan(Event{Kind: Crash, Phase: 0, Node: Any})
	if !p.CrashPoint(0, 7) {
		t.Error("Any-node crash did not fire")
	}
}

func TestMessageFaultMatching(t *testing.T) {
	p := NewPlan(
		Event{Kind: Drop, Phase: 1, From: 0, To: 2},
		Event{Kind: Truncate, Phase: 2, From: Any, To: Any},
	)
	if v := p.MessageFault(1, 0, 1); v != Deliver {
		t.Errorf("wrong receiver matched: %v", v)
	}
	if v := p.MessageFault(1, 0, 2); v != Dropped {
		t.Errorf("drop verdict = %v", v)
	}
	if v := p.MessageFault(1, 0, 2); v != Deliver {
		t.Error("one-shot drop fired twice")
	}
	if v := p.MessageFault(2, 3, 1); v != Truncated {
		t.Errorf("any-any truncate verdict = %v", v)
	}
}

func TestSlowAndDegradeRanges(t *testing.T) {
	p := NewPlan(
		Event{Kind: Slow, Phase: 2, PhaseEnd: 4, Node: 1, Factor: 3},
		Event{Kind: Degrade, Phase: 0, PhaseEnd: 1, Factor: 4},
	)
	if f := p.SlowFactor(3, 1); f != 3 {
		t.Errorf("in-range slow factor = %v", f)
	}
	if f := p.SlowFactor(5, 1); f != 1 {
		t.Errorf("out-of-range slow factor = %v", f)
	}
	if f := p.SlowFactor(3, 0); f != 1 {
		t.Errorf("wrong-node slow factor = %v", f)
	}
	if f := p.DegradeFactor(1); f != 4 {
		t.Errorf("in-range degrade factor = %v", f)
	}
	if f := p.DegradeFactor(2); f != 1 {
		t.Errorf("out-of-range degrade factor = %v", f)
	}
	// Ranges are not consumed: they apply every phase in range.
	if f := p.SlowFactor(3, 1); f != 3 {
		t.Errorf("slow factor consumed: %v", f)
	}
}

func TestDetectSeconds(t *testing.T) {
	if d := NewPlan().DetectSeconds(); d != DefaultDetectSeconds {
		t.Errorf("default detect = %v", d)
	}
	p := &Plan{Detect: 0.1}
	if d := p.DetectSeconds(); d != 0.1 {
		t.Errorf("custom detect = %v", d)
	}
}

func TestErrorClassification(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &Error{Kind: Crash, Phase: 5, Node: 2})
	if !IsInjected(err) {
		t.Error("IsInjected missed a wrapped fault error")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Phase != 5 || fe.Node != 2 {
		t.Errorf("errors.As extracted %+v", fe)
	}
	if IsInjected(errors.New("plain")) {
		t.Error("IsInjected matched a plain error")
	}
}

func TestSeededDeterminism(t *testing.T) {
	cfg := SeedConfig{Phases: 20, Nodes: 8, Crashes: 2, Drops: 1, Stragglers: 1}
	a := Seeded(42, cfg).Events()
	b := Seeded(42, cfg).Events()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%v\n%v", a, b)
	}
	c := Seeded(43, cfg).Events()
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	if len(a) != 4 {
		t.Errorf("seeded plan has %d events, want 4", len(a))
	}
}

func TestSeededDefaultsToOneCrash(t *testing.T) {
	events := Seeded(1, SeedConfig{}).Events()
	if len(events) != 1 || events[0].Kind != Crash {
		t.Errorf("default seeded plan = %v, want one crash", events)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("crash@6:n1, drop@2:0-3, trunc@4, slow@1-3:n2x2.5, degrade@0-1x4")
	if err != nil {
		t.Fatal(err)
	}
	events := p.Events()
	if len(events) != 5 {
		t.Fatalf("parsed %d events: %v", len(events), events)
	}
	want := []Event{
		{Kind: Crash, Phase: 6, PhaseEnd: 6, Node: 1, Factor: 1},
		{Kind: Drop, Phase: 2, PhaseEnd: 2, From: 0, To: 3, Factor: 1},
		{Kind: Truncate, Phase: 4, PhaseEnd: 4, From: Any, To: Any, Factor: 1},
		{Kind: Slow, Phase: 1, PhaseEnd: 3, Node: 2, Factor: 2.5},
		{Kind: Degrade, Phase: 0, PhaseEnd: 1, Factor: 4},
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("parsed:\n%v\nwant:\n%v", events, want)
	}
}

func TestParsePlanSeedEntry(t *testing.T) {
	p, err := ParsePlan("seed@7:c2")
	if err != nil {
		t.Fatal(err)
	}
	events := p.Events()
	if len(events) != 2 {
		t.Fatalf("seed entry produced %d events", len(events))
	}
	for _, e := range events {
		if e.Kind != Crash {
			t.Errorf("seed entry produced %v", e)
		}
	}
	q, _ := ParsePlan("seed@7:c2")
	if !reflect.DeepEqual(events, q.Events()) {
		t.Error("seed entry is not deterministic")
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"crash", "crash@x", "drop@1:5", "slow@1-2", "slow@1-2:n0x0.5",
		"degrade@3x0.1", "degrade@3", "bogus@1", "crash@1:nx",
		"slow@2-1:n0x2", "seed@x",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestParsePlanEmptyEntriesSkipped(t *testing.T) {
	p, err := ParsePlan(" , crash@1, ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events()) != 1 {
		t.Errorf("events = %v", p.Events())
	}
}

func TestEventStringRoundTrip(t *testing.T) {
	// The String form of each event kind re-parses to the same event.
	for _, e := range []Event{
		{Kind: Crash, Phase: 6, PhaseEnd: 6, Node: 1, Factor: 1},
		{Kind: Drop, Phase: 2, PhaseEnd: 2, From: 0, To: 3, Factor: 1},
		{Kind: Slow, Phase: 1, PhaseEnd: 3, Node: 2, Factor: 2.5},
		{Kind: Degrade, Phase: 0, PhaseEnd: 1, Factor: 4},
	} {
		p, err := ParsePlan(e.String())
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", e.String(), err)
			continue
		}
		if got := p.Events(); len(got) != 1 || !reflect.DeepEqual(got[0], e) {
			t.Errorf("round trip of %q = %v", e.String(), got)
		}
	}
}
