// Package trace is graphmaze's structured tracing and counter subsystem:
// the observability substrate behind the paper's §5.4/§6 analysis, where
// every "ninja gap" is attributed from per-phase measurement rather than
// run-level totals (DESIGN.md §9).
//
// Two primitives are provided. Spans are named intervals with
// compute/network/wait attribution, recorded on one of several tracks:
// real-time spans for in-process kernel work (Begin/End), and virtual-time
// spans for the cluster simulation's modeled clock (RecordVirtual), one
// track per simulated node plus an engine-level phase track. Counters are
// named monotonic accumulators with cache-line-padded per-worker lanes, so
// hot loops can count chunks, items, and busy nanoseconds without
// contending on one word — which is what makes scheduler imbalance under
// skew measurable.
//
// A nil *Tracer is the disabled mode: every method is nil-safe, costs one
// pointer check, and allocates nothing (verified by
// TestDisabledTracerAllocatesNothing and BenchmarkSpanDisabled). Code
// therefore threads a possibly-nil tracer unconditionally instead of
// branching at each instrumentation site.
package trace

import (
	"sync"
	"time"

	"graphmaze/internal/obs"
)

// Track identities. Chrome trace events group by process id: real-time
// host work, the engine's virtual-time phase overview, and one virtual
// track per simulated cluster node.
const (
	// PidHost is the real-time track for in-process kernel spans.
	PidHost = 0
	// PidEngine is the virtual-time track for engine-level phases
	// (supersteps, sweeps, rounds, rule evaluations).
	PidEngine = 1
	// PidNodeBase is the first simulated-node track; node n records on
	// PidNodeBase+n.
	PidNodeBase = 100
)

// PidNode returns the virtual-time track of simulated node n.
func PidNode(n int) int { return PidNodeBase + n }

// Event is one completed span on a track. Start and Dur are nanoseconds on
// the track's clock: time since the tracer was created for real-time
// tracks, modeled time since the run began for virtual tracks.
type Event struct {
	Name     string
	Cat      string
	Pid, Tid int
	StartNS  int64
	DurNS    int64
	Args     map[string]float64
}

// Tracer records spans and owns the run's counters. It is safe for
// concurrent use; the nil Tracer is the disabled mode.
type Tracer struct {
	t0 time.Time

	mu       sync.Mutex
	events   []Event
	procs    map[int]string
	counters map[string]*Counter
	order    []string
	sched    *SchedCounters

	// reg is the unified metrics registry: every trace counter is mirrored
	// into it as a counter func, span durations feed per-category latency
	// histograms, and instrumented subsystems (backend pool, cluster,
	// sampler) hang their own histograms and gauges off it. durHists caches
	// the per-category "<cat>.dur_ns" histogram so Span.End resolves it
	// without a registry lock in the common case.
	reg      *obs.Registry
	durHists map[string]*obs.Histogram
}

// New returns an enabled tracer whose real-time clock starts now.
func New() *Tracer {
	t := &Tracer{
		t0:       time.Now(),
		procs:    make(map[int]string),
		counters: make(map[string]*Counter),
		reg:      obs.NewRegistry(),
		durHists: make(map[string]*obs.Histogram),
	}
	t.procs[PidHost] = "host (real time)"
	t.procs[PidEngine] = "engine phases (virtual time)"
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the tracer's unified metrics registry, nil on the
// disabled tracer — and a nil *obs.Registry is itself the disabled
// registry, so callers chain unconditionally.
func (t *Tracer) Registry() *obs.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Hist returns the named histogram from the tracer's registry, nil (the
// disabled histogram) on the disabled tracer.
func (t *Tracer) Hist(name string) *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.reg.Hist(name)
}

// durHist returns the cached "<cat>.dur_ns" histogram that accumulates
// span durations for the category. Called with t.mu held.
func (t *Tracer) durHistLocked(cat string) *obs.Histogram {
	h, ok := t.durHists[cat]
	if !ok {
		h = t.reg.Hist(cat + ".dur_ns")
		t.durHists[cat] = h
	}
	return h
}

// nowNS is the tracer's real-time clock: nanoseconds since New.
func (t *Tracer) nowNS() int64 { return time.Since(t.t0).Nanoseconds() }

// SetProcessName labels a track in the exported trace ("node 3", "host").
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// Span is an in-flight real-time span returned by Begin. End completes it;
// a Span that is never ended is never recorded (graphlint's span rule
// flags that bug statically). The nil Span is inert.
type Span struct {
	t       *Tracer
	name    string
	cat     string
	tid     int
	startNS int64
	args    map[string]float64
}

// Begin starts a real-time span on the host track. cat is the stable
// aggregation key ("native.pr.iter"); name may carry instance detail.
// Returns nil — a no-op span — on the disabled tracer.
func (t *Tracer) Begin(cat, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, startNS: t.nowNS()}
}

// Arg attaches a numeric attribute to the span (chainable). Nil-safe.
func (s *Span) Arg(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]float64, 4)
	}
	s.args[key] = v
	return s
}

// End completes the span and records it. Nil-safe; End on an already-ended
// span records nothing.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	ev := Event{
		Name:    s.name,
		Cat:     s.cat,
		Pid:     PidHost,
		Tid:     s.tid,
		StartNS: s.startNS,
		DurNS:   t.nowNS() - s.startNS,
		Args:    s.args,
	}
	s.t = nil
	t.mu.Lock()
	t.events = append(t.events, ev)
	h := t.durHistLocked(s.cat)
	t.mu.Unlock()
	// Every ended span also lands in the category's latency histogram, so
	// p50/p99 per engine phase falls out of existing instrumentation.
	h.Record(s.tid, ev.DurNS)
}

// RecordVirtual records a completed span on a virtual-time track at an
// explicit position: startSec/durSec are modeled seconds since the run
// began. args may be nil; the map is retained, not copied.
func (t *Tracer) RecordVirtual(pid int, cat, name string, startSec, durSec float64, args map[string]float64) {
	if t == nil {
		return
	}
	ev := Event{
		Name:    name,
		Cat:     cat,
		Pid:     pid,
		StartNS: int64(startSec * 1e9),
		DurNS:   int64(durSec * 1e9),
		Args:    args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	h := t.durHistLocked(cat)
	t.mu.Unlock()
	// Virtual spans (engine phases, per-node cluster work) feed the same
	// per-category histograms as real-time spans; the lane is the track's
	// pid so simulated nodes do not contend on one lane.
	h.Record(pid, ev.DurNS)
}

// Events returns a snapshot of the recorded spans.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// processNames returns a snapshot of the track labels.
func (t *Tracer) processNames() map[int]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.procs))
	for k, v := range t.procs {
		out[k] = v
	}
	return out
}
