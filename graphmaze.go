// Package graphmaze is a from-scratch Go reproduction of "Navigating the
// Maze of Graph Analytics Frameworks using Massive Graph Datasets"
// (Satish et al., SIGMOD 2014).
//
// It provides six interchangeable graph-analytics engines — a
// hand-optimized Native baseline plus faithful reimplementations of the
// GraphLab, CombBLAS, SociaLite, Giraph, and Galois programming models —
// four algorithms (PageRank, BFS, triangle counting, collaborative
// filtering), Graph500-style data generators, a simulated multi-node
// cluster with modeled communication layers, and the experiment harness
// that regenerates every table and figure of the paper.
//
// Quick start:
//
//	g, _ := graphmaze.Generate(graphmaze.Graph500{Scale: 16, EdgeFactor: 16}, graphmaze.ForPageRank)
//	res, _ := graphmaze.Native().PageRank(g, graphmaze.PageRankOptions{})
//	fmt.Println(res.Ranks[:10])
package graphmaze

import (
	"fmt"
	"strings"

	"graphmaze/internal/cluster"
	"graphmaze/internal/combblas"
	"graphmaze/internal/core"
	"graphmaze/internal/datasets"
	"graphmaze/internal/galois"
	"graphmaze/internal/gen"
	"graphmaze/internal/giraph"
	"graphmaze/internal/graph"
	"graphmaze/internal/graphlab"
	"graphmaze/internal/native"
	"graphmaze/internal/socialite"
)

// Core re-exports: the algorithm contract shared by all engines.
type (
	// Engine is a graph-analytics framework under study.
	Engine = core.Engine
	// Graph is a directed graph in Compressed Sparse Row form.
	Graph = graph.CSR
	// Ratings is a bipartite user×item rating graph.
	Ratings = graph.Bipartite
	// Edge is a directed edge.
	Edge = graph.Edge
	// Rating is one (user, item, stars) triple.
	Rating = graph.WeightedEdge

	// PageRankOptions configures PageRank (paper eq. 1).
	PageRankOptions = core.PageRankOptions
	// BFSOptions configures breadth-first search.
	BFSOptions = core.BFSOptions
	// TriangleOptions configures triangle counting.
	TriangleOptions = core.TriangleOptions
	// CFOptions configures collaborative filtering (paper eq. 4).
	CFOptions = core.CFOptions

	// PageRankResult, BFSResult, TriangleResult and CFResult carry each
	// algorithm's output plus run statistics.
	PageRankResult = core.PageRankResult
	BFSResult      = core.BFSResult
	TriangleResult = core.TriangleResult
	CFResult       = core.CFResult

	// ClusterConfig requests a simulated multi-node run; set it in an
	// options' Exec field.
	ClusterConfig = cluster.Config
	// Exec selects single-node (zero value) or cluster execution.
	Exec = core.Exec
)

// CFMethod values.
const (
	// GradientDescent is expressible in every engine.
	GradientDescent = core.GradientDescent
	// SGD is expressible only in Native and Galois (paper §3.2).
	SGD = core.SGD
)

// Communication layer presets for ClusterConfig.Comm (bandwidths are the
// paper's measured rates; see internal/cluster).
var (
	// MPI is the native/CombBLAS layer (5.5 GB/s modeled peak).
	MPI = cluster.MPI
	// IPoIBSockets is GraphLab's socket stack (1.2 GB/s).
	IPoIBSockets = cluster.IPoIBSockets
	// SingleSocket is unoptimized SociaLite's layer (0.5 GB/s).
	SingleSocket = cluster.SingleSocket
	// MultiSocket is optimized SociaLite's layer (2.0 GB/s).
	MultiSocket = cluster.MultiSocket
	// Netty is Giraph's layer (0.35 GB/s).
	Netty = cluster.Netty
)

// Engine constructors.

// Native returns the hand-optimized baseline engine (paper §6.1).
func Native() Engine { return native.New() }

// GraphLab returns the GAS vertex-programming engine.
func GraphLab() Engine { return graphlab.New() }

// CombBLAS returns the sparse-matrix/semiring engine.
func CombBLAS() Engine { return combblas.New() }

// SociaLite returns the Datalog engine (network-optimized, §6.1.3).
func SociaLite() Engine { return socialite.New() }

// Giraph returns the BSP vertex-programming engine.
func Giraph() Engine { return giraph.New() }

// Galois returns the task-parallel engine (single-node only).
func Galois() Engine { return galois.New() }

// Engines returns all six engines in the paper's comparison order.
func Engines() []Engine {
	return []Engine{Native(), CombBLAS(), GraphLab(), SociaLite(), Giraph(), Galois()}
}

// EngineByName resolves a case-insensitive engine name.
func EngineByName(name string) (Engine, error) {
	for _, e := range Engines() {
		if strings.EqualFold(e.Name(), name) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("graphmaze: unknown engine %q", name)
}

// Preparation recipes (paper §4.1).
const (
	// ForPageRank keeps edge direction.
	ForPageRank = datasets.PrepPageRank
	// ForBFS symmetrizes.
	ForBFS = datasets.PrepBFS
	// ForTriangles orients edges acyclically with sorted adjacency.
	ForTriangles = datasets.PrepTriangle
)

// Graph500 parameterizes the synthetic generator (paper §4.1.2).
type Graph500 struct {
	Scale      int // vertices = 2^Scale
	EdgeFactor int // edges ≈ EdgeFactor × vertices
	Seed       int64
}

// Generate builds a synthetic RMAT graph with the given preparation.
func Generate(g Graph500, prep datasets.Prep) (*Graph, error) {
	if g.EdgeFactor == 0 {
		g.EdgeFactor = 16
	}
	var cfg gen.RMATConfig
	if prep == ForTriangles {
		cfg = gen.TriangleConfig(g.Scale, g.EdgeFactor, g.Seed)
	} else {
		cfg = gen.Graph500Config(g.Scale, g.EdgeFactor, g.Seed)
	}
	edges, err := gen.RMAT(cfg)
	if err != nil {
		return nil, err
	}
	return datasets.PrepareEdges(cfg.NumVertices(), edges, prep)
}

// GenerateRatings builds a synthetic power-law rating set mirroring the
// Netflix degree distribution (paper §4.1.2).
func GenerateRatings(scale, ratingsPerUser int, seed int64) (*Ratings, error) {
	return gen.Ratings(gen.DefaultRatingsConfig(scale, ratingsPerUser, seed))
}

// Dataset loads one of the named real-world stand-ins ("facebook",
// "wikipedia", "livejournal", "twitter", "graph500").
func Dataset(name string, prep datasets.Prep) (*Graph, error) {
	p, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	return p.Build(prep)
}

// RatingsDataset loads a named rating-set stand-in ("netflix",
// "yahoomusic").
func RatingsDataset(name string) (*Ratings, error) {
	p, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	return p.BuildRatings()
}

// LoadEdgeList reads a "src dst" edge-list file with the given
// preparation.
func LoadEdgeList(path string, prep datasets.Prep) (*Graph, error) {
	return datasets.LoadEdgeListFile(path, prep)
}

// LoadRatings reads a "user item rating" file (Netflix-style triples)
// into a bipartite rating graph.
func LoadRatings(path string) (*Ratings, error) {
	return datasets.LoadRatingsFile(path)
}

// NewGraph builds a graph directly from an edge list, exactly as given
// (no dedup, no orientation, unsorted adjacency). Use Prepare for the
// paper's per-algorithm preparations.
func NewGraph(numVertices uint32, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numVertices, edges)
}

// Prepare applies one of the paper's preparation recipes (§4.1) to a raw
// edge list: dedup for PageRank, symmetrize for BFS, acyclic orientation
// with sorted adjacency for triangle counting.
func Prepare(numVertices uint32, edges []Edge, prep datasets.Prep) (*Graph, error) {
	return datasets.PrepareEdges(numVertices, edges, prep)
}

// NewRatings builds a bipartite rating graph from explicit ratings
// (duplicate (user,item) pairs keep the last rating).
func NewRatings(numUsers, numItems uint32, ratings []Rating) (*Ratings, error) {
	return graph.NewBipartite(numUsers, numItems, ratings)
}
