package native

// Incremental-kernel benchmarks (the `make bench-stream` set): each
// iteration ingests one delta batch and refreshes a kernel, the steady
// state of a system serving queries on a growing graph.

import (
	"testing"

	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

type streamBench struct {
	base    *graph.CSR
	deltas  []graph.Edge
	batch   int
	batches int
	v       *graph.Versioned
}

func newStreamBench(b *testing.B, scale int) *streamBench {
	b.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(scale, 16, 97))
	if err != nil {
		b.Fatal(err)
	}
	bld := graph.NewBuilder(uint32(1) << scale)
	bld.AddEdges(edges)
	base, err := bld.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true,
		DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		b.Fatal(err)
	}
	deltas, err := gen.RMAT(gen.Graph500Config(scale, 2, 98))
	if err != nil {
		b.Fatal(err)
	}
	s := &streamBench{base: base, deltas: deltas, batch: 2048}
	s.batches = len(deltas) / s.batch
	if s.batches == 0 {
		b.Fatal("delta stream too small")
	}
	return s
}

// next ingests batch i (cycling over the stream; a new pass restarts the
// versioned graph from the base epoch) and returns the new snapshot with
// the epoch's cleaned added edges.
func (s *streamBench) next(b *testing.B, i int, reset func()) (*graph.Snapshot, []graph.Edge) {
	b.Helper()
	k := i % s.batches
	if k == 0 {
		b.StopTimer()
		var err error
		if s.v, err = graph.NewVersioned(s.base, graph.DeltaOptions{Symmetrize: true, DropSelfLoops: true}); err != nil {
			b.Fatal(err)
		}
		reset()
		b.StartTimer()
	}
	snap, added, _, err := s.v.ApplyDelta(s.deltas[k*s.batch : (k+1)*s.batch])
	if err != nil {
		b.Fatal(err)
	}
	return snap, added
}

// BenchmarkStreamPageRankRefresh measures ingest + warm-started PageRank
// per delta batch (transpose rebuild + delta-localized sweeps).
func BenchmarkStreamPageRankRefresh(b *testing.B) {
	s := newStreamBench(b, 12)
	var pr *IncrementalPageRank
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, _ := s.next(b, i, func() {
			if pr != nil {
				pr.Close()
			}
			pr = NewIncrementalPageRank(IncrementalPROptions{Tolerance: 1e-9})
			if _, _, err := pr.Update(s.v.Current()); err != nil {
				b.Fatal(err)
			}
		})
		if _, _, err := pr.Update(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pr.Close()
}

// BenchmarkStreamBFSRepair measures ingest + BFS distance repair per
// delta batch.
func BenchmarkStreamBFSRepair(b *testing.B) {
	s := newStreamBench(b, 12)
	var bfs *IncrementalBFS
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, added := s.next(b, i, func() {
			if bfs != nil {
				bfs.Close()
			}
			bfs = NewIncrementalBFS(0)
			if _, err := bfs.Update(s.v.Current(), nil); err != nil {
				b.Fatal(err)
			}
		})
		if _, err := bfs.Update(snap, added); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bfs.Close()
}

// BenchmarkStreamCCRepair measures ingest + component-label repair per
// delta batch.
func BenchmarkStreamCCRepair(b *testing.B) {
	s := newStreamBench(b, 12)
	var cc *IncrementalCC
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, added := s.next(b, i, func() {
			if cc != nil {
				cc.Close()
			}
			cc = NewIncrementalCC()
			if _, err := cc.Update(s.v.Current(), nil); err != nil {
				b.Fatal(err)
			}
		})
		if _, err := cc.Update(snap, added); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cc.Close()
}
