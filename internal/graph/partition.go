package graph

import (
	"fmt"
	"math"
	"sort"
)

// Partition1D is a contiguous vertex-range partition: node p owns vertices
// [Starts[p], Starts[p+1]). Ranges are chosen so each node holds roughly the
// same number of edges (the paper's native/GraphLab/SociaLite/Giraph
// partitioning, §3.1).
type Partition1D struct {
	NumParts int
	Starts   []uint32
}

// NewPartition1D splits g's vertices into parts contiguous ranges balanced
// by edge count (edges counted in g's stored orientation).
func NewPartition1D(g *CSR, parts int) (*Partition1D, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("graph: partition needs parts>0, got %d", parts)
	}
	if uint32(parts) > g.NumVertices && g.NumVertices > 0 {
		return nil, fmt.Errorf("graph: %d parts for %d vertices", parts, g.NumVertices)
	}
	starts := make([]uint32, parts+1)
	total := g.NumEdges()
	v := uint32(0)
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		// Advance until the edge prefix reaches the target, but never let a
		// later part run out of vertices.
		limit := g.NumVertices - uint32(parts-p)
		for v < limit && g.Offsets[v] < target {
			v++
		}
		// Every part owns at least one vertex, even when a hub vertex
		// exhausted the edge budget early.
		if v <= starts[p-1] {
			v = starts[p-1] + 1
		}
		starts[p] = v
	}
	starts[parts] = g.NumVertices
	return &Partition1D{NumParts: parts, Starts: starts}, nil
}

// Owner returns the part owning vertex v.
func (p *Partition1D) Owner(v uint32) int {
	// Binary search over the starts array.
	i := sort.Search(p.NumParts, func(i int) bool { return p.Starts[i+1] > v })
	return i
}

// Range returns the vertex range [lo,hi) owned by part i.
func (p *Partition1D) Range(i int) (lo, hi uint32) {
	return p.Starts[i], p.Starts[i+1]
}

// NumLocalVertices reports how many vertices part i owns.
func (p *Partition1D) NumLocalVertices(i int) uint32 {
	return p.Starts[i+1] - p.Starts[i]
}

// EdgeCut counts edges of g whose endpoints land in different parts — the
// traffic a 1-D distributed run must put on the network.
func (p *Partition1D) EdgeCut(g *CSR) int64 {
	var cut int64
	for v := uint32(0); v < g.NumVertices; v++ {
		ov := p.Owner(v)
		for _, t := range g.Neighbors(v) {
			if p.Owner(t) != ov {
				cut++
			}
		}
	}
	return cut
}

// ReplicatedPartition is 1-D vertex partitioning plus replication of
// high-degree vertices on every node, GraphLab's mitigation for power-law
// load imbalance (paper §6.1.1, "Partitioning schemes"). Replicated
// vertices receive local partial aggregations that are combined once per
// round instead of once per edge.
type ReplicatedPartition struct {
	Base *Partition1D
	// Replicated is the sorted list of vertex ids mirrored on all nodes.
	Replicated []uint32
	isRep      map[uint32]bool
}

// NewReplicatedPartition replicates every vertex whose degree (in g's
// stored orientation plus in-degree) exceeds degreeThreshold.
func NewReplicatedPartition(g *CSR, parts int, degreeThreshold int64) (*ReplicatedPartition, error) {
	base, err := NewPartition1D(g, parts)
	if err != nil {
		return nil, err
	}
	in := g.InDegrees()
	rp := &ReplicatedPartition{Base: base, isRep: make(map[uint32]bool)}
	for v := uint32(0); v < g.NumVertices; v++ {
		if g.Degree(v)+in[v] > degreeThreshold {
			rp.Replicated = append(rp.Replicated, v)
			rp.isRep[v] = true
		}
	}
	return rp, nil
}

// IsReplicated reports whether v is mirrored on all nodes.
func (p *ReplicatedPartition) IsReplicated(v uint32) bool { return p.isRep[v] }

// Partition2D is CombBLAS's edge partitioning: the adjacency matrix is cut
// into an r×r block grid (r=√parts) and node (i,j) owns block (i,j). The
// process count must be a perfect square (paper §4.3).
type Partition2D struct {
	NumParts int
	GridDim  int
	// RowStarts/ColStarts delimit the vertex ranges of the block rows and
	// columns; both have GridDim+1 entries.
	RowStarts, ColStarts []uint32
}

// NewPartition2D builds an r×r block partition of an n-vertex square
// adjacency matrix. parts must be a perfect square.
func NewPartition2D(numVertices uint32, parts int) (*Partition2D, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("graph: partition needs parts>0, got %d", parts)
	}
	r := int(math.Round(math.Sqrt(float64(parts))))
	if r*r != parts {
		return nil, fmt.Errorf("graph: 2-D partition requires a square process count, got %d", parts)
	}
	if uint32(r) > numVertices && numVertices > 0 {
		return nil, fmt.Errorf("graph: grid dimension %d exceeds %d vertices", r, numVertices)
	}
	starts := make([]uint32, r+1)
	for i := 0; i <= r; i++ {
		starts[i] = MustU32(int64(uint64(numVertices) * uint64(i) / uint64(r)))
	}
	cols := make([]uint32, r+1)
	copy(cols, starts)
	return &Partition2D{NumParts: parts, GridDim: r, RowStarts: starts, ColStarts: cols}, nil
}

// Owner returns the part owning edge (src,dst): the block whose row range
// contains src and whose column range contains dst.
func (p *Partition2D) Owner(src, dst uint32) int {
	ri := sort.Search(p.GridDim, func(i int) bool { return p.RowStarts[i+1] > src })
	ci := sort.Search(p.GridDim, func(i int) bool { return p.ColStarts[i+1] > dst })
	return ri*p.GridDim + ci
}

// Block returns the (row, col) grid coordinates of part i.
func (p *Partition2D) Block(i int) (row, col int) {
	return i / p.GridDim, i % p.GridDim
}
