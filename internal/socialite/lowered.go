package socialite

import (
	"math"

	"graphmaze/internal/backend"
	"graphmaze/internal/trace"
)

// This file lowers the BFS-shaped recursive rule onto the shared SpMV
// backend (DESIGN.md §12). The shape is the semi-naive workhorse
//
//	HEAD(t, $MIN(d)) :- HEAD(s, d0), <key-local prefix>, EDGE(s, t).
//
// i.e. the head table IS the driver table and the fold is $MIN. When
// every delta source emits the same head value L and L is strictly
// greater than every value already stored, the $MIN fold can only claim
// keys that are absent from the table — which is exactly the backend
// Expander's persistent-claims expansion. The lowering checks those two
// conditions every round at O(|delta|) cost and falls back to the
// generic evaluator (permanently, via the dead flag) the moment either
// fails, so rules that merely look like BFS still evaluate correctly.

// RuleLowering is a backend-lowered evaluator for one recursive rule.
// Obtain one with LowerBFSRule; drive it with Round and Close it when
// the fixpoint loop ends.
type RuleLowering struct {
	rule   *Rule
	prefix []Atom
	head   *VecTable
	pool   *backend.Pool
	exp    *backend.Expander
	env    *Env
	// frontier holds the delta keys that passed the per-round checks;
	// outA/outB alternate as Expand targets so a round never writes into
	// the slice the caller is still iterating as its delta.
	frontier []uint32
	outA     []uint32
	outB     []uint32
	flip     bool
	// maxVal is the largest value stored in the head table so far — the
	// monotonic-frontier guard.
	maxVal float64
	dead   bool
}

// LowerBFSRule recognizes the BFS shape — vec driver whose table is also
// the head table, key-local vec/scalar-let prefix, one trailing
// unweighted edge atom keyed by the driver, scalar $MIN head keyed by the
// edge destination — and builds a lowering for it. It mirrors
// compileScalarRule's checks, plus recursion (head == driver table) and
// the $MIN aggregate.
func LowerBFSRule(rule *Rule) (*RuleLowering, bool) {
	d := rule.Driver.Vec
	if d == nil || len(rule.Lets) != 0 || rule.Head.ValSlot < 0 {
		return nil, false
	}
	if rule.Head.Agg != AggMin || rule.Head.Table != d.Table {
		return nil, false
	}
	na := len(rule.Atoms)
	if na == 0 {
		return nil, false
	}
	last := rule.Atoms[na-1].Edge
	if last == nil || last.DstBound || last.WeightSlot >= 0 ||
		last.SrcSlot != d.KeySlot || rule.Head.KeySlot != last.DstSlot {
		return nil, false
	}
	prefix := rule.Atoms[:na-1]
	for _, a := range prefix {
		switch {
		case a.Vec != nil:
			if a.Vec.KeySlot != d.KeySlot {
				return nil, false
			}
		case a.Let != nil:
			if a.Let.FScalar == nil {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	head := rule.Head.Table
	if head.NumKeys() != last.Table.NumKeys() {
		return nil, false
	}
	// Seed the claimed set from the stored tuples; $MIN over vectors is
	// not a shape we lower.
	scalar := true
	maxVal := math.Inf(-1)
	head.ForEach(func(k uint32, v Value) {
		if len(v) != 1 {
			scalar = false
		} else if v[0] > maxVal {
			maxVal = v[0]
		}
	})
	if !scalar {
		return nil, false
	}
	pool := backend.NewPool(0)
	exp := backend.NewExpander(pool, backend.FromCSR(last.Table.g))
	head.ForEach(func(k uint32, _ Value) { exp.Claim(k) })
	return &RuleLowering{
		rule:   rule,
		prefix: prefix,
		head:   head,
		pool:   pool,
		exp:    exp,
		env:    &Env{Keys: make([]uint32, rule.KeySlots), Vals: make([]Value, rule.ValSlots)},
		maxVal: maxVal,
	}, true
}

// headVal evaluates the rule's loop-invariant prefix for one delta source
// and returns the value the head would emit for every (src, dst) pair.
func (l *RuleLowering) headVal(src uint32) (float64, bool) {
	d := l.rule.Driver.Vec
	v0, ok := d.Table.Get(src)
	if !ok {
		return 0, false
	}
	env := l.env
	env.Keys[d.KeySlot] = src
	if d.ValSlot >= 0 {
		env.Vals[d.ValSlot] = v0
	}
	for _, a := range l.prefix {
		if a.Vec != nil {
			v, vok := a.Vec.Table.Get(src)
			if !vok {
				return 0, false
			}
			if a.Vec.ValSlot >= 0 {
				env.Vals[a.Vec.ValSlot] = v
			}
			continue
		}
		env.setScalar(a.Let.OutSlot, a.Let.FScalar(env))
	}
	return env.Vals[l.rule.Head.ValSlot][0], true
}

// Round evaluates one semi-naive round over delta. On success it returns
// the next delta (the newly stored keys) and true. It returns false —
// without touching the table, so the caller can re-run the same delta on
// the generic evaluator — when the round violates the lowering's
// preconditions; the lowering is then dead for the rest of the run.
func (l *RuleLowering) Round(delta []uint32) ([]uint32, bool) {
	if l.dead {
		return nil, false
	}
	frontier := l.frontier[:0]
	level := 0.0
	first := true
	for _, src := range delta {
		v, ok := l.headVal(src)
		if !ok {
			continue
		}
		if math.IsNaN(v) || (!first && v != level) {
			l.dead = true
			return nil, false
		}
		if first {
			level, first = v, false
		}
		frontier = append(frontier, src)
	}
	l.frontier = frontier
	if first {
		// No productive delta source: the fixpoint is reached.
		return nil, true
	}
	if level <= l.maxVal {
		// A non-increasing level could improve stored tuples, which a
		// claims-based expansion cannot express.
		l.dead = true
		return nil, false
	}
	out := &l.outA
	if l.flip {
		out = &l.outB
	}
	l.flip = !l.flip
	next := l.exp.Expand(frontier, (*out)[:0])
	*out = next
	for _, dst := range next {
		l.head.Put(dst, Scalar(level))
	}
	l.maxVal = level
	return next, true
}

// Close releases the backend pool.
func (l *RuleLowering) Close() { l.pool.Close() }

// SetTracer attaches tr's metrics registry to the lowering's backend pool
// so dispatch/park latency and utilization are observable; nil detaches.
func (l *RuleLowering) SetTracer(tr *trace.Tracer) { l.pool.SetTracer(tr) }
