package trace

import (
	"sort"

	"graphmaze/internal/metrics"
	"graphmaze/internal/obs"
)

// PhaseStat aggregates every span sharing one category: how many there
// were, the time they cover, and the compute/network/wait attribution
// carried in span args (zero when a category records no attribution).
type PhaseStat struct {
	Cat        string  `json:"cat"`
	Count      int     `json:"count"`
	TotalSec   float64 `json:"total_sec"`
	ComputeSec float64 `json:"compute_sec"`
	NetworkSec float64 `json:"network_sec"`
	WaitSec    float64 `json:"wait_sec"`
}

// CounterSnapshot is one counter's final value with its per-worker lanes
// (lanes are omitted from JSON when all but one are zero — single-writer
// counters carry no balance information).
type CounterSnapshot struct {
	Name  string  `json:"name"`
	Total int64   `json:"total"`
	Lanes []int64 `json:"lanes,omitempty"`
}

// Summary is the machine-readable digest of a tracer: the per-category
// phase timeline, counter snapshots, and the virtual time covered by
// simulated-node spans.
type Summary struct {
	Spans    int               `json:"spans"`
	Timeline []PhaseStat       `json:"timeline"`
	Counters []CounterSnapshot `json:"counters"`
	// VirtualSeconds is the largest per-node sum of virtual span durations
	// — the simulated time the trace accounts for. Comparing it against
	// metrics.Report.SimulatedSeconds gives span coverage.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// SchedImbalance is max/mean busy time across par workers (0 when the
	// scheduling counters were not attached).
	SchedImbalance float64 `json:"sched_imbalance"`
	// Histograms carries the quantile summary (count, mean, p50/p90/p99/
	// p999, max — nanoseconds) of every registry histogram that recorded
	// anything: the per-category span-duration histograms plus whatever the
	// instrumented subsystems fed in.
	Histograms []obs.NamedQuantiles `json:"histograms,omitempty"`
}

// Summarize digests the tracer's spans and counters. Nil on the disabled
// tracer.
func Summarize(t *Tracer) *Summary {
	if t == nil {
		return nil
	}
	events := t.Events()
	byCat := make(map[string]*PhaseStat)
	perNode := make(map[int]float64)
	for _, ev := range events {
		st := byCat[ev.Cat]
		if st == nil {
			st = &PhaseStat{Cat: ev.Cat}
			byCat[ev.Cat] = st
		}
		st.Count++
		st.TotalSec += float64(ev.DurNS) / 1e9
		st.ComputeSec += ev.Args["compute_sec"]
		st.NetworkSec += ev.Args["network_sec"]
		st.WaitSec += ev.Args["wait_sec"]
		if ev.Pid >= PidNodeBase {
			perNode[ev.Pid] += float64(ev.DurNS) / 1e9
		}
	}
	s := &Summary{Spans: len(events)}
	for _, st := range byCat {
		s.Timeline = append(s.Timeline, *st)
	}
	sort.Slice(s.Timeline, func(i, j int) bool { return s.Timeline[i].Cat < s.Timeline[j].Cat })
	for _, sec := range perNode {
		if sec > s.VirtualSeconds {
			s.VirtualSeconds = sec
		}
	}

	t.mu.Lock()
	names := append([]string(nil), t.order...)
	counters := make([]*Counter, len(names))
	for i, n := range names {
		counters[i] = t.counters[n]
	}
	sched := t.sched
	t.mu.Unlock()
	for i, n := range names {
		snap := CounterSnapshot{Name: n, Total: counters[i].Value()}
		lanes := counters[i].Lanes()
		active := 0
		for _, v := range lanes {
			if v != 0 {
				active++
			}
		}
		if active > 1 {
			snap.Lanes = lanes
		}
		s.Counters = append(s.Counters, snap)
	}
	s.SchedImbalance = sched.Imbalance()
	s.Histograms = obs.HistStats(t.reg.Snapshot())
	return s
}

// Report extends metrics.Report — the paper's four run-level quantities —
// with the per-phase timeline and counter snapshots that explain them.
type Report struct {
	metrics.Report
	Trace *Summary `json:"trace,omitempty"`
}

// BuildReport combines a finalized metrics report with the tracer's
// digest. The tracer may be nil; the result then carries only the metrics.
func BuildReport(m metrics.Report, t *Tracer) Report {
	return Report{Report: m, Trace: Summarize(t)}
}

// SpanCoverage reports the fraction of SimulatedSeconds covered by
// virtual-node spans, in [0,1]; 0 when nothing was simulated or traced.
func (r Report) SpanCoverage() float64 {
	if r.Trace == nil || r.SimulatedSeconds <= 0 {
		return 0
	}
	cov := r.Trace.VirtualSeconds / r.SimulatedSeconds
	if cov > 1 {
		cov = 1
	}
	return cov
}
