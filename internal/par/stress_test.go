package par

import (
	"sync/atomic"
	"testing"
)

// These tests exist to run under `go test -race`: they exercise nested and
// repeated use of the loop primitives and then verify exact results, so the
// race detector can observe the goroutine structure under real contention.
// testing.Short() scales sizes down so the -short race pass stays fast
// without skipping the scenario.

// TestNestedForStress nests For inside For — the shape engines produce when
// a parallel kernel calls a parallel helper — and checks the exact total,
// which would be wrong if chunks overlapped or a join were missing.
func TestNestedForStress(t *testing.T) {
	rows, cols := 64, 1<<13
	if testing.Short() {
		rows, cols = 32, 1<<10
	}
	data := make([][]int64, rows)
	for r := range data {
		row := make([]int64, cols)
		for c := range row {
			row[c] = int64(r + c)
		}
		data[r] = row
	}
	var total int64
	For(rows, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			row := data[r]
			For(cols, func(clo, chi int) {
				var local int64
				for c := clo; c < chi; c++ {
					local += row[c]
				}
				atomic.AddInt64(&total, local)
			})
		}
	})
	var want int64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want += int64(r + c)
		}
	}
	if total != want {
		t.Fatalf("nested For total = %d, want %d", total, want)
	}
}

// TestForWorkersIndexedSlotDisjoint verifies the per-worker staging
// contract engines rely on: each worker index is handed out to exactly one
// goroutine per call, and the index ranges tile [0,n) without overlap. The
// per-slot writes are plain on purpose — if two goroutines ever shared a
// worker index, the race detector would fire.
func TestForWorkersIndexedSlotDisjoint(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	workers, n := 8, 10_000
	for it := 0; it < iters; it++ {
		type span struct{ lo, hi int }
		slots := make([]span, workers)
		covered := make([]int64, n)
		ForWorkersIndexed(workers, n, func(w, lo, hi int) {
			slots[w] = span{lo, hi} // plain write: slot w must be exclusive
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("iter %d: index %d covered %d times, want exactly once", it, i, c)
			}
		}
		for w, s := range slots {
			if s.hi < s.lo {
				t.Fatalf("iter %d: worker %d got inverted range [%d,%d)", it, w, s.lo, s.hi)
			}
		}
	}
}

// TestForReuseStress reruns For back-to-back with an accumulator carried
// across calls, the shape of an iterative kernel (PageRank's per-iteration
// parallel sweep), verifying no writes leak across the implicit barrier.
func TestForReuseStress(t *testing.T) {
	n := 1 << 15
	rounds := 50
	if testing.Short() {
		n, rounds = 1<<12, 10
	}
	acc := make([]int64, n)
	for round := 0; round < rounds; round++ {
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				acc[i]++ // plain write: For guarantees disjoint chunks and a full join
			}
		})
	}
	for i, v := range acc {
		if v != int64(rounds) {
			t.Fatalf("acc[%d] = %d, want %d", i, v, rounds)
		}
	}
}
