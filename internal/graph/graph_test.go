package graph

import (
	"testing"
)

// diamond returns the 4-vertex example graph from the paper's Figure 2:
// 0→1, 0→2, 1→2, 1→3, 2→3.
func diamond(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond(t)
	if g.NumVertices != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices)
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
	wantDeg := []int64{2, 2, 1, 0}
	for v, want := range wantDeg {
		if got := g.Degree(uint32(v)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNeighbors(t *testing.T) {
	g := diamond(t)
	got := g.Neighbors(1)
	if len(got) != 2 {
		t.Fatalf("Neighbors(1) = %v, want 2 entries", got)
	}
	seen := map[uint32]bool{got[0]: true, got[1]: true}
	if !seen[2] || !seen[3] {
		t.Errorf("Neighbors(1) = %v, want {2,3}", got)
	}
	if n := g.Neighbors(3); len(n) != 0 {
		t.Errorf("Neighbors(3) = %v, want empty", n)
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		u, v uint32
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 3, true}, {2, 3, true},
		{1, 0, false}, {3, 0, false}, {0, 3, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v (unsorted)", c.u, c.v, got, c.want)
		}
	}
	g.SortAdjacency()
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v (sorted)", c.u, c.v, got, c.want)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := diamond(t)
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose Validate: %v", err)
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edges = %d, want %d", tr.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !tr.HasEdge(e.Dst, e.Src) {
			t.Errorf("transpose missing edge (%d,%d)", e.Dst, e.Src)
		}
	}
	if !tr.SortedAdjacency() {
		t.Error("transpose should produce sorted adjacency")
	}
	// Double transpose restores the original edge set.
	back := tr.Transpose()
	for _, e := range g.Edges() {
		if !back.HasEdge(e.Src, e.Dst) {
			t.Errorf("double transpose lost edge (%d,%d)", e.Src, e.Dst)
		}
	}
}

func TestTransposeWeighted(t *testing.T) {
	g, err := FromWeightedEdges(3, []WeightedEdge{{0, 1, 1.5}, {0, 2, 2.5}, {1, 2, 3.5}})
	if err != nil {
		t.Fatalf("FromWeightedEdges: %v", err)
	}
	tr := g.Transpose()
	if !tr.Weighted() {
		t.Fatal("transpose dropped weights")
	}
	// Edge 1→2 weight 3.5 becomes 2→1.
	adj, w := tr.Neighbors(2), tr.EdgeWeights(2)
	found := false
	for i, v := range adj {
		if v == 1 {
			found = true
			if w[i] != 3.5 {
				t.Errorf("weight of transposed edge = %v, want 3.5", w[i])
			}
		}
	}
	if !found {
		t.Error("transpose missing weighted edge 2→1")
	}
}

func TestSortAdjacency(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 2}, {0, 1}, {1, 2}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	g.SortAdjacency()
	if !g.SortedAdjacency() {
		t.Fatal("SortedAdjacency() = false after SortAdjacency")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	adj := g.Neighbors(0)
	if adj[0] != 1 || adj[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2]", adj)
	}
}

func TestSortAdjacencyWeighted(t *testing.T) {
	g, err := FromWeightedEdges(2, []WeightedEdge{{0, 1, 10}, {0, 0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	g.SortAdjacency()
	adj, w := g.Neighbors(0), g.EdgeWeights(0)
	if adj[0] != 0 || adj[1] != 1 {
		t.Fatalf("sorted adjacency = %v", adj)
	}
	if w[0] != 5 || w[1] != 10 {
		t.Errorf("weights did not follow targets: %v", w)
	}
}

func TestDegrees(t *testing.T) {
	g := diamond(t)
	out := g.OutDegrees()
	in := g.InDegrees()
	wantOut := []int64{2, 2, 1, 0}
	wantIn := []int64{0, 1, 2, 2}
	for v := range wantOut {
		if out[v] != wantOut[v] {
			t.Errorf("out[%d] = %d, want %d", v, out[v], wantOut[v])
		}
		if in[v] != wantIn[v] {
			t.Errorf("in[%d] = %d, want %d", v, in[v], wantIn[v])
		}
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("expected error for out-of-range target")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	g := diamond(t)
	g.Targets[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range target")
	}
	g = diamond(t)
	g.Offsets[1] = -1
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted negative offset")
	}
	g = diamond(t)
	g.Offsets[0] = 1
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted nonzero first offset")
	}
	g = diamond(t)
	g.Weights = make([]float32, 2)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted mis-sized weights")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	tr := g.Transpose()
	if tr.NumEdges() != 0 {
		t.Errorf("transpose NumEdges = %d", tr.NumEdges())
	}
}

func TestMemoryBytes(t *testing.T) {
	g := diamond(t)
	want := int64(5*8 + 5*4) // 5 offsets × 8B + 5 targets × 4B
	if got := g.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}
	g, err := FromEdges(4, in)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges() returned %d edges, want %d", len(out), len(in))
	}
	count := map[Edge]int{}
	for _, e := range in {
		count[e]++
	}
	for _, e := range out {
		count[e]--
	}
	for e, c := range count {
		if c != 0 {
			t.Errorf("edge %v multiplicity mismatch %d", e, c)
		}
	}
}
