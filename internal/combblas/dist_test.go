package combblas

import (
	"math/rand"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/graph"
)

func randomPattern(t *testing.T, seed int64, n uint32, m int) *SpMat[struct{}] {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: uint32(r.Intn(int(n))), Dst: uint32(r.Intn(int(n)))}
	}
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return FromGraph(g)
}

func newTestGrid(t *testing.T, nodes int, n uint32) *Grid {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: nodes, Comm: cluster.MPI()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(c, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDistSpMVMatchesLocal(t *testing.T) {
	const n = 200
	m := randomPattern(t, 3, n, 1500)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) + 0.25
	}
	want, err := SpMV(m, x, PlusTimesF64())
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 4, 9} {
		grid := newTestGrid(t, nodes, n)
		got, err := DistSpMV(grid, m, x, PlusTimesF64(), 8, 1.0)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		for i := range want {
			d := want[i] - got[i]
			if d < 0 {
				d = -d
			}
			if d > 1e-9 {
				t.Fatalf("nodes=%d: y[%d] = %v, want %v", nodes, i, got[i], want[i])
			}
		}
		if nodes > 1 && grid.C.Report().BytesSent == 0 {
			t.Errorf("nodes=%d: no SpMV traffic", nodes)
		}
	}
}

func TestDistSpMVShapeError(t *testing.T) {
	m := randomPattern(t, 3, 50, 100)
	grid := newTestGrid(t, 4, 50)
	if _, err := DistSpMV(grid, m, make([]float64, 7), PlusTimesF64(), 8, 1.0); err == nil {
		t.Error("accepted mis-sized vector")
	}
}

func TestSpMSpVMatchesDenseSpMV(t *testing.T) {
	const n = 300
	m := randomPattern(t, 5, n, 2500)
	marks := make([]bool, n)
	frontier := []uint32{3, 77, 150}
	got := SpMSpV(m, frontier, marks)
	// Reference: dense boolean SpMV over the transpose orientation.
	x := make([]bool, n)
	for _, v := range frontier {
		x[v] = true
	}
	want, err := SpMV(m.Transpose(), x, OrAndBool())
	if err != nil {
		t.Fatal(err)
	}
	gotSet := map[uint32]bool{}
	for _, c := range got {
		if gotSet[c] {
			t.Fatalf("SpMSpV emitted duplicate %d", c)
		}
		gotSet[c] = true
	}
	for i, w := range want {
		if w != gotSet[uint32(i)] {
			t.Fatalf("vertex %d: SpMSpV=%v dense=%v", i, gotSet[uint32(i)], w)
		}
	}
	// Marks must be fully cleared for reuse.
	for i, mark := range marks {
		if mark {
			t.Fatalf("marks[%d] left set", i)
		}
	}
}

func TestDistSpMSpVMatchesLocal(t *testing.T) {
	const n = 250
	m := randomPattern(t, 6, n, 2000)
	marks := make([]bool, n)
	frontier := []uint32{0, 100, 249}
	want := SpMSpV(m, frontier, marks)
	wantSet := map[uint32]bool{}
	for _, c := range want {
		wantSet[c] = true
	}
	grid := newTestGrid(t, 4, n)
	got, err := DistSpMSpV(grid, m, frontier, marks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("DistSpMSpV produced %d vertices, want %d", len(got), len(want))
	}
	for _, c := range got {
		if !wantSet[c] {
			t.Fatalf("unexpected vertex %d", c)
		}
	}
}

func TestDistTriangleCountMatchesSerial(t *testing.T) {
	g := fixtureAcyclic(t)
	a := FromGraph(g)
	a2, err := SpGEMM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EWiseMultSum(a, a2)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 4, 9} {
		grid := newTestGrid(t, nodes, g.NumVertices)
		got, err := DistTriangleCount(grid, a, false)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if got != want {
			t.Errorf("nodes=%d: count %d, want %d", nodes, got, want)
		}
	}
}

func TestTransposeRectangular(t *testing.T) {
	// 2×4 matrix with one row.
	m := &SpMat[float32]{
		NumRows: 2, NumCols: 4,
		Offsets: []int64{0, 3, 3},
		Cols:    []uint32{0, 2, 3},
		Vals:    []float32{1, 2, 3},
	}
	mt := m.Transpose()
	if mt.NumRows != 4 || mt.NumCols != 2 {
		t.Fatalf("transpose shape %d×%d", mt.NumRows, mt.NumCols)
	}
	cols, vals := mt.Row(2)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 2 {
		t.Errorf("mt.Row(2) = %v/%v", cols, vals)
	}
}

func TestGridRequiresSquare(t *testing.T) {
	c, err := cluster.New(cluster.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(c, 100); err == nil {
		t.Error("accepted non-square node count")
	}
}
