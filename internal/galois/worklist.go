// Package galois reimplements the Galois programming model (paper §3):
// algorithms are parallel iterations over work items with dynamic work
// creation, scheduled by the runtime over chunked per-thread worklists
// with stealing. Galois is single-node (Table 2) but, because partitioning
// is flexible and updates are immediately globally visible, it is the only
// framework besides native code that can express true SGD (§3.2).
package galois

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkSize is the granularity of work distribution; Galois uses chunked
// FIFOs to amortize scheduling overhead.
const chunkSize = 64

// Worklist is a concurrent chunked work queue: producers push chunks,
// idle workers steal them.
type Worklist[T any] struct {
	mu     sync.Mutex
	chunks [][]T
}

// Push appends one item (chunk-buffered by the caller's context in
// ForEach; direct pushes create single-chunk entries).
func (w *Worklist[T]) Push(item T) {
	w.mu.Lock()
	n := len(w.chunks)
	if n > 0 && len(w.chunks[n-1]) < chunkSize && cap(w.chunks[n-1]) > len(w.chunks[n-1]) {
		w.chunks[n-1] = append(w.chunks[n-1], item)
	} else {
		c := make([]T, 1, chunkSize)
		c[0] = item
		w.chunks = append(w.chunks, c)
	}
	w.mu.Unlock()
}

// PushChunk appends a batch.
func (w *Worklist[T]) PushChunk(items []T) {
	if len(items) == 0 {
		return
	}
	w.mu.Lock()
	w.chunks = append(w.chunks, items)
	w.mu.Unlock()
}

// pop steals one chunk.
func (w *Worklist[T]) pop() ([]T, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.chunks)
	if n == 0 {
		return nil, false
	}
	c := w.chunks[n-1]
	w.chunks = w.chunks[:n-1]
	return c, true
}

// Empty reports whether no work remains queued.
func (w *Worklist[T]) Empty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.chunks) == 0
}

// Len reports the number of queued items.
func (w *Worklist[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, c := range w.chunks {
		n += len(c)
	}
	return n
}

// Ctx is a work item's execution context: Push schedules new work.
type Ctx[T any] struct {
	local []T
	list  *Worklist[T]
}

// Push schedules item for execution in this ForEach (autonomous
// scheduling: it may run in any order relative to existing work).
func (c *Ctx[T]) Push(item T) {
	c.local = append(c.local, item)
	if len(c.local) >= chunkSize {
		c.list.PushChunk(c.local)
		c.local = make([]T, 0, chunkSize)
	}
}

func (c *Ctx[T]) flush() {
	if len(c.local) > 0 {
		c.list.PushChunk(c.local)
		c.local = nil
	}
}

// ForEach processes the initial items and everything pushed during
// execution, in unspecified order, across GOMAXPROCS workers — Galois's
// autonomous scheduler.
func ForEach[T any](initial []T, body func(item T, ctx *Ctx[T])) {
	list := &Worklist[T]{}
	for lo := 0; lo < len(initial); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(initial) {
			hi = len(initial)
		}
		chunk := make([]T, hi-lo)
		copy(chunk, initial[lo:hi])
		list.PushChunk(chunk)
	}
	workers := runtime.GOMAXPROCS(0)
	var active int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Ctx[T]{list: list}
			for {
				chunk, ok := list.pop()
				if !ok {
					// Termination: no queued work and no worker mid-chunk
					// that could still produce more.
					if atomic.LoadInt64(&active) == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				atomic.AddInt64(&active, 1)
				for _, item := range chunk {
					body(item, ctx)
				}
				ctx.flush()
				atomic.AddInt64(&active, -1)
			}
		}()
	}
	wg.Wait()
}

// ForEachBulk is the bulk-synchronous executor (the paper's Algorithm 3
// uses it for BFS): work pushed during round k runs in round k+1, with a
// barrier between rounds. It returns the number of rounds executed.
func ForEachBulk[T any](initial []T, body func(item T, push func(T))) int {
	current := initial
	rounds := 0
	for len(current) > 0 {
		rounds++
		var mu sync.Mutex
		var next []T
		workers := runtime.GOMAXPROCS(0)
		if workers > len(current) {
			workers = len(current)
		}
		var wg sync.WaitGroup
		chunk := (len(current) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(current) {
				hi = len(current)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(items []T) {
				defer wg.Done()
				var local []T
				for _, item := range items {
					body(item, func(t T) { local = append(local, t) })
				}
				if len(local) > 0 {
					mu.Lock()
					next = append(next, local...)
					mu.Unlock()
				}
			}(current[lo:hi])
		}
		wg.Wait()
		current = next
	}
	return rounds
}

// OrderedWorklist schedules work by application-defined integer priority
// (lower runs first) — Galois's ordered/OBIM-style scheduling ("with and
// without application-defined priorities", paper §3). Strict global order
// is not guaranteed across workers; like OBIM it is a best-effort
// priority schedule, so algorithms must tolerate (or fix up) out-of-order
// execution.
type OrderedWorklist[T any] struct {
	mu      sync.Mutex
	buckets map[int][]T
	minPrio int
	size    int
}

// NewOrderedWorklist returns an empty priority worklist.
func NewOrderedWorklist[T any]() *OrderedWorklist[T] {
	return &OrderedWorklist[T]{buckets: make(map[int][]T), minPrio: int(^uint(0) >> 1)}
}

// Push schedules item at the given priority.
func (w *OrderedWorklist[T]) Push(priority int, item T) {
	w.mu.Lock()
	w.buckets[priority] = append(w.buckets[priority], item)
	if priority < w.minPrio {
		w.minPrio = priority
	}
	w.size++
	w.mu.Unlock()
}

// Len reports the number of queued items.
func (w *OrderedWorklist[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// pop removes a chunk from the lowest-priority bucket.
func (w *OrderedWorklist[T]) pop() ([]T, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.size > 0 {
		bucket, ok := w.buckets[w.minPrio]
		if !ok || len(bucket) == 0 {
			delete(w.buckets, w.minPrio)
			// Scan forward for the next non-empty bucket.
			next := int(^uint(0) >> 1)
			for p, b := range w.buckets {
				if len(b) > 0 && p < next {
					next = p
				}
			}
			w.minPrio = next
			continue
		}
		n := len(bucket)
		take := n
		if take > chunkSize {
			take = chunkSize
		}
		chunk := bucket[n-take:]
		w.buckets[w.minPrio] = bucket[:n-take]
		w.size -= take
		return chunk, true
	}
	return nil, false
}

// ForEachOrdered processes items in best-effort priority order (lowest
// first), including work pushed during execution, across GOMAXPROCS
// workers.
func ForEachOrdered[T any](initial []T, priority func(T) int, body func(item T, push func(prio int, item T))) {
	list := NewOrderedWorklist[T]()
	for _, item := range initial {
		list.Push(priority(item), item)
	}
	workers := runtime.GOMAXPROCS(0)
	var active int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				chunk, ok := list.pop()
				if !ok {
					if atomic.LoadInt64(&active) == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				atomic.AddInt64(&active, 1)
				for _, item := range chunk {
					body(item, list.Push)
				}
				atomic.AddInt64(&active, -1)
			}
		}()
	}
	wg.Wait()
}
