package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanRule flags trace spans that are begun but not reliably ended: a span
// value that is never End()ed is silently dropped from the trace (End is
// what records it), and one ended only inside a conditional loses exactly
// the interesting runs — early exits and error paths. The rule tracks
// `s := ...` definitions whose type is a named "Span" (with an End method)
// and requires an End() call either deferred or in the same statement list
// as the definition; spans that escape the function (returned, passed as an
// argument, stored) are the caller's responsibility and are skipped.
type SpanRule struct{}

// Name implements Rule.
func (*SpanRule) Name() string { return "span" }

// Doc implements Rule.
func (*SpanRule) Doc() string {
	return "trace spans must be End()ed on every path (defer it or End in the defining block)"
}

// spanUse accumulates what one function does with one span variable.
type spanUse struct {
	declPos   token.Pos
	name      string
	declList  *[]ast.Stmt // statement list containing the definition
	endSame   bool        // End() as a statement of that same list
	endNested bool        // End() somewhere deeper
	deferred  bool        // defer s.End() anywhere
	escapes   bool        // returned, passed, or stored: out of scope
}

// Check implements Rule.
func (r *SpanRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			r.checkFunc(p, fn, report)
		}
	}
}

func (r *SpanRule) checkFunc(p *Package, fn *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	spans := make(map[types.Object]*spanUse)

	// Pass 1: find span definitions and the statement list each lives in.
	forEachStmtList(fn.Body, func(list *[]ast.Stmt) {
		for _, stmt := range *list {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				continue
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil || !isSpanType(obj.Type()) {
					continue
				}
				spans[obj] = &spanUse{declPos: id.Pos(), name: id.Name, declList: list}
			}
		}
	})
	if len(spans) == 0 {
		return
	}

	// Pass 2: classify every End call by the statement list it appears in.
	forEachStmtList(fn.Body, func(list *[]ast.Stmt) {
		for _, stmt := range *list {
			var call *ast.CallExpr
			deferred := false
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
				deferred = true
			}
			if call == nil {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "End" {
				continue
			}
			use := spans[resolveBase(p, sel.X)]
			if use == nil {
				continue
			}
			switch {
			case deferred:
				use.deferred = true
			case list == use.declList:
				use.endSame = true
			default:
				use.endNested = true
			}
		}
	})

	// Pass 3: escape analysis — any use other than a method call on the
	// span itself hands responsibility elsewhere.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				markEscape(p, spans, res)
			}
		case *ast.CallExpr:
			for _, arg := range e.Args {
				markEscape(p, spans, arg)
			}
		case *ast.AssignStmt:
			if e.Tok != token.DEFINE {
				for _, rhs := range e.Rhs {
					markEscape(p, spans, rhs)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				markEscape(p, spans, elt)
			}
		case *ast.SendStmt:
			markEscape(p, spans, e.Value)
		}
		return true
	})

	for _, use := range spans {
		if use.escapes || use.deferred || use.endSame {
			continue
		}
		if use.endNested {
			report(use.declPos, "span %s is End()ed only on some paths: defer %s.End() or End it in the defining block", use.name, use.name)
		} else {
			report(use.declPos, "span %s is never End()ed, so it is never recorded", use.name)
		}
	}
}

// forEachStmtList visits every statement list in the body: block bodies
// plus switch/select case clauses.
func forEachStmtList(body *ast.BlockStmt, visit func(list *[]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			visit(&b.List)
		case *ast.CaseClause:
			visit(&b.Body)
		case *ast.CommClause:
			visit(&b.Body)
		}
		return true
	})
}

// resolveBase unwraps a selector/call chain (s.Arg(...).End) to the base
// identifier's object, or nil.
func resolveBase(p *Package, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[e]; obj != nil {
				return obj
			}
			return p.Info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// markEscape marks expr's object as escaping when it is a tracked span
// identifier (possibly behind parens). Method-call chains rooted at the
// span (s.Arg(1)) do not reach here because only whole argument/return
// expressions are marked.
func markEscape(p *Package, spans map[types.Object]*spanUse, expr ast.Expr) {
	for {
		pe, ok := expr.(*ast.ParenExpr)
		if !ok {
			break
		}
		expr = pe.X
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return
	}
	if use := spans[obj]; use != nil {
		use.escapes = true
	}
}

// isSpanType reports whether t (possibly a pointer) is a named type "Span"
// carrying an End method — the shape of trace.Span without importing it
// (fixtures and future span types match structurally).
func isSpanType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Span" {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "End" {
			return true
		}
	}
	return false
}
