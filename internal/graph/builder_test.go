package graph

import "testing"

func TestBuilderKeepDirection(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1) // duplicate
	if b.NumRawEdges() != 3 {
		t.Fatalf("NumRawEdges = %d", b.NumRawEdges())
	}
	g, err := b.Build(BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("expected edges missing")
	}
}

func TestBuilderSymmetrize(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdges([]Edge{{0, 1}, {1, 2}})
	g, err := b.Build(BuildOptions{Orientation: Symmetrize, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	for _, e := range []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !g.HasEdge(e.Src, e.Dst) {
			t.Errorf("missing symmetrized edge %v", e)
		}
	}
}

func TestBuilderSymmetrizeDedupsReciprocal(t *testing.T) {
	// Input already contains both directions; symmetrize + dedup must not
	// double them.
	b := NewBuilder(2)
	b.AddEdges([]Edge{{0, 1}, {1, 0}})
	g, err := b.Build(BuildOptions{Orientation: Symmetrize, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestBuilderOrientAcyclic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdges([]Edge{{3, 1}, {1, 3}, {2, 0}, {1, 1}})
	g, err := b.Build(BuildOptions{Orientation: OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	// (3,1) and (1,3) collapse to (1,3); (2,0)→(0,2); self-loop dropped.
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(1, 3) || !g.HasEdge(0, 2) {
		t.Error("acyclic orientation produced wrong edges")
	}
	// Every edge must go small→large.
	for _, e := range g.Edges() {
		if e.Src >= e.Dst {
			t.Errorf("edge %v not oriented small→large", e)
		}
	}
}

func TestBuilderDropSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdges([]Edge{{0, 0}, {0, 1}, {1, 1}})
	g, err := b.Build(BuildOptions{DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestBuilderSymmetrizeDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdges([]Edge{{0, 0}, {0, 1}})
	g, err := b.Build(BuildOptions{Orientation: Symmetrize, Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 7)
	if _, err := b.Build(BuildOptions{}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestBuilderDedupSortsAdjacency(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdges([]Edge{{0, 3}, {0, 1}, {0, 2}})
	g, err := b.Build(BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.SortedAdjacency() {
		t.Error("dedup should leave adjacency sorted")
	}
}

func TestNewBipartite(t *testing.T) {
	r := []WeightedEdge{{0, 1, 5}, {0, 0, 3}, {1, 1, 4}}
	bp, err := NewBipartite(2, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumRatings() != 3 {
		t.Fatalf("NumRatings = %d, want 3", bp.NumRatings())
	}
	if bp.ByUser.NumVertices != 2 || bp.ByItem.NumVertices != 2 {
		t.Error("orientation vertex counts wrong")
	}
	// Transposed weight must follow.
	adj, w := bp.ByItem.Neighbors(1), bp.ByItem.EdgeWeights(1)
	got := map[uint32]float32{}
	for i, u := range adj {
		got[u] = w[i]
	}
	if got[0] != 5 || got[1] != 4 {
		t.Errorf("ByItem(1) weights = %v", got)
	}
	if err := bp.ByUser.Validate(); err != nil {
		t.Errorf("ByUser: %v", err)
	}
	if err := bp.ByItem.Validate(); err != nil {
		t.Errorf("ByItem: %v", err)
	}
}

func TestNewBipartiteDuplicateKeepsLast(t *testing.T) {
	bp, err := NewBipartite(1, 1, []WeightedEdge{{0, 0, 1}, {0, 0, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumRatings() != 1 {
		t.Fatalf("NumRatings = %d, want 1", bp.NumRatings())
	}
	if w := bp.ByUser.EdgeWeights(0)[0]; w != 9 {
		t.Errorf("duplicate rating kept %v, want 9 (last)", w)
	}
}

func TestNewBipartiteValidation(t *testing.T) {
	if _, err := NewBipartite(0, 1, nil); err == nil {
		t.Error("expected error for 0 users")
	}
	if _, err := NewBipartite(1, 1, []WeightedEdge{{5, 0, 1}}); err == nil {
		t.Error("expected error for out-of-range user")
	}
	if _, err := NewBipartite(1, 1, []WeightedEdge{{0, 5, 1}}); err == nil {
		t.Error("expected error for out-of-range item")
	}
}
