package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src (one file) and returns the body of the named
// function.
func parseBody(t *testing.T, src, fn string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd.Body
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

const cfgFixture = `package fix

func f(xs []int, c bool) int {
	total := 0
	if c {
		return -1
	}
	for i := 0; i < len(xs); i++ {
		if xs[i] < 0 {
			continue
		}
		if xs[i] > 100 {
			break
		}
		total += xs[i]
	}
	for _, x := range xs {
		total -= x
	}
	switch total {
	case 0:
		return 0
	default:
		total++
	}
	return total
}
`

func TestBuildCFGShape(t *testing.T) {
	cfg := BuildCFG(parseBody(t, cfgFixture, "f"))
	if cfg.Exit == nil || len(cfg.Exit.Succs) != 0 || len(cfg.Exit.Nodes) != 0 {
		t.Fatalf("exit block must exist with no nodes and no successors: %+v", cfg.Exit)
	}
	if len(cfg.Blocks) < 10 {
		t.Fatalf("branches+loops+switch should produce many blocks, got %d", len(cfg.Blocks))
	}
	// Every return statement's block must edge to Exit.
	returns, returnEdges := 0, 0
	for _, b := range cfg.Blocks {
		hasReturn := false
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				hasReturn = true
				returns++
			}
		}
		if !hasReturn {
			continue
		}
		for _, s := range b.Succs {
			if s == cfg.Exit {
				returnEdges++
			}
		}
	}
	if returns != 3 || returnEdges != 3 {
		t.Fatalf("want 3 returns each with an exit edge, got returns=%d edges=%d", returns, returnEdges)
	}
	// Entry must reach Exit.
	seen := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Blocks[0])
	if !seen[cfg.Exit] {
		t.Fatal("exit unreachable from entry")
	}
}

// assignedLattice is a test lattice: the set of names definitely assigned
// on every path (must-analysis: join is intersection). A nil map is
// Bottom (unreachable path).
type assignedLattice struct{}

func (assignedLattice) Entry() map[string]bool  { return map[string]bool{} }
func (assignedLattice) Bottom() map[string]bool { return nil }

func (assignedLattice) Join(a, b map[string]bool) map[string]bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (assignedLattice) Equal(a, b map[string]bool) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (assignedLattice) Transfer(f map[string]bool, n ast.Node) map[string]bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || f == nil {
		return f
	}
	out := map[string]bool{}
	for k := range f {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id.Name] = true
		}
	}
	return out
}

const solveFixture = `package fix

func g(c bool) int {
	x := 1
	if c {
		y := 2
		_ = y
		return x + y
	}
	z := 3
	for i := 0; i < z; i++ {
		w := i
		_ = w
	}
	return x + z
}
`

func TestSolveMustAssignedAcrossBranchesLoopsAndEarlyReturn(t *testing.T) {
	cfg := BuildCFG(parseBody(t, solveFixture, "g"))
	in := Solve(cfg, assignedLattice{})

	atExit := in[cfg.Exit.Index]
	if atExit == nil {
		t.Fatal("exit must be reachable")
	}
	// x is assigned on both return paths; y only on the early return, z
	// and i only on the fall-through path — the join at exit keeps x alone.
	if !atExit["x"] {
		t.Errorf("x must be definitely assigned at exit, fact=%v", atExit)
	}
	for _, name := range []string{"y", "z", "i", "w"} {
		if atExit[name] {
			t.Errorf("%s is branch-local and must not survive the exit join, fact=%v", name, atExit)
		}
	}
	// The loop body (the block assigning w) must already know z and i.
	found := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "w" {
				found = true
				fact := in[b.Index]
				if fact == nil || !fact["x"] || !fact["z"] || !fact["i"] {
					t.Errorf("loop body must see x, z, i assigned, fact=%v", fact)
				}
			}
		}
	}
	if !found {
		t.Fatal("did not find the loop-body block")
	}
	// The dangling block after the early return is unreachable: Bottom.
	bottoms := 0
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			bottoms++
		}
	}
	if bottoms == 0 {
		t.Error("expected at least one unreachable (Bottom) block after the early return")
	}
}

func TestSolveLoopReachesFixpoint(t *testing.T) {
	// A loop whose body assigns a new name: the head's fact must converge
	// (the name never becomes must-assigned at the head because iteration
	// zero skips the body).
	src := `package fix

func h(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		t := i
		s = s + t
	}
	return s
}
`
	cfg := BuildCFG(parseBody(t, src, "h"))
	in := Solve(cfg, assignedLattice{})
	atExit := in[cfg.Exit.Index]
	if atExit == nil || !atExit["s"] || !atExit["i"] {
		t.Fatalf("s and i assigned before/at loop head, fact=%v", atExit)
	}
	if atExit["t"] {
		t.Fatalf("t is only assigned inside the loop body and must not be must-assigned at exit, fact=%v", atExit)
	}
}
