package backend

import (
	"testing"

	"graphmaze/internal/graph"
)

func buildVersioned(t *testing.T, n uint32, edges []graph.Edge, opts graph.DeltaOptions) *graph.Versioned {
	t.Helper()
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := graph.NewVersioned(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFromSnapshotCarriesEpoch(t *testing.T) {
	v := buildVersioned(t, 4, []graph.Edge{{Src: 0, Dst: 1}}, graph.DeltaOptions{})
	m0 := FromSnapshot(v.Current())
	if m0.Epoch != 1 {
		t.Fatalf("epoch-0 snapshot must map to matrix epoch 1, got %d", m0.Epoch)
	}
	if FromCSR(v.Current().CSR()).Epoch != 0 {
		t.Fatal("FromCSR must stay unversioned (epoch 0)")
	}
	snap, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m1 := FromSnapshot(snap); m1.Epoch != 2 {
		t.Fatalf("epoch-1 snapshot must map to matrix epoch 2, got %d", m1.Epoch)
	}
}

func TestSplitCacheKeyedByEpoch(t *testing.T) {
	v := buildVersioned(t, 8, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, graph.DeltaOptions{})
	var c splitCache
	m := FromSnapshot(v.Current())
	b1 := c.get(m, 4)
	b2 := c.get(m, 4)
	if &b1[0] != &b2[0] {
		t.Fatal("same epoch must reuse cached splits")
	}
	snap, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 3, Dst: 4}, {Src: 4, Dst: 5}})
	if err != nil {
		t.Fatal(err)
	}
	m2 := FromSnapshot(snap)
	b3 := c.get(m2, 4)
	if b3[len(b3)-1] != int(m2.NumRows) {
		t.Fatalf("advanced-epoch splits must cover the new vertex space: %v", b3)
	}
	if c.epoch != m2.Epoch {
		t.Fatal("cache not invalidated on epoch advance")
	}
	// Unversioned matrices must never trust the cache.
	u := FromCSR(snap.CSR())
	before := c.epoch
	c.get(u, 4)
	if c.epoch != 0 || before == 0 {
		t.Fatal("unversioned get must recompute and store epoch 0")
	}
}

func TestSumVecMulRebindAcrossEpochs(t *testing.T) {
	v := buildVersioned(t, 4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, graph.DeltaOptions{})
	pool := NewPool(2)
	defer pool.Close()

	// The kernel sums x over in-edges; bind to the transpose of each epoch.
	snap0 := v.Current()
	in0 := FromCSR(snap0.CSR().Transpose())
	in0.Epoch = uint64(snap0.Epoch()) + 1
	k := NewSumVecMul(pool, in0)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	k.Into(y, x)
	if y[1] != 1 || y[2] != 2 {
		t.Fatalf("epoch-0 product wrong: %v", y)
	}

	snap1, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 3, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	in1 := FromCSR(snap1.CSR().Transpose())
	in1.Epoch = uint64(snap1.Epoch()) + 1
	k.Rebind(in1)
	k.Into(y, x)
	if y[1] != 1+4 {
		t.Fatalf("rebound product must see the delta edge: %v", y)
	}
}

func TestTraversalRebindGrowsScratch(t *testing.T) {
	v := buildVersioned(t, 4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, graph.DeltaOptions{Symmetrize: true})
	pool := NewPool(2)
	defer pool.Close()
	tv := NewTraversal(pool, FromSnapshot(v.Current()), "test.level", nil)
	dist := []int32{0, -1, -1, -1}
	tv.Run(dist, 0)
	if dist[1] != 1 {
		t.Fatalf("epoch-0 traversal wrong: %v", dist)
	}

	// Grow the graph past the old scratch size and connect the new tail.
	snap, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 1, Dst: 100}, {Src: 100, Dst: 200}})
	if err != nil {
		t.Fatal(err)
	}
	tv.Rebind(FromSnapshot(snap))
	dist = make([]int32, snap.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	tv.Run(dist, 0)
	if dist[100] != 2 || dist[200] != 3 {
		t.Fatalf("rebound traversal must reach grown vertices: dist[100]=%d dist[200]=%d", dist[100], dist[200])
	}
}
