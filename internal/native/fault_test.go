package native

import (
	"testing"

	"graphmaze/internal/ckpt"
	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/fault"
)

// faultConfig builds a cluster config with a parsed fault plan and
// checkpointing. Plans are single-use (events are consumed when they
// fire), so each run parses a fresh one.
func faultConfig(t *testing.T, nodes int, spec string, interval int) (*cluster.Config, *fault.Plan) {
	t.Helper()
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return &cluster.Config{
		Nodes: nodes,
		Fault: plan,
		Ckpt:  ckpt.Config{Interval: interval},
	}, plan
}

// TestPageRankClusterRecovery is the end-to-end determinism check from
// DESIGN.md §10: a run that loses a node mid-computation and replays
// from the last checkpoint must produce bit-identical ranks to the
// fault-free run, and the recovery must be visible in the report.
func TestPageRankClusterRecovery(t *testing.T) {
	g := testGraphDirected(t)
	base, err := New().PageRank(g, core.PageRankOptions{Iterations: 6,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}

	cfg, plan := faultConfig(t, 4, "crash@5:n2", 2)
	res, err := New().PageRank(g, core.PageRankOptions{Iterations: 6,
		Exec: core.Exec{Cluster: cfg}})
	if err != nil {
		t.Fatal(err)
	}

	for i := range base.Ranks {
		if base.Ranks[i] != res.Ranks[i] {
			t.Fatalf("rank[%d] = %v after recovery, want %v (bit-identical)", i, res.Ranks[i], base.Ranks[i])
		}
	}
	if len(plan.Fired()) != 1 {
		t.Errorf("fired events = %v, want exactly the crash", plan.Fired())
	}
	rep := res.Stats.Report
	if rep.Recoveries != 1 || rep.FailedPhases != 1 {
		t.Errorf("Recoveries = %d, FailedPhases = %d, want 1/1", rep.Recoveries, rep.FailedPhases)
	}
	if rep.Checkpoints == 0 || rep.CheckpointBytes == 0 || rep.CheckpointSeconds <= 0 {
		t.Errorf("checkpoint accounting missing: %d ckpts, %d bytes, %v sec",
			rep.Checkpoints, rep.CheckpointBytes, rep.CheckpointSeconds)
	}
	if rep.RecoverySeconds <= 0 || rep.ReplayedPhases == 0 {
		t.Errorf("recovery accounting missing: %v sec, %d replayed", rep.RecoverySeconds, rep.ReplayedPhases)
	}
	if rep.SimulatedSeconds <= base.Stats.Report.SimulatedSeconds {
		t.Errorf("faulty run simulated %vs, should exceed fault-free %vs",
			rep.SimulatedSeconds, base.Stats.Report.SimulatedSeconds)
	}
}

// TestBFSClusterRecovery checks the same contract for BFS, whose
// inter-phase state includes in-flight frontier candidates in the
// cluster inbox.
func TestBFSClusterRecovery(t *testing.T) {
	g := testGraphUndirected(t)
	base, err := New().BFS(g, core.BFSOptions{Source: 3,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err != nil {
		t.Fatal(err)
	}

	cfg, plan := faultConfig(t, 3, "crash@2:n0", 1)
	res, err := New().BFS(g, core.BFSOptions{Source: 3, Exec: core.Exec{Cluster: cfg}})
	if err != nil {
		t.Fatal(err)
	}

	for i := range base.Distances {
		if base.Distances[i] != res.Distances[i] {
			t.Fatalf("dist[%d] = %d after recovery, want %d", i, res.Distances[i], base.Distances[i])
		}
	}
	if res.Stats.Iterations != base.Stats.Iterations {
		t.Errorf("levels = %d after recovery, want %d", res.Stats.Iterations, base.Stats.Iterations)
	}
	if len(plan.Fired()) != 1 {
		t.Errorf("fired events = %v, want exactly the crash", plan.Fired())
	}
	if rep := res.Stats.Report; rep.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", rep.Recoveries)
	}
}

// TestClusterRecoveryTimelineDeterministic runs the same seeded plan
// twice and asserts the fired-event timeline and the recovery-side
// accounting are identical. (Total simulated time is excluded: compute
// cost is measured from real wall time, so it jitters between runs;
// the fault/checkpoint/recovery charges are pure functions of the
// plan, the data sizes, and the cost model.)
func TestClusterRecoveryTimelineDeterministic(t *testing.T) {
	g := testGraphDirected(t)
	run := func() ([]fault.Event, *core.RunStats) {
		plan := fault.Seeded(99, fault.SeedConfig{Phases: 12, Nodes: 4, Crashes: 2})
		res, err := New().PageRank(g, core.PageRankOptions{Iterations: 6,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4,
				Fault: plan, Ckpt: ckpt.Config{Interval: 1}}}})
		if err != nil {
			t.Fatal(err)
		}
		return plan.Fired(), &res.Stats
	}
	fired1, stats1 := run()
	fired2, stats2 := run()
	if len(fired1) != len(fired2) {
		t.Fatalf("timelines differ in length: %v vs %v", fired1, fired2)
	}
	for i := range fired1 {
		if fired1[i] != fired2[i] {
			t.Errorf("event %d: %v vs %v", i, fired1[i], fired2[i])
		}
	}
	// RecoverySeconds also carries the failed phase's partial compute
	// (wall-measured), so only the checkpoint charge is exactly equal.
	r1, r2 := stats1.Report, stats2.Report
	if r1.CheckpointSeconds != r2.CheckpointSeconds || r1.CheckpointBytes != r2.CheckpointBytes {
		t.Errorf("checkpoint charges differ: %v/%d vs %v/%d",
			r1.CheckpointSeconds, r1.CheckpointBytes, r2.CheckpointSeconds, r2.CheckpointBytes)
	}
	if r1.ReplayedPhases != r2.ReplayedPhases || r1.Recoveries != r2.Recoveries ||
		r1.FailedPhases != r2.FailedPhases {
		t.Errorf("recovery accounting differs: %+v vs %+v", r1, r2)
	}
	if len(fired1) != 2 {
		t.Errorf("fired %d events, seeded plan has 2 crashes", len(fired1))
	}
}

// TestClusterCrashWithoutCheckpointFails: with checkpointing disabled
// there is nothing to recover from, so the injected fault surfaces.
func TestClusterCrashWithoutCheckpointFails(t *testing.T) {
	g := testGraphDirected(t)
	plan, err := fault.ParsePlan("crash@3:n1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New().PageRank(g, core.PageRankOptions{Iterations: 6,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4, Fault: plan}}})
	if err == nil {
		t.Fatal("crash without checkpointing should fail the run")
	}
	if !fault.IsInjected(err) {
		t.Errorf("error %v should classify as injected", err)
	}
}
