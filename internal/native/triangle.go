package native

import (
	"sync/atomic"
	"time"

	"graphmaze/internal/bitvec"
	"graphmaze/internal/cluster"
	"graphmaze/internal/codec"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
)

// bitvecDegreeThreshold is the adjacency size above which the native code
// switches from merge intersection to a bit-vector probe of the larger
// list (paper §6.1.2: the bit-vector data structure gave TC ≈2.2×).
const bitvecDegreeThreshold = 64

// TriangleCount implements core.Engine over an acyclically oriented graph
// with sorted adjacency: each vertex intersects its out-list with its
// out-neighbours' out-lists (eq. 3 counts every triangle i<j<k once).
func (e *Engine) TriangleCount(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	opt, err := core.CheckTriangleInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return e.triangleCluster(g, opt)
	}
	start := time.Now()
	count := e.triangleLocal(g)
	return &core.TriangleResult{
		Count: count,
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: 1},
	}, nil
}

// triangleGrain is the dynamic chunk size for the per-vertex triangle
// loop. Per-vertex cost is ~deg² — the worst case for static chunking on
// a power-law graph, where one hub-owning chunk serializes the whole
// count — so chunks are small and claimed off a shared counter.
const triangleGrain = 64

func (e *Engine) triangleLocal(g *graph.CSR) int64 {
	n := int(g.NumVertices)
	// Per-worker bit-vector scratch survives across the many small chunks
	// one worker claims (allocating it per chunk would dominate).
	scratch := make([]*bitvec.Vector, par.NumWorkers())
	return par.ReduceInt64Dynamic(n, triangleGrain, func(worker, lo, hi int) int64 {
		var local int64
		var bvOwner []uint32
		for v := lo; v < hi; v++ {
			adjV := g.Neighbors(uint32(v))
			if len(adjV) == 0 {
				continue
			}
			useBV := e.tuning.Bitvector && len(adjV) >= bitvecDegreeThreshold
			var bv *bitvec.Vector
			if useBV {
				bv = scratch[worker]
				if bv == nil {
					bv = bitvec.New(g.NumVertices)
					scratch[worker] = bv
				}
				for _, t := range adjV {
					bv.Set(t)
				}
				bvOwner = adjV
			}
			for _, u := range adjV {
				adjU := g.Neighbors(u)
				if useBV {
					// Probe each element of the (usually shorter) list
					// against the bit-vector: O(|adjU|) constant-time
					// lookups instead of a merge over both lists.
					for _, t := range adjU {
						if bv.Get(t) {
							local++
						}
					}
				} else {
					local += int64(intersectSortedCount(adjV, adjU))
				}
			}
			if useBV {
				for _, t := range bvOwner {
					bv.Clear(t)
				}
			}
		}
		return local
	})
}

// intersectSortedCount counts common elements of two sorted id lists.
func intersectSortedCount(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		switch {
		case ai < bj:
			i++
		case ai > bj:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// triangleCluster distributes counting over a 1-D partition. For every
// boundary edge (u,v) with owner(u)=s ≠ owner(v)=d, node s ships adj(u)
// to d exactly once per (u,d) pair; d then intersects it with adj(v) for
// each of its owned v ∈ adj(u). This is the paper's "share neighbourhood
// lists with neighbours" scheme, whose traffic dwarfs the graph itself
// (Table 1: 0–10^6 bytes per edge).
func (e *Engine) triangleCluster(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	cfg := *opt.Exec.Cluster
	cfg.Overlap = e.tuning.Overlap
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := g.Offsets[hi] - g.Offsets[lo]
		c.SetBaselineMemory(node, edges*4+int64(hi-lo+1)*8)
	}

	var total int64
	// Phase 1: local counting plus neighbourhood-list shipping.
	err = c.RunPhase(func(node int) error {
		lo, hi := part.Range(node)
		var local int64
		sentTo := make(map[int]*bitvec.Vector) // dedup (u,d) shipments
		for v := lo; v < hi; v++ {
			adjV := g.Neighbors(v)
			for _, u := range adjV {
				if owner := part.Owner(u); owner == node {
					local += int64(intersectSortedCount(adjV, g.Neighbors(u)))
				}
			}
			// v's list must reach the owners of v's remote out-neighbours:
			// the triangle (v,u,t) is counted where adj(u) lives.
			for _, u := range adjV {
				d := part.Owner(u)
				if d == node {
					continue
				}
				marks := sentTo[d]
				if marks == nil {
					marks = bitvec.New(hi - lo)
					sentTo[d] = marks
				}
				if !marks.SetAtomic(v - lo) {
					continue // adj(v) already queued for node d
				}
				payload, err := e.encodeAdjacency(v, adjV, g.NumVertices)
				if err != nil {
					return err
				}
				c.Send(node, d, payload)
			}
		}
		atomic.AddInt64(&total, local)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: intersect received lists with local adjacency.
	err = c.RunPhase(func(node int) error {
		var local int64
		for _, payload := range c.Recv(node) {
			lists, err := e.decodeAdjacencyBatch(payload)
			if err != nil {
				return err
			}
			for _, msg := range lists {
				for _, u := range msg.adj {
					if part.Owner(u) != node {
						continue
					}
					local += int64(intersectSortedCount(msg.adj, g.Neighbors(u)))
				}
			}
		}
		atomic.AddInt64(&total, local)
		// Final count allreduce.
		c.Account(node, 8, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}

	return &core.TriangleResult{
		Count: atomic.LoadInt64(&total),
		Stats: core.RunStats{
			WallSeconds: c.Report().SimulatedSeconds,
			Simulated:   true,
			Iterations:  1,
			Report:      c.Report(),
		},
	}, nil
}

type adjMessage struct {
	vertex uint32
	adj    []uint32
}

// encodeAdjacency frames one vertex's adjacency list: vertex id, payload
// length, then the (optionally compressed) sorted id list.
func (e *Engine) encodeAdjacency(v uint32, adj []uint32, universe uint32) ([]byte, error) {
	var body []byte
	var err error
	if e.tuning.Compression {
		body, err = codec.EncodeIDsAuto(adj, universe)
	} else {
		body, err = codec.EncodeIDs(codec.Raw, adj, universe)
	}
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8+len(body))
	putUint32(out, v)
	putUint32(out[4:], graph.MustU32(int64(len(body))))
	copy(out[8:], body)
	return out, nil
}

// decodeAdjacencyBatch parses a concatenation of encodeAdjacency frames
// (cluster.Send appends payloads between the same node pair).
func (e *Engine) decodeAdjacencyBatch(payload []byte) ([]adjMessage, error) {
	var out []adjMessage
	for len(payload) > 0 {
		if len(payload) < 8 {
			return nil, errShortFrame
		}
		v := getUint32(payload)
		bodyLen := int(getUint32(payload[4:]))
		if len(payload) < 8+bodyLen {
			return nil, errShortFrame
		}
		adj, err := codec.DecodeIDs(payload[8 : 8+bodyLen])
		if err != nil {
			return nil, err
		}
		out = append(out, adjMessage{vertex: v, adj: adj})
		payload = payload[8+bodyLen:]
	}
	return out, nil
}

var errShortFrame = errorString("native: truncated adjacency frame")

type errorString string

func (e errorString) Error() string { return string(e) }

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
