package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicRule flags plain reads and writes of a variable (or of the elements
// of a slice/array variable) that is elsewhere in the same package accessed
// through sync/atomic. Mixing the two access modes is how the engines'
// counters have historically gone racy: the atomic sites promise concurrent
// mutation, so every other touch of the same location needs the same
// discipline (or a //lint:ignore with the happens-before argument).
//
// The rule tracks object identity through go/types, so two local variables
// that merely share a name never alias, and it distinguishes element-level
// atomics (atomic.AddInt64(&xs[i], ...)) from whole-variable atomics: for
// the former only plain element accesses are flagged — passing the slice
// header around is fine.
type AtomicRule struct{}

// Name implements Rule.
func (*AtomicRule) Name() string { return "atomic" }

// Doc implements Rule.
func (*AtomicRule) Doc() string {
	return "no plain access to variables that are elsewhere accessed via sync/atomic"
}

// atomicUse records how a variable is touched by sync/atomic calls.
type atomicUse struct {
	pos     token.Pos
	fn      string // atomic function name at the first site
	element bool   // access is to an element of the variable, not the variable
}

// Check implements Rule.
func (r *AtomicRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	// Pass 1: find every &operand handed to a sync/atomic function and
	// resolve it to a types.Object.
	used := make(map[types.Object]atomicUse)
	atomicArgs := make(map[ast.Expr]bool) // operand expressions inside atomic calls
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				obj, element := addressedObject(p, unary.X)
				if obj == nil {
					continue
				}
				markAtomicOperand(unary.X, atomicArgs)
				if prev, ok := used[obj]; ok {
					// Element-level and whole-variable atomics on the same
					// object: keep the stricter (whole-variable) record.
					if prev.element && !element {
						used[obj] = atomicUse{pos: unary.Pos(), fn: calleeName(call), element: false}
					}
					continue
				}
				used[obj] = atomicUse{pos: unary.Pos(), fn: calleeName(call), element: element}
			}
			return true
		})
	}
	if len(used) == 0 {
		return
	}

	// Pass 2: flag plain accesses of the recorded objects.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.RangeStmt:
				// Ranging with a value variable reads the elements plainly
				// (index-only ranges touch just the slice header).
				if e.Value == nil {
					return true
				}
				obj, _ := addressedObject(p, e.X)
				if obj == nil {
					return true
				}
				if use, ok := used[obj]; ok && use.element {
					report(e.X.Pos(), "plain range over %s, whose elements are accessed via %s at %s",
						obj.Name(), use.fn, p.Fset.Position(use.pos))
				}
				return true
			case *ast.IndexExpr:
				obj, _ := addressedObject(p, e.X)
				if obj == nil {
					return true
				}
				use, ok := used[obj]
				if !ok || atomicArgs[e] || withinAtomicOperand(e, atomicArgs) {
					return true
				}
				report(e.Pos(), "plain access of %s, which is accessed via %s at %s",
					obj.Name(), use.fn, p.Fset.Position(use.pos))
				return false // don't re-report the base identifier
			case *ast.Ident:
				obj := p.Info.Uses[e]
				if obj == nil {
					return true
				}
				use, ok := used[obj]
				if !ok || use.element {
					// Element-level atomics: the variable itself (the slice
					// header) may be read and passed around freely.
					return true
				}
				if atomicArgs[e] || withinAtomicOperand(e, atomicArgs) {
					return true
				}
				report(e.Pos(), "plain access of %s, which is accessed via %s at %s",
					obj.Name(), use.fn, p.Fset.Position(use.pos))
			case *ast.SelectorExpr:
				obj := selectedObject(p, e)
				if obj == nil {
					return true
				}
				use, ok := used[obj]
				if !ok || use.element || atomicArgs[e] || withinAtomicOperand(e, atomicArgs) {
					return true
				}
				report(e.Pos(), "plain access of %s, which is accessed via %s at %s",
					obj.Name(), use.fn, p.Fset.Position(use.pos))
				return false
			}
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a function of sync/atomic.
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := p.Info.Uses[ident].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return "atomic." + sel.Sel.Name
	}
	return "sync/atomic"
}

// addressedObject resolves the variable underlying expr: an identifier, a
// field selection, or (setting element) an index into one of those.
func addressedObject(p *Package, expr ast.Expr) (types.Object, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if _, ok := obj.(*types.Var); ok {
			return obj, false
		}
	case *ast.SelectorExpr:
		return selectedObject(p, e), false
	case *ast.IndexExpr:
		obj, _ := addressedObject(p, e.X)
		return obj, true
	case *ast.ParenExpr:
		return addressedObject(p, e.X)
	}
	return nil, false
}

// selectedObject resolves x.f to f's object when it is a struct field or a
// package-level variable.
func selectedObject(p *Package, e *ast.SelectorExpr) types.Object {
	if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
		return sel.Obj()
	}
	if obj, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
		return obj
	}
	return nil
}

// markAtomicOperand records expr and every sub-expression on its access path
// so pass 2 does not flag the atomic call's own operand.
func markAtomicOperand(expr ast.Expr, set map[ast.Expr]bool) {
	for expr != nil {
		set[expr] = true
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			set[e.Sel] = true
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return
		}
	}
}

// withinAtomicOperand reports whether e sits inside an expression already
// marked as an atomic operand (e.g. the index expression of &xs[i]).
func withinAtomicOperand(e ast.Expr, set map[ast.Expr]bool) bool {
	return set[e]
}
