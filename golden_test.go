package graphmaze

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// The golden conformance suite pins every single-node engine's PageRank
// and BFS outputs bit-for-bit: PageRank ranks are stored as float64 bit
// patterns, BFS distances as plain ints. The fixtures were captured from
// the pre-backend-refactor engines, so any lowering onto the shared SpMV
// backend must reproduce the original arithmetic exactly — same fold
// order per row, same finishing expression — and must do so at every
// GOMAXPROCS setting.
//
// Regenerate (only when an intentional numeric change lands) with:
//
//	GRAPHMAZE_WRITE_GOLDEN=1 go test -run TestGoldenEngineOutputs .

const goldenPath = "testdata/golden_engine_outputs.json"

// goldenEngines lists the engines whose outputs are pinned. SociaLite and
// Galois are excluded: SociaLite's sharded sum fold regroups with the
// worker count, so its PageRank was never GOMAXPROCS-deterministic.
var goldenEngines = []string{"Native", "CombBLAS", "GraphLab", "Giraph"}

type goldenFile struct {
	// Ranks maps engine name to PageRank ranks as hex float64 bits.
	Ranks map[string][]string `json:"pagerank_bits"`
	// Dists maps engine name to BFS distances.
	Dists map[string][]int32 `json:"bfs_distances"`
}

func goldenInputs(t testing.TB) (*Graph, *Graph) {
	t.Helper()
	pr, err := Generate(Graph500{Scale: 11, EdgeFactor: 8, Seed: 9}, ForPageRank)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := Generate(Graph500{Scale: 11, EdgeFactor: 8, Seed: 9}, ForBFS)
	if err != nil {
		t.Fatal(err)
	}
	return pr, bfs
}

func goldenEngine(t testing.TB, name string) Engine {
	t.Helper()
	for _, eng := range Engines() {
		if eng.Name() == name {
			return eng
		}
	}
	t.Fatalf("no engine named %q", name)
	return nil
}

func captureOutputs(t testing.TB, prG, bfsG *Graph) *goldenFile {
	t.Helper()
	out := &goldenFile{Ranks: map[string][]string{}, Dists: map[string][]int32{}}
	for _, name := range goldenEngines {
		eng := goldenEngine(t, name)
		pr, err := eng.PageRank(prG, PageRankOptions{Iterations: 10, RandomJump: 0.3})
		if err != nil {
			t.Fatalf("%s PageRank: %v", name, err)
		}
		bits := make([]string, len(pr.Ranks))
		for i, r := range pr.Ranks {
			bits[i] = fmt.Sprintf("%016x", math.Float64bits(r))
		}
		out.Ranks[name] = bits
		bfs, err := eng.BFS(bfsG, BFSOptions{Source: 1})
		if err != nil {
			t.Fatalf("%s BFS: %v", name, err)
		}
		out.Dists[name] = bfs.Distances
	}
	return out
}

func TestGoldenEngineOutputs(t *testing.T) {
	prG, bfsG := goldenInputs(t)

	if os.Getenv("GRAPHMAZE_WRITE_GOLDEN") != "" {
		got := captureOutputs(t, prG, bfsG)
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with GRAPHMAZE_WRITE_GOLDEN=1): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	// The outputs must be bit-identical at every worker count, not just
	// the one the fixture was captured at.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		got := captureOutputs(t, prG, bfsG)
		for _, name := range goldenEngines {
			if w, g := want.Ranks[name], got.Ranks[name]; !equalStrings(w, g) {
				t.Errorf("GOMAXPROCS=%d %s: PageRank ranks differ from golden (first diff at %d)",
					procs, name, firstDiff(w, g))
			}
			w, g := want.Dists[name], got.Dists[name]
			if len(w) != len(g) {
				t.Errorf("GOMAXPROCS=%d %s: BFS distance count %d, want %d", procs, name, len(g), len(w))
				continue
			}
			for i := range w {
				if w[i] != g[i] {
					t.Errorf("GOMAXPROCS=%d %s: BFS dist[%d] = %d, want %d", procs, name, i, g[i], w[i])
					break
				}
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstDiff(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
