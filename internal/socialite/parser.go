package socialite

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements the front half of SociaLite: a parser and compiler
// from Datalog rule source — the notation the paper prints, e.g.
//
//	RANK2[n]($SUM(v)) :- RANK[s](v0), OUTDEG[s](d), v = (1-0.3)*v0/d, OUTEDGE[s](n).
//	BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0+1.
//	TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z).
//
// — down to the compiled Rule form that the evaluator executes. Both the
// bracketed location form TABLE[x](v…) and the flat form TABLE(x, v…) are
// accepted, as in the paper.

// Registry resolves table names during compilation.
type Registry struct {
	tables map[string]Table
}

// NewRegistry returns an empty table registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]Table)}
}

// Register adds a table under its name (case-sensitive, as in SociaLite).
func (r *Registry) Register(t Table) {
	r.tables[t.Name()] = t
}

// Lookup finds a table.
func (r *Registry) Lookup(name string) (Table, bool) {
	t, ok := r.tables[name]
	return t, ok
}

// Parse compiles one Datalog rule into executable form. The trailing
// period is optional.
func Parse(src string, reg *Registry) (*Rule, error) {
	p := &parser{src: src, reg: reg}
	rule, err := p.rule()
	if err != nil {
		return nil, fmt.Errorf("socialite: parse %q: %w", src, err)
	}
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	return rule, nil
}

// ---- tokenizer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokAggFn // $SUM, $MIN, $INC
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokTurnstile // :-
	tokEquals
	tokOp     // + - * /
	tokPeriod // statement terminator
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	reg *Registry
	pos int
	tok token

	// Compilation state.
	keySlots map[string]int
	valSlots map[string]int
	keyBound map[string]bool
	valBound map[string]bool
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: "+format, append([]any{p.tok.pos}, args...)...)
}

func (p *parser) next() error {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return nil
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c == '[':
		p.pos++
		p.tok = token{tokLBracket, "[", start}
	case c == ']':
		p.pos++
		p.tok = token{tokRBracket, "]", start}
	case c == ',':
		p.pos++
		p.tok = token{tokComma, ",", start}
	case c == '.':
		p.pos++
		p.tok = token{tokPeriod, ".", start}
	case c == '=':
		p.pos++
		p.tok = token{tokEquals, "=", start}
	case c == '+' || c == '-' || c == '*' || c == '/':
		p.pos++
		p.tok = token{tokOp, string(c), start}
	case c == ':':
		if strings.HasPrefix(p.src[p.pos:], ":-") {
			p.pos += 2
			p.tok = token{tokTurnstile, ":-", start}
		} else {
			return fmt.Errorf("at offset %d: stray ':'", start)
		}
	case c == '$':
		p.pos++
		for p.pos < len(p.src) && (unicode.IsLetter(rune(p.src[p.pos])) || unicode.IsDigit(rune(p.src[p.pos]))) {
			p.pos++
		}
		p.tok = token{tokAggFn, p.src[start:p.pos], start}
	case unicode.IsDigit(rune(c)):
		for p.pos < len(p.src) && (unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '.') {
			// A '.' is part of the number only when followed by a digit
			// (otherwise it terminates the rule).
			if p.src[p.pos] == '.' &&
				(p.pos+1 >= len(p.src) || !unicode.IsDigit(rune(p.src[p.pos+1]))) {
				break
			}
			p.pos++
		}
		p.tok = token{tokNumber, p.src[start:p.pos], start}
	case unicode.IsLetter(rune(c)) || c == '_':
		for p.pos < len(p.src) && (unicode.IsLetter(rune(p.src[p.pos])) || unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '_') {
			p.pos++
		}
		p.tok = token{tokIdent, p.src[start:p.pos], start}
	default:
		return fmt.Errorf("at offset %d: unexpected character %q", start, c)
	}
	return nil
}

func (p *parser) expect(kind tokKind, what string) error {
	if p.tok.kind != kind {
		return p.errf("expected %s, got %q", what, p.tok.text)
	}
	return p.next()
}

// ---- grammar ----

// headSpec carries the parsed head before slot resolution.
type headSpec struct {
	table      string
	keyVar     string // "" when the key is a literal (global aggregate)
	keyLit     bool
	agg        Agg
	valVar     string // "" when the value is a literal (e.g. $INC(1))
	valLit     float64
	isValueLit bool
}

type bodyAtom struct {
	table string
	args  []string // variable names; literals are not allowed in body atoms
}

type assignment struct {
	variable string
	expr     expr
}

// rule parses: head ":-" body ("." | EOF).
func (p *parser) rule() (*Rule, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	head, err := p.head()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokTurnstile, "':-'"); err != nil {
		return nil, err
	}
	var atoms []bodyAtom
	var assigns []assignment
	var order []any // evaluation order of atoms/assignments as written
	for {
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected a body atom or assignment, got %q", p.tok.text)
		}
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokEquals {
			// assignment: v = expr
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			a := assignment{variable: name, expr: e}
			assigns = append(assigns, a)
			order = append(order, a)
		} else {
			atom, err := p.atomArgs(name)
			if err != nil {
				return nil, err
			}
			atoms = append(atoms, atom)
			order = append(order, atom)
		}
		if p.tok.kind == tokComma {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind == tokPeriod {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input %q", p.tok.text)
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("rule has no body atoms")
	}
	return p.compile(head, order)
}

// head parses TABLE[k]($AGG(v)) or TABLE(k, $AGG(v)); the aggregation may
// be omitted for plain assignment heads (TABLE[k](v)).
func (p *parser) head() (headSpec, error) {
	var h headSpec
	if p.tok.kind != tokIdent {
		return h, p.errf("expected head table name, got %q", p.tok.text)
	}
	h.table = p.tok.text
	if err := p.next(); err != nil {
		return h, err
	}
	readKey := func() error {
		switch p.tok.kind {
		case tokIdent:
			h.keyVar = p.tok.text
		case tokNumber:
			h.keyLit = true
		default:
			return p.errf("expected head key, got %q", p.tok.text)
		}
		return p.next()
	}
	readValue := func() error {
		switch p.tok.kind {
		case tokAggFn:
			switch p.tok.text {
			case "$SUM":
				h.agg = AggSum
			case "$MIN":
				h.agg = AggMin
			case "$INC":
				h.agg = AggCount
			default:
				return p.errf("unknown aggregation %q", p.tok.text)
			}
			if err := p.next(); err != nil {
				return err
			}
			if err := p.expect(tokLParen, "'('"); err != nil {
				return err
			}
			switch p.tok.kind {
			case tokIdent:
				h.valVar = p.tok.text
			case tokNumber:
				v, err := strconv.ParseFloat(p.tok.text, 64)
				if err != nil {
					return p.errf("bad literal %q", p.tok.text)
				}
				h.valLit, h.isValueLit = v, true
			default:
				return p.errf("expected aggregation argument, got %q", p.tok.text)
			}
			if err := p.next(); err != nil {
				return err
			}
			return p.expect(tokRParen, "')'")
		case tokIdent:
			h.agg = AggAssign
			h.valVar = p.tok.text
			return p.next()
		default:
			return p.errf("expected head value, got %q", p.tok.text)
		}
	}

	if p.tok.kind == tokLBracket {
		// TABLE[k](value)
		if err := p.next(); err != nil {
			return h, err
		}
		if err := readKey(); err != nil {
			return h, err
		}
		if err := p.expect(tokRBracket, "']'"); err != nil {
			return h, err
		}
		if err := p.expect(tokLParen, "'('"); err != nil {
			return h, err
		}
		if err := readValue(); err != nil {
			return h, err
		}
		return h, p.expect(tokRParen, "')'")
	}
	// TABLE(k, value)
	if err := p.expect(tokLParen, "'('"); err != nil {
		return h, err
	}
	if err := readKey(); err != nil {
		return h, err
	}
	if err := p.expect(tokComma, "','"); err != nil {
		return h, err
	}
	if err := readValue(); err != nil {
		return h, err
	}
	return h, p.expect(tokRParen, "')'")
}

// atomArgs parses the argument lists of a body atom whose name was
// already consumed: NAME[k](args…) or NAME(args…).
func (p *parser) atomArgs(name string) (bodyAtom, error) {
	atom := bodyAtom{table: name}
	readVar := func() error {
		if p.tok.kind != tokIdent {
			return p.errf("expected a variable, got %q", p.tok.text)
		}
		atom.args = append(atom.args, p.tok.text)
		return p.next()
	}
	if p.tok.kind == tokLBracket {
		if err := p.next(); err != nil {
			return atom, err
		}
		if err := readVar(); err != nil {
			return atom, err
		}
		if err := p.expect(tokRBracket, "']'"); err != nil {
			return atom, err
		}
	}
	if err := p.expect(tokLParen, "'('"); err != nil {
		return atom, err
	}
	for {
		if err := readVar(); err != nil {
			return atom, err
		}
		if p.tok.kind == tokComma {
			if err := p.next(); err != nil {
				return atom, err
			}
			continue
		}
		break
	}
	return atom, p.expect(tokRParen, "')'")
}

// ---- expressions ----

// expr is a compiled scalar expression over rule variables.
type expr interface {
	// vars lists the variables referenced.
	vars() []string
	// compile resolves variables to value slots and returns the closure.
	compile(valSlot map[string]int) func(env *Env) float64
}

type numExpr float64

func (numExpr) vars() []string { return nil }
func (n numExpr) compile(map[string]int) func(*Env) float64 {
	v := float64(n)
	return func(*Env) float64 { return v }
}

type varExpr string

func (v varExpr) vars() []string { return []string{string(v)} }
func (v varExpr) compile(valSlot map[string]int) func(*Env) float64 {
	slot := valSlot[string(v)]
	return func(env *Env) float64 { return env.Vals[slot].S() }
}

type binExpr struct {
	op   byte
	l, r expr
}

func (b binExpr) vars() []string { return append(b.l.vars(), b.r.vars()...) }
func (b binExpr) compile(valSlot map[string]int) func(*Env) float64 {
	l, r := b.l.compile(valSlot), b.r.compile(valSlot)
	switch b.op {
	case '+':
		return func(env *Env) float64 { return l(env) + r(env) }
	case '-':
		return func(env *Env) float64 { return l(env) - r(env) }
	case '*':
		return func(env *Env) float64 { return l(env) * r(env) }
	default:
		return func(env *Env) float64 {
			d := r(env)
			if d == 0 {
				return 0 // SociaLite's arithmetic treats x/0 as 0 (no tuple)
			}
			return l(env) / d
		}
	}
}

// expr parses an additive expression.
func (p *parser) expr() (expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text[0]
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, l: left, r: right}
	}
	return left, nil
}

func (p *parser) term() (expr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text[0]
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, l: left, r: right}
	}
	return left, nil
}

func (p *parser) factor() (expr, error) {
	switch p.tok.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return numExpr(v), nil
	case tokIdent:
		v := varExpr(p.tok.text)
		if err := p.next(); err != nil {
			return nil, err
		}
		return v, nil
	case tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(tokRParen, "')'")
	case tokOp:
		if p.tok.text == "-" {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.factor()
			if err != nil {
				return nil, err
			}
			return binExpr{op: '-', l: numExpr(0), r: e}, nil
		}
	}
	return nil, p.errf("expected an expression, got %q", p.tok.text)
}

// ---- compilation ----

func (p *parser) keySlot(name string) int {
	if s, ok := p.keySlots[name]; ok {
		return s
	}
	s := len(p.keySlots)
	p.keySlots[name] = s
	return s
}

func (p *parser) valSlot(name string) int {
	if s, ok := p.valSlots[name]; ok {
		return s
	}
	s := len(p.valSlots)
	p.valSlots[name] = s
	return s
}

// compile resolves variables to slots and assembles the Rule: the first
// atom becomes the driver, later atoms become joins/checks, assignments
// become interleaved Lets at their written position.
func (p *parser) compile(head headSpec, order []any) (*Rule, error) {
	p.keySlots = map[string]int{}
	p.valSlots = map[string]int{}
	p.keyBound = map[string]bool{}
	p.valBound = map[string]bool{}
	rule := &Rule{Name: head.table}

	classify := func(a bodyAtom) (Table, error) {
		t, ok := p.reg.Lookup(a.table)
		if !ok {
			return nil, fmt.Errorf("unknown table %q", a.table)
		}
		return t, nil
	}

	first := true
	for _, item := range order {
		switch it := item.(type) {
		case bodyAtom:
			t, err := classify(it)
			if err != nil {
				return nil, err
			}
			switch tab := t.(type) {
			case *EdgeTable:
				if len(it.args) != 2 {
					return nil, fmt.Errorf("edge table %s takes 2 variables, got %d", it.table, len(it.args))
				}
				src, dst := it.args[0], it.args[1]
				ea := &EdgeAtom{Table: tab, WeightSlot: -1}
				ea.SrcSlot = p.keySlot(src)
				ea.DstSlot = p.keySlot(dst)
				if first {
					rule.Driver = Driver{Edge: ea}
					p.keyBound[src], p.keyBound[dst] = true, true
				} else {
					if !p.keyBound[src] {
						return nil, fmt.Errorf("edge atom %s joins on unbound variable %q", it.table, src)
					}
					if p.keyBound[dst] {
						ea.DstBound = true // containment check
					} else {
						p.keyBound[dst] = true
					}
					rule.Atoms = append(rule.Atoms, Atom{Edge: ea})
				}
			case *VecTable:
				if len(it.args) != 2 && !(first && len(it.args) == 2) {
					if len(it.args) != 2 {
						return nil, fmt.Errorf("keyed table %s takes [key](value), got %d args", it.table, len(it.args))
					}
				}
				key, val := it.args[0], it.args[1]
				va := &VecAtom{Table: tab}
				va.KeySlot = p.keySlot(key)
				va.ValSlot = p.valSlot(val)
				if first {
					rule.Driver = Driver{Vec: va}
					p.keyBound[key] = true
				} else {
					if !p.keyBound[key] {
						return nil, fmt.Errorf("table %s joins on unbound variable %q", it.table, key)
					}
					rule.Atoms = append(rule.Atoms, Atom{Vec: va})
				}
				p.valBound[val] = true
			default:
				return nil, fmt.Errorf("table %q has unsupported kind %T", it.table, t)
			}
			first = false
		case assignment:
			if first {
				return nil, fmt.Errorf("rule cannot start with an assignment")
			}
			for _, v := range it.expr.vars() {
				if !p.valBound[v] {
					return nil, fmt.Errorf("assignment %s = … uses unbound variable %q", it.variable, v)
				}
			}
			out := p.valSlot(it.variable)
			fn := it.expr.compile(p.valSlots)
			rule.Atoms = append(rule.Atoms, Atom{Let: &Let{OutSlot: out, FScalar: fn}})
			p.valBound[it.variable] = true
		}
	}

	// Head resolution.
	ht, ok := p.reg.Lookup(head.table)
	if !ok {
		return nil, fmt.Errorf("unknown head table %q", head.table)
	}
	headVec, ok := ht.(*VecTable)
	if !ok {
		return nil, fmt.Errorf("head table %q must be a keyed table", head.table)
	}
	rule.Head.Table = headVec
	rule.Head.Agg = head.agg
	if head.keyLit {
		rule.Head.KeySlot = -1
	} else {
		if !p.keyBound[head.keyVar] {
			return nil, fmt.Errorf("head key %q never bound in body", head.keyVar)
		}
		rule.Head.KeySlot = p.keySlot(head.keyVar)
	}
	if head.isValueLit {
		if head.valLit != 1 {
			return nil, fmt.Errorf("only $INC(1) literals are supported, got %v", head.valLit)
		}
		rule.Head.ValSlot = -1
	} else {
		if !p.valBound[head.valVar] {
			return nil, fmt.Errorf("head value %q never bound in body", head.valVar)
		}
		rule.Head.ValSlot = p.valSlot(head.valVar)
	}
	rule.KeySlots = len(p.keySlots)
	rule.ValSlots = len(p.valSlots)
	return rule, nil
}
