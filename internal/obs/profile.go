package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a one-shot CPU profile written to path and
// returns a stop function that ends the profile and closes the file. The
// stop function is safe to call exactly once.
func StartCPUProfile(path string) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile to path after forcing a GC so
// the profile reflects live objects, matching `go test -memprofile`.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
