GO ?= go

.PHONY: build test race lint fmt all

all: fmt lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the stress tests (and everything else) under the race detector;
# -short scales the stress workloads down so the pass stays quick.
race:
	$(GO) test -race -short ./...

# lint runs graphlint (the project-specific analyzer) and go vet.
lint:
	$(GO) run ./cmd/graphlint ./...
	$(GO) vet ./...

# fmt fails if any file needs gofmt, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
