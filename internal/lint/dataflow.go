package lint

import "go/ast"

// This file implements a generic forward dataflow fixpoint solver over
// the CFGs built in cfg.go. A rule supplies a Lattice: the fact type, the
// entry fact, the join, and the per-node transfer function. The solver
// iterates to a fixpoint and returns the fact at every block entry; rules
// then replay the transfer function through a block to recover facts at
// individual statements.

// Lattice describes one forward dataflow problem. F is the fact type.
// Transfer must be monotone with respect to Join for the solver to
// terminate; the solver additionally bounds its iteration count as a
// backstop against non-monotone transfer functions.
type Lattice[F any] interface {
	// Entry is the fact holding at function entry.
	Entry() F
	// Bottom is the identity of Join: the fact of an unreachable path.
	Bottom() F
	// Join merges facts flowing in from two predecessors.
	Join(a, b F) F
	// Equal reports whether two facts are indistinguishable (fixpoint
	// detection).
	Equal(a, b F) bool
	// Transfer applies one linearized CFG node to the fact.
	Transfer(f F, n ast.Node) F
}

// Solve runs the forward fixpoint and returns the fact at each block's
// entry, indexed by Block.Index. Unreachable blocks keep Bottom.
func Solve[F any](cfg *CFG, lat Lattice[F]) []F {
	in := make([]F, len(cfg.Blocks))
	for i := range in {
		in[i] = lat.Bottom()
	}
	in[0] = lat.Entry()

	// Worklist iteration; the bound is generous (facts per block times a
	// small constant) and exists only to guarantee termination if a rule
	// ships a non-monotone transfer function.
	work := make([]*Block, 0, len(cfg.Blocks))
	queued := make([]bool, len(cfg.Blocks))
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	push(cfg.Blocks[0])
	maxSteps := 64 * len(cfg.Blocks) * (len(cfg.Blocks) + 1)
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		out := FlowThrough(lat, in[b.Index], b)
		for _, s := range b.Succs {
			merged := lat.Join(in[s.Index], out)
			if !lat.Equal(merged, in[s.Index]) {
				in[s.Index] = merged
				push(s)
			}
		}
	}
	return in
}

// FlowThrough applies the block's nodes to fact in order and returns the
// fact at block exit.
func FlowThrough[F any](lat Lattice[F], fact F, b *Block) F {
	for _, n := range b.Nodes {
		fact = lat.Transfer(fact, n)
	}
	return fact
}
