package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: graphmaze/internal/par
cpu: fake cpu
BenchmarkParFor-8   	     100	  12345678 ns/op	     128 B/op	       2 allocs/op
BenchmarkPageRank/Native-8  	      10	 987654321 ns/op
PASS
`
	rs, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	if rs[0].Name != "BenchmarkParFor-8" || rs[0].NsPerOp != 12345678 || rs[0].Iterations != 100 {
		t.Errorf("first result wrong: %+v", rs[0])
	}
	if rs[0].Metrics["allocs/op"] != 2 || rs[0].Metrics["B/op"] != 128 {
		t.Errorf("metrics wrong: %+v", rs[0].Metrics)
	}
	if rs[0].Package != "graphmaze/internal/par" || rs[0].CPU != "fake cpu" {
		t.Errorf("context wrong: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkPageRank/Native-8" {
		t.Errorf("second result wrong: %+v", rs[1])
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkParFor-8":         "BenchmarkParFor",
		"BenchmarkParFor-128":       "BenchmarkParFor",
		"BenchmarkPageRank/Native":  "BenchmarkPageRank/Native",
		"BenchmarkOdd-Name":         "BenchmarkOdd-Name",
		"BenchmarkPageRank/CSR-4-2": "BenchmarkPageRank/CSR-4",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffDetectsNsRegression(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkX-4","iterations":10,"ns_per_op":200}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("2x slowdown not flagged; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("output missing REGRESSED marker:\n%s", out.String())
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"allocs/op":3}}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":110,"metrics":{"allocs/op":3}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("10%% slowdown under 1.25x threshold flagged; output:\n%s", out.String())
	}
}

func TestDiffDetectsAllocRegression(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"allocs/op":0}}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"allocs/op":5}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("0 -> 5 allocs/op not flagged; output:\n%s", out.String())
	}
}

func TestIsQuantileMetric(t *testing.T) {
	cases := map[string]bool{
		"p50-ns/op": true, "p99-ns/op": true, "p999-ns/op": true,
		"ns/op": false, "allocs/op": false, "p-ns/op": false,
		"pX9-ns/op": false, "p50-B/op": false,
	}
	for unit, want := range cases {
		if got := isQuantileMetric(unit); got != want {
			t.Errorf("isQuantileMetric(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestDiffQuantileRegression(t *testing.T) {
	oldP := writeBench(t, "old.json",
		`[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"p50-ns/op":40,"p99-ns/op":90}}]`)
	newP := writeBench(t, "new.json",
		`[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"p50-ns/op":42,"p99-ns/op":500}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("p99 90 -> 500 past 2x quantile threshold not flagged; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99-ns/op  REGRESSED") {
		t.Errorf("p99 regression not attributed in output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "p50-ns/op  REGRESSED") {
		t.Errorf("p50 within threshold wrongly flagged:\n%s", out.String())
	}
}

func TestDiffQuantileWithinThresholdPasses(t *testing.T) {
	oldP := writeBench(t, "old.json",
		`[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"p99-ns/op":90}}]`)
	newP := writeBench(t, "new.json",
		`[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"p99-ns/op":150}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("p99 within 2x quantile threshold flagged; output:\n%s", out.String())
	}
}

func TestDiffQuantileMissingFieldSkipped(t *testing.T) {
	// Old baseline predates histogram instrumentation: its record has no
	// quantile metrics. The new quantiles must be reported as skipped and
	// must not fail the diff, regardless of magnitude.
	oldP := writeBench(t, "old.json",
		`[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100}]`)
	newP := writeBench(t, "new.json",
		`[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"p99-ns/op":1e12}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("quantile present only in new file must not fail; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99-ns/op present in one file only; skipped") {
		t.Errorf("skipped quantile not reported:\n%s", out.String())
	}
}

func TestDiffNoOverlapIsClean(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkA-8","iterations":10,"ns_per_op":100}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkB-8","iterations":10,"ns_per_op":900}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("disjoint benchmark sets must not fail; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new only") || !strings.Contains(out.String(), "old only") {
		t.Errorf("unmatched benchmarks not reported:\n%s", out.String())
	}
}
