package graph

import (
	"sort"

	"graphmaze/internal/par"
)

// radixSortThreshold is the edge count below which the comparator sort is
// used: the radix sort's histogram passes only pay off once the input
// dwarfs the 2^16-entry count tables.
const radixSortThreshold = 1 << 14

// sortEdgesByKey sorts edges by (Src, Dst), the order Builder.Build's
// dedup scan needs. Large inputs take a radix path: each edge packs into
// a uint64 key (src in the high half, so key order equals the comparator
// order), then an LSD radix sort over 16-bit digits runs with parallel
// per-worker histogram and scatter passes — CSR construction is the setup
// cost of every experiment, and the comparator sort.Slice it replaces
// spent most of its time in interface calls.
func sortEdgesByKey(edges []Edge) {
	n := len(edges)
	if n < radixSortThreshold {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		})
		return
	}
	keys := make([]uint64, n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = uint64(edges[i].Src)<<32 | uint64(edges[i].Dst)
		}
	})
	keys = radixSortUint64(keys, make([]uint64, n))
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := keys[i]
			//lint:ignore truncate key packs two uint32 halves; the shift isolates the 32-bit src
			src := uint32(k >> 32)
			//lint:ignore truncate key packs two uint32 halves; the low word is the 32-bit dst
			dst := uint32(k)
			edges[i] = Edge{Src: src, Dst: dst}
		}
	})
}

// radixSortUint64 sorts keys ascending with a least-significant-digit
// radix sort over 16-bit digits, using tmp as the swap buffer. It returns
// the slice holding the sorted data (either keys or tmp, depending on how
// many passes ran). Passes whose digit is constant across all keys —
// every pass above the graph's vertex-id width — are detected from the
// histogram and skipped.
func radixSortUint64(keys, tmp []uint64) []uint64 {
	const digitBits = 16
	const buckets = 1 << digitBits
	n := len(keys)
	workers := par.NumWorkers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	hist := make([][]int64, workers)
	for shift := 0; shift < 64; shift += digitBits {
		// Parallel per-worker histograms over the same static chunking the
		// scatter pass will use (ForWorkersIndexed is deterministic for a
		// fixed (workers, n), which is what makes the scatter stable).
		par.ForWorkersIndexed(workers, n, func(w, lo, hi int) {
			h := hist[w]
			if h == nil {
				h = make([]int64, buckets)
				hist[w] = h
			} else {
				clear(h)
			}
			for i := lo; i < hi; i++ {
				h[(keys[i]>>shift)&(buckets-1)]++
			}
		})
		// Exclusive prefix over (digit, worker): worker w's first write for
		// digit d lands after all smaller digits and after workers < w,
		// which keeps the pass stable. A digit owning every key means the
		// pass would be the identity — skip it.
		var running int64
		trivial := false
		for d := 0; d < buckets; d++ {
			start := running
			for w := 0; w < workers; w++ {
				c := hist[w][d]
				hist[w][d] = start
				start += c
			}
			if start-running == int64(n) {
				trivial = true
				break
			}
			running = start
		}
		if trivial {
			continue
		}
		par.ForWorkersIndexed(workers, n, func(w, lo, hi int) {
			pos := hist[w]
			for i := lo; i < hi; i++ {
				d := (keys[i] >> shift) & (buckets - 1)
				tmp[pos[d]] = keys[i]
				pos[d]++
			}
		})
		keys, tmp = tmp, keys
	}
	return keys
}
