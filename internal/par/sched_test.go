package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestForWorkersChunkBalance asserts the static splitter's chunks never
// differ in size by more than one: the old ceil-based math made chunk
// sizes lumpy whenever n % workers != 0, which systematically skewed one
// worker's share.
func TestForWorkersChunkBalance(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 7, 8, 16} {
		for _, n := range []int{workers, workers + 1, 100, 101, 1000, 1023, 1024, 1025} {
			var mu sleepless
			var sizes []int
			ForWorkers(workers, n, func(lo, hi int) {
				mu.Lock()
				sizes = append(sizes, hi-lo)
				mu.Unlock()
			})
			checkBalanced(t, "ForWorkers", workers, n, sizes)

			sizes = nil
			ForWorkersIndexed(workers, n, func(_, lo, hi int) {
				mu.Lock()
				sizes = append(sizes, hi-lo)
				mu.Unlock()
			})
			checkBalanced(t, "ForWorkersIndexed", workers, n, sizes)
		}
	}
}

func checkBalanced(t *testing.T, name string, workers, n int, sizes []int) {
	t.Helper()
	want := workers
	if n < workers {
		want = n
	}
	if len(sizes) != want {
		t.Fatalf("%s(workers=%d, n=%d): %d chunks, want %d", name, workers, n, len(sizes), want)
	}
	minSz, maxSz, total := sizes[0], sizes[0], 0
	for _, s := range sizes {
		if s < minSz {
			minSz = s
		}
		if s > maxSz {
			maxSz = s
		}
		total += s
	}
	if total != n {
		t.Fatalf("%s(workers=%d, n=%d): chunks cover %d", name, workers, n, total)
	}
	if maxSz-minSz > 1 {
		t.Errorf("%s(workers=%d, n=%d): chunk sizes %v differ by %d, want ≤1", name, workers, n, sizes, maxSz-minSz)
	}
}

// sleepless is a tiny test-local spinlock so chunk-recording callbacks
// don't serialize through channel machinery.
type sleepless struct{ state int32 }

func (l *sleepless) Lock() {
	for !atomic.CompareAndSwapInt32(&l.state, 0, 1) {
	}
}
func (l *sleepless) Unlock() { atomic.StoreInt32(&l.state, 0) }

// TestForDynamicTiles asserts the dynamic loop covers [0,n) exactly once
// for grains above, below, and astride n, including the serial-cutover
// and empty cases.
func TestForDynamicTiles(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 1000, 4096, 100_000} {
		for _, grain := range []int{-1, 0, 1, 7, 64, 1024, n + 1} {
			marks := make([]int32, n)
			ForDynamic(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Fatalf("n=%d grain=%d: bad chunk [%d,%d)", n, grain, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, m)
				}
			}
		}
	}
}

// TestForDynamicChunkLayout asserts chunk lo bounds are multiples of the
// grain — the property bfsTopDown relies on to stage per-chunk results
// deterministically under dynamic scheduling.
func TestForDynamicChunkLayout(t *testing.T) {
	n, grain := 10_000, 64
	ForDynamic(n, grain, func(lo, hi int) {
		if lo%grain != 0 {
			t.Errorf("chunk lo %d not a multiple of grain %d", lo, grain)
		}
		if hi != lo+grain && hi != n {
			t.Errorf("chunk [%d,%d) is neither full-grain nor final", lo, hi)
		}
	})
}

// TestForDynamicIndexedWorkerBounds asserts worker indices stay below
// NumWorkers(), the bound callers size scratch arrays with.
func TestForDynamicIndexedWorkerBounds(t *testing.T) {
	limit := NumWorkers()
	var covered int64
	ForDynamicIndexed(50_000, 16, func(worker, lo, hi int) {
		if worker < 0 || worker >= limit {
			t.Errorf("worker index %d outside [0,%d)", worker, limit)
		}
		atomic.AddInt64(&covered, int64(hi-lo))
	})
	if covered != 50_000 {
		t.Errorf("covered %d of 50000", covered)
	}
}

// offsetsFromDegrees builds a CSR-style prefix-sum array.
func offsetsFromDegrees(degs []int64) []int64 {
	offsets := make([]int64, len(degs)+1)
	for i, d := range degs {
		offsets[i+1] = offsets[i] + d
	}
	return offsets
}

// TestForOffsetsTiles covers the edge-balanced splitter's corner cases:
// empty-vertex runs, n=0, a single vertex owning every edge, an all-zero
// offsets array, and random power-law-ish degree sequences.
func TestForOffsetsTiles(t *testing.T) {
	cases := map[string][]int64{
		"empty":         {},
		"oneVertex":     {5},
		"zeroEdges":     make([]int64, 100),
		"hubOwnsAll":    append(append(make([]int64, 0, 101), 1_000_000), make([]int64, 100)...),
		"hubAtEnd":      append(make([]int64, 100), 1_000_000),
		"zeroRuns":      {0, 0, 0, 7, 0, 0, 0, 9, 0, 0, 0, 0, 3, 0, 0},
		"uniform":       {4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4},
		"singleZeroDeg": {0},
	}
	rng := rand.New(rand.NewSource(7))
	skewed := make([]int64, 5000)
	for i := range skewed {
		skewed[i] = int64(rng.ExpFloat64() * 4)
		if rng.Intn(500) == 0 {
			skewed[i] += int64(rng.Intn(10_000))
		}
	}
	cases["skewed"] = skewed

	for name, degs := range cases {
		offsets := offsetsFromDegrees(degs)
		n := len(degs)
		marks := make([]int32, n)
		ForOffsets(offsets, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Fatalf("%s: bad chunk [%d,%d)", name, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("%s: vertex %d visited %d times", name, i, m)
			}
		}
	}
}

// TestOffsetSplitsBalance asserts the split quality bound: every part
// holds at most total/k + maxDegree edges (cuts move by whole vertices,
// so one vertex's degree is the unavoidable slack).
func TestOffsetSplitsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	degs := make([]int64, 20_000)
	var maxDeg int64
	for i := range degs {
		degs[i] = int64(rng.Intn(8))
		if rng.Intn(1000) == 0 {
			degs[i] = int64(1000 + rng.Intn(5000))
		}
		if degs[i] > maxDeg {
			maxDeg = degs[i]
		}
	}
	offsets := offsetsFromDegrees(degs)
	total := offsets[len(offsets)-1]
	for _, k := range []int{1, 2, 3, 8, 17} {
		bounds := OffsetSplits(offsets, k)
		if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != len(degs) {
			t.Fatalf("k=%d: bad bounds %v", k, bounds[:min(len(bounds), 8)])
		}
		for p := 0; p < k; p++ {
			if bounds[p] > bounds[p+1] {
				t.Fatalf("k=%d: bounds not monotone at %d", k, p)
			}
			part := offsets[bounds[p+1]] - offsets[bounds[p]]
			if limit := total/int64(k) + maxDeg + 1; part > limit {
				t.Errorf("k=%d part %d: %d edges exceeds %d", k, p, part, limit)
			}
		}
	}
}

// TestReduceMatchesSerial checks every reduction variant against the
// serial fold it replaces.
func TestReduceMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 65_536} {
		vals := make([]int64, n)
		fvals := make([]float64, n)
		var wantI int64
		var wantF, wantMax float64
		for i := range vals {
			vals[i] = int64(i*7%13 - 6)
			fvals[i] = float64(i%97) / 7
			wantI += vals[i]
			wantF += fvals[i]
			if fvals[i] > wantMax {
				wantMax = fvals[i]
			}
		}
		sumI := func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}
		sumF := func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += fvals[i]
			}
			return s
		}
		if got := ReduceInt64(n, sumI); got != wantI {
			t.Errorf("n=%d: ReduceInt64 = %d, want %d", n, got, wantI)
		}
		if got := ReduceInt64Dynamic(n, 64, func(_, lo, hi int) int64 { return sumI(lo, hi) }); got != wantI {
			t.Errorf("n=%d: ReduceInt64Dynamic = %d, want %d", n, got, wantI)
		}
		if got := ReduceFloat64(n, sumF); !closeEnough(got, wantF) {
			t.Errorf("n=%d: ReduceFloat64 = %v, want %v", n, got, wantF)
		}
		if got := ReduceFloat64Dynamic(n, 64, func(_, lo, hi int) float64 { return sumF(lo, hi) }); !closeEnough(got, wantF) {
			t.Errorf("n=%d: ReduceFloat64Dynamic = %v, want %v", n, got, wantF)
		}
		got := ReduceFloat64Max(n, func(lo, hi int) float64 {
			worst := 0.0
			for i := lo; i < hi; i++ {
				if fvals[i] > worst {
					worst = fvals[i]
				}
			}
			return worst
		})
		if got != wantMax {
			t.Errorf("n=%d: ReduceFloat64Max = %v, want %v", n, got, wantMax)
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
