package core

import (
	"math"
	"testing"

	"graphmaze/internal/graph"
)

// paperGraph is Figure 2 of the paper: 0→1, 0→2, 1→2, 1→3, 2→3.
func paperGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPageRankOptionsDefaults(t *testing.T) {
	opt, err := CheckPageRankInput(paperGraph(t), PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.RandomJump != 0.3 || opt.Iterations != 10 {
		t.Errorf("defaults = %+v", opt)
	}
}

func TestPageRankOptionsValidation(t *testing.T) {
	if _, err := CheckPageRankInput(paperGraph(t), PageRankOptions{RandomJump: 1.5}); err == nil {
		t.Error("accepted jump > 1")
	}
	if _, err := CheckPageRankInput(paperGraph(t), PageRankOptions{Iterations: -1}); err == nil {
		t.Error("accepted negative iterations")
	}
	if _, err := CheckPageRankInput(nil, PageRankOptions{}); err == nil {
		t.Error("accepted nil graph")
	}
}

func TestBFSInputValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := CheckBFSInput(g, BFSOptions{Source: 99}); err == nil {
		t.Error("accepted out-of-range source")
	}
	if _, err := CheckBFSInput(nil, BFSOptions{}); err == nil {
		t.Error("accepted nil graph")
	}
}

func TestTriangleInputValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := CheckTriangleInput(g, TriangleOptions{}); err == nil {
		t.Error("accepted unsorted adjacency")
	}
	g.SortAdjacency()
	if _, err := CheckTriangleInput(g, TriangleOptions{}); err != nil {
		t.Errorf("rejected sorted graph: %v", err)
	}
}

func TestCFOptionsDefaults(t *testing.T) {
	bp, err := graph.NewBipartite(2, 2, []graph.WeightedEdge{{Src: 0, Dst: 0, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := CheckCFInput(bp, CFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.K != 16 || opt.Iterations != 5 || opt.LambdaP != 0.05 {
		t.Errorf("defaults = %+v", opt)
	}
	sgdOpt, _ := CheckCFInput(bp, CFOptions{Method: SGD})
	if sgdOpt.LearningRate <= opt.LearningRate {
		t.Error("SGD default rate should exceed GD default rate")
	}
}

func TestCFOptionsValidation(t *testing.T) {
	bp, _ := graph.NewBipartite(1, 1, []graph.WeightedEdge{{Src: 0, Dst: 0, Weight: 1}})
	for _, bad := range []CFOptions{
		{K: -1},
		{Iterations: -2},
		{LearningRate: -1},
		{StepDecay: 2},
		{LambdaP: -1},
	} {
		if _, err := CheckCFInput(bp, bad); err == nil {
			t.Errorf("accepted bad options %+v", bad)
		}
	}
	if _, err := CheckCFInput(nil, CFOptions{}); err == nil {
		t.Error("accepted nil ratings")
	}
}

func TestRefPageRankPaperGraph(t *testing.T) {
	g := paperGraph(t)
	pr := RefPageRank(g, PageRankOptions{Iterations: 1})
	// After one iteration from PR=1: vertex 0 has no in-edges → r = 0.3.
	if math.Abs(pr[0]-0.3) > 1e-12 {
		t.Errorf("pr[0] = %v, want 0.3", pr[0])
	}
	// Vertex 1 receives from 0 (deg 2): 0.3 + 0.7·(1/2) = 0.65.
	if math.Abs(pr[1]-0.65) > 1e-12 {
		t.Errorf("pr[1] = %v, want 0.65", pr[1])
	}
	// Vertex 3 receives from 1 (deg 2) and 2 (deg 1): 0.3 + 0.7·(1.5) = 1.35.
	if math.Abs(pr[3]-1.35) > 1e-12 {
		t.Errorf("pr[3] = %v, want 1.35", pr[3])
	}
}

func TestRefPageRankSink(t *testing.T) {
	// Isolated vertex: rank settles at r.
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	pr := RefPageRank(g, PageRankOptions{Iterations: 20})
	if math.Abs(pr[0]-0.3) > 1e-9 {
		t.Errorf("source-only vertex rank = %v, want 0.3", pr[0])
	}
}

func TestRefBFS(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4, symmetrized.
	b := graph.NewBuilder(5)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	dist := RefBFS(g, 0)
	want := []int32{0, 1, 2, 3, -1}
	if !EqualDistances(dist, want) {
		t.Errorf("dist = %v, want %v", dist, want)
	}
	dist2 := RefBFS(g, 2)
	want2 := []int32{2, 1, 0, 1, -1}
	if !EqualDistances(dist2, want2) {
		t.Errorf("dist from 2 = %v, want %v", dist2, want2)
	}
}

func TestRefTriangleCount(t *testing.T) {
	// K4 has 4 triangles. Orient acyclically.
	b := graph.NewBuilder(4)
	for u := uint32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := RefTriangleCount(g); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
}

func TestRefTriangleCountPaperGraph(t *testing.T) {
	// The paper's Figure 2 graph has 2 triangles (0,1,2) and (1,2,3).
	g := paperGraph(t)
	g.SortAdjacency()
	if got := RefTriangleCount(g); got != 2 {
		t.Errorf("paper graph triangles = %d, want 2", got)
	}
}

func TestRefTriangleCountTriangleFree(t *testing.T) {
	// A path has no triangles.
	b := graph.NewBuilder(5)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}})
	g, _ := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if got := RefTriangleCount(g); got != 0 {
		t.Errorf("path triangles = %d, want 0", got)
	}
}

func TestRefCollabFilterGDConverges(t *testing.T) {
	ratings := []graph.WeightedEdge{
		{Src: 0, Dst: 0, Weight: 5}, {Src: 0, Dst: 1, Weight: 3},
		{Src: 1, Dst: 0, Weight: 4}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 2}, {Src: 2, Dst: 2, Weight: 5},
	}
	bp, err := graph.NewBipartite(3, 3, ratings)
	if err != nil {
		t.Fatal(err)
	}
	res := RefCollabFilterGD(bp, CFOptions{K: 4, Iterations: 50, LearningRate: 0.02, Seed: 7})
	if len(res.RMSE) != 50 {
		t.Fatalf("RMSE trajectory has %d entries", len(res.RMSE))
	}
	if !MonotonicallyNonIncreasing(res.RMSE, 1e-6) {
		t.Errorf("GD RMSE not non-increasing: %v", res.RMSE[:5])
	}
	if res.RMSE[49] >= res.RMSE[0]*0.9 {
		t.Errorf("GD barely converged: first %v last %v", res.RMSE[0], res.RMSE[49])
	}
}

func TestInitFactorsDeterministicAndBounded(t *testing.T) {
	a := InitFactors(10, 8, 3)
	b := InitFactors(10, 8, 3)
	c := InitFactors(10, 8, 4)
	if len(a) != 80 {
		t.Fatalf("len = %d", len(a))
	}
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different factors")
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("factor %v out of [0,1]", a[i])
		}
	}
	if !diff {
		t.Error("different seeds produced identical factors")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil) = %v", got)
	}
}

func TestRMSEZeroForPerfectFactors(t *testing.T) {
	// One user, one item, rating = p·q exactly.
	bp, _ := graph.NewBipartite(1, 1, []graph.WeightedEdge{{Src: 0, Dst: 0, Weight: 6}})
	u := []float32{2, 1}
	v := []float32{2, 2}
	if got := RMSE(bp, 2, u, v); got != 0 {
		t.Errorf("RMSE = %v, want 0", got)
	}
}

func TestComparePageRank(t *testing.T) {
	if d := ComparePageRank([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Errorf("identical vectors differ by %v", d)
	}
	if d := ComparePageRank([]float64{1}, []float64{1.1}); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("relative diff = %v, want 0.1", d)
	}
}

func TestMonotonicallyNonIncreasing(t *testing.T) {
	if !MonotonicallyNonIncreasing([]float64{3, 2, 2, 1}, 0) {
		t.Error("decreasing sequence rejected")
	}
	if MonotonicallyNonIncreasing([]float64{1, 2}, 0.5) {
		t.Error("rising sequence accepted")
	}
	if !MonotonicallyNonIncreasing([]float64{1, 1.4}, 0.5) {
		t.Error("rise within tolerance rejected")
	}
}

func TestCFMethodString(t *testing.T) {
	if GradientDescent.String() != "gd" || SGD.String() != "sgd" {
		t.Error("CFMethod names wrong")
	}
}

func TestValidateBFSAcceptsReference(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 1, Dst: 3}})
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	dist := RefBFS(g, 0)
	if err := ValidateBFS(g, 0, dist); err != nil {
		t.Errorf("reference BFS rejected: %v", err)
	}
}

func TestValidateBFSRejectsCorruption(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	g, _ := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	good := RefBFS(g, 0)

	corrupt := func(mutate func(d []int32)) []int32 {
		d := make([]int32, len(good))
		copy(d, good)
		mutate(d)
		return d
	}
	cases := []struct {
		name string
		dist []int32
	}{
		{"wrong source distance", corrupt(func(d []int32) { d[0] = 1 })},
		{"level skip", corrupt(func(d []int32) { d[3] = 5 })},
		{"phantom zero", corrupt(func(d []int32) { d[2] = 0 })},
		{"reached next to unreached", corrupt(func(d []int32) { d[1] = -1 })},
		{"invalid negative", corrupt(func(d []int32) { d[2] = -7 })},
		{"wrong length", good[:3]},
	}
	for _, c := range cases {
		if err := ValidateBFS(g, 0, c.dist); err == nil {
			t.Errorf("%s: validation accepted corrupted result", c.name)
		}
	}
	if err := ValidateBFS(g, 99, good); err == nil {
		t.Error("accepted out-of-range source")
	}
}

func TestValidateBFSAllEnginesWouldPass(t *testing.T) {
	// The reference itself on a larger random graph.
	b := graph.NewBuilder(256)
	state := uint64(7)
	for i := 0; i < 1500; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		b.AddEdge(uint32(state%256), uint32((state>>8)%256))
	}
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	dist := RefBFS(g, 5)
	if err := ValidateBFS(g, 5, dist); err != nil {
		t.Errorf("reference BFS on random graph rejected: %v", err)
	}
}
