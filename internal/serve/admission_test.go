package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, QueueDepth: 4})
	ctx := context.Background()
	if err := a.Acquire(ctx, "a"); err != nil {
		t.Fatalf("Acquire 1: %v", err)
	}
	if err := a.Acquire(ctx, "b"); err != nil {
		t.Fatalf("Acquire 2: %v", err)
	}
	a.Release()
	a.Release()
	if got := a.Admitted(); got != 2 {
		t.Errorf("Admitted = %d, want 2", got)
	}
	if got := a.Shed(); got != 0 {
		t.Errorf("Shed = %d, want 0", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 0})
	ctx := context.Background()
	if err := a.Acquire(ctx, "a"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Slot taken, queue depth 0: the next request is shed immediately.
	if err := a.Acquire(ctx, "b"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire while full = %v, want ErrOverloaded", err)
	}
	if got := a.Shed(); got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}
	a.Release()
	if err := a.Acquire(ctx, "b"); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	a.Release()
}

// TestAdmissionWeightedFairOrder pins the SFQ dispatch order: with the
// only slot held, alice (weight 2) queues three requests and bob
// (weight 1) two; on successive releases the grants interleave by frozen
// virtual start tags — alice gets two grants per virtual time unit, bob
// one — instead of draining either tenant's backlog first.
func TestAdmissionWeightedFairOrder(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxInFlight: 1,
		QueueDepth:  16,
		Weights:     map[string]float64{"alice": 2, "bob": 1},
	})
	ctx := context.Background()
	if err := a.Acquire(ctx, "carol"); err != nil {
		t.Fatalf("Acquire carol: %v", err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	expected := 0
	enqueue := func(label, tenant string) {
		// Serialize enqueues so virtual start tags are assigned in a known
		// order: wait until this waiter is actually in the queue before
		// launching the next.
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Acquire(ctx, tenant); err != nil {
				t.Errorf("Acquire %s: %v", label, err)
				return
			}
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			a.Release()
		}()
		expected++
		waitQueued(t, a, label, expected)
	}
	enqueue("a1", "alice")
	enqueue("a2", "alice")
	enqueue("a3", "alice")
	enqueue("b1", "bob")
	enqueue("b2", "bob")

	// Release the held slot; each completing waiter releases the next, so
	// the whole queue drains in tag order.
	a.Release()
	wg.Wait()

	// Tags: a1=0, a2=0.5, a3=1.0, b1=0, b2=1.0. Ties break by tenant
	// name, so the fair order is a1, b1, a2, a3, b2 — bob's first request
	// overtakes alice's backlog despite alice's head start.
	want := []string{"a1", "b1", "a2", "a3", "b2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("grant order = %v, want %v", order, want)
	}
}

// waitQueued blocks until the admission controller holds exactly want
// queued waiters.
func waitQueued(t *testing.T, a *Admission, label string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		n := a.queued
		a.mu.Unlock()
		if n == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("waiter %s never queued (want %d queued)", label, want)
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 4})
	if err := a.Acquire(context.Background(), "a"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, "b") }()
	// Wait for b to queue, then abandon it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		n := a.queued
		a.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not consume the slot: releasing the held
	// one leaves the controller empty.
	a.Release()
	a.mu.Lock()
	inflight, queued := a.inflight, a.queued
	a.mu.Unlock()
	if inflight != 0 || queued != 0 {
		t.Errorf("after cancel+release: inflight %d queued %d, want 0 0", inflight, queued)
	}
	// And a fresh Acquire still works.
	if err := a.Acquire(context.Background(), "c"); err != nil {
		t.Fatalf("Acquire after cancel: %v", err)
	}
	a.Release()
}

func TestAdmissionQueueDrainsInFlightCap(t *testing.T) {
	// 2 slots, many waiters: at no point may more than 2 run at once.
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, QueueDepth: 64})
	ctx := context.Background()
	var mu sync.Mutex
	running, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.Acquire(ctx, fmt.Sprintf("t%d", i%4)); err != nil {
				// Shedding is legal under this much concurrency; it just
				// must not deadlock.
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("Acquire: %v", err)
				}
				return
			}
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			a.Release()
		}(i)
	}
	wg.Wait()
	if peak > 2 {
		t.Errorf("peak concurrency %d exceeds MaxInFlight 2", peak)
	}
	if running != 0 {
		t.Errorf("running = %d after drain, want 0", running)
	}
}
