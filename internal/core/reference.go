package core

import (
	"fmt"
	"math"

	"graphmaze/internal/graph"
)

// This file holds deliberately simple serial reference implementations.
// They exist to validate the engines, not to be fast; every engine's test
// suite compares against these.

// RefPageRank runs the paper's PageRank (eq. 1) serially. g holds
// out-edges.
func RefPageRank(g *graph.CSR, opt PageRankOptions) []float64 {
	opt = opt.withDefaults()
	n := g.NumVertices
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	for it := 0; it < opt.Iterations; it++ {
		for i := range next {
			next[i] = opt.RandomJump
		}
		for v := uint32(0); v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			contrib := (1 - opt.RandomJump) * pr[v] / float64(deg)
			for _, t := range g.Neighbors(v) {
				next[t] += contrib
			}
		}
		pr, next = next, pr
	}
	return pr
}

// RefBFS runs serial BFS over g's stored orientation (symmetrize first for
// the paper's undirected traversal). Unreachable vertices get -1.
func RefBFS(g *graph.CSR, source uint32) []int32 {
	dist := make([]int32, g.NumVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	frontier := []uint32{source}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []uint32
		for _, v := range frontier {
			for _, t := range g.Neighbors(v) {
				if dist[t] == -1 {
					dist[t] = level
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return dist
}

// RefTriangleCount counts triangles in an acyclically oriented graph with
// sorted adjacency by merge-intersecting the out-lists of each edge's
// endpoints (eq. 3: each triangle i<j<k is counted exactly once, at edge
// (i,j)).
func RefTriangleCount(g *graph.CSR) int64 {
	var count int64
	for u := uint32(0); u < g.NumVertices; u++ {
		adjU := g.Neighbors(u)
		for _, v := range adjU {
			count += int64(intersectSorted(adjU, g.Neighbors(v)))
		}
	}
	return count
}

// intersectSorted counts common elements of two sorted lists.
func intersectSorted(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// RefCollabFilterGD runs serial full-batch gradient descent (paper eqs.
// 11–12) and returns the factors plus the per-iteration RMSE trajectory.
func RefCollabFilterGD(r *graph.Bipartite, opt CFOptions) *CFResult {
	opt = opt.withDefaults()
	k := opt.K
	userF := InitFactors(r.NumUsers, k, opt.Seed)
	itemF := InitFactors(r.NumItems, k, opt.Seed+1)
	gradP := make([]float32, len(userF))
	gradQ := make([]float32, len(itemF))
	rmse := make([]float64, 0, opt.Iterations)

	gamma := opt.LearningRate
	for it := 0; it < opt.Iterations; it++ {
		for i := range gradP {
			gradP[i] = 0
		}
		for i := range gradQ {
			gradQ[i] = 0
		}
		for u := uint32(0); u < r.NumUsers; u++ {
			adj, w := r.ByUser.Neighbors(u), r.ByUser.EdgeWeights(u)
			pu := userF[int(u)*k : int(u+1)*k]
			gp := gradP[int(u)*k : int(u+1)*k]
			for i, v := range adj {
				qv := itemF[int(v)*k : int(v+1)*k]
				gq := gradQ[int(v)*k : int(v+1)*k]
				dot := Dot(pu, qv)
				ruv := float64(w[i])
				for d := 0; d < k; d++ {
					gp[d] += float32(ruv*float64(qv[d]) - dot*float64(qv[d]) - opt.LambdaP*float64(pu[d]))
					gq[d] += float32(ruv*float64(pu[d]) - dot*float64(pu[d]) - opt.LambdaQ*float64(qv[d]))
				}
			}
		}
		for i := range userF {
			userF[i] += float32(gamma) * gradP[i]
		}
		for i := range itemF {
			itemF[i] += float32(gamma) * gradQ[i]
		}
		gamma *= opt.StepDecay
		rmse = append(rmse, RMSE(r, k, userF, itemF))
	}
	return &CFResult{K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse,
		Stats: RunStats{Iterations: opt.Iterations}}
}

// ComparePageRank reports the maximum relative difference between two rank
// vectors.
func ComparePageRank(a, b []float64) float64 {
	var worst float64
	for i := range a {
		denom := math.Max(math.Abs(a[i]), 1e-12)
		if d := math.Abs(a[i]-b[i]) / denom; d > worst {
			worst = d
		}
	}
	return worst
}

// EqualDistances reports whether two BFS distance vectors match exactly.
func EqualDistances(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MonotonicallyNonIncreasing reports whether a trajectory (e.g. RMSE over
// iterations) never rises by more than tol.
func MonotonicallyNonIncreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+tol {
			return false
		}
	}
	return true
}

// ValidateBFS performs the Graph500-style validation of a BFS result over
// the (undirected, symmetrized) graph the search ran on — the paper's BFS
// "is part of the Graph500 benchmark [23]", whose specification requires
// validating the output rather than trusting the kernel:
//
//  1. the source has distance 0 and every other distance is positive or
//     unreached (-1);
//  2. every edge spans at most one level (|dist(u)−dist(v)| ≤ 1 when both
//     endpoints are reached);
//  3. every reached vertex other than the source has a neighbour exactly
//     one level closer (a valid BFS tree parent exists);
//  4. no edge connects a reached vertex to an unreached one.
func ValidateBFS(g *graph.CSR, source uint32, dist []int32) error {
	if int(g.NumVertices) != len(dist) {
		return fmt.Errorf("core: %d distances for %d vertices", len(dist), g.NumVertices)
	}
	if source >= g.NumVertices {
		return fmt.Errorf("core: source %d out of range", source)
	}
	if dist[source] != 0 {
		return fmt.Errorf("core: source distance %d, want 0", dist[source])
	}
	for v := uint32(0); v < g.NumVertices; v++ {
		dv := dist[v]
		if dv < -1 {
			return fmt.Errorf("core: vertex %d has invalid distance %d", v, dv)
		}
		if dv == 0 && v != source {
			return fmt.Errorf("core: vertex %d has distance 0 but is not the source", v)
		}
		hasParent := dv <= 0
		for _, u := range g.Neighbors(v) {
			du := dist[u]
			switch {
			case dv == -1 && du != -1:
				return fmt.Errorf("core: unreached vertex %d adjacent to reached vertex %d", v, u)
			case dv != -1 && du == -1:
				return fmt.Errorf("core: reached vertex %d adjacent to unreached vertex %d", v, u)
			case dv != -1 && du != -1:
				if d := dv - du; d > 1 || d < -1 {
					return fmt.Errorf("core: edge (%d,%d) spans %d levels", v, u, d)
				}
				if du == dv-1 {
					hasParent = true
				}
			}
		}
		if !hasParent {
			return fmt.Errorf("core: vertex %d at distance %d has no neighbour at distance %d", v, dv, dv-1)
		}
	}
	return nil
}
