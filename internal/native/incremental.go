package native

import (
	"errors"
	"fmt"

	"graphmaze/internal/backend"
	"graphmaze/internal/graph"
)

// This file implements the incremental native kernels for epoch-versioned
// graphs: instead of recomputing PageRank / BFS / connected components
// from scratch on every epoch, each kernel warm-starts from the prior
// epoch's result and repairs only what the delta invalidated. All three
// are conformance-pinned against full recomputation on the new epoch —
// bit-identically for BFS and CC (their results are canonical), and
// within the convergence tolerance for PageRank (both runs converge to
// the same unique fixpoint).

// IncrementalPROptions configures an IncrementalPageRank kernel.
// Convergence is tolerance-driven: the warm start is exactly what makes
// later epochs converge in a handful of sweeps, so a fixed iteration
// count would erase the benefit being measured.
type IncrementalPROptions struct {
	// RandomJump is r in the paper's equation (default 0.3).
	RandomJump float64
	// Tolerance stops a refresh once no rank moves by more than this in a
	// sweep (default 1e-9).
	Tolerance float64
	// MaxSweeps bounds a refresh (default 1000); hitting it is an error,
	// because a truncated run would silently break the conformance pin.
	MaxSweeps int
}

func (o IncrementalPROptions) withDefaults() IncrementalPROptions {
	if o.RandomJump == 0 {
		o.RandomJump = 0.3
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 1000
	}
	return o
}

// IncrementalPageRank computes PageRank across the epochs of a versioned
// graph on the backend pool, warm-starting every refresh from the prior
// epoch's ranks. The delta's effect is localized through convergence:
// ranks far from the touched region barely move, so the tolerance check
// terminates after a few sweeps instead of a cold run's dozens.
//
// The kernel deliberately holds ranks and scratch — never a Snapshot;
// each Update receives the epoch to refresh against explicitly.
type IncrementalPageRank struct {
	opt  IncrementalPROptions
	pool *backend.Pool
	mul  *backend.SumVecMul

	epoch   graph.Epoch
	primed  bool
	ranks   []float64
	next    []float64
	contrib []float64
	outDeg  []int64
}

// NewIncrementalPageRank builds the kernel; Close releases its pool.
func NewIncrementalPageRank(opt IncrementalPROptions) *IncrementalPageRank {
	return &IncrementalPageRank{opt: opt.withDefaults(), pool: backend.NewPool(0)}
}

// Close releases the kernel's worker pool.
func (p *IncrementalPageRank) Close() { p.pool.Close() }

// Epoch reports the last epoch Update refreshed against.
func (p *IncrementalPageRank) Epoch() graph.Epoch { return p.epoch }

// Update refreshes the ranks for the given epoch and returns them along
// with the number of sweeps the refresh took. The first call is a cold
// start (all ranks 1, the paper's initialization); later calls warm-start
// from the previous epoch's ranks, with vertices the epoch introduced
// initialized to 1. The returned slice is the kernel's state: it is valid
// until the next Update and must not be modified.
func (p *IncrementalPageRank) Update(s *graph.Snapshot) ([]float64, int, error) {
	g := s.CSR()
	n := int(g.NumVertices)
	if n == 0 {
		return nil, 0, errors.New("native: incremental pagerank on an empty graph")
	}

	// Warm-start: keep prior ranks, initialize only the grown tail.
	for len(p.ranks) < n {
		p.ranks = append(p.ranks, 1)
	}
	if !p.primed {
		for i := range p.ranks {
			p.ranks[i] = 1
		}
	}
	p.next = growFloat64(p.next, n)
	p.contrib = growFloat64(p.contrib, n)
	ranks, next, contrib := p.ranks[:n], p.next[:n], p.contrib[:n]

	// Per-epoch rebuild: the in-CSR and out-degrees change with the graph.
	// This is the O(E) part of a refresh; the savings live in the sweep
	// count below.
	in := g.Transpose()
	p.outDeg = p.outDeg[:0]
	for v := uint32(0); v < g.NumVertices; v++ {
		p.outDeg = append(p.outDeg, g.Degree(v))
	}
	outDeg := p.outDeg

	// Mass correction on the warm start. The iteration matrix has an
	// eigenvalue of exactly (1-RandomJump) whose left eigenvector is the
	// all-ones vector over the emitting (out-degree > 0) vertices of a
	// component: each sweep preserves (1-r) of their total mass and
	// injects r each. A cold all-ones start carries the fixpoint's mass
	// and never excites that slowest mode, but a delta changes the target
	// mass, so the raw warm start would converge at the worst-case rate
	// (1-r) — empirically slower than restarting cold. Redistributing the
	// mass deficit over emitting vertices, degree-weighted (the stationary
	// mode's shape on a symmetrized graph), zeroes the slow mode's
	// coefficient and restores the delta-localized convergence the warm
	// start is for. The fixpoint is unchanged, so conformance is unaffected.
	if p.primed {
		var mass, vol, active float64
		for v := 0; v < n; v++ {
			if outDeg[v] > 0 {
				mass += ranks[v]
				vol += float64(outDeg[v])
				active++
			}
		}
		if vol > 0 {
			deficit := active - mass
			for v := 0; v < n; v++ {
				if outDeg[v] > 0 {
					ranks[v] += deficit * float64(outDeg[v]) / vol
				}
			}
		}
	}

	m := backend.FromCSR(in)
	m.Epoch = uint64(s.Epoch()) + 1
	if p.mul == nil {
		p.mul = backend.NewSumVecMul(p.pool, m)
	} else {
		p.mul.Rebind(m)
	}
	contribPass := backend.NewDense(p.pool, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if outDeg[v] > 0 {
				contrib[v] = (1 - p.opt.RandomJump) * ranks[v] / float64(outDeg[v])
			} else {
				contrib[v] = 0
			}
		}
	})
	post := func(v uint32, sum float64) float64 { return p.opt.RandomJump + sum }

	sweeps := 0
	for {
		if sweeps >= p.opt.MaxSweeps {
			return nil, sweeps, fmt.Errorf("native: incremental pagerank did not converge to %g in %d sweeps",
				p.opt.Tolerance, p.opt.MaxSweeps)
		}
		sweeps++
		contribPass.Run()
		p.mul.MapInto(next, contrib, post)
		ranks, next = next, ranks
		if maxAbsDiff(ranks, next) <= p.opt.Tolerance {
			break
		}
	}
	// ranks/next were swapped locally; persist the final orientation.
	p.ranks = ranks[:n]
	p.next = next[:n]
	p.epoch = s.Epoch()
	p.primed = true
	return ranks, sweeps, nil
}

// growFloat64 extends buf to length n, preserving its prefix.
func growFloat64(buf []float64, n int) []float64 {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	return buf
}

// IncrementalBFS maintains single-source BFS distances across the epochs
// of a versioned (symmetrized, insert-only) graph. Epoch N+1's distances
// can only shrink, so the refresh seeds a repair frontier from the delta
// edges that create shortcuts and relaxes outward in level order — work
// proportional to the region the delta actually improved, not the graph.
// The first Update runs the backend pool's full direction-switching
// traversal; repairs are serial because repair frontiers are tiny
// compared to the graph (falling out of the delta, not the frontier).
type IncrementalBFS struct {
	source uint32
	pool   *backend.Pool
	tv     *backend.Traversal

	epoch  graph.Epoch
	primed bool
	dist   []int32
	// buckets[d] holds vertices whose tentative distance improved to d
	// during the current repair.
	buckets [][]uint32
}

// NewIncrementalBFS builds the kernel for traversals from source; Close
// releases its pool.
func NewIncrementalBFS(source uint32) *IncrementalBFS {
	return &IncrementalBFS{source: source, pool: backend.NewPool(0)}
}

// Close releases the kernel's worker pool.
func (b *IncrementalBFS) Close() { b.pool.Close() }

// Epoch reports the last epoch Update refreshed against.
func (b *IncrementalBFS) Epoch() graph.Epoch { return b.epoch }

// Update refreshes the distances for the given epoch. added is the set of
// directed edges this epoch introduced (ApplyDelta's cleaned output);
// passing the full set is what makes the repair exact. The returned slice
// is kernel state, valid until the next Update.
func (b *IncrementalBFS) Update(s *graph.Snapshot, added []graph.Edge) ([]int32, error) {
	g := s.CSR()
	n := int(g.NumVertices)
	if int(b.source) >= n {
		return nil, fmt.Errorf("native: bfs source %d outside vertex space [0,%d)", b.source, n)
	}

	if !b.primed {
		b.dist = make([]int32, n)
		for i := range b.dist {
			b.dist[i] = -1
		}
		b.dist[b.source] = 0
		b.tv = backend.NewTraversal(b.pool, matrixOf(s), "native.bfs.level", nil)
		b.tv.Run(b.dist, b.source)
		b.epoch = s.Epoch()
		b.primed = true
		return b.dist, nil
	}

	// Grow the distance array for vertices the epoch introduced; they are
	// unreachable until a delta edge connects them.
	for len(b.dist) < n {
		b.dist = append(b.dist, -1)
	}
	dist := b.dist[:n]

	// Seed the repair: a delta edge (u,v) with a reached tail creates a
	// shortcut when it beats v's current distance. Insertions never
	// lengthen paths, so every stale distance is an overestimate fixed by
	// relaxing these seeds outward.
	maxLevel := -1 // no seeds → no repair
	push := func(v uint32, d int32) {
		for len(b.buckets) <= int(d) {
			b.buckets = append(b.buckets, nil)
		}
		b.buckets[d] = append(b.buckets[d], v)
		if int(d) > maxLevel {
			maxLevel = int(d)
		}
	}
	for _, e := range added {
		du := dist[e.Src]
		if du < 0 {
			continue
		}
		if dv := dist[e.Dst]; dv < 0 || dv > du+1 {
			dist[e.Dst] = du + 1
			push(e.Dst, du+1)
		}
	}

	// Relax in level order (a bucket queue over unit weights): each popped
	// vertex is final when its recorded distance still matches its bucket,
	// so each improved vertex expands exactly once.
	for d := 0; d <= maxLevel; d++ {
		dd := graph.MustI32(int64(d))
		for i := 0; i < len(b.buckets[d]); i++ {
			v := b.buckets[d][i]
			if dist[v] != dd {
				continue // improved again by a lower bucket; stale entry
			}
			nd := dd + 1
			for _, w := range g.Neighbors(v) {
				if dw := dist[w]; dw < 0 || dw > nd {
					dist[w] = nd
					push(w, nd)
				}
			}
		}
		b.buckets[d] = b.buckets[d][:0]
	}
	b.dist = dist
	b.epoch = s.Epoch()
	return dist, nil
}

// matrixOf wraps a snapshot for the backend without retaining it.
func matrixOf(s *graph.Snapshot) *backend.Matrix { return backend.FromSnapshot(s) }
