package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CkptRule flags discarded errors from the fault-tolerance subsystem's
// state-critical calls. A checkpoint Save whose error is dropped silently
// loses the recovery point; a Restore or recovery Run whose error is
// dropped continues on corrupt state. The rule matches calls to methods
// named Save, Snapshot, Restore, or Checkpoint — plus Run on a Recovery
// receiver — that return an error, and reports when that error is
// discarded: the call as a bare statement, or the error assigned to the
// blank identifier.
type CkptRule struct{}

// Name implements Rule.
func (*CkptRule) Name() string { return "ckpt" }

// Doc implements Rule.
func (*CkptRule) Doc() string {
	return "checkpoint/restore errors must be handled (a dropped Save error loses the recovery point)"
}

// ckptMethods are the state-critical method names the rule watches.
var ckptMethods = map[string]bool{
	"Save":       true,
	"Snapshot":   true,
	"Restore":    true,
	"Checkpoint": true,
}

// Check implements Rule.
func (r *CkptRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, idx := r.match(p, call); idx >= 0 {
					report(call.Pos(), "%s returns an error that is discarded: a dropped checkpoint/restore error corrupts recovery", name)
				}
				return true
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, idx := r.match(p, call)
				if idx < 0 || idx >= len(s.Lhs) {
					return true
				}
				if id, ok := s.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					report(s.Pos(), "%s's error is assigned to _: a dropped checkpoint/restore error corrupts recovery", name)
				}
				return true
			}
			return true
		})
	}
}

// match reports whether call targets a watched checkpoint/restore method
// returning an error, giving the method name and the error result's index
// (-1 when the call is not watched or returns no error).
func (r *CkptRule) match(p *Package, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", -1
	}
	name := sel.Sel.Name
	switch {
	case ckptMethods[name]:
	case name == "Run" && isRecoveryReceiver(p, sel.X):
	default:
		return "", -1
	}
	tv, ok := p.Info.Types[call]
	if !ok {
		return "", -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := t.Len() - 1; i >= 0; i-- {
			if isErrorType(t.At(i).Type()) {
				return name, i
			}
		}
	default:
		if isErrorType(tv.Type) {
			return name, 0
		}
	}
	return "", -1
}

// isRecoveryReceiver reports whether expr's type is a named "Recovery"
// (possibly behind a pointer) — the cluster recovery driver's shape,
// matched structurally so fixtures type-check without the real package.
func isRecoveryReceiver(p *Package, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recovery"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
