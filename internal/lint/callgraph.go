package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds a package-level call graph with one summary per
// declared function. Summaries record the same-package functions a
// function calls statically plus the impurity facts the determinism
// rules care about: direct wall-clock reads (time.Now / time.Since) and
// uses of the unseeded global math/rand generator. Reachability queries
// close the summaries transitively within the package; calls into other
// packages are not followed (each package is analyzed with its own
// graph).

// FuncSummary is the per-function record of a CallGraph.
type FuncSummary struct {
	// Obj is the function's type object.
	Obj *types.Func
	// Decl is the function's declaration.
	Decl *ast.FuncDecl
	// Callees lists the same-package functions called (statically) from
	// the body, including from nested function literals.
	Callees []*types.Func
	// WallClock reports a direct call to time.Now or time.Since.
	WallClock bool
	// WallClockPos is the first such call site.
	WallClockPos token.Pos
	// GlobalRand reports a direct call to a package-level math/rand
	// function (the process-global, unseeded generator). Constructing a
	// seeded *rand.Rand via rand.New/rand.NewSource does not count.
	GlobalRand bool
	// GlobalRandPos is the first such call site.
	GlobalRandPos token.Pos
}

// CallGraph is the package-level call graph.
type CallGraph struct {
	pkg   *Package
	funcs map[*types.Func]*FuncSummary
	memo  map[reachQuery]bool
}

type reachQuery struct {
	fn   *types.Func
	what int // 0: wall clock, 1: global rand
}

// BuildCallGraph walks every function declaration in p and records its
// summary.
func BuildCallGraph(p *Package) *CallGraph {
	g := &CallGraph{pkg: p, funcs: make(map[*types.Func]*FuncSummary), memo: make(map[reachQuery]bool)}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &FuncSummary{Obj: obj, Decl: fn}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p, call)
				if callee == nil {
					return true
				}
				switch {
				case isWallClockFunc(callee):
					if !s.WallClock {
						s.WallClock, s.WallClockPos = true, call.Pos()
					}
				case isGlobalRandFunc(callee):
					if !s.GlobalRand {
						s.GlobalRand, s.GlobalRandPos = true, call.Pos()
					}
				case callee.Pkg() == p.Types && !seen[callee]:
					seen[callee] = true
					s.Callees = append(s.Callees, callee)
				}
				return true
			})
			g.funcs[obj] = s
		}
	}
	return g
}

// Summary returns fn's summary, or nil for functions not declared in the
// package (methods of other packages, builtins).
func (g *CallGraph) Summary(fn *types.Func) *FuncSummary { return g.funcs[fn] }

// ReachesWallClock reports whether fn can reach time.Now/time.Since
// through same-package calls.
func (g *CallGraph) ReachesWallClock(fn *types.Func) bool { return g.reaches(fn, 0, nil) }

// ReachesGlobalRand reports whether fn can reach the global math/rand
// generator through same-package calls.
func (g *CallGraph) ReachesGlobalRand(fn *types.Func) bool { return g.reaches(fn, 1, nil) }

func (g *CallGraph) reaches(fn *types.Func, what int, path map[*types.Func]bool) bool {
	q := reachQuery{fn, what}
	if v, ok := g.memo[q]; ok {
		return v
	}
	s := g.funcs[fn]
	if s == nil {
		return false
	}
	if (what == 0 && s.WallClock) || (what == 1 && s.GlobalRand) {
		g.memo[q] = true
		return true
	}
	if path == nil {
		path = make(map[*types.Func]bool)
	}
	if path[fn] {
		return false // cycle: no new evidence on this path
	}
	path[fn] = true
	for _, callee := range s.Callees {
		if g.reaches(callee, what, path) {
			g.memo[q] = true
			delete(path, fn)
			return true
		}
	}
	delete(path, fn)
	g.memo[q] = false
	return false
}

// calleeFunc statically resolves the function a call invokes: a plain
// identifier, a package-qualified function, or a method. Calls through
// function values and interfaces resolve to nil.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return fn
			}
			return nil
		}
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isWallClockFunc reports whether fn is time.Now or time.Since.
func isWallClockFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
		(fn.Name() == "Now" || fn.Name() == "Since")
}

// isGlobalRandFunc reports whether fn is a package-level math/rand
// function drawing from the process-global generator. rand.New and
// rand.NewSource construct explicitly seeded generators and are exempt.
func isGlobalRandFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods on an explicit *rand.Rand are seeded
	}
	return fn.Name() != "New" && fn.Name() != "NewSource"
}
