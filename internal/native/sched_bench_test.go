package native

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

// Skewed kernel benchmarks: the same native kernels under static
// equal-vertex chunking (the preserved references in sched_test.go) and
// under the scheduling layer's dynamic / edge-balanced loops, over RMAT
// graphs WITHOUT vertex permutation — natural RMAT labeling concentrates
// the hubs at low ids, which is exactly the input that strands one static
// chunk with most of the work (paper §3.1). Run via `make bench-par`;
// GRAPHMAZE_SKEW_SCALE overrides the graph scale (default 16).

func skewScale(b *testing.B) int {
	s := os.Getenv("GRAPHMAZE_SKEW_SCALE")
	if s == "" {
		return 16
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 4 || v > 26 {
		b.Fatalf("GRAPHMAZE_SKEW_SCALE=%q: want an integer in [4,26]", s)
	}
	return v
}

var skewGraphs struct {
	mu       sync.Mutex
	triangle *graph.CSR
	directed *graph.CSR
}

func skewTriangleGraph(b *testing.B) *graph.CSR {
	skewGraphs.mu.Lock()
	defer skewGraphs.mu.Unlock()
	if skewGraphs.triangle == nil {
		scale := skewScale(b)
		cfg := gen.TriangleConfig(scale, 8, 7)
		cfg.PermuteVertices = false // keep hubs contiguous at low ids
		edges, err := gen.RMAT(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bld := graph.NewBuilder(1 << scale)
		bld.AddEdges(edges)
		g, err := bld.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
		if err != nil {
			b.Fatal(err)
		}
		skewGraphs.triangle = g
	}
	return skewGraphs.triangle
}

func skewDirectedGraph(b *testing.B) *graph.CSR {
	skewGraphs.mu.Lock()
	defer skewGraphs.mu.Unlock()
	if skewGraphs.directed == nil {
		scale := skewScale(b)
		cfg := gen.Graph500Config(scale, 16, 7)
		cfg.PermuteVertices = false // keep hubs contiguous at low ids
		edges, err := gen.RMAT(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bld := graph.NewBuilder(1 << scale)
		bld.AddEdges(edges)
		g, err := bld.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
		if err != nil {
			b.Fatal(err)
		}
		skewGraphs.directed = g
	}
	return skewGraphs.directed
}

func BenchmarkNativeTriangleSkewed(b *testing.B) {
	g := skewTriangleGraph(b)
	e := New()
	b.Run("static", func(b *testing.B) {
		b.ReportMetric(float64(g.NumEdges()), "edges")
		for i := 0; i < b.N; i++ {
			triangleLocalStatic(e, g)
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		b.ReportMetric(float64(g.NumEdges()), "edges")
		for i := 0; i < b.N; i++ {
			e.triangleLocal(g)
		}
	})
}

func BenchmarkNativePageRankSkewed(b *testing.B) {
	g := skewDirectedGraph(b)
	e := New()
	opt := core.PageRankOptions{Iterations: 5, RandomJump: 0.15}
	b.Run("static", func(b *testing.B) {
		b.ReportMetric(float64(g.NumEdges()), "edges")
		for i := 0; i < b.N; i++ {
			pageRankLocalStatic(e, g, opt)
		}
	})
	b.Run("edgebalanced", func(b *testing.B) {
		b.ReportMetric(float64(g.NumEdges()), "edges")
		for i := 0; i < b.N; i++ {
			e.pageRankLocal(g, opt)
		}
	})
}
