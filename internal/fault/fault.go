// Package fault implements the deterministic failure model of the
// simulated cluster (DESIGN.md §10). The frameworks the paper benchmarks
// ship availability machinery — Giraph inherits Pregel's synchronous
// superstep checkpointing — so a faithful multi-node comparison needs a
// failure model, and follow-up evaluations (Ammar & Özsu 2018) treat fault
// behaviour as a first-class comparison axis. Reproducible measurement
// (Pollard & Norris 2017) demands the model be seeded and deterministic:
// a Plan is a fixed schedule of events, either spelled out explicitly or
// generated from a seed, and the same plan always produces the same
// failure (and therefore recovery) timeline.
//
// Faults key on the cluster's executed-phase counter, which is monotonic
// and never rolled back: one-shot events (crash, drop, truncate) are
// consumed when they fire, so a replayed phase — which executes under a
// fresh index — does not re-fail, exactly like a real transient fault.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind enumerates the injected fault classes.
type Kind int

const (
	// Crash fails a node at the start of its compute for one phase.
	Crash Kind = iota
	// Drop loses a message payload in transit (detected transport-level,
	// like a missed ack: the exchange fails and the phase aborts).
	Drop
	// Truncate cuts a message payload short in transit (detected by the
	// transport's length check, with the same phase-abort consequence).
	Truncate
	// Slow is a straggler: one node's compute time is multiplied over a
	// phase range.
	Slow
	// Degrade divides the communication layer's bandwidth (and multiplies
	// its latency) over a phase range.
	Degrade
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Drop:
		return "drop"
	case Truncate:
		return "trunc"
	case Slow:
		return "slow"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Any matches any node (or any sender/receiver) in an Event.
const Any = -1

// Event is one planned fault. Phase is the executed-phase index at which a
// one-shot event fires; Slow and Degrade apply over [Phase, PhaseEnd].
type Event struct {
	Kind     Kind
	Phase    int
	PhaseEnd int     // inclusive; defaults to Phase for range kinds
	Node     int     // Crash/Slow target; Any matches every node
	From, To int     // Drop/Truncate endpoints; Any matches everything
	Factor   float64 // Slow: compute multiplier; Degrade: bandwidth divisor
}

func (e Event) String() string {
	switch e.Kind {
	case Crash:
		return fmt.Sprintf("crash@%d:n%d", e.Phase, e.Node)
	case Drop, Truncate:
		return fmt.Sprintf("%s@%d:%d-%d", e.Kind, e.Phase, e.From, e.To)
	case Slow:
		return fmt.Sprintf("slow@%d-%d:n%dx%g", e.Phase, e.PhaseEnd, e.Node, e.Factor)
	case Degrade:
		return fmt.Sprintf("degrade@%d-%dx%g", e.Phase, e.PhaseEnd, e.Factor)
	default:
		return e.Kind.String()
	}
}

// Error is the failure RunPhase surfaces for an injected fault. Recovery
// classifies it with errors.As / IsInjected.
type Error struct {
	Kind  Kind
	Phase int
	Node  int // failing node (Crash) or sender (Drop/Truncate)
	To    int // receiver for message faults
}

// Error implements error.
func (e *Error) Error() string {
	switch e.Kind {
	case Crash:
		return fmt.Sprintf("fault: injected crash of node %d at phase %d", e.Node, e.Phase)
	case Drop:
		return fmt.Sprintf("fault: injected message drop %d→%d at phase %d", e.Node, e.To, e.Phase)
	case Truncate:
		return fmt.Sprintf("fault: injected message truncation %d→%d at phase %d", e.Node, e.To, e.Phase)
	default:
		return fmt.Sprintf("fault: injected %v at phase %d", e.Kind, e.Phase)
	}
}

// IsInjected reports whether err stems from an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Verdict is an Injector's decision about one in-flight payload.
type Verdict int

const (
	// Deliver passes the payload through unharmed.
	Deliver Verdict = iota
	// Dropped loses the payload.
	Dropped
	// Truncated delivers a prefix (detected by the transport).
	Truncated
)

// Injector is the interface the cluster consults at its fault points. A
// nil Injector means a healthy cluster. Implementations must be safe for
// use from a single RunPhase at a time (the cluster never calls
// concurrently) and deterministic: the same call sequence yields the same
// verdicts.
type Injector interface {
	// CrashPoint reports whether node fails while computing the given
	// executed phase. A firing crash event is consumed.
	CrashPoint(phase, node int) bool
	// MessageFault judges a payload exchanged during the given phase. A
	// firing drop/truncate event is consumed.
	MessageFault(phase, from, to int) Verdict
	// SlowFactor returns the compute-time multiplier for node at phase
	// (≥1; 1 means healthy).
	SlowFactor(phase, node int) float64
	// DegradeFactor returns the bandwidth divisor for the phase (≥1; 1
	// means healthy).
	DegradeFactor(phase int) float64
	// DetectSeconds is the modeled failure-detection latency charged to
	// the virtual clock when a phase aborts (heartbeat timeout, barrier
	// consensus on the failure).
	DetectSeconds() float64
}

// Plan is a deterministic fault schedule implementing Injector. The zero
// Plan is healthy. Plans are single-use: one-shot events are consumed as
// they fire, so construct a fresh Plan (same spec or seed) per run.
type Plan struct {
	// Detect is the failure-detection latency (seconds of virtual time)
	// charged when a phase aborts; DefaultDetectSeconds when 0.
	Detect float64

	mu     sync.Mutex
	events []Event
	fired  []Event // consumed one-shot events, in firing order
}

// DefaultDetectSeconds models a heartbeat-timeout failure detector
// (ZooKeeper-style session expiry runs seconds; we charge a conservative
// fraction of that).
const DefaultDetectSeconds = 0.5

var _ Injector = (*Plan)(nil)

// NewPlan returns a plan over the given events.
func NewPlan(events ...Event) *Plan {
	p := &Plan{}
	for _, e := range events {
		p.Add(e)
	}
	return p
}

// Add appends an event, normalizing defaults (PhaseEnd, factors).
func (p *Plan) Add(e Event) *Plan {
	if e.PhaseEnd < e.Phase {
		e.PhaseEnd = e.Phase
	}
	if e.Factor == 0 {
		e.Factor = 1
	}
	p.mu.Lock()
	p.events = append(p.events, e)
	p.mu.Unlock()
	return p
}

// Events returns a copy of the planned events.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Fired returns the one-shot events consumed so far, in firing order —
// the run's failure timeline. Two runs with the same plan and workload
// produce identical Fired sequences (asserted in tests).
func (p *Plan) Fired() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.fired...)
}

// CrashPoint implements Injector.
func (p *Plan) CrashPoint(phase, node int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.events {
		if e.Kind == Crash && e.Phase == phase && (e.Node == Any || e.Node == node) {
			p.consume(i)
			return true
		}
	}
	return false
}

// MessageFault implements Injector.
func (p *Plan) MessageFault(phase, from, to int) Verdict {
	if p == nil {
		return Deliver
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.events {
		if (e.Kind != Drop && e.Kind != Truncate) || e.Phase != phase {
			continue
		}
		if (e.From != Any && e.From != from) || (e.To != Any && e.To != to) {
			continue
		}
		kind := e.Kind
		p.consume(i)
		if kind == Drop {
			return Dropped
		}
		return Truncated
	}
	return Deliver
}

// consume moves events[i] to the fired log. Caller holds p.mu.
func (p *Plan) consume(i int) {
	p.fired = append(p.fired, p.events[i])
	p.events = append(p.events[:i], p.events[i+1:]...)
}

// SlowFactor implements Injector.
func (p *Plan) SlowFactor(phase, node int) float64 {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f := 1.0
	for _, e := range p.events {
		if e.Kind == Slow && phase >= e.Phase && phase <= e.PhaseEnd &&
			(e.Node == Any || e.Node == node) && e.Factor > f {
			f = e.Factor
		}
	}
	return f
}

// DegradeFactor implements Injector.
func (p *Plan) DegradeFactor(phase int) float64 {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f := 1.0
	for _, e := range p.events {
		if e.Kind == Degrade && phase >= e.Phase && phase <= e.PhaseEnd && e.Factor > f {
			f = e.Factor
		}
	}
	return f
}

// DetectSeconds implements Injector.
func (p *Plan) DetectSeconds() float64 {
	if p == nil {
		return 0
	}
	if p.Detect > 0 {
		return p.Detect
	}
	return DefaultDetectSeconds
}

// SeedConfig sizes a randomly generated plan.
type SeedConfig struct {
	// Phases is the executed-phase horizon events are placed in (default
	// 16).
	Phases int
	// Nodes is the node-count events target (default 4).
	Nodes int
	// Crashes, Drops, Truncates are one-shot event counts (all default 0;
	// a config with none set gets one crash).
	Crashes, Drops, Truncates int
	// Stragglers is the number of slow ranges (factor 2–8×).
	Stragglers int
}

func (c SeedConfig) withDefaults() SeedConfig {
	if c.Phases <= 0 {
		c.Phases = 16
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Crashes == 0 && c.Drops == 0 && c.Truncates == 0 && c.Stragglers == 0 {
		c.Crashes = 1
	}
	return c
}

// Seeded generates a deterministic random plan: the same seed and config
// always produce the same event schedule.
func Seeded(seed int64, cfg SeedConfig) *Plan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	for i := 0; i < cfg.Crashes; i++ {
		p.Add(Event{Kind: Crash, Phase: rng.Intn(cfg.Phases), Node: rng.Intn(cfg.Nodes)})
	}
	for i := 0; i < cfg.Drops; i++ {
		p.Add(Event{Kind: Drop, Phase: rng.Intn(cfg.Phases), From: Any, To: rng.Intn(cfg.Nodes)})
	}
	for i := 0; i < cfg.Truncates; i++ {
		p.Add(Event{Kind: Truncate, Phase: rng.Intn(cfg.Phases), From: Any, To: rng.Intn(cfg.Nodes)})
	}
	for i := 0; i < cfg.Stragglers; i++ {
		start := rng.Intn(cfg.Phases)
		p.Add(Event{Kind: Slow, Phase: start, PhaseEnd: start + rng.Intn(4),
			Node: rng.Intn(cfg.Nodes), Factor: 2 + 6*rng.Float64()})
	}
	// Stable order so the plan's string form (and event scan order) does
	// not depend on generation order across config changes.
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].Phase < p.events[j].Phase })
	return p
}

// ParsePlan builds a plan from a compact comma-separated spec, the grammar
// the graphbench -faults flag accepts:
//
//	crash@P[:nN]         node N (default 0) crashes at executed phase P
//	drop@P[:F-T]         message F→T (default any→any) dropped at phase P
//	trunc@P[:F-T]        message F→T truncated at phase P
//	slow@P1-P2:nNxF      node N computes F× slower over phases P1..P2
//	degrade@P1-P2xF      comm bandwidth divided by F over phases P1..P2
//	seed@S[:cK]          K (default 1) seeded random crashes from seed S
//
// Example: "crash@6:n1,degrade@0-3x4".
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q lacks '@' (want e.g. crash@6)", entry)
		}
		ev, err := parseEntry(kind, rest)
		if err != nil {
			return nil, fmt.Errorf("fault: entry %q: %w", entry, err)
		}
		if kind == "seed" {
			seeded := Seeded(int64(ev.Phase), SeedConfig{Crashes: maxInt(ev.Node, 1)})
			for _, e := range seeded.Events() {
				p.Add(e)
			}
			continue
		}
		p.Add(ev)
	}
	return p, nil
}

// parseEntry decodes one spec entry body. For seed entries, Phase carries
// the seed and Node the crash count.
func parseEntry(kind, rest string) (Event, error) {
	switch kind {
	case "crash":
		phasePart, nodePart, hasNode := strings.Cut(rest, ":")
		phase, err := strconv.Atoi(phasePart)
		if err != nil {
			return Event{}, fmt.Errorf("bad phase %q", phasePart)
		}
		node := 0
		if hasNode {
			node, err = parseNode(nodePart)
			if err != nil {
				return Event{}, err
			}
		}
		return Event{Kind: Crash, Phase: phase, Node: node}, nil
	case "drop", "trunc":
		k := Drop
		if kind == "trunc" {
			k = Truncate
		}
		phasePart, pairPart, hasPair := strings.Cut(rest, ":")
		phase, err := strconv.Atoi(phasePart)
		if err != nil {
			return Event{}, fmt.Errorf("bad phase %q", phasePart)
		}
		from, to := Any, Any
		if hasPair {
			fromPart, toPart, ok := strings.Cut(pairPart, "-")
			if !ok {
				return Event{}, fmt.Errorf("bad endpoint pair %q (want F-T)", pairPart)
			}
			if from, err = strconv.Atoi(fromPart); err != nil {
				return Event{}, fmt.Errorf("bad sender %q", fromPart)
			}
			if to, err = strconv.Atoi(toPart); err != nil {
				return Event{}, fmt.Errorf("bad receiver %q", toPart)
			}
		}
		return Event{Kind: k, Phase: phase, From: from, To: to}, nil
	case "slow":
		rangePart, rest, ok := strings.Cut(rest, ":")
		if !ok {
			return Event{}, errors.New("slow needs :nNxF")
		}
		p1, p2, err := parseRange(rangePart)
		if err != nil {
			return Event{}, err
		}
		nodePart, factorPart, ok := strings.Cut(rest, "x")
		if !ok {
			return Event{}, errors.New("slow needs a xF factor")
		}
		node, err := parseNode(nodePart)
		if err != nil {
			return Event{}, err
		}
		factor, err := strconv.ParseFloat(factorPart, 64)
		if err != nil || factor < 1 {
			return Event{}, fmt.Errorf("bad slow factor %q (want ≥1)", factorPart)
		}
		return Event{Kind: Slow, Phase: p1, PhaseEnd: p2, Node: node, Factor: factor}, nil
	case "degrade":
		rangePart, factorPart, ok := strings.Cut(rest, "x")
		if !ok {
			return Event{}, errors.New("degrade needs a xF factor")
		}
		p1, p2, err := parseRange(rangePart)
		if err != nil {
			return Event{}, err
		}
		factor, err := strconv.ParseFloat(factorPart, 64)
		if err != nil || factor < 1 {
			return Event{}, fmt.Errorf("bad degrade factor %q (want ≥1)", factorPart)
		}
		return Event{Kind: Degrade, Phase: p1, PhaseEnd: p2, Factor: factor}, nil
	case "seed":
		seedPart, crashPart, hasCount := strings.Cut(rest, ":")
		seed, err := strconv.Atoi(seedPart)
		if err != nil {
			return Event{}, fmt.Errorf("bad seed %q", seedPart)
		}
		crashes := 1
		if hasCount {
			cp := strings.TrimPrefix(crashPart, "c")
			if crashes, err = strconv.Atoi(cp); err != nil || crashes < 1 {
				return Event{}, fmt.Errorf("bad crash count %q", crashPart)
			}
		}
		return Event{Phase: seed, Node: crashes}, nil
	default:
		return Event{}, fmt.Errorf("unknown fault kind %q", kind)
	}
}

func parseNode(s string) (int, error) {
	s = strings.TrimPrefix(s, "n")
	if s == "*" {
		return Any, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad node %q", s)
	}
	return n, nil
}

func parseRange(s string) (int, int, error) {
	p1s, p2s, ok := strings.Cut(s, "-")
	if !ok {
		p2s = p1s
	}
	p1, err := strconv.Atoi(p1s)
	if err != nil {
		return 0, 0, fmt.Errorf("bad phase range %q", s)
	}
	p2, err := strconv.Atoi(p2s)
	if err != nil || p2 < p1 {
		return 0, 0, fmt.Errorf("bad phase range %q", s)
	}
	return p1, p2, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
