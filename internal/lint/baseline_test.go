package lint

import (
	"path/filepath"
	"testing"
)

func TestBaselineApplySplitsNewFromKnown(t *testing.T) {
	known := Finding{File: "a.go", Line: 10, Rule: "det", Msg: "map order leak"}
	base := NewBaseline([]Finding{known})

	shifted := known
	shifted.Line = 99 // line drift must not invalidate the baseline
	fresh := Finding{File: "a.go", Line: 11, Rule: "lock", Msg: "leak on return"}

	newF, supp := base.Apply([]Finding{shifted, fresh})
	if len(supp) != 1 || supp[0].Rule != "det" {
		t.Fatalf("baselined finding should be suppressed despite line drift, got supp=%v", supp)
	}
	if len(newF) != 1 || newF[0].Rule != "lock" {
		t.Fatalf("non-baselined finding must stay, got %v", newF)
	}
}

func TestBaselineCountBoundsSuppression(t *testing.T) {
	f := Finding{File: "a.go", Line: 1, Rule: "hotalloc", Msg: "append without preallocation"}
	base := NewBaseline([]Finding{f}) // count 1
	dup := f
	dup.Line = 2
	newF, supp := base.Apply([]Finding{f, dup})
	if len(supp) != 1 || len(newF) != 1 {
		t.Fatalf("a second instance of a baselined pattern is new, got new=%v supp=%v", newF, supp)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	findings := []Finding{
		{File: "b.go", Line: 3, Rule: "det", Msg: "x"},
		{File: "a.go", Line: 1, Rule: "lock", Msg: "y"},
		{File: "a.go", Line: 2, Rule: "lock", Msg: "y"},
	}
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) != 2 {
		t.Fatalf("want 2 aggregated entries, got %v", base.Entries)
	}
	if base.Entries[0].File != "a.go" || base.Entries[0].Count != 2 {
		t.Fatalf("entries must be sorted and counted, got %v", base.Entries)
	}
	newF, _ := base.Apply(findings)
	if len(newF) != 0 {
		t.Fatalf("round-tripped baseline must cover its own findings, got %v", newF)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	base, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	f := Finding{File: "a.go", Line: 1, Rule: "det", Msg: "x"}
	newF, supp := base.Apply([]Finding{f})
	if len(newF) != 1 || len(supp) != 0 {
		t.Fatalf("missing baseline suppresses nothing, got new=%v supp=%v", newF, supp)
	}
}
