package serve

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestRunLoadRequestCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: ts.URL,
		Graphs: []GraphTarget{
			{Name: "social", Symmetric: true},
			{Name: "web"},
		},
		Concurrency: 4,
		Tenants:     4,
		Requests:    200,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Requests != 200 {
		t.Errorf("Requests = %d, want exactly 200 (request cap)", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
	// Totals reconcile: every issued request is a completed query, a
	// shed, or an error.
	if got := rep.Hits + rep.Misses + rep.Shed + rep.Errors; got != rep.Requests {
		t.Errorf("hits+misses+shed+errors = %d, want %d", got, rep.Requests)
	}
	if rep.QPS <= 0 {
		t.Errorf("QPS = %f, want > 0", rep.QPS)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("latency summary implausible: p50 %v p99 %v", rep.P50, rep.P99)
	}
	// The catalog is finite and Zipf-skewed, so 200 requests must produce
	// cache hits.
	if rep.Hits == 0 {
		t.Error("no cache hits in 200 skewed requests")
	}
	if len(rep.PerKind) == 0 {
		t.Error("PerKind empty")
	}
	for kind, kr := range rep.PerKind {
		if kr.Count <= 0 || kr.P50 <= 0 {
			t.Errorf("kind %s: implausible report %+v", kind, kr)
		}
	}
}

func TestRunLoadWithMutator(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:       ts.URL,
		Graphs:        []GraphTarget{{Name: "social", Symmetric: true}},
		Concurrency:   2,
		Duration:      400 * time.Millisecond,
		DeltaInterval: 50 * time.Millisecond,
		DeltaEdges:    4,
		Seed:          3,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Deltas == 0 {
		t.Error("mutator applied no deltas in 400ms at 50ms cadence")
	}
	if v, _ := s.Graph("social"); uint64(v.Epoch()) != uint64(rep.Deltas) {
		t.Errorf("graph epoch %d != applied deltas %d", v.Epoch(), rep.Deltas)
	}
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Error("RunLoad without BaseURL/Graphs should fail")
	}
}

func TestLoadReportFormat(t *testing.T) {
	rep := &LoadReport{
		Duration: time.Second, Requests: 100, Hits: 60, Misses: 30, Shed: 10,
		QPS: 100, P50: time.Millisecond, P99: 5 * time.Millisecond,
		PerKind: map[string]KindReport{"cc": {Count: 90, P50: time.Millisecond, P99: 2 * time.Millisecond}},
	}
	if r := rep.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("HitRate = %f, want 60/90", r)
	}
	if r := rep.ShedRate(); r != 0.1 {
		t.Errorf("ShedRate = %f, want 0.1", r)
	}
	var buf strings.Builder
	rep.Format(&buf)
	for _, want := range []string{"100 requests", "hit rate", "shed", "cc"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}
