package giraph

import (
	"testing"

	"graphmaze/internal/core"
	"graphmaze/internal/graph"
)

func TestCoordinationOverheadInWallSeconds(t *testing.T) {
	// The modeled Hadoop/ZooKeeper cost must appear in reported wall
	// time: a job with S supersteps costs at least S × coordinationSeconds.
	g, _ := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}})
	res, err := New().PageRank(g, core.PageRankOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	supersteps := 6 // iterations + 1
	minWall := float64(supersteps) * coordinationSeconds
	if res.Stats.WallSeconds < minWall {
		t.Errorf("WallSeconds = %v, want ≥ %v (coordination model)", res.Stats.WallSeconds, minWall)
	}
}

func TestContextAccessors(t *testing.T) {
	g, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{Src: 0, Dst: 1, Weight: 2.5}, {Src: 0, Dst: 2, Weight: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	var sawWeights []float32
	var sawN uint32
	job := &Job{
		Graph:         g,
		Init:          func(uint32) any { return nil },
		MaxSupersteps: 1,
		Compute: func(ctx *Context, _ []any) {
			if ctx.ID() == 0 {
				sawWeights = append(sawWeights, ctx.EdgeWeights()...)
				sawN = ctx.NumVertices()
				if ctx.Superstep() != 0 {
					t.Errorf("Superstep = %d", ctx.Superstep())
				}
				if len(ctx.OutEdges()) != 2 {
					t.Errorf("OutEdges = %v", ctx.OutEdges())
				}
			}
			ctx.VoteToHalt()
		},
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	if sawN != 3 {
		t.Errorf("NumVertices = %d", sawN)
	}
	if len(sawWeights) != 2 {
		t.Errorf("EdgeWeights = %v", sawWeights)
	}
}

func TestCounterAggregation(t *testing.T) {
	g, _ := graph.FromEdges(8, []graph.Edge{{Src: 0, Dst: 1}})
	job := &Job{
		Graph:         g,
		Init:          func(uint32) any { return nil },
		MaxSupersteps: 1,
		Compute: func(ctx *Context, _ []any) {
			ctx.AddToCounter(int64(ctx.ID()))
			ctx.VoteToHalt()
		},
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter != 28 { // 0+1+…+7
		t.Errorf("Counter = %d, want 28", res.Counter)
	}
}

func TestRunNilGraph(t *testing.T) {
	if _, err := Run(&Job{}); err == nil {
		t.Error("accepted nil graph")
	}
}

func TestSplitSuperstepsPreserveSemantics(t *testing.T) {
	// A message-heavy job must produce identical results regardless of
	// how many chunks each superstep is split into.
	g := fixtureDirected(t)
	run := func(split int) []float64 {
		e := &Engine{splitSupersteps: split}
		res, err := e.PageRank(g, core.PageRankOptions{Iterations: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ranks
	}
	a, b := run(1), run(7)
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-12 {
			t.Fatalf("rank %d differs across split settings: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestValuesBoxedPerVertex(t *testing.T) {
	// SetValue on one vertex must not leak to another.
	g, _ := graph.FromEdges(2, nil)
	job := &Job{
		Graph:         g,
		Init:          func(id uint32) any { return int(id) },
		MaxSupersteps: 1,
		Compute: func(ctx *Context, _ []any) {
			ctx.SetValue(ctx.Value().(int) * 10)
			ctx.VoteToHalt()
		},
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0].(int) != 0 || res.Values[1].(int) != 10 {
		t.Errorf("values = %v", res.Values)
	}
}
