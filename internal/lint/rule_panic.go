package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// PanicRule forbids panic in library code: the engines are benchmarked as
// long-running services and must surface failures as errors, not crashes.
// Panics remain legitimate in three builder/validation niches — functions
// whose name starts with "Must", functions whose name contains "Validate",
// and builder.go files — where a panic documents a programmer error caught
// at construction time. Everything else needs a //lint:ignore with the
// invariant that makes the panic unreachable.
//
// Packages named main (commands, examples) are exempt: a CLI is allowed to
// die loudly.
type PanicRule struct{}

// Name implements Rule.
func (*PanicRule) Name() string { return "panic" }

// Doc implements Rule.
func (*PanicRule) Doc() string {
	return "no panic in library code outside builder/validation paths (Must*, *Validate*, builder.go)"
}

// Check implements Rule.
func (r *PanicRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Types.Name() == "main" {
		return
	}
	for _, file := range p.Files {
		base := path.Base(p.Fset.Position(file.Pos()).Filename)
		if base == "builder.go" {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") ||
				strings.Contains(name, "Validate") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				ident, ok := call.Fun.(*ast.Ident)
				if !ok || ident.Name != "panic" {
					return true
				}
				if obj, ok := p.Info.Uses[ident].(*types.Builtin); !ok || obj.Name() != "panic" {
					return true
				}
				report(call.Pos(), "panic in library function %s: return an error instead (or rename to Must*/move to a builder path)", name)
				return true
			})
		}
	}
}
