// Package backend is the unified GraphMat-style SpMV engine the
// frameworks lower onto (PAPERS.md: GraphMat "maps vertex programs to
// generalized sparse matrix vector multiplication"). One hand-optimized
// substrate provides:
//
//   - dense semiring SpMV kernels over the shared CSR ([VecMul] for
//     arbitrary semirings, [SumVecMul] for the float64 plus-times pattern
//     product PageRank needs),
//   - sparse-frontier expansion ([Expander]) and a full direction-switching
//     level-synchronous traversal ([Traversal]) for BFS-shaped computations,
//   - a persistent worker [Pool] so the per-iteration hot loop reuses
//     parked goroutines and preallocated scratch instead of re-spawning and
//     re-allocating (zero steady-state allocations; benchmark-asserted),
//   - edge-balanced static row splits (par.OffsetSplits on the CSR prefix
//     sums) and 64-aligned dynamic chunk claiming, both chosen so results
//     are bit-identical at every GOMAXPROCS setting.
//
// Engines keep their own arithmetic when they lower: each constructs the
// per-iteration vector transforms exactly as its model prescribes and the
// backend contributes only the per-row fold, which is serial within a row
// (ascending column order) and therefore deterministic regardless of how
// rows are distributed over workers.
package backend

import (
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
)

// Matrix is the backend's view of a sparse pattern matrix: the CSR arrays
// shared (not copied) from internal/graph or an engine's own matrix type.
// Nonzero values, when an operation needs them, travel alongside as a
// parallel slice so pattern matrices pay nothing for them.
type Matrix struct {
	NumRows uint32
	// Offsets is the row prefix-sum array (len NumRows+1).
	Offsets []int64
	// Cols holds the column index of each nonzero, ascending within a row
	// for matrices built from prepared graphs — the order the
	// deterministic per-row folds rely on.
	Cols []uint32
	// Epoch tags matrices wrapped from a versioned graph snapshot
	// (graph.Epoch + 1, so a value of 0 means "unversioned"). Kernels use
	// it to key their cached edge-balanced row splits: Rebind recomputes
	// splits only when the epoch actually advanced.
	Epoch uint64
}

// FromCSR wraps a graph's CSR arrays as a backend matrix (no copy).
func FromCSR(g *graph.CSR) *Matrix {
	return &Matrix{NumRows: g.NumVertices, Offsets: g.Offsets, Cols: g.Targets}
}

// FromSnapshot wraps one immutable epoch of a versioned graph. The
// matrix's Epoch is the snapshot's epoch plus one so that epoch 0 is
// distinguishable from an unversioned FromCSR matrix.
func FromSnapshot(s *graph.Snapshot) *Matrix {
	m := FromCSR(s.CSR())
	m.Epoch = uint64(s.Epoch()) + 1
	return m
}

// NNZ reports the number of stored nonzeros.
func (m *Matrix) NNZ() int64 { return int64(len(m.Cols)) }

// splitCache memoizes a kernel's edge-balanced row splits keyed by the
// bound matrix's epoch: rebinding a kernel to the next epoch's matrix
// invalidates and recomputes, rebinding within the same (nonzero) epoch
// reuses the cached bounds. Unversioned matrices (Epoch 0) always
// recompute — there is no version signal to trust.
type splitCache struct {
	epoch  uint64
	valid  bool
	bounds []int
}

// get returns the splits for m, recomputing unless the cache holds the
// same nonzero epoch.
func (c *splitCache) get(m *Matrix, workers int) []int {
	if c.valid && m.Epoch != 0 && m.Epoch == c.epoch {
		return c.bounds
	}
	c.bounds = par.OffsetSplits(m.Offsets, workers)
	c.epoch = m.Epoch
	c.valid = true
	return c.bounds
}

// evenSplits returns k+1 bounds cutting [0,n) into k contiguous ranges
// whose sizes differ by at most one (the split par.ForWorkers uses).
func evenSplits(n, k int) []int {
	if k < 1 {
		k = 1
	}
	bounds := make([]int, k+1)
	base, rem := n/k, n%k
	lo := 0
	for w := 0; w < k; w++ {
		bounds[w] = lo
		lo += base
		if w < rem {
			lo++
		}
	}
	bounds[k] = n
	return bounds
}
