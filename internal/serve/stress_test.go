package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"graphmaze/internal/graph"
)

// TestConcurrentDeltaQueryStress drives queries and delta ingestion
// concurrently (run it with -race). It checks the two epoch-consistency
// properties the cache depends on:
//
//  1. A query pinned to an old epoch keeps serving that epoch's result,
//     stale but internally consistent, no matter how many deltas land
//     while it runs — verified by recomputing on the retained snapshot
//     after all ingestion settles and comparing bytes.
//  2. A query arriving after an epoch advance misses the cache (the key
//     moved) and reports the new epoch.
func TestConcurrentDeltaQueryStress(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxInFlight: 8, QueueDepth: 64})

	const writers = 2
	const readers = 4
	const deltasPerWriter = 8
	const queriesPerReader = 30

	paths := []string{
		"/query/cc?graph=social",
		"/query/pagerank?graph=social&iters=5&k=3",
		"/query/bfs?graph=social&source=1",
		"/query/tc?graph=social",
	}

	// Pin epoch 0's state before any deltas: snapshot handle plus the
	// served bytes for one query of each kind.
	g, ok := s.graphByName("social")
	if !ok {
		t.Fatal("social not registered")
	}
	epoch0 := g.v.Current()
	baseline := make(map[string][]byte)
	for _, p := range paths {
		code, _, body := get(t, ts.URL+p, nil)
		if code != http.StatusOK {
			t.Fatalf("baseline GET %s: %d", p, code)
		}
		baseline[p] = body
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < deltasPerWriter; i++ {
				src := uint32(2 + w*37 + i*11)
				dst := uint32(5 + w*13 + i*7)
				body := fmt.Sprintf(`{"graph":"social","edges":[[%d,%d]]}`, src%128, dst%128)
				resp, err := http.Post(ts.URL+"/delta", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("POST /delta: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("delta status %d", resp.StatusCode)
				}
			}
		}(w)
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				p := paths[(rdr+i)%len(paths)]
				req, _ := http.NewRequest(http.MethodGet, ts.URL+p, nil)
				req.Header.Set("X-Tenant", fmt.Sprintf("t%d", rdr))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("GET %s: %v", p, err)
					return
				}
				var meta queryMeta
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
						t.Errorf("decode %s: %v", p, err)
					}
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests:
					// Shedding under stress is legal; wrong answers are not.
				default:
					t.Errorf("GET %s: status %d", p, resp.StatusCode)
				}
			}
		}(rdr)
	}
	wg.Wait()

	if e := g.v.Epoch(); e != graph.Epoch(writers*deltasPerWriter) {
		t.Fatalf("epoch after stress = %d, want %d", e, writers*deltasPerWriter)
	}

	// One more delta after the stress settles: readers may have cached
	// results at the stress-final epoch, so advance once more to a
	// guaranteed-uncached epoch before asserting miss-then-hit.
	if _, _, _, err := g.v.ApplyDelta([]graph.Edge{{Src: 3, Dst: 17}}); err != nil {
		t.Fatalf("final ApplyDelta: %v", err)
	}
	finalEpoch := g.v.Epoch()

	// Property 1: recomputing on the retained epoch-0 snapshot reproduces
	// the pre-delta bytes exactly — the snapshot stayed immutable under
	// 16 concurrent rebuilds.
	for _, p := range paths {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+p, nil)
		q, err := s.parseQuery(req)
		if err != nil {
			t.Fatalf("parseQuery %s: %v", p, err)
		}
		body, err := s.execute(g, epoch0, q)
		if err != nil {
			t.Fatalf("execute %s on epoch 0: %v", p, err)
		}
		if !bytes.Equal(body, baseline[p]) {
			t.Errorf("%s: epoch-0 recompute differs from pre-delta bytes\nwas: %s\nnow: %s", p, baseline[p], body)
		}
	}

	// Property 2: a fresh query misses (new epoch key) and reports the
	// final epoch; a second hits with identical bytes.
	for _, p := range paths {
		code, state, first := get(t, ts.URL+p, nil)
		if code != http.StatusOK || state != "miss" {
			t.Fatalf("post-stress GET %s: status %d X-Cache %q, want 200 miss", p, code, state)
		}
		var meta queryMeta
		if err := json.Unmarshal(first, &meta); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if meta.Epoch != uint64(finalEpoch) {
			t.Errorf("%s: epoch %d, want %d", p, meta.Epoch, finalEpoch)
		}
		code, state, second := get(t, ts.URL+p, nil)
		if code != http.StatusOK || state != "hit" {
			t.Fatalf("post-stress GET %s (2nd): status %d X-Cache %q, want 200 hit", p, code, state)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: cache hit differs from recompute at final epoch", p)
		}
	}
}
