package graphlab

import (
	"time"

	"graphmaze/internal/backend"
	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/cuckoo"
	"graphmaze/internal/graph"
	"graphmaze/internal/trace"
)

// replicationDegree is the total-degree threshold above which a vertex is
// mirrored on every node (GraphLab's power-law mitigation, §6.1.1).
const replicationDegree = 512

// Engine is the GraphLab-model engine.
type Engine struct{}

var _ core.Engine = (*Engine)(nil)

// New returns the GraphLab-model engine.
func New() *Engine { return &Engine{} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "GraphLab" }

// Capabilities implements core.Engine.
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{MultiNode: true, SGD: false, ProgrammingModel: "vertex"}
}

// pageRankSpec is the paper's Algorithm 1 as a GAS program.
func pageRankSpec(opt core.PageRankOptions) Spec[float64, float64] {
	return Spec[float64, float64]{
		Init:       func(uint32) float64 { return 1 },
		GatherZero: func() float64 { return 0 },
		Gather: func(acc float64, _ uint32, srcVal float64, srcOutDeg int64, _ float32) float64 {
			if srcOutDeg == 0 {
				return acc
			}
			return acc + srcVal/float64(srcOutDeg)
		},
		Apply: func(_ uint32, _ float64, acc float64, _ bool) (float64, bool, Activation) {
			return opt.RandomJump + (1-opt.RandomJump)*acc, true, ActivateSelf
		},
		MaxIterations: opt.Iterations,
		ValueBytes:    8,
	}
}

// PageRank implements core.Engine.
func (e *Engine) PageRank(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, errNeedGraph
	}
	in := g.Transpose()
	spec := pageRankSpec(opt)
	spec.Tracer = opt.Exec.Tracer()
	if opt.Exec.Cluster == nil {
		res, secs := measure(func() runResult[float64] { return pageRankLowered(g, in, opt, spec.Tracer) })
		return &core.PageRankResult{Ranks: res.vals,
			Stats: core.RunStats{WallSeconds: secs, Iterations: res.rounds}}, nil
	}
	cfg := *opt.Exec.Cluster
	if cfg.Trace == nil {
		cfg.Trace = opt.Exec.Trace
	}
	c, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	rp, err := graph.NewReplicatedPartition(g, c.Nodes(), replicationDegree)
	if err != nil {
		return nil, err
	}
	res, err := runCluster(g, in, spec, c, rp)
	if err != nil {
		return nil, err
	}
	return &core.PageRankResult{Ranks: res.vals, Stats: clusterStats(c, res.rounds)}, nil
}

// pageRankLowered is the local PageRank sweep lowered onto the shared
// SpMV backend (DESIGN.md §12): the GAS gather over in-edges is a
// plus-times SpMV of the contribution vector over the transpose, and
// Apply fuses into the per-row map. The fold order — zero-seeded
// accumulator over ascending source ids — matches the generic runtime's
// gather exactly, so the ranks are bit-identical to runLocal's, and the
// sweep spans keep their shape (every vertex stays active and changes
// every round under this spec).
func pageRankLowered(g *graph.CSR, in *graph.CSR, opt core.PageRankOptions, tr *trace.Tracer) runResult[float64] {
	n := int(g.NumVertices)
	outDeg := g.OutDegrees()
	pool := backend.NewPool(0)
	defer pool.Close()
	pool.SetTracer(tr)
	mul := backend.NewSumVecMul(pool, backend.FromCSR(in)).WithTracer(tr)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1
	}
	contrib := make([]float64, n)
	contribPass := backend.NewDense(pool, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if outDeg[v] > 0 {
				contrib[v] = vals[v] / float64(outDeg[v])
			} else {
				contrib[v] = 0
			}
		}
	})
	post := func(_ uint32, sum float64) float64 { return opt.RandomJump + (1-opt.RandomJump)*sum }
	for round := 1; round <= opt.Iterations; round++ {
		sp := tr.Begin("graphlab.sweep", "sweep").Arg("round", float64(round))
		contribPass.Run()
		mul.MapInto(vals, contrib, post)
		sp.Arg("changed", float64(n)).End()
	}
	return runResult[float64]{vals: vals, rounds: opt.Iterations}
}

// PageRankAsync runs PageRank on GraphLab's asynchronous engine: no
// rounds, immediately visible updates, vertices rescheduled only while
// their rank still moves by more than tol. It returns the ranks and the
// number of vertex updates performed.
func (e *Engine) PageRankAsync(g *graph.CSR, opt core.PageRankOptions, tol float64) ([]float64, int, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, 0, err
	}
	if tol <= 0 {
		tol = 1e-9
	}
	in := g.Transpose()
	spec := Spec[float64, float64]{
		Init:       func(uint32) float64 { return 1 },
		GatherZero: func() float64 { return 0 },
		Gather: func(acc float64, _ uint32, srcVal float64, srcOutDeg int64, _ float32) float64 {
			if srcOutDeg == 0 {
				return acc
			}
			return acc + srcVal/float64(srcOutDeg)
		},
		Apply: func(_ uint32, old float64, acc float64, _ bool) (float64, bool, Activation) {
			next := opt.RandomJump + (1-opt.RandomJump)*acc
			d := next - old
			if d < 0 {
				d = -d
			}
			if d > tol {
				// Converging contraction: propagate to out-neighbours.
				return next, true, ActivateNeighbors
			}
			return next, true, ActivateNone
		},
	}
	// A generous update budget: async PageRank contracts geometrically.
	res := runLocalAsync(g, in, spec, int64(g.NumVertices)*1000)
	return res.vals, res.rounds, nil
}

// bfsSpec is the paper's Algorithm 2 as a GAS program.
func bfsSpec(source uint32) Spec[int32, int32] {
	const inf = int32(1) << 30
	return Spec[int32, int32]{
		Init: func(id uint32) int32 {
			if id == source {
				return 0
			}
			return inf
		},
		GatherZero: func() int32 { return inf },
		Gather: func(acc int32, _ uint32, srcVal int32, _ int64, _ float32) int32 {
			if srcVal != inf && srcVal+1 < acc {
				return srcVal + 1
			}
			return acc
		},
		Apply: func(id uint32, old int32, acc int32, hasGather bool) (int32, bool, Activation) {
			best := old
			if hasGather && acc < best {
				best = acc
			}
			if best < old {
				return best, true, ActivateNeighbors
			}
			if old == 0 {
				// The source's first round: propagate.
				return old, false, ActivateNeighbors
			}
			return old, false, ActivateNone
		},
		InitialActive: []uint32{source},
		ValueBytes:    4,
	}
}

// BFS implements core.Engine.
func (e *Engine) BFS(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	opt, err := core.CheckBFSInput(g, opt)
	if err != nil {
		return nil, err
	}
	in := g.Transpose()
	spec := bfsSpec(opt.Source)
	spec.Tracer = opt.Exec.Tracer()
	finish := func(res runResult[int32], stats core.RunStats) *core.BFSResult {
		dist := make([]int32, len(res.vals))
		for i, v := range res.vals {
			if v >= int32(1)<<30 {
				dist[i] = -1
			} else {
				dist[i] = v
			}
		}
		return &core.BFSResult{Distances: dist, Stats: stats}
	}
	if opt.Exec.Cluster == nil {
		res, secs := measure(func() runResult[int32] { return runLocal(g, in, spec) })
		return finish(res, core.RunStats{WallSeconds: secs, Iterations: res.rounds}), nil
	}
	cfg := *opt.Exec.Cluster
	if cfg.Trace == nil {
		cfg.Trace = opt.Exec.Trace
	}
	c, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	rp, err := graph.NewReplicatedPartition(g, c.Nodes(), replicationDegree)
	if err != nil {
		return nil, err
	}
	res, err := runCluster(g, in, spec, c, rp)
	if err != nil {
		return nil, err
	}
	return finish(res, clusterStats(c, res.rounds)), nil
}

// TriangleCount implements core.Engine with GraphLab's approach: per-vertex
// neighbourhood sets held in cuckoo hash tables for constant-time
// membership tests (§5.3 credits this structure for GraphLab's TC
// standing).
func (e *Engine) TriangleCount(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	opt, err := core.CheckTriangleInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return e.triangleCluster(g, opt)
	}
	start := time.Now()
	count := triangleCuckoo(g, 0, g.NumVertices, nil)
	return &core.TriangleResult{Count: count,
		Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: 1}}, nil
}

// triangleCuckoo counts triangles whose first vertex lies in [lo,hi),
// using cuckoo sets for the intersections. sets, when non-nil, caches
// per-vertex cuckoo sets across calls.
func triangleCuckoo(g *graph.CSR, lo, hi uint32, sets map[uint32]*cuckoo.Set) int64 {
	var count int64
	getSet := func(v uint32) *cuckoo.Set {
		if sets != nil {
			if s, ok := sets[v]; ok {
				return s
			}
		}
		adj := g.Neighbors(v)
		s := cuckoo.New(len(adj))
		for _, t := range adj {
			s.Insert(t)
		}
		if sets != nil {
			sets[v] = s
		}
		return s
	}
	for v := lo; v < hi; v++ {
		adjV := g.Neighbors(v)
		if len(adjV) == 0 {
			continue
		}
		setV := getSet(v)
		for _, u := range adjV {
			count += int64(setV.IntersectCount(g.Neighbors(u)))
		}
	}
	return count
}

// triangleCluster distributes the cuckoo counting over a 1-D partition:
// adjacency lists of boundary edges ship to the consumer uncompressed
// (GraphLab does not delta-code), then intersect against local cuckoo
// sets. Overlapped in-flight blocks keep the memory footprint low
// (§6.1.1), which we reflect by accounting only per-block buffers.
func (e *Engine) triangleCluster(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	cfg := *opt.Exec.Cluster
	cfg.Overlap = true // GraphLab's TC overlaps communication (paper §6.1.1)
	c, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	var total int64
	err = c.RunPhase(func(node int) error {
		lo, hi := part.Range(node)
		edges := g.Offsets[hi] - g.Offsets[lo]
		c.SetBaselineMemory(node, edges*8+int64(hi-lo)*48) // CSR + cuckoo sets
		total += triangleCuckoo(g, lo, hi, nil)
		// Boundary adjacency shipping: for every out-neighbour u of v owned
		// elsewhere, adj(v) travels to owner(u) once per (v, owner) pair —
		// uncompressed 4 B/id plus a 16-byte envelope per list.
		type key struct {
			v uint32
			d int
		}
		sent := make(map[key]bool)
		for v := lo; v < hi; v++ {
			adjLen := int64(len(g.Neighbors(v)))
			for _, u := range g.Neighbors(v) {
				d := part.Owner(u)
				if d == node || sent[key{v, d}] {
					continue
				}
				sent[key{v, d}] = true
				c.Account(node, adjLen*4+16, 1)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Remote intersections execute where the data landed; the compute ran
	// above (shared memory), the result allreduce is a tiny message.
	err = c.RunPhase(func(node int) error {
		c.Account(node, 8, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &core.TriangleResult{Count: total, Stats: clusterStats(c, 1)}, nil
}

// CollabFilter implements core.Engine: vertex-programming gradient descent.
// SGD is not expressible (paper §3.2) and returns core.ErrUnsupported.
//
// GraphLab's gather sees one neighbour at a time together with the central
// vertex's own value, so the per-edge gradient [r·q − (p·q)q − λp] folds
// directly; we implement the loop explicitly rather than through Spec
// because the gather needs the central value, which the generic runtime
// hides.
func (e *Engine) CollabFilter(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	opt, err := core.CheckCFInput(r, opt)
	if err != nil {
		return nil, err
	}
	if opt.Method == core.SGD {
		return nil, core.ErrUnsupported
	}
	k := opt.K
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)

	var c *cluster.Cluster
	var userPart *graph.Partition1D
	if opt.Exec.Cluster != nil {
		c, err = newCluster(*opt.Exec.Cluster)
		if err != nil {
			return nil, err
		}
		userPart, err = graph.NewPartition1D(r.ByUser, c.Nodes())
		if err != nil {
			return nil, err
		}
		for node := 0; node < c.Nodes(); node++ {
			lo, hi := userPart.Range(node)
			ratings := r.ByUser.Offsets[hi] - r.ByUser.Offsets[lo]
			c.SetBaselineMemory(node, ratings*8+int64(hi-lo)*int64(k)*4+int64(r.NumItems)*int64(k)*4)
		}
	}

	gamma := opt.LearningRate
	rmse := make([]float64, 0, opt.Iterations)
	start := time.Now()
	iterate := func() {
		gradP := make([]float64, len(userF))
		gradQ := make([]float64, len(itemF))
		gatherInto := func(ulo, uhi uint32) {
			for u := ulo; u < uhi; u++ {
				adj, wts := r.ByUser.Neighbors(u), r.ByUser.EdgeWeights(u)
				pu := userF[int(u)*k : int(u+1)*k]
				gp := gradP[int(u)*k : int(u+1)*k]
				for i, v := range adj {
					qv := itemF[int(v)*k : int(v+1)*k]
					dot := core.Dot(pu, qv)
					rv := float64(wts[i])
					gq := gradQ[int(v)*k : int(v+1)*k]
					for d := 0; d < k; d++ {
						gp[d] += rv*float64(qv[d]) - dot*float64(qv[d]) - opt.LambdaP*float64(pu[d])
						gq[d] += rv*float64(pu[d]) - dot*float64(pu[d]) - opt.LambdaQ*float64(qv[d])
					}
				}
			}
		}
		if c == nil {
			gatherInto(0, r.NumUsers)
		} else {
			_ = c.RunPhase(func(node int) error {
				lo, hi := userPart.Range(node)
				gatherInto(lo, hi)
				// Every node pushes K-vector messages for the items its
				// users rated — the O(K·E)-style traffic with GraphLab's
				// node-local reduction (one message per touched item).
				touched := make(map[uint32]bool)
				for u := lo; u < hi; u++ {
					for _, v := range r.ByUser.Neighbors(u) {
						touched[v] = true
					}
				}
				c.Account(node, int64(len(touched))*int64(4+4*k), int64(c.Nodes()-1))
				return nil
			})
		}
		apply := func() {
			for i := range userF {
				userF[i] += float32(gamma * gradP[i])
			}
			for i := range itemF {
				itemF[i] += float32(gamma * gradQ[i])
			}
		}
		if c == nil {
			apply()
		} else {
			_ = c.RunPhase(func(node int) error {
				if node == 0 {
					apply()
				}
				// Updated item factors broadcast back to all nodes.
				c.Account(node, int64(r.NumItems)*int64(4*k)/int64(c.Nodes()), 1)
				return nil
			})
		}
		gamma *= opt.StepDecay
		if !opt.SkipRMSETrajectory {
			rmse = append(rmse, core.RMSE(r, k, userF, itemF))
		}
	}
	for it := 0; it < opt.Iterations; it++ {
		iterate()
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, core.RMSE(r, k, userF, itemF))
	}

	stats := core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}
	if c != nil {
		stats = clusterStats(c, opt.Iterations)
	}
	return &core.CFResult{K: k, UserFactors: userF, ItemFactors: itemF, RMSE: rmse, Stats: stats}, nil
}

// clusterStats packages a cluster run's report.
func clusterStats(c *cluster.Cluster, iterations int) core.RunStats {
	rep := c.Report()
	return core.RunStats{
		WallSeconds: rep.SimulatedSeconds,
		Simulated:   true,
		Iterations:  iterations,
		Report:      rep,
	}
}
