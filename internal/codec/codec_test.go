package codec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedIDs(r *rand.Rand, n int, universe uint32) []uint32 {
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[uint32(r.Intn(int(universe)))] = true
	}
	ids := make([]uint32, 0, n)
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestRoundTripAllSchemes(t *testing.T) {
	ids := []uint32{0, 1, 7, 100, 1023}
	for _, s := range []Scheme{Raw, DeltaVarint, Bitvector} {
		enc, err := EncodeIDs(s, ids, 1024)
		if err != nil {
			t.Fatalf("%v: encode: %v", s, err)
		}
		dec, err := DecodeIDs(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", s, err)
		}
		if len(dec) != len(ids) {
			t.Fatalf("%v: decoded %v, want %v", s, dec, ids)
		}
		for i := range ids {
			if dec[i] != ids[i] {
				t.Fatalf("%v: decoded %v, want %v", s, dec, ids)
			}
		}
	}
}

func TestEmptyList(t *testing.T) {
	for _, s := range []Scheme{Raw, DeltaVarint, Bitvector} {
		enc, err := EncodeIDs(s, nil, 64)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		dec, err := DecodeIDs(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", s, err)
		}
		if len(dec) != 0 {
			t.Errorf("%v: decoded %v from empty list", s, dec)
		}
	}
}

func TestDeltaCompressesSortedRuns(t *testing.T) {
	// Consecutive ids (gap 1) should code ~1 byte each vs 4 raw.
	ids := make([]uint32, 1000)
	for i := range ids {
		ids[i] = uint32(i) + 5000
	}
	raw, _ := EncodeIDs(Raw, ids, 1<<20)
	delta, _ := EncodeIDs(DeltaVarint, ids, 1<<20)
	if len(delta)*3 > len(raw) {
		t.Errorf("delta %dB vs raw %dB: expected ≥3× compression on runs", len(delta), len(raw))
	}
}

func TestBitvectorWinsWhenDense(t *testing.T) {
	universe := uint32(4096)
	ids := make([]uint32, 0, universe/2)
	for i := uint32(0); i < universe; i += 2 {
		ids = append(ids, i)
	}
	bv, _ := EncodeIDs(Bitvector, ids, universe)
	raw, _ := EncodeIDs(Raw, ids, universe)
	if len(bv) >= len(raw) {
		t.Errorf("bitvector %dB not smaller than raw %dB on dense set", len(bv), len(raw))
	}
	if got := ChooseScheme(len(ids), universe); got != Bitvector {
		t.Errorf("ChooseScheme dense = %v, want Bitvector", got)
	}
}

func TestChooseSchemeSparse(t *testing.T) {
	if got := ChooseScheme(10, 1<<20); got != DeltaVarint {
		t.Errorf("ChooseScheme sparse = %v, want DeltaVarint", got)
	}
	if got := ChooseScheme(0, 1<<20); got != DeltaVarint {
		t.Errorf("ChooseScheme empty = %v, want DeltaVarint", got)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeIDs(DeltaVarint, []uint32{5, 5}, 10); err == nil {
		t.Error("delta accepted non-increasing ids")
	}
	if _, err := EncodeIDs(DeltaVarint, []uint32{5, 3}, 10); err == nil {
		t.Error("delta accepted decreasing ids")
	}
	if _, err := EncodeIDs(Bitvector, []uint32{99}, 10); err == nil {
		t.Error("bitvector accepted id outside universe")
	}
	if _, err := EncodeIDs(Bitvector, []uint32{3, 3}, 10); err == nil {
		t.Error("bitvector accepted duplicate ids")
	}
	if _, err := EncodeIDs(Scheme(99), nil, 10); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeIDs(nil); err == nil {
		t.Error("decoded empty payload")
	}
	if _, err := DecodeIDs([]byte{byte(Raw), 1, 2, 3}); err == nil {
		t.Error("decoded misaligned raw payload")
	}
	if _, err := DecodeIDs([]byte{byte(Bitvector), 1}); err == nil {
		t.Error("decoded truncated bitvector header")
	}
	if _, err := DecodeIDs([]byte{byte(Bitvector), 64, 0, 0, 0}); err == nil {
		t.Error("decoded bitvector with missing body")
	}
	if _, err := DecodeIDs([]byte{99}); err == nil {
		t.Error("decoded unknown scheme")
	}
	// Truncated varint: 0x80 promises a continuation byte.
	if _, err := DecodeIDs([]byte{byte(DeltaVarint), 0x80}); err == nil {
		t.Error("decoded truncated varint")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, uRaw uint16) bool {
		universe := uint32(uRaw%8192) + 64
		n := int(nRaw) % int(universe)
		r := rand.New(rand.NewSource(seed))
		ids := sortedIDs(r, n, universe)
		for _, s := range []Scheme{Raw, DeltaVarint, Bitvector} {
			enc, err := EncodeIDs(s, ids, universe)
			if err != nil {
				return false
			}
			dec, err := DecodeIDs(enc)
			if err != nil || len(dec) != len(ids) {
				return false
			}
			for i := range ids {
				if dec[i] != ids[i] {
					return false
				}
			}
		}
		// Auto must round-trip too.
		enc, err := EncodeIDsAuto(ids, universe)
		if err != nil {
			return false
		}
		dec, err := DecodeIDs(enc)
		if err != nil || len(dec) != len(ids) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSchemeString(t *testing.T) {
	if Raw.String() != "raw" || DeltaVarint.String() != "delta+varint" || Bitvector.String() != "bitvector" {
		t.Error("scheme names wrong")
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme String empty")
	}
}
