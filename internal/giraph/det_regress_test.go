package giraph

import (
	goruntime "runtime"
	"testing"
)

// TestCombinerFlushDeterministicAcrossRuns pins the graphlint det fix in
// the combiner flush path: staged per-slot maps are drained in sorted
// destination order, so repeated runs — within a process (fresh map seed
// per map) and across GOMAXPROCS values — must produce bit-identical
// vertex values, not just values equal up to float reordering.
func TestCombinerFlushDeterministicAcrossRuns(t *testing.T) {
	g := fixtureDirected(t)
	run := func() *Result {
		j := &Job{
			Graph:         g,
			Init:          func(uint32) any { return float64(1) },
			MaxSupersteps: 3,
			MessageBytes:  func(any) int { return 8 },
			Combiner:      func(a, b any) any { return a.(float64) + b.(float64) },
		}
		j.Compute = prCompute(j, 0.3)
		res, err := Run(j)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run()
	for _, procs := range []int{1, goruntime.NumCPU()} {
		prev := goruntime.GOMAXPROCS(procs)
		a, b := run(), run()
		goruntime.GOMAXPROCS(prev)
		for _, got := range []*Result{a, b} {
			if got.Supersteps != want.Supersteps || got.Counter != want.Counter {
				t.Fatalf("GOMAXPROCS=%d: supersteps/counter drifted: %d/%d vs %d/%d",
					procs, got.Supersteps, got.Counter, want.Supersteps, want.Counter)
			}
			for i := range want.Values {
				if got.Values[i].(float64) != want.Values[i].(float64) {
					t.Fatalf("GOMAXPROCS=%d: vertex %d not bit-identical: %v vs %v",
						procs, i, got.Values[i], want.Values[i])
				}
			}
		}
	}
}
