package lint

import (
	"go/ast"
	"go/token"
)

// DocRule requires doc comments on the exported API of the root graphmaze
// package and of every engine package: the engines are the units of
// comparison in the paper's study, and an undocumented knob on one of them
// is how benchmark configurations silently drift. A declaration group's
// comment covers its members; methods need docs when both the receiver type
// and the method name are exported.
type DocRule struct{}

// Name implements Rule.
func (*DocRule) Name() string { return "doc" }

// Doc implements Rule.
func (*DocRule) Doc() string {
	return "exported API of the root package and every engine needs a doc comment"
}

// Check implements Rule.
func (r *DocRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Rel != "" && !isEngine(p.Rel) {
		return
	}
	hasPackageDoc := false
	for _, file := range p.Files {
		if file.Doc != nil {
			hasPackageDoc = true
		}
	}
	if !hasPackageDoc && len(p.Files) > 0 {
		report(p.Files[0].Package, "package %s has no package doc comment", p.Types.Name())
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						var exported *ast.Ident
						for _, name := range s.Names {
							if name.IsExported() {
								exported = name
								break
							}
						}
						if exported != nil && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "exported %s %s has no doc comment", d.Tok, exported.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether the method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.IsExported()
		default:
			return false
		}
	}
}
