package native

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"graphmaze/internal/backend"
	"graphmaze/internal/bitvec"
	"graphmaze/internal/cluster"
	"graphmaze/internal/codec"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
	"graphmaze/internal/trace"
)

// BFS implements core.Engine over an undirected (symmetrized) graph,
// following the approach of [28] cited by the paper: level-synchronous
// traversal with a bit-vector visited set and a top-down/bottom-up
// direction switch for the dense middle levels.
func (e *Engine) BFS(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	opt, err := core.CheckBFSInput(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.Exec.Cluster != nil {
		return e.bfsCluster(g, opt)
	}
	start := time.Now()
	dist, levels := e.bfsLocal(g, opt.Source, opt.Exec.Tracer())
	return &core.BFSResult{
		Distances: dist,
		Stats:     core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: levels},
	}, nil
}

func (e *Engine) bfsLocal(g *graph.CSR, source uint32, tr *trace.Tracer) ([]int32, int) {
	n := g.NumVertices
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0

	if !e.tuning.Bitvector {
		// Baseline data structure: the distance array itself is the
		// visited set (a 4-byte random load per probe instead of a bit).
		return bfsTopDownArray(g, dist, source)
	}

	// Tuned path: the direction-switching bit-vector traversal lives in
	// the shared backend (same serial cutover, same frontier grain, same
	// 3× direction heuristic as the historical native kernel); the native
	// engine is a thin wrapper that keeps its span name.
	pool := backend.NewPool(0)
	defer pool.Close()
	pool.SetTracer(tr)
	tv := backend.NewTraversal(pool, backend.FromCSR(g), "native.bfs.level", tr)
	return dist, tv.Run(dist, source)
}

// bfsTopDownArray is the no-bitvector baseline: serial-friendly top-down
// expansion probing the distance array.
func bfsTopDownArray(g *graph.CSR, dist []int32, source uint32) ([]int32, int) {
	frontier := []uint32{source}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		var next []uint32
		for _, v := range frontier {
			for _, t := range g.Neighbors(v) {
				if atomic.CompareAndSwapInt32(&dist[t], -1, level) {
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return dist, int(level)
}

// bfsCluster is the distributed level-synchronous BFS: 1-D partition,
// per-level exchange of discovered remote candidates as (optionally
// compressed) sorted id lists — the paper's 3.2× BFS compression win
// comes from exactly this traffic.
func (e *Engine) bfsCluster(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	cfg := *opt.Exec.Cluster
	cfg.Overlap = e.tuning.Overlap
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	n := g.NumVertices
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[opt.Source] = 0

	visited := bitvec.New(n)
	visited.Set(opt.Source)

	// Per-node frontier of owned vertices.
	frontiers := make([][]uint32, c.Nodes())
	frontiers[part.Owner(opt.Source)] = []uint32{opt.Source}

	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := g.Offsets[hi] - g.Offsets[lo]
		// CSR slice + distances + visited bits for owned range.
		c.SetBaselineMemory(node, edges*4+int64(hi-lo+1)*8+int64(hi-lo)*4+int64(hi-lo)/8)
	}

	// Fault tolerance (DESIGN.md §10): a level's inter-phase state is the
	// distance array, the visited bitset, and the per-node frontiers; the
	// in-flight candidate lists ride in the cluster inbox, checkpointed by
	// the recovery driver. The level number itself is the step index, so a
	// replayed step recomputes under the same level.
	rec := c.Recovery(
		func() ([]byte, error) {
			out := codec.AppendInt32s(nil, dist)
			out = codec.AppendUint64s(out, visited.Words())
			for node := 0; node < c.Nodes(); node++ {
				out = codec.AppendUint32s(out, frontiers[node])
			}
			return out, nil
		},
		func(data []byte) error {
			d, data, err := codec.Int32s(data)
			if err != nil {
				return err
			}
			if len(d) != len(dist) {
				return fmt.Errorf("native: checkpoint has %d distances, want %d", len(d), len(dist))
			}
			words, data, err := codec.Uint64s(data)
			if err != nil {
				return err
			}
			if len(words) != len(visited.Words()) {
				return fmt.Errorf("native: checkpoint has %d visited words, want %d", len(words), len(visited.Words()))
			}
			restored := make([][]uint32, c.Nodes())
			for node := 0; node < c.Nodes(); node++ {
				if restored[node], data, err = codec.Uint32s(data); err != nil {
					return err
				}
			}
			copy(dist, d)
			copy(visited.Words(), words)
			copy(frontiers, restored)
			return nil
		})
	var levels int
	err = rec.Run(func(step int) (bool, error) {
		level := graph.MustI32(int64(step)) + 1
		anyActive := false
		err := c.RunPhase(func(node int) error {
			// Merge remote candidates delivered at the phase boundary.
			for _, payload := range c.Recv(node) {
				ids, err := codec.DecodeIDs(payload)
				if err != nil {
					return err
				}
				for _, v := range ids {
					if dist[v] == -1 {
						dist[v] = level - 1
						visited.Set(v)
						frontiers[node] = append(frontiers[node], v)
					}
				}
			}
			// Expand the local frontier. Remote candidates dedup through
			// per-destination bitmaps (the native code's send-side visited
			// filters, [28]); iterating set bits yields them pre-sorted.
			remote := make(map[int]*bitvec.Vector)
			var next []uint32
			for _, v := range frontiers[node] {
				for _, t := range g.Neighbors(v) {
					if visited.Get(t) {
						continue
					}
					owner := part.Owner(t)
					if owner == node {
						visited.Set(t)
						dist[t] = level
						next = append(next, t)
					} else {
						marks := remote[owner]
						if marks == nil {
							marks = bitvec.New(n)
							remote[owner] = marks
						}
						marks.Set(t)
					}
				}
			}
			frontiers[node] = next
			if len(next) > 0 {
				anyActive = true
			}
			// Send in ascending destination order: map iteration order is
			// random per run, and message order feeds the traced transfer
			// accounting, which must be reproducible.
			dests := make([]int, 0, len(remote))
			for d := range remote {
				dests = append(dests, d)
			}
			sort.Ints(dests)
			for _, d := range dests {
				marks := remote[d]
				ids := make([]uint32, 0, marks.Count())
				marks.ForEach(func(t uint32) { ids = append(ids, t) })
				if len(ids) == 0 {
					continue
				}
				var payload []byte
				var err error
				if e.tuning.Compression {
					payload, err = codec.EncodeIDsAuto(ids, n)
				} else {
					payload, err = codec.EncodeIDs(codec.Raw, ids, n)
				}
				if err != nil {
					return err
				}
				c.Send(node, d, payload)
				anyActive = true
			}
			// Termination allreduce: one flag byte per node per level.
			c.Account(node, 1, 1)
			return nil
		})
		if err != nil {
			return false, err
		}
		levels = int(level)
		return !anyActive, nil
	})
	if err != nil {
		return nil, err
	}

	return &core.BFSResult{
		Distances: dist,
		Stats: core.RunStats{
			WallSeconds: c.Report().SimulatedSeconds,
			Simulated:   true,
			Iterations:  levels,
			Report:      c.Report(),
		},
	}, nil
}

// dedupSorted removes duplicates from a sorted slice in place.
func dedupSorted(ids []uint32) []uint32 {
	if len(ids) == 0 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}
