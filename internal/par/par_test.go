package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		var visited int64
		For(n, func(lo, hi int) {
			atomic.AddInt64(&visited, int64(hi-lo))
		})
		if visited != int64(n) {
			t.Errorf("n=%d: visited %d", n, visited)
		}
	}
}

func TestForEachIndexOnce(t *testing.T) {
	n := 5000
	marks := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestForWorkersSerial(t *testing.T) {
	// With 1 worker the body must run inline over the full range.
	var calls int
	ForWorkers(1, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestForWorkersCapped(t *testing.T) {
	var chunks int64
	ForWorkers(3, 100, func(lo, hi int) {
		atomic.AddInt64(&chunks, 1)
	})
	if chunks > 3 {
		t.Errorf("chunks = %d, want ≤ 3", chunks)
	}
}

func TestForWorkersIndexedDistinctWorkers(t *testing.T) {
	// Explicit multi-worker invocation (GOMAXPROCS may be 1, so the
	// parallel branches need explicit worker counts to be exercised).
	seen := make([]int32, 4)
	ForWorkersIndexed(4, 400, func(worker, lo, hi int) {
		if worker < 0 || worker >= 4 {
			t.Errorf("worker index %d out of range", worker)
		}
		atomic.AddInt32(&seen[worker], int32(hi-lo))
	})
	var total int32
	for _, s := range seen {
		total += s
	}
	if total != 400 {
		t.Errorf("covered %d of 400", total)
	}
}

func TestForWorkersIndexedSerial(t *testing.T) {
	calls := 0
	ForWorkersIndexed(1, 10, func(worker, lo, hi int) {
		calls++
		if worker != 0 || lo != 0 || hi != 10 {
			t.Errorf("serial call = (%d, %d, %d)", worker, lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestForWorkersIndexedEmpty(t *testing.T) {
	ForWorkersIndexed(4, 0, func(int, int, int) { t.Error("body called for empty range") })
}

func TestForWorkersMoreWorkersThanItems(t *testing.T) {
	var visited int64
	ForWorkers(16, 3, func(lo, hi int) { atomic.AddInt64(&visited, int64(hi-lo)) })
	if visited != 3 {
		t.Errorf("visited %d of 3", visited)
	}
}
