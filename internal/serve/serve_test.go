package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

// buildVersioned makes a small RMAT graph for tests.
func buildVersioned(t testing.TB, scale int, symmetric bool, seed int64) *graph.Versioned {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(scale, 8, seed))
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	orientation := graph.KeepDirection
	if symmetric {
		orientation = graph.Symmetrize
	}
	b := graph.NewBuilder(uint32(1) << uint(scale))
	b.AddEdges(edges)
	csr, err := b.Build(graph.BuildOptions{
		Orientation:   orientation,
		Dedup:         true,
		DropSelfLoops: true,
		SortAdjacency: true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	v, err := graph.NewVersioned(csr, graph.DeltaOptions{Symmetrize: symmetric, DropSelfLoops: true})
	if err != nil {
		t.Fatalf("NewVersioned: %v", err)
	}
	return v
}

// newTestServer builds a server with a social (symmetrized) and web
// (directed) graph and mounts it on an httptest listener.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	if err := s.AddGraph("social", buildVersioned(t, 7, true, 42)); err != nil {
		t.Fatalf("AddGraph social: %v", err)
	}
	if err := s.AddGraph("web", buildVersioned(t, 7, false, 43)); err != nil {
		t.Fatalf("AddGraph web: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get fetches url and returns (status, X-Cache header, body).
func get(t testing.TB, url string, hdr map[string]string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

func TestEndpointsOnOneMux(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// The service mux must carry queries AND the obs diagnostics: one
	// listener, one port.
	for _, path := range []string{
		"/healthz", "/graphs", "/", "/metrics", "/metrics.json",
		"/debug/pprof/", "/query/cc?graph=social",
	} {
		code, _, body := get(t, ts.URL+path, nil)
		if code != http.StatusOK {
			t.Errorf("GET %s: status %d, body %s", path, code, body)
		}
	}
	code, _, body := get(t, ts.URL+"/metrics", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte("graphmaze_serve_requests_total")) {
		t.Errorf("/metrics missing serve counters: status %d body %.200s", code, body)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		path string
		want int
	}{
		{"/query/pagerank?graph=social", http.StatusOK},
		{"/query/pagerank", http.StatusBadRequest},          // no graph
		{"/query/pagerank?graph=nope", http.StatusNotFound}, // unknown graph
		{"/query/wat?graph=social", http.StatusBadRequest},  // unknown kind
		{"/query/pagerank?graph=social&iters=0", http.StatusBadRequest},
		{"/query/pagerank?graph=social&jump=1.5", http.StatusBadRequest},
		{"/query/pagerank?graph=social&iters=abc", http.StatusBadRequest},
		{"/query/bfs?graph=web&source=999999999", http.StatusBadRequest}, // out of range
		{"/query/tc?graph=web", http.StatusBadRequest},                   // directed graph
		{"/query/tc?graph=social", http.StatusOK},
		{"/query/datalog?graph=web&source=0", http.StatusOK},
	}
	for _, c := range cases {
		code, _, body := get(t, ts.URL+c.path, nil)
		if code != c.want {
			t.Errorf("GET %s: status %d, want %d (body %.200s)", c.path, code, c.want, body)
		}
	}
	// POST to a query endpoint is rejected.
	resp, err := http.Post(ts.URL+"/query/cc?graph=social", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /query/cc: status %d, want 405", resp.StatusCode)
	}
}

// queryPaths is the canonical query set the byte-identity tests cover:
// every kind, both graphs where legal.
func queryPaths() []string {
	return []string{
		"/query/pagerank?graph=social&iters=10&k=5",
		"/query/pagerank?graph=web&iters=10&k=5&tol=1e-7",
		"/query/bfs?graph=social&source=1",
		"/query/bfs?graph=web&source=1",
		"/query/cc?graph=social",
		"/query/cc?graph=web",
		"/query/tc?graph=social",
		"/query/datalog?graph=social&source=2",
		"/query/datalog?graph=web&source=2",
	}
}

// TestCacheByteIdentity is the core cache-correctness property: for every
// query kind, the cached body (hit), the first computation (miss), and a
// cache-bypassed recomputation are byte-identical — and the bytes agree
// across pool worker counts (1 and 4), because every kernel is pinned
// bit-identical regardless of parallelism.
func TestCacheByteIdentity(t *testing.T) {
	_, ts1 := newTestServer(t, Config{Workers: 1})
	_, ts4 := newTestServer(t, Config{Workers: 4})
	noCache := map[string]string{"Cache-Control": "no-cache"}
	for _, path := range queryPaths() {
		code, state, first := get(t, ts4.URL+path, nil)
		if code != http.StatusOK || state != "miss" {
			t.Fatalf("GET %s: status %d X-Cache %q, want 200 miss", path, code, state)
		}
		code, state, hit := get(t, ts4.URL+path, nil)
		if code != http.StatusOK || state != "hit" {
			t.Fatalf("GET %s (2nd): status %d X-Cache %q, want 200 hit", path, code, state)
		}
		code, state, bypass := get(t, ts4.URL+path, noCache)
		if code != http.StatusOK || state != "bypass" {
			t.Fatalf("GET %s (no-cache): status %d X-Cache %q, want 200 bypass", path, code, state)
		}
		if !bytes.Equal(first, hit) {
			t.Errorf("%s: cache hit differs from first computation\nmiss: %s\nhit:  %s", path, first, hit)
		}
		if !bytes.Equal(first, bypass) {
			t.Errorf("%s: bypassed recomputation differs from cached body\nmiss:   %s\nbypass: %s", path, first, bypass)
		}
		code, _, w1 := get(t, ts1.URL+path, nil)
		if code != http.StatusOK {
			t.Fatalf("GET %s (1 worker): status %d", path, code)
		}
		if !bytes.Equal(first, w1) {
			t.Errorf("%s: 4-worker body differs from 1-worker body\n4: %s\n1: %s", path, first, w1)
		}
	}
}

// TestEquivalentSpellingsShareCacheEntry checks fingerprint canonicalization:
// explicit defaults and implicit defaults are the same cache key.
func TestEquivalentSpellingsShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, state, _ := get(t, ts.URL+"/query/pagerank?graph=social", nil)
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("first spelling: status %d X-Cache %q", code, state)
	}
	code, state, _ = get(t, ts.URL+"/query/pagerank?graph=social&iters=20&jump=0.3&tol=0&k=10", nil)
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("explicit-defaults spelling: status %d X-Cache %q, want hit", code, state)
	}
}

func TestDeltaAdvancesEpochAndInvalidates(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	path := "/query/cc?graph=social"
	code, state, before := get(t, ts.URL+path, nil)
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("initial query: status %d X-Cache %q", code, state)
	}
	var meta queryMeta
	if err := json.Unmarshal(before, &meta); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if meta.Epoch != 0 {
		t.Fatalf("initial epoch = %d, want 0", meta.Epoch)
	}

	// Ingest a delta over HTTP.
	body := `{"graph":"social","edges":[[1,2],[5,9],[9,5]]}`
	resp, err := http.Post(ts.URL+"/delta", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /delta: %v", err)
	}
	var dr deltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatalf("decoding delta response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dr.Epoch != 1 {
		t.Fatalf("delta: status %d epoch %d, want 200 epoch 1", resp.StatusCode, dr.Epoch)
	}
	if v, _ := s.Graph("social"); v.Epoch() != 1 {
		t.Fatalf("server graph epoch = %d, want 1", v.Epoch())
	}

	// The same query now misses (the epoch moved the cache key) and
	// reports the new epoch.
	code, state, after := get(t, ts.URL+path, nil)
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("post-delta query: status %d X-Cache %q, want 200 miss", code, state)
	}
	if err := json.Unmarshal(after, &meta); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if meta.Epoch != 1 {
		t.Errorf("post-delta epoch = %d, want 1", meta.Epoch)
	}
	if bytes.Equal(before, after) {
		t.Errorf("post-delta body identical to pre-delta body (epoch should differ)")
	}
}

func TestGraphsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, _, body := get(t, ts.URL+"/graphs", nil)
	if code != http.StatusOK {
		t.Fatalf("/graphs: status %d", code)
	}
	var infos []graphInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("unmarshal /graphs: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "social" || infos[1].Name != "web" {
		t.Fatalf("graphs = %+v, want sorted [social web]", infos)
	}
	for _, gi := range infos {
		if gi.Vertices == 0 || gi.Edges == 0 {
			t.Errorf("graph %s: empty (%+v)", gi.Name, gi)
		}
		if gi.PersistedEpochs < 1 || gi.PersistedBytes <= 0 {
			t.Errorf("graph %s: epoch store not wired (%+v)", gi.Name, gi)
		}
	}
	if !infos[0].Symmetrized || infos[1].Symmetrized {
		t.Errorf("symmetrized flags wrong: %+v", infos)
	}
}

func TestAddGraphValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if err := s.AddGraph("", nil); err == nil {
		t.Error("AddGraph with empty name/nil graph should fail")
	}
	v := buildVersioned(t, 5, true, 1)
	if err := s.AddGraph("g", v); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	if err := s.AddGraph("g", v); err == nil {
		t.Error("duplicate AddGraph should fail")
	}
}

func TestTenantHeaderExtraction(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/query/cc?graph=g", nil)
	if got := tenantOf(r); got != "default" {
		t.Errorf("tenantOf = %q, want default", got)
	}
	r = httptest.NewRequest(http.MethodGet, "/query/cc?graph=g&tenant=bob", nil)
	if got := tenantOf(r); got != "bob" {
		t.Errorf("tenantOf = %q, want bob", got)
	}
	r.Header.Set("X-Tenant", "alice")
	if got := tenantOf(r); got != "alice" {
		t.Errorf("tenantOf = %q, want alice (header wins)", got)
	}
}

func TestIndexLists(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, _, body := get(t, ts.URL+"/", nil)
	if code != http.StatusOK {
		t.Fatalf("/: status %d", code)
	}
	for _, k := range queryKinds() {
		if !bytes.Contains(body, []byte(fmt.Sprintf("/query/%s", k))) {
			t.Errorf("index missing /query/%s:\n%s", k, body)
		}
	}
	code, _, _ = get(t, ts.URL+"/nope", nil)
	if code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}
}
