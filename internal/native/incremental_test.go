package native

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"graphmaze/internal/backend"
	"graphmaze/internal/graph"
)

// conformanceProcs are the worker counts every incremental kernel is
// pinned at: the refresh on epoch N+1 must match a full recompute on the
// same epoch regardless of parallelism.
var conformanceProcs = []int{1, 4}

// buildStream builds a versioned graph plus a fixed schedule of deltas
// from a seeded generator. Deltas mix edges inside the current vertex
// space with edges that grow it, so every epoch exercises both repair
// and vertex-space growth.
func buildStream(t *testing.T, n uint32, baseEdges, epochs, deltaEdges int, opts graph.DeltaOptions, seed int64) (*graph.Versioned, [][]graph.Edge) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, baseEdges)
	for i := 0; i < baseEdges; i++ {
		edges = append(edges, graph.Edge{Src: uint32(rng.Intn(int(n))), Dst: uint32(rng.Intn(int(n)))})
	}
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	bopt := graph.BuildOptions{Dedup: true, DropSelfLoops: true}
	if opts.Symmetrize {
		bopt.Orientation = graph.Symmetrize
	}
	base, err := b.Build(bopt)
	if err != nil {
		t.Fatal(err)
	}
	v, err := graph.NewVersioned(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([][]graph.Edge, epochs)
	top := n
	for e := range deltas {
		d := make([]graph.Edge, 0, deltaEdges)
		for i := 0; i < deltaEdges; i++ {
			if i%8 == 7 {
				// Grow: attach a brand-new vertex to a random old one.
				d = append(d, graph.Edge{Src: uint32(rng.Intn(int(top))), Dst: top})
				top++
				continue
			}
			d = append(d, graph.Edge{Src: uint32(rng.Intn(int(top))), Dst: uint32(rng.Intn(int(top)))})
		}
		deltas[e] = d
	}
	return v, deltas
}

func TestIncrementalPageRankConformance(t *testing.T) {
	for _, procs := range conformanceProcs {
		prev := runtime.GOMAXPROCS(procs)
		func() {
			defer runtime.GOMAXPROCS(prev)
			v, deltas := buildStream(t, 150, 900, 3, 64, graph.DeltaOptions{DropSelfLoops: true}, 7)
			opt := IncrementalPROptions{Tolerance: 1e-10}
			warm := NewIncrementalPageRank(opt)
			defer warm.Close()

			check := func(s *graph.Snapshot, warmSweeps int, ranks []float64) {
				cold := NewIncrementalPageRank(opt)
				defer cold.Close()
				ref, coldSweeps, err := cold.Update(s)
				if err != nil {
					t.Fatal(err)
				}
				// Both runs converge to the same unique fixpoint; the bound
				// is a small multiple of the tolerance (contraction margin).
				if d := maxAbsDiff(ranks, ref); d > 1e-7 {
					t.Fatalf("procs=%d epoch=%d warm/cold ranks diverge: %g", procs, s.Epoch(), d)
				}
				// The warm start should never be meaningfully worse than a
				// cold one; one sweep of wiggle covers a fixpoint the delta
				// moved roughly as far as the all-ones start sits from it.
				if warmSweeps > coldSweeps+1 {
					t.Fatalf("procs=%d epoch=%d warm start took more sweeps than cold (%d > %d)",
						procs, s.Epoch(), warmSweeps, coldSweeps)
				}
			}

			ranks, sweeps, err := warm.Update(v.Current())
			if err != nil {
				t.Fatal(err)
			}
			check(v.Current(), sweeps, ranks)
			for _, d := range deltas {
				snap, _, _, err := v.ApplyDelta(d)
				if err != nil {
					t.Fatal(err)
				}
				if ranks, sweeps, err = warm.Update(snap); err != nil {
					t.Fatal(err)
				}
				if warm.Epoch() != snap.Epoch() {
					t.Fatalf("kernel epoch %d, snapshot %d", warm.Epoch(), snap.Epoch())
				}
				check(snap, sweeps, ranks)
			}
		}()
	}
}

func TestIncrementalBFSConformance(t *testing.T) {
	for _, procs := range conformanceProcs {
		prev := runtime.GOMAXPROCS(procs)
		func() {
			defer runtime.GOMAXPROCS(prev)
			v, deltas := buildStream(t, 200, 1200, 4, 72,
				graph.DeltaOptions{Symmetrize: true, DropSelfLoops: true}, 11)
			const source = 0
			inc := NewIncrementalBFS(source)
			defer inc.Close()
			if _, err := inc.Update(v.Current(), nil); err != nil {
				t.Fatal(err)
			}
			for _, d := range deltas {
				snap, added, _, err := v.ApplyDelta(d)
				if err != nil {
					t.Fatal(err)
				}
				dist, err := inc.Update(snap, added)
				if err != nil {
					t.Fatal(err)
				}
				full := NewIncrementalBFS(source)
				ref, err := full.Update(snap, nil)
				if err != nil {
					t.Fatal(err)
				}
				full.Close()
				if len(dist) != len(ref) {
					t.Fatalf("procs=%d epoch=%d length %d vs %d", procs, snap.Epoch(), len(dist), len(ref))
				}
				for i := range dist {
					if dist[i] != ref[i] {
						t.Fatalf("procs=%d epoch=%d dist[%d]=%d, full recompute %d",
							procs, snap.Epoch(), i, dist[i], ref[i])
					}
				}
			}
		}()
	}
}

func TestIncrementalCCConformance(t *testing.T) {
	for _, procs := range conformanceProcs {
		prev := runtime.GOMAXPROCS(procs)
		func() {
			defer runtime.GOMAXPROCS(prev)
			// Sparse base: many components, so deltas actually merge some.
			v, deltas := buildStream(t, 300, 180, 4, 48,
				graph.DeltaOptions{Symmetrize: true, DropSelfLoops: true}, 13)
			inc := NewIncrementalCC()
			defer inc.Close()
			if _, err := inc.Update(v.Current(), nil); err != nil {
				t.Fatal(err)
			}
			pool := backend.NewPool(0)
			defer pool.Close()
			for _, d := range deltas {
				snap, added, _, err := v.ApplyDelta(d)
				if err != nil {
					t.Fatal(err)
				}
				labels, err := inc.Update(snap, added)
				if err != nil {
					t.Fatal(err)
				}
				ref := ConnectedComponents(pool, backend.FromSnapshot(snap))
				if len(labels) != len(ref) {
					t.Fatalf("procs=%d epoch=%d length %d vs %d", procs, snap.Epoch(), len(labels), len(ref))
				}
				for i := range labels {
					if labels[i] != ref[i] {
						t.Fatalf("procs=%d epoch=%d labels[%d]=%d, full recompute %d",
							procs, snap.Epoch(), i, labels[i], ref[i])
					}
				}
			}
		}()
	}
}

// TestIncrementalBFSDisconnectedThenBridged pins the repair on the case
// a random stream rarely hits squarely: a region unreachable for several
// epochs that one delta edge suddenly bridges.
func TestIncrementalBFSDisconnectedThenBridged(t *testing.T) {
	b := graph.NewBuilder(6)
	// Two components: {0,1,2} reachable from 0, {3,4,5} an island.
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5}})
	g, err := b.Build(graph.BuildOptions{Dedup: true, Orientation: graph.Symmetrize})
	if err != nil {
		t.Fatal(err)
	}
	v, err := graph.NewVersioned(g, graph.DeltaOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncrementalBFS(0)
	defer inc.Close()
	dist, err := inc.Update(v.Current(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist[3] != -1 || dist[5] != -1 {
		t.Fatalf("island must start unreachable: %v", dist)
	}
	// A delta entirely inside the unreached island seeds no repair at all
	// (the maxLevel = -1 path).
	snap, added, _, err := v.ApplyDelta([]graph.Edge{{Src: 3, Dst: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if dist, err = inc.Update(snap, added); err != nil {
		t.Fatal(err)
	}
	if dist[3] != -1 || dist[5] != -1 {
		t.Fatalf("island must stay unreachable before the bridge: %v", dist)
	}
	snap, added, _, err = v.ApplyDelta([]graph.Edge{{Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err = inc.Update(snap, added)
	if err != nil {
		t.Fatal(err)
	}
	// 5 is reached through the island edge 3–5 added above, not the chain.
	want := []int32{0, 1, 2, 3, 4, 4}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("after bridge, dist=%v want %v", dist, want)
		}
	}
}

// TestIncrementalKernelsRaceStress runs readers over Current() while a
// writer applies deltas and refreshes all three kernels — the epoch
// contract under -race: snapshots are immutable, kernels hold no
// snapshot, readers never block.
func TestIncrementalKernelsRaceStress(t *testing.T) {
	v, deltas := buildStream(t, 128, 512, 12, 32,
		graph.DeltaOptions{Symmetrize: true, DropSelfLoops: true}, 17)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := v.Current()
				g := s.CSR()
				var sum int64
				for u := uint32(0); u < g.NumVertices; u++ {
					sum += int64(len(g.Neighbors(u)))
				}
				if sum != g.NumEdges() {
					t.Errorf("reader saw torn snapshot: %d edges counted, %d recorded", sum, g.NumEdges())
					return
				}
			}
		}()
	}

	pr := NewIncrementalPageRank(IncrementalPROptions{Tolerance: 1e-8})
	bfs := NewIncrementalBFS(0)
	cc := NewIncrementalCC()
	defer pr.Close()
	defer bfs.Close()
	defer cc.Close()
	if _, _, err := pr.Update(v.Current()); err != nil {
		t.Fatal(err)
	}
	if _, err := bfs.Update(v.Current(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Update(v.Current(), nil); err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		snap, added, _, err := v.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := pr.Update(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := bfs.Update(snap, added); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Update(snap, added); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
