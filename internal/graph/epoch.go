package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"graphmaze/internal/par"
)

// Epoch numbers the immutable versions of a mutating graph. Epoch 0 is the
// base snapshot a Versioned graph was created from; every applied delta
// advances it by one.
type Epoch uint64

// Snapshot is one immutable epoch of a versioned graph: a CSR that will
// never be mutated again, tagged with the epoch that produced it. Readers
// hold a Snapshot for the duration of a computation and are completely
// isolated from later deltas — a snapshot's arrays are never shared with
// any other epoch's mutable state.
//
// Snapshots are cheap handles; engines must nonetheless not retain one
// inside long-lived state across epoch advances (the graphlint `snapshot`
// rule enforces this for engine packages): re-fetch via Versioned.Current
// at the top of every operation so staleness is a per-operation choice,
// not an accident.
type Snapshot struct {
	epoch Epoch
	csr   *CSR
}

// NewSnapshot wraps an already-prepared CSR as the given epoch. The CSR
// must not be mutated afterwards; ownership passes to the snapshot.
func NewSnapshot(epoch Epoch, csr *CSR) *Snapshot {
	return &Snapshot{epoch: epoch, csr: csr}
}

// Epoch reports which version of the graph this snapshot is.
func (s *Snapshot) Epoch() Epoch { return s.epoch }

// CSR returns the snapshot's immutable graph. Callers must not modify it.
func (s *Snapshot) CSR() *CSR { return s.csr }

// NumVertices reports the snapshot's vertex count.
func (s *Snapshot) NumVertices() uint32 { return s.csr.NumVertices }

// NumEdges reports the snapshot's directed edge count.
func (s *Snapshot) NumEdges() int64 { return s.csr.NumEdges() }

// DegreeStats recomputes the out-degree statistics of this epoch's graph.
// Statistics are deliberately not cached on the snapshot: a versioned
// graph's distribution changes with every delta, so recomputation is an
// explicit per-epoch act the caller pays for (and sees) rather than an
// implicit cache that silently serves a stale epoch.
func (s *Snapshot) DegreeStats() DegreeStats {
	return ComputeDegreeStats(s.csr.OutDegrees())
}

// DeltaOptions configures how a Versioned graph ingests raw delta edges,
// mirroring Builder's per-workload preparation: BFS-oriented graphs
// symmetrize every insertion, PageRank-oriented graphs keep direction.
type DeltaOptions struct {
	// Symmetrize inserts both (u,v) and (v,u) for every delta edge.
	Symmetrize bool
	// DropSelfLoops discards (v,v) delta edges.
	DropSelfLoops bool
}

// DeltaStats reports what one ApplyDelta call actually changed.
type DeltaStats struct {
	// Added counts directed edges newly present in the epoch (after
	// orientation, dedup against the delta itself, and dedup against the
	// base).
	Added int64
	// Duplicates counts delta edges dropped because they were already in
	// the base epoch or repeated within the delta (post-orientation).
	Duplicates int64
	// SelfLoops counts delta edges dropped by DropSelfLoops.
	SelfLoops int64
	// NewVertices counts vertices beyond the previous epoch's id space
	// that the delta introduced.
	NewVertices uint32
}

// Versioned is a graph that evolves as a sequence of immutable epoch
// snapshots. Readers call Current (a single atomic load, never blocked)
// and keep computing on that epoch while ApplyDelta merge-builds the next
// one into freshly allocated arrays; writers are serialized by an internal
// mutex. This is the snapshot-isolation design the streaming roadmap item
// calls for: epoch N's arrays are never touched once epoch N+1 exists.
type Versioned struct {
	opts DeltaOptions

	// mu serializes writers (ApplyDelta); readers never take it.
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]
}

// NewVersioned wraps a prepared base CSR as epoch 0 of a versioned graph.
// The CSR's adjacency lists must be sorted (Builder's Dedup or
// SortAdjacency options produce this) because delta merging is a sorted
// merge per vertex; ownership of the CSR passes to the versioned graph.
// Weighted graphs are not yet supported on the delta path.
func NewVersioned(base *CSR, opts DeltaOptions) (*Versioned, error) {
	if err := checkVersionedBase(base); err != nil {
		return nil, err
	}
	v := &Versioned{opts: opts}
	v.cur.Store(NewSnapshot(0, base))
	return v, nil
}

// ResumeVersioned re-creates a versioned graph whose current snapshot is s
// — typically one decoded from persistence (graph.DecodeSnapshot or
// ckpt.EpochStore) — preserving its epoch number so later deltas continue
// the original sequence instead of restarting at zero. The snapshot's CSR
// must satisfy the same contract as NewVersioned's base; ownership passes
// to the versioned graph.
func ResumeVersioned(s *Snapshot, opts DeltaOptions) (*Versioned, error) {
	if s == nil {
		return nil, errors.New("graph: resuming a versioned graph needs a snapshot")
	}
	if err := checkVersionedBase(s.csr); err != nil {
		return nil, err
	}
	v := &Versioned{opts: opts}
	v.cur.Store(s)
	return v, nil
}

// checkVersionedBase validates the delta-path contract for a CSR entering
// a versioned graph (at epoch 0 or on resume).
func checkVersionedBase(base *CSR) error {
	if base == nil {
		return errors.New("graph: versioned graph needs a base CSR")
	}
	if base.Weighted() {
		return errors.New("graph: versioned graphs do not support weighted CSRs yet")
	}
	if base.targetSpace != base.NumVertices {
		return errors.New("graph: versioned graphs must be square (no bipartite orientations)")
	}
	if !base.SortedAdjacency() {
		return errors.New("graph: versioned base CSR must have sorted adjacency (build with Dedup or SortAdjacency)")
	}
	return nil
}

// Current returns the latest snapshot: one atomic load, safe to call
// concurrently with ApplyDelta, and never blocked by an in-progress build.
func (v *Versioned) Current() *Snapshot { return v.cur.Load() }

// Epoch reports the latest epoch number.
func (v *Versioned) Epoch() Epoch { return v.cur.Load().epoch }

// Options reports the graph's delta-ingestion options (how raw delta
// edges are oriented), letting a service decide per-graph which queries
// make sense — triangle counting, for example, needs the symmetrized
// orientation.
func (v *Versioned) Options() DeltaOptions { return v.opts }

// ApplyDelta ingests a batch of raw edge insertions and publishes the next
// epoch. The delta is copied (the caller's slice is untouched), oriented
// per the graph's DeltaOptions, dedup-sorted with the same parallel radix
// machinery graph builds use, deduplicated against the base epoch, and
// merge-built into a brand-new CSR — the previous epoch's arrays are
// never written, so concurrent readers of any earlier snapshot are
// unaffected. Vertex ids beyond the current space grow the graph.
//
// It returns the new snapshot, the cleaned directed edges that were
// actually added (the "touched" set incremental kernels repair from; the
// slice is freshly allocated and owned by the caller), and ingestion
// statistics. An empty or fully-duplicate delta still advances the epoch,
// so epoch numbers always count ApplyDelta calls.
func (v *Versioned) ApplyDelta(delta []Edge) (*Snapshot, []Edge, DeltaStats, error) {
	v.mu.Lock()
	defer v.mu.Unlock()

	base := v.cur.Load()
	g := base.csr
	var st DeltaStats

	// Orient the delta into a private buffer.
	buf := make([]Edge, 0, len(delta)*2)
	for _, e := range delta {
		if e.Src == e.Dst {
			if v.opts.DropSelfLoops {
				st.SelfLoops++
				continue
			}
			buf = append(buf, e)
			continue
		}
		buf = append(buf, e)
		if v.opts.Symmetrize {
			buf = append(buf, Edge{Src: e.Dst, Dst: e.Src})
		}
	}

	// Grow the vertex space to cover the delta.
	n := g.NumVertices
	for _, e := range buf {
		if e.Src >= n {
			n = e.Src + 1
		}
		if e.Dst >= n {
			n = e.Dst + 1
		}
	}
	st.NewVertices = n - g.NumVertices

	// Dedup-sort the delta (radix path for large batches), then drop edges
	// already present in the base epoch. Base adjacency is sorted, so the
	// membership probe is a binary search.
	sortEdgesByKey(buf)
	w := 0
	for i, e := range buf {
		if i > 0 && e == buf[i-1] {
			st.Duplicates++
			continue
		}
		if e.Src < g.NumVertices && g.HasEdge(e.Src, e.Dst) {
			st.Duplicates++
			continue
		}
		buf[w] = e
		w++
	}
	added := buf[:w]
	st.Added = int64(len(added))

	merged := mergeCSR(g, n, added)
	next := NewSnapshot(base.epoch+1, merged)
	v.cur.Store(next)
	return next, added, st, nil
}

// mergeCSR builds a new CSR over n vertices holding the union of the base
// graph's edges and the added edges, which must be sorted by (Src, Dst),
// contain no duplicates, and not overlap the base. Both inputs have sorted
// adjacency, so each vertex's output list is a linear merge and the result
// keeps sorted adjacency. All arrays are freshly allocated; the base is
// only read.
func mergeCSR(g *CSR, n uint32, added []Edge) *CSR {
	// Per-vertex delta segment boundaries: added is sorted by Src, so the
	// segment for vertex v is a contiguous run.
	deltaOff := make([]int64, n+1)
	for _, e := range added {
		deltaOff[e.Src+1]++
	}
	for i := 1; i < len(deltaOff); i++ {
		deltaOff[i] += deltaOff[i-1]
	}

	offsets := make([]int64, n+1)
	for v := uint32(0); v < n; v++ {
		var deg int64
		if v < g.NumVertices {
			deg = g.Degree(v)
		}
		offsets[v+1] = deg + (deltaOff[v+1] - deltaOff[v])
	}
	for i := 1; i < len(offsets); i++ {
		offsets[i] += offsets[i-1]
	}

	targets := make([]uint32, offsets[n])
	// Scatter in parallel: each vertex owns a disjoint output range, so
	// the merge pass needs no synchronization. Vertex ranges are split by
	// output edges to keep power-law skew off the critical path.
	par.ForOffsets(offsets, func(lo, hi int) {
		for v := uint32(lo); v < uint32(hi); v++ {
			out := targets[offsets[v]:offsets[v+1]]
			var baseAdj []uint32
			if v < g.NumVertices {
				baseAdj = g.Neighbors(v)
			}
			add := added[deltaOff[v]:deltaOff[v+1]]
			i, j, k := 0, 0, 0
			for i < len(baseAdj) && j < len(add) {
				if baseAdj[i] <= add[j].Dst {
					out[k] = baseAdj[i]
					i++
				} else {
					out[k] = add[j].Dst
					j++
				}
				k++
			}
			for ; i < len(baseAdj); i++ {
				out[k] = baseAdj[i]
				k++
			}
			for ; j < len(add); j++ {
				out[k] = add[j].Dst
				k++
			}
		}
	})
	return &CSR{NumVertices: n, Offsets: offsets, Targets: targets, targetSpace: n, sortedAdj: true}
}

// Validate checks the current snapshot's structural invariants (tests and
// tooling; epochs are immutable so validation never races a build).
func (v *Versioned) Validate() error {
	s := v.Current()
	if err := s.csr.Validate(); err != nil {
		return fmt.Errorf("epoch %d: %w", s.epoch, err)
	}
	return nil
}
