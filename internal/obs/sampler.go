package obs

import (
	"runtime"
	"time"
)

// Sampler periodically snapshots Go runtime statistics into a registry:
// heap gauges, goroutine count, GC cycle count, and every new GC pause
// fed into the runtime.gc_pause_ns histogram. One sample costs one
// runtime.ReadMemStats (a brief stop-the-world), so the default interval
// is coarse; the workloads here run for seconds, not microseconds.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	// lastNumGC tracks how far into the MemStats.PauseNs ring we have
	// consumed, so each pause is recorded exactly once.
	lastNumGC uint32
}

// DefaultSampleInterval is the sampler cadence when the caller does not
// choose one.
const DefaultSampleInterval = 250 * time.Millisecond

// StartSampler begins sampling reg every interval (DefaultSampleInterval
// if interval <= 0) and returns the running sampler. One sample is taken
// immediately so short runs still export runtime state. Returns nil on a
// nil registry.
func StartSampler(reg *Registry, interval time.Duration) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sampleOnce()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sampleOnce()
		}
	}
}

// sampleOnce reads the runtime stats and publishes them.
func (s *Sampler) sampleOnce() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.reg.Gauge("runtime.heap_alloc_bytes").Set(float64(m.HeapAlloc))
	s.reg.Gauge("runtime.heap_sys_bytes").Set(float64(m.HeapSys))
	s.reg.Gauge("runtime.heap_objects").Set(float64(m.HeapObjects))
	s.reg.Gauge("runtime.next_gc_bytes").Set(float64(m.NextGC))
	s.reg.Gauge("runtime.gc_cycles").Set(float64(m.NumGC))
	s.reg.Gauge("runtime.gc_cpu_fraction").Set(m.GCCPUFraction)
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))

	// Feed pauses newer than the last sample into the pause histogram.
	// PauseNs is a 256-entry circular buffer indexed by (NumGC+255)%256
	// for the most recent pause; if more than 256 GCs happened between
	// samples the overwritten ones are simply lost.
	if n := m.NumGC; n > s.lastNumGC {
		h := s.reg.Hist("runtime.gc_pause_ns")
		first := s.lastNumGC
		if n-first > 256 {
			first = n - 256
		}
		for i := first; i < n; i++ {
			h.Record(0, int64(m.PauseNs[(i+255)%256]))
		}
		s.lastNumGC = n
	}
}

// Stop halts the sampler after taking one final sample, and waits for the
// loop to exit. Safe on a nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.sampleOnce()
}
