package graph

import (
	"fmt"

	"graphmaze/internal/codec"
)

// Snapshot persistence (DESIGN.md §14). An epoch is encoded with the
// checkpoint subsystem's record framing: one uvarint-version header
// followed by the CSR's typed arrays in little-endian sections. Decoding
// is hardened the same way checkpoint restores are — every length is
// validated before allocation, and the rebuilt CSR is re-validated, so a
// corrupt epoch surfaces as an error, never a panic. Weights are not
// framed because versioned graphs are unweighted by construction.

// snapshotCodecVersion guards the layout; bump on any framing change.
const snapshotCodecVersion = 1

// EncodeSnapshot appends the snapshot's framed representation to dst and
// returns the extended slice. The encoding is deterministic: the same
// epoch always produces the same bytes.
func EncodeSnapshot(dst []byte, s *Snapshot) ([]byte, error) {
	g := s.csr
	if g.Weights != nil {
		return nil, fmt.Errorf("graph: weighted snapshots are not encodable")
	}
	dst = codec.AppendUvarint(dst, snapshotCodecVersion)
	dst = codec.AppendUint64(dst, uint64(s.epoch))
	dst = codec.AppendUint32(dst, g.NumVertices)
	dst = codec.AppendUint32(dst, g.targetSpace)
	var flags uint64
	if g.sortedAdj {
		flags |= 1
	}
	dst = codec.AppendUvarint(dst, flags)
	dst = codec.AppendInt64s(dst, g.Offsets)
	dst = codec.AppendUint32s(dst, g.Targets)
	return dst, nil
}

// DecodeSnapshot rebuilds a snapshot encoded by EncodeSnapshot and
// returns it with the bytes following the frame. The rebuilt CSR owns
// fresh arrays (a restored epoch is as immutable as a live one) and is
// fully validated before being returned.
func DecodeSnapshot(data []byte) (*Snapshot, []byte, error) {
	version, data, err := codec.Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if version != snapshotCodecVersion {
		return nil, nil, fmt.Errorf("graph: snapshot codec version %d, want %d", version, snapshotCodecVersion)
	}
	epoch, data, err := codec.Uint64(data)
	if err != nil {
		return nil, nil, err
	}
	numVertices, data, err := codec.Uint32(data)
	if err != nil {
		return nil, nil, err
	}
	targetSpace, data, err := codec.Uint32(data)
	if err != nil {
		return nil, nil, err
	}
	flags, data, err := codec.Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	offsets, data, err := codec.Int64s(data)
	if err != nil {
		return nil, nil, err
	}
	targets, rest, err := codec.Uint32s(data)
	if err != nil {
		return nil, nil, err
	}
	g := &CSR{
		NumVertices: numVertices,
		Offsets:     offsets,
		Targets:     targets,
		targetSpace: targetSpace,
		sortedAdj:   flags&1 != 0,
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: decoded snapshot invalid: %w", err)
	}
	return NewSnapshot(Epoch(epoch), g), rest, nil
}
