// Package codec implements the message-compression schemes the paper's
// native code uses for inter-node traffic (§6.1.1, "Data Compression"):
// delta coding with variable-length integers for sparse sorted id lists,
// and bit-vector coding for dense ones. BFS and PageRank boundary traffic
// compresses 2–3× with these, which is where the paper's 2.2–3.2× network
// wins come from.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Scheme identifies a wire encoding.
type Scheme byte

const (
	// Raw stores 4-byte little-endian ids.
	Raw Scheme = iota
	// DeltaVarint stores sorted ids as varint-coded gaps.
	DeltaVarint
	// Bitvector stores a dense bitmap over the id universe.
	Bitvector
)

func (s Scheme) String() string {
	switch s {
	case Raw:
		return "raw"
	case DeltaVarint:
		return "delta+varint"
	case Bitvector:
		return "bitvector"
	default:
		return fmt.Sprintf("scheme(%d)", byte(s))
	}
}

// EncodeIDs encodes a sorted id list with the given scheme. universe is the
// exclusive upper bound on ids (needed by Bitvector). The ids must be
// strictly increasing for DeltaVarint and Bitvector.
func EncodeIDs(scheme Scheme, ids []uint32, universe uint32) ([]byte, error) {
	switch scheme {
	case Raw:
		out := make([]byte, 1+4*len(ids))
		out[0] = byte(Raw)
		for i, id := range ids {
			binary.LittleEndian.PutUint32(out[1+4*i:], id)
		}
		return out, nil
	case DeltaVarint:
		out := make([]byte, 1, 1+len(ids)*2)
		out[0] = byte(DeltaVarint)
		var buf [binary.MaxVarintLen32]byte
		prev := uint32(0)
		for i, id := range ids {
			if i > 0 && id <= prev {
				return nil, fmt.Errorf("codec: ids not strictly increasing at %d (%d after %d)", i, id, prev)
			}
			delta := id - prev
			if i == 0 {
				delta = id // first value coded absolutely
			}
			n := binary.PutUvarint(buf[:], uint64(delta))
			out = append(out, buf[:n]...)
			prev = id
		}
		return out, nil
	case Bitvector:
		words := (int(universe) + 63) / 64
		out := make([]byte, 1+4+8*words)
		out[0] = byte(Bitvector)
		binary.LittleEndian.PutUint32(out[1:], universe)
		prev := uint32(0)
		for i, id := range ids {
			if id >= universe {
				return nil, fmt.Errorf("codec: id %d outside universe %d", id, universe)
			}
			if i > 0 && id <= prev {
				return nil, fmt.Errorf("codec: ids not strictly increasing at %d", i)
			}
			word := binary.LittleEndian.Uint64(out[5+8*(id>>6):])
			word |= 1 << (id & 63)
			binary.LittleEndian.PutUint64(out[5+8*(id>>6):], word)
			prev = id
		}
		return out, nil
	default:
		return nil, fmt.Errorf("codec: unknown scheme %d", scheme)
	}
}

// DecodeIDs decodes a payload produced by EncodeIDs (any scheme; the
// scheme byte is read from the payload).
func DecodeIDs(data []byte) ([]uint32, error) {
	if len(data) == 0 {
		return nil, errors.New("codec: empty payload")
	}
	switch Scheme(data[0]) {
	case Raw:
		body := data[1:]
		if len(body)%4 != 0 {
			return nil, fmt.Errorf("codec: raw payload length %d not a multiple of 4", len(body))
		}
		ids := make([]uint32, len(body)/4)
		for i := range ids {
			ids[i] = binary.LittleEndian.Uint32(body[4*i:])
		}
		return ids, nil
	case DeltaVarint:
		body := data[1:]
		var ids []uint32
		cur := uint64(0)
		first := true
		for len(body) > 0 {
			v, n := binary.Uvarint(body)
			if n <= 0 {
				return nil, errors.New("codec: truncated varint")
			}
			body = body[n:]
			if first {
				cur = v
				first = false
			} else {
				cur += v
			}
			if cur > 0xFFFFFFFF {
				return nil, errors.New("codec: decoded id overflows uint32")
			}
			ids = append(ids, uint32(cur))
		}
		return ids, nil
	case Bitvector:
		if len(data) < 5 {
			return nil, errors.New("codec: truncated bitvector header")
		}
		universe := binary.LittleEndian.Uint32(data[1:])
		words := (int(universe) + 63) / 64
		if len(data) != 5+8*words {
			return nil, fmt.Errorf("codec: bitvector payload %d bytes, want %d", len(data), 5+8*words)
		}
		var ids []uint32
		for wi := 0; wi < words; wi++ {
			w := binary.LittleEndian.Uint64(data[5+8*wi:])
			for w != 0 {
				b := bits.TrailingZeros64(w)
				ids = append(ids, uint32(wi*64+b))
				w &= w - 1
			}
		}
		return ids, nil
	default:
		return nil, fmt.Errorf("codec: unknown scheme %d", data[0])
	}
}

// ChooseScheme picks the smaller of delta and bitvector coding for a
// sorted id list over the given universe — dense frontiers (BFS middle
// iterations) go as bitmaps, sparse ones as deltas.
func ChooseScheme(numIDs int, universe uint32) Scheme {
	if numIDs == 0 {
		return DeltaVarint
	}
	bitvecBytes := 5 + 8*((int64(universe)+63)/64)
	// Average gap determines expected varint width.
	gap := int64(universe) / int64(numIDs)
	varintWidth := int64(1)
	for g := gap; g >= 128; g >>= 7 {
		varintWidth++
	}
	deltaBytes := 1 + varintWidth*int64(numIDs)
	if bitvecBytes < deltaBytes {
		return Bitvector
	}
	return DeltaVarint
}

// EncodeIDsAuto encodes with ChooseScheme's pick.
func EncodeIDsAuto(ids []uint32, universe uint32) ([]byte, error) {
	return EncodeIDs(ChooseScheme(len(ids), universe), ids, universe)
}
