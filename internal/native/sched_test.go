package native

import (
	"sync/atomic"
	"testing"

	"graphmaze/internal/bitvec"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
)

// The scheduling-layer conversion must not change results at all: the
// dynamic and edge-balanced loops only move chunk boundaries, never the
// per-vertex arithmetic. These tests pin bit-identical agreement between
// the shipped kernels and the pre-conversion static-chunk versions, which
// are preserved below as references (and reused by the skewed benchmarks
// as the baseline side).

// triangleLocalStatic is the pre-scheduling-layer triangle kernel: one
// equal-vertex-count chunk per worker, counts merged through a single
// shared atomic.
func triangleLocalStatic(e *Engine, g *graph.CSR) int64 {
	var total int64
	n := int(g.NumVertices)
	par.For(n, func(lo, hi int) {
		var local int64
		var bv *bitvec.Vector
		var bvOwner []uint32
		for v := lo; v < hi; v++ {
			adjV := g.Neighbors(uint32(v))
			if len(adjV) == 0 {
				continue
			}
			useBV := e.tuning.Bitvector && len(adjV) >= bitvecDegreeThreshold
			if useBV {
				if bv == nil {
					bv = bitvec.New(g.NumVertices)
				}
				for _, t := range adjV {
					bv.Set(t)
				}
				bvOwner = adjV
			}
			for _, u := range adjV {
				adjU := g.Neighbors(u)
				if useBV {
					for _, t := range adjU {
						if bv.Get(t) {
							local++
						}
					}
				} else {
					local += int64(intersectSortedCount(adjV, adjU))
				}
			}
			if useBV {
				for _, t := range bvOwner {
					bv.Clear(t)
				}
			}
		}
		atomic.AddInt64(&total, local)
	})
	return atomic.LoadInt64(&total)
}

// pageRankLocalStatic is the pre-scheduling-layer PageRank kernel:
// equal-vertex gather chunks and a serial maxAbsDiff.
func pageRankLocalStatic(e *Engine, g *graph.CSR, opt core.PageRankOptions) ([]float64, int) {
	in := g.Transpose()
	outDeg := g.OutDegrees()
	n := int(g.NumVertices)
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	var contrib []float64
	if e.tuning.ContribCaching {
		contrib = make([]float64, n)
	}
	maxAbsDiffSerial := func(a, b []float64) float64 {
		worst := 0.0
		for i := range a {
			d := a[i] - b[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	iters := 0
	for it := 0; it < opt.Iterations; it++ {
		iters++
		if e.tuning.ContribCaching {
			par.For(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					if outDeg[v] > 0 {
						contrib[v] = (1 - opt.RandomJump) * pr[v] / float64(outDeg[v])
					} else {
						contrib[v] = 0
					}
				}
			})
			par.For(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					sum := 0.0
					for _, j := range in.Neighbors(uint32(v)) {
						sum += contrib[j]
					}
					next[v] = opt.RandomJump + sum
				}
			})
		} else {
			par.For(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					sum := 0.0
					for _, j := range in.Neighbors(uint32(v)) {
						sum += (1 - opt.RandomJump) * pr[j] / float64(outDeg[j])
					}
					next[v] = opt.RandomJump + sum
				}
			})
		}
		pr, next = next, pr
		if opt.Tolerance > 0 && maxAbsDiffSerial(pr, next) <= opt.Tolerance {
			break
		}
	}
	return pr, iters
}

func TestTriangleDynamicMatchesStatic(t *testing.T) {
	g := testGraphAcyclic(t)
	for _, bitv := range []bool{true, false} {
		tn := DefaultTuning()
		tn.Bitvector = bitv
		e := NewTuned(tn)
		want := triangleLocalStatic(e, g)
		got := e.triangleLocal(g)
		if got != want {
			t.Errorf("bitvector=%v: dynamic count %d != static count %d", bitv, got, want)
		}
	}
}

func TestPageRankEdgeBalancedMatchesStatic(t *testing.T) {
	g := testGraphDirected(t)
	for _, caching := range []bool{true, false} {
		tn := DefaultTuning()
		tn.ContribCaching = caching
		e := NewTuned(tn)
		// Tolerance > 0 exercises the parallel maxAbsDiff reduction's
		// early-convergence path too.
		opt := core.PageRankOptions{Iterations: 30, RandomJump: 0.15, Tolerance: 1e-9}
		wantRanks, wantIters := pageRankLocalStatic(e, g, opt)
		gotRanks, gotIters := e.pageRankLocal(g, opt)
		if gotIters != wantIters {
			t.Errorf("caching=%v: %d iterations, static ran %d", caching, gotIters, wantIters)
		}
		for v := range wantRanks {
			// Bit-identical: chunk boundaries moved, per-vertex sums did not.
			if gotRanks[v] != wantRanks[v] {
				t.Fatalf("caching=%v: rank[%d] = %v, static %v", caching, v, gotRanks[v], wantRanks[v])
			}
		}
	}
}

// TestBFSDynamicMatchesArrayReference forces the parallel top-down /
// bottom-up machinery (it engages above 2^19 edges) and checks every
// distance against the simple array-probing baseline.
func TestBFSDynamicMatchesArrayReference(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph BFS conformance is not a -short test")
	}
	edges, err := gen.RMAT(gen.Graph500Config(15, 16, 21))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 15)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 1<<19 {
		t.Fatalf("test graph too small to engage the parallel BFS path: %d edges", g.NumEdges())
	}
	e := New()
	dist, _ := e.bfsLocal(g, 1, nil)
	refDist := make([]int32, g.NumVertices)
	for i := range refDist {
		refDist[i] = -1
	}
	refDist[1] = 0
	refDist, _ = bfsTopDownArray(g, refDist, 1)
	for v := range refDist {
		if dist[v] != refDist[v] {
			t.Fatalf("dist[%d] = %d, reference %d", v, dist[v], refDist[v])
		}
	}
}
