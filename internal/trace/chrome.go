package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Only the fields the viewers require
// are emitted: ph, ts, pid, tid, plus name/cat/dur/args.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	DurUS *float64       `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded spans and final counter values as
// Chrome trace-event JSON: metadata names each track, every span becomes a
// complete ("X") event with microsecond timestamps, and each counter
// becomes one "C" sample at the end of the timeline. Events are sorted by
// timestamp, so the output is monotonic. Open the file at
// https://ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a disabled (nil) tracer")
	}
	events := t.Events()
	procs := t.processNames()

	var out chromeTrace
	out.DisplayTimeUnit = "ms"

	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": procs[pid]},
		})
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].StartNS != events[j].StartNS {
			return events[i].StartNS < events[j].StartNS
		}
		if events[i].Pid != events[j].Pid {
			return events[i].Pid < events[j].Pid
		}
		return events[i].Tid < events[j].Tid
	})
	var lastUS float64
	for _, ev := range events {
		dur := float64(ev.DurNS) / 1e3
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: "X",
			TsUS: float64(ev.StartNS) / 1e3,
			Pid:  ev.Pid, Tid: ev.Tid, DurUS: &dur,
		}
		if len(ev.Args) > 0 {
			args := make(map[string]any, len(ev.Args))
			for k, v := range ev.Args {
				args[k] = v
			}
			ce.Args = args
		}
		if end := ce.TsUS + dur; end > lastUS {
			lastUS = end
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	t.mu.Lock()
	names := append([]string(nil), t.order...)
	counters := make(map[string]*Counter, len(names))
	for _, n := range names {
		counters[n] = t.counters[n]
	}
	t.mu.Unlock()
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: n, Ph: "C", TsUS: lastUS, Pid: PidHost,
			Args: map[string]any{"value": counters[n].Value()},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChromeTraceFile exports the trace to path (see WriteChromeTrace).
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
