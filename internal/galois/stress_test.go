package galois

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// These tests exist to run under `go test -race`: they hammer the worklist
// and scheduler from many goroutines and then verify exactly-once
// processing, so both the race detector and the counters can catch
// synchronization bugs. testing.Short() scales the sizes down so the -short
// race pass stays fast without skipping the scenario.

// TestForEachStressDynamicPush drives ForEach with contended dynamic work
// creation: every initial item pushes a second-generation item, so workers
// are simultaneously draining, pushing, and stealing chunks. Every item of
// both generations must be processed exactly once.
func TestForEachStressDynamicPush(t *testing.T) {
	n := 1 << 16
	if testing.Short() {
		n = 1 << 13
	}
	initial := make([]int, n)
	for i := range initial {
		initial[i] = i
	}
	counts := make([]int64, 2*n)
	ForEach(initial, func(item int, ctx *Ctx[int]) {
		atomic.AddInt64(&counts[item], 1)
		if item < n {
			ctx.Push(item + n)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d processed %d times, want exactly once", i, c)
		}
	}
}

// TestWorklistConcurrentPushSteal runs producers calling Push/PushChunk
// against consumers stealing chunks via pop, all concurrently, and checks
// that every pushed item is stolen exactly once (by summing item values).
func TestWorklistConcurrentPushSteal(t *testing.T) {
	producers := 8
	perProducer := 1 << 14
	if testing.Short() {
		perProducer = 1 << 11
	}
	total := int64(producers * perProducer)
	wl := &Worklist[int64]{}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := int64(p * perProducer)
			// Alternate single pushes and chunk pushes to contend both paths.
			for i := 0; i < perProducer; {
				if i%2 == 0 {
					wl.Push(base + int64(i))
					i++
				} else {
					hi := i + 7
					if hi > perProducer {
						hi = perProducer
					}
					chunk := make([]int64, 0, hi-i)
					for ; i < hi; i++ {
						chunk = append(chunk, base+int64(i))
					}
					wl.PushChunk(chunk)
				}
			}
		}(p)
	}

	var stolen, sum int64
	consumers := runtime.GOMAXPROCS(0)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.LoadInt64(&stolen) < total {
				chunk, ok := wl.pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				var local int64
				for _, v := range chunk {
					local += v
				}
				atomic.AddInt64(&sum, local)
				atomic.AddInt64(&stolen, int64(len(chunk)))
			}
		}()
	}
	wg.Wait()

	want := total * (total - 1) / 2 // sum of 0..total-1
	if sum != want {
		t.Fatalf("stolen item sum = %d, want %d (items lost or duplicated)", sum, want)
	}
	if !wl.Empty() || wl.Len() != 0 {
		t.Fatalf("worklist not drained: Len=%d", wl.Len())
	}
}
