package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"graphmaze/internal/obs"
)

// ErrOverloaded is returned by Acquire when both the in-flight cap and
// the admission queue are full: the request is shed, and the handler maps
// it to 429.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// AdmissionConfig sizes the admission controller.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently admitted requests.
	MaxInFlight int
	// QueueDepth bounds queued (admitted-later) requests across tenants.
	QueueDepth int
	// Weights maps tenant names to fair-share weights (>0); unlisted
	// tenants get 1.
	Weights map[string]float64
	// Registry receives serve.inflight / serve.queued gauges, the
	// serve.queue_wait_ns histogram, and the serve.shed counter.
	Registry *obs.Registry
}

// Admission is the service's bounded-queue admission controller with
// per-tenant weighted fair scheduling. It implements start-time fair
// queuing: each tenant's requests carry virtual start tags spaced by
// 1/weight within the tenant, frozen at arrival, and the dispatcher
// always releases the queued request with the smallest tag. A tenant flooding the queue only advances its own
// virtual time, so a light tenant's next request keeps a small tag and
// overtakes the flood — weighted max-min fairness without priorities or
// preemption.
type Admission struct {
	mu       sync.Mutex
	max      int
	depth    int
	weights  map[string]float64
	inflight int
	queued   int
	vnow     float64
	tenants  map[string]*tenantQueue

	shed     atomic.Int64
	admitted atomic.Int64

	inflightG *obs.Gauge
	queuedG   *obs.Gauge
	waitH     *obs.Histogram
	lane      atomic.Int64
}

// tenantQueue is one tenant's FIFO of waiters plus its virtual-time state.
type tenantQueue struct {
	name   string
	weight float64
	// finish is the virtual finish tag of the tenant's most recently
	// charged request (admitted or enqueued); the next request starts at
	// max(vnow, finish).
	finish float64
	q      []*waiter
}

// waiter is one queued request. granted/cancelled transitions happen
// under Admission.mu; ready is closed exactly once, on grant.
type waiter struct {
	ready chan struct{}
	// tag is the request's virtual start tag, frozen at enqueue time —
	// freezing is what makes the schedule fair: a tenant that floods the
	// queue pushes its own later tags out, while an idle tenant's next
	// request starts back at the current virtual time and overtakes.
	tag       float64
	granted   bool
	cancelled bool
}

// NewAdmission builds the controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	a := &Admission{
		max:     cfg.MaxInFlight,
		depth:   cfg.QueueDepth,
		weights: cfg.Weights,
		tenants: make(map[string]*tenantQueue),
	}
	a.inflightG = cfg.Registry.Gauge("serve.inflight")
	a.queuedG = cfg.Registry.Gauge("serve.queued")
	a.waitH = cfg.Registry.Hist("serve.queue_wait_ns")
	cfg.Registry.CounterFunc("serve.shed", a.shed.Load)
	cfg.Registry.CounterFunc("serve.admitted", a.admitted.Load)
	return a
}

// Shed reports how many requests have been load-shed.
func (a *Admission) Shed() int64 { return a.shed.Load() }

// Admitted reports how many requests have been admitted.
func (a *Admission) Admitted() int64 { return a.admitted.Load() }

func (a *Admission) tenant(name string) *tenantQueue {
	t := a.tenants[name]
	if t == nil {
		w := 1.0
		if a.weights != nil && a.weights[name] > 0 {
			w = a.weights[name]
		}
		t = &tenantQueue{name: name, weight: w}
		a.tenants[name] = t
	}
	return t
}

// chargeLocked assigns the next virtual start tag for tenant t and
// advances t's finish by one weighted share. The caller holds a.mu.
func (a *Admission) chargeLocked(t *tenantQueue) float64 {
	tag := t.finish
	if a.vnow > tag {
		tag = a.vnow
	}
	t.finish = tag + 1/t.weight
	return tag
}

// admitLocked takes an in-flight slot at virtual time tag while the
// caller holds a.mu.
func (a *Admission) admitLocked(tag float64) {
	if tag > a.vnow {
		a.vnow = tag
	}
	a.inflight++
	a.admitted.Add(1)
	a.inflightG.Set(float64(a.inflight))
}

// dispatchLocked releases queued waiters while slots are free, smallest
// frozen start tag first (ties broken by tenant name, so the order is
// deterministic). Per-tenant queues are FIFO with ascending tags, so
// only heads compete. The caller holds a.mu.
func (a *Admission) dispatchLocked() {
	for a.inflight < a.max {
		var best *tenantQueue
		var bestTag float64
		for _, t := range a.tenants {
			// Drop cancelled heads lazily; their queued count was already
			// returned when the waiter cancelled.
			for len(t.q) > 0 && t.q[0].cancelled {
				t.q = t.q[1:]
			}
			if len(t.q) == 0 {
				continue
			}
			tag := t.q[0].tag
			if best == nil || tag < bestTag || (tag == bestTag && t.name < best.name) {
				best, bestTag = t, tag
			}
		}
		if best == nil {
			return
		}
		w := best.q[0]
		best.q = best.q[1:]
		a.queued--
		a.queuedG.Set(float64(a.queued))
		a.admitLocked(w.tag)
		w.granted = true
		close(w.ready)
	}
}

// Acquire admits the request, queuing it under the tenant's fair share if
// the service is saturated. It returns ErrOverloaded when the queue is
// full (shed now, retry later) and the context's error if the caller gave
// up while queued. On success the caller must Release exactly once.
func (a *Admission) Acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	t := a.tenant(tenant)
	if a.inflight < a.max && a.queued == 0 {
		a.admitLocked(a.chargeLocked(t))
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.depth {
		a.shed.Add(1)
		a.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{ready: make(chan struct{}), tag: a.chargeLocked(t)}
	t.q = append(t.q, w)
	a.queued++
	a.queuedG.Set(float64(a.queued))
	a.mu.Unlock()

	waitStart := time.Now()
	select {
	case <-w.ready:
		a.waitH.Record(int(a.lane.Add(1)), time.Since(waitStart).Nanoseconds())
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Raced with a grant: the slot is ours, so hand it back.
			a.releaseLocked()
			a.mu.Unlock()
			return ctx.Err()
		}
		w.cancelled = true
		a.queued--
		a.queuedG.Set(float64(a.queued))
		a.mu.Unlock()
		return ctx.Err()
	}
}

// releaseLocked frees one in-flight slot and dispatches. The caller holds
// a.mu.
func (a *Admission) releaseLocked() {
	a.inflight--
	a.inflightG.Set(float64(a.inflight))
	a.dispatchLocked()
}

// Release frees the slot taken by a successful Acquire.
func (a *Admission) Release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}
