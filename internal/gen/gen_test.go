package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmaze/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := Graph500Config(10, 8, 42)
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRMATSeedChangesOutput(t *testing.T) {
	a, _ := RMAT(Graph500Config(10, 8, 1))
	b, _ := RMAT(Graph500Config(10, 8, 2))
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical edge lists")
	}
}

func TestRMATEdgeCountAndRange(t *testing.T) {
	cfg := Graph500Config(8, 16, 7)
	edges, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(edges)) != cfg.NumEdges {
		t.Fatalf("generated %d edges, want %d", len(edges), cfg.NumEdges)
	}
	n := cfg.NumVertices()
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %v out of range [0,%d)", e, n)
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// RMAT with A=0.57 must produce a skewed degree distribution; an
	// Erdős–Rényi-like flat distribution would indicate a broken
	// quadrant descent.
	cfg := Graph500Config(12, 16, 3)
	edges, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int64, cfg.NumVertices())
	for _, e := range edges {
		deg[e.Src]++
	}
	st := graph.ComputeDegreeStats(deg)
	if st.GiniCoefficient < 0.4 {
		t.Errorf("RMAT Gini = %v, want skew > 0.4", st.GiniCoefficient)
	}
	if st.Max < 8*int64(st.Mean) {
		t.Errorf("RMAT max degree %d not heavy-tailed (mean %.1f)", st.Max, st.Mean)
	}
}

func TestRMATTriangleParamsLessSkewed(t *testing.T) {
	// A=0.45 spreads mass more evenly than A=0.57.
	g500, _ := RMAT(Graph500Config(12, 16, 3))
	tri, _ := RMAT(TriangleConfig(12, 16, 3))
	gini := func(edges []graph.Edge, n uint32) float64 {
		deg := make([]int64, n)
		for _, e := range edges {
			deg[e.Src]++
		}
		return graph.ComputeDegreeStats(deg).GiniCoefficient
	}
	n := uint32(1) << 12
	if g, tg := gini(g500, n), gini(tri, n); tg >= g {
		t.Errorf("triangle params Gini %v not below Graph500 Gini %v", tg, g)
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, NumEdges: 10, A: 0.5, B: 0.2, C: 0.2},
		{Scale: 40, NumEdges: 10, A: 0.5, B: 0.2, C: 0.2},
		{Scale: 5, NumEdges: -1, A: 0.5, B: 0.2, C: 0.2},
		{Scale: 5, NumEdges: 10, A: 0.5, B: 0.3, C: 0.3},
		{Scale: 5, NumEdges: 10, A: 0, B: 0.2, C: 0.2},
	}
	for i, cfg := range bad {
		if _, err := RMAT(cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}

func TestPermutationIsBijection(t *testing.T) {
	f := func(nRaw uint16, seed int64) bool {
		n := uint32(nRaw%2048) + 1
		perm := Permutation(n, seed)
		if uint32(len(perm)) != n {
			return false
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRatingsGenerator(t *testing.T) {
	cfg := DefaultRatingsConfig(10, 32, 11)
	bp, err := Ratings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumRatings() == 0 {
		t.Fatal("no ratings generated")
	}
	// Degree filter: every surviving user and item has >= MinDegree.
	for u := uint32(0); u < bp.NumUsers; u++ {
		if d := bp.ByUser.Degree(u); d < cfg.MinDegree {
			t.Fatalf("user %d degree %d below filter %d", u, d, cfg.MinDegree)
		}
	}
	for v := uint32(0); v < bp.NumItems; v++ {
		if d := bp.ByItem.Degree(v); d < cfg.MinDegree {
			t.Fatalf("item %d degree %d below filter %d", v, d, cfg.MinDegree)
		}
	}
	// Ratings are stars in [1,5].
	for u := uint32(0); u < bp.NumUsers; u++ {
		for _, w := range bp.ByUser.EdgeWeights(u) {
			if w < 1 || w > 5 {
				t.Fatalf("rating %v outside [1,5]", w)
			}
		}
	}
}

func TestRatingsDeterministic(t *testing.T) {
	cfg := DefaultRatingsConfig(9, 16, 5)
	a, err := Ratings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ratings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRatings() != b.NumRatings() || a.NumUsers != b.NumUsers || a.NumItems != b.NumItems {
		t.Fatalf("ratings not deterministic: %d/%d/%d vs %d/%d/%d",
			a.NumRatings(), a.NumUsers, a.NumItems, b.NumRatings(), b.NumUsers, b.NumItems)
	}
}

func TestRatingsPowerLawTail(t *testing.T) {
	bp, err := Ratings(DefaultRatingsConfig(12, 32, 17))
	if err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeDegreeStats(bp.ByItem.OutDegrees())
	// Skew grows with scale; at this test scale a Gini above 0.2 and a
	// heavy-tailed max already rule out a uniform generator (~0.05).
	if st.GiniCoefficient < 0.2 {
		t.Errorf("item-degree Gini = %v, want skewed tail", st.GiniCoefficient)
	}
	if st.Max < 2*int64(st.Mean) {
		t.Errorf("item max degree %d not heavy-tailed (mean %.1f)", st.Max, st.Mean)
	}
}

func TestRatingsValidation(t *testing.T) {
	cfg := DefaultRatingsConfig(8, 8, 1)
	cfg.NumItems = 0
	if _, err := Ratings(cfg); err == nil {
		t.Error("expected error for zero items")
	}
	cfg = DefaultRatingsConfig(8, 8, 1)
	cfg.MaxRating = 0
	if _, err := Ratings(cfg); err == nil {
		t.Error("expected error for empty rating range")
	}
	cfg = DefaultRatingsConfig(8, 8, 1)
	cfg.MinDegree = 1 << 30
	if _, err := Ratings(cfg); err == nil {
		t.Error("expected error when filter removes everything")
	}
}

func TestDegreeCCDF(t *testing.T) {
	// Degrees 0,1,2,4: CCDF at ≥1: 3/4, ≥2: 2/4, ≥4: 1/4.
	ccdf := DegreeCCDF([]int64{0, 1, 2, 4})
	want := []float64{0.75, 0.5, 0.25}
	if len(ccdf) != len(want) {
		t.Fatalf("CCDF = %v, want %v", ccdf, want)
	}
	for i := range want {
		if ccdf[i] != want[i] {
			t.Fatalf("CCDF = %v, want %v", ccdf, want)
		}
	}
	if DegreeCCDF(nil) != nil {
		t.Error("CCDF of empty input not nil")
	}
}

func TestTailDistanceCalibration(t *testing.T) {
	// The paper's calibration logic: the power-law ratings generator's
	// item tail must be closer to another power-law sample than to a
	// uniform sampler's tail (the generator of [16] it improves on).
	bp, err := Ratings(DefaultRatingsConfig(12, 24, 1))
	if err != nil {
		t.Fatal(err)
	}
	bp2, err := Ratings(DefaultRatingsConfig(12, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	itemDeg := bp.ByItem.OutDegrees()
	itemDeg2 := bp2.ByItem.OutDegrees()

	// Uniform sampler matching the total rating count (Gemulla et al.'s
	// scheme per the paper's §4.1.2 critique).
	r := rand.New(rand.NewSource(3))
	uniform := make([]int64, bp.NumItems)
	for i := int64(0); i < bp.NumRatings(); i++ {
		uniform[r.Intn(len(uniform))]++
	}

	same := TailDistance(itemDeg, itemDeg2)
	vsUniform := TailDistance(itemDeg, uniform)
	if same >= vsUniform {
		t.Errorf("power-law tails differ more from each other (%v) than from uniform (%v)", same, vsUniform)
	}
}

func TestTailDistanceIdentity(t *testing.T) {
	deg := []int64{1, 2, 4, 8, 100}
	if d := TailDistance(deg, deg); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}
