package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomEdges draws a reproducible random edge list over n vertices.
func randomEdges(r *rand.Rand, n uint32, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: uint32(r.Intn(int(n))), Dst: uint32(r.Intn(int(n)))}
	}
	return edges
}

// TestQuickCSRRoundTrip: FromEdges followed by Edges() preserves the edge
// multiset for arbitrary inputs.
func TestQuickCSRRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, mRaw uint16) bool {
		n := uint32(nRaw%500) + 1
		m := int(mRaw % 2000)
		r := rand.New(rand.NewSource(seed))
		in := randomEdges(r, n, m)
		g, err := FromEdges(n, in)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		count := map[Edge]int{}
		for _, e := range in {
			count[e]++
		}
		for _, e := range g.Edges() {
			count[e]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransposeInvolution: transposing twice restores the edge
// multiset.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint16, mRaw uint16) bool {
		n := uint32(nRaw%300) + 1
		m := int(mRaw % 1500)
		r := rand.New(rand.NewSource(seed))
		g, err := FromEdges(n, randomEdges(r, n, m))
		if err != nil {
			return false
		}
		back := g.Transpose().Transpose()
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		count := map[Edge]int{}
		for _, e := range g.Edges() {
			count[e]++
		}
		for _, e := range back.Edges() {
			count[e]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartition1DCoversEdges: every vertex has exactly one owner and
// local vertex counts sum to the graph.
func TestQuickPartition1D(t *testing.T) {
	f := func(seed int64, nRaw uint16, mRaw uint16, pRaw uint8) bool {
		n := uint32(nRaw%400) + 8
		m := int(mRaw % 2000)
		parts := int(pRaw%8) + 1
		r := rand.New(rand.NewSource(seed))
		g, err := FromEdges(n, randomEdges(r, n, m))
		if err != nil {
			return false
		}
		p, err := NewPartition1D(g, parts)
		if err != nil {
			return false
		}
		var total uint32
		for i := 0; i < parts; i++ {
			total += p.NumLocalVertices(i)
		}
		if total != n {
			return false
		}
		for v := uint32(0); v < n; v++ {
			o := p.Owner(v)
			lo, hi := p.Range(o)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartition2DOwnership: every possible edge has exactly one owner
// whose block contains it.
func TestQuickPartition2D(t *testing.T) {
	f := func(nRaw uint16, rRaw uint8) bool {
		r := int(rRaw%5) + 1
		n := uint32(nRaw%1000) + uint32(r)
		p, err := NewPartition2D(n, r*r)
		if err != nil {
			return false
		}
		probe := []uint32{0, n / 3, n / 2, n - 1}
		for _, s := range probe {
			for _, d := range probe {
				o := p.Owner(s, d)
				br, bc := p.Block(o)
				if s < p.RowStarts[br] || s >= p.RowStarts[br+1] {
					return false
				}
				if d < p.ColStarts[bc] || d >= p.ColStarts[bc+1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrientAcyclicIsDAG: after OrientAcyclic every edge goes
// small→large, hence the graph is acyclic.
func TestQuickOrientAcyclic(t *testing.T) {
	f := func(seed int64, nRaw uint16, mRaw uint16) bool {
		n := uint32(nRaw%300) + 2
		m := int(mRaw % 1500)
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		b.AddEdges(randomEdges(r, n, m))
		g, err := b.Build(BuildOptions{Orientation: OrientAcyclic, Dedup: true})
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if e.Src >= e.Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSymmetrizeIsSymmetric: after Symmetrize+Dedup, (u,v) present
// implies (v,u) present.
func TestQuickSymmetrize(t *testing.T) {
	f := func(seed int64, nRaw uint16, mRaw uint16) bool {
		n := uint32(nRaw%200) + 2
		m := int(mRaw % 1000)
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		b.AddEdges(randomEdges(r, n, m))
		g, err := b.Build(BuildOptions{Orientation: Symmetrize, Dedup: true, DropSelfLoops: true})
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.Dst, e.Src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
