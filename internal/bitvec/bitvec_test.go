package bitvec

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if v.Count() != 8 {
		t.Errorf("Count = %d, want 8", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if v.Count() != 7 {
		t.Errorf("Count = %d, want 7", v.Count())
	}
}

func TestReset(t *testing.T) {
	v := New(100)
	for i := uint32(0); i < 100; i += 3 {
		v.Set(i)
	}
	v.Reset()
	if v.Count() != 0 {
		t.Errorf("Count after Reset = %d", v.Count())
	}
}

func TestSetAtomicClaimsOnce(t *testing.T) {
	v := New(1024)
	const goroutines = 8
	var wg sync.WaitGroup
	claims := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint32(0); i < 1024; i++ {
				if v.SetAtomic(i) {
					claims[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range claims {
		total += c
	}
	if total != 1024 {
		t.Errorf("total claims = %d, want exactly 1024", total)
	}
	if v.Count() != 1024 {
		t.Errorf("Count = %d, want 1024", v.Count())
	}
}

func TestGetAtomic(t *testing.T) {
	v := New(64)
	v.SetAtomic(7)
	if !v.GetAtomic(7) || v.GetAtomic(8) {
		t.Error("GetAtomic readback wrong")
	}
}

func TestOrAndCount(t *testing.T) {
	a, b := New(200), New(200)
	a.Set(1)
	a.Set(100)
	a.Set(150)
	b.Set(100)
	b.Set(150)
	b.Set(199)
	if got := a.AndCount(b); got != 2 {
		t.Errorf("AndCount = %d, want 2", got)
	}
	a.Or(b)
	if a.Count() != 4 {
		t.Errorf("Count after Or = %d, want 4", a.Count())
	}
	for _, i := range []uint32{1, 100, 150, 199} {
		if !a.Get(i) {
			t.Errorf("bit %d missing after Or", i)
		}
	}
}

func TestOrPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Or on mismatched sizes did not panic")
		}
	}()
	New(64).Or(New(128))
}

func TestAndCountPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AndCount on mismatched sizes did not panic")
		}
	}()
	New(64).AndCount(New(128))
}

func TestForEachAscending(t *testing.T) {
	v := New(300)
	want := []uint32{0, 5, 63, 64, 128, 256, 299}
	for _, i := range want {
		v.Set(i)
	}
	var got []uint32
	v.ForEach(func(i uint32) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestQuickAgainstMapSet(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint32(nRaw%4096) + 1
		v := New(n)
		ref := map[uint32]bool{}
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 500; op++ {
			i := uint32(r.Intn(int(n)))
			switch r.Intn(3) {
			case 0:
				v.Set(i)
				ref[i] = true
			case 1:
				v.Clear(i)
				delete(ref, i)
			case 2:
				if v.Get(i) != ref[i] {
					return false
				}
			}
		}
		return v.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	if got := New(128).MemoryBytes(); got != 16 {
		t.Errorf("MemoryBytes(128 bits) = %d, want 16", got)
	}
	if got := New(129).MemoryBytes(); got != 24 {
		t.Errorf("MemoryBytes(129 bits) = %d, want 24", got)
	}
}
