package par

import (
	"sync/atomic"
	"time"

	"graphmaze/internal/trace"
)

// sched is the package-wide scheduling-counter attachment. The loops load
// it once per invocation; when nil (the default) the only instrumentation
// cost is that pointer check, which is what keeps the disabled mode inside
// the <5% benchmark budget (ISSUE 3 acceptance).
var sched atomic.Pointer[trace.SchedCounters]

// SetSchedCounters attaches (or with nil detaches) the counters every par
// loop feeds: chunks claimed, items processed, and busy nanoseconds per
// worker. Attachment is process-wide — the harness owns it around an
// experiment run; concurrent runs with different tracers would interleave
// their counts.
func SetSchedCounters(sc *trace.SchedCounters) { sched.Store(sc) }

// observeChunk credits one executed chunk — its index span and the body
// time just measured — to worker w's lanes. sc must be non-nil.
func observeChunk(sc *trace.SchedCounters, w, lo, hi int, start time.Time) {
	sc.Chunks.Add(w, 1)
	sc.Items.Add(w, int64(hi-lo))
	sc.BusyNS.Add(w, time.Since(start).Nanoseconds())
}
