package par

import "runtime"

// The reductions below give kernels per-worker accumulation lanes so a
// parallel sum (or max) never funnels through one contended atomic: each
// chunk's partial lands in a cache-line-padded per-worker slot, and the
// slots are combined serially after the join. Because integer addition
// and max are associative and exact, and each chunk computes its partial
// over the same contiguous index range a serial loop would, results are
// bit-identical to the serial reduction for int64 and for float max; a
// float64 *sum* keeps the chunk-major association, which is deterministic
// for a fixed worker count.

// laneInt64 pads each worker's accumulator to a cache line so neighbours
// don't false-share.
type laneInt64 struct {
	v int64
	_ [56]byte
}

type laneFloat64 struct {
	v float64
	_ [56]byte
}

// ReduceInt64 sums body's partial results over a static equal-count
// chunking of [0,n).
func ReduceInt64(n int, body func(lo, hi int) int64) int64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n <= 0 {
			return 0
		}
		return body(0, n)
	}
	lanes := make([]laneInt64, workers)
	ForWorkersIndexed(workers, n, func(w, lo, hi int) {
		lanes[w].v = body(lo, hi)
	})
	var total int64
	for i := range lanes {
		total += lanes[i].v
	}
	return total
}

// ReduceFloat64 sums body's partial results over a static equal-count
// chunking of [0,n).
func ReduceFloat64(n int, body func(lo, hi int) float64) float64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n <= 0 {
			return 0
		}
		return body(0, n)
	}
	lanes := make([]laneFloat64, workers)
	ForWorkersIndexed(workers, n, func(w, lo, hi int) {
		lanes[w].v = body(lo, hi)
	})
	total := 0.0
	for i := range lanes {
		total += lanes[i].v
	}
	return total
}

// ReduceFloat64Max returns the maximum of body's per-chunk results over a
// static equal-count chunking of [0,n), or 0 when n <= 0. Intended for
// non-negative quantities (convergence residuals); max is
// order-independent, so the result is bit-identical to a serial scan.
func ReduceFloat64Max(n int, body func(lo, hi int) float64) float64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n <= 0 {
			return 0
		}
		return body(0, n)
	}
	lanes := make([]laneFloat64, workers)
	ForWorkersIndexed(workers, n, func(w, lo, hi int) {
		lanes[w].v = body(lo, hi)
	})
	worst := 0.0
	for i := range lanes {
		if lanes[i].v > worst {
			worst = lanes[i].v
		}
	}
	return worst
}

// ReduceInt64Dynamic sums body's partial results over dynamically claimed
// grain-sized chunks of [0,n) (see ForDynamic). The body receives the
// executing worker's index so kernels can reuse per-worker scratch across
// the many chunks one worker claims.
func ReduceInt64Dynamic(n, grain int, body func(worker, lo, hi int) int64) int64 {
	lanes := make([]laneInt64, NumWorkers())
	ForDynamicIndexed(n, grain, func(w, lo, hi int) {
		lanes[w].v += body(w, lo, hi)
	})
	var total int64
	for i := range lanes {
		total += lanes[i].v
	}
	return total
}

// ReduceFloat64Dynamic sums body's partial results over dynamically
// claimed grain-sized chunks of [0,n).
func ReduceFloat64Dynamic(n, grain int, body func(worker, lo, hi int) float64) float64 {
	lanes := make([]laneFloat64, NumWorkers())
	ForDynamicIndexed(n, grain, func(w, lo, hi int) {
		lanes[w].v += body(w, lo, hi)
	})
	total := 0.0
	for i := range lanes {
		total += lanes[i].v
	}
	return total
}
