package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"graphmaze/internal/backend"
	"graphmaze/internal/graph"
	"graphmaze/internal/native"
	"graphmaze/internal/par"
	"graphmaze/internal/socialite"
)

// Query kinds served under /query/<kind>.
const (
	kindPageRank = "pagerank"
	kindBFS      = "bfs"
	kindCC       = "cc"
	kindTC       = "tc"
	kindDatalog  = "datalog"
)

// queryKinds lists every kind in listing order.
func queryKinds() []string {
	return []string{kindPageRank, kindBFS, kindCC, kindTC, kindDatalog}
}

// defaultDatalogRule is the reachability program the datalog endpoint
// evaluates when no rule is supplied: $MIN hop distances from the seeded
// source over the EDGE relation. $MIN over integers is deterministic
// under parallel evaluation, which keeps the cached bytes exact.
const defaultDatalogRule = "REACH(t, $MIN(d)) :- REACH(s, d0), d = d0 + 1, EDGE(s, t)."

// query is one parsed, validated, canonicalized request.
type query struct {
	kind  string
	graph string

	// pagerank
	iters int
	jump  float64
	tol   float64
	topK  int

	// bfs / datalog
	source uint32

	// datalog
	rule string
}

// badRequestError marks parse/validation failures the handler maps to 400.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// parseQuery decodes /query/<kind>?graph=...&... into a canonical query.
// Defaults are applied here so the fingerprint of an implicit and an
// explicit spelling of the same query match.
func (s *Server) parseQuery(r *http.Request) (*query, error) {
	kind := r.URL.Path[len("/query/"):]
	q := &query{kind: kind}
	vals := r.URL.Query()
	q.graph = vals.Get("graph")
	if q.graph == "" {
		return nil, badRequest("missing graph parameter")
	}
	var err error
	switch kind {
	case kindPageRank:
		if q.iters, err = intParam(vals, "iters", 20); err != nil {
			return nil, err
		}
		if q.iters < 1 || q.iters > 1000 {
			return nil, badRequest("iters must be in [1,1000]")
		}
		if q.jump, err = floatParam(vals, "jump", 0.3); err != nil {
			return nil, err
		}
		if q.jump <= 0 || q.jump >= 1 {
			return nil, badRequest("jump must be in (0,1)")
		}
		if q.tol, err = floatParam(vals, "tol", 0); err != nil {
			return nil, err
		}
		if q.tol < 0 {
			return nil, badRequest("tol must be >= 0")
		}
		if q.topK, err = intParam(vals, "k", 10); err != nil {
			return nil, err
		}
		if q.topK < 0 || q.topK > 1000 {
			return nil, badRequest("k must be in [0,1000]")
		}
	case kindBFS, kindDatalog:
		src, err := intParam(vals, "source", 0)
		if err != nil {
			return nil, err
		}
		if src < 0 {
			return nil, badRequest("source must be >= 0")
		}
		q.source = graph.MustU32(int64(src))
		if kind == kindDatalog {
			q.rule = vals.Get("rule")
			if q.rule == "" {
				q.rule = defaultDatalogRule
			}
		}
	case kindCC, kindTC:
		// no parameters beyond the graph
	default:
		return nil, badRequest("unknown query kind %q (have %v)", kind, queryKinds())
	}
	return q, nil
}

// fingerprint renders the canonical query string: the cache key component
// and the Query field echoed in every response.
func (q *query) fingerprint() string {
	switch q.kind {
	case kindPageRank:
		return fmt.Sprintf("pagerank?iters=%d&jump=%g&tol=%g&k=%d", q.iters, q.jump, q.tol, q.topK)
	case kindBFS:
		return fmt.Sprintf("bfs?source=%d", q.source)
	case kindCC:
		return "cc"
	case kindTC:
		return "tc"
	case kindDatalog:
		return fmt.Sprintf("datalog?source=%d&rule=%s", q.source, url.QueryEscape(q.rule))
	}
	return q.kind
}

func intParam(vals url.Values, name string, def int) (int, error) {
	s := vals.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, badRequest("bad %s: %v", name, err)
	}
	return v, nil
}

func floatParam(vals url.Values, name string, def float64) (float64, error) {
	s := vals.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, badRequest("bad %s: %v", name, err)
	}
	return v, nil
}

// vertexValue is one (vertex, value) pair in a top-k listing.
type vertexValue struct {
	Vertex uint32  `json:"v"`
	Value  float64 `json:"value"`
}

// queryMeta is the header every response carries.
type queryMeta struct {
	Graph string `json:"graph"`
	Epoch uint64 `json:"epoch"`
	Query string `json:"query"`
}

// pageRankResponse is the /query/pagerank body.
type pageRankResponse struct {
	queryMeta
	Iterations int           `json:"iterations"`
	Checksum   string        `json:"checksum"`
	Top        []vertexValue `json:"top,omitempty"`
}

// bfsResponse is the /query/bfs body.
type bfsResponse struct {
	queryMeta
	Source   uint32 `json:"source"`
	Reached  int64  `json:"reached"`
	MaxDepth int32  `json:"max_depth"`
	Checksum string `json:"checksum"`
}

// ccResponse is the /query/cc body.
type ccResponse struct {
	queryMeta
	Components  int64  `json:"components"`
	LargestSize int64  `json:"largest_size"`
	Checksum    string `json:"checksum"`
}

// tcResponse is the /query/tc body.
type tcResponse struct {
	queryMeta
	Triangles int64 `json:"triangles"`
}

// datalogResponse is the /query/datalog body.
type datalogResponse struct {
	queryMeta
	Rounds   int    `json:"rounds"`
	Facts    int    `json:"facts"`
	Checksum string `json:"checksum"`
}

// execute runs the query's kernel against the pinned epoch and returns
// the fully serialized response body. Every kernel here is bit-identical
// across worker counts (the backend conformance pins), so the bytes are a
// pure function of (graph epoch, fingerprint) — exactly the cache key.
func (s *Server) execute(g *servedGraph, snap *graph.Snapshot, q *query) ([]byte, error) {
	meta := queryMeta{Graph: g.name, Epoch: uint64(snap.Epoch()), Query: q.fingerprint()}
	var resp any
	switch q.kind {
	case kindPageRank:
		st := g.bind(snap)
		ranks, iters := s.pageRank(st, q)
		resp = &pageRankResponse{
			queryMeta:  meta,
			Iterations: iters,
			Checksum:   checksumFloat64s(ranks),
			Top:        topRanks(ranks, q.topK),
		}
	case kindBFS:
		if int64(q.source) >= int64(snap.NumVertices()) {
			return nil, badRequest("source %d outside vertex space [0,%d)", q.source, snap.NumVertices())
		}
		dist := s.bfs(snap, q.source)
		var reached int64
		maxDepth := int32(0)
		for _, d := range dist {
			if d >= 0 {
				reached++
				if d > maxDepth {
					maxDepth = d
				}
			}
		}
		resp = &bfsResponse{
			queryMeta: meta,
			Source:    q.source,
			Reached:   reached,
			MaxDepth:  maxDepth,
			Checksum:  checksumInt32s(dist),
		}
	case kindCC:
		labels := native.ConnectedComponents(s.pool, backend.FromSnapshot(snap))
		comps, largest := componentStats(labels)
		resp = &ccResponse{
			queryMeta:   meta,
			Components:  comps,
			LargestSize: largest,
			Checksum:    checksumUint32s(labels),
		}
	case kindTC:
		if !g.v.Options().Symmetrize {
			return nil, badRequest("triangle counting needs a symmetrized graph; %q is directed", g.name)
		}
		resp = &tcResponse{queryMeta: meta, Triangles: triangleCount(snap.CSR())}
	case kindDatalog:
		if int64(q.source) >= int64(snap.NumVertices()) {
			return nil, badRequest("source %d outside vertex space [0,%d)", q.source, snap.NumVertices())
		}
		dl, err := datalogQuery(snap, q)
		if err != nil {
			return nil, err
		}
		dl.queryMeta = meta
		resp = dl
	default:
		return nil, badRequest("unknown query kind %q", q.kind)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// pageRank runs the contribution-caching iteration on the shared pool
// against the epoch's bound in-CSR: the same dense-pass + plus-times SpMV
// shape as the native engine, so ranks are bit-identical at any worker
// count. With tol > 0 the run stops early once no rank moves more than
// tol in an iteration.
func (s *Server) pageRank(st *epochState, q *query) ([]float64, int) {
	n := len(st.outDeg)
	m := backend.FromCSR(st.in)
	m.Epoch = uint64(st.epoch) + 1
	mul := backend.NewSumVecMul(s.pool, m)
	pr := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	outDeg := st.outDeg
	contribPass := backend.NewDense(s.pool, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if outDeg[v] > 0 {
				contrib[v] = (1 - q.jump) * pr[v] / float64(outDeg[v])
			} else {
				contrib[v] = 0
			}
		}
	})
	post := func(v uint32, sum float64) float64 { return q.jump + sum }
	iters := 0
	for it := 0; it < q.iters; it++ {
		iters++
		contribPass.Run()
		mul.MapInto(next, contrib, post)
		pr, next = next, pr
		if q.tol > 0 && maxAbsDiff(pr, next) <= q.tol {
			break
		}
	}
	return pr, iters
}

// maxAbsDiff mirrors the native engine's convergence check (order-
// independent max reduction, bit-identical at any worker count).
func maxAbsDiff(a, b []float64) float64 {
	return par.ReduceFloat64Max(len(a), func(lo, hi int) float64 {
		worst := 0.0
		for i := lo; i < hi; i++ {
			d := a[i] - b[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	})
}

// bfs runs the backend's direction-switching traversal from source.
func (s *Server) bfs(snap *graph.Snapshot, source uint32) []int32 {
	n := int(snap.NumVertices())
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	tv := backend.NewTraversal(s.pool, backend.FromSnapshot(snap), "serve.bfs.level", nil)
	tv.Run(dist, source)
	return dist
}

// componentStats counts distinct labels and the largest component size.
func componentStats(labels []uint32) (components, largest int64) {
	sizes := make(map[uint32]int64)
	for _, l := range labels {
		sizes[l]++
	}
	for _, sz := range sizes {
		if sz > largest {
			largest = sz
		}
	}
	return int64(len(sizes)), largest
}

// triangleCount counts triangles on a symmetrized sorted-adjacency CSR
// with the ordered node-iterator: for every v < u adjacent, count common
// neighbors w > u. Each triangle v<u<w is counted exactly once; the sum
// is an integer reduction, so any chunking yields the same count.
func triangleCount(g *graph.CSR) int64 {
	n := int(g.NumVertices)
	return par.ReduceInt64Dynamic(n, 0, func(worker, lo, hi int) int64 {
		var count int64
		for v := lo; v < hi; v++ {
			adjV := g.Neighbors(uint32(v))
			for i, u := range adjV {
				if int(u) <= v {
					continue
				}
				// Count w in adjV[i+1:] ∩ N(u) with w > u; both lists are
				// sorted ascending, so this is a merge scan.
				count += intersectAbove(adjV[i+1:], g.Neighbors(u), u)
			}
		}
		return count
	})
}

// intersectAbove counts elements above floor present in both sorted lists.
func intersectAbove(a, b []uint32, floor uint32) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] <= floor:
			i++
		case b[j] <= floor:
			j++
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// datalogQuery evaluates a SociaLite-style rule over the pinned epoch's
// EDGE relation with REACH seeded at the query source. Recursive rules
// (head table driving the body) run semi-naively to fixpoint; others
// evaluate once.
func datalogQuery(snap *graph.Snapshot, q *query) (*datalogResponse, error) {
	reg := socialite.NewRegistry()
	reg.Register(socialite.NewEdgeTable("EDGE", snap.CSR()))
	tbl := socialite.NewVecTable("REACH", snap.NumVertices())
	reg.Register(tbl)
	tbl.Put(q.source, socialite.Scalar(0))
	rule, err := socialite.Parse(q.rule, reg)
	if err != nil {
		return nil, badRequest("bad rule: %v", err)
	}
	rounds := 0
	if rule.Driver.Vec != nil && rule.Driver.Vec.Table == rule.Head.Table {
		span := rule.Driver.Vec.Table.NumKeys()
		var delta []uint32
		rule.Driver.Vec.Table.ForEach(func(k uint32, _ socialite.Value) { delta = append(delta, k) })
		for len(delta) > 0 {
			rounds++
			stats, err := socialite.EvalParallel(rule, 0, span, delta, nil, 0, true)
			if err != nil {
				return nil, badRequest("evaluating rule: %v", err)
			}
			delta = stats.Changed
		}
	} else {
		var span uint32
		switch {
		case rule.Driver.Vec != nil:
			span = rule.Driver.Vec.Table.NumKeys()
		case rule.Driver.Edge != nil:
			span = rule.Driver.Edge.Table.NumKeys()
		default:
			return nil, badRequest("rule has no driver")
		}
		rounds = 1
		if _, err := socialite.EvalParallel(rule, 0, span, nil, nil, 0, false); err != nil {
			return nil, badRequest("evaluating rule: %v", err)
		}
	}
	h := fnv.New64a()
	var buf [12]byte
	tbl.ForEach(func(k uint32, v socialite.Value) {
		binary.LittleEndian.PutUint32(buf[0:4], k)
		binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(v.S()))
		_, _ = h.Write(buf[:])
	})
	return &datalogResponse{
		Rounds:   rounds,
		Facts:    tbl.Len(),
		Checksum: fmt.Sprintf("%016x", h.Sum64()),
	}, nil
}

// topRanks returns the k highest-ranked vertices, ties broken by vertex
// id so the listing is deterministic.
func topRanks(ranks []float64, k int) []vertexValue {
	if k <= 0 {
		return nil
	}
	idx := make([]uint32, len(ranks))
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if ranks[a] != ranks[b] {
			return ranks[a] > ranks[b]
		}
		return a < b
	})
	if k > len(idx) {
		k = len(idx)
	}
	top := make([]vertexValue, k)
	for i := 0; i < k; i++ {
		top[i] = vertexValue{Vertex: idx[i], Value: ranks[idx[i]]}
	}
	return top
}

// checksumFloat64s hashes a float64 array bit-exactly (FNV-1a over the
// little-endian IEEE-754 words).
func checksumFloat64s(xs []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// checksumInt32s hashes an int32 array bit-exactly.
func checksumInt32s(xs []int32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[:], uint32(x))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// checksumUint32s hashes a uint32 array bit-exactly.
func checksumUint32s(xs []uint32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[:], x)
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
