package native

import (
	"runtime"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
)

// TestClusterBFSDeterministicAcrossRuns pins the graphlint det fix in the
// distributed BFS send path: remote frontier payloads go out in ascending
// destination order rather than map iteration order, so repeated runs —
// within a process and across GOMAXPROCS values — must agree exactly on
// distances and on the modeled traffic accounting.
func TestClusterBFSDeterministicAcrossRuns(t *testing.T) {
	g := testGraphUndirected(t)
	run := func() *core.BFSResult {
		res, err := New().BFS(g, core.BFSOptions{Source: 3,
			Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run()
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		a, b := run(), run()
		runtime.GOMAXPROCS(prev)
		for _, got := range []*core.BFSResult{a, b} {
			if !core.EqualDistances(want.Distances, got.Distances) {
				t.Fatalf("GOMAXPROCS=%d: distances drifted between runs", procs)
			}
			wr, gr := want.Stats.Report, got.Stats.Report
			if gr.BytesSent != wr.BytesSent || gr.MessagesSent != wr.MessagesSent {
				t.Fatalf("GOMAXPROCS=%d: traffic accounting drifted: %d/%d vs %d/%d bytes/messages",
					procs, gr.BytesSent, gr.MessagesSent, wr.BytesSent, wr.MessagesSent)
			}
		}
	}
}
