package lint

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs over go/ast
// statements. Blocks hold *linearized* nodes: plain statements plus the
// condition/tag expressions of the control statements that end them —
// never the nested statement bodies, which become blocks of their own.
// Rules therefore apply their transfer functions to shallow nodes only
// (see inspectShallow, which also stops at nested function literals:
// those get their own CFGs).
//
// The builder handles if/else chains, for and range loops (with break,
// continue, and labels), switch/type-switch (with fallthrough), select,
// early returns, and panic-as-terminator. goto is modeled conservatively
// as an edge to the exit block; the module does not use it.

// Block is one straight-line run of nodes with explicit successors.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the virtual exit block: every return (and the fall-off-end
	// path) has an edge to it. It holds no nodes.
	Exit *Block
}

// BuildCFG constructs the control-flow graph of body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = entry
	b.stmtList(body.List)
	b.link(b.cur, b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target (nil for switch/select)
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []*loopFrame
	// fallthroughTo is the next case-clause block while building a switch
	// clause body.
	fallthroughTo *Block
	// pendingLabel is the label of the LabeledStmt currently being
	// entered, consumed by the next loop/switch/select.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(label string, brk, cont *Block) *loopFrame {
	f := &loopFrame{label: label, brk: brk, cont: cont}
	b.frames = append(b.frames, f)
	return f
}

func (b *cfgBuilder) popFrame() {
	b.frames = b.frames[:len(b.frames)-1]
}

// findFrame resolves a break/continue target; label "" means innermost.
func (b *cfgBuilder) findFrame(label string, needCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		// The assign (x := y.(type)) is part of the switch head.
		b.switchStmt(s.Init, s.Assign, s.Body, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Plain statement: assignments, declarations, expression
		// statements, go, defer, send, incdec, empty.
		b.add(s)
		if isTerminatorStmt(s) {
			b.link(b.cur, b.cfg.Exit)
			b.cur = b.newBlock()
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	join := b.newBlock()

	thenB := b.newBlock()
	b.link(head, thenB)
	b.cur = thenB
	b.stmtList(s.Body.List)
	b.link(b.cur, join)

	if s.Else != nil {
		elseB := b.newBlock()
		b.link(head, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		b.link(b.cur, join)
	} else {
		b.link(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	join := b.newBlock()
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.link(post, head)
		cont = post
	}
	if s.Cond != nil {
		b.link(head, join)
	}
	// for {} with no break leaves join with no in-edges; the solver
	// treats blocks without reachable predecessors as unreachable.
	b.pushFrame(label, join, cont)
	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.link(b.cur, cont)
	b.popFrame()
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	// The range head evaluates X once; key/value assignment repeats per
	// iteration. The RangeStmt's X (and the statement itself, for rules
	// that match on it) live in the head block.
	head := b.newBlock()
	b.link(b.cur, head)
	head.Nodes = append(head.Nodes, s.X)
	join := b.newBlock()
	b.link(head, join)
	b.pushFrame(label, join, head)
	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.link(b.cur, head)
	b.popFrame()
	b.cur = join
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	join := b.newBlock()
	b.pushFrame(label, join, nil)

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, cond := range cc.List {
			b.add(cond)
		}
		if i+1 < len(clauses) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.fallthroughTo = nil
		b.link(b.cur, join)
	}
	if !hasDefault {
		b.link(head, join)
	}
	b.popFrame()
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	join := b.newBlock()
	b.pushFrame(label, join, nil)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.link(b.cur, join)
	}
	b.popFrame()
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(label, false); f != nil {
			b.link(b.cur, f.brk)
		} else {
			b.link(b.cur, b.cfg.Exit)
		}
		b.cur = b.newBlock()
	case token.CONTINUE:
		if f := b.findFrame(label, true); f != nil {
			b.link(b.cur, f.cont)
		} else {
			b.link(b.cur, b.cfg.Exit)
		}
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.link(b.cur, b.fallthroughTo)
		}
		b.cur = b.newBlock()
	case token.GOTO:
		// Conservative: goto may reach anywhere; treat as function exit
		// so facts are not propagated along an edge we do not model.
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock()
	}
}

// isTerminatorStmt reports whether s never falls through: a call to
// panic, os.Exit, or runtime.Goexit as a statement.
func isTerminatorStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return (id.Name == "os" && fun.Sel.Name == "Exit") ||
				(id.Name == "runtime" && fun.Sel.Name == "Goexit")
		}
	}
	return false
}

// inspectShallow walks n without descending into nested function
// literals: a FuncLit's body belongs to its own CFG, not the enclosing
// function's blocks.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return visit(m)
	})
}

// funcBodies yields every function body in the file — declarations and
// function literals — with the enclosing declaration (the literal
// inherits the declaration it appears in).
func funcBodies(file *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		visit(fn, fn.Body)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(fn, lit.Body)
			}
			return true
		})
	}
}
