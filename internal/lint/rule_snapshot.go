package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// snapshotTypePath is the package whose Snapshot type the rule guards.
const snapshotTypePath = "graphmaze/internal/graph"

// SnapshotRule flags engine code that retains a graph.Snapshot in
// long-lived state: a struct field, a package-level variable, or an
// assignment that smuggles one into a field of a looser type (any, a
// map value, a slice element reached through a field). A snapshot is a
// per-operation handle — engines re-fetch via Versioned.Current at the
// top of every operation so staleness is a choice the call site makes,
// not an accident of whichever epoch happened to be live when a struct
// was built. Locals, parameters, and return values are fine: they die
// with the operation.
type SnapshotRule struct{}

// Name implements Rule.
func (*SnapshotRule) Name() string { return "snapshot" }

// Doc implements Rule.
func (*SnapshotRule) Doc() string {
	return "engine state must not retain a graph.Snapshot across epoch advances; re-fetch via Versioned.Current per operation"
}

// Check implements Rule.
func (r *SnapshotRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isEngine(p.Rel) {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				r.checkGenDecl(p, d, report)
			case *ast.FuncDecl:
				if d.Body != nil {
					r.checkStores(p, d.Body, report)
				}
			}
		}
	}
}

// checkGenDecl reports snapshot-typed struct fields and package-level
// variables.
func (r *SnapshotRule) checkGenDecl(p *Package, d *ast.GenDecl, report func(pos token.Pos, format string, args ...any)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if t := p.Info.TypeOf(field.Type); t != nil && holdsSnapshot(t) {
					report(field.Pos(), "struct field retains a graph.Snapshot across epoch advances; hold per-operation locals and re-fetch via Versioned.Current instead")
				}
			}
		}
	case token.VAR:
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if holdsSnapshot(obj.Type()) {
					report(name.Pos(), "package-level variable retains a graph.Snapshot; snapshots are per-operation handles")
				}
			}
		}
	}
}

// checkStores reports assignments that store a snapshot-typed value
// through a selector or index expression — the escape hatch a loosely
// typed field (any, map, slice) would otherwise leave open.
func (r *SnapshotRule) checkStores(p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
			default:
				continue // plain locals are per-operation state
			}
			if t := p.Info.TypeOf(as.Rhs[i]); t != nil && holdsSnapshot(t) {
				report(as.Pos(), "assignment stores a graph.Snapshot into long-lived state; pass the snapshot down the call instead of retaining it")
			}
		}
		return true
	})
}

// holdsSnapshot reports whether t is, points to, or contains (through
// slices, arrays, maps, or channels) the graph.Snapshot type. Structs
// are not recursed into: their fields are checked where they are
// declared, and a non-engine struct embedding a snapshot is that
// package's design to make.
func holdsSnapshot(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Snapshot" && obj.Pkg() != nil && obj.Pkg().Path() == snapshotTypePath {
				return true
			}
			return walk(named.Underlying())
		}
		switch u := t.(type) {
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Chan:
			return walk(u.Elem())
		case *types.Map:
			return walk(u.Key()) || walk(u.Elem())
		}
		return false
	}
	return walk(t)
}
