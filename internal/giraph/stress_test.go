package giraph

import (
	"testing"

	"graphmaze/internal/graph"
)

// TestSuperstepMessageDeliveryStress exists to run under `go test -race`:
// every vertex messages all its out-edges every superstep with an elevated
// worker count, so the per-worker staging slots, the atomic counter, and
// the buffered-bytes accounting are all contended. The counter then checks
// exact delivery: messages sent in superstep s arrive in superstep s+1, so
// S supersteps deliver (S-1)·E messages. testing.Short() scales the graph
// down without skipping the scenario.
func TestSuperstepMessageDeliveryStress(t *testing.T) {
	n := uint32(20_000)
	if testing.Short() {
		n = 4_000
	}
	// Ring plus two chords: every vertex has out-degree 3.
	edges := make([]graph.Edge, 0, int(n)*3)
	for v := uint32(0); v < n; v++ {
		edges = append(edges,
			graph.Edge{Src: v, Dst: (v + 1) % n},
			graph.Edge{Src: v, Dst: (v + 7) % n},
			graph.Edge{Src: v, Dst: (v + 131) % n},
		)
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}

	const supersteps = 4
	res, err := Run(&Job{
		Graph:         g,
		Workers:       8,
		MaxSupersteps: supersteps,
		Init:          func(id uint32) any { return nil },
		MessageBytes:  func(msg any) int { return 8 },
		Compute: func(ctx *Context, messages []any) {
			ctx.AddToCounter(int64(len(messages)))
			ctx.SendMessageToAllEdges(ctx.ID())
			// Never vote to halt: MaxSupersteps bounds the run.
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDelivered := int64(supersteps-1) * g.NumEdges()
	if res.Counter != wantDelivered {
		t.Fatalf("delivered %d messages, want %d (lost or duplicated under contention)", res.Counter, wantDelivered)
	}
	if res.Supersteps != supersteps {
		t.Fatalf("ran %d supersteps, want %d", res.Supersteps, supersteps)
	}
}

// TestSuperstepSplitChunksStress repeats the delivery check with
// SplitSupersteps and a Combiner enabled, covering the chunked superstep
// path where staging maps are rebuilt per chunk while bufferedBytes is
// reset and re-accumulated concurrently.
func TestSuperstepSplitChunksStress(t *testing.T) {
	n := uint32(10_000)
	if testing.Short() {
		n = 2_000
	}
	edges := make([]graph.Edge, 0, int(n)*2)
	for v := uint32(0); v < n; v++ {
		edges = append(edges,
			graph.Edge{Src: v, Dst: (v + 1) % n},
			graph.Edge{Src: v, Dst: (v + 17) % n},
		)
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}

	const supersteps = 3
	res, err := Run(&Job{
		Graph:           g,
		Workers:         8,
		MaxSupersteps:   supersteps,
		SplitSupersteps: 4,
		Init:            func(id uint32) any { return nil },
		MessageBytes:    func(msg any) int { return 8 },
		Combiner:        func(a, b any) any { return a.(int64) + b.(int64) },
		Compute: func(ctx *Context, messages []any) {
			var sum int64
			for _, m := range messages {
				sum += m.(int64)
			}
			ctx.AddToCounter(sum)
			ctx.SendMessageToAllEdges(int64(1))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each vertex sends 1 along each of its 2 out-edges; the combiner sums
	// per destination, so each superstep after the first delivers a summed
	// total of E message units.
	wantUnits := int64(supersteps-1) * g.NumEdges()
	if res.Counter != wantUnits {
		t.Fatalf("delivered %d message units, want %d", res.Counter, wantUnits)
	}
}
