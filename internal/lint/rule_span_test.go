package lint

import (
	"strings"
	"testing"
)

// spanFixturePrelude defines a minimal structural stand-in for trace.Span:
// fixtures type-check against the standard library only, and the rule
// matches any named Span with an End method.
const spanFixturePrelude = `package fix

type Tracer struct{}

func (t *Tracer) Begin(cat, name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) Arg(k string, v float64) *Span { return s }
func (s *Span) End()                          {}

`

func TestSpanRuleFlagsNeverEnded(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func leak(tr *Tracer) {
	sp := tr.Begin("cat", "work")
	sp.Arg("k", 1)
}
`})
	wantFinding(t, runRule(t, p, &SpanRule{}), "internal/fix/a.go", 13, "span")
}

func TestSpanRuleFlagsConditionalEnd(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func maybe(tr *Tracer, ok bool) {
	sp := tr.Begin("cat", "work")
	if ok {
		sp.End()
	}
}
`})
	findings := runRule(t, p, &SpanRule{})
	wantFinding(t, findings, "internal/fix/a.go", 13, "span")
	if msg := findings[0].Msg; msg == "" || !strings.Contains(msg, "some paths") {
		t.Fatalf("conditional End should mention paths, got %q", msg)
	}
}

func TestSpanRuleAcceptsSameBlockEnd(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func clean(tr *Tracer, ok bool) {
	sp := tr.Begin("cat", "work")
	if ok {
		sp.Arg("flag", 1)
	}
	sp.Arg("k", 2).End()
}
`})
	if got := runRule(t, p, &SpanRule{}); len(got) != 0 {
		t.Fatalf("same-block chained End should be clean, got %v", got)
	}
}

func TestSpanRuleAcceptsDeferredEnd(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func deferred(tr *Tracer, ok bool) {
	sp := tr.Begin("cat", "work")
	defer sp.End()
	if ok {
		return
	}
	sp.Arg("k", 1)
}
`})
	if got := runRule(t, p, &SpanRule{}); len(got) != 0 {
		t.Fatalf("deferred End should be clean, got %v", got)
	}
}

func TestSpanRuleAcceptsLoopBodySpans(t *testing.T) {
	// The engine idiom: a span per iteration, begun and ended inside the
	// loop body — same statement list, no finding.
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func loop(tr *Tracer) {
	for i := 0; i < 3; i++ {
		sp := tr.Begin("cat", "iter").Arg("i", float64(i))
		sp.Arg("j", 1)
		sp.End()
	}
}
`})
	if got := runRule(t, p, &SpanRule{}); len(got) != 0 {
		t.Fatalf("loop-body span should be clean, got %v", got)
	}
}

func TestSpanRuleSkipsEscapingSpans(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func escapes(tr *Tracer) *Span {
	sp := tr.Begin("cat", "handoff")
	return sp
}

func hand(s *Span) {}

func passes(tr *Tracer) {
	sp := tr.Begin("cat", "handoff")
	hand(sp)
}
`})
	if got := runRule(t, p, &SpanRule{}); len(got) != 0 {
		t.Fatalf("escaping spans are the caller's job, got %v", got)
	}
}

func TestSpanRuleIgnoreDirective(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": spanFixturePrelude + `func intentional(tr *Tracer) {
	//lint:ignore span recorded by a helper not visible to the analyzer
	sp := tr.Begin("cat", "work")
	sp.Arg("k", 1)
}
`})
	if got := runRule(t, p, &SpanRule{}); len(got) != 0 {
		t.Fatalf("directive should suppress the finding, got %v", got)
	}
}
