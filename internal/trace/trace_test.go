package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestSpanRecordsEvent(t *testing.T) {
	tr := New()
	sp := tr.Begin("test.cat", "work").Arg("k", 3)
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Cat != "test.cat" || ev.Name != "work" || ev.Pid != PidHost {
		t.Errorf("event = %+v", ev)
	}
	if ev.Args["k"] != 3 {
		t.Errorf("args = %v", ev.Args)
	}
	if ev.DurNS < 0 {
		t.Errorf("negative duration %d", ev.DurNS)
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	tr := New()
	sp := tr.Begin("c", "n")
	sp.End()
	sp.End()
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("double End recorded %d events", n)
	}
}

func TestRecordVirtual(t *testing.T) {
	tr := New()
	tr.RecordVirtual(PidNode(2), "cluster.phase", "phase 1", 1.5, 0.25,
		map[string]float64{"compute_sec": 0.2})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events", len(evs))
	}
	ev := evs[0]
	if ev.Pid != PidNodeBase+2 || ev.StartNS != 1_500_000_000 || ev.DurNS != 250_000_000 {
		t.Errorf("event = %+v", ev)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Begin("c", "n").Arg("k", 1)
	sp.End()
	tr.RecordVirtual(PidEngine, "c", "n", 0, 1, nil)
	tr.SetProcessName(3, "x")
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
	c := tr.Counter("x")
	c.Add(0, 5)
	c.Inc(1)
	if c.Value() != 0 || c.Name() != "" || c.Lanes() != nil {
		t.Error("nil counter not inert")
	}
	if tr.Sched() != nil {
		t.Error("nil tracer returned sched counters")
	}
	if Summarize(tr) != nil {
		t.Error("Summarize(nil) != nil")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("exporting a nil tracer should error")
	}
}

// TestDisabledTracerAllocatesNothing pins the disabled mode's zero-byte
// guarantee: a span begun, annotated, and ended against the nil tracer
// must not allocate.
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	var c *Counter
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("c", "n").Arg("k", 1).Arg("j", 2)
		sp.End()
		c.Add(0, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v bytes/op, want 0", allocs)
	}
}

func TestCounterLanesAndValue(t *testing.T) {
	tr := New()
	c := tr.Counter("items")
	c.Add(0, 10)
	c.Add(1, 5)
	c.Add(0, 1)
	if c.Value() != 16 {
		t.Errorf("Value = %d, want 16", c.Value())
	}
	if c.Name() != "items" {
		t.Errorf("Name = %q", c.Name())
	}
	if again := tr.Counter("items"); again != c {
		t.Error("Counter did not return the registered instance")
	}
	// Worker ids beyond the lane count wrap without panicking.
	c.Add(1<<20+3, 4)
	if c.Value() != 20 {
		t.Errorf("after wrapped add Value = %d, want 20", c.Value())
	}
}

func TestSchedImbalance(t *testing.T) {
	tr := New()
	sc := tr.Sched()
	if sc == nil || sc.Chunks == nil || sc.Items == nil || sc.BusyNS == nil {
		t.Fatal("sched bundle incomplete")
	}
	if got := sc.Imbalance(); got != 0 {
		t.Errorf("empty imbalance = %v", got)
	}
	sc.BusyNS.Add(0, 100)
	sc.BusyNS.Add(1, 100)
	sc.BusyNS.Add(2, 400)
	// Worker→lane placement depends on GOMAXPROCS (lanes may fold on small
	// hosts), so derive the expectation from the lane snapshot.
	var sum, max int64
	active := 0
	for _, v := range sc.BusyNS.Lanes() {
		if v == 0 {
			continue
		}
		active++
		sum += v
		if v > max {
			max = v
		}
	}
	want := float64(max) * float64(active) / float64(sum)
	if got := sc.Imbalance(); got != want {
		t.Errorf("imbalance = %v, want %v", got, want)
	}
	if want < 1 {
		t.Errorf("derived imbalance %v < 1", want)
	}
	if again := tr.Sched(); again != sc {
		t.Error("Sched did not return the cached bundle")
	}
}

// TestTracerConcurrentUse drives spans, counters, and exports from many
// goroutines; run under -race this is the concurrency-safety check.
func TestTracerConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := tr.Counter("shared")
			for i := 0; i < 200; i++ {
				sp := tr.Begin("race.cat", "op").Arg("i", float64(i))
				c.Add(w, 1)
				tr.RecordVirtual(PidNode(w), "race.virtual", "v", float64(i), 1, nil)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Counter("shared").Value(); got != 8*200 {
		t.Errorf("counter = %d, want %d", got, 8*200)
	}
	if got := len(tr.Events()); got != 2*8*200 {
		t.Errorf("events = %d, want %d", got, 2*8*200)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestChromeTraceSchema validates the exported JSON against what Perfetto
// requires: every event has ph/ts/pid/tid, "X" events have durations, and
// timestamps are monotonically non-decreasing in file order.
func TestChromeTraceSchema(t *testing.T) {
	tr := New()
	tr.SetProcessName(PidNode(0), "node 0")
	sp := tr.Begin("k.cat", "kernel").Arg("n", 1)
	tr.RecordVirtual(PidNode(0), "cluster.phase", "phase 1", 0, 0.5,
		map[string]float64{"compute_sec": 0.4, "wait_sec": 0.1})
	tr.RecordVirtual(PidNode(0), "cluster.phase", "phase 2", 0.5, 0.25, nil)
	sp.End()
	tr.Counter("msgs").Add(0, 7)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	sawPhase := map[string]int{}
	lastTS := -1.0
	for i, ev := range doc.TraceEvents {
		for _, req := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[req]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, req, ev)
			}
		}
		ph := ev["ph"].(string)
		sawPhase[ph]++
		ts := ev["ts"].(float64)
		if ph != "M" {
			if ts < lastTS {
				t.Fatalf("event %d ts %v < previous %v (non-monotonic)", i, ts, lastTS)
			}
			lastTS = ts
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d missing dur: %v", i, ev)
			}
		}
	}
	if sawPhase["M"] == 0 || sawPhase["X"] != 3 || sawPhase["C"] != 1 {
		t.Errorf("phase counts = %v, want M>0, X=3, C=1", sawPhase)
	}
}

// TestChromeTraceGolden pins the byte-exact export of a purely virtual
// trace (virtual clocks are deterministic; real-time spans are not).
// Regenerate with -update-golden after intentional format changes.
var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestChromeTraceGolden(t *testing.T) {
	tr := New()
	tr.SetProcessName(PidNode(0), "node 0 (test, virtual time)")
	tr.SetProcessName(PidNode(1), "node 1 (test, virtual time)")
	tr.RecordVirtual(PidNode(0), "cluster.phase", "phase 1", 0, 0.5,
		map[string]float64{"compute_sec": 0.375, "network_sec": 0.125})
	tr.RecordVirtual(PidNode(1), "cluster.phase", "phase 1", 0, 0.5,
		map[string]float64{"compute_sec": 0.25, "wait_sec": 0.25})
	tr.RecordVirtual(PidEngine, "giraph.superstep", "superstep 0", 0, 0.5, nil)
	tr.Counter("giraph.messages").Add(0, 1234)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "virtual_trace.golden.json")
	if updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestSummarize(t *testing.T) {
	tr := New()
	tr.RecordVirtual(PidNode(0), "cluster.phase", "p1", 0, 1,
		map[string]float64{"compute_sec": 0.6, "network_sec": 0.3, "wait_sec": 0.1})
	tr.RecordVirtual(PidNode(0), "cluster.phase", "p2", 1, 2, nil)
	tr.RecordVirtual(PidNode(1), "cluster.phase", "p1", 0, 1, nil)
	tr.RecordVirtual(PidEngine, "native.pr.iter", "it", 0, 3, nil)
	tr.Counter("msgs").Add(0, 5)

	s := Summarize(tr)
	if s.Spans != 4 {
		t.Errorf("Spans = %d", s.Spans)
	}
	// Node 0 covers 3s of virtual time, node 1 covers 1s; engine pid is
	// excluded from coverage.
	if s.VirtualSeconds != 3 {
		t.Errorf("VirtualSeconds = %v, want 3", s.VirtualSeconds)
	}
	var phase *PhaseStat
	for i := range s.Timeline {
		if s.Timeline[i].Cat == "cluster.phase" {
			phase = &s.Timeline[i]
		}
	}
	if phase == nil || phase.Count != 3 || phase.TotalSec != 4 {
		t.Fatalf("cluster.phase stat = %+v", phase)
	}
	if phase.ComputeSec != 0.6 || phase.NetworkSec != 0.3 || phase.WaitSec != 0.1 {
		t.Errorf("attribution = %+v", phase)
	}
	if len(s.Counters) != 1 || s.Counters[0].Total != 5 {
		t.Errorf("counters = %+v", s.Counters)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("bench.cat", "op").Arg("i", float64(i))
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("bench.cat", "op").Arg("i", float64(i))
		sp.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	tr := New()
	c := tr.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(0, 1)
		}
	})
}
