package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testConfig(nodes int) Config {
	return Config{Nodes: nodes, ThreadsPerNode: 8, Comm: MPI(), MemoryPerNode: 1 << 30}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := New(Config{Nodes: 2, ThreadsPerNode: 2, WorkersPerNode: 4}); err == nil {
		t.Error("accepted workers > threads")
	}
	if _, err := New(Config{Nodes: 2, Comm: CommLayer{Bandwidth: -1}}); err == nil {
		t.Error("accepted negative bandwidth")
	}
}

func TestDefaults(t *testing.T) {
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.ThreadsPerNode != 48 || cfg.WorkersPerNode != 48 {
		t.Errorf("defaults: threads=%d workers=%d", cfg.ThreadsPerNode, cfg.WorkersPerNode)
	}
	if cfg.Comm.Name != "mpi" {
		t.Errorf("default comm = %q", cfg.Comm.Name)
	}
}

func TestMessageDelivery(t *testing.T) {
	c, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: node 0 sends to 1 and 2; node 2 sends to itself.
	err = c.RunPhase(func(n int) error {
		switch n {
		case 0:
			c.Send(0, 1, []byte("to-one"))
			c.Send(0, 2, []byte("to-two"))
		case 2:
			c.Send(2, 2, []byte("self"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Recv(0); len(got) != 0 {
		t.Errorf("node 0 received %v, want nothing", got)
	}
	if got := c.Recv(1); len(got) != 1 || string(got[0]) != "to-one" {
		t.Errorf("node 1 received %q", got)
	}
	got2 := c.Recv(2)
	if len(got2) != 2 {
		t.Fatalf("node 2 received %d payloads, want 2", len(got2))
	}
	// Self-sends are delivered but not charged.
	r := c.Report()
	if r.BytesSent != int64(len("to-one")+len("to-two")) {
		t.Errorf("BytesSent = %d, want %d", r.BytesSent, len("to-one")+len("to-two"))
	}
	if r.MessagesSent != 2 {
		t.Errorf("MessagesSent = %d, want 2", r.MessagesSent)
	}
}

func TestSendAppends(t *testing.T) {
	c, _ := New(testConfig(2))
	if err := c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, []byte("ab"))
			c.Send(0, 1, []byte("cd"))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := c.Recv(1)
	if len(got) != 1 || string(got[0]) != "abcd" {
		t.Errorf("Recv = %q, want one payload \"abcd\"", got)
	}
}

func TestInboxClearedBetweenPhases(t *testing.T) {
	c, _ := New(testConfig(2))
	_ = c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, []byte("x"))
		}
		return nil
	})
	_ = c.RunPhase(func(n int) error { return nil })
	if got := c.Recv(1); len(got) != 0 {
		t.Errorf("stale inbox: %q", got)
	}
}

func TestComputeErrorAborts(t *testing.T) {
	c, _ := New(testConfig(2))
	wantErr := errors.New("boom")
	err := c.RunPhase(func(n int) error {
		if n == 1 {
			return wantErr
		}
		return nil
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("RunPhase error = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("error %q does not identify the node", err)
	}
}

func TestNetworkTimeModel(t *testing.T) {
	// 1 MB over a 1 MB/s link with zero latency must cost ~1 virtual
	// second.
	cfg := Config{Nodes: 2, ThreadsPerNode: 1, Comm: CommLayer{Name: "slow", Bandwidth: 1e6}}
	c, _ := New(cfg)
	payload := make([]byte, 1e6)
	if err := c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, payload)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.NetworkSeconds < 0.99 || r.NetworkSeconds > 1.01 {
		t.Errorf("NetworkSeconds = %v, want ≈1", r.NetworkSeconds)
	}
	if r.SimulatedSeconds < r.NetworkSeconds {
		t.Errorf("SimulatedSeconds %v below network time %v", r.SimulatedSeconds, r.NetworkSeconds)
	}
	if r.PeakNetworkBandwidth < 0.99e6 || r.PeakNetworkBandwidth > 1.01e6 {
		t.Errorf("PeakNetworkBandwidth = %v, want ≈1e6", r.PeakNetworkBandwidth)
	}
}

func TestOverlapReducesWall(t *testing.T) {
	payload := make([]byte, 1e6)
	spin := func(n int) error {
		if n == 0 {
			deadline := time.Now().Add(20 * time.Millisecond)
			for time.Now().Before(deadline) {
			}
		}
		return nil
	}
	run := func(overlap bool) float64 {
		cfg := Config{Nodes: 2, ThreadsPerNode: 1, Overlap: overlap,
			Comm: CommLayer{Name: "slow", Bandwidth: 50e6}} // 20ms for 1MB
		c, _ := New(cfg)
		_ = c.RunPhase(func(n int) error {
			if err := spin(n); err != nil {
				return err
			}
			if n == 0 {
				c.Send(0, 1, payload)
			}
			return nil
		})
		return c.Report().SimulatedSeconds
	}
	seq := run(false)
	ovl := run(true)
	if ovl >= seq*0.8 {
		t.Errorf("overlap %vs not clearly below sequential %vs", ovl, seq)
	}
}

func TestAccount(t *testing.T) {
	c, _ := New(testConfig(2))
	if err := c.RunPhase(func(n int) error {
		if n == 1 {
			c.Account(1, 5000, 3)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.BytesSent != 5000 || r.MessagesSent != 3 {
		t.Errorf("accounted traffic = %d bytes / %d msgs", r.BytesSent, r.MessagesSent)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c, _ := New(testConfig(2))
	c.SetBaselineMemory(0, 1000)
	c.SetBaselineMemory(1, 500)
	payload := make([]byte, 2048)
	_ = c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, payload)
		}
		return nil
	})
	r := c.Report()
	// Node 0's high water: baseline 1000 + 2048 outbox.
	if r.MemoryFootprintBytes < 3000 {
		t.Errorf("MemoryFootprintBytes = %d, want ≥ 3048", r.MemoryFootprintBytes)
	}
	if f := r.MemoryFraction(); f <= 0 || f >= 1 {
		t.Errorf("MemoryFraction = %v", f)
	}
}

func TestCPUUtilizationModel(t *testing.T) {
	// WorkersPerNode=2 of ThreadsPerNode=8, pure compute → util ≈ 25%.
	cfg := Config{Nodes: 1, ThreadsPerNode: 8, WorkersPerNode: 2, Comm: MPI()}
	c, _ := New(cfg)
	_ = c.RunPhase(func(n int) error {
		deadline := time.Now().Add(10 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		return nil
	})
	r := c.Report()
	if r.CPUUtilization < 0.2 || r.CPUUtilization > 0.3 {
		t.Errorf("CPUUtilization = %v, want ≈0.25", r.CPUUtilization)
	}
}

func TestPhasesCounter(t *testing.T) {
	c, _ := New(testConfig(1))
	for i := 0; i < 3; i++ {
		if err := c.RunPhase(func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Phases() != 3 {
		t.Errorf("Phases = %d, want 3", c.Phases())
	}
}

func TestCommPresets(t *testing.T) {
	mpi, ms, ipoib, ss, netty := MPI(), MultiSocket(), IPoIBSockets(), SingleSocket(), Netty()
	if !(mpi.Bandwidth > ms.Bandwidth && ms.Bandwidth > ipoib.Bandwidth && ipoib.Bandwidth > ss.Bandwidth && ss.Bandwidth > netty.Bandwidth) {
		t.Error("comm preset bandwidth ordering violated")
	}
	if netty.Latency <= mpi.Latency {
		t.Error("netty latency should exceed MPI latency")
	}
}
