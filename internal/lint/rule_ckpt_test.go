package lint

import (
	"strings"
	"testing"
)

// ckptFixturePrelude stands in for the fault-tolerance API shapes: a store
// with an error-returning Save, a Recovery driver with Run, and snapshot/
// restore helpers. The rule matches names and the error result
// structurally, so fixtures type-check against the standard library only.
const ckptFixturePrelude = `package fix

type Store struct{}

func (s *Store) Save(step int, data []byte) (float64, error) { return 0, nil }
func (s *Store) Snapshot() ([]byte, error)                   { return nil, nil }
func (s *Store) Restore(data []byte) error                   { return nil }

type Recovery struct{}

func (r *Recovery) Run(step func(int) (bool, error)) error { return nil }

type Runner struct{}

// Run here does not return an error and is not on a Recovery: unwatched.
func (r *Runner) Run() {}

`

func TestCkptRuleFlagsBareSave(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": ckptFixturePrelude + `func drop(s *Store) {
	s.Save(1, nil)
}
`})
	findings := runRule(t, p, &CkptRule{})
	wantFinding(t, findings, "internal/fix/a.go", 19, "ckpt")
	if !strings.Contains(findings[0].Msg, "Save") {
		t.Fatalf("message should name the call, got %q", findings[0].Msg)
	}
}

func TestCkptRuleFlagsBlankError(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": ckptFixturePrelude + `func blank(s *Store) []byte {
	data, _ := s.Snapshot()
	return data
}
`})
	wantFinding(t, runRule(t, p, &CkptRule{}), "internal/fix/a.go", 19, "ckpt")
}

func TestCkptRuleFlagsRecoveryRun(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": ckptFixturePrelude + `func loop(r *Recovery) {
	r.Run(func(int) (bool, error) { return true, nil })
}
`})
	wantFinding(t, runRule(t, p, &CkptRule{}), "internal/fix/a.go", 19, "ckpt")
}

func TestCkptRuleAcceptsHandledErrors(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": ckptFixturePrelude + `func handled(s *Store, r *Recovery) error {
	if _, err := s.Save(1, nil); err != nil {
		return err
	}
	if err := s.Restore(nil); err != nil {
		return err
	}
	return r.Run(func(int) (bool, error) { return true, nil })
}
`})
	if got := runRule(t, p, &CkptRule{}); len(got) != 0 {
		t.Fatalf("handled errors should be clean, got %v", got)
	}
}

func TestCkptRuleSkipsUnwatchedCalls(t *testing.T) {
	// Runner.Run returns nothing and is not on a Recovery, so the bare call
	// is fine; blanking Save's cost result while keeping its error is fine.
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": ckptFixturePrelude + `func other(r *Runner, s *Store) error {
	r.Run()
	_, err := s.Save(1, nil)
	return err
}
`})
	if got := runRule(t, p, &CkptRule{}); len(got) != 0 {
		t.Fatalf("unwatched calls should be clean, got %v", got)
	}
}

func TestCkptRuleIgnoreDirective(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": ckptFixturePrelude + `func intentional(s *Store) {
	//lint:ignore ckpt smoke test exercises the failure path on purpose
	s.Save(1, nil)
}
`})
	if got := runRule(t, p, &CkptRule{}); len(got) != 0 {
		t.Fatalf("directive should suppress the finding, got %v", got)
	}
}
