// Webranker ranks a web-style link graph with PageRank and compares the
// same computation across every framework's programming model, single-node
// and on a simulated 4-node cluster — a miniature of the paper's Figure 3
// and 4 panels for one workload.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphmaze"
)

func main() {
	// The Wikipedia link-graph stand-in (paper Table 3).
	g, err := graphmaze.Dataset("wikipedia", graphmaze.ForPageRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wikipedia stand-in: %d pages, %d links\n\n", g.NumVertices, g.NumEdges())

	opt := graphmaze.PageRankOptions{Iterations: 10}

	// Single-node comparison across all six engines.
	fmt.Println("engine       time/iteration    top-rank agreement")
	var reference []float64
	for _, eng := range graphmaze.Engines() {
		res, err := eng.PageRank(g, opt)
		if err != nil {
			log.Fatalf("%s: %v", eng.Name(), err)
		}
		if reference == nil {
			reference = res.Ranks
		}
		fmt.Printf("%-12s %10.3fms        top-10 match: %v\n",
			eng.Name(), 1e3*res.Stats.WallSeconds/float64(res.Stats.Iterations),
			sameTop(reference, res.Ranks, 10))
	}

	// Distributed run on a simulated 4-node cluster with system metrics —
	// the quantities of the paper's Figure 6.
	fmt.Println("\n4-node simulated cluster:")
	for _, eng := range graphmaze.Engines() {
		if !eng.Capabilities().MultiNode {
			fmt.Printf("%-12s single-node only\n", eng.Name())
			continue
		}
		res, err := eng.PageRank(g, graphmaze.PageRankOptions{Iterations: 10,
			Exec: graphmaze.Exec{Cluster: &graphmaze.ClusterConfig{Nodes: 4, MemoryPerNode: 64 << 30}}})
		if err != nil {
			log.Fatalf("%s: %v", eng.Name(), err)
		}
		fmt.Printf("%-12s %s\n", eng.Name(), res.Stats.Report)
	}

	// Print the ten most-linked pages by rank.
	type ranked struct {
		id   uint32
		rank float64
	}
	pages := make([]ranked, len(reference))
	for v, r := range reference {
		pages[v] = ranked{uint32(v), r}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })
	fmt.Println("\ntop pages:")
	for _, p := range pages[:10] {
		fmt.Printf("  page %-8d rank %.2f  (in-degree %d)\n", p.id, p.rank, inDegree(g, p.id))
	}
}

// sameTop reports whether the top-k vertices by rank agree between two
// rank vectors.
func sameTop(a, b []float64, k int) bool {
	top := func(r []float64) map[uint32]bool {
		idx := make([]uint32, len(r))
		for i := range idx {
			idx[i] = uint32(i)
		}
		sort.Slice(idx, func(i, j int) bool { return r[idx[i]] > r[idx[j]] })
		out := map[uint32]bool{}
		for _, v := range idx[:k] {
			out[v] = true
		}
		return out
	}
	ta, tb := top(a), top(b)
	for v := range ta {
		if !tb[v] {
			return false
		}
	}
	return true
}

func inDegree(g *graphmaze.Graph, v uint32) int64 {
	var d int64
	for u := uint32(0); u < g.NumVertices; u++ {
		for _, t := range g.Neighbors(u) {
			if t == v {
				d++
			}
		}
	}
	return d
}
