package obs

import (
	"runtime"
	"sync"
	"testing"
)

// BenchmarkObsHistDisabled pins the cost of the disabled path: one nil
// check per call, 0 allocs/op. bench-diff's structural gate enforces the
// alloc count stays 0.
func BenchmarkObsHistDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(i, int64(i))
	}
}

// BenchmarkObsRegistryDisabled pins the nil-registry lookup+record chain.
func BenchmarkObsRegistryDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Hist("x").Record(i, int64(i))
	}
}

// BenchmarkObsHistRecord measures the enabled single-threaded hot path.
// ResetTimer excludes histogram construction so allocs/op reads 0 even
// at CI's -benchtime=1x (the structural bench-diff gate compares it).
func BenchmarkObsHistRecord(b *testing.B) {
	h := newHistogram("bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(0, int64(i&0xfffff))
	}
}

// BenchmarkObsHistRecordParallel measures contention behavior with one
// lane per worker (the intended usage under par.For*). Persistent
// workers run a warmup round before the timer so the timed round does
// only Record calls plus warm channel handoffs: goroutine spawning and
// the runtime's park/wake structures never amortize at CI's
// -benchtime=1x, and -benchmem forces alloc reporting on every
// benchmark, so any of that inside the timer would read as a fake
// regression against the committed 0-alloc baseline.
func BenchmarkObsHistRecordParallel(b *testing.B) {
	h := newHistogram("bench", 64)
	workers := runtime.GOMAXPROCS(0)
	work := make(chan int)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for per := range work {
				for i := 0; i < per; i++ {
					h.Record(w, int64(i&0xfffff))
				}
				done <- struct{}{}
			}
		}(w)
	}
	round := func(per int) {
		for w := 0; w < workers; w++ {
			work <- per
		}
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	round(64) // warmup: park/wake once off the clock
	b.ResetTimer()
	round(b.N/workers + 1)
	b.StopTimer()
	close(work)
	wg.Wait()
}

// BenchmarkObsGaugeSet measures the gauge store path.
func BenchmarkObsGaugeSet(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}
