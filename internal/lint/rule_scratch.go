package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchRule flags per-iteration allocation of graph-sized scratch
// buffers in engine code: a `make` with a vertex-count-shaped length or
// capacity argument inside a for/range body churns O(V) bytes through
// the allocator every superstep/round, which is exactly the pattern the
// shared backend's persistent scratch (Dense/Sweep/VecMul Into-variants)
// exists to eliminate. A size argument is vertex-count-shaped when it
// mentions a NumVertices/NumRows/NumCols/NumKeys/TargetSpace selector,
// or a local assigned from one in the same function.
type ScratchRule struct{}

// Name implements Rule.
func (*ScratchRule) Name() string { return "scratch" }

// Doc implements Rule.
func (*ScratchRule) Doc() string {
	return "engine loops must not make() graph-sized scratch per iteration; hoist the buffer above the loop and reuse it"
}

// graphSizeFields are the selector names that denote a graph-proportional
// dimension across the codebase's graph, matrix, and table types.
var graphSizeFields = map[string]bool{
	"NumVertices": true,
	"NumRows":     true,
	"NumCols":     true,
	"NumKeys":     true,
	"TargetSpace": true,
}

// Check implements Rule.
func (r *ScratchRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isEngine(p.Rel) {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sized := collectGraphSizedLocals(p, fn.Body)
			r.checkLoops(p, fn.Body, sized, report)
		}
	}
}

// collectGraphSizedLocals gathers the locals assigned (directly or through
// a chain of local assignments) from a graph-size selector anywhere in the
// function, iterating to a fixpoint so `n := g.NumVertices; m := n` taints
// both n and m.
func collectGraphSizedLocals(p *Package, body *ast.BlockStmt) map[types.Object]bool {
	sized := make(map[types.Object]bool)
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !mentionsGraphSize(p, rhs, sized) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !sized[obj] {
					sized[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return sized
		}
	}
}

// mentionsGraphSize reports whether e contains a graph-size selector or a
// local already known to hold one. Composite and function literals are
// opaque: a struct that merely embeds a graph-sized field is not itself a
// size, and size arguments are scalar expressions that never contain them.
func mentionsGraphSize(p *Package, e ast.Expr, sized map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CompositeLit, *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if graphSizeFields[x.Sel.Name] {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil && sized[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkLoops reports every graph-sized make whose enclosing statement sits
// inside a for/range body.
func (r *ScratchRule) checkLoops(p *Package, body *ast.BlockStmt, sized map[types.Object]bool,
	report func(pos token.Pos, format string, args ...any)) {
	inLoop := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop++
			defer func() { inLoop-- }()
			for _, child := range childNodes(n) {
				ast.Inspect(child, walk)
			}
			return false
		case *ast.FuncLit:
			// A nested closure is its own scratch scope; a make inside it
			// still counts when the closure body sits inside a loop, which
			// the shared inLoop counter already tracks.
			return true
		case *ast.CallExpr:
			if inLoop == 0 || !isBuiltinMake(p, s) {
				return true
			}
			for _, arg := range s.Args[1:] {
				if mentionsGraphSize(p, arg, sized) {
					report(s.Pos(), "graph-sized make inside a loop allocates O(V) scratch per iteration; hoist the buffer above the loop and reuse it")
					break
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// isBuiltinMake reports whether call is the make builtin with a size
// argument.
func isBuiltinMake(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
