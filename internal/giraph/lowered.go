package giraph

import (
	"graphmaze/internal/backend"
	"graphmaze/internal/bitvec"
	"graphmaze/internal/graph"
	"graphmaze/internal/trace"
)

// Lowering is a backend-lowered execution of a vertex program: the
// superstep schedule of message generation, delivery, and fold collapses
// into semiring SpMV / sparse-frontier expansion over the shared CSR
// (DESIGN.md §12). A lowering must be observationally equivalent to the
// stock runtime — same final Values, same per-superstep active/message
// counts, same modeled buffer footprint — so the engine's results and
// traces do not depend on which path ran.
type Lowering interface {
	// Step executes superstep s and reports the active-vertex and
	// message counts the stock runtime would have observed.
	Step(s int) (active, msgs int64)
	// BufferedBytes reports the modeled message-buffer footprint of the
	// step just executed.
	BufferedBytes() int64
	// AllHalted reports whether every vertex has voted to halt.
	AllHalted() bool
	// Values returns the final boxed vertex values.
	Values() []any
	// Close releases backend resources.
	Close()
}

// prLowering runs Algorithm 1's superstep schedule as dense semiring
// SpMV: each vertex's outgoing rank/degree messages are one contribution
// vector, and the per-vertex message fold is a plus-times SpMV over the
// transpose. Because the stock runtime delivers messages in ascending
// sender order (workers own ascending vertex ranges and flush in worker
// order) and the transpose stores in-neighbours sorted, the float
// summation order is identical and the lowered ranks are bit-for-bit the
// stock ranks.
type prLowering struct {
	pool        *backend.Pool
	mul         *backend.SumVecMul
	contribPass *backend.Dense
	post        func(uint32, float64) float64
	ranks       []float64
	contrib     []float64
	edges       int64
	maxS        int
	buffered    int64
	halted      bool
}

func newPRLowering(g *graph.CSR, r float64, maxSupersteps int, tr *trace.Tracer) *prLowering {
	n := int(g.NumVertices)
	pool := backend.NewPool(0)
	pool.SetTracer(tr)
	at := backend.FromCSR(g.Transpose())
	l := &prLowering{
		pool:    pool,
		mul:     backend.NewSumVecMul(pool, at).WithTracer(tr),
		ranks:   make([]float64, n),
		contrib: make([]float64, n),
		edges:   at.NNZ(),
		maxS:    maxSupersteps,
	}
	for i := range l.ranks {
		l.ranks[i] = 1
	}
	l.post = func(_ uint32, sum float64) float64 { return r + (1-r)*sum }
	offs := g.Offsets
	l.contribPass = backend.NewDense(pool, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if deg := offs[v+1] - offs[v]; deg > 0 {
				l.contrib[v] = l.ranks[v] / float64(deg)
			} else {
				l.contrib[v] = 0
			}
		}
	})
	return l
}

func (l *prLowering) Step(s int) (active, msgs int64) {
	if s > 0 {
		// Fold the previous superstep's messages: value ← r + (1−r)·Σ.
		l.mul.MapInto(l.ranks, l.contrib, l.post)
	}
	n := int64(len(l.ranks))
	if s < l.maxS-1 {
		// Every vertex with out-edges re-broadcasts rank/degree: one
		// message per edge, all buffered before delivery (the stock
		// runtime's single-chunk superstep).
		l.contribPass.Run()
		l.buffered = l.edges * (javaObjectOverhead + 8)
		return n, l.edges
	}
	l.buffered = 0
	l.halted = true
	return n, 0
}

func (l *prLowering) BufferedBytes() int64 { return l.buffered }
func (l *prLowering) AllHalted() bool      { return l.halted }

func (l *prLowering) Values() []any {
	vals := make([]any, len(l.ranks))
	for i, r := range l.ranks {
		vals[i] = r
	}
	return vals
}

func (l *prLowering) Close() { l.pool.Close() }

// bfsLowering runs Algorithm 2 as sparse-frontier expansion: the min
// combine over delivered distance messages is exactly the persistent
// claim — a vertex improves iff it was never reached before, and the new
// distance is the superstep number. Active counts (message receivers)
// come from a touched bitset over the previous frontier's targets.
type bfsLowering struct {
	pool     *backend.Pool
	exp      *backend.Expander
	g        *graph.CSR
	source   uint32
	dist     []int32
	frontier []uint32
	spare    []uint32
	touched  *bitvec.Vector
	buffered int64
}

// bfsInfinity mirrors the vertex program's unreached sentinel.
const bfsInfinity = int32(1) << 30

func newBFSLowering(g *graph.CSR, source uint32, tr *trace.Tracer) *bfsLowering {
	n := g.NumVertices
	pool := backend.NewPool(0)
	pool.SetTracer(tr)
	l := &bfsLowering{
		pool:    pool,
		exp:     backend.NewExpander(pool, backend.FromCSR(g)),
		g:       g,
		source:  source,
		dist:    make([]int32, n),
		touched: bitvec.New(n),
	}
	for i := range l.dist {
		l.dist[i] = bfsInfinity
	}
	l.dist[source] = 0
	l.exp.Claim(source)
	return l
}

func (l *bfsLowering) Step(s int) (active, msgs int64) {
	if s == 0 {
		// Superstep 0: every vertex computes (none halted yet); only the
		// source sends, one message per out-edge.
		l.frontier = append(l.frontier[:0], l.source)
		msgs = int64(len(l.g.Neighbors(l.source)))
		l.buffered = msgs * (javaObjectOverhead + 4)
		return int64(l.g.NumVertices), msgs
	}
	// Receivers of the previous superstep's messages are the distinct
	// targets of the old frontier — active whether or not they improve.
	l.touched.Reset()
	for _, v := range l.frontier {
		for _, t := range l.g.Neighbors(v) {
			l.touched.Set(t)
		}
	}
	active = int64(l.touched.Count())
	// The improved set is the newly claimed targets; each sends dist+1
	// along every out-edge before halting.
	next := l.exp.Expand(l.frontier, l.spare[:0])
	for _, v := range next {
		l.dist[v] = graph.MustI32(int64(s))
		msgs += int64(len(l.g.Neighbors(v)))
	}
	l.spare = l.frontier
	l.frontier = next
	l.buffered = msgs * (javaObjectOverhead + 4)
	return active, msgs
}

func (l *bfsLowering) BufferedBytes() int64 { return l.buffered }

// AllHalted: every BFS vertex votes to halt on every superstep it runs,
// so from superstep 1 on (the first time the runtime consults this) the
// whole graph is parked.
func (l *bfsLowering) AllHalted() bool { return true }

func (l *bfsLowering) Values() []any {
	vals := make([]any, len(l.dist))
	for i, d := range l.dist {
		vals[i] = d
	}
	return vals
}

func (l *bfsLowering) Close() { l.pool.Close() }
