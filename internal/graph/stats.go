package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DegreeStats summarizes a degree distribution; the paper's datasets are
// characterized by their power-law (Zipf) skew (§4.1).
type DegreeStats struct {
	Min, Max int64
	Mean     float64
	Median   int64
	// P99 is the 99th-percentile degree.
	P99 int64
	// GiniCoefficient in [0,1]; higher means more skew. Uniform-degree
	// graphs score 0, a single hub owning all edges approaches 1.
	GiniCoefficient float64
}

// ComputeDegreeStats summarizes the given degree array.
func ComputeDegreeStats(degrees []int64) DegreeStats {
	if len(degrees) == 0 {
		return DegreeStats{}
	}
	sorted := make([]int64, len(degrees))
	copy(sorted, degrees)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum int64
	for _, d := range sorted {
		sum += d
	}
	n := len(sorted)
	st := DegreeStats{
		Min:    sorted[0],
		Max:    sorted[n-1],
		Mean:   float64(sum) / float64(n),
		Median: sorted[n/2],
		P99:    sorted[min(n-1, n*99/100)],
	}
	if sum > 0 {
		// Gini over the sorted degrees.
		var weighted float64
		for i, d := range sorted {
			weighted += float64(2*(i+1)-n-1) * float64(d)
		}
		st.GiniCoefficient = weighted / (float64(n) * float64(sum))
	}
	return st
}

// DegreeHistogram buckets degrees into powers of two: bucket k counts
// vertices with degree in [2^k, 2^(k+1)), bucket 0 additionally holding
// degree-0 and degree-1 vertices is split: index 0 counts degree 0, index 1
// counts degree 1, and so on.
func DegreeHistogram(degrees []int64) []int64 {
	var maxBucket int
	for _, d := range degrees {
		b := bucketOf(d)
		if b > maxBucket {
			maxBucket = b
		}
	}
	hist := make([]int64, maxBucket+1)
	for _, d := range degrees {
		hist[bucketOf(d)]++
	}
	return hist
}

func bucketOf(d int64) int {
	if d <= 0 {
		return 0
	}
	return int(math.Log2(float64(d))) + 1
}

// FormatHistogram renders a DegreeHistogram as an ASCII table for the
// datagen tool.
func FormatHistogram(hist []int64) string {
	var b strings.Builder
	var total int64
	for _, c := range hist {
		total += c
	}
	for i, c := range hist {
		if c == 0 {
			continue
		}
		lo := int64(0)
		hi := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
			hi = int64(1)<<i - 1
		}
		bar := strings.Repeat("#", int(math.Ceil(40*float64(c)/float64(total))))
		fmt.Fprintf(&b, "deg %8d-%-8d %10d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
