package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// The microbenchmarks model the skew-sensitive shape all the hot kernels
// share: per-index work proportional to a power-law degree sequence, with
// a handful of hubs holding a large fraction of the total. Static
// equal-count chunking strands the hub chunk's worker far behind the
// rest; the dynamic and edge-balanced schedulers keep workers level. Run
// via `make bench-par` (GOMAXPROCS ≥ 4 for meaningful numbers).

const benchVertices = 1 << 16

var benchWorkload struct {
	once    sync.Once
	degs    []int64
	offsets []int64
}

func skewedWorkload() ([]int64, []int64) {
	benchWorkload.once.Do(func() {
		rng := rand.New(rand.NewSource(42))
		degs := make([]int64, benchVertices)
		for i := range degs {
			// Pareto-ish tail plus rare huge hubs, front-loaded so static
			// contiguous chunks are maximally lopsided (RMAT graphs without
			// vertex permutation have exactly this sorted-by-id skew).
			degs[i] = 1 + int64(rng.ExpFloat64()*3)
			if i < benchVertices/256 {
				degs[i] += int64(rng.Intn(4096))
			}
		}
		offsets := make([]int64, len(degs)+1)
		for i, d := range degs {
			offsets[i+1] = offsets[i] + d
		}
		benchWorkload.degs = degs
		benchWorkload.offsets = offsets
	})
	return benchWorkload.degs, benchWorkload.offsets
}

// simulateVertex burns work proportional to the vertex's degree, touching
// a checksum so the loop cannot be optimized away.
func simulateVertex(deg int64, sink *int64) {
	var s int64
	for e := int64(0); e < deg; e++ {
		s += e ^ (s << 1)
	}
	*sink += s
}

func runSkewed(b *testing.B, loop func(n int, body func(lo, hi int))) {
	degs, _ := skewedWorkload()
	var total atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop(len(degs), func(lo, hi int) {
			var sink int64
			for v := lo; v < hi; v++ {
				simulateVertex(degs[v], &sink)
			}
			total.Add(sink)
		})
	}
	_ = total.Load()
}

// BenchmarkParSkewedStatic is the baseline: equal vertex counts per
// worker, hubs and all.
func BenchmarkParSkewedStatic(b *testing.B) {
	runSkewed(b, For)
}

// BenchmarkParSkewedDynamic claims fixed-grain chunks off the shared
// counter.
func BenchmarkParSkewedDynamic(b *testing.B) {
	runSkewed(b, func(n int, body func(lo, hi int)) { ForDynamic(n, 256, body) })
}

// BenchmarkParSkewedOffsets splits by the prefix-sum array so every
// worker gets an equal edge share.
func BenchmarkParSkewedOffsets(b *testing.B) {
	_, offsets := skewedWorkload()
	runSkewed(b, func(n int, body func(lo, hi int)) { ForOffsets(offsets, body) })
}

// BenchmarkParDynamicOverhead measures the scheduler's fixed cost on a
// uniform trivial body — the price a non-skewed loop pays for choosing
// ForDynamic over For.
func BenchmarkParDynamicOverhead(b *testing.B) {
	n := 1 << 20
	for i := 0; i < b.N; i++ {
		var total atomic.Int64
		ForDynamic(n, 0, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	}
}
