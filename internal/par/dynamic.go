package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultGrain is the chunk size the dynamic loops use when the caller
// passes grain <= 0. It is tuned for bodies costing tens of nanoseconds
// per index: large enough that the one atomic add per chunk is noise,
// small enough that a hub vertex's chunk does not serialize the tail.
// Kernels with heavy per-index cost (triangle counting's ~deg² work)
// should pass a smaller grain.
const DefaultGrain = 1024

// serialCutoverChunks is the minimum number of grain-sized chunks worth
// fanning out for: below it the loop runs serially, because spawning
// goroutines for a handful of chunks costs more than the imbalance it
// could fix.
const serialCutoverChunks = 4

// ForDynamic runs body over [0,n) in fixed-grain chunks that workers
// claim off a shared atomic counter — cheap work-stealing without
// per-worker deques. Chunk boundaries are the multiples of grain, so a
// body that stages results by its lo index gets a deterministic layout
// regardless of which worker claims which chunk. grain <= 0 selects
// DefaultGrain; loops under serialCutoverChunks grains run serially.
func ForDynamic(n, grain int, body func(lo, hi int)) {
	ForDynamicIndexed(n, grain, func(_, lo, hi int) { body(lo, hi) })
}

// ForDynamicIndexed is ForDynamic with the executing worker's index
// passed to the body, for kernels that reuse per-worker scratch (a
// triangle-counting bit vector, a SpGEMM accumulator map) across the many
// small chunks one worker claims. Worker indices are below NumWorkers().
func ForDynamicIndexed(n, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	sc := sched.Load()
	if grain <= 0 {
		grain = DefaultGrain
	}
	chunks := (n + grain - 1) / grain
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 || chunks < serialCutoverChunks {
		start := time.Time{}
		if sc != nil {
			start = time.Now()
		}
		body(0, 0, n)
		if sc != nil {
			observeChunk(sc, 0, 0, n, start)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if sc == nil {
				for {
					hi := int(next.Add(int64(grain)))
					lo := hi - grain
					if lo >= n {
						return
					}
					if hi > n {
						hi = n
					}
					body(w, lo, hi)
				}
			}
			for {
				// Claim latency: from asking the shared cursor for a chunk
				// to entering the body. Under contention the Add's cache-line
				// ping-pong shows up here and nowhere else.
				claimStart := time.Now()
				hi := int(next.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				start := time.Now()
				sc.ClaimNS.Record(w, start.Sub(claimStart).Nanoseconds())
				body(w, lo, hi)
				observeChunk(sc, w, lo, hi, start)
			}
		}(w)
	}
	wg.Wait()
}
