// Command graphserve is the always-on multi-tenant graph query service:
// it loads graphs into epoch-versioned snapshots once and serves
// PageRank / BFS / connected-components / triangle-count / Datalog
// queries over HTTP while /delta keeps ingesting edge batches.
//
// Usage:
//
//	graphserve -addr :8090 -scale 12                 # serve two RMAT graphs
//	graphserve -addr :8090 -snapshot-dir /tmp/snaps  # persist epochs on shutdown
//	graphserve -addr :8090 -snapshot-dir /tmp/snaps -warm-start
//	graphserve -loadgen -url http://127.0.0.1:8090 -duration 2s
//
// Query examples once serving:
//
//	curl 'http://127.0.0.1:8090/query/pagerank?graph=social&iters=10&k=3'
//	curl 'http://127.0.0.1:8090/query/bfs?graph=web&source=0' -H 'X-Tenant: alice'
//	curl -X POST http://127.0.0.1:8090/delta -d '{"graph":"social","edges":[[1,2],[3,4]]}'
//	curl http://127.0.0.1:8090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
	"graphmaze/internal/obs"
	"graphmaze/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address (host:port; port 0 picks a free one)")
		scale     = flag.Int("scale", 12, "RMAT scale of the built-in graphs (2^scale vertices)")
		edgef     = flag.Int("edgefactor", 8, "RMAT edge factor (edges per vertex)")
		seed      = flag.Int64("seed", 42, "RMAT seed")
		workers   = flag.Int("workers", 0, "kernel pool workers (0 = GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2x workers)")
		queue     = flag.Int("queue-depth", 64, "admission queue depth; beyond it requests shed with 429")
		cacheN    = flag.Int("cache-entries", 512, "result cache capacity (entries)")
		snapDir   = flag.String("snapshot-dir", "", "directory for persisted epoch snapshots (saved on clean shutdown)")
		warmStart = flag.Bool("warm-start", false, "resume graphs from -snapshot-dir instead of rebuilding from edge lists")

		loadgen  = flag.Bool("loadgen", false, "run as load generator against -url instead of serving")
		url      = flag.String("url", "http://127.0.0.1:8090", "loadgen: server base URL")
		duration = flag.Duration("duration", 2*time.Second, "loadgen: run length")
		requests = flag.Int64("requests", 0, "loadgen: stop after this many requests instead of -duration")
		tenants  = flag.Int("tenants", 8, "loadgen: simulated tenant population (Zipf-skewed)")
		conc     = flag.Int("concurrency", 8, "loadgen: client goroutines")
		deltaIv  = flag.Duration("delta-every", 0, "loadgen: post a mutation batch at this cadence (0 = none)")
		minQPS   = flag.Float64("min-qps", 0, "loadgen: exit nonzero if measured QPS falls below this")
	)
	flag.Parse()

	if *loadgen {
		os.Exit(runLoadgen(*url, *duration, *requests, *tenants, *conc, *deltaIv, *minQPS))
	}
	os.Exit(runServe(serveOpts{
		addr: *addr, scale: *scale, edgef: *edgef, seed: *seed,
		workers: *workers, inflight: *inflight, queue: *queue, cacheN: *cacheN,
		snapDir: *snapDir, warmStart: *warmStart,
	}))
}

type serveOpts struct {
	addr                             string
	scale, edgef                     int
	seed                             int64
	workers, inflight, queue, cacheN int
	snapDir                          string
	warmStart                        bool
}

// builtinGraphs describes the two graphs the server always hosts: a
// symmetrized "social" graph (supports triangle counting) and a directed
// "web" graph, both Graph500 RMAT.
var builtinGraphs = []struct {
	name      string
	symmetric bool
}{
	{"social", true},
	{"web", false},
}

func runServe(o serveOpts) int {
	reg := obs.NewRegistry()
	sampler := obs.StartSampler(reg, obs.DefaultSampleInterval)
	defer sampler.Stop()

	srv := serve.New(serve.Config{
		Workers:      o.workers,
		MaxInFlight:  o.inflight,
		QueueDepth:   o.queue,
		CacheEntries: o.cacheN,
		Registry:     reg,
	})
	defer srv.Close()

	for _, bg := range builtinGraphs {
		v, how, err := loadGraph(o, bg.name, bg.symmetric)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphserve: loading %s: %v\n", bg.name, err)
			return 1
		}
		if err := srv.AddGraph(bg.name, v); err != nil {
			fmt.Fprintf(os.Stderr, "graphserve: %v\n", err)
			return 1
		}
		snap := v.Current()
		fmt.Printf("graph %-8s %8d vertices %10d edges  epoch %d  (%s)\n",
			bg.name, snap.NumVertices(), snap.CSR().NumEdges(), snap.Epoch(), how)
	}

	ln, err := obs.ServeHandler(o.addr, srv.Handler())
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphserve: listen %s: %v\n", o.addr, err)
		return 1
	}
	fmt.Printf("serving on http://%s (metrics at /metrics, queries at /query/<kind>)\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := ln.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "graphserve: closing listener: %v\n", err)
		return 1
	}
	if o.snapDir != "" {
		if err := saveSnapshots(srv, o.snapDir); err != nil {
			fmt.Fprintf(os.Stderr, "graphserve: %v\n", err)
			return 1
		}
	}
	fmt.Println("clean shutdown")
	return 0
}

// loadGraph warm-starts the named graph from its persisted snapshot when
// asked (and available), else builds it from a fresh RMAT edge list.
func loadGraph(o serveOpts, name string, symmetric bool) (*graph.Versioned, string, error) {
	opts := graph.DeltaOptions{Symmetrize: symmetric, DropSelfLoops: true}
	if o.warmStart {
		if o.snapDir == "" {
			return nil, "", fmt.Errorf("-warm-start needs -snapshot-dir")
		}
		path := snapshotPath(o.snapDir, name)
		v, err := serve.WarmStart(path, opts)
		if err != nil {
			return nil, "", fmt.Errorf("warm start from %s: %w", path, err)
		}
		return v, "warm start: " + path, nil
	}
	edges, err := gen.RMAT(gen.Graph500Config(o.scale, o.edgef, o.seed+int64(len(name))))
	if err != nil {
		return nil, "", err
	}
	orientation := graph.KeepDirection
	if symmetric {
		orientation = graph.Symmetrize
	}
	b := graph.NewBuilder(uint32(1) << uint(o.scale))
	b.AddEdges(edges)
	csr, err := b.Build(graph.BuildOptions{
		Orientation:   orientation,
		Dedup:         true,
		DropSelfLoops: true,
		SortAdjacency: true,
	})
	if err != nil {
		return nil, "", err
	}
	v, err := graph.NewVersioned(csr, opts)
	if err != nil {
		return nil, "", err
	}
	return v, fmt.Sprintf("built from RMAT scale %d", o.scale), nil
}

func snapshotPath(dir, name string) string {
	return filepath.Join(dir, name+".snap")
}

// saveSnapshots persists every graph's current epoch for a later
// -warm-start.
func saveSnapshots(srv *serve.Server, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, bg := range builtinGraphs {
		v, ok := srv.Graph(bg.name)
		if !ok {
			continue
		}
		snap := v.Current()
		path := snapshotPath(dir, bg.name)
		if err := serve.SaveSnapshotFile(path, snap); err != nil {
			return fmt.Errorf("saving %s: %w", path, err)
		}
		fmt.Printf("saved %s epoch %d to %s\n", bg.name, snap.Epoch(), path)
	}
	return nil
}

func runLoadgen(url string, duration time.Duration, requests int64, tenants, conc int, deltaIv time.Duration, minQPS float64) int {
	targets := make([]serve.GraphTarget, len(builtinGraphs))
	for i, bg := range builtinGraphs {
		targets[i] = serve.GraphTarget{Name: bg.name, Symmetric: bg.symmetric}
	}
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:       url,
		Graphs:        targets,
		Tenants:       tenants,
		Concurrency:   conc,
		Duration:      duration,
		Requests:      requests,
		DeltaInterval: deltaIv,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphserve: loadgen: %v\n", err)
		return 1
	}
	rep.Format(os.Stdout)
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "graphserve: loadgen saw %d errors\n", rep.Errors)
		return 1
	}
	if minQPS > 0 && rep.QPS < minQPS {
		fmt.Fprintf(os.Stderr, "graphserve: measured %.0f qps, below -min-qps %.0f\n", rep.QPS, minQPS)
		return 1
	}
	return 0
}
