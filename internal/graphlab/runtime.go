// Package graphlab reimplements GraphLab's programming model (paper §3):
// synchronous Gather-Apply-Scatter vertex programs over a 1-D vertex
// partitioning with replication of high-degree vertices, communicating
// through TCP sockets. Algorithms are written as vertex programs against
// the generic runtime in this file; the per-edge abstraction cost (closure
// calls, generic accumulators) is the realistic price of the model that
// the paper measures at 3–9× native.
package graphlab

import (
	"errors"
	"fmt"
	"time"

	"graphmaze/internal/backend"
	"graphmaze/internal/bitvec"
	"graphmaze/internal/cluster"
	"graphmaze/internal/graph"
	"graphmaze/internal/trace"
)

// Activation says which vertices a program wants scheduled next round.
type Activation int

const (
	// ActivateNone schedules nothing; the vertex goes quiet.
	ActivateNone Activation = iota
	// ActivateNeighbors schedules the vertex's out-neighbours.
	ActivateNeighbors
	// ActivateSelf keeps the vertex itself scheduled.
	ActivateSelf
)

// Spec is a synchronous GAS vertex program. V is the vertex value type and
// G the gather accumulator.
type Spec[V, G any] struct {
	// Init produces a vertex's initial value.
	Init func(id uint32) V
	// GatherZero is the accumulator identity.
	GatherZero func() G
	// Gather folds one in-edge (src → this vertex) into the accumulator.
	// srcOutDeg is src's out-degree (GraphLab exposes adjacent edge
	// metadata to the gather).
	Gather func(acc G, src uint32, srcVal V, srcOutDeg int64, w float32) G
	// Apply computes the vertex's new value from the gathered accumulator
	// (hasGather is false for vertices with no in-edges) and reports
	// whether the value changed plus what to activate.
	Apply func(id uint32, old V, acc G, hasGather bool) (V, bool, Activation)
	// MaxIterations bounds the rounds; 0 means run to quiescence.
	MaxIterations int
	// InitialActive lists the initially scheduled vertices; nil means all.
	InitialActive []uint32
	// ValueBytes models the wire size of V for ghost synchronization.
	ValueBytes int
	// Tracer, when non-nil, receives one span per sweep round with the
	// number of vertices whose Apply changed a value.
	Tracer *trace.Tracer
}

// runResult carries the final vertex values and round count.
type runResult[V any] struct {
	vals   []V
	rounds int
}

// runLocal executes the program on the host: each round gathers over
// in-edges of active vertices in parallel, applies, and schedules
// (GraphLab's synchronous engine uses every core). The sweep runs on the
// shared backend pool with persistent scratch — staged values and a
// byte-granular changed flag are written at distinct vertex indices by
// concurrent workers, and the next-round active set is claimed with
// atomic bit sets — so steady-state rounds do not allocate.
func runLocal[V, G any](g *graph.CSR, in *graph.CSR, spec Spec[V, G]) runResult[V] {
	n := g.NumVertices
	outDeg := g.OutDegrees()
	vals := make([]V, n)
	for i := range vals {
		vals[i] = spec.Init(uint32(i))
	}
	active := bitvec.New(n)
	if spec.InitialActive == nil {
		for v := uint32(0); v < n; v++ {
			active.Set(v)
		}
	} else {
		for _, v := range spec.InitialActive {
			active.Set(v)
		}
	}
	anyActive := active.Count() > 0

	pool := backend.NewPool(0)
	defer pool.Close()
	pool.SetTracer(spec.Tracer)
	staged := make([]V, n)
	changed := make([]byte, n)
	nextActive := bitvec.New(n)
	// The sweep's per-vertex cost is the in-degree gather plus the
	// out-degree scatter — skewed on power-law graphs, and further warped
	// by the active set — so chunks are claimed dynamically. The body is
	// built once; active/nextActive swap by variable, which the closure
	// observes.
	sweep := backend.NewSweep(pool, int(n), 0, func(lo, hi int) {
		for v := uint32(lo); v < uint32(hi); v++ {
			if !active.Get(v) {
				continue
			}
			acc := spec.GatherZero()
			row, wts := in.Neighbors(v), in.EdgeWeights(v)
			for i, src := range row {
				var w float32 = 1
				if wts != nil {
					w = wts[i]
				}
				acc = spec.Gather(acc, src, vals[src], outDeg[src], w)
			}
			nv, didChange, act := spec.Apply(v, vals[v], acc, len(row) > 0)
			if didChange {
				// Defer writes so every gather this round sees old values
				// (synchronous engine semantics).
				staged[v] = nv
				changed[v] = 1
			}
			switch act {
			case ActivateSelf:
				nextActive.SetAtomic(v)
			case ActivateNeighbors:
				for _, t := range g.Neighbors(v) {
					nextActive.SetAtomic(t)
				}
			}
		}
	})

	rounds := 0
	// changedHist tracks how many vertices each sweep actually moved — the
	// convergence-shape distribution behind the sweep spans.
	changedHist := spec.Tracer.Hist("graphlab.sweep.changed")
	for anyActive {
		if spec.MaxIterations > 0 && rounds >= spec.MaxIterations {
			break
		}
		rounds++
		sweepSpan := spec.Tracer.Begin("graphlab.sweep", "sweep").Arg("round", float64(rounds))
		nextActive.Reset()
		sweep.Run()
		// Serial apply scan: commit staged values, count and clear flags.
		changedCount := 0
		for v, ch := range changed {
			if ch != 0 {
				vals[v] = staged[v]
				changed[v] = 0
				changedCount++
			}
		}
		sweepSpan.Arg("changed", float64(changedCount)).End()
		changedHist.Record(0, int64(changedCount))
		active, nextActive = nextActive, active
		anyActive = active.Count() > 0
	}
	return runResult[V]{vals: vals, rounds: rounds}
}

// ghostPlan precomputes, for every owner node s and consumer node d, the
// sorted vertex ids owned by s whose values d's gathers read.
type ghostPlan struct {
	part    *graph.Partition1D
	sendIDs [][][]uint32
}

func buildGhostPlan(g *graph.CSR, part *graph.Partition1D) *ghostPlan {
	nodes := part.NumParts
	need := make([]map[uint32]struct{}, nodes*nodes)
	for v := uint32(0); v < g.NumVertices; v++ {
		s := part.Owner(v)
		for _, t := range g.Neighbors(v) {
			d := part.Owner(t)
			if d == s {
				continue
			}
			idx := s*nodes + d
			if need[idx] == nil {
				need[idx] = make(map[uint32]struct{})
			}
			need[idx][v] = struct{}{}
		}
	}
	plan := &ghostPlan{part: part, sendIDs: make([][][]uint32, nodes)}
	for s := 0; s < nodes; s++ {
		plan.sendIDs[s] = make([][]uint32, nodes)
		for d := 0; d < nodes; d++ {
			m := need[s*nodes+d]
			if len(m) == 0 {
				continue
			}
			ids := make([]uint32, 0, len(m))
			for v := range m {
				ids = append(ids, v)
			}
			sortIDs(ids)
			plan.sendIDs[s][d] = ids
		}
	}
	return plan
}

func sortIDs(ids []uint32) {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// runCluster executes the program on a simulated cluster: per round each
// node gathers and applies its owned active vertices, then pushes changed
// boundary values to consumers (GraphLab's ghost synchronization, with
// local reduction so each value crosses each node pair at most once —
// the "limited form of compression" of §6.1.1). GraphLab ships no delta
// coding: every ghost update costs 4 id bytes + ValueBytes.
func runCluster[V, G any](g *graph.CSR, in *graph.CSR, spec Spec[V, G], c *cluster.Cluster, replicated *graph.ReplicatedPartition) (runResult[V], error) {
	part := replicated.Base
	n := g.NumVertices
	outDeg := g.OutDegrees()
	vals := make([]V, n)
	for i := range vals {
		vals[i] = spec.Init(uint32(i))
	}
	plan := buildGhostPlan(g, part)

	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := in.Offsets[hi] - in.Offsets[lo]
		var ghost int64
		for s := 0; s < c.Nodes(); s++ {
			ghost += int64(len(plan.sendIDs[s][node])) * int64(4+spec.ValueBytes)
		}
		c.SetBaselineMemory(node, edges*8+int64(hi-lo)*int64(spec.ValueBytes+16)+ghost)
	}

	active := make([]bool, n)
	anyActive := false
	if spec.InitialActive == nil {
		for i := range active {
			active[i] = true
		}
		anyActive = n > 0
	} else {
		for _, v := range spec.InitialActive {
			active[v] = true
			anyActive = true
		}
	}

	// Round-persistent scratch, cleared (not reallocated) per round.
	changed := make([]bool, n)
	staged := make([]V, n)
	nextActive := make([]bool, n)
	rounds := 0
	for anyActive {
		if spec.MaxIterations > 0 && rounds >= spec.MaxIterations {
			break
		}
		rounds++
		for i := range nextActive {
			nextActive[i] = false
		}
		for i := range changed {
			changed[i] = false
		}
		// Synchronous engine: stage values so every node's gathers observe
		// the previous round.
		copy(staged, vals)
		nextAny := false
		roundStart := c.VirtualSeconds()
		err := c.RunPhase(func(node int) error {
			lo, hi := part.Range(node)
			for v := lo; v < hi; v++ {
				if !active[v] {
					continue
				}
				acc := spec.GatherZero()
				row, wts := in.Neighbors(v), in.EdgeWeights(v)
				for i, src := range row {
					var w float32 = 1
					if wts != nil {
						w = wts[i]
					}
					acc = spec.Gather(acc, src, vals[src], outDeg[src], w)
				}
				nv, didChange, act := spec.Apply(v, vals[v], acc, len(row) > 0)
				if didChange {
					staged[v] = nv
					changed[v] = true
				}
				switch act {
				case ActivateSelf:
					nextActive[v] = true
					nextAny = true
				case ActivateNeighbors:
					for _, t := range g.Neighbors(v) {
						nextActive[t] = true
					}
					if g.Degree(v) > 0 {
						nextAny = true
					}
				}
			}
			// Ghost sync: changed boundary values flow to consumers.
			for d := 0; d < c.Nodes(); d++ {
				ids := plan.sendIDs[node][d]
				if len(ids) == 0 {
					continue
				}
				var count int64
				for _, v := range ids {
					if changed[v] {
						count++
					}
				}
				if count > 0 {
					// Values travel as (id, value) pairs; replicated
					// vertices instead ship a partial aggregate once.
					c.Account(node, count*int64(4+spec.ValueBytes), 1)
				}
			}
			// Scheduling/termination control traffic.
			c.Account(node, 4, 1)
			return nil
		})
		if err != nil {
			return runResult[V]{}, err
		}
		var changedCount float64
		for _, ch := range changed {
			if ch {
				changedCount++
			}
		}
		spec.Tracer.RecordVirtual(trace.PidEngine, "graphlab.sweep",
			fmt.Sprintf("sweep %d", rounds), roundStart, c.VirtualSeconds()-roundStart,
			map[string]float64{"changed": changedCount})
		copy(vals, staged)
		active, nextActive = nextActive, active
		anyActive = nextAny
	}
	return runResult[V]{vals: vals, rounds: rounds}, nil
}

// newCluster builds the engine's cluster with GraphLab's socket layer.
func newCluster(cfg cluster.Config) (*cluster.Cluster, error) {
	if cfg.Comm.Bandwidth == 0 {
		cfg.Comm = cluster.IPoIBSockets()
	}
	return cluster.New(cfg)
}

// errNeedGraph guards nil inputs in engine entry points.
var errNeedGraph = errors.New("graphlab: nil graph")

// measure wraps a local run with wall-clock timing.
func measure[T any](fn func() T) (T, float64) {
	start := time.Now()
	out := fn()
	return out, time.Since(start).Seconds()
}
