// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array on stdout, so benchmark runs can be committed
// and diffed as data:
//
//	go test -bench 'Skewed' -run '^$' ./internal/par | go run ./cmd/benchjson > BENCH_par.json
//
// Each benchmark result line becomes one object holding the benchmark
// name (sub-benchmark path and GOMAXPROCS suffix intact), iteration
// count, ns/op, and any extra metrics the benchmark reported (B/op,
// allocs/op, custom ReportMetric units). Context lines (goos, goarch,
// pkg, cpu) are captured once into every object emitted under that
// header.
//
// With -diff, benchjson instead compares two such JSON files and exits
// nonzero when the new run regressed past the threshold:
//
//	go run ./cmd/benchjson -diff -threshold 1.25 BENCH_par.json bench-new.json
//
// Benchmarks are matched by name with the trailing -<GOMAXPROCS> suffix
// stripped, so runs from machines with different core counts still pair
// up. A ns/op regression is new > old·threshold; an allocs/op regression
// additionally tolerates +0.5 alloc of noise. Benchmarks present in only
// one file are reported but never fail the diff.
//
// Latency-quantile metrics — the pN-ns/op values benchmarks emit via
// ReportMetric from obs histograms (p50-ns/op, p99-ns/op, ...) — are
// compared under their own -quantile-threshold, since tail quantiles are
// noisier than means. A quantile present in only one of the two files
// (e.g. the old baseline predates instrumentation) is reported as skipped
// and never fails the diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two benchmark JSON files (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 1.25, "with -diff: fail when new ns/op or allocs/op exceeds old by this factor")
	qThreshold := flag.Float64("quantile-threshold", 2.0, "with -diff: fail when a pN-ns/op quantile metric exceeds old by this factor")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *qThreshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]result, error) {
	results := []result{}
	var pkg, cpu string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name iterations value unit [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Package: pkg, CPU: cpu, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = val
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// baseName strips the trailing -<GOMAXPROCS> suffix go test appends to
// parallel benchmark names, so runs from different machines match.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func loadResults(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// diffLine is one matched benchmark's comparison.
type diffLine struct {
	name      string
	oldNs     float64
	newNs     float64
	oldAllocs float64
	newAllocs float64
	hasAllocs bool
	regressed bool
	quants    []quantDelta
	qSkipped  []string
}

// quantDelta is one matched pN-ns/op quantile metric's comparison.
type quantDelta struct {
	unit      string
	oldV      float64
	newV      float64
	regressed bool
}

// isQuantileMetric reports whether a metric unit is a latency-quantile
// field: "p" followed by digits then "-ns/op" (p50-ns/op, p999-ns/op).
func isQuantileMetric(unit string) bool {
	if !strings.HasPrefix(unit, "p") || !strings.HasSuffix(unit, "-ns/op") {
		return false
	}
	digits := unit[1 : len(unit)-len("-ns/op")]
	if digits == "" {
		return false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// quantileUnits returns the sorted union of quantile metric units present
// in either result.
func quantileUnits(or, nr result) []string {
	set := map[string]bool{}
	for unit := range or.Metrics {
		if isQuantileMetric(unit) {
			set[unit] = true
		}
	}
	for unit := range nr.Metrics {
		if isQuantileMetric(unit) {
			set[unit] = true
		}
	}
	units := make([]string, 0, len(set))
	for unit := range set {
		units = append(units, unit)
	}
	sort.Strings(units)
	return units
}

// runDiff compares old and new benchmark files, prints a per-benchmark
// delta table to w, and reports whether any matched benchmark regressed
// past the threshold (qThreshold for pN-ns/op quantile metrics).
func runDiff(w io.Writer, oldPath, newPath string, threshold, qThreshold float64) (bool, error) {
	oldRs, err := loadResults(oldPath)
	if err != nil {
		return false, err
	}
	newRs, err := loadResults(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]result, len(oldRs))
	for _, r := range oldRs {
		oldBy[baseName(r.Name)] = r
	}

	var lines []diffLine
	matched := make(map[string]bool)
	for _, nr := range newRs {
		name := baseName(nr.Name)
		or, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "new only: %s (%.0f ns/op)\n", name, nr.NsPerOp)
			continue
		}
		matched[name] = true
		l := diffLine{name: name, oldNs: or.NsPerOp, newNs: nr.NsPerOp}
		if oa, ok := or.Metrics["allocs/op"]; ok {
			if na, ok := nr.Metrics["allocs/op"]; ok {
				l.oldAllocs, l.newAllocs, l.hasAllocs = oa, na, true
			}
		}
		if l.newNs > l.oldNs*threshold {
			l.regressed = true
		}
		// Allocation counts are near-deterministic: tolerate only the
		// threshold factor plus half an allocation of noise.
		if l.hasAllocs && l.newAllocs > l.oldAllocs*threshold+0.5 {
			l.regressed = true
		}
		for _, unit := range quantileUnits(or, nr) {
			ov, oOK := or.Metrics[unit]
			nv, nOK := nr.Metrics[unit]
			if !oOK || !nOK {
				l.qSkipped = append(l.qSkipped, unit)
				continue
			}
			q := quantDelta{unit: unit, oldV: ov, newV: nv}
			if nv > ov*qThreshold {
				q.regressed = true
				l.regressed = true
			}
			l.quants = append(l.quants, q)
		}
		lines = append(lines, l)
	}
	for _, or := range oldRs {
		if name := baseName(or.Name); !matched[name] {
			fmt.Fprintf(w, "old only: %s (%.0f ns/op)\n", name, or.NsPerOp)
		}
	}
	if len(lines) == 0 {
		fmt.Fprintln(w, "benchjson: no benchmarks in common; nothing to compare")
		return false, nil
	}

	anyRegressed := false
	for _, l := range lines {
		ratio := 0.0
		if l.oldNs > 0 {
			ratio = l.newNs / l.oldNs
		}
		status := "ok"
		if l.regressed {
			status = "REGRESSED"
			anyRegressed = true
		}
		fmt.Fprintf(w, "%-60s %12.0f -> %12.0f ns/op (%5.2fx)", l.name, l.oldNs, l.newNs, ratio)
		if l.hasAllocs {
			fmt.Fprintf(w, " %8.0f -> %8.0f allocs/op", l.oldAllocs, l.newAllocs)
		}
		fmt.Fprintf(w, "  %s\n", status)
		for _, q := range l.quants {
			qs := "ok"
			if q.regressed {
				qs = "REGRESSED"
			}
			fmt.Fprintf(w, "%-60s %12.0f -> %12.0f %s  %s\n", "  "+l.name, q.oldV, q.newV, q.unit, qs)
		}
		for _, unit := range l.qSkipped {
			fmt.Fprintf(w, "%-60s %s present in one file only; skipped\n", "  "+l.name, unit)
		}
	}
	if anyRegressed {
		fmt.Fprintf(w, "benchjson: regression past %.2fx threshold\n", threshold)
	}
	return anyRegressed, nil
}
