package socialite

import (
	"fmt"
	"time"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
	"graphmaze/internal/trace"
)

// Engine is the SociaLite-model engine. The network-optimized variant uses
// multiple sockets per node pair and batches head-update transfers — the
// §6.1.3 improvements this paper contributed to SociaLite (Table 7); the
// unoptimized variant models the published system before those changes.
type Engine struct {
	netOptimized bool
}

var _ core.Engine = (*Engine)(nil)

// New returns the network-optimized SociaLite engine (the configuration
// the paper's results use).
func New() *Engine { return &Engine{netOptimized: true} }

// NewUnoptimized returns the pre-optimization engine: single socket pairs
// and per-tuple head-update messages (Table 7's "before" column).
func NewUnoptimized() *Engine { return &Engine{netOptimized: false} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "SociaLite" }

// Capabilities implements core.Engine.
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{MultiNode: true, SGD: false, ProgrammingModel: "datalog"}
}

func (e *Engine) newCluster(cfg cluster.Config) (*cluster.Cluster, error) {
	if cfg.Comm.Bandwidth == 0 {
		if e.netOptimized {
			cfg.Comm = cluster.MultiSocket()
		} else {
			cfg.Comm = cluster.SingleSocket()
		}
	}
	return cluster.New(cfg)
}

// accountTraffic charges one node's head-update (or table-transfer)
// traffic. The optimized engine merges communication data for batch
// processing — roughly one message per destination shard (§6.1.3); the
// unoptimized engine flushes small socket buffers, paying per-4KB message
// overheads on its single socket pair.
func (e *Engine) accountTraffic(c *cluster.Cluster, node int, bytes int64, destinations int) {
	if bytes <= 0 {
		return
	}
	msgs := int64(destinations)
	if e.netOptimized {
		// Batches still flush at 64 KB.
		if chunks := bytes/(64<<10) + 1; chunks > msgs {
			msgs = chunks
		}
	} else if chunks := bytes/4096 + 1; chunks > msgs {
		msgs = chunks
	}
	if msgs < 1 {
		msgs = 1
	}
	c.Account(node, bytes, msgs)
}

func statsFrom(c *cluster.Cluster, iterations int) core.RunStats {
	rep := c.Report()
	return core.RunStats{WallSeconds: rep.SimulatedSeconds, Simulated: true, Iterations: iterations, Report: rep}
}

// PageRank implements core.Engine with the paper's distributed-optimized
// rule pair (§3.1): a seed rule and a join over RANK, OUTEDGE and OUTDEG
// with $SUM in the head.
func (e *Engine) PageRank(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices
	outEdge := NewEdgeTable("OUTEDGE", g)
	outDeg := NewVecTable("OUTDEG", n)
	for v := uint32(0); v < n; v++ {
		outDeg.Put(v, Scalar(float64(g.Degree(v))))
	}
	rank := NewVecTable("RANK", n)
	for v := uint32(0); v < n; v++ {
		rank.Put(v, Scalar(1))
	}

	// The paper's distributed-optimized rule (§3.1), compiled from source.
	// The assignment is written before the edge atom — SociaLite's planner
	// hoists source-only expressions above the edge enumeration.
	reg := NewRegistry()
	reg.Register(outEdge)
	reg.Register(outDeg)
	reg.Register(rank)
	reg.Register(NewVecTable("RANK2", n))
	rule, err := Parse(fmt.Sprintf(
		"RANK2[n]($SUM(v)) :- RANK[s](v0), OUTDEG[s](d), v = (1-%g)*v0/d, OUTEDGE[s](n).",
		opt.RandomJump), reg)
	if err != nil {
		return nil, err
	}

	runIteration := func(eval func(rule *Rule, seed func(lo, hi uint32))) error {
		rank2 := NewVecTable("RANK2", n)
		// Rebind the compiled rule to this iteration's input/output tables.
		rule.Driver.Vec.Table = rank
		rule.Head.Table = rank2
		eval(rule, func(lo, hi uint32) {
			// Seed rule: RANK2[n](r).
			for v := lo; v < hi; v++ {
				rank2.Put(v, Scalar(opt.RandomJump))
			}
		})
		rank = rank2
		return nil
	}

	if opt.Exec.Cluster == nil {
		tr := opt.Exec.Tracer()
		start := time.Now()
		for it := 0; it < opt.Iterations; it++ {
			sp := tr.Begin("socialite.rule", "rule evaluation").Arg("iter", float64(it))
			err := runIteration(func(rule *Rule, seed func(lo, hi uint32)) {
				seed(0, n)
				_, _ = EvalParallel(rule, 0, n, nil, nil, 0, false)
			})
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		return &core.PageRankResult{Ranks: vecToFloats(rank, n),
			Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}}, nil
	}

	cfg := *opt.Exec.Cluster
	if cfg.Trace == nil {
		cfg.Trace = opt.Exec.Trace
	}
	c, err := e.newCluster(cfg)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := g.Offsets[hi] - g.Offsets[lo]
		c.SetBaselineMemory(node, edges*8+int64(hi-lo)*40)
	}
	tr := c.Tracer()
	for it := 0; it < opt.Iterations; it++ {
		iterStart := c.VirtualSeconds()
		err := runIteration(func(rule *Rule, seed func(lo, hi uint32)) {
			// Seed every shard before any node folds sums across shard
			// boundaries (the seed rule is a purely local assignment).
			seed(0, n)
			_ = c.RunPhase(func(node int) error {
				lo, hi := part.Range(node)
				stats, err := EvalParallel(rule, lo, hi, nil, part.Owner, node, false)
				if err != nil {
					return err
				}
				e.accountTraffic(c, node, stats.RemoteBytes, c.Nodes()-1)
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		tr.RecordVirtual(trace.PidEngine, "socialite.rule",
			fmt.Sprintf("rule evaluation %d", it), iterStart, c.VirtualSeconds()-iterStart, nil)
	}
	return &core.PageRankResult{Ranks: vecToFloats(rank, n), Stats: statsFrom(c, opt.Iterations)}, nil
}

func vecToFloats(t *VecTable, n uint32) []float64 {
	out := make([]float64, n)
	t.ForEach(func(k uint32, v Value) { out[k] = v.S() })
	return out
}

// BFS implements core.Engine with the paper's recursive rule
//
//	BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0+1.
//
// evaluated semi-naively: each round only the delta (newly improved keys)
// drives the join (§3.1 of the companion papers [30,31]).
func (e *Engine) BFS(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	opt, err := core.CheckBFSInput(g, opt)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices
	edge := NewEdgeTable("EDGE", g)
	dist := NewVecTable("BFS", n)
	dist.Put(opt.Source, Scalar(0))

	// The paper's recursive rule, compiled from source (assignment hoisted
	// above the edge atom by the planner).
	reg := NewRegistry()
	reg.Register(edge)
	reg.Register(dist)
	rule, err := Parse("BFS(t, $MIN(d)) :- BFS(s, d0), d = d0 + 1, EDGE(s, t).", reg)
	if err != nil {
		return nil, err
	}

	finish := func(stats core.RunStats) *core.BFSResult {
		out := make([]int32, n)
		for i := range out {
			out[i] = -1
		}
		dist.ForEach(func(k uint32, v Value) { out[k] = int32(v.S()) })
		return &core.BFSResult{Distances: out, Stats: stats}
	}

	delta := []uint32{opt.Source}
	rounds := 0
	if opt.Exec.Cluster == nil {
		start := time.Now()
		// The recursive rule's shape lowers onto the backend's
		// persistent-claims expander; a round that violates the lowering's
		// preconditions re-runs on the generic evaluator, permanently.
		low, lowered := LowerBFSRule(rule)
		if lowered {
			low.SetTracer(opt.Exec.Tracer())
			defer low.Close()
		}
		for len(delta) > 0 {
			rounds++
			if lowered {
				if next, ok := low.Round(delta); ok {
					delta = next
					continue
				}
				lowered = false
			}
			stats, err := EvalParallel(rule, 0, n, delta, nil, 0, true)
			if err != nil {
				return nil, err
			}
			delta = stats.Changed
		}
		return finish(core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: rounds}), nil
	}

	c, err := e.newCluster(*opt.Exec.Cluster)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := g.Offsets[hi] - g.Offsets[lo]
		c.SetBaselineMemory(node, edges*8+int64(hi-lo)*24)
	}
	for len(delta) > 0 {
		rounds++
		var next []uint32
		err := c.RunPhase(func(node int) error {
			lo, hi := part.Range(node)
			stats, err := EvalParallel(rule, lo, hi, delta, part.Owner, node, true)
			if err != nil {
				return err
			}
			e.accountTraffic(c, node, stats.RemoteBytes, c.Nodes()-1)
			next = append(next, stats.Changed...)
			c.Account(node, 1, 1) // fixpoint check
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Deduplicate: a key may have been improved by several nodes.
		delta = dedup(next)
	}
	return finish(statsFrom(c, rounds)), nil
}

func dedup(keys []uint32) []uint32 {
	seen := make(map[uint32]bool, len(keys))
	w := 0
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			keys[w] = k
			w++
		}
	}
	return keys[:w]
}

// TriangleCount implements core.Engine with the paper's three-way join
//
//	TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z).
func (e *Engine) TriangleCount(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	opt, err := core.CheckTriangleInput(g, opt)
	if err != nil {
		return nil, err
	}
	edge := NewEdgeTable("EDGE", g)
	tri := NewVecTable("TRIANGLE", 1)
	// The paper's three-way join, verbatim (§3.2).
	reg := NewRegistry()
	reg.Register(edge)
	reg.Register(tri)
	rule, err := Parse("TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z).", reg)
	if err != nil {
		return nil, err
	}

	if opt.Exec.Cluster == nil {
		start := time.Now()
		if _, err := EvalParallel(rule, 0, g.NumVertices, nil, nil, 0, false); err != nil {
			return nil, err
		}
		count := int64(0)
		if v, ok := tri.Get(0); ok {
			count = int64(v.S())
		}
		return &core.TriangleResult{Count: count,
			Stats: core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: 1}}, nil
	}

	c, err := e.newCluster(*opt.Exec.Cluster)
	if err != nil {
		return nil, err
	}
	part, err := graph.NewPartition1D(g, c.Nodes())
	if err != nil {
		return nil, err
	}
	for node := 0; node < c.Nodes(); node++ {
		lo, hi := part.Range(node)
		edges := g.Offsets[hi] - g.Offsets[lo]
		c.SetBaselineMemory(node, edges*8+int64(hi-lo)*16)
	}
	err = c.RunPhase(func(node int) error {
		lo, hi := part.Range(node)
		// Counts aggregate into node-local partials; only the partial sum
		// crosses the network. The body join, however, ships tuples to the
		// shards holding EDGE[y] and EDGE[x]: charge 8 bytes per
		// cross-shard hop, batched per destination.
		var joinBytes int64
		if _, err := EvalParallel(rule, lo, hi, nil, part.Owner, node, false); err != nil {
			return err
		}
		for x := lo; x < hi; x++ {
			for _, y := range g.Neighbors(x) {
				if part.Owner(y) != node {
					// (x,y) ships to owner(y) for the EDGE(y,z) join, and
					// each candidate (x,z) may hop again for the check.
					joinBytes += 8 + int64(len(g.Neighbors(y)))*8
				}
			}
		}
		e.accountTraffic(c, node, joinBytes, c.Nodes()-1)
		c.Account(node, 8, 1) // count reduction
		return nil
	})
	if err != nil {
		return nil, err
	}
	count := int64(0)
	if v, ok := tri.Get(0); ok {
		count = int64(v.S())
	}
	return &core.TriangleResult{Count: count, Stats: statsFrom(c, 1)}, nil
}

// CollabFilter implements core.Engine: the user and item factor vectors
// live in tables keyed by vertex; gradient rules join the rating table
// with both factor tables and $SUM per key; apply rules assign the new
// factors. Factor tables transfer to target machines at the start of each
// iteration so the joins run locally (paper §3.2). SGD is inexpressible.
func (e *Engine) CollabFilter(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	opt, err := core.CheckCFInput(r, opt)
	if err != nil {
		return nil, err
	}
	if opt.Method == core.SGD {
		return nil, core.ErrUnsupported
	}
	k := opt.K
	userInit := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemInit := core.InitFactors(r.NumItems, k, opt.Seed+1)
	p := NewVecTable("P", r.NumUsers)
	q := NewVecTable("Q", r.NumItems)
	for u := uint32(0); u < r.NumUsers; u++ {
		p.Put(u, toValue(userInit[int(u)*k:int(u+1)*k]))
	}
	for v := uint32(0); v < r.NumItems; v++ {
		q.Put(v, toValue(itemInit[int(v)*k:int(v+1)*k]))
	}
	rating := NewEdgeTable("RATING", r.ByUser)
	ratingT := NewEdgeTable("RATINGT", r.ByItem)

	gradExpr := func(lambda float64) func(env *Env) Value {
		return func(env *Env) Value {
			self, other, rw := env.Vals[1], env.Vals[2], env.Vals[0].S()
			dot := 0.0
			for i := range self {
				dot += self[i] * other[i]
			}
			out := make(Value, len(self))
			for i := range out {
				out[i] = (rw-dot)*other[i] - lambda*self[i]
			}
			return out
		}
	}
	makeGradRule := func(name string, drv *EdgeTable, selfT, otherT, gradT *VecTable, lambda float64) *Rule {
		return &Rule{
			Name: name, KeySlots: 2, ValSlots: 4,
			Driver: Driver{Edge: &EdgeAtom{Table: drv, SrcSlot: 0, DstSlot: 1, WeightSlot: 0}},
			Atoms: []Atom{
				{Vec: &VecAtom{Table: selfT, KeySlot: 0, ValSlot: 1}},
				{Vec: &VecAtom{Table: otherT, KeySlot: 1, ValSlot: 2}},
			},
			Lets: []Let{{OutSlot: 3, F: gradExpr(lambda)}},
			Head: Head{Table: gradT, Agg: AggSum, KeySlot: 0, ValSlot: 3},
		}
	}
	makeApplyRule := func(name string, factorT, gradT, outT *VecTable, gamma float64) *Rule {
		return &Rule{
			Name: name, KeySlots: 1, ValSlots: 3,
			Driver: Driver{Vec: &VecAtom{Table: factorT, KeySlot: 0, ValSlot: 0}},
			Atoms:  []Atom{{Vec: &VecAtom{Table: gradT, KeySlot: 0, ValSlot: 1}}},
			Lets: []Let{{OutSlot: 2, F: func(env *Env) Value {
				f, gr := env.Vals[0], env.Vals[1]
				out := make(Value, len(f))
				for i := range out {
					out[i] = f[i] + gamma*gr[i]
				}
				return out
			}}},
			Head: Head{Table: outT, Agg: AggAssign, KeySlot: 0, ValSlot: 2},
		}
	}

	var c *cluster.Cluster
	var userPart, itemPart *graph.Partition1D
	if opt.Exec.Cluster != nil {
		c, err = e.newCluster(*opt.Exec.Cluster)
		if err != nil {
			return nil, err
		}
		userPart, err = graph.NewPartition1D(r.ByUser, c.Nodes())
		if err != nil {
			return nil, err
		}
		itemPart, err = graph.NewPartition1D(r.ByItem, c.Nodes())
		if err != nil {
			return nil, err
		}
		for node := 0; node < c.Nodes(); node++ {
			ulo, uhi := userPart.Range(node)
			ratings := r.ByUser.Offsets[uhi] - r.ByUser.Offsets[ulo]
			c.SetBaselineMemory(node, ratings*12+int64(uhi-ulo)*int64(k)*8+int64(r.NumItems)*int64(k)*8/int64(c.Nodes()))
		}
	}

	gamma := opt.LearningRate
	rmse := make([]float64, 0, opt.Iterations)
	start := time.Now()

	evalRules := func(gradPRule, gradQRule, applyP, applyQ *Rule) error {
		for _, rule := range []*Rule{gradPRule, gradQRule, applyP, applyQ} {
			if err := rule.Validate(); err != nil {
				return err
			}
		}
		if c == nil {
			if _, err := EvalParallel(gradPRule, 0, r.NumUsers, nil, nil, 0, false); err != nil {
				return err
			}
			if _, err := EvalParallel(gradQRule, 0, r.NumItems, nil, nil, 0, false); err != nil {
				return err
			}
			if _, err := EvalParallel(applyP, 0, r.NumUsers, nil, nil, 0, false); err != nil {
				return err
			}
			_, err := EvalParallel(applyQ, 0, r.NumItems, nil, nil, 0, false)
			return err
		}
		// Iteration-start table transfer (paper §3.2): each node pulls the
		// Q rows its users rated and the P rows its items were rated by.
		if err := c.RunPhase(func(node int) error {
			ulo, uhi := userPart.Range(node)
			items := make(map[uint32]bool)
			for u := ulo; u < uhi; u++ {
				for _, v := range r.ByUser.Neighbors(u) {
					if itemPart.Owner(v) != node {
						items[v] = true
					}
				}
			}
			ilo, ihi := itemPart.Range(node)
			users := make(map[uint32]bool)
			for v := ilo; v < ihi; v++ {
				for _, u := range r.ByItem.Neighbors(v) {
					if userPart.Owner(u) != node {
						users[u] = true
					}
				}
			}
			bytes := int64(len(items)+len(users)) * int64(4+8*k)
			e.accountTraffic(c, node, bytes, 2*(c.Nodes()-1))
			return nil
		}); err != nil {
			return err
		}
		// Gradients and applies run shard-local after the transfer.
		if err := c.RunPhase(func(node int) error {
			ulo, uhi := userPart.Range(node)
			if _, err := EvalParallel(gradPRule, ulo, uhi, nil, nil, 0, false); err != nil {
				return err
			}
			ilo, ihi := itemPart.Range(node)
			_, err := EvalParallel(gradQRule, ilo, ihi, nil, nil, 0, false)
			return err
		}); err != nil {
			return err
		}
		return c.RunPhase(func(node int) error {
			ulo, uhi := userPart.Range(node)
			if _, err := EvalParallel(applyP, ulo, uhi, nil, nil, 0, false); err != nil {
				return err
			}
			ilo, ihi := itemPart.Range(node)
			_, err := EvalParallel(applyQ, ilo, ihi, nil, nil, 0, false)
			return err
		})
	}

	for it := 0; it < opt.Iterations; it++ {
		gradP := NewVecTable("GRADP", r.NumUsers)
		gradQ := NewVecTable("GRADQ", r.NumItems)
		p2 := NewVecTable("P2", r.NumUsers)
		q2 := NewVecTable("Q2", r.NumItems)
		gp := makeGradRule("gradP", rating, p, q, gradP, opt.LambdaP)
		gq := makeGradRule("gradQ", ratingT, q, p, gradQ, opt.LambdaQ)
		ap := makeApplyRule("applyP", p, gradP, p2, gamma)
		aq := makeApplyRule("applyQ", q, gradQ, q2, gamma)
		if err := evalRules(gp, gq, ap, aq); err != nil {
			return nil, err
		}
		// Users or items with no gradient rows keep their factors.
		p.ForEach(func(key uint32, val Value) {
			if _, ok := p2.Get(key); !ok {
				p2.Put(key, val)
			}
		})
		q.ForEach(func(key uint32, val Value) {
			if _, ok := q2.Get(key); !ok {
				q2.Put(key, val)
			}
		})
		p, q = p2, q2
		gamma *= opt.StepDecay
		if !opt.SkipRMSETrajectory {
			rmse = append(rmse, rmseOf(r, k, p, q))
		}
	}
	if opt.SkipRMSETrajectory {
		rmse = append(rmse, rmseOf(r, k, p, q))
	}

	userOut := make([]float32, int(r.NumUsers)*k)
	itemOut := make([]float32, int(r.NumItems)*k)
	p.ForEach(func(key uint32, val Value) {
		for d := 0; d < k; d++ {
			userOut[int(key)*k+d] = float32(val[d])
		}
	})
	q.ForEach(func(key uint32, val Value) {
		for d := 0; d < k; d++ {
			itemOut[int(key)*k+d] = float32(val[d])
		}
	})
	stats := core.RunStats{WallSeconds: time.Since(start).Seconds(), Iterations: opt.Iterations}
	if c != nil {
		stats = statsFrom(c, opt.Iterations)
	}
	return &core.CFResult{K: k, UserFactors: userOut, ItemFactors: itemOut, RMSE: rmse, Stats: stats}, nil
}

func toValue(f []float32) Value {
	out := make(Value, len(f))
	for i, x := range f {
		out[i] = float64(x)
	}
	return out
}

func rmseOf(r *graph.Bipartite, k int, p, q *VecTable) float64 {
	userF := make([]float32, int(r.NumUsers)*k)
	itemF := make([]float32, int(r.NumItems)*k)
	p.ForEach(func(key uint32, val Value) {
		for d := 0; d < k; d++ {
			userF[int(key)*k+d] = float32(val[d])
		}
	})
	q.ForEach(func(key uint32, val Value) {
		for d := 0; d < k; d++ {
			itemF[int(key)*k+d] = float32(val[d])
		}
	})
	return core.RMSE(r, k, userF, itemF)
}
