package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockRule enforces mutex discipline with the CFG forward-dataflow
// engine: every sync.Mutex/RWMutex Lock must be released on every path
// out of the function (an Unlock on the path or a defer that covers it),
// no path may Lock the same mutex twice without an intervening Unlock
// (self-deadlock), and — via per-function summaries — a struct field
// that is written under its receiver's lock in one function must not be
// written with no lock held in another. Constructor paths (New*/init, or
// writes to values constructed in the same function) are exempt from the
// guarded-field check: freshly built values are not shared yet.
type LockRule struct{}

// Name implements Rule.
func (*LockRule) Name() string { return "lock" }

// Doc implements Rule.
func (*LockRule) Doc() string {
	return "mutexes are released on every path, never double-locked, and guard their fields consistently"
}

// lockKey identifies one mutex as seen from one function: the root
// object of the receiver chain plus the field path, with read locks
// tracked separately from write locks.
type lockKey struct {
	path string
	read bool
}

func (k lockKey) describe() string {
	name := k.path
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	if k.read {
		return name + " (read lock)"
	}
	return name
}

// lockFact is the dataflow fact: the set of locks that may be held and
// the set of unlocks guaranteed to run via defer.
type lockFact struct {
	valid    bool
	held     map[lockKey]token.Pos // lock site of the (possibly) held lock
	deferred map[lockKey]bool
}

type lockLattice struct {
	p *Package
}

// Entry implements Lattice.
func (l *lockLattice) Entry() lockFact {
	return lockFact{valid: true, held: map[lockKey]token.Pos{}, deferred: map[lockKey]bool{}}
}

// Bottom implements Lattice.
func (l *lockLattice) Bottom() lockFact { return lockFact{} }

// Join implements Lattice: held is may (union), deferred is must
// (intersection).
func (l *lockLattice) Join(a, b lockFact) lockFact {
	if !a.valid {
		return b
	}
	if !b.valid {
		return a
	}
	out := lockFact{valid: true, held: map[lockKey]token.Pos{}, deferred: map[lockKey]bool{}}
	for k, pos := range a.held {
		out.held[k] = pos
	}
	for k, pos := range b.held {
		if _, ok := out.held[k]; !ok {
			out.held[k] = pos
		}
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

// Equal implements Lattice.
func (l *lockLattice) Equal(a, b lockFact) bool {
	if a.valid != b.valid || len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k := range a.held {
		if _, ok := b.held[k]; !ok {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// Transfer implements Lattice.
func (l *lockLattice) Transfer(f lockFact, n ast.Node) lockFact {
	if !f.valid {
		return f
	}
	ops := lockOpsIn(l.p, n)
	if len(ops) == 0 {
		return f
	}
	out := lockFact{valid: true, held: map[lockKey]token.Pos{}, deferred: map[lockKey]bool{}}
	for k, pos := range f.held {
		out.held[k] = pos
	}
	for k := range f.deferred {
		out.deferred[k] = true
	}
	for _, op := range ops {
		switch {
		case op.deferred && !op.lock:
			out.deferred[op.key] = true
		case op.lock:
			out.held[op.key] = op.pos
		default:
			delete(out.held, op.key)
		}
	}
	return out
}

// lockOp is one Lock/Unlock touch found in a linearized node.
type lockOp struct {
	key      lockKey
	lock     bool // Lock/RLock (vs Unlock/RUnlock)
	deferred bool
	pos      token.Pos
}

// lockOpsIn extracts the mutex operations of one shallow CFG node. A
// DeferStmt's call is the deferred op; a deferred closure is scanned for
// the unlocks it performs.
func lockOpsIn(p *Package, n ast.Node) []lockOp {
	var ops []lockOp
	record := func(call *ast.CallExpr, deferred bool) {
		if op, ok := mutexOp(p, call); ok {
			op.deferred = deferred
			ops = append(ops, op)
		}
	}
	switch s := n.(type) {
	case *ast.DeferStmt:
		record(s.Call, true)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					record(call, true)
				}
				return true
			})
		}
		return ops
	}
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			record(call, false)
		}
		return true
	})
	return ops
}

// mutexOp recognizes calls to the Lock/Unlock family of sync.Mutex and
// sync.RWMutex and resolves the receiver to a lockKey.
func mutexOp(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	var lock, read bool
	switch name {
	case "Lock":
		lock = true
	case "RLock":
		lock, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	path, ok := exprPath(p, sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: lockKey{path: path, read: read}, lock: lock, pos: call.Pos()}, true
}

// exprPath renders a selector chain (c.mu, w.inner.mu) as a stable key:
// the root object's declaration position plus the field names. Chains
// rooted in calls or indexing do not get a path (not trackable).
func exprPath(p *Package, expr ast.Expr) (string, bool) {
	var parts []string
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := p.Info.Uses[e]
			if obj == nil {
				obj = p.Info.Defs[e]
			}
			if obj == nil {
				return "", false
			}
			name := e.Name
			if len(parts) > 0 {
				for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
					parts[i], parts[j] = parts[j], parts[i]
				}
				name += "." + strings.Join(parts, ".")
			}
			return fmt.Sprintf("%d:%s", obj.Pos(), name), true
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		default:
			return "", false
		}
	}
}

// exprRoot resolves the root object of a selector chain.
func exprRoot(p *Package, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[e]; obj != nil {
				return obj
			}
			return p.Info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// fieldWrite records one struct-field write for the guarded-field
// summary.
type fieldWrite struct {
	pos     token.Pos
	fn      string
	guarded bool // a receiver-rooted lock was held at the write
	exempt  bool // constructor path: New*/init, or locally built value
}

// Check implements Rule.
func (r *LockRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	lat := &lockLattice{p: p}
	writes := make(map[types.Object][]fieldWrite)
	for _, file := range p.Files {
		funcBodies(file, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			r.checkBody(p, lat, decl, body, writes, report)
		})
	}

	// Guarded-field summaries: a field written under its receiver's lock
	// somewhere must not be written lock-free elsewhere.
	var fields []types.Object
	for obj, ws := range writes {
		guarded := false
		for _, w := range ws {
			if w.guarded {
				guarded = true
				break
			}
		}
		if guarded {
			fields = append(fields, obj)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, obj := range fields {
		guardedIn := make(map[string]bool)
		for _, w := range writes[obj] {
			if w.guarded {
				guardedIn[w.fn] = true
			}
		}
		for _, w := range writes[obj] {
			if w.guarded || w.exempt || guardedIn[w.fn] {
				continue
			}
			report(w.pos, "field %s is written without a lock here but under a lock elsewhere (e.g. in %s)",
				obj.Name(), firstKey(guardedIn))
		}
	}
}

func firstKey(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return "?"
	}
	return keys[0]
}

func (r *LockRule) checkBody(p *Package, lat *lockLattice, decl *ast.FuncDecl, body *ast.BlockStmt,
	writes map[types.Object][]fieldWrite, report func(pos token.Pos, format string, args ...any)) {
	cfg := BuildCFG(body)
	in := Solve(cfg, lat)
	fnName := decl.Name.Name

	reported := make(map[token.Pos]bool)
	constructor := strings.HasPrefix(fnName, "New") || strings.HasPrefix(fnName, "new") || fnName == "init"
	// The "Caller holds x.mu" doc convention: such helpers write guarded
	// state on behalf of a caller that took the lock, so their writes
	// count as guarded, not as violations.
	callerHolds := docSaysCallerHolds(decl.Doc)
	localSpan := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}

	for _, b := range cfg.Blocks {
		fact := in[b.Index]
		if !fact.valid {
			continue
		}
		for _, n := range b.Nodes {
			// Double-lock: a write Lock of a key that may already be held.
			for _, op := range lockOpsIn(p, n) {
				if op.lock && !op.deferred && !op.key.read {
					if prev, held := fact.held[op.key]; held && !reported[op.pos] {
						reported[op.pos] = true
						report(op.pos, "%s is locked again without an intervening Unlock (first Lock at %s): possible self-deadlock",
							op.key.describe(), p.Fset.Position(prev))
					}
				}
			}
			// Leak at return: held and not covered by a deferred unlock.
			if ret, ok := n.(*ast.ReturnStmt); ok {
				r.reportLeaks(p, fact, ret.Pos(), reported, report)
			}
			// Guarded-field summary collection.
			r.collectWrites(p, fact, n, fnName, constructor, callerHolds, localSpan, writes)
			fact = lat.Transfer(fact, n)
		}
		// Fall-off-the-end paths (no return statement) also leak.
		if last := len(b.Nodes); fact.valid {
			exitBound := false
			for _, s := range b.Succs {
				if s == cfg.Exit {
					exitBound = true
				}
			}
			if exitBound && (last == 0 || !endsControl(b.Nodes[last-1])) {
				r.reportLeaks(p, fact, body.End(), reported, report)
			}
		}
	}
}

// endsControl reports whether the node already accounts for the exit
// edge (a return or terminator call) so the fall-off check skips it.
func endsControl(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isTerminatorStmt(s)
	case ast.Stmt:
		return isTerminatorStmt(s)
	}
	return false
}

func (r *LockRule) reportLeaks(p *Package, fact lockFact, at token.Pos, reported map[token.Pos]bool,
	report func(pos token.Pos, format string, args ...any)) {
	var leaked []lockKey
	for k := range fact.held {
		if !fact.deferred[k] {
			leaked = append(leaked, k)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].path < leaked[j].path })
	for _, k := range leaked {
		if reported[at] {
			return
		}
		reported[at] = true
		report(at, "%s (locked at %s) is still held when the function returns here: Unlock on this path or defer the Unlock before any return",
			k.describe(), p.Fset.Position(fact.held[k]))
	}
}

// collectWrites records struct-field writes in n with their lock
// context for the cross-function guarded-field check.
func (r *LockRule) collectWrites(p *Package, fact lockFact, n ast.Node, fnName string,
	constructor, callerHolds bool, localSpan func(types.Object) bool, writes map[types.Object][]fieldWrite) {
	recordLHS := func(lhs ast.Expr) {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := selectedObject(p, sel)
		if obj == nil || !isStructField(obj) || isSyncType(obj.Type()) {
			return
		}
		root := exprRoot(p, sel.X)
		guarded := callerHolds
		for k := range fact.held {
			if rootOf(k.path) == rootPosOf(root) {
				guarded = true
				break
			}
		}
		writes[obj] = append(writes[obj], fieldWrite{
			pos:     sel.Pos(),
			fn:      fnName,
			guarded: guarded,
			exempt:  constructor || localSpan(root),
		})
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				recordLHS(lhs)
			}
		case *ast.IncDecStmt:
			recordLHS(s.X)
		}
		return true
	})
}

// docSaysCallerHolds recognizes the "Caller holds ..." / "caller must
// hold ..." doc-comment convention on lock-free helpers.
func docSaysCallerHolds(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := strings.ToLower(doc.Text())
	return strings.Contains(text, "caller holds") || strings.Contains(text, "caller must hold") ||
		strings.Contains(text, "callers hold")
}

// rootOf extracts the "pos" prefix of a lockKey path.
func rootOf(path string) string {
	if i := strings.IndexByte(path, ':'); i >= 0 {
		return path[:i]
	}
	return path
}

func rootPosOf(obj types.Object) string {
	if obj == nil {
		return "-"
	}
	return fmt.Sprintf("%d", obj.Pos())
}

// isStructField reports whether obj is a struct field.
func isStructField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// isSyncType reports whether t (possibly pointer) is declared in sync or
// sync/atomic — mutexes and atomic boxes manage their own discipline.
func isSyncType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}
