module graphmaze

go 1.22
