// Command graphbench reproduces the tables and figures of "Navigating the
// Maze of Graph Analytics Frameworks using Massive Graph Datasets"
// (SIGMOD 2014).
//
// Usage:
//
//	graphbench -list
//	graphbench -exp table5
//	graphbench -exp fig4 -nodes 1,4,16,64 -scale 12
//	graphbench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphmaze/internal/harness"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		scale = flag.Int("scale", 0, "override the base RMAT scale (0 = experiment default)")
		nodes = flag.String("nodes", "", "comma-separated node counts for scaling experiments")
		iters = flag.Int("iters", 0, "iterations for iterative algorithms (0 = default)")
		quick = flag.Bool("quick", false, "shrink inputs for a fast smoke run")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all          run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := harness.Options{Out: os.Stdout, Scale: *scale, Iterations: *iters, Quick: *quick}
	if *nodes != "" {
		for _, part := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "graphbench: bad -nodes entry %q\n", part)
				os.Exit(2)
			}
			opt.Nodes = append(opt.Nodes, n)
		}
	}
	if err := harness.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(1)
	}
}
