package graph

import (
	"strings"
	"testing"
)

func TestComputeDegreeStatsUniform(t *testing.T) {
	st := ComputeDegreeStats([]int64{3, 3, 3, 3})
	if st.Min != 3 || st.Max != 3 || st.Mean != 3 || st.Median != 3 {
		t.Errorf("uniform stats wrong: %+v", st)
	}
	if st.GiniCoefficient != 0 {
		t.Errorf("uniform Gini = %v, want 0", st.GiniCoefficient)
	}
}

func TestComputeDegreeStatsSkewed(t *testing.T) {
	deg := make([]int64, 100)
	deg[0] = 1000 // one hub
	for i := 1; i < 100; i++ {
		deg[i] = 1
	}
	st := ComputeDegreeStats(deg)
	if st.Max != 1000 || st.Min != 1 {
		t.Errorf("min/max wrong: %+v", st)
	}
	if st.GiniCoefficient < 0.8 {
		t.Errorf("hub graph Gini = %v, want high skew (>0.8)", st.GiniCoefficient)
	}
	if st.Median != 1 {
		t.Errorf("Median = %d, want 1", st.Median)
	}
}

func TestComputeDegreeStatsEmpty(t *testing.T) {
	st := ComputeDegreeStats(nil)
	if st.Max != 0 || st.Mean != 0 {
		t.Errorf("empty stats = %+v, want zero value", st)
	}
}

func TestDegreeHistogram(t *testing.T) {
	hist := DegreeHistogram([]int64{0, 1, 1, 2, 3, 4, 8})
	// bucket 0: degree 0 → 1 vertex; bucket 1: degree 1 → 2;
	// bucket 2: degrees 2-3 → 2; bucket 3: degrees 4-7 → 1; bucket 4: 8 → 1.
	want := []int64{1, 2, 2, 1, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, hist[i], want[i])
		}
	}
}

func TestFormatHistogram(t *testing.T) {
	out := FormatHistogram([]int64{2, 3, 0, 1})
	if !strings.Contains(out, "deg") {
		t.Errorf("unexpected format: %q", out)
	}
	// Zero buckets are skipped: 3 non-zero rows.
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("rows = %d, want 3: %q", got, out)
	}
}

func TestGiniMonotonicity(t *testing.T) {
	flat := ComputeDegreeStats([]int64{5, 5, 5, 5}).GiniCoefficient
	mild := ComputeDegreeStats([]int64{2, 4, 6, 8}).GiniCoefficient
	steep := ComputeDegreeStats([]int64{1, 1, 1, 17}).GiniCoefficient
	if !(flat < mild && mild < steep) {
		t.Errorf("Gini not monotone in skew: flat=%v mild=%v steep=%v", flat, mild, steep)
	}
}
