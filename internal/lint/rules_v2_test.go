package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fixtureParSrc is a stand-in for graphmaze/internal/par with the same
// package name and For*-family shape: the det and hotalloc rules match
// on the imported package's name, so fixtures do not need the real
// scheduler.
const fixtureParSrc = `// Package par is the fixture scheduler.
package par

// ForDynamic runs f over dynamic chunks.
func ForDynamic(n, grain int, f func(lo, hi int)) { f(0, n) }

// ForWorkersIndexed runs f per worker.
func ForWorkersIndexed(workers, n int, f func(w, lo, hi int)) { f(0, 0, n) }
`

// loadFixtureWithPar type-checks an in-memory package like loadFixture,
// additionally making the fixture par package importable as
// "graphmaze/internal/par".
func loadFixtureWithPar(t *testing.T, rel string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	base := importer.ForCompiler(fset, "source", nil)

	parFile, err := parser.ParseFile(fset, "internal/par/par.go", fixtureParSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	parConf := types.Config{Importer: base}
	parPkg, err := parConf.Check("graphmaze/internal/par", fset, []*ast.File{parFile}, nil)
	if err != nil {
		t.Fatalf("type-check fixture par: %v", err)
	}

	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, rel+"/"+name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &prebuiltImporter{base: base, pkgs: map[string]*types.Package{
		"graphmaze/internal/par": parPkg,
	}}}
	path := "graphmaze/" + rel
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Rel: rel, Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}
}

// prebuiltImporter serves already-checked in-memory packages and falls
// back to the source importer for everything else (stdlib).
type prebuiltImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (m *prebuiltImporter) Import(path string) (*types.Package, error) {
	if p := m.pkgs[path]; p != nil {
		return p, nil
	}
	if from, ok := m.base.(types.ImporterFrom); ok {
		return from.ImportFrom(path, "", 0)
	}
	return m.base.Import(path)
}

func (m *prebuiltImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := m.pkgs[path]; p != nil {
		return p, nil
	}
	if from, ok := m.base.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return m.base.Import(path)
}

// ---------------------------------------------------------------- det --

func TestDetFlagsSendInMapRange(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

type conn struct{}

func (c *conn) Send(to int, b []byte) {}

func Flush(c *conn, m map[int][]byte) {
	for to, b := range m {
		c.Send(to, b)
	}
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 9, "det")
}

func TestDetFlagsChannelSendInMapRange(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

func Drain(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k
	}
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 5, "det")
}

func TestDetFlagsAppendInMapRange(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

func Vals(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 6, "det")
}

func TestDetAllowsCollectThenSort(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

import "sort"

func Keys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
`})
	if got := runRule(t, p, &DetRule{}); len(got) != 0 {
		t.Fatalf("collect-then-sort is the blessed idiom, got %v", got)
	}
}

func TestDetFlagsFloatAccumulationInMapRange(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 6, "det")
}

func TestDetAllowsIntAccumulationInMapRange(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

func Count(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`})
	if got := runRule(t, p, &DetRule{}); len(got) != 0 {
		t.Fatalf("integer counting is commutative and must not be flagged, got %v", got)
	}
}

func TestDetSkipsNonEnginePackages(t *testing.T) {
	p := loadFixture(t, "internal/metrics", map[string]string{"a.go": `package metrics

type conn struct{}

func (c *conn) Send(to int, b []byte) {}

func Flush(c *conn, m map[int][]byte) {
	for to, b := range m {
		c.Send(to, b)
	}
}
`})
	if got := runRule(t, p, &DetRule{}); len(got) != 0 {
		t.Fatalf("det only applies to engine and ckpt packages, got %v", got)
	}
}

func TestDetFlagsWallClockInParBody(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import (
	"time"

	"graphmaze/internal/par"
)

func Stamp(n int, out []int64) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = time.Now().UnixNano()
		}
	})
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 12, "det")
}

func TestDetFlagsWallClockReachableThroughHelper(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import (
	"time"

	"graphmaze/internal/par"
)

func stamp() int64 { return time.Now().UnixNano() }

func Kernel(n int, out []int64) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = stamp()
		}
	})
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 14, "det")
}

func TestDetFlagsGlobalRandInParBody(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import (
	"math/rand"

	"graphmaze/internal/par"
)

func Shuffle(n int, out []int) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rand.Intn(n)
		}
	})
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 12, "det")
}

func TestDetAllowsSeededRandInParBody(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import (
	"math/rand"

	"graphmaze/internal/par"
)

func Shuffle(n int, out []int) {
	r := rand.New(rand.NewSource(42))
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = r.Intn(n)
		}
	})
}
`})
	if got := runRule(t, p, &DetRule{}); len(got) != 0 {
		t.Fatalf("explicitly seeded rand is fine, got %v", got)
	}
}

func TestDetFlagsSharedFloatAccumulationInParBody(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

func Total(n int, xs []float64) float64 {
	var sum float64
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
	})
	return sum
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/native/a.go", 9, "det")
}

func TestDetFlagsWallClockReachableFromCodec(t *testing.T) {
	p := loadFixture(t, "internal/ckpt", map[string]string{"a.go": `package ckpt

import "time"

func stamp() int64 { return time.Now().UnixNano() }

func EncodeState(out []int64) {
	out[0] = stamp()
}
`})
	wantFinding(t, runRule(t, p, &DetRule{}), "internal/ckpt/a.go", 5, "det")
}

// --------------------------------------------------------------- lock --

func TestLockFlagsLeakOnEarlyReturn(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Get(c bool) int {
	s.mu.Lock()
	if c {
		return 0
	}
	s.mu.Unlock()
	return s.n
}
`})
	wantFinding(t, runRule(t, p, &LockRule{}), "internal/fix/a.go", 13, "lock")
}

func TestLockAllowsDeferredUnlock(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Get(c bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c {
		return 0
	}
	return s.n
}

func (s *S) Balanced(c bool) int {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}
`})
	if got := runRule(t, p, &LockRule{}); len(got) != 0 {
		t.Fatalf("deferred and per-path unlocks are clean, got %v", got)
	}
}

func TestLockFlagsDoubleLock(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Double() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}
`})
	wantFinding(t, runRule(t, p, &LockRule{}), "internal/fix/a.go", 9, "lock")
}

func TestLockAllowsDistinctMutexes(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) Both() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
`})
	if got := runRule(t, p, &LockRule{}); len(got) != 0 {
		t.Fatalf("two different mutexes are not a double lock, got %v", got)
	}
}

func TestLockFlagsUnguardedFieldWrite(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync"

type T struct {
	mu    sync.Mutex
	count int
}

func (t *T) Inc() {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

func (t *T) Reset() {
	t.count = 0
}
`})
	wantFinding(t, runRule(t, p, &LockRule{}), "internal/fix/a.go", 17, "lock")
}

func TestLockGuardedFieldExemptions(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync"

type T struct {
	mu    sync.Mutex
	count int
}

func (t *T) Inc() {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

// NewT builds a T; the value is not shared yet.
func NewT() *T {
	t := &T{}
	t.count = 5
	return t
}

// reset zeroes the counter. Caller holds t.mu.
func (t *T) reset() {
	t.count = 0
}

func Local() int {
	u := &T{}
	u.count = 7
	return u.count
}
`})
	if got := runRule(t, p, &LockRule{}); len(got) != 0 {
		t.Fatalf("constructors, caller-holds helpers, and local values are exempt, got %v", got)
	}
}

// ----------------------------------------------------------- hotalloc --

func TestHotAllocFlagsAppendWithoutPrealloc(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

func Collect(n int, sink func([]int)) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		var local []int
		for i := lo; i < hi; i++ {
			local = append(local, i)
		}
		sink(local)
	})
}
`})
	wantFinding(t, runRule(t, p, &HotAllocRule{}), "internal/native/a.go", 9, "hotalloc")
}

func TestHotAllocAllowsPreallocatedAppend(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

func Collect(n int, sink func([]int)) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		local := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			local = append(local, i)
		}
		sink(local)
	})
}
`})
	if got := runRule(t, p, &HotAllocRule{}); len(got) != 0 {
		t.Fatalf("preallocated append is clean, got %v", got)
	}
}

func TestHotAllocFlagsDeferInBody(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import (
	"sync"

	"graphmaze/internal/par"
)

func Work(n int, mu *sync.Mutex) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
	})
}
`})
	wantFinding(t, runRule(t, p, &HotAllocRule{}), "internal/native/a.go", 12, "hotalloc")
}

func TestHotAllocFlagsFmtInBody(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import (
	"fmt"

	"graphmaze/internal/par"
)

func Labels(n int, out []string) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fmt.Sprintf("v%d", i)
		}
	})
}
`})
	wantFinding(t, runRule(t, p, &HotAllocRule{}), "internal/native/a.go", 12, "hotalloc")
}

func TestHotAllocFlagsClosureInLoop(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

func Work(n int, run func(func() int)) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			run(func() int { return i })
		}
	})
}
`})
	wantFinding(t, runRule(t, p, &HotAllocRule{}), "internal/native/a.go", 8, "hotalloc")
}

func TestHotAllocAllowsClosureOutsideLoop(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

func Work(n int, run func(func(int) int)) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		square := func(x int) int { return x * x }
		run(square)
	})
}
`})
	if got := runRule(t, p, &HotAllocRule{}); len(got) != 0 {
		t.Fatalf("a once-per-chunk closure is not a per-iteration allocation, got %v", got)
	}
}

func TestHotAllocFlagsInterfaceConversion(t *testing.T) {
	p := loadFixtureWithPar(t, "internal/native", map[string]string{"a.go": `package native

import "graphmaze/internal/par"

func Box(n int, out []any) {
	par.ForDynamic(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = any(i)
		}
	})
}
`})
	wantFinding(t, runRule(t, p, &HotAllocRule{}), "internal/native/a.go", 8, "hotalloc")
}

func TestHotAllocIgnoresCodeOutsideParBodies(t *testing.T) {
	p := loadFixture(t, "internal/native", map[string]string{"a.go": `package native

import "fmt"

func Slow(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("v%d", i))
	}
	return out
}
`})
	if got := runRule(t, p, &HotAllocRule{}); len(got) != 0 {
		t.Fatalf("hotalloc only applies inside par.For* bodies, got %v", got)
	}
}

// ------------------------------------------------------------- ignore --

func TestUnusedIgnoreDirectiveIsAFinding(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

//lint:ignore atomic this violation was fixed long ago
func f() {}
`})
	findings := runRule(t, p, &AtomicRule{})
	if len(findings) != 1 || findings[0].Rule != "ignore" {
		t.Fatalf("stale directive must surface as an ignore finding, got %v", findings)
	}
}

func TestUnusedDirectiveForRuleNotRunIsSilent(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

//lint:ignore atomic the atomic rule is not part of this run
func f() {}
`})
	if got := runRule(t, p, &PanicRule{}); len(got) != 0 {
		t.Fatalf("a directive can only be judged stale when its rule ran, got %v", got)
	}
}

func TestProseMentionOfDirectiveIsNotParsed(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

// This file explains how lint:ignore) interacts with other tools, and
// lint:ignore-adjacent prose must not parse as a directive either.
func f() {}
`})
	if got := runRule(t, p, &AtomicRule{}); len(got) != 0 {
		t.Fatalf("prose mentioning directives must not parse, got %v", got)
	}
}

func TestIgnoreScopedToRuleAndLine(t *testing.T) {
	// A directive for one rule must not suppress another rule's finding
	// on the same line.
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync/atomic"

var counter int64

func Bump() { atomic.AddInt64(&counter, 1) }

func Read() int64 {
	//lint:ignore panic wrong rule on purpose
	return counter
}
`})
	findings := Run([]*Package{p}, []Rule{&AtomicRule{}, &PanicRule{}})
	var rules []string
	for _, f := range findings {
		rules = append(rules, f.Rule)
	}
	// The atomic finding survives (directive names panic), and the panic
	// directive itself is stale.
	if len(findings) != 2 || findings[0].Rule != "atomic" && findings[1].Rule != "atomic" {
		t.Fatalf("want surviving atomic finding plus stale-directive finding, got %v (%v)", rules, findings)
	}
	hasIgnore := false
	for _, f := range findings {
		if f.Rule == "ignore" {
			hasIgnore = true
		}
	}
	if !hasIgnore {
		t.Fatalf("mis-scoped directive must be reported stale, got %v", findings)
	}
}
