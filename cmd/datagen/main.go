// Command datagen generates the paper's synthetic datasets (§4.1.2) as
// edge-list files and inspects their degree distributions.
//
// Usage:
//
//	datagen -preset facebook -out fb.el
//	datagen -scale 18 -edgefactor 16 -seed 7 -out g500.el
//	datagen -preset twitter -stats
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"graphmaze/internal/datasets"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func main() {
	var (
		preset     = flag.String("preset", "", "named dataset stand-in (see -list)")
		list       = flag.Bool("list", false, "list dataset presets")
		scale      = flag.Int("scale", 0, "RMAT scale for ad-hoc generation (vertices = 2^scale)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex for ad-hoc generation")
		seed       = flag.Int64("seed", 1, "generator seed")
		prepName   = flag.String("prep", "pagerank", "preparation: pagerank|bfs|triangle")
		out        = flag.String("out", "", "write an edge-list file")
		stats      = flag.Bool("stats", false, "print degree-distribution statistics")
	)
	flag.Parse()

	if *list {
		for _, p := range datasets.Presets() {
			kind := "graph"
			if p.Ratings {
				kind = "ratings"
			}
			fmt.Printf("  %-12s (%s, scale %d)  %s\n", p.Name, kind, p.Scale, p.Description)
		}
		return
	}

	prep, err := parsePrep(*prepName)
	if err != nil {
		fatal(err)
	}

	var g *graph.CSR
	switch {
	case *preset != "":
		p, err := datasets.ByName(*preset)
		if err != nil {
			fatal(err)
		}
		if *scale != 0 {
			p = p.WithScale(*scale)
		}
		if p.Ratings {
			bp, err := p.BuildRatings()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %d users × %d items, %d ratings\n", p.Name, bp.NumUsers, bp.NumItems, bp.NumRatings())
			if *stats {
				fmt.Println("item degree distribution:")
				fmt.Print(graph.FormatHistogram(graph.DegreeHistogram(bp.ByItem.OutDegrees())))
			}
			if *out != "" {
				fatal(fmt.Errorf("datagen: rating presets cannot be written as plain edge lists"))
			}
			return
		}
		g, err = p.Build(prep)
		if err != nil {
			fatal(err)
		}
	case *scale > 0:
		cfg := gen.Graph500Config(*scale, *edgeFactor, *seed)
		if prep == datasets.PrepTriangle {
			cfg = gen.TriangleConfig(*scale, *edgeFactor, *seed)
		}
		edges, err := gen.RMAT(cfg)
		if err != nil {
			fatal(err)
		}
		g, err = datasets.PrepareEdges(cfg.NumVertices(), edges, prep)
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("graph: %d vertices, %d edges (%s prep)\n", g.NumVertices, g.NumEdges(), *prepName)
	if *stats {
		st := graph.ComputeDegreeStats(g.OutDegrees())
		fmt.Printf("degrees: min=%d max=%d mean=%.2f median=%d p99=%d gini=%.3f\n",
			st.Min, st.Max, st.Mean, st.Median, st.P99, st.GiniCoefficient)
		fmt.Print(graph.FormatHistogram(graph.DegreeHistogram(g.OutDegrees())))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := datasets.WriteEdgeList(f, g); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func parsePrep(name string) (datasets.Prep, error) {
	switch name {
	case "pagerank":
		return datasets.PrepPageRank, nil
	case "bfs":
		return datasets.PrepBFS, nil
	case "triangle":
		return datasets.PrepTriangle, nil
	default:
		return 0, fmt.Errorf("datagen: unknown prep %q (pagerank|bfs|triangle)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
