package datasets

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphmaze/internal/graph"
)

func TestPresetsListed(t *testing.T) {
	names := Names()
	want := []string{"facebook", "wikipedia", "livejournal", "twitter", "graph500", "netflix", "yahoomusic"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range want {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName accepted unknown preset")
	}
}

func TestRelativeSizesMatchPaper(t *testing.T) {
	// Table 3 ordering must survive the scale-down.
	edgesOf := func(name string) int64 {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return int64(p.EdgeFactor) << uint(p.Scale)
	}
	fb, wiki, lj, tw := edgesOf("facebook"), edgesOf("wikipedia"), edgesOf("livejournal"), edgesOf("twitter")
	if !(fb < wiki && wiki <= lj && lj < tw) {
		t.Errorf("size ordering broken: fb=%d wiki=%d lj=%d tw=%d", fb, wiki, lj, tw)
	}
}

func TestBuildPreps(t *testing.T) {
	p, err := ByName("facebook")
	if err != nil {
		t.Fatal(err)
	}
	p = p.WithScale(9) // small for tests

	pr, err := p.Build(PrepPageRank)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumEdges() == 0 {
		t.Fatal("PageRank prep produced empty graph")
	}

	bfs, err := p.Build(PrepBFS)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric: every edge has its reverse.
	for _, e := range bfs.Edges()[:100] {
		if !bfs.HasEdge(e.Dst, e.Src) {
			t.Fatalf("BFS prep not symmetric at %v", e)
		}
	}

	tc, err := p.Build(PrepTriangle)
	if err != nil {
		t.Fatal(err)
	}
	if !tc.SortedAdjacency() {
		t.Error("triangle prep not sorted")
	}
	for _, e := range tc.Edges()[:100] {
		if e.Src >= e.Dst {
			t.Fatalf("triangle prep not acyclic at %v", e)
		}
	}
}

func TestBuildRatings(t *testing.T) {
	p, err := ByName("netflix")
	if err != nil {
		t.Fatal(err)
	}
	p = p.WithScale(9)
	bp, err := p.BuildRatings()
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumRatings() == 0 {
		t.Fatal("empty ratings")
	}
	// Kind mismatches error clearly.
	if _, err := p.Build(PrepPageRank); err == nil {
		t.Error("Build on ratings preset should fail")
	}
	fb, _ := ByName("facebook")
	if _, err := fb.BuildRatings(); err == nil {
		t.Error("BuildRatings on graph preset should fail")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := strings.NewReader(`# comment
% another comment
10 20
20 30
10 20
`)
	n, edges, err := ReadEdgeList(in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("vertices = %d, want 3 (dense renumbering)", n)
	}
	if len(edges) != 3 {
		t.Errorf("edges = %d, want 3 (duplicates preserved)", len(edges))
	}
	// Dense ids: 10→0, 20→1, 30→2.
	if edges[0] != (graph.Edge{Src: 0, Dst: 1}) || edges[1] != (graph.Edge{Src: 1, Dst: 2}) {
		t.Errorf("edges = %v", edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("accepted one-field line")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("accepted non-numeric ids")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	n, edges, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(edges) != 3 {
		t.Errorf("round trip: n=%d edges=%d", n, len(edges))
	}
}

func TestLoadEdgeListFileMissing(t *testing.T) {
	if _, err := LoadEdgeListFile("/nonexistent/path.el", PrepPageRank); err == nil {
		t.Error("accepted missing file")
	}
}

func TestLoadEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.el")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeListFile(path, PrepBFS)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 3 || g.NumEdges() != 6 { // symmetrized triangle
		t.Errorf("loaded %d vertices / %d edges", g.NumVertices, g.NumEdges())
	}
	// Empty file errors cleanly.
	empty := filepath.Join(dir, "empty.el")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeListFile(empty, PrepBFS); err == nil {
		t.Error("accepted empty edge list")
	}
	// Bad prep value.
	if _, err := PrepareEdges(2, []graph.Edge{{Src: 0, Dst: 1}}, Prep(99)); err == nil {
		t.Error("accepted unknown preparation")
	}
}

func TestReadRatings(t *testing.T) {
	in := strings.NewReader(`# netflix-style triples
100 7 5
100 9 3.5
200 7 1
`)
	bp, err := ReadRatings(in)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumUsers != 2 || bp.NumItems != 2 || bp.NumRatings() != 3 {
		t.Errorf("parsed %d users × %d items, %d ratings", bp.NumUsers, bp.NumItems, bp.NumRatings())
	}
	// user 100→0, item 9→1: rating 3.5.
	adj, w := bp.ByUser.Neighbors(0), bp.ByUser.EdgeWeights(0)
	found := false
	for i, v := range adj {
		if v == 1 && w[i] == 3.5 {
			found = true
		}
	}
	if !found {
		t.Error("rating 3.5 not found after dense renumbering")
	}
}

func TestReadRatingsErrors(t *testing.T) {
	if _, err := ReadRatings(strings.NewReader("1 2\n")); err == nil {
		t.Error("accepted two-field line")
	}
	if _, err := ReadRatings(strings.NewReader("a b c\n")); err == nil {
		t.Error("accepted non-numeric triple")
	}
	if _, err := ReadRatings(strings.NewReader("# only comments\n")); err == nil {
		t.Error("accepted empty rating set")
	}
}

func TestLoadRatingsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.txt")
	if err := os.WriteFile(path, []byte("0 0 4\n0 1 2\n1 0 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bp, err := LoadRatingsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumRatings() != 3 {
		t.Errorf("NumRatings = %d", bp.NumRatings())
	}
	if _, err := LoadRatingsFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("accepted missing file")
	}
}
