package socialite

import (
	"errors"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func fixtureDirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 51))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureUndirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 52))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureAcyclic(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.TriangleConfig(8, 8, 53))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureRatings(t testing.TB) *graph.Bipartite {
	t.Helper()
	bp, err := gen.Ratings(gen.DefaultRatingsConfig(8, 16, 54))
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestVecTableBasics(t *testing.T) {
	tab := NewVecTable("T", 10)
	if _, ok := tab.Get(3); ok {
		t.Error("fresh table has key")
	}
	tab.Put(3, Scalar(1.5))
	if v, ok := tab.Get(3); !ok || v.S() != 1.5 {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
	tab.Delete(3)
	if tab.Len() != 0 {
		t.Errorf("Len after delete = %d", tab.Len())
	}
	tab.Delete(3) // idempotent
}

func TestFoldAggregations(t *testing.T) {
	tab := NewVecTable("T", 4)
	// SUM accumulates element-wise.
	tab.fold(AggSum, 0, Value{1, 2})
	tab.fold(AggSum, 0, Value{10, 20})
	if v, _ := tab.Get(0); v[0] != 11 || v[1] != 22 {
		t.Errorf("SUM = %v", v)
	}
	// MIN keeps the smaller and reports change.
	if !tab.fold(AggMin, 1, Scalar(5)) {
		t.Error("first MIN not a change")
	}
	if tab.fold(AggMin, 1, Scalar(9)) {
		t.Error("larger MIN reported change")
	}
	if !tab.fold(AggMin, 1, Scalar(2)) {
		t.Error("smaller MIN not a change")
	}
	// COUNT increments.
	tab.fold(AggCount, 2, Scalar(1))
	tab.fold(AggCount, 2, Scalar(1))
	if v, _ := tab.Get(2); v.S() != 2 {
		t.Errorf("COUNT = %v", v)
	}
	// ASSIGN overwrites.
	tab.fold(AggAssign, 3, Scalar(7))
	tab.fold(AggAssign, 3, Scalar(8))
	if v, _ := tab.Get(3); v.S() != 8 {
		t.Errorf("ASSIGN = %v", v)
	}
}

func TestRuleValidation(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	edge := NewEdgeTable("E", g)
	head := NewVecTable("H", 3)
	// Atom joins on an unbound key slot.
	bad := &Rule{
		Name: "bad", KeySlots: 3, ValSlots: 1,
		Driver: Driver{Vec: &VecAtom{Table: head, KeySlot: 0, ValSlot: 0}},
		Atoms:  []Atom{{Edge: &EdgeAtom{Table: edge, SrcSlot: 2, DstSlot: 1, WeightSlot: -1}}},
		Head:   Head{Table: head, Agg: AggSum, KeySlot: 1, ValSlot: 0},
	}
	if err := bad.Validate(); err == nil {
		t.Error("accepted unbound join key")
	}
	// No driver.
	if err := (&Rule{Name: "x", Head: Head{Table: head}}).Validate(); err == nil {
		t.Error("accepted missing driver")
	}
	// No head.
	if err := (&Rule{Name: "x"}).Validate(); err == nil {
		t.Error("accepted missing head")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 6}
	want := core.RefPageRank(g, opt)
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
}

func TestPageRankCluster(t *testing.T) {
	g := fixtureDirected(t)
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 5})
	res, err := New().PageRank(g, core.PageRankOptions{Iterations: 5,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no head-update traffic recorded")
	}
}

func TestNetworkOptimizationSpeedsUpPageRank(t *testing.T) {
	// Table 7: the multi-socket + batching optimization speeds up the
	// network-bound algorithms (paper: 2.4× for PageRank on 4 nodes).
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 5, Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}}
	before, err := NewUnoptimized().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.Report.NetworkSeconds >= before.Stats.Report.NetworkSeconds {
		t.Errorf("optimized network time %v not below unoptimized %v",
			after.Stats.Report.NetworkSeconds, before.Stats.Report.NetworkSeconds)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 11)
	res, err := New().BFS(g, core.BFSOptions{Source: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("distances differ from reference")
	}
}

func TestBFSCluster(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 11)
	res, err := New().BFS(g, core.BFSOptions{Source: 11,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("cluster distances differ from reference")
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 3, Dst: 4}})
	g, _ := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	res, err := New().BFS(g, core.BFSOptions{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, -1, -1, -1}
	if !core.EqualDistances(res.Distances, want) {
		t.Errorf("distances = %v, want %v", res.Distances, want)
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

func TestTriangleCluster(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("cluster count = %d, want %d", res.Count, want)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no join-shipping traffic recorded")
	}
}

func TestCollabFilterGD(t *testing.T) {
	bp := fixtureRatings(t)
	opt := core.CFOptions{K: 4, Iterations: 4, Seed: 7}
	res, err := New().CollabFilter(bp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("RMSE not decreasing: %v", res.RMSE)
	}
	ref := core.RefCollabFilterGD(bp, opt)
	for i := range ref.RMSE {
		d := ref.RMSE[i] - res.RMSE[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-3 {
			t.Errorf("iteration %d: RMSE %v vs reference %v", i, res.RMSE[i], ref.RMSE[i])
		}
	}
}

func TestCollabFilterRejectsSGD(t *testing.T) {
	bp := fixtureRatings(t)
	if _, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestCollabFilterCluster(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{K: 4, Iterations: 3, Seed: 7,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("distributed RMSE not decreasing: %v", res.RMSE)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no table-transfer traffic recorded")
	}
}

func TestEdgeTableContains(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 1}})
	g.SortAdjacency()
	e := NewEdgeTable("E", g)
	if !e.Contains(0, 1) || !e.Contains(0, 2) {
		t.Error("Contains misses present edges")
	}
	if e.Contains(1, 0) || e.Contains(2, 2) {
		t.Error("Contains finds absent edges")
	}
}

func TestAggString(t *testing.T) {
	for agg, want := range map[Agg]string{AggSum: "$SUM", AggMin: "$MIN", AggCount: "$INC", AggAssign: "assign"} {
		if agg.String() != want {
			t.Errorf("%d.String() = %q, want %q", agg, agg.String(), want)
		}
	}
}
