package giraph

import (
	"math"
	"time"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/graph"
)

// coordinationSeconds models the per-superstep Hadoop/ZooKeeper
// coordination cost of a Giraph job (job heartbeats, barrier consensus,
// worker bookkeeping) that exists on top of message traffic. The paper's
// Giraph runtimes — minutes where native takes seconds, even single-node —
// are dominated by this fixed machinery; measured Go compute alone would
// understate the gap (substitution documented in DESIGN.md §3).
const coordinationSeconds = 0.015

// Engine is the Giraph-model engine.
type Engine struct {
	// splitSupersteps enables the §6.1.3 phased-superstep memory fix for
	// the message-heavy algorithms (TC and CF). The paper splits into 100
	// phases; we default to the same.
	splitSupersteps int
	// combine enables sender-side message combiners (sum for PageRank,
	// min for BFS) and workers raises the per-node worker count — the two
	// §6.2 roadmap recommendations for Giraph, off in the stock engine.
	combine bool
	workers int
}

var _ core.Engine = (*Engine)(nil)

// New returns the Giraph-model engine with the phased-superstep
// optimization the paper applied (100 phases for TC/CF).
func New() *Engine { return &Engine{splitSupersteps: 100} }

// NewUnsplit returns a Giraph engine without phased supersteps — the
// configuration that runs out of memory on large triangle-counting inputs
// in the paper.
func NewUnsplit() *Engine { return &Engine{splitSupersteps: 1} }

// NewImproved returns a Giraph engine with the paper's §6.2
// recommendations applied: message combiners (smaller buffers, less
// duplicated communication) and 24 workers per node (better CPU
// utilization).
func NewImproved() *Engine {
	return &Engine{splitSupersteps: 100, combine: true, workers: 24}
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "Giraph" }

// Capabilities implements core.Engine.
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{MultiNode: true, SGD: false, ProgrammingModel: "vertex"}
}

// newCluster builds Giraph's cluster: netty transport, with the engine's
// worker count (4 stock, 24 improved) of the provisioned threads busy.
func (e *Engine) newCluster(cfg cluster.Config) (*cluster.Cluster, error) {
	if cfg.Comm.Bandwidth == 0 {
		cfg.Comm = cluster.Netty()
	}
	if cfg.WorkersPerNode == 0 {
		cfg.WorkersPerNode = workersPerNode
		if e.workers > 0 {
			cfg.WorkersPerNode = e.workers
		}
	}
	return cluster.New(cfg)
}

func (e *Engine) runJob(job *Job, exec core.Exec) (*Result, core.RunStats, error) {
	if e.workers > 0 {
		job.Workers = e.workers
	}
	job.Tracer = exec.Tracer()
	if exec.Cluster != nil {
		cfg := *exec.Cluster
		if cfg.Trace == nil {
			cfg.Trace = exec.Trace
		}
		c, err := e.newCluster(cfg)
		if err != nil {
			return nil, core.RunStats{}, err
		}
		job.Cluster = c
		res, err := Run(job)
		if err != nil {
			return nil, core.RunStats{}, err
		}
		rep := c.Report()
		return res, core.RunStats{
			WallSeconds: rep.SimulatedSeconds + float64(res.Supersteps)*coordinationSeconds,
			Simulated:   true,
			Iterations:  res.Supersteps,
			Report:      rep,
		}, nil
	}
	start := time.Now()
	res, err := Run(job)
	if err != nil {
		return nil, core.RunStats{}, err
	}
	wall := time.Since(start).Seconds() + float64(res.Supersteps)*coordinationSeconds
	return res, core.RunStats{WallSeconds: wall, Iterations: res.Supersteps}, nil
}

// PageRank implements core.Engine as the paper's Algorithm 1: superstep 0
// seeds contributions, each later superstep folds incoming messages and
// re-broadcasts rank/degree along out-edges.
func (e *Engine) PageRank(g *graph.CSR, opt core.PageRankOptions) (*core.PageRankResult, error) {
	opt, err := core.CheckPageRankInput(g, opt)
	if err != nil {
		return nil, err
	}
	r := opt.RandomJump
	job := &Job{
		Graph:         g,
		Init:          func(uint32) any { return float64(1) },
		MaxSupersteps: opt.Iterations + 1,
		MessageBytes:  func(any) int { return 8 },
	}
	job.EncodeValue, job.DecodeValue = Float64Codec()
	if e.combine {
		// PageRank's messages fold with addition (§6.2 recommendation).
		job.Combiner = func(a, b any) any { return a.(float64) + b.(float64) }
	}
	job.Compute = prCompute(job, r)
	// Local combiner-less runs lower onto the shared SpMV backend; the
	// runtime falls back to the superstep machinery otherwise.
	job.Lowered = func() Lowering { return newPRLowering(g, r, job.MaxSupersteps, job.Tracer) }
	res, stats, err := e.runJob(job, opt.Exec)
	if err != nil {
		return nil, err
	}
	ranks := make([]float64, g.NumVertices)
	for i, v := range res.Values {
		ranks[i] = v.(float64)
	}
	stats.Iterations = opt.Iterations
	return &core.PageRankResult{Ranks: ranks, Stats: stats}, nil
}

// prCompute is the PageRank vertex program (paper Algorithm 1).
func prCompute(job *Job, r float64) Computation {
	return func(ctx *Context, messages []any) {
		if ctx.Superstep() > 0 {
			sum := 0.0
			for _, m := range messages {
				sum += m.(float64)
			}
			ctx.SetValue(r + (1-r)*sum)
		}
		if ctx.Superstep() < job.MaxSupersteps-1 {
			if deg := len(ctx.OutEdges()); deg > 0 {
				ctx.SendMessageToAllEdges(ctx.Value().(float64) / float64(deg))
			}
		} else {
			ctx.VoteToHalt()
		}
	}
}

// BFS implements core.Engine as the paper's Algorithm 2.
func (e *Engine) BFS(g *graph.CSR, opt core.BFSOptions) (*core.BFSResult, error) {
	opt, err := core.CheckBFSInput(g, opt)
	if err != nil {
		return nil, err
	}
	const inf = int32(1) << 30
	source := opt.Source
	job := &Job{
		Graph: g,
		Init: func(id uint32) any {
			if id == source {
				return int32(0)
			}
			return inf
		},
		MessageBytes: func(any) int { return 4 },
		Compute: func(ctx *Context, messages []any) {
			dist := ctx.Value().(int32)
			improved := false
			for _, m := range messages {
				if d := m.(int32); d < dist {
					dist = d
					improved = true
				}
			}
			if improved {
				ctx.SetValue(dist)
			}
			if (ctx.Superstep() == 0 && ctx.ID() == source) || improved {
				ctx.SendMessageToAllEdges(dist + 1)
			}
			ctx.VoteToHalt()
		},
	}
	job.EncodeValue, job.DecodeValue = Int32Codec()
	// Local combiner-less runs lower onto the backend's persistent-claims
	// frontier expander (min-combine ≡ first claim wins).
	job.Lowered = func() Lowering { return newBFSLowering(g, source, job.Tracer) }
	if e.combine {
		// BFS messages fold with min (§6.2 recommendation).
		job.Combiner = func(a, b any) any {
			if a.(int32) < b.(int32) {
				return a
			}
			return b
		}
	}
	res, stats, err := e.runJob(job, opt.Exec)
	if err != nil {
		return nil, err
	}
	dist := make([]int32, g.NumVertices)
	for i, v := range res.Values {
		d := v.(int32)
		if d >= inf {
			d = -1
		}
		dist[i] = d
	}
	return &core.BFSResult{Distances: dist, Stats: stats}, nil
}

// TriangleCount implements core.Engine: superstep 0 ships each vertex's
// adjacency list to its out-neighbours (the O(Σ d²) message volume of
// Table 1); superstep 1 intersects received lists with the local list and
// accumulates into the global counter. Phased supersteps keep the buffers
// bounded — without them Giraph exhausts memory on large inputs (§6.1.3).
func (e *Engine) TriangleCount(g *graph.CSR, opt core.TriangleOptions) (*core.TriangleResult, error) {
	opt, err := core.CheckTriangleInput(g, opt)
	if err != nil {
		return nil, err
	}
	job := &Job{
		Graph:           g,
		Init:            func(uint32) any { return nil },
		MaxSupersteps:   2,
		SplitSupersteps: e.splitSupersteps,
		MessageBytes:    func(m any) int { return 4 * len(m.([]uint32)) },
		Compute: func(ctx *Context, messages []any) {
			switch ctx.Superstep() {
			case 0:
				if adj := ctx.OutEdges(); len(adj) > 0 {
					// Each message serializes its own copy of the list,
					// as Giraph's writables do.
					for _, t := range adj {
						ctx.SendMessage(t, append([]uint32(nil), adj...))
					}
				}
				ctx.VoteToHalt()
			case 1:
				mine := ctx.OutEdges()
				var count int64
				for _, m := range messages {
					count += int64(intersectSorted(mine, m.([]uint32)))
				}
				if count > 0 {
					ctx.AddToCounter(count)
				}
				ctx.VoteToHalt()
			}
		},
	}
	res, stats, err := e.runJob(job, opt.Exec)
	if err != nil {
		return nil, err
	}
	return &core.TriangleResult{Count: res.Counter, Stats: stats}, nil
}

func intersectSorted(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// cfValue boxes a vertex's latent factor.
type cfValue struct {
	factor []float32
}

// cfMessage carries a partner's factor and the edge rating.
type cfMessage struct {
	from   uint32
	factor []float32
	rating float32
}

// CollabFilter implements core.Engine: vertex-programming gradient descent
// over the unified user+item vertex space. Each GD iteration is one
// superstep exchanging O(K·E) bytes of factor messages (paper §3.2), with
// phased supersteps bounding the buffer (§6.1.3). SGD is inexpressible.
func (e *Engine) CollabFilter(r *graph.Bipartite, opt core.CFOptions) (*core.CFResult, error) {
	opt, err := core.CheckCFInput(r, opt)
	if err != nil {
		return nil, err
	}
	if opt.Method == core.SGD {
		return nil, core.ErrUnsupported
	}
	k := opt.K
	numUsers := r.NumUsers
	// Unified graph: users [0,numUsers), items [numUsers, numUsers+items),
	// weighted edges in both directions.
	unified, err := buildUnified(r)
	if err != nil {
		return nil, err
	}
	userF := core.InitFactors(r.NumUsers, k, opt.Seed)
	itemF := core.InitFactors(r.NumItems, k, opt.Seed+1)

	gamma := opt.LearningRate
	lambdaOf := func(id uint32) float64 {
		if id < numUsers {
			return opt.LambdaP
		}
		return opt.LambdaQ
	}
	factorOf := func(id uint32) []float32 {
		if id < numUsers {
			return userF[int(id)*k : int(id+1)*k]
		}
		j := int(id - numUsers)
		return itemF[j*k : (j+1)*k]
	}

	rmseTrace := make([]float64, 0, opt.Iterations)
	job := &Job{
		Graph:           unified,
		MaxSupersteps:   opt.Iterations + 1,
		SplitSupersteps: e.splitSupersteps,
		MessageBytes:    func(any) int { return 4 + 4*k },
		Init: func(id uint32) any {
			return &cfValue{factor: factorOf(id)}
		},
		Compute: func(ctx *Context, messages []any) {
			val := ctx.Value().(*cfValue)
			if ctx.Superstep() > 0 {
				// Fold partner factors received from the previous
				// superstep into a gradient step. The step size decays per
				// iteration, matching the reference schedule.
				step := gamma * math.Pow(opt.StepDecay, float64(ctx.Superstep()-1))
				lam := lambdaOf(ctx.ID())
				grad := make([]float64, k)
				for _, m := range messages {
					msg := m.(*cfMessage)
					dot := core.Dot(val.factor, msg.factor)
					rv := float64(msg.rating)
					for d := 0; d < k; d++ {
						grad[d] += rv*float64(msg.factor[d]) - dot*float64(msg.factor[d]) - lam*float64(val.factor[d])
					}
				}
				if len(messages) > 0 {
					next := make([]float32, k)
					for d := 0; d < k; d++ {
						next[d] = val.factor[d] + float32(step*grad[d])
					}
					val.factor = next
				}
			}
			if ctx.Superstep() < ctx.rt.job.MaxSupersteps-1 {
				weights := ctx.EdgeWeights()
				for i, t := range ctx.OutEdges() {
					ctx.SendMessage(t, &cfMessage{from: ctx.ID(), factor: val.factor, rating: weights[i]})
				}
			} else {
				ctx.VoteToHalt()
			}
		},
	}

	var stats core.RunStats
	var res *Result
	res, stats, err = e.runJob(job, opt.Exec)
	if err != nil {
		return nil, err
	}
	// Unpack final factors and compute the RMSE trajectory's final point;
	// Giraph jobs don't naturally expose per-superstep metrics, so the
	// engine recomputes RMSE from each superstep via a second pass below.
	outUserF := make([]float32, int(r.NumUsers)*k)
	outItemF := make([]float32, int(r.NumItems)*k)
	for id, v := range res.Values {
		f := v.(*cfValue).factor
		if uint32(id) < numUsers {
			copy(outUserF[id*k:], f)
		} else {
			copy(outItemF[(id-int(numUsers))*k:], f)
		}
	}
	final := core.RMSE(r, k, outUserF, outItemF)
	if opt.SkipRMSETrajectory {
		rmseTrace = append(rmseTrace, final)
	} else {
		// Replays the per-iteration RMSE with the reference GD (identical
		// update rule and seed) for the trajectory.
		ref := core.RefCollabFilterGD(r, opt)
		rmseTrace = append(rmseTrace, ref.RMSE...)
		if len(rmseTrace) > 0 {
			rmseTrace[len(rmseTrace)-1] = final
		}
	}
	stats.Iterations = opt.Iterations
	return &core.CFResult{K: k, UserFactors: outUserF, ItemFactors: outItemF, RMSE: rmseTrace, Stats: stats}, nil
}

// buildUnified makes the user+item vertex space graph with rating-weighted
// edges in both directions.
func buildUnified(r *graph.Bipartite) (*graph.CSR, error) {
	n := r.NumUsers + r.NumItems
	edges := make([]graph.WeightedEdge, 0, 2*r.NumRatings())
	for u := uint32(0); u < r.NumUsers; u++ {
		adj, w := r.ByUser.Neighbors(u), r.ByUser.EdgeWeights(u)
		for i, v := range adj {
			edges = append(edges,
				graph.WeightedEdge{Src: u, Dst: r.NumUsers + v, Weight: w[i]},
				graph.WeightedEdge{Src: r.NumUsers + v, Dst: u, Weight: w[i]})
		}
	}
	return graph.FromWeightedEdges(n, edges)
}
