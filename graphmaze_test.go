package graphmaze

import (
	"testing"
)

func TestEnginesRoster(t *testing.T) {
	engines := Engines()
	if len(engines) != 6 {
		t.Fatalf("Engines() returned %d", len(engines))
	}
	want := []string{"Native", "CombBLAS", "GraphLab", "SociaLite", "Giraph", "Galois"}
	for i, e := range engines {
		if e.Name() != want[i] {
			t.Errorf("engine %d = %q, want %q", i, e.Name(), want[i])
		}
	}
}

func TestEngineByName(t *testing.T) {
	e, err := EngineByName("graphlab")
	if err != nil || e.Name() != "GraphLab" {
		t.Errorf("EngineByName(graphlab) = %v, %v", e, err)
	}
	if _, err := EngineByName("spark"); err == nil {
		t.Error("accepted unknown engine")
	}
}

func TestGenerateAndRunAllEnginesAgree(t *testing.T) {
	// The facade-level integration test: every engine produces the same
	// answers on shared inputs.
	prG, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 1}, ForPageRank)
	if err != nil {
		t.Fatal(err)
	}
	bfsG, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 1}, ForBFS)
	if err != nil {
		t.Fatal(err)
	}
	tcG, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 1}, ForTriangles)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := Native().PageRank(prG, PageRankOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	refBFS, err := Native().BFS(bfsG, BFSOptions{Source: 2})
	if err != nil {
		t.Fatal(err)
	}
	refTC, err := Native().TriangleCount(tcG, TriangleOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, e := range Engines()[1:] {
		pr, err := e.PageRank(prG, PageRankOptions{Iterations: 5})
		if err != nil {
			t.Fatalf("%s PageRank: %v", e.Name(), err)
		}
		for i := range ref.Ranks {
			d := ref.Ranks[i] - pr.Ranks[i]
			if d < 0 {
				d = -d
			}
			if d > 1e-6*(1+ref.Ranks[i]) {
				t.Fatalf("%s PageRank diverges at %d: %v vs %v", e.Name(), i, pr.Ranks[i], ref.Ranks[i])
			}
		}
		bfs, err := e.BFS(bfsG, BFSOptions{Source: 2})
		if err != nil {
			t.Fatalf("%s BFS: %v", e.Name(), err)
		}
		for i := range refBFS.Distances {
			if bfs.Distances[i] != refBFS.Distances[i] {
				t.Fatalf("%s BFS diverges at %d", e.Name(), i)
			}
		}
		tc, err := e.TriangleCount(tcG, TriangleOptions{})
		if err != nil {
			t.Fatalf("%s TriangleCount: %v", e.Name(), err)
		}
		if tc.Count != refTC.Count {
			t.Fatalf("%s counts %d triangles, native counts %d", e.Name(), tc.Count, refTC.Count)
		}
	}
}

func TestCollabFilterAcrossEngines(t *testing.T) {
	bp, err := GenerateRatings(8, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Engines() {
		res, err := e.CollabFilter(bp, CFOptions{K: 4, Iterations: 3, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(res.RMSE) != 3 {
			t.Fatalf("%s: RMSE entries = %d", e.Name(), len(res.RMSE))
		}
		if res.RMSE[2] > res.RMSE[0] {
			t.Errorf("%s: RMSE rose: %v", e.Name(), res.RMSE)
		}
	}
}

func TestClusterRunThroughFacade(t *testing.T) {
	g, err := Generate(Graph500{Scale: 8, EdgeFactor: 8, Seed: 4}, ForPageRank)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Native().PageRank(g, PageRankOptions{Iterations: 3,
		Exec: Exec{Cluster: &ClusterConfig{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Simulated || res.Stats.Report.Nodes != 4 {
		t.Errorf("cluster stats = %+v", res.Stats)
	}
}

func TestDatasets(t *testing.T) {
	g, err := Dataset("facebook", ForPageRank)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Error("empty dataset")
	}
	if _, err := Dataset("unknown", ForPageRank); err == nil {
		t.Error("accepted unknown dataset")
	}
	bp, err := RatingsDataset("netflix")
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumRatings() == 0 {
		t.Error("empty ratings dataset")
	}
}

func TestCapabilitiesMatchPaperTable2(t *testing.T) {
	multiNode := map[string]bool{
		"Native": true, "GraphLab": true, "CombBLAS": true,
		"SociaLite": true, "Giraph": true, "Galois": false,
	}
	sgd := map[string]bool{
		"Native": true, "GraphLab": false, "CombBLAS": false,
		"SociaLite": false, "Giraph": false, "Galois": true,
	}
	for _, e := range Engines() {
		caps := e.Capabilities()
		if caps.MultiNode != multiNode[e.Name()] {
			t.Errorf("%s MultiNode = %v", e.Name(), caps.MultiNode)
		}
		if caps.SGD != sgd[e.Name()] {
			t.Errorf("%s SGD = %v", e.Name(), caps.SGD)
		}
	}
}
