// Package datasets provides the workload inputs of the paper's evaluation
// (§4.1): named stand-ins for the real-world graphs (Facebook, Wikipedia,
// LiveJournal, Twitter) and rating sets (Netflix, Yahoo! Music), the
// Graph500 synthetic graphs, and edge-list file I/O so real data can be
// dropped in.
//
// Substitution note (DESIGN.md §3): the original datasets are not
// redistributable, so each preset is an RMAT configuration whose scale
// ratio and skew mirror the real graph at laptop scale. The paper itself
// validates this methodology: "the trends on the synthetic dataset are in
// line with real-world data" (§5.2).
package datasets

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

// Prep selects the per-algorithm graph preparation of §4.1: PageRank keeps
// direction, BFS symmetrizes, triangle counting orients acyclically (with
// the lower-triangle RMAT parameters).
type Prep int

const (
	// PrepPageRank: directed, deduplicated.
	PrepPageRank Prep = iota
	// PrepBFS: undirected (symmetrized), deduplicated.
	PrepBFS
	// PrepTriangle: acyclic orientation, sorted adjacency, and the
	// triangle-specific RMAT parameters (A=0.45, B=C=0.15).
	PrepTriangle
)

// Preset names a dataset stand-in.
type Preset struct {
	Name        string
	Description string
	// Scale and EdgeFactor size the RMAT generator (vertices = 2^Scale).
	Scale      int
	EdgeFactor int
	Seed       int64
	// Ratings marks collaborative-filtering presets (built with
	// BuildRatings, not Build).
	Ratings bool
	// RatingsPerUser sizes rating presets.
	RatingsPerUser int
}

// The default scales keep every preset's single-node runtime in
// benchmark-friendly territory while preserving the relative sizes of the
// paper's Table 3 (Facebook < Wikipedia ≈ LiveJournal < Twitter;
// Netflix < Yahoo Music).
var presets = []Preset{
	{Name: "facebook", Description: "Facebook user-interaction stand-in (2.9M vertices / 42M edges in the paper)", Scale: 13, EdgeFactor: 14, Seed: 101},
	{Name: "wikipedia", Description: "Wikipedia link-graph stand-in (3.6M / 85M)", Scale: 14, EdgeFactor: 12, Seed: 102},
	{Name: "livejournal", Description: "LiveJournal follower-graph stand-in (4.8M / 86M)", Scale: 14, EdgeFactor: 17, Seed: 103},
	{Name: "twitter", Description: "Twitter follower-graph stand-in (61.6M / 1.47B)", Scale: 16, EdgeFactor: 24, Seed: 104},
	{Name: "graph500", Description: "Graph500 RMAT synthetic (the paper's scaling workload)", Scale: 15, EdgeFactor: 16, Seed: 105},
	{Name: "netflix", Description: "Netflix Prize ratings stand-in (480K users × 17.8K movies / 99M ratings)", Scale: 13, RatingsPerUser: 24, Seed: 106, Ratings: true},
	{Name: "yahoomusic", Description: "Yahoo! Music KDD-Cup ratings stand-in (1M users × 625K items / 253M ratings)", Scale: 14, RatingsPerUser: 28, Seed: 107, Ratings: true},
}

// Presets lists every named dataset.
func Presets() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	return out
}

// ByName finds a preset.
func ByName(name string) (Preset, error) {
	for _, p := range presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("datasets: unknown preset %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names lists the preset names.
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// WithScale returns a copy of the preset resized to the given RMAT scale
// (for weak-scaling sweeps).
func (p Preset) WithScale(scale int) Preset {
	p.Scale = scale
	return p
}

// Build generates the preset's graph with the given preparation.
func (p Preset) Build(prep Prep) (*graph.CSR, error) {
	if p.Ratings {
		return nil, fmt.Errorf("datasets: %s is a ratings preset; use BuildRatings", p.Name)
	}
	var cfg gen.RMATConfig
	if prep == PrepTriangle {
		cfg = gen.TriangleConfig(p.Scale, p.EdgeFactor, p.Seed)
	} else {
		cfg = gen.Graph500Config(p.Scale, p.EdgeFactor, p.Seed)
	}
	edges, err := gen.RMAT(cfg)
	if err != nil {
		return nil, err
	}
	return PrepareEdges(cfg.NumVertices(), edges, prep)
}

// BuildRatings generates the preset's bipartite rating graph.
func (p Preset) BuildRatings() (*graph.Bipartite, error) {
	if !p.Ratings {
		return nil, fmt.Errorf("datasets: %s is a graph preset; use Build", p.Name)
	}
	return gen.Ratings(gen.DefaultRatingsConfig(p.Scale, p.RatingsPerUser, p.Seed))
}

// PrepareEdges applies a Prep recipe to a raw edge list.
func PrepareEdges(numVertices uint32, edges []graph.Edge, prep Prep) (*graph.CSR, error) {
	b := graph.NewBuilder(numVertices)
	b.AddEdges(edges)
	switch prep {
	case PrepPageRank:
		return b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true, SortAdjacency: true})
	case PrepBFS:
		return b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true, SortAdjacency: true})
	case PrepTriangle:
		return b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	default:
		return nil, fmt.Errorf("datasets: unknown preparation %d", prep)
	}
}

// ReadEdgeList parses whitespace-separated "src dst" lines (comments start
// with # or %). Vertex ids are assigned densely in first-seen order; the
// returned count is the number of distinct vertices.
func ReadEdgeList(r io.Reader) (uint32, []graph.Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idOf := make(map[uint64]uint32)
	intern := func(raw uint64) uint32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := uint32(len(idOf))
		idOf[raw] = id
		return id
	}
	var edges []graph.Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("datasets: line %d: want 'src dst', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("datasets: line %d: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("datasets: line %d: %v", line, err)
		}
		edges = append(edges, graph.Edge{Src: intern(src), Dst: intern(dst)})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return uint32(len(idOf)), edges, nil
}

// LoadEdgeListFile reads an edge-list file and applies the preparation.
func LoadEdgeListFile(path string, prep Prep) (*graph.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, edges, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s: %w", path, err)
	}
	if n == 0 {
		return nil, fmt.Errorf("datasets: %s: no edges", path)
	}
	return PrepareEdges(n, edges, prep)
}

// ReadRatings parses whitespace-separated "user item rating" lines
// (comments start with # or %). User and item ids are assigned densely in
// first-seen order, per side.
func ReadRatings(r io.Reader) (*graph.Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	userOf := make(map[uint64]uint32)
	itemOf := make(map[uint64]uint32)
	intern := func(m map[uint64]uint32, raw uint64) uint32 {
		if id, ok := m[raw]; ok {
			return id
		}
		id := uint32(len(m))
		m[raw] = id
		return id
	}
	var ratings []graph.WeightedEdge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("datasets: line %d: want 'user item rating', got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: %v", line, err)
		}
		w, err := strconv.ParseFloat(fields[2], 32)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: %v", line, err)
		}
		ratings = append(ratings, graph.WeightedEdge{
			Src: intern(userOf, u), Dst: intern(itemOf, v), Weight: float32(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("datasets: no ratings")
	}
	return graph.NewBipartite(uint32(len(userOf)), uint32(len(itemOf)), ratings)
}

// LoadRatingsFile reads a "user item rating" file.
func LoadRatingsFile(path string) (*graph.Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bp, err := ReadRatings(f)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s: %w", path, err)
	}
	return bp, nil
}

// WriteEdgeList emits "src dst" lines for the stored orientation.
func WriteEdgeList(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriter(w)
	for v := uint32(0); v < g.NumVertices; v++ {
		for _, t := range g.Neighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
