package backend

import (
	"sync"
	"sync/atomic"
	"time"

	"graphmaze/internal/obs"
	"graphmaze/internal/par"
	"graphmaze/internal/trace"
)

// chunkRunner is the unit of work a Pool dispatches: a kernel that can
// process the half-open index range [lo, hi) on behalf of one worker.
// Kernels implement it with pointer receivers so the interface assignment
// in RunStatic/RunDynamic never allocates.
type chunkRunner interface {
	runChunk(worker, lo, hi int)
}

// Pool mode constants: how bounds are handed to workers.
const (
	modeStatic  = iota // worker w owns [bounds[w], bounds[w+1])
	modeDynamic        // workers claim grain-sized chunks from an atomic cursor
)

// Pool is a persistent team of workers the backend kernels run on. The
// par package's loops spawn goroutines (and allocate) per call, which is
// fine for one-shot operations but not for an iterate-until-converged hot
// loop; a Pool parks its workers between dispatches so steady-state
// iterations cost two channel hops per worker and zero allocations.
//
// Worker 0 is the calling goroutine, so a 1-worker pool degenerates to a
// plain serial loop with no synchronization at all. Dispatches are
// serialized by an internal mutex, making a shared Pool safe for
// concurrent callers (each dispatch still uses every worker).
type Pool struct {
	mu      sync.Mutex
	workers int
	// wake[w] (w >= 1) signals worker w that mode/runner/bounds are set;
	// the channel send/receive pair is the happens-before edge that
	// publishes those fields without per-field synchronization.
	wake []chan struct{}
	done chan struct{}

	mode   int
	runner chunkRunner
	bounds []int
	cursor atomic.Int64
	limit  int
	grain  int
	closed bool

	// po is the observability attachment (nil when detached, the default).
	// An atomic pointer because SetTracer may run while workers are parked
	// in serve; the handles inside are lock-free to use.
	po atomic.Pointer[poolObs]
}

// poolObs bundles the metrics a pool feeds once a tracer is attached:
// dispatch wall-time and per-worker park-time histograms, plus a busy
// fraction gauge (dispatch time / wall time since attach). busyNS is
// only touched under p.mu (dispatch runs with it held).
type poolObs struct {
	dispatch *obs.Histogram
	park     *obs.Histogram
	busy     *obs.Gauge
	attached time.Time
	busyNS   int64
}

// SetTracer attaches the tracer's metrics registry to the pool: every
// dispatch records its wall time into backend.pool.dispatch_ns, each
// woken worker records how long it was parked into backend.pool.park_ns,
// and backend.pool.busy_frac tracks the fraction of wall time spent
// dispatching. A nil tracer (or one with no registry) detaches; detached
// pools pay one atomic load per dispatch and per worker wake.
func (p *Pool) SetTracer(tr *trace.Tracer) {
	reg := tr.Registry()
	if reg == nil {
		p.po.Store(nil)
		return
	}
	reg.Gauge("backend.pool.workers").Set(float64(p.workers))
	p.po.Store(&poolObs{
		dispatch: reg.Hist("backend.pool.dispatch_ns"),
		park:     reg.HistLanes("backend.pool.park_ns", p.workers),
		busy:     reg.Gauge("backend.pool.busy_frac"),
		attached: time.Now(),
	})
}

// NewPool starts a pool with the given worker count; workers <= 0 means
// par.NumWorkers() (GOMAXPROCS). Callers own the pool and must Close it.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = par.NumWorkers()
	}
	p := &Pool{
		workers: workers,
		wake:    make([]chan struct{}, workers),
		done:    make(chan struct{}, workers),
	}
	for w := 1; w < workers; w++ {
		p.wake[w] = make(chan struct{})
		//lint:ignore goroutine workers park on the wake channel and are joined per dispatch via the buffered done channel; Close releases them
		go p.serve(w, p.wake[w])
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close releases the parked worker goroutines. The pool must be idle.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for w := 1; w < p.workers; w++ {
		close(p.wake[w])
	}
}

func (p *Pool) serve(w int, wake chan struct{}) {
	// parked is when this worker last went idle; zero while detached so a
	// freshly attached tracer does not credit the pre-attach idle stretch.
	var parked time.Time
	for range wake {
		if o := p.po.Load(); o != nil && !parked.IsZero() {
			o.park.Record(w, time.Since(parked).Nanoseconds())
		}
		p.work(w)
		p.done <- struct{}{}
		if p.po.Load() != nil {
			parked = time.Now()
		} else {
			parked = time.Time{}
		}
	}
}

func (p *Pool) work(w int) {
	switch p.mode {
	case modeStatic:
		lo, hi := p.bounds[w], p.bounds[w+1]
		if lo < hi {
			p.runner.runChunk(w, lo, hi)
		}
	case modeDynamic:
		for {
			hi := int(p.cursor.Add(int64(p.grain)))
			lo := hi - p.grain
			if lo >= p.limit {
				return
			}
			if hi > p.limit {
				hi = p.limit
			}
			p.runner.runChunk(w, lo, hi)
		}
	}
}

func (p *Pool) dispatch() {
	o := p.po.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	for w := 1; w < p.workers; w++ {
		p.wake[w] <- struct{}{}
	}
	p.work(0)
	for w := 1; w < p.workers; w++ {
		<-p.done
	}
	if o != nil {
		d := time.Since(start).Nanoseconds()
		o.dispatch.Record(0, d)
		o.busyNS += d
		if el := time.Since(o.attached).Nanoseconds(); el > 0 {
			o.busy.Set(float64(o.busyNS) / float64(el))
		}
	}
}

// RunStatic runs r over the k ranges described by bounds (len workers+1,
// as produced by par.OffsetSplits or evenSplits): worker w gets
// [bounds[w], bounds[w+1]). Deterministic ownership — the same worker
// index always sees the same range for the same bounds.
func (p *Pool) RunStatic(r chunkRunner, bounds []int) {
	p.mu.Lock()
	p.mode = modeStatic
	p.runner = r
	p.bounds = bounds
	p.dispatch()
	p.runner = nil
	p.mu.Unlock()
}

// RunDynamic runs r over [0, n) in grain-sized chunks claimed from an
// atomic cursor (work-stealing for irregular per-chunk cost). The grain
// is rounded up to a multiple of 64 so each chunk owns disjoint words of
// any vertex-indexed bitset, letting kernels use plain stores.
func (p *Pool) RunDynamic(r chunkRunner, n, grain int) {
	if grain <= 0 {
		grain = par.DefaultGrain
	}
	grain = (grain + 63) &^ 63
	p.mu.Lock()
	p.mode = modeDynamic
	p.runner = r
	p.limit = n
	p.grain = grain
	p.cursor.Store(0)
	p.dispatch()
	p.runner = nil
	p.mu.Unlock()
}
