package codec

import (
	"errors"
	"math"
	"testing"
)

func TestSectionRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendSection(buf, []byte("first"))
	buf = AppendSection(buf, nil)
	buf = AppendSection(buf, []byte("third"))

	s1, rest, err := Section(buf)
	if err != nil || string(s1) != "first" {
		t.Fatalf("section 1 = %q, %v", s1, err)
	}
	s2, rest, err := Section(rest)
	if err != nil || len(s2) != 0 {
		t.Fatalf("section 2 = %q, %v", s2, err)
	}
	s3, rest, err := Section(rest)
	if err != nil || string(s3) != "third" {
		t.Fatalf("section 3 = %q, %v", s3, err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
}

func TestSectionTruncation(t *testing.T) {
	buf := AppendSection(nil, []byte("payload"))
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Section(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Section on %d/%d bytes: err = %v, want ErrTruncated", cut, len(buf), err)
		}
	}
}

func TestSectionOverclaim(t *testing.T) {
	// A section claiming far more bytes than exist must error without
	// allocating.
	buf := AppendUvarint(nil, 1<<40)
	if _, _, err := Section(buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("overclaiming section: %v", err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64} {
		buf := AppendUvarint(nil, v)
		got, rest, err := Uvarint(buf)
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("uvarint %d round-tripped to %d (rest %d, err %v)", v, got, len(rest), err)
		}
	}
	if _, _, err := Uvarint(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty uvarint: %v", err)
	}
	if _, _, err := Uvarint([]byte{0x80}); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut varint: %v", err)
	}
}

func TestTypedArrayRoundTrips(t *testing.T) {
	u64 := []uint64{0, 1, math.MaxUint64, 1 << 40}
	if got, rest, err := Uint64s(AppendUint64s(nil, u64)); err != nil || len(rest) != 0 || !equalU64(got, u64) {
		t.Errorf("uint64s round trip = %v, rest %d, err %v", got, len(rest), err)
	}
	u32 := []uint32{0, 7, math.MaxUint32}
	if got, rest, err := Uint32s(AppendUint32s(nil, u32)); err != nil || len(rest) != 0 || !equalU32(got, u32) {
		t.Errorf("uint32s round trip = %v, rest %d, err %v", got, len(rest), err)
	}
	i32 := []int32{0, -1, math.MinInt32, math.MaxInt32}
	if got, rest, err := Int32s(AppendInt32s(nil, i32)); err != nil || len(rest) != 0 || !equalI32(got, i32) {
		t.Errorf("int32s round trip = %v, rest %d, err %v", got, len(rest), err)
	}
	// Empty arrays round-trip to empty, not error.
	if got, _, err := Float64s(AppendFloat64s(nil, nil)); err != nil || len(got) != 0 {
		t.Errorf("empty float64s = %v, %v", got, err)
	}
}

func TestFloat64sBitIdentical(t *testing.T) {
	// Checkpoint determinism rests on exact bit patterns surviving the
	// round trip: NaN payloads, signed zero, denormals included.
	vals := []float64{0, math.Copysign(0, -1), 1.0 / 3.0, math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7ff8000000000001), 5e-324, math.MaxFloat64}
	got, rest, err := Float64s(AppendFloat64s(nil, vals))
	if err != nil || len(rest) != 0 || len(got) != len(vals) {
		t.Fatalf("round trip: %v (rest %d)", err, len(rest))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Errorf("value %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

func TestTypedArrayTruncation(t *testing.T) {
	full := AppendFloat64s(nil, []float64{1.5, 2.5, 3.5})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Float64s(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Float64s on %d/%d bytes: %v", cut, len(full), err)
		}
	}
}

func TestTypedArrayOverclaim(t *testing.T) {
	// A count far beyond the remaining bytes must error before allocating
	// (the fuzz harness would OOM otherwise).
	huge := AppendUvarint(nil, 1<<50)
	if _, _, err := Uint64s(huge); !errors.Is(err, ErrTruncated) {
		t.Errorf("uint64 overclaim: %v", err)
	}
	if _, _, err := Uint32s(huge); !errors.Is(err, ErrTruncated) {
		t.Errorf("uint32 overclaim: %v", err)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScalarRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUint64(buf, 0xdeadbeefcafe0001)
	buf = AppendUint32(buf, 0xfeed0002)
	buf = AppendFloat64(buf, math.Copysign(0, -1))
	buf = AppendFloat64(buf, math.NaN())

	u64, rest, err := Uint64(buf)
	if err != nil || u64 != 0xdeadbeefcafe0001 {
		t.Fatalf("Uint64 = %x, %v", u64, err)
	}
	u32, rest, err := Uint32(rest)
	if err != nil || u32 != 0xfeed0002 {
		t.Fatalf("Uint32 = %x, %v", u32, err)
	}
	neg, rest, err := Float64(rest)
	if err != nil || math.Float64bits(neg) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("Float64 lost -0: %x, %v", math.Float64bits(neg), err)
	}
	nan, rest, err := Float64(rest)
	if err != nil || !math.IsNaN(nan) {
		t.Fatalf("Float64 lost NaN: %v, %v", nan, err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
}

func TestScalarTruncation(t *testing.T) {
	buf := AppendUint64(nil, 7)
	for cut := 0; cut < 8; cut++ {
		if _, _, err := Uint64(buf[:cut]); err != ErrTruncated {
			t.Errorf("Uint64 of %d bytes: err = %v", cut, err)
		}
		if _, _, err := Float64(buf[:cut]); err != ErrTruncated {
			t.Errorf("Float64 of %d bytes: err = %v", cut, err)
		}
	}
	for cut := 0; cut < 4; cut++ {
		if _, _, err := Uint32(buf[:cut]); err != ErrTruncated {
			t.Errorf("Uint32 of %d bytes: err = %v", cut, err)
		}
	}
}
